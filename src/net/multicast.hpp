// NAK-based reliable multicast — the OpenPGM stand-in (paper Sec. VII-A).
//
// StopWatch uses reliable multicast for (1) replicating inbound guest
// packets from the ingress node to the three hosting VMMs and (2) the
// VMM-to-VMM exchange of proposed delivery times, sync beacons, and epoch
// reports. As in PGM, reliability is receiver-driven: receivers detect
// sequence gaps and request retransmission with NAKs; senders keep a
// retransmission buffer.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/network.hpp"

namespace stopwatch::net {

/// One member's endpoint in a reliable multicast group. A group is a set of
/// nodes; each member may send to all others and receives all traffic.
class MulticastGroup {
 public:
  using DeliverFn = std::function<void(NodeId sender, const FramePayload&)>;

  /// `group_id` must be unique per Network and nonzero.
  MulticastGroup(Network& network, std::uint32_t group_id);

  MulticastGroup(const MulticastGroup&) = delete;
  MulticastGroup& operator=(const MulticastGroup&) = delete;

  /// Adds a member. `deliver` is invoked exactly once per multicast message
  /// from any *other* member (senders do not loop back through the network;
  /// they deliver locally and synchronously to themselves).
  void add_member(NodeId node, DeliverFn deliver);

  /// Multicasts `payload` from `from` to all members (including local
  /// synchronous self-delivery). `size_bytes` sizes the on-wire frames.
  void send(NodeId from, FramePayload payload, std::uint32_t size_bytes);

  /// Entry point for frames addressed to a member of this group; the owner
  /// of the node handler must route group frames here.
  void on_frame(NodeId member, const Frame& frame);

  /// Time a receiver waits after detecting a gap before NAKing.
  void set_nak_delay(Duration d) { nak_delay_ = d; }

  [[nodiscard]] std::uint64_t naks_sent() const { return naks_sent_; }
  [[nodiscard]] std::uint64_t retransmissions() const { return retransmissions_; }

 private:
  struct MemberState {
    NodeId node{};
    DeliverFn deliver;
    /// Per-sender receive state: next expected sequence and out-of-order
    /// stash.
    struct RxState {
      std::uint64_t next_expected{1};
      std::map<std::uint64_t, FramePayload> stashed;
      bool nak_scheduled{false};
      int nak_attempts{0};
      /// next_expected at the previous NAK attempt; any advance resets the
      /// attempt counter (progress is being made).
      std::uint64_t last_nak_position{0};
      /// Highest sequence this receiver knows the sender emitted (from data
      /// frames and SPMs); enables tail-loss detection.
      std::uint64_t highest_advertised{0};
      /// The (re-armed-in-place) NAK timer for this sender's stream.
      std::optional<sim::EventId> nak_event;
    };
    std::unordered_map<std::uint32_t, RxState> rx;  // keyed by sender node id
  };

  struct SenderState {
    std::uint64_t next_seq{1};
    /// Retransmission buffer: seq -> (payload, size).
    std::map<std::uint64_t, std::pair<FramePayload, std::uint32_t>> buffer;
    int spm_remaining{0};
    bool spm_armed{false};
    /// The (re-armed-in-place) SPM advertisement timer.
    std::optional<sim::EventId> spm_event;
  };

  static constexpr int kSpmAttempts = 8;

  MemberState* find_member(NodeId node);
  void deliver_in_order(MemberState& m, NodeId sender,
                        MemberState::RxState& rx);
  void maybe_schedule_nak(MemberState& m, NodeId sender,
                          MemberState::RxState& rx);
  void on_nak_timer(NodeId member, NodeId sender);
  void arm_spm(NodeId from);
  void on_spm_timer(NodeId from);

  Network* net_;
  std::uint32_t group_id_;
  Duration nak_delay_{Duration::micros(500)};
  Duration spm_interval_{Duration::millis(1)};
  std::vector<MemberState> members_;
  std::unordered_map<std::uint32_t, SenderState> senders_;  // by node id
  std::uint64_t naks_sent_{0};
  std::uint64_t retransmissions_{0};
};

}  // namespace stopwatch::net
