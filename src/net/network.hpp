// The simulated network: nodes joined by links with latency, jitter,
// serialization delay (bandwidth), and loss.
//
// Topology used by StopWatch experiments: cloud machines, the ingress and
// egress nodes, and external clients all attach here. Per-pair link models
// can be overridden (e.g., a slow "wireless client" hop as in the paper's
// evaluation; fast intra-cloud links for VMM-to-VMM proposal traffic).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>

#include "common/contracts.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "net/frame.hpp"
#include "sim/simulator.hpp"

namespace stopwatch::net {

/// Link behaviour between a pair of nodes (per direction).
struct LinkModel {
  /// Fixed propagation delay.
  Duration base_latency{Duration::micros(100)};
  /// Lognormal jitter: multiplier exp(N(0, sigma)) applied to base latency.
  double jitter_sigma{0.1};
  /// Link rate in bytes per second (serialization delay = size / rate).
  double bytes_per_second{125e6};  // 1 Gbps
  /// Independent per-frame loss probability.
  double loss_probability{0.0};
};

/// Statistics kept per node.
struct NodeStats {
  std::uint64_t frames_sent{0};
  std::uint64_t frames_received{0};
  std::uint64_t bytes_sent{0};
  std::uint64_t bytes_received{0};
};

/// The network fabric. Owns no node logic; nodes register handlers.
class Network {
 public:
  using Handler = std::function<void(const Frame&)>;

  Network(sim::Simulator& sim, Rng rng) : sim_(&sim), rng_(std::move(rng)) {}

  /// Registers a node; the handler is invoked on frame arrival.
  NodeId add_node(std::string name, Handler handler);

  /// Replaces a node's handler (used when wiring mutually dependent parts).
  void set_handler(NodeId node, Handler handler);

  /// Sets the link model for the (src -> dst) direction.
  void set_link(NodeId src, NodeId dst, LinkModel model);
  /// Sets the link model for both directions.
  void set_link_bidirectional(NodeId a, NodeId b, LinkModel model);
  /// Default model for any frame with `node` as source or destination that
  /// has no explicit per-pair link. One entry covers a node's traffic with
  /// the whole cloud — O(1) state instead of a per-pair entry against every
  /// VM, which is what lets a 40k-VM topology wire an external client
  /// without dense fan-out. Resolution order: pair link, then source node
  /// link, then destination node link, then the global default.
  void set_node_link(NodeId node, LinkModel model);
  /// Default model for pairs without an explicit link.
  void set_default_link(LinkModel model) { default_link_ = model; }

  /// Sends a frame; delivery is scheduled on the simulator. Returns false if
  /// the frame was dropped by the loss model.
  bool send(Frame frame);

  [[nodiscard]] const NodeStats& stats(NodeId node) const;
  [[nodiscard]] const std::string& name(NodeId node) const;
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] sim::Simulator& simulator() { return *sim_; }

  /// Total frames dropped by loss models (diagnostics).
  [[nodiscard]] std::uint64_t frames_dropped() const { return frames_dropped_; }

 private:
  struct Node {
    std::string name;
    Handler handler;
    NodeStats stats;
    /// Earliest time the node's uplink is free (serialization queueing).
    RealTime tx_free{};
  };

  [[nodiscard]] const LinkModel& link_for(NodeId src, NodeId dst) const;
  Node& node(NodeId id);
  const Node& node(NodeId id) const;

  sim::Simulator* sim_;
  Rng rng_;
  /// Deque, not vector: handlers may register new nodes mid-delivery (lazy
  /// replica wiring materializes on first traffic), and a deque keeps the
  /// executing node — and its handler — reference-stable through that.
  std::deque<Node> nodes_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, LinkModel> links_;
  std::map<std::uint32_t, LinkModel> node_links_;
  LinkModel default_link_{};
  std::uint64_t frames_dropped_{0};
};

}  // namespace stopwatch::net
