// The simulated network: nodes joined by links with latency, jitter,
// serialization delay (bandwidth), and loss.
//
// Topology used by StopWatch experiments: cloud machines, the ingress and
// egress nodes, and external clients all attach here. Per-pair link models
// can be overridden (e.g., a slow "wireless client" hop as in the paper's
// evaluation; fast intra-cloud links for VMM-to-VMM proposal traffic).
//
// Shard awareness: every node has an owner shard (default 0). With a
// sim::ShardedSimulator attached, a frame between same-owner nodes is
// scheduled directly on the owner's core, while a frame crossing shards
// goes through the sharded kernel's deterministic (source shard,
// destination shard) lanes. Stochastic draws (loss, jitter) come from a
// per-node RNG stream forked from the fabric seed by node id — so the
// draw sequence a node sees is a function of its own traffic only, never
// of global send interleaving. That is what keeps an N-shard run
// byte-identical to the sequential one.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <variant>

#include "common/contracts.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "net/frame.hpp"
#include "obs/metrics.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"

namespace stopwatch::net {

/// Link behaviour between a pair of nodes (per direction).
struct LinkModel {
  /// Fixed propagation delay.
  Duration base_latency{Duration::micros(100)};
  /// Lognormal jitter: multiplier exp(N(0, sigma)) applied to base latency.
  /// The multiplier is clamped below at exp(-6 sigma) — a ~1e-9 tail event
  /// — which gives every link a hard latency floor of
  /// base_latency * exp(-6 sigma), the lookahead bound the sharded
  /// simulator's barrier window relies on.
  double jitter_sigma{0.1};
  /// Link rate in bytes per second (serialization delay = size / rate).
  double bytes_per_second{125e6};  // 1 Gbps
  /// Independent per-frame loss probability.
  double loss_probability{0.0};

  /// Guaranteed minimum propagation delay under the jitter clamp.
  [[nodiscard]] Duration min_latency() const;
};

/// Statistics kept per node.
struct NodeStats {
  std::uint64_t frames_sent{0};
  std::uint64_t frames_received{0};
  std::uint64_t bytes_sent{0};
  std::uint64_t bytes_received{0};
};

/// The network fabric. Owns no node logic; nodes register handlers.
class Network {
 public:
  using Handler = std::function<void(const Frame&)>;

  Network(sim::Simulator& sim, Rng rng) : sim_(&sim), rng_(std::move(rng)) {}

  /// Routes frames through a sharded kernel: same-owner traffic schedules
  /// on the owner's core, cross-owner traffic through the merge lanes.
  /// The attached kernel's shard 0 replaces the construction-time
  /// simulator as the default core (owners default to 0).
  void attach_sharded(sim::ShardedSimulator& sharded);

  /// Registers a node; the handler is invoked on frame arrival.
  NodeId add_node(std::string name, Handler handler);

  /// Replaces a node's handler (used when wiring mutually dependent parts).
  void set_handler(NodeId node, Handler handler);

  /// Assigns the shard that owns a node's events (default 0). Must not be
  /// called while the sharded kernel is mid-window.
  void set_node_owner(NodeId node, int shard);
  [[nodiscard]] int node_owner(NodeId node_id) const {
    return node(node_id).owner;
  }

  /// Sets the link model for the (src -> dst) direction.
  void set_link(NodeId src, NodeId dst, LinkModel model);
  /// Sets the link model for both directions.
  void set_link_bidirectional(NodeId a, NodeId b, LinkModel model);
  /// Default model for any frame with `node` as source or destination that
  /// has no explicit per-pair link. One entry covers a node's traffic with
  /// the whole cloud — O(1) state instead of a per-pair entry against every
  /// VM, which is what lets a 40k-VM topology wire an external client
  /// without dense fan-out. Resolution order: pair link, then source node
  /// link, then destination node link, then the global default.
  void set_node_link(NodeId node, LinkModel model);
  /// Default model for pairs without an explicit link.
  void set_default_link(LinkModel model) { default_link_ = model; }

  /// Minimum guaranteed latency over every link model registered so far
  /// (pair links, node links, and the default) — the lookahead bound: no
  /// frame sent at t can arrive before t + min_latency_floor(). The
  /// sharded barrier window must not exceed it.
  [[nodiscard]] Duration min_latency_floor() const;

  /// Sends a frame; delivery is scheduled on the simulator. Returns false if
  /// the frame was dropped by the loss model.
  bool send(Frame frame);

  [[nodiscard]] const NodeStats& stats(NodeId node) const;
  [[nodiscard]] const std::string& name(NodeId node) const;
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] sim::Simulator& simulator() { return *sim_; }
  /// The simulator core that owns a node's events.
  [[nodiscard]] sim::Simulator& simulator_for(NodeId node_id) {
    return core_for(node(node_id).owner);
  }

  /// Total frames dropped by loss models (diagnostics).
  [[nodiscard]] std::uint64_t frames_dropped() const {
    return frames_dropped_.load(std::memory_order_relaxed);
  }

  /// Number of FramePayload alternatives — the frame-class axis of the
  /// per-class send counters.
  static constexpr std::size_t kFrameClasses =
      std::variant_size_v<FramePayload>;

  /// Frames sent carrying the payload alternative at `payload_index`
  /// (the FramePayload variant index). Includes frames later dropped by
  /// the loss model — the counter classifies offered traffic.
  [[nodiscard]] std::uint64_t frames_sent_of_class(
      std::size_t payload_index) const {
    SW_EXPECTS(payload_index < kFrameClasses);
    return frames_by_class_[payload_index].load(std::memory_order_relaxed);
  }

  /// Installs (or, with nullptr, removes) a histogram receiving every
  /// sent frame's size in bytes. The histogram's commutative atomic
  /// buckets are what make one shared instance safe here: send() runs
  /// concurrently on different shards' workers.
  void set_bytes_histogram(obs::Histogram* hist) { bytes_hist_ = hist; }

 private:
  struct Node {
    std::string name;
    Handler handler;
    NodeStats stats;
    /// Earliest time the node's uplink is free (serialization queueing).
    RealTime tx_free{};
    /// Per-node stochastic stream: loss and jitter draws for frames this
    /// node sends. Forked from the fabric RNG by node id, so the stream
    /// is independent of other nodes' traffic (and of shard count).
    Rng rng;
    /// Shard whose core runs this node's events.
    int owner{0};
  };

  [[nodiscard]] const LinkModel& link_for(NodeId src, NodeId dst) const;
  Node& node(NodeId id);
  const Node& node(NodeId id) const;
  [[nodiscard]] sim::Simulator& core_for(int owner) {
    return sharded_ ? sharded_->shard(owner) : *sim_;
  }

  sim::Simulator* sim_;
  sim::ShardedSimulator* sharded_{nullptr};
  Rng rng_;
  /// Deque, not vector: handlers may register new nodes mid-delivery (lazy
  /// replica wiring materializes on first traffic), and a deque keeps the
  /// executing node — and its handler — reference-stable through that.
  std::deque<Node> nodes_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, LinkModel> links_;
  std::map<std::uint32_t, LinkModel> node_links_;
  LinkModel default_link_{};
  /// Atomic: loss draws happen on the owning shard's worker, and two
  /// shards can drop concurrently within a window.
  std::atomic<std::uint64_t> frames_dropped_{0};
  /// Per-payload-class send counts (same concurrency story as above).
  std::array<std::atomic<std::uint64_t>, kFrameClasses> frames_by_class_{};
  obs::Histogram* bytes_hist_{nullptr};
};

}  // namespace stopwatch::net
