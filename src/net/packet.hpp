// Guest-level network packets.
//
// A Packet is what guests, external clients, and the ingress/egress nodes
// exchange. It carries enough transport metadata for the TCP-like and
// UDP-like protocol models in src/transport, plus a payload hash so the
// egress node can verify that VM replicas emit identical output (Sec. VI).
#pragma once

#include <cstdint>

#include "common/ids.hpp"

namespace stopwatch::net {

/// Transport-level packet types.
enum class PacketKind : std::uint8_t {
  kData,     ///< payload-carrying segment (TCP data / UDP datagram)
  kSyn,      ///< TCP connection request
  kSynAck,   ///< TCP connection accept
  kAck,      ///< pure acknowledgment
  kFin,      ///< half-close
  kRequest,  ///< application request datagram (UDP file retrieval, probes)
  kNak,      ///< negative acknowledgment (NAK-reliable transfer)
};

/// A network packet. Value type; contents must be a deterministic function
/// of guest execution so replicas emit byte-identical streams.
struct Packet {
  NodeId src{};
  NodeId dst{};
  PacketKind kind{PacketKind::kData};
  /// Flow (connection) demultiplexing key, unique per endpoint pair usage.
  std::uint32_t flow{0};
  /// Transport sequence number (byte- or segment-granular per protocol).
  std::uint64_t seq{0};
  /// Cumulative acknowledgment number.
  std::uint64_t ack{0};
  /// On-wire size in bytes (headers + payload).
  std::uint32_t size_bytes{0};
  /// Application message id (framing for request/response protocols).
  std::uint32_t msg_id{0};
  /// Total length of the application message this packet belongs to.
  std::uint32_t msg_len{0};
  /// Offset of this packet's payload within its message.
  std::uint32_t msg_off{0};
  /// Opaque application tag (e.g., NFS op code, file id).
  std::uint32_t app_tag{0};

  /// Order-insensitive content hash for replica output comparison.
  [[nodiscard]] std::uint64_t content_hash() const {
    auto mix = [](std::uint64_t h, std::uint64_t v) {
      h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      return h;
    };
    std::uint64_t h = 0x243f6a8885a308d3ULL;
    h = mix(h, src.value);
    h = mix(h, dst.value);
    h = mix(h, static_cast<std::uint64_t>(kind));
    h = mix(h, flow);
    h = mix(h, seq);
    h = mix(h, ack);
    h = mix(h, size_bytes);
    h = mix(h, msg_id);
    h = mix(h, msg_len);
    h = mix(h, msg_off);
    h = mix(h, app_tag);
    return h;
  }
};

/// Ethernet+IP+TCP-ish header overhead used when sizing packets.
inline constexpr std::uint32_t kHeaderBytes = 66;
/// Maximum segment size used by the TCP-like transport.
inline constexpr std::uint32_t kMss = 1448;

}  // namespace stopwatch::net
