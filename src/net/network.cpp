#include "net/network.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

namespace stopwatch::net {

namespace {
/// Lower clamp for the lognormal jitter multiplier: a 6-sigma tail event
/// (~1e-9 per frame), observationally a no-op, but it turns the link's
/// statistical latency into the hard floor conservative parallel
/// execution needs.
double jitter_floor(double sigma) { return std::exp(-6.0 * sigma); }
}  // namespace

Duration LinkModel::min_latency() const {
  if (jitter_sigma <= 0.0) return base_latency;
  return Duration::from_seconds_f(base_latency.to_seconds() *
                                  jitter_floor(jitter_sigma));
}

void Network::attach_sharded(sim::ShardedSimulator& sharded) {
  SW_EXPECTS(!sharded.running());
  sharded_ = &sharded;
  sim_ = &sharded.shard(0);
}

NodeId Network::add_node(std::string name, Handler handler) {
  SW_EXPECTS(sharded_ == nullptr || !sharded_->running());
  const NodeId id{static_cast<std::uint32_t>(nodes_.size())};
  nodes_.push_back(Node{std::move(name), std::move(handler), {}, RealTime{},
                        rng_.fork(id.value), 0});
  return id;
}

void Network::set_handler(NodeId node_id, Handler handler) {
  node(node_id).handler = std::move(handler);
}

void Network::set_node_owner(NodeId node_id, int shard) {
  SW_EXPECTS(sharded_ == nullptr || !sharded_->running());
  SW_EXPECTS(shard >= 0);
  SW_EXPECTS(sharded_ == nullptr || shard < sharded_->shard_count());
  SW_EXPECTS(sharded_ != nullptr || shard == 0);
  node(node_id).owner = shard;
}

void Network::set_link(NodeId src, NodeId dst, LinkModel model) {
  SW_EXPECTS(src.value < nodes_.size() && dst.value < nodes_.size());
  links_[{src.value, dst.value}] = model;
}

void Network::set_link_bidirectional(NodeId a, NodeId b, LinkModel model) {
  set_link(a, b, model);
  set_link(b, a, model);
}

void Network::set_node_link(NodeId node_id, LinkModel model) {
  SW_EXPECTS(node_id.value < nodes_.size());
  node_links_[node_id.value] = model;
}

Duration Network::min_latency_floor() const {
  Duration floor = default_link_.min_latency();
  for (const auto& [key, model] : links_) {
    floor = std::min(floor, model.min_latency());
  }
  for (const auto& [key, model] : node_links_) {
    floor = std::min(floor, model.min_latency());
  }
  return floor;
}

const LinkModel& Network::link_for(NodeId src, NodeId dst) const {
  const auto it = links_.find({src.value, dst.value});
  if (it != links_.end()) return it->second;
  const auto src_it = node_links_.find(src.value);
  if (src_it != node_links_.end()) return src_it->second;
  const auto dst_it = node_links_.find(dst.value);
  if (dst_it != node_links_.end()) return dst_it->second;
  return default_link_;
}

Network::Node& Network::node(NodeId id) {
  SW_EXPECTS(id.value < nodes_.size());
  return nodes_[id.value];
}

const Network::Node& Network::node(NodeId id) const {
  SW_EXPECTS(id.value < nodes_.size());
  return nodes_[id.value];
}

bool Network::send(Frame frame) {
  Node& src = node(frame.src);
  Node& dst = node(frame.dst);
  SW_EXPECTS(dst.handler != nullptr);

  const LinkModel& link = link_for(frame.src, frame.dst);
  // All mutable state touched on the send path (src stats, src tx_free,
  // src rng) belongs to the source node, and send() runs on the source
  // owner's core — shard-confined by construction. Destination state is
  // only touched by the delivery task below, on the destination's core.
  sim::Simulator& src_core = core_for(src.owner);

  src.stats.frames_sent += 1;
  src.stats.bytes_sent += frame.size_bytes;
  frames_by_class_[frame.payload.index()].fetch_add(
      1, std::memory_order_relaxed);
  if (bytes_hist_ != nullptr) bytes_hist_->record(frame.size_bytes);

  if (link.loss_probability > 0.0 && src.rng.chance(link.loss_probability)) {
    frames_dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  // Serialization: the sender's uplink transmits frames back to back.
  const auto serialization = Duration::from_seconds_f(
      static_cast<double>(frame.size_bytes) / link.bytes_per_second);
  const RealTime tx_start =
      src.tx_free.ns > src_core.now().ns ? src.tx_free : src_core.now();
  const RealTime tx_done = tx_start + serialization;
  src.tx_free = tx_done;

  // Propagation + jitter (clamped below — see LinkModel::min_latency).
  double jitter = 1.0;
  if (link.jitter_sigma > 0.0) {
    jitter = std::max(src.rng.lognormal(0.0, link.jitter_sigma),
                      jitter_floor(link.jitter_sigma));
  }
  const auto prop =
      Duration::from_seconds_f(link.base_latency.to_seconds() * jitter);

  const RealTime arrival = tx_done + prop;
  const NodeId dst_id = frame.dst;
  // The frame (with its variant payload) is too big for the event record's
  // inline buffer, so it is boxed: the delivery task itself — pointer +
  // destination — stays inline in the slab, and the frame costs the one
  // heap allocation it always did.
  sim::Task deliver(
      [this, dst_id, f = std::make_unique<Frame>(std::move(frame))]() {
        // nodes_ is a deque precisely so this reference survives handlers
        // that register new nodes mid-delivery (lazy replica wiring).
        Node& d = node(dst_id);
        d.stats.frames_received += 1;
        d.stats.bytes_received += f->size_bytes;
        d.handler(*f);
      });
  if (sharded_ != nullptr && dst.owner != src.owner) {
    sharded_->cross_schedule(src.owner, dst.owner, arrival,
                             std::move(deliver));
  } else {
    src_core.schedule_at(arrival, std::move(deliver));
  }
  return true;
}

const NodeStats& Network::stats(NodeId node_id) const {
  return node(node_id).stats;
}

const std::string& Network::name(NodeId node_id) const {
  return node(node_id).name;
}

}  // namespace stopwatch::net
