#include "net/network.hpp"

#include <cmath>
#include <memory>
#include <utility>

namespace stopwatch::net {

NodeId Network::add_node(std::string name, Handler handler) {
  const NodeId id{static_cast<std::uint32_t>(nodes_.size())};
  nodes_.push_back(Node{std::move(name), std::move(handler), {}, RealTime{}});
  return id;
}

void Network::set_handler(NodeId node_id, Handler handler) {
  node(node_id).handler = std::move(handler);
}

void Network::set_link(NodeId src, NodeId dst, LinkModel model) {
  SW_EXPECTS(src.value < nodes_.size() && dst.value < nodes_.size());
  links_[{src.value, dst.value}] = model;
}

void Network::set_link_bidirectional(NodeId a, NodeId b, LinkModel model) {
  set_link(a, b, model);
  set_link(b, a, model);
}

void Network::set_node_link(NodeId node_id, LinkModel model) {
  SW_EXPECTS(node_id.value < nodes_.size());
  node_links_[node_id.value] = model;
}

const LinkModel& Network::link_for(NodeId src, NodeId dst) const {
  const auto it = links_.find({src.value, dst.value});
  if (it != links_.end()) return it->second;
  const auto src_it = node_links_.find(src.value);
  if (src_it != node_links_.end()) return src_it->second;
  const auto dst_it = node_links_.find(dst.value);
  if (dst_it != node_links_.end()) return dst_it->second;
  return default_link_;
}

Network::Node& Network::node(NodeId id) {
  SW_EXPECTS(id.value < nodes_.size());
  return nodes_[id.value];
}

const Network::Node& Network::node(NodeId id) const {
  SW_EXPECTS(id.value < nodes_.size());
  return nodes_[id.value];
}

bool Network::send(Frame frame) {
  Node& src = node(frame.src);
  Node& dst = node(frame.dst);
  SW_EXPECTS(dst.handler != nullptr);

  const LinkModel& link = link_for(frame.src, frame.dst);

  src.stats.frames_sent += 1;
  src.stats.bytes_sent += frame.size_bytes;

  if (link.loss_probability > 0.0 && rng_.chance(link.loss_probability)) {
    ++frames_dropped_;
    return false;
  }

  // Serialization: the sender's uplink transmits frames back to back.
  const auto serialization = Duration::from_seconds_f(
      static_cast<double>(frame.size_bytes) / link.bytes_per_second);
  const RealTime tx_start =
      src.tx_free.ns > sim_->now().ns ? src.tx_free : sim_->now();
  const RealTime tx_done = tx_start + serialization;
  src.tx_free = tx_done;

  // Propagation + jitter.
  double jitter = 1.0;
  if (link.jitter_sigma > 0.0) jitter = rng_.lognormal(0.0, link.jitter_sigma);
  const auto prop = Duration::from_seconds_f(
      link.base_latency.to_seconds() * jitter);

  const RealTime arrival = tx_done + prop;
  const NodeId dst_id = frame.dst;
  // The frame (with its variant payload) is too big for the event record's
  // inline buffer, so it is boxed: the delivery task itself — pointer +
  // destination — stays inline in the slab, and the frame costs the one
  // heap allocation it always did.
  sim_->schedule_at(
      arrival,
      [this, dst_id, f = std::make_unique<Frame>(std::move(frame))]() {
        // nodes_ is a deque precisely so this reference survives handlers
        // that register new nodes mid-delivery (lazy replica wiring).
        Node& d = node(dst_id);
        d.stats.frames_received += 1;
        d.stats.bytes_received += f->size_bytes;
        d.handler(*f);
      });
  return true;
}

const NodeStats& Network::stats(NodeId node_id) const {
  return node(node_id).stats;
}

const std::string& Network::name(NodeId node_id) const {
  return node(node_id).name;
}

}  // namespace stopwatch::net
