#include "net/multicast.hpp"

#include <algorithm>
#include <utility>

#include "common/contracts.hpp"

namespace stopwatch::net {

MulticastGroup::MulticastGroup(Network& network, std::uint32_t group_id)
    : net_(&network), group_id_(group_id) {
  SW_EXPECTS(group_id != 0);
}

void MulticastGroup::add_member(NodeId node, DeliverFn deliver) {
  SW_EXPECTS(deliver != nullptr);
  SW_EXPECTS(find_member(node) == nullptr);
  members_.push_back(MemberState{node, std::move(deliver), {}});
}

MulticastGroup::MemberState* MulticastGroup::find_member(NodeId node) {
  for (auto& m : members_) {
    if (m.node == node) return &m;
  }
  return nullptr;
}

void MulticastGroup::send(NodeId from, FramePayload payload,
                          std::uint32_t size_bytes) {
  MemberState* self = find_member(from);
  SW_EXPECTS(self != nullptr);

  SenderState& snd = senders_[from.value];
  const std::uint64_t seq = snd.next_seq++;
  snd.buffer.emplace(seq, std::make_pair(payload, size_bytes));
  // Bound the retransmission buffer; in PGM terms, the transmit window.
  while (snd.buffer.size() > 4096) snd.buffer.erase(snd.buffer.begin());

  for (auto& m : members_) {
    if (m.node == from) continue;
    Frame f;
    f.src = from;
    f.dst = m.node;
    f.size_bytes = size_bytes;
    f.payload = payload;
    f.rm_group = group_id_;
    f.rm_seq = seq;
    net_->send(std::move(f));
  }
  // Local synchronous self-delivery (a VMM "hears" its own proposal).
  self->deliver(from, payload);

  // (Re)start the SPM chain advertising the sender's highest sequence so
  // receivers can detect tail loss.
  snd.spm_remaining = kSpmAttempts;
  arm_spm(from);
}

void MulticastGroup::arm_spm(NodeId from) {
  SenderState& snd = senders_[from.value];
  if (snd.spm_armed) return;
  snd.spm_armed = true;
  // The SPM chain belongs to the sending node: its timer must live on the
  // sender's owning shard so the group's state stays shard-confined.
  sim::Simulator& sim = net_->simulator_for(from);
  if (snd.spm_event && sim.is_executing(*snd.spm_event)) {
    // Re-armed from inside the SPM timer itself: reuse its arena slot.
    sim.reschedule_after(*snd.spm_event, spm_interval_);
    return;
  }
  snd.spm_event =
      sim.schedule_after(spm_interval_, [this, from] { on_spm_timer(from); });
}

void MulticastGroup::on_spm_timer(NodeId from) {
  SenderState& s = senders_[from.value];
  s.spm_armed = false;
  if (s.spm_remaining <= 0) return;
  --s.spm_remaining;
  const std::uint64_t max_seq = s.next_seq - 1;
  for (auto& m : members_) {
    if (m.node == from) continue;
    Frame f;
    f.src = from;
    f.dst = m.node;
    f.size_bytes = kHeaderBytes;
    f.payload = McastSpm{group_id_, max_seq};
    f.rm_group = group_id_;
    f.rm_seq = 0;
    net_->send(std::move(f));
  }
  if (s.spm_remaining > 0) arm_spm(from);
}

void MulticastGroup::on_frame(NodeId member, const Frame& frame) {
  SW_EXPECTS(frame.rm_group == group_id_);
  MemberState* m = find_member(member);
  SW_EXPECTS(m != nullptr);

  // NAK handling at the sender side.
  if (const auto* nak = std::get_if<McastNak>(&frame.payload)) {
    SenderState& snd = senders_[member.value];
    for (std::uint64_t s = nak->begin; s < nak->end; ++s) {
      const auto it = snd.buffer.find(s);
      if (it == snd.buffer.end()) continue;  // beyond the transmit window
      Frame f;
      f.src = member;
      f.dst = nak->from;
      f.size_bytes = it->second.second;
      f.payload = it->second.first;
      f.rm_group = group_id_;
      f.rm_seq = s;
      net_->send(std::move(f));
      ++retransmissions_;
    }
    return;
  }

  const NodeId sender = frame.src;
  auto& rx = m->rx[sender.value];

  if (const auto* spm = std::get_if<McastSpm>(&frame.payload)) {
    rx.highest_advertised = std::max(rx.highest_advertised, spm->max_seq);
    if (rx.next_expected <= rx.highest_advertised) {
      maybe_schedule_nak(*m, sender, rx);
    }
    return;
  }

  if (frame.rm_seq < rx.next_expected) return;  // duplicate
  rx.highest_advertised = std::max(rx.highest_advertised, frame.rm_seq);
  rx.stashed.emplace(frame.rm_seq, frame.payload);
  deliver_in_order(*m, sender, rx);
  if (!rx.stashed.empty()) maybe_schedule_nak(*m, sender, rx);
}

void MulticastGroup::deliver_in_order(MemberState& m, NodeId sender,
                                      MemberState::RxState& rx) {
  auto it = rx.stashed.begin();
  while (it != rx.stashed.end() && it->first == rx.next_expected) {
    m.deliver(sender, it->second);
    it = rx.stashed.erase(it);
    ++rx.next_expected;
  }
}

void MulticastGroup::maybe_schedule_nak(MemberState& m, NodeId sender,
                                        MemberState::RxState& rx) {
  if (rx.nak_scheduled) return;
  rx.nak_scheduled = true;
  // NAK timers fire on the receiving member's shard.
  sim::Simulator& sim = net_->simulator_for(m.node);
  if (rx.nak_event && sim.is_executing(*rx.nak_event)) {
    // Re-armed from the tail of the NAK timer itself (NAK or retransmission
    // may be lost): reuse its arena slot.
    sim.reschedule_after(*rx.nak_event, nak_delay_);
    return;
  }
  const NodeId member = m.node;
  rx.nak_event = sim.schedule_after(
      nak_delay_, [this, member, sender] { on_nak_timer(member, sender); });
}

void MulticastGroup::on_nak_timer(NodeId member, NodeId sender) {
  MemberState* mm = find_member(member);
  if (mm == nullptr) return;
  auto& rxs = mm->rx[sender.value];
  rxs.nak_scheduled = false;

  const bool tail_gap =
      rxs.stashed.empty() && rxs.next_expected <= rxs.highest_advertised;
  const bool middle_gap = !rxs.stashed.empty();
  if (!tail_gap && !middle_gap) {
    rxs.nak_attempts = 0;
    return;  // healed meanwhile
  }
  const std::uint64_t gap_end =
      middle_gap ? rxs.stashed.begin()->first : rxs.highest_advertised + 1;
  SW_ASSERT(gap_end > rxs.next_expected);

  if (rxs.next_expected > rxs.last_nak_position) {
    rxs.nak_attempts = 0;  // progress since the last attempt
  }
  rxs.last_nak_position = rxs.next_expected;

  if (++rxs.nak_attempts > 12) {
    // Unrecoverable (sender evicted the data from its window): skip the
    // gap, as PGM does when data falls outside the transmit window.
    rxs.next_expected = gap_end;
    rxs.nak_attempts = 0;
    deliver_in_order(*mm, sender, rxs);
    return;
  }

  Frame f;
  f.src = member;
  f.dst = sender;
  f.size_bytes = kHeaderBytes;
  f.payload = McastNak{group_id_, member, rxs.next_expected, gap_end};
  f.rm_group = group_id_;
  f.rm_seq = 0;
  net_->send(std::move(f));
  ++naks_sent_;
  // Re-arm in case the NAK or the retransmission is lost.
  maybe_schedule_nak(*mm, sender, rxs);
}

}  // namespace stopwatch::net
