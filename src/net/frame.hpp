// Frames: everything that traverses the simulated cloud LAN.
//
// Guest packets are one payload type among several control payloads used by
// StopWatch itself: ingress copies of inbound guest packets (Sec. V),
// proposed-delivery-time multicasts among replica VMMs (Sec. V), virtual
// time sync beacons (fastest-replica throttling, Sec. VII-A), epoch reports
// (RT-clock resynchronization, Sec. IV-A), and output packets tunneled to
// the egress node (Sec. VI).
#pragma once

#include <cstdint>
#include <variant>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "net/packet.hpp"

namespace stopwatch::net {

/// A guest packet traveling between ordinary endpoints.
struct GuestPacketPayload {
  Packet pkt;
};

/// Ingress -> hosting VMM: the `copy_seq`-th inbound packet of guest `vm`.
/// All three VMMs see identical (vm, copy_seq, pkt) triples.
struct IngressCopy {
  VmId vm{};
  std::uint64_t copy_seq{0};
  Packet pkt;
};

/// VMM -> peer VMMs: proposed virtual delivery time for inbound packet
/// `copy_seq` of guest `vm` (Sec. V-A). Never visible to guests.
struct Proposal {
  VmId vm{};
  std::uint64_t copy_seq{0};
  VirtTime proposed_delivery{};
  MachineId proposer{};
};

/// VMM -> peer VMMs: periodic virtual-time beacon used to limit the gap
/// between the two fastest replicas.
struct SyncBeacon {
  VmId vm{};
  MachineId machine{};
  VirtTime virt{};
  std::uint64_t instr{0};
};

/// VMM -> peer VMMs: end-of-epoch report (duration D_k over which the
/// replica executed the epoch's I instructions, and local real time R_k).
struct EpochReport {
  VmId vm{};
  MachineId machine{};
  std::uint64_t epoch{0};
  Duration d_k{};
  RealTime r_k{};  // machine-local clock reading (includes clock offset)
};

/// VMM -> egress: a guest output packet plus replica identification; the
/// egress releases the packet on receiving its second copy (Sec. VI).
struct TunneledOutput {
  VmId vm{};
  ReplicaIndex replica{};
  std::uint64_t out_seq{0};
  std::uint64_t content_hash{0};
  Packet pkt;
};

/// Receiver -> multicast sender: retransmission request for stream gaps
/// [begin, end) (the PGM-style NAK, Sec. VII-A).
struct McastNak {
  std::uint32_t group{0};
  NodeId from{};
  std::uint64_t begin{0};
  std::uint64_t end{0};
};

/// Sender -> receivers: advertisement of the sender's highest sequence (the
/// PGM source-path message), letting receivers detect tail loss.
struct McastSpm {
  std::uint32_t group{0};
  std::uint64_t max_seq{0};
};

using FramePayload = std::variant<GuestPacketPayload, IngressCopy, Proposal,
                                  SyncBeacon, EpochReport, TunneledOutput,
                                  McastNak, McastSpm>;

/// Unit of transmission on the simulated network.
struct Frame {
  NodeId src{};
  NodeId dst{};
  std::uint32_t size_bytes{kHeaderBytes};
  FramePayload payload{GuestPacketPayload{}};

  /// Reliable-multicast stream bookkeeping; group == 0 means "not part of a
  /// reliable stream".
  std::uint32_t rm_group{0};
  std::uint64_t rm_seq{0};
};

}  // namespace stopwatch::net
