#include "obs/trace.hpp"

#include <algorithm>
#include <string>

namespace stopwatch::obs {

namespace {

TraceRecorder* g_active_trace = nullptr;

/// ns rendered as the trace format's microseconds with exactly three
/// decimals — pure integer arithmetic, so equal inputs are equal bytes.
std::string format_us(std::int64_t ns) {
  std::string out = std::to_string(ns / 1000);
  const std::int64_t frac = ns % 1000;
  out += '.';
  out += static_cast<char>('0' + frac / 100);
  out += static_cast<char>('0' + (frac / 10) % 10);
  out += static_cast<char>('0' + frac % 10);
  return out;
}

/// Track names are repo-controlled but may embed user-facing VM names;
/// escape the JSON specials so a quote can't break the document.
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

TraceRecorder* active_trace() { return g_active_trace; }

void set_active_trace(TraceRecorder* recorder) { g_active_trace = recorder; }

TraceTrack* TraceRecorder::track(std::uint32_t pid, std::uint32_t tid,
                                 std::string process_name,
                                 std::string thread_name, Category category) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto key = std::make_pair(pid, tid);
  const auto it = by_id_.find(key);
  if (it != by_id_.end()) return it->second;
  tracks_.emplace_back(TraceTrack(&enabled_, pid, tid,
                                  std::move(process_name),
                                  std::move(thread_name), category));
  by_id_[key] = &tracks_.back();
  return &tracks_.back();
}

void TraceRecorder::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  tracks_.clear();
  by_id_.clear();
}

std::size_t TraceRecorder::event_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const TraceTrack& t : tracks_) n += t.events_.size();
  return n;
}

std::string TraceRecorder::export_json(bool include_parallel) const {
  const std::lock_guard<std::mutex> lock(mu_);

  // Tracks in (pid, tid) order — by_id_ is already sorted that way — so
  // the pre-sort event order is deterministic and metadata rows are too.
  std::vector<const TraceTrack*> tracks;
  tracks.reserve(by_id_.size());
  for (const auto& [id, track] : by_id_) {
    if (track->category_ == Category::kParallel && !include_parallel) {
      continue;
    }
    tracks.push_back(track);
  }

  struct Row {
    const TraceEvent* ev;
    const TraceTrack* track;
  };
  std::vector<Row> rows;
  for (const TraceTrack* t : tracks) {
    for (const TraceEvent& ev : t->events_) rows.push_back({&ev, t});
  }
  // (ts, pid, tid): between-track ties resolve by track identity; ties
  // within one track (same pid/tid) keep append order via stability.
  std::stable_sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.ev->ts_ns != b.ev->ts_ns) return a.ev->ts_ns < b.ev->ts_ns;
    if (a.track->pid_ != b.track->pid_) return a.track->pid_ < b.track->pid_;
    return a.track->tid_ < b.track->tid_;
  });

  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  const auto emit = [&](const std::string& line) {
    out += first ? "\n" : ",\n";
    first = false;
    out += line;
  };

  std::uint32_t last_pid = 0;
  bool have_pid = false;
  for (const TraceTrack* t : tracks) {
    const std::string ids = "\"pid\": " + std::to_string(t->pid_) +
                            ", \"tid\": " + std::to_string(t->tid_);
    if (!have_pid || t->pid_ != last_pid) {
      emit("{\"ph\": \"M\", " + ids +
           ", \"name\": \"process_name\", \"args\": {\"name\": \"" +
           escape(t->process_name_) + "\"}}");
      last_pid = t->pid_;
      have_pid = true;
    }
    emit("{\"ph\": \"M\", " + ids +
         ", \"name\": \"thread_name\", \"args\": {\"name\": \"" +
         escape(t->thread_name_) + "\"}}");
  }

  for (const Row& row : rows) {
    const TraceEvent& ev = *row.ev;
    std::string line = "{\"name\": \"";
    line += ev.name;
    line += "\", \"ph\": \"";
    line += ev.ph;
    line += '"';
    if (ev.ph == 'i') line += ", \"s\": \"t\"";
    line += ", \"ts\": " + format_us(ev.ts_ns);
    if (ev.ph == 'X') {
      line += ", \"dur\": " + format_us(ev.dur_ns < 0 ? 0 : ev.dur_ns);
    }
    line += ", \"pid\": " + std::to_string(row.track->pid_) +
            ", \"tid\": " + std::to_string(row.track->tid_);
    if (ev.arg_name != nullptr) {
      line += ", \"args\": {\"";
      line += ev.arg_name;
      line += "\": " + std::to_string(ev.arg_value) + "}";
    }
    line += '}';
    emit(line);
  }

  out += "\n]}\n";
  return out;
}

}  // namespace stopwatch::obs
