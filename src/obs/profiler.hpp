// Wall-clock self-profiling: cheap scoped timers over a *static* registry
// of phase names, so the simulator can attribute its own host-side cost
// (where does the wall time go — wheel harvest? barrier waits? Theorem-2
// placement?) without perturbing the simulation it measures.
//
// Design rules, mirroring the tracing layer (trace.hpp):
//  * The phase vocabulary is fixed at compile time. OBS_PROF_SCOPE("x")
//    resolves the name to a registry index with a consteval lookup — an
//    unknown phase name is a build error, and the `profile` block always
//    lists every phase in registry order, so the output *schema* is
//    byte-stable even though the wall values are measurements.
//  * Recording is off unless a Profiler is installed via
//    set_active_profiler AND armed. The disarmed fast path is one relaxed
//    pointer load (plus one relaxed flag load when a profiler is
//    installed) — the same shape the `tracing_disabled_overhead_ratio`
//    microbench budget-gates, and `profiling_disabled_overhead_ratio`
//    gates this one.
//  * Armed recording goes to per-thread slots (registered on first use,
//    merged under a mutex only at snapshot time), so simulator worker
//    threads never contend. Each slot keeps per-phase {calls, total_ns,
//    self_ns} plus a per-call-path self-time map that snapshot() renders
//    as flamegraph-style collapsed stacks.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace stopwatch::obs {

/// The static phase registry. Alphabetical; serialization order is this
/// order. Adding a phase is an additive schema change — append-site and
/// README table should move together.
inline constexpr std::array<const char*, 13> kProfPhases = {
    "bench.probe",          // microbench overhead-probe scope
    "cloud.run",            // Cloud::run_for / run_until body
    "leakage.estimate",     // binning + MI estimation over observation logs
    "placement.theorem2",   // Theorem-2 / greedy placement construction
    "policy.release",       // egress gate: copy matching + release decision
    "scenario.analysis",    // scenario-side post-run metric computation
    "scenario.drive",       // scenario-side load/drive scheduling
    "scenario.placement",   // scenario-side placement construction + checks
    "scenario.setup",       // scenario-side topology build + VM creation
    "sharded.barrier_wait", // window submit + wait for worker cores
    "sharded.merge",        // cross-shard lane drain + deterministic merge
    "sim.due_fallback",     // sorted-due -> heap fallback flip
    "sim.harvest",          // wheel cursor advance + level-0 bulk harvest
};

inline constexpr std::size_t kProfPhaseCount = kProfPhases.size();

/// Registry index of `name`; unknown names fail the build (the lookup is
/// consteval, so it can only be called with compile-time names).
consteval std::size_t prof_phase_index(std::string_view name) {
  for (std::size_t i = 0; i < kProfPhases.size(); ++i) {
    if (name == std::string_view{kProfPhases[i]}) return i;
  }
  throw "phase name is not in obs::kProfPhases";  // compile-time failure
}

/// Merged per-phase totals for one phase.
struct ProfPhaseSnapshot {
  std::uint64_t calls{0};
  std::uint64_t total_ns{0};  ///< inclusive (children counted)
  std::uint64_t self_ns{0};   ///< exclusive (children subtracted)
};

/// One collapsed call path ("root;child;leaf") with its exclusive time.
struct ProfPathSnapshot {
  std::string stack;
  std::uint64_t self_ns{0};
  std::uint64_t calls{0};
};

/// Point-in-time merge of every thread slot. Phases are indexed exactly
/// like kProfPhases (all present, zeros included); paths are sorted by
/// stack string.
struct ProfilerSnapshot {
  std::array<ProfPhaseSnapshot, kProfPhaseCount> phases{};
  std::vector<ProfPathSnapshot> paths;

  /// Sum of per-phase exclusive time — the wall time the profiler can
  /// attribute to named phases.
  [[nodiscard]] std::uint64_t attributed_ns() const;
};

class Profiler {
 public:
  Profiler();
  ~Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  void arm() { enabled_.store(true, std::memory_order_relaxed); }
  void disarm() { enabled_.store(false, std::memory_order_relaxed); }
  [[nodiscard]] bool armed() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Merges every thread slot. Call only while writers are quiescent
  /// (scenario boundaries) — slot contents are plain integers.
  [[nodiscard]] ProfilerSnapshot snapshot() const;

  /// Drops all recorded data (slots stay registered; armed unchanged).
  /// Same quiescence contract as snapshot().
  void clear();

  struct ThreadSlot;

 private:
  friend ThreadSlot* prof_enter(Profiler* profiler, std::size_t phase);
  ThreadSlot* slot_for_current_thread();

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ThreadSlot>> slots_;
};

/// The process-wide profiler the current run records into (nullptr when
/// profiling is off — the common case). Mirrors active_trace().
[[nodiscard]] Profiler* active_profiler();
void set_active_profiler(Profiler* profiler);

namespace detail {
extern std::atomic<Profiler*> g_profiler;
}  // namespace detail

/// Out-of-line armed path: registers/fetches the calling thread's slot and
/// pushes a frame. Returns nullptr when the frame stack is saturated in a
/// way that cannot be tracked (never happens at kProfMaxDepth >= real
/// nesting; overflow is still counted and balanced).
Profiler::ThreadSlot* prof_enter(Profiler* profiler, std::size_t phase);
void prof_exit(Profiler::ThreadSlot* slot);

/// RAII scope used via OBS_PROF_SCOPE. Disarmed cost: one relaxed load
/// (+ one when a profiler is installed), one predicted branch.
class ProfScope {
 public:
  explicit ProfScope(std::size_t phase) {
    Profiler* p = detail::g_profiler.load(std::memory_order_relaxed);
    if (p == nullptr || !p->armed()) [[likely]] {
      slot_ = nullptr;
      return;
    }
    slot_ = prof_enter(p, phase);
  }
  ~ProfScope() {
    if (slot_ != nullptr) prof_exit(slot_);
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  Profiler::ThreadSlot* slot_;
};

#define OBS_PROF_CONCAT_INNER(a, b) a##b
#define OBS_PROF_CONCAT(a, b) OBS_PROF_CONCAT_INNER(a, b)
/// Times the enclosing scope under the (compile-time-checked) phase name.
#define OBS_PROF_SCOPE(name)                             \
  ::stopwatch::obs::ProfScope OBS_PROF_CONCAT(           \
      obs_prof_scope_, __LINE__) {                       \
    ::stopwatch::obs::prof_phase_index(name)             \
  }

/// The `profile` block: fixed schema (every phase, registry order), wall
/// values measured. `wall_ns` is the scenario's elapsed wall time; the
/// unattributed remainder is reported as `other_ns` (clamped at 0).
/// RSS values are the boundary samples (0 when the platform offers none).
[[nodiscard]] std::string profile_to_json(const ProfilerSnapshot& snap,
                                          std::uint64_t wall_ns,
                                          std::uint64_t rss_bytes,
                                          std::uint64_t rss_peak_bytes,
                                          int indent = 0);

/// Flamegraph-style collapsed stacks ("a;b;c <self_ns>" per line, sorted).
[[nodiscard]] std::string collapsed_stacks(const ProfilerSnapshot& snap);

/// Current / peak resident set size of this process in bytes (Linux
/// /proc/self/status; 0 elsewhere). Sampled by the runner at scenario
/// boundaries into the profile block — never into deterministic output.
[[nodiscard]] std::uint64_t process_rss_bytes();
[[nodiscard]] std::uint64_t process_rss_peak_bytes();

}  // namespace stopwatch::obs
