#include "obs/profiler.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace stopwatch::obs {

namespace detail {
std::atomic<Profiler*> g_profiler{nullptr};
// Bumped on every install/uninstall so thread-local slot caches can never
// mistake a new profiler that reuses a freed address for the old one.
std::atomic<std::uint64_t> g_epoch{1};
}  // namespace detail

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

struct Profiler::ThreadSlot {
  struct PhaseAccum {
    std::uint64_t calls{0};
    std::uint64_t total_ns{0};
    std::uint64_t self_ns{0};
  };
  struct Frame {
    std::size_t phase{0};
    std::uint64_t start_ns{0};
    std::uint64_t child_ns{0};
    std::uint64_t path{0};  // packed (phase+1) bytes, root in the high byte
  };
  struct PathAccum {
    std::uint64_t self_ns{0};
    std::uint64_t calls{0};
  };
  // Deeper nesting than the path encoding can hold (8 bytes of one-based
  // phase ids) is counted and balanced but not timed.
  static constexpr int kMaxDepth = 8;

  std::array<PhaseAccum, kProfPhaseCount> phases{};
  std::array<Frame, kMaxDepth> stack{};
  int depth{0};
  int overflow{0};
  std::map<std::uint64_t, PathAccum> paths;

  void reset() {
    phases = {};
    depth = 0;
    overflow = 0;
    paths.clear();
  }
};

namespace {
thread_local Profiler* t_owner = nullptr;
thread_local std::uint64_t t_epoch = 0;
thread_local Profiler::ThreadSlot* t_slot = nullptr;
}  // namespace

Profiler::Profiler() = default;

Profiler::~Profiler() {
  if (detail::g_profiler.load(std::memory_order_relaxed) == this) {
    set_active_profiler(nullptr);
  }
}

Profiler::ThreadSlot* Profiler::slot_for_current_thread() {
  std::lock_guard<std::mutex> lock(mu_);
  slots_.push_back(std::make_unique<ThreadSlot>());
  return slots_.back().get();
}

Profiler::ThreadSlot* prof_enter(Profiler* profiler, std::size_t phase) {
  const std::uint64_t epoch =
      detail::g_epoch.load(std::memory_order_acquire);
  if (t_owner != profiler || t_epoch != epoch) {
    t_slot = profiler->slot_for_current_thread();
    t_owner = profiler;
    t_epoch = epoch;
  }
  Profiler::ThreadSlot* s = t_slot;
  if (s->overflow > 0 || s->depth >= Profiler::ThreadSlot::kMaxDepth) {
    ++s->overflow;
    return s;
  }
  auto& f = s->stack[s->depth];
  f.phase = phase;
  f.child_ns = 0;
  f.path = (s->depth > 0 ? s->stack[s->depth - 1].path << 8 : 0) |
           (static_cast<std::uint64_t>(phase) + 1);
  f.start_ns = now_ns();
  ++s->depth;
  return s;
}

void prof_exit(Profiler::ThreadSlot* s) {
  const std::uint64_t end = now_ns();
  if (s->overflow > 0) {
    --s->overflow;
    return;
  }
  auto& f = s->stack[--s->depth];
  const std::uint64_t dur = end - f.start_ns;
  auto& acc = s->phases[f.phase];
  ++acc.calls;
  acc.total_ns += dur;
  const std::uint64_t self = dur > f.child_ns ? dur - f.child_ns : 0;
  acc.self_ns += self;
  if (s->depth > 0) s->stack[s->depth - 1].child_ns += dur;
  auto& pa = s->paths[f.path];
  pa.self_ns += self;
  ++pa.calls;
}

namespace {

std::string decode_path(std::uint64_t path) {
  std::array<std::uint8_t, 8> bytes{};  // leaf first
  int n = 0;
  while (path != 0) {
    bytes[static_cast<std::size_t>(n++)] =
        static_cast<std::uint8_t>(path & 0xff);
    path >>= 8;
  }
  std::string out;
  for (int i = n - 1; i >= 0; --i) {
    if (!out.empty()) out += ';';
    out += kProfPhases[bytes[static_cast<std::size_t>(i)] - 1];
  }
  return out;
}

}  // namespace

ProfilerSnapshot Profiler::snapshot() const {
  ProfilerSnapshot snap;
  std::map<std::uint64_t, ThreadSlot::PathAccum> merged;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& slot : slots_) {
      for (std::size_t i = 0; i < kProfPhaseCount; ++i) {
        snap.phases[i].calls += slot->phases[i].calls;
        snap.phases[i].total_ns += slot->phases[i].total_ns;
        snap.phases[i].self_ns += slot->phases[i].self_ns;
      }
      for (const auto& [path, acc] : slot->paths) {
        auto& m = merged[path];
        m.self_ns += acc.self_ns;
        m.calls += acc.calls;
      }
    }
  }
  snap.paths.reserve(merged.size());
  for (const auto& [path, acc] : merged) {
    snap.paths.push_back({decode_path(path), acc.self_ns, acc.calls});
  }
  std::sort(snap.paths.begin(), snap.paths.end(),
            [](const ProfPathSnapshot& a, const ProfPathSnapshot& b) {
              return a.stack < b.stack;
            });
  return snap;
}

void Profiler::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& slot : slots_) slot->reset();
}

std::uint64_t ProfilerSnapshot::attributed_ns() const {
  std::uint64_t sum = 0;
  for (const auto& p : phases) sum += p.self_ns;
  return sum;
}

Profiler* active_profiler() {
  return detail::g_profiler.load(std::memory_order_relaxed);
}

void set_active_profiler(Profiler* profiler) {
  detail::g_epoch.fetch_add(1, std::memory_order_acq_rel);
  detail::g_profiler.store(profiler, std::memory_order_release);
}

std::string profile_to_json(const ProfilerSnapshot& snap,
                            std::uint64_t wall_ns, std::uint64_t rss_bytes,
                            std::uint64_t rss_peak_bytes, int indent) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  const std::uint64_t attributed = snap.attributed_ns();
  const std::uint64_t other = wall_ns > attributed ? wall_ns - attributed : 0;
  std::string out;
  char buf[256];
  out += pad + "{\n";
  const auto field = [&](const char* name, std::uint64_t value,
                         bool comma = true) {
    std::snprintf(buf, sizeof buf, "%s  \"%s\": %llu%s\n", pad.c_str(), name,
                  static_cast<unsigned long long>(value), comma ? "," : "");
    out += buf;
  };
  out += pad + "  \"schema\": \"stopwatch-profile/1\",\n";
  field("wall_ns", wall_ns);
  field("attributed_ns", attributed);
  field("other_ns", other);
  field("rss_bytes", rss_bytes);
  field("rss_peak_bytes", rss_peak_bytes);
  out += pad + "  \"phases\": [\n";
  for (std::size_t i = 0; i < kProfPhaseCount; ++i) {
    const auto& p = snap.phases[i];
    std::snprintf(buf, sizeof buf,
                  "%s    {\"name\": \"%s\", \"calls\": %llu, \"total_ns\": "
                  "%llu, \"self_ns\": %llu}%s\n",
                  pad.c_str(), kProfPhases[i],
                  static_cast<unsigned long long>(p.calls),
                  static_cast<unsigned long long>(p.total_ns),
                  static_cast<unsigned long long>(p.self_ns),
                  i + 1 < kProfPhaseCount ? "," : "");
    out += buf;
  }
  out += pad + "  ]\n";
  out += pad + "}";
  return out;
}

std::string collapsed_stacks(const ProfilerSnapshot& snap) {
  std::string out;
  for (const auto& path : snap.paths) {
    out += path.stack;
    out += ' ';
    out += std::to_string(path.self_ns);
    out += '\n';
  }
  return out;
}

namespace {

std::uint64_t read_proc_status_kb(const char* key) {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kb = 0;
  const std::size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0) {
      kb = std::strtoull(line + key_len, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kb;
#else
  (void)key;
  return 0;
#endif
}

}  // namespace

std::uint64_t process_rss_bytes() {
  return read_proc_status_kb("VmRSS:") * 1024;
}

std::uint64_t process_rss_peak_bytes() {
  return read_proc_status_kb("VmHWM:") * 1024;
}

}  // namespace stopwatch::obs
