#include "obs/timeseries.hpp"

#include <bit>

#include "common/contracts.hpp"

namespace stopwatch::obs {

void QuantileSketch::record(std::uint64_t value) {
  ++buckets_[static_cast<std::size_t>(std::bit_width(value))];
  ++count_;
}

void QuantileSketch::merge(const QuantileSketch& other) {
  for (int i = 0; i < kBuckets; ++i) {
    buckets_[static_cast<std::size_t>(i)] +=
        other.buckets_[static_cast<std::size_t>(i)];
  }
  count_ += other.count_;
}

std::uint64_t QuantileSketch::quantile_upper(double q) const {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank in [1, count]: the smallest bucket whose cumulative count reaches
  // ceil(q * count) upper-bounds the q-quantile.
  auto rank = static_cast<std::uint64_t>(q * static_cast<double>(count_));
  if (static_cast<double>(rank) < q * static_cast<double>(count_)) ++rank;
  if (rank == 0) rank = 1;
  std::uint64_t cum = 0;
  for (int i = 0; i < kBuckets; ++i) {
    cum += buckets_[static_cast<std::size_t>(i)];
    if (cum >= rank) {
      if (i == 0) return 0;
      if (i >= 64) return ~0ULL;
      return (std::uint64_t{1} << i) - 1;
    }
  }
  return ~0ULL;  // unreachable: cum reaches count_ >= rank
}

std::vector<std::pair<int, std::uint64_t>> QuantileSketch::nonzero() const {
  std::vector<std::pair<int, std::uint64_t>> out;
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t n = buckets_[static_cast<std::size_t>(i)];
    if (n != 0) out.emplace_back(i, n);
  }
  return out;
}

std::string QuantileSketch::serialize() const {
  std::string out;
  for (const auto& [bucket, n] : nonzero()) {
    if (!out.empty()) out += ',';
    out += std::to_string(bucket);
    out += ':';
    out += std::to_string(n);
  }
  return out;
}

TimeSeries::TimeSeries(std::int64_t initial_window_ns,
                       std::size_t max_windows)
    : window_ns_(initial_window_ns), max_windows_(max_windows) {
  SW_EXPECTS(initial_window_ns > 0);
  SW_EXPECTS(max_windows > 0);
  windows_.reserve(max_windows_);
}

void TimeSeries::record(std::int64_t t_ns, std::uint64_t value) {
  if (t_ns < 0) t_ns = 0;
  while (static_cast<std::uint64_t>(t_ns / window_ns_) >= max_windows_) {
    coarsen();
  }
  const auto idx = static_cast<std::size_t>(t_ns / window_ns_);
  if (idx >= windows_.size()) windows_.resize(idx + 1);
  TimeSeriesWindow& w = windows_[idx];
  ++w.count;
  w.sum += value;
  if (value > w.max) w.max = value;
  w.sketch.record(value);
  ++total_;
}

void TimeSeries::coarsen() {
  // Double the width and fold adjacent windows pairwise: every rollup
  // field is mergeable, so the coarse series equals one built at the wide
  // width from the start.
  const std::size_t n = windows_.size();
  const std::size_t folded = (n + 1) / 2;
  for (std::size_t i = 0; i < folded; ++i) {
    TimeSeriesWindow merged = std::move(windows_[2 * i]);
    if (2 * i + 1 < n) {
      const TimeSeriesWindow& right = windows_[2 * i + 1];
      merged.count += right.count;
      merged.sum += right.sum;
      if (right.max > merged.max) merged.max = right.max;
      merged.sketch.merge(right.sketch);
    }
    windows_[i] = std::move(merged);
  }
  windows_.resize(folded);
  window_ns_ *= 2;
}

TimeSeriesSnapshot TimeSeries::snapshot() const {
  TimeSeriesSnapshot snap;
  snap.window_ns = window_ns_;
  snap.budget_windows = max_windows_;
  for (std::size_t i = 0; i < windows_.size(); ++i) {
    if (windows_[i].count == 0) continue;
    snap.windows.emplace_back(static_cast<std::int64_t>(i) * window_ns_,
                              windows_[i]);
  }
  return snap;
}

std::size_t TimeSeries::memory_bytes() const {
  return sizeof(TimeSeries) + windows_.capacity() * sizeof(TimeSeriesWindow);
}

}  // namespace stopwatch::obs
