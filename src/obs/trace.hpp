// Simulation-time tracing: instant/complete/counter events stamped in
// *virtual* sim time, exported as Chrome trace-event JSON that
// chrome://tracing and https://ui.perfetto.dev load directly.
//
// Determinism across sim_shards is the design driver, exactly like the
// PR 7 lane merge:
//  * a track's (pid, tid) is a shard-count-INVARIANT identity — the
//    machine-table shard, the VM index, the egress gateway — never a
//    simulator core;
//  * each track is appended to by exactly one thread (the owner core of
//    the track's component), so per-track order is the deterministic
//    execution order and needs no synchronization;
//  * export stable-sorts every event by (ts, pid, tid): ties between
//    tracks are broken by the track identity and ties within a track keep
//    append order, so the serialized bytes are identical on 1 or K cores.
// Tracks whose content is inherently shard-dependent — barrier windows,
// per-core kernel counters — carry Category::kParallel and are excluded
// from the default export (`--trace-parallel` opts them in; a 1-shard run
// has no barriers to show, and byte-identity must hold by default).
//
// Recording is off unless a TraceRecorder is installed via
// set_active_trace AND armed: every record call starts with one relaxed
// flag load, which is what keeps the disabled overhead inside the
// microbench's 2% budget.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"

namespace stopwatch::obs {

/// Whether a track survives the default (shard-count-invariant) export.
enum class Category : std::uint8_t {
  kSim,       ///< virtual-time component events, byte-identical across shards
  kParallel,  ///< execution-machinery events (barriers, per-core counters)
};

/// One recorded event. Names and argument keys are string literals (the
/// recorder stores the pointers, not copies) — the trace vocabulary is
/// static by design.
struct TraceEvent {
  std::int64_t ts_ns{0};
  std::int64_t dur_ns{-1};  ///< >= 0 only for complete ('X') events
  const char* name{nullptr};
  const char* arg_name{nullptr};  ///< nullptr = no args object
  std::uint64_t arg_value{0};
  char ph{'i'};  ///< 'i' instant, 'X' complete, 'C' counter
};

class TraceRecorder;

/// Single-writer append buffer for one timeline row in the trace UI.
class TraceTrack {
 public:
  void instant(std::int64_t ts_ns, const char* name,
               const char* arg_name = nullptr, std::uint64_t arg_value = 0) {
    if (!armed()) return;
    events_.push_back({ts_ns, -1, name, arg_name, arg_value, 'i'});
  }
  void complete(std::int64_t ts_ns, std::int64_t dur_ns, const char* name,
                const char* arg_name = nullptr, std::uint64_t arg_value = 0) {
    if (!armed()) return;
    events_.push_back({ts_ns, dur_ns, name, arg_name, arg_value, 'X'});
  }
  void counter(std::int64_t ts_ns, const char* name, const char* series,
               std::uint64_t value) {
    if (!armed()) return;
    events_.push_back({ts_ns, -1, name, series, value, 'C'});
  }

 private:
  friend class TraceRecorder;
  TraceTrack(const std::atomic<bool>* enabled, std::uint32_t pid,
             std::uint32_t tid, std::string process_name,
             std::string thread_name, Category category)
      : enabled_(enabled),
        pid_(pid),
        tid_(tid),
        process_name_(std::move(process_name)),
        thread_name_(std::move(thread_name)),
        category_(category) {}

  [[nodiscard]] bool armed() const {
    return enabled_->load(std::memory_order_relaxed);
  }

  const std::atomic<bool>* enabled_;
  std::uint32_t pid_;
  std::uint32_t tid_;
  std::string process_name_;
  std::string thread_name_;
  Category category_;
  std::vector<TraceEvent> events_;
};

class TraceRecorder {
 public:
  void arm() { enabled_.store(true, std::memory_order_relaxed); }
  void disarm() { enabled_.store(false, std::memory_order_relaxed); }
  [[nodiscard]] bool armed() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// The track with identity (pid, tid), created on first request (the
  /// names and category are fixed by the creator). Creation is
  /// mutex-guarded — components may materialize lazily from their owner
  /// core's thread — but the returned pointer is stable and all event
  /// recording on it is lock-free.
  TraceTrack* track(std::uint32_t pid, std::uint32_t tid,
                    std::string process_name, std::string thread_name,
                    Category category = Category::kSim);

  /// Chrome trace-event JSON of every kSim track (plus kParallel tracks
  /// when `include_parallel`): metadata records naming each process and
  /// thread, then all events stable-sorted by (ts, pid, tid). Timestamps
  /// serialize as integer-exact microsecond strings (ns with three
  /// decimals), so equal inputs give equal bytes.
  [[nodiscard]] std::string export_json(bool include_parallel = false) const;

  /// Drops every track and recorded event (the armed flag is unchanged).
  void clear();

  [[nodiscard]] std::size_t event_count() const;

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::deque<TraceTrack> tracks_;  // deque: stable addresses across growth
  std::map<std::pair<std::uint32_t, std::uint32_t>, TraceTrack*> by_id_;
};

/// The process-wide recorder the current scenario run should record into
/// (nullptr when tracing is off — the common case). The runner installs
/// one around a single traced scenario; Cloud and TopologyBuilder capture
/// it at construction.
[[nodiscard]] TraceRecorder* active_trace();
void set_active_trace(TraceRecorder* recorder);

/// Bridges the sim kernel's execution hook onto a (kParallel) counter
/// track. The kernel itself samples (every Simulator::kTraceSampleEvery
/// executed events), so this just records each notification.
class KernelCounterSink final : public sim::KernelTraceSink {
 public:
  explicit KernelCounterSink(TraceTrack* track) : track_(track) {}

  void on_executed(std::int64_t now_ns, std::uint64_t executed) override {
    if (track_ != nullptr) {
      track_->counter(now_ns, "events_executed", "executed", executed);
    }
  }

 private:
  TraceTrack* track_;
};

}  // namespace stopwatch::obs
