#include "obs/metrics.hpp"

namespace stopwatch::obs {

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t n = buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) snap.buckets.emplace_back(i, n);
  }
  return snap;
}

Histogram* Registry::histogram(const std::string& name) {
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

void Registry::set_counter(const std::string& name, std::uint64_t value) {
  counters_[name] = value;
}

void Registry::set_gauge(const std::string& name, std::uint64_t value) {
  gauges_[name] = value;
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, value] : counters_) {
    snap.counters.emplace_back(name, value);
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, value] : gauges_) {
    snap.gauges.emplace_back(name, value);
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    snap.histograms.emplace_back(name, hist->snapshot());
  }
  return snap;
}

}  // namespace stopwatch::obs
