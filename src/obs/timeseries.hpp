// Bounded-memory time-series rollups keyed by *sim-time* windows.
//
// The churn/open-loop roadmap item wants tail-latency-over-time and
// leakage-bits-over-time series that survive multi-hour simulated
// horizons without growing. A TimeSeries keeps a fixed budget of
// consecutive windows, each a mergeable rollup (count / sum / max plus a
// deterministic quantile sketch over power-of-two buckets — the same
// bucket law as obs::Histogram). When the horizon outgrows the budget the
// window width doubles and adjacent windows merge pairwise, so memory is
// O(max_windows) for any horizon while the series keeps full coverage.
//
// Determinism rules:
//  * Everything is keyed by sim time and written by exactly one thread
//    (the owner core of the producing component), so the snapshot is a
//    pure function of the recorded (t, value) sequence — byte-identical
//    across sim_shards and --jobs, which is why the serialized
//    `timeseries` block participates in the cross-shard identity tests
//    (unlike the shard-dependent `observability` block).
//  * Coarsening is triggered only by sim-time window indices, never by
//    wall clock or allocation pressure.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace stopwatch::obs {

/// Deterministic mergeable quantile sketch: bucket i counts values whose
/// bit_width is i — [2^(i-1), 2^i), bucket 0 exactly the zeros. Merging
/// two sketches (bucket-wise add) equals sketching the concatenated
/// stream, which is what makes per-window and per-shard rollups foldable.
class QuantileSketch {
 public:
  void record(std::uint64_t value);
  void merge(const QuantileSketch& other);

  [[nodiscard]] std::uint64_t count() const { return count_; }

  /// Upper edge (2^i - 1) of the bucket holding the q-quantile by rank
  /// (q clamped to [0, 1]; 0 on an empty sketch). The true quantile v
  /// satisfies v <= quantile_upper(q) < 2 * max(v, 1) — the rank error is
  /// bounded by one power-of-two bucket.
  [[nodiscard]] std::uint64_t quantile_upper(double q) const;

  /// (bucket index, count) for non-empty buckets, ascending.
  [[nodiscard]] std::vector<std::pair<int, std::uint64_t>> nonzero() const;

  /// Byte-exact text form ("i:count,..." ascending; empty sketch is "").
  [[nodiscard]] std::string serialize() const;

 private:
  static constexpr int kBuckets = 65;  // bit_width of a uint64 is in [0, 64]
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_{0};
};

/// One window's rollup.
struct TimeSeriesWindow {
  std::uint64_t count{0};
  std::uint64_t sum{0};
  std::uint64_t max{0};
  QuantileSketch sketch;
};

/// Snapshot for serialization: non-empty windows with their start times.
struct TimeSeriesSnapshot {
  std::int64_t window_ns{0};
  std::uint64_t budget_windows{0};
  std::vector<std::pair<std::int64_t, TimeSeriesWindow>> windows;
};

class TimeSeries {
 public:
  /// Windows start at sim time 0 with width `initial_window_ns`; at most
  /// `max_windows` are ever held (width doubles when the horizon
  /// overflows). Both must be positive.
  TimeSeries(std::int64_t initial_window_ns, std::size_t max_windows);

  /// Records `value` at sim time `t_ns` (negative clamps to window 0).
  /// Single-writer by contract.
  void record(std::int64_t t_ns, std::uint64_t value);

  [[nodiscard]] TimeSeriesSnapshot snapshot() const;

  [[nodiscard]] std::int64_t window_ns() const { return window_ns_; }
  [[nodiscard]] std::size_t max_windows() const { return max_windows_; }
  [[nodiscard]] std::size_t window_count() const { return windows_.size(); }
  [[nodiscard]] std::uint64_t total_count() const { return total_; }

  /// Bytes held by the window ring — capacity is reserved up front and
  /// never grows past the budget, which is what the fixed-budget tests
  /// assert.
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  void coarsen();

  std::int64_t window_ns_;
  std::size_t max_windows_;
  std::uint64_t total_{0};
  std::vector<TimeSeriesWindow> windows_;  // dense from window index 0
};

}  // namespace stopwatch::obs
