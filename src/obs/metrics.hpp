// Lock-free metrics primitives for the observability layer.
//
// Design rules, all serving deterministic output:
//  * Histograms use fixed power-of-two bucket edges — bucket i counts
//    values whose bit_width is i, i.e. [2^(i-1), 2^i), with bucket 0
//    holding exactly the zeros — so the bucket layout never depends on
//    the data.
//  * Every mutation is commutative (relaxed atomic adds, a CAS max), so a
//    snapshot taken after the writers quiesce is independent of the
//    interleaving: permuting the merge/record order cannot change it,
//    which is what lets one shared histogram serve concurrent
//    Network::send callers on different simulator cores.
//  * The Registry itself is single-threaded — histograms are created at
//    cloud construction (before any worker runs) and counters are copied
//    in at scenario end; only Histogram::record is concurrent.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace stopwatch::obs {

/// Deterministic point-in-time view of one Histogram.
struct HistogramSnapshot {
  std::uint64_t count{0};
  std::uint64_t sum{0};
  std::uint64_t max{0};
  /// (bucket index, count) for non-empty buckets, ascending. Bucket i
  /// holds values in [2^(i-1), 2^i); bucket 0 holds exactly the zeros.
  std::vector<std::pair<int, std::uint64_t>> buckets;
};

/// Log-bucketed histogram of unsigned values, safe to record into from
/// any thread.
class Histogram {
 public:
  void record(std::uint64_t value) {
    buckets_[std::bit_width(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen && !max_.compare_exchange_weak(
                               seen, value, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] HistogramSnapshot snapshot() const;

 private:
  static constexpr int kBuckets = 65;  // bit_width of a uint64 is in [0, 64]
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// End-of-run registry snapshot: counters, gauges, and histograms sorted
/// by name, ready for deterministic serialization into a Result's
/// `observability` block.
struct Snapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  /// Level/occupancy readings (high-water marks, byte footprints) —
  /// semantically "how much was held" vs a counter's "how often". Gauges
  /// recorded into deterministic output must themselves be deterministic;
  /// wall-clock/RSS readings belong in the `profile` block instead.
  std::vector<std::pair<std::string, std::uint64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  [[nodiscard]] bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// Named metrics, owned by one cloud/scenario. Components keep their own
/// cheap always-on counters (plain or relaxed-atomic integers on their
/// hot paths); the owner copies them in through set_counter at scenario
/// end, so the registry never sits on a hot path.
class Registry {
 public:
  /// The named histogram, created on first use. Call during setup
  /// (single-threaded); the returned pointer is stable for the registry's
  /// lifetime and safe to record into from any thread.
  [[nodiscard]] Histogram* histogram(const std::string& name);

  /// Sets a counter's end-of-run value (single-threaded; last write wins).
  void set_counter(const std::string& name, std::uint64_t value);

  /// Sets a gauge's end-of-run value (single-threaded; last write wins).
  void set_gauge(const std::string& name, std::uint64_t value);

  [[nodiscard]] Snapshot snapshot() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, std::uint64_t> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace stopwatch::obs
