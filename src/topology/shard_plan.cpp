#include "topology/shard_plan.hpp"

#include <algorithm>
#include <map>
#include <string>

#include "common/contracts.hpp"

namespace stopwatch::topology {

namespace {

int find_root(std::vector<int>& parent, int x) {
  while (parent[static_cast<std::size_t>(x)] != x) {
    parent[static_cast<std::size_t>(x)] =
        parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
    x = parent[static_cast<std::size_t>(x)];
  }
  return x;
}

}  // namespace

ShardPlan ShardPlan::build(
    int shards, int machine_count,
    const std::vector<std::vector<int>>& machine_groups) {
  SW_EXPECTS(shards >= 1);
  SW_EXPECTS(machine_count >= 1);
  ShardPlan plan;
  plan.shards_ = shards;
  plan.machine_shard_.assign(static_cast<std::size_t>(machine_count), -1);
  plan.loads_.assign(static_cast<std::size_t>(shards), 0);

  // Union-find over the shares-a-machine graph of the active VMs.
  std::vector<int> parent(static_cast<std::size_t>(machine_count));
  for (int m = 0; m < machine_count; ++m) {
    parent[static_cast<std::size_t>(m)] = m;
  }
  for (const auto& group : machine_groups) {
    for (const int m : group) {
      SW_EXPECTS_MSG(m >= 0 && m < machine_count,
                     "ShardPlan machine index " + std::to_string(m) +
                         " out of range [0, " + std::to_string(machine_count) +
                         ")");
    }
    for (std::size_t i = 1; i < group.size(); ++i) {
      const int a = find_root(parent, group[0]);
      const int b = find_root(parent, group[i]);
      if (a != b) {
        parent[static_cast<std::size_t>(std::max(a, b))] = std::min(a, b);
      }
    }
  }

  // Collect components of the machines the groups touch. std::map keys by
  // root = smallest member, so iteration order is deterministic.
  std::map<int, std::vector<int>> components;
  for (const auto& group : machine_groups) {
    for (const int m : group) components[find_root(parent, m)].push_back(m);
  }
  struct Component {
    int root;
    std::vector<int> machines;  // sorted, deduplicated
  };
  std::vector<Component> ordered;
  ordered.reserve(components.size());
  for (auto& [root, machines] : components) {
    std::sort(machines.begin(), machines.end());
    machines.erase(std::unique(machines.begin(), machines.end()),
                   machines.end());
    ordered.push_back({root, std::move(machines)});
  }
  plan.components_ = static_cast<int>(ordered.size());

  // Deterministic greedy balance: biggest components first (smallest root
  // breaks ties), each onto the least-loaded shard (lowest index breaks
  // ties) — longest-processing-time scheduling, a pure function of the
  // active set.
  std::sort(ordered.begin(), ordered.end(),
            [](const Component& a, const Component& b) {
              if (a.machines.size() != b.machines.size()) {
                return a.machines.size() > b.machines.size();
              }
              return a.root < b.root;
            });
  for (const auto& component : ordered) {
    int target = 0;
    for (int s = 1; s < shards; ++s) {
      if (plan.loads_[static_cast<std::size_t>(s)] <
          plan.loads_[static_cast<std::size_t>(target)]) {
        target = s;
      }
    }
    for (const int m : component.machines) {
      plan.machine_shard_[static_cast<std::size_t>(m)] = target;
    }
    plan.loads_[static_cast<std::size_t>(target)] +=
        static_cast<int>(component.machines.size());
  }
  // Egress + external clients go to the least-loaded shard, ties to the
  // highest index: with shards > 1 that is never shard 0 when loads are
  // balanced, which removes the historical core-0 egress funnel.
  for (int s = 1; s < shards; ++s) {
    if (plan.loads_[static_cast<std::size_t>(s)] <=
        plan.loads_[static_cast<std::size_t>(plan.egress_shard_)]) {
      plan.egress_shard_ = s;
    }
  }
  return plan;
}

int ShardPlan::shard_of_machine(int machine) const {
  SW_EXPECTS(machine >= 0);
  if (machine_shard_.empty()) return 0;  // trivial plan
  SW_EXPECTS(machine < static_cast<int>(machine_shard_.size()));
  const int assigned = machine_shard_[static_cast<std::size_t>(machine)];
  return assigned >= 0 ? assigned : machine % shards_;
}

bool ShardPlan::machine_planned(int machine) const {
  if (machine_shard_.empty()) return false;
  SW_EXPECTS(machine >= 0 &&
             machine < static_cast<int>(machine_shard_.size()));
  return machine_shard_[static_cast<std::size_t>(machine)] >= 0;
}

}  // namespace stopwatch::topology
