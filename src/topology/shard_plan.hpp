// Machine-to-shard assignment for shard-parallel simulation.
//
// A VM's replicas call synchronously into their hosting machines (clock
// reads, preemption draws, disk scheduling), and replicas of one VM
// exchange multicast traffic whose group state must stay single-threaded
// — so all machines hosting one VM must land on the same simulator core.
// Transitively, any two VMs sharing a machine must co-locate too. The
// plan therefore clusters the *active* VMs' machine triples into
// connected components (union-find over the shares-a-machine graph) and
// distributes whole components across shards with a deterministic greedy
// balance: components ordered by (size desc, smallest machine index asc),
// each assigned to the currently least-loaded shard (ties to the lowest
// shard index). Machines touched by no active VM get a round-robin
// fallback assignment; under the activation contract they never
// materialize mid-run, so the fallback only keeps shard_of_machine total.
#pragma once

#include <vector>

namespace stopwatch::topology {

class ShardPlan {
 public:
  /// Trivial plan: one shard owning everything.
  ShardPlan() = default;

  /// Builds a plan over `machine_count` machines for `shards` cores from
  /// the machine groups of the VMs that will be active. Deterministic: a
  /// pure function of the arguments.
  static ShardPlan build(int shards, int machine_count,
                         const std::vector<std::vector<int>>& machine_groups);

  [[nodiscard]] int shards() const { return shards_; }
  [[nodiscard]] int shard_of_machine(int machine) const;
  /// True if the machine belongs to an active VM's component (false for
  /// round-robin fallback assignments).
  [[nodiscard]] bool machine_planned(int machine) const;
  /// Connected components among the active machines (parallelism upper
  /// bound: fewer components than shards leaves cores idle).
  [[nodiscard]] int component_count() const { return components_; }
  /// Machines per shard, planned components only (balance diagnostics).
  [[nodiscard]] const std::vector<int>& shard_loads() const { return loads_; }
  /// Shard that owns the egress gateway and the external-client nodes:
  /// the least-loaded shard after the component deal, ties to the
  /// *highest* index — non-zero whenever shards > 1, so egress traffic
  /// stops funneling through core 0. 0 for the trivial plan.
  [[nodiscard]] int egress_shard() const { return egress_shard_; }

 private:
  int shards_{1};
  std::vector<int> machine_shard_;  // -1 = unplanned (round-robin fallback)
  std::vector<int> loads_;
  int components_{0};
  int egress_shard_{0};
};

}  // namespace stopwatch::topology
