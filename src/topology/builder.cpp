#include "topology/builder.hpp"

#include <algorithm>
#include <utility>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "obs/profiler.hpp"

namespace stopwatch::topology {

TopologyBuilder::TopologyBuilder(sim::Simulator& sim, net::Network& net,
                                 TopologyConfig cfg)
    : cfg_(cfg),
      policy_(hypervisor::make_policy(cfg.policy)),
      trace_(obs::active_trace()),
      sim_(&sim),
      egress_core_(&sim),
      net_(&net),
      table_(sim, net,
             MachineTableConfig{cfg.machine_count, cfg.shard_size, cfg.seed,
                                cfg.machine_template, cfg.clock_offset_spread},
             [this](int machine, const net::Frame& f) {
               on_machine_frame(machine, f);
             }) {
  policy_->validate_replicas("TopologyConfig", cfg_.replica_count,
                             cfg_.machine_count);
  // Eager mode reproduces the dense construction: machines (and their
  // network nodes) exist up front, then the egress node.
  if (cfg_.wiring == WiringMode::kEager) table_.materialize_all();
  egress_node_ = net_->add_node(
      "egress", [this](const net::Frame& f) { on_egress_frame(f); });
  if (trace_ != nullptr) {
    egress_track_ = trace_->track(0, 0, "egress", "release-gate");
  }
}

std::uint32_t TopologyBuilder::add_vm(std::string name, ProgramFactory factory,
                                      const std::vector<int>& machine_indices) {
  SW_EXPECTS(!started_);
  SW_EXPECTS(factory != nullptr);
  const int replicas = effective_replicas();
  SW_EXPECTS_MSG(static_cast<int>(machine_indices.size()) >= replicas,
                 "VM '" + name + "' needs " + std::to_string(replicas) +
                     " machine indices, got " +
                     std::to_string(machine_indices.size()));

  const auto vm_index = static_cast<std::uint32_t>(vms_.size());
  vms_.push_back(VmEntry{});
  VmEntry& entry = vms_.back();
  entry.name = std::move(name);
  entry.id = VmId{vm_index};
  entry.machines.assign(machine_indices.begin(),
                        machine_indices.begin() + replicas);
  entry.factory = std::move(factory);
  entry.det_seed = SplitMix64(cfg_.seed ^ (0xABCDULL + vm_index)).next();
  for (int m : entry.machines) {
    SW_EXPECTS_MSG(m >= 0 && m < cfg_.machine_count,
                   "VM '" + entry.name + "' machine index " +
                       std::to_string(m) + " out of range [0, " +
                       std::to_string(cfg_.machine_count) + ")");
  }
  // Replica placement constraint sanity: distinct machines.
  for (std::size_t i = 0; i < entry.machines.size(); ++i) {
    for (std::size_t j = i + 1; j < entry.machines.size(); ++j) {
      SW_EXPECTS_MSG(entry.machines[i] != entry.machines[j],
                     "VM '" + entry.name +
                         "' places two replicas on machine " +
                         std::to_string(entry.machines[i]));
    }
  }

  // The VM's logical address doubles as its ingress entry point. This is
  // the only per-VM state a lazy registration pays for.
  entry.addr = net_->add_node(
      "vm-" + entry.name + "-addr",
      [this, vm_index](const net::Frame& f) { on_addr_frame(vm_index, f); });
  addr_to_vm_[entry.addr.value] = vm_index;

  if (cfg_.wiring == WiringMode::kEager) wire(vm_index);
  return vm_index;
}

sim::Simulator& TopologyBuilder::core_of_machine(int machine) {
  if (sharded_ == nullptr) return *sim_;
  return sharded_->shard(plan_.shard_of_machine(machine));
}

void TopologyBuilder::wire(std::uint32_t vm_index) {
  VmEntry& entry = vms_[vm_index];
  SW_ASSERT(!entry.wired);
  SW_EXPECTS_MSG(!activation_locked_,
                 "VM '" + entry.name +
                     "' is outside the sharded activation set: traffic "
                     "reached a VM that attach_sharding did not "
                     "pre-materialize, and wiring it now would build "
                     "machines from a worker thread mid-window");
  if (sharded_ != nullptr) {
    // The plan clusters a VM's machine triple into one component, so all
    // replicas — and the synchronous machine calls between them — live on
    // a single core.
    const int owner = plan_.shard_of_machine(entry.machines.front());
    for (int m : entry.machines) {
      SW_ASSERT(plan_.shard_of_machine(m) == owner);
    }
  }
  const int replicas = effective_replicas();

  if (trace_ != nullptr && entry.track == nullptr) {
    // Track identity is the machine-table shard + VM index — both
    // invariant under sim_shards, unlike the owner core.
    const auto table_shard =
        static_cast<std::uint32_t>(entry.machines.front() / cfg_.shard_size);
    std::string pname = "machine-shard-";
    pname += std::to_string(table_shard);
    entry.track =
        trace_->track(1 + table_shard, vm_index, std::move(pname), entry.name);
  }

  // Control and ingress multicast groups (replicated policies only).
  if (policy_->replicated() && replicas > 1) {
    entry.control_group =
        std::make_unique<net::MulticastGroup>(*net_, next_group_id_++);
    entry.ingress_group =
        std::make_unique<net::MulticastGroup>(*net_, next_group_id_++);
    entry.ingress_group_id = next_group_id_ - 1;
    groups_[next_group_id_ - 2] = entry.control_group.get();
    groups_[next_group_id_ - 1] = entry.ingress_group.get();

    // Ingress node is the (sole) sender in the ingress group; NAKs flowing
    // back to it are routed by on_addr_frame.
    entry.ingress_group->add_member(entry.addr,
                                    [](NodeId, const net::FramePayload&) {});
  }

  for (int r = 0; r < replicas; ++r) {
    const int m = entry.machines[static_cast<std::size_t>(r)];
    hypervisor::GuestContextConfig gc = cfg_.guest_template;
    gc.policy = cfg_.policy;
    gc.replica_count = replicas;

    sim::Simulator& core = core_of_machine(m);
    hypervisor::ReplicaServices services;
    services.machine_node = table_.machine_node(m);
    services.egress_node = egress_node_;
    services.send_frame = [this, vm_index, owner = &core](net::Frame f) {
      // Non-tunneling guests emit output directly (no egress gate), so the
      // attacker-visible instant is this send; tunneled outputs are
      // observed at their egress release instead. The timestamp must come
      // from the replica's own core: this lambda runs on its worker thread.
      if (egress_tap_) {
        if (const auto* gp =
                std::get_if<net::GuestPacketPayload>(&f.payload)) {
          egress_tap_(vm_index, owner->now(), gp->pkt);
        }
      }
      net_->send(std::move(f));
    };
    if (entry.control_group) {
      net::MulticastGroup* group = entry.control_group.get();
      const NodeId node = table_.machine_node(m);
      services.control_multicast = [group, node](net::FramePayload payload,
                                                 std::uint32_t bytes) {
        group->send(node, std::move(payload), bytes);
      };
    }

    auto ctx = std::make_unique<hypervisor::GuestContext>(
        entry.id, ReplicaIndex{static_cast<std::uint32_t>(r)}, entry.addr,
        table_.machine(m), core, gc, entry.factory(), entry.det_seed,
        std::move(services));

    if (entry.control_group) {
      hypervisor::GuestContext* raw = ctx.get();
      entry.control_group->add_member(
          table_.machine_node(m),
          [raw](NodeId, const net::FramePayload& p) {
            if (const auto* prop = std::get_if<net::Proposal>(&p)) {
              raw->on_proposal(*prop);
            } else if (const auto* b = std::get_if<net::SyncBeacon>(&p)) {
              raw->on_sync_beacon(*b);
            } else if (const auto* e = std::get_if<net::EpochReport>(&p)) {
              raw->on_epoch_report(*e);
            }
          });
    }
    if (entry.ingress_group) {
      hypervisor::GuestContext* raw = ctx.get();
      entry.ingress_group->add_member(
          table_.machine_node(m),
          [raw](NodeId, const net::FramePayload& p) {
            if (const auto* c = std::get_if<net::IngressCopy>(&p)) {
              raw->on_ingress_copy(*c);
            }
          });
    }
    entry.replicas.push_back(std::move(ctx));
  }
  entry.wired = true;
  ++materialized_vms_;
}

void TopologyBuilder::boot(VmEntry& entry) {
  SW_ASSERT(entry.wired && !entry.booted);
  // Exchange of boot-time machine clocks; start = median (Sec. IV-A).
  std::vector<std::int64_t> clocks;
  for (int m : entry.machines) {
    clocks.push_back(table_.machine(m).local_clock().ns);
  }
  std::sort(clocks.begin(), clocks.end());
  const VirtTime start{clocks[(clocks.size() - 1) / 2]};
  for (auto& replica : entry.replicas) {
    replica->start(start);
  }
  if (entry.track != nullptr) {
    entry.track->instant(core_of_machine(entry.machines.front()).now().ns,
                         "boot", "virt_start",
                         static_cast<std::uint64_t>(start.ns));
  }
  entry.booted = true;
}

void TopologyBuilder::start() {
  SW_EXPECTS(!started_);
  started_ = true;
  // One boot batch per (owner core, machine shard): a shard of wired VMs
  // costs one simulator arena slot instead of one per VM, each boot thunk
  // a 16-byte capture riding the batch vector's storage, and each batch
  // lands on the core that owns the booting replicas. Unsharded, the key
  // degenerates to (0, table shard) — the seed batching, byte for byte.
  std::map<std::pair<int, int>, std::vector<sim::Task>> batches;
  for (std::uint32_t i = 0; i < vms_.size(); ++i) {
    if (!vms_[i].wired || vms_[i].booted) continue;
    const int machine = vms_[i].machines.front();
    const int owner = sharded_ != nullptr ? plan_.shard_of_machine(machine) : 0;
    batches[{owner, table_.shard_of(machine)}].push_back(
        [this, i] { boot(vms_[i]); });
  }
  for (auto& [key, batch] : batches) {
    sim::Simulator& core =
        sharded_ != nullptr ? sharded_->shard(key.first) : *sim_;
    core.schedule_batch(core.now(), std::move(batch));
  }
}

void TopologyBuilder::halt_all() {
  for (auto& vm : vms_) {
    for (auto& r : vm.replicas) r->halt();
  }
}

void TopologyBuilder::materialize(std::uint32_t vm) {
  SW_EXPECTS(vm < vms_.size());
  VmEntry& entry = vms_[vm];
  if (entry.wired) return;  // idempotent: replays never re-wire
  wire(vm);
  if (started_) boot(vms_[vm]);
}

void TopologyBuilder::attach_sharding(
    sim::ShardedSimulator& sharded, ShardPlan plan,
    const std::vector<std::uint32_t>& active_vms) {
  SW_EXPECTS_MSG(cfg_.wiring == WiringMode::kLazy,
                 "attach_sharding requires WiringMode::kLazy: eager mode "
                 "materializes every machine on one core in the constructor");
  SW_EXPECTS(!started_ && !activation_locked_);
  SW_EXPECTS_MSG(table_.materialized_machines() == 0,
                 "attach_sharding must run before any machine materializes");
  SW_EXPECTS_MSG(plan.shards() == sharded.shard_count(),
                 "shard plan built for a different shard count");
  sharded_ = &sharded;
  plan_ = std::move(plan);
  table_.set_sharding(sharded_, &plan_);
  // The egress gateway leaves core 0: its node delivers — and its clock
  // reads and hold releases run — on the plan's egress shard.
  egress_core_ = &sharded_->shard(plan_.egress_shard());
  net_->set_node_owner(egress_node_, plan_.egress_shard());

  // Wire the activation set in index order — deterministic regardless of
  // the order the caller discovered the VMs in — then lock it.
  std::vector<std::uint32_t> ordered(active_vms);
  std::sort(ordered.begin(), ordered.end());
  ordered.erase(std::unique(ordered.begin(), ordered.end()), ordered.end());
  for (const std::uint32_t vm : ordered) {
    SW_EXPECTS(vm < vms_.size());
    if (!vms_[vm].wired) wire(vm);
    // The VM's ingress address delivers on the shard hosting its replicas,
    // keeping the whole ingress -> replicate -> deliver path one-core.
    net_->set_node_owner(vms_[vm].addr,
                         plan_.shard_of_machine(vms_[vm].machines.front()));
  }
  activation_locked_ = true;
  SW_EXPECTS_MSG(!egress_tap_ || sharded_->shard_count() == 1 ||
                     policy_->tunnels_output() || wired_vms_on_one_shard(),
                 "egress tap is not single-writer under this sharding: the "
                 "policy does not tunnel output, so replica sends fire the "
                 "tap from every shard hosting an active VM");
}

bool TopologyBuilder::wired_vms_on_one_shard() const {
  int owner = -1;
  for (const auto& vm : vms_) {
    if (!vm.wired) continue;
    const int o = plan_.shard_of_machine(vm.machines.front());
    if (owner == -1) {
      owner = o;
    } else if (o != owner) {
      return false;
    }
  }
  return true;
}

void TopologyBuilder::set_egress_tap(EgressTap tap) {
  SW_EXPECTS_MSG(tap == nullptr || sharded_ == nullptr ||
                     sharded_->shard_count() == 1 ||
                     policy_->tunnels_output() || wired_vms_on_one_shard(),
                 "egress tap is not single-writer under this sharding: the "
                 "policy does not tunnel output, so replica sends fire the "
                 "tap from every shard hosting an active VM");
  egress_tap_ = std::move(tap);
}

bool TopologyBuilder::materialized(std::uint32_t vm) const {
  SW_EXPECTS(vm < vms_.size());
  return vms_[vm].wired;
}

NodeId TopologyBuilder::vm_addr(std::uint32_t vm) const {
  SW_EXPECTS(vm < vms_.size());
  return vms_[vm].addr;
}

const std::vector<int>& TopologyBuilder::vm_machines(std::uint32_t vm) const {
  SW_EXPECTS(vm < vms_.size());
  return vms_[vm].machines;
}

int TopologyBuilder::replicas_of(std::uint32_t vm) const {
  SW_EXPECTS(vm < vms_.size());
  return static_cast<int>(vms_[vm].replicas.size());
}

hypervisor::GuestContext& TopologyBuilder::replica(std::uint32_t vm, int r) {
  SW_EXPECTS(vm < vms_.size());
  SW_EXPECTS_MSG(vms_[vm].wired,
                 "VM '" + vms_[vm].name +
                     "' is not materialized yet (lazy wiring: no traffic has "
                     "reached it)");
  SW_EXPECTS(r >= 0 && r < static_cast<int>(vms_[vm].replicas.size()));
  return *vms_[vm].replicas[static_cast<std::size_t>(r)];
}

const EgressStats& TopologyBuilder::egress_stats(std::uint32_t vm) const {
  SW_EXPECTS(vm < vms_.size());
  return vms_[vm].egress_stats;
}

bool TopologyBuilder::replicas_deterministic(std::uint32_t vm) const {
  SW_EXPECTS(vm < vms_.size());
  const VmEntry& entry = vms_[vm];
  for (std::size_t i = 1; i < entry.replicas.size(); ++i) {
    const auto& a = entry.replicas[0]->output_hashes();
    const auto& b = entry.replicas[i]->output_hashes();
    const std::size_t n = std::min(a.size(), b.size());
    for (std::size_t k = 0; k < n; ++k) {
      if (a[k] != b[k]) return false;
    }
  }
  return true;
}

std::uint64_t TopologyBuilder::total_divergences() const {
  std::uint64_t total = 0;
  for (const auto& vm : vms_) {
    for (const auto& r : vm.replicas) {
      const auto& s = r->stats();
      total += s.divergence_median_passed + s.divergence_disk_late +
               s.divergence_epoch_missing;
    }
    total += vm.egress_stats.hash_mismatches;
  }
  return total;
}

hypervisor::PolicyStats TopologyBuilder::aggregate_policy_stats() const {
  // The topology-level instance gates egress releases; each replica's
  // instance makes the delivery/aggregation decisions for that replica.
  hypervisor::PolicyStats total = policy_->stats();
  for (const auto& vm : vms_) {
    for (const auto& r : vm.replicas) {
      const hypervisor::PolicyStats& s = r->policy().stats();
      total.deliveries_quantized += s.deliveries_quantized;
      total.egress_releases += s.egress_releases;
      total.replica_aggregations += s.replica_aggregations;
    }
  }
  return total;
}

void TopologyBuilder::on_addr_frame(std::uint32_t vm_index,
                                    const net::Frame& frame) {
  // Lazy wiring: the first frame reaching a VM's ingress address
  // materializes its replicas (pre-start frames wire too — materialize()
  // defers the boot to start() — so laziness never drops traffic an eager
  // cloud would deliver). Replays find the entry wired and fall straight
  // through to delivery.
  if (!vms_[vm_index].wired && cfg_.wiring == WiringMode::kLazy) {
    materialize(vm_index);
  }
  VmEntry& entry = vms_[vm_index];
  if (entry.ingress_group && frame.rm_group == entry.ingress_group_id) {
    // NAKs of the ingress stream flow back to the (sender) ingress node.
    entry.ingress_group->on_frame(entry.addr, frame);
    return;
  }
  if (const auto* gp = std::get_if<net::GuestPacketPayload>(&frame.payload)) {
    on_ingress_packet(vm_index, gp->pkt);
  }
}

void TopologyBuilder::on_ingress_packet(std::uint32_t vm_index,
                                        const net::Packet& pkt) {
  VmEntry& entry = vms_[vm_index];
  SW_ASSERT(entry.wired);  // on_addr_frame materialized lazy entries
  if (entry.track != nullptr) {
    entry.track->instant(core_of_machine(entry.machines.front()).now().ns,
                         "ingress", "bytes", pkt.size_bytes);
  }
  if (entry.ingress_group) {
    net::IngressCopy copy;
    copy.vm = entry.id;
    copy.copy_seq = ++entry.ingress_seq;
    copy.pkt = pkt;
    entry.ingress_group->send(entry.addr, copy,
                              pkt.size_bytes + net::kHeaderBytes);
  } else {
    // Unreplicated: forward to the (single) hosting machine.
    net::Frame f;
    f.src = entry.addr;
    f.dst = table_.machine_node(entry.machines[0]);
    f.size_bytes = pkt.size_bytes;
    f.payload = net::GuestPacketPayload{pkt};
    net_->send(std::move(f));
  }
}

void TopologyBuilder::on_machine_frame(int machine_idx,
                                       const net::Frame& frame) {
  // Reliable-multicast frames route to their group.
  if (frame.rm_group != 0) {
    const auto it = groups_.find(frame.rm_group);
    SW_ASSERT(it != groups_.end());
    it->second->on_frame(table_.machine_node(machine_idx), frame);
    return;
  }
  // Baseline direct guest packet: find the addressed VM on this machine.
  if (const auto* gp = std::get_if<net::GuestPacketPayload>(&frame.payload)) {
    const auto it = addr_to_vm_.find(gp->pkt.dst.value);
    if (it == addr_to_vm_.end()) return;
    VmEntry& entry = vms_[it->second];
    for (std::size_t r = 0; r < entry.replicas.size(); ++r) {
      if (entry.machines[r] == machine_idx) {
        entry.replicas[r]->on_direct_packet(gp->pkt);
        return;
      }
    }
  }
}

void TopologyBuilder::on_egress_frame(const net::Frame& frame) {
  const auto* out = std::get_if<net::TunneledOutput>(&frame.payload);
  if (out == nullptr) return;
  SW_ASSERT(out->vm.value < vms_.size());
  VmEntry& entry = vms_[out->vm.value];
  SW_ASSERT(entry.wired);  // only running replicas tunnel output
  auto& slot = entry.egress_slots[out->out_seq];
  if (slot.copies == 0) {
    slot.hash = out->content_hash;
    slot.first_copy_ns = egress_core_->now().ns;
  } else if (slot.hash != out->content_hash) {
    ++entry.egress_stats.hash_mismatches;
  }
  ++slot.copies;
  if (egress_track_ != nullptr) {
    egress_track_->instant(egress_core_->now().ns, "replica_copy", "vm",
                           out->vm.value);
  }

  // Gate on the policy's copy count ((r+1)/2 under StopWatch: the median
  // emission timing; the sole copy elsewhere), then release after the
  // policy's hold (0 = inline; Deterland holds to the next batch boundary,
  // TifcPacing to the VM flow's next paced-queue slot).
  const int release_at =
      policy_->egress_release_copies(static_cast<int>(entry.replicas.size()));
  if (!slot.released && slot.copies >= release_at) {
    OBS_PROF_SCOPE("policy.release");
    slot.released = true;
    ++entry.egress_stats.packets_released;
    const Duration hold =
        policy_->egress_release_delay(out->vm.value, egress_core_->now());
    if (egress_series_ != nullptr) {
      // Sample at gating time for both the inline and the held path: the
      // release instant is already decided here, so the rollup stays a
      // pure function of sim time (byte-identical across shard counts).
      const std::int64_t released_at =
          egress_core_->now().ns + std::max<std::int64_t>(hold.ns, 0);
      egress_series_->record(
          released_at,
          static_cast<std::uint64_t>(released_at - slot.first_copy_ns));
    }
    if (hold.ns <= 0) {
      if (egress_track_ != nullptr) {
        egress_track_->instant(egress_core_->now().ns, "release", "vm",
                               out->vm.value);
      }
      if (egress_tap_) egress_tap_(out->vm.value, egress_core_->now(), out->pkt);
      net::Frame f;
      f.src = egress_node_;
      f.dst = out->pkt.dst;
      f.size_bytes = out->pkt.size_bytes;
      f.payload = net::GuestPacketPayload{out->pkt};
      net_->send(std::move(f));
    } else {
      if (egress_track_ != nullptr) {
        // The hold is the attacker-relevant quantity: the span runs from
        // the gating copy's arrival to the policy's release instant.
        egress_track_->complete(egress_core_->now().ns, hold.ns, "egress_hold", "vm",
                                out->vm.value);
      }
      const std::uint32_t vm_index = out->vm.value;
      egress_core_->schedule_after(hold, [this, vm_index, pkt = out->pkt] {
        if (egress_track_ != nullptr) {
          egress_track_->instant(egress_core_->now().ns, "release", "vm", vm_index);
        }
        if (egress_tap_) egress_tap_(vm_index, egress_core_->now(), pkt);
        net::Frame f;
        f.src = egress_node_;
        f.dst = pkt.dst;
        f.size_bytes = pkt.size_bytes;
        f.payload = net::GuestPacketPayload{pkt};
        net_->send(std::move(f));
      });
    }
  }
  if (slot.copies >= static_cast<int>(entry.replicas.size())) {
    entry.egress_slots.erase(out->out_seq);
  }
}

}  // namespace stopwatch::topology
