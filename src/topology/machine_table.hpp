// Sharded machine table — the cloud-scale substrate under core::Cloud.
//
// A placement-scale cloud (n = 501 machines, Θ(n²) guest VMs, paper
// Sec. VIII) cannot afford to construct every hypervisor::Machine and its
// network node up front when only a sampled subset of guests ever runs.
// The table groups machines into fixed-size shards and materializes a
// shard — machines plus their network nodes, in one pass — the first time
// any machine in it is touched. Everything a machine is built from (its
// RNG stream, its clock offset) is a pure function of (seed, index), so a
// sharded table is observably identical to a dense one regardless of the
// order shards materialize in.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "hypervisor/machine.hpp"
#include "net/network.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"
#include "topology/shard_plan.hpp"

namespace stopwatch::topology {

struct MachineTableConfig {
  int machine_count{1};
  /// Machines per shard; the materialization and event-batching granule.
  int shard_size{64};
  std::uint64_t seed{1};
  hypervisor::MachineConfig machine_template{};
  /// Machine clock offsets drawn uniformly from [0, spread) per machine.
  Duration clock_offset_spread{};
};

class MachineTable {
 public:
  /// Invoked on every frame arriving at a machine's network node.
  using FrameHandler = std::function<void(int machine, const net::Frame&)>;

  MachineTable(sim::Simulator& sim, net::Network& net, MachineTableConfig cfg,
               FrameHandler on_frame);

  MachineTable(const MachineTable&) = delete;
  MachineTable& operator=(const MachineTable&) = delete;

  /// Routes future materializations through the sharded kernel: each
  /// machine is built on (and its network node owned by) the simulator
  /// core the plan assigns it. Must be called before any affected shard
  /// materializes; both referents must outlive the table.
  void set_sharding(sim::ShardedSimulator* sharded, const ShardPlan* plan);

  [[nodiscard]] int machine_count() const { return cfg_.machine_count; }
  [[nodiscard]] int shard_size() const { return cfg_.shard_size; }
  [[nodiscard]] int shard_count() const {
    return static_cast<int>(shards_.size());
  }
  [[nodiscard]] int shard_of(int machine) const;

  /// Machine `i`, materializing its shard on first access.
  [[nodiscard]] hypervisor::Machine& machine(int i);
  /// Machine `i`'s network node, materializing its shard on first access.
  [[nodiscard]] NodeId machine_node(int i);

  /// Clock offset of machine `i`: a pure function of (seed, i), computable
  /// without materializing anything (and asserted equal to the materialized
  /// machine's configured offset).
  [[nodiscard]] Duration clock_offset(int i) const;

  /// Eagerly materializes every shard (the dense construction mode).
  void materialize_all();

  [[nodiscard]] bool machine_materialized(int i) const;
  [[nodiscard]] int materialized_shards() const { return materialized_shards_; }
  [[nodiscard]] int materialized_machines() const {
    return materialized_machines_;
  }

 private:
  struct Slot {
    std::unique_ptr<hypervisor::Machine> machine;
    NodeId node{};
  };
  struct Shard {
    bool materialized{false};
    std::vector<Slot> slots;  // sized on materialization
  };

  [[nodiscard]] int machines_in_shard(int shard) const;
  void materialize_shard(int shard);
  [[nodiscard]] Slot& slot(int machine);

  sim::Simulator* sim_;
  sim::ShardedSimulator* sharded_{nullptr};
  const ShardPlan* plan_{nullptr};
  net::Network* net_;
  MachineTableConfig cfg_;
  FrameHandler on_frame_;
  std::vector<Shard> shards_;
  int materialized_shards_{0};
  int materialized_machines_{0};
};

}  // namespace stopwatch::topology
