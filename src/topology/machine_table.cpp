#include "topology/machine_table.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace stopwatch::topology {

namespace {

/// Stream tags keeping per-machine derivations independent of each other
/// and of every other consumer of the experiment seed.
constexpr std::uint64_t kMachineRngTag = 0x51AB1E5ULL;
constexpr std::uint64_t kClockOffsetTag = 0xC10C0FF5ULL;

}  // namespace

MachineTable::MachineTable(sim::Simulator& sim, net::Network& net,
                           MachineTableConfig cfg, FrameHandler on_frame)
    : sim_(&sim), net_(&net), cfg_(cfg), on_frame_(std::move(on_frame)) {
  SW_EXPECTS_MSG(cfg_.machine_count >= 1,
                 "MachineTableConfig.machine_count must be >= 1 (got " +
                     std::to_string(cfg_.machine_count) + ")");
  SW_EXPECTS_MSG(cfg_.shard_size >= 1,
                 "MachineTableConfig.shard_size must be >= 1 (got " +
                     std::to_string(cfg_.shard_size) + ")");
  SW_EXPECTS(on_frame_ != nullptr);
  const int shards =
      (cfg_.machine_count + cfg_.shard_size - 1) / cfg_.shard_size;
  shards_.resize(static_cast<std::size_t>(shards));
}

void MachineTable::set_sharding(sim::ShardedSimulator* sharded,
                                const ShardPlan* plan) {
  SW_EXPECTS((sharded == nullptr) == (plan == nullptr));
  sharded_ = sharded;
  plan_ = plan;
}

int MachineTable::shard_of(int machine) const {
  SW_EXPECTS(machine >= 0 && machine < cfg_.machine_count);
  return machine / cfg_.shard_size;
}

int MachineTable::machines_in_shard(int shard) const {
  const int begin = shard * cfg_.shard_size;
  const int end = std::min(begin + cfg_.shard_size, cfg_.machine_count);
  return end - begin;
}

Duration MachineTable::clock_offset(int i) const {
  SW_EXPECTS(i >= 0 && i < cfg_.machine_count);
  if (cfg_.clock_offset_spread.ns <= 0) return Duration{};
  const std::uint64_t tag = kClockOffsetTag + static_cast<std::uint64_t>(i);
  Rng rng(SplitMix64(cfg_.seed ^ tag).next());
  return Duration{rng.uniform_int(0, cfg_.clock_offset_spread.ns - 1)};
}

void MachineTable::materialize_shard(int shard) {
  Shard& s = shards_[static_cast<std::size_t>(shard)];
  SW_ASSERT(!s.materialized);
  const int begin = shard * cfg_.shard_size;
  const int count = machines_in_shard(shard);
  s.slots.resize(static_cast<std::size_t>(count));
  for (int k = 0; k < count; ++k) {
    const int idx = begin + k;
    hypervisor::MachineConfig mc = cfg_.machine_template;
    mc.clock_offset = clock_offset(idx);
    const std::uint64_t tag =
        kMachineRngTag + static_cast<std::uint64_t>(idx);
    const std::uint64_t rng_seed = SplitMix64(cfg_.seed ^ tag).next();
    Slot& sl = s.slots[static_cast<std::size_t>(k)];
    // Under a shard plan the machine's event core — and its network
    // node's owner — is the plan's assignment; a machine stays a pure
    // function of (seed, index) either way.
    const int owner = plan_ != nullptr ? plan_->shard_of_machine(idx) : 0;
    sim::Simulator& core =
        sharded_ != nullptr ? sharded_->shard(owner) : *sim_;
    sl.machine = std::make_unique<hypervisor::Machine>(
        MachineId{static_cast<std::uint32_t>(idx)}, core, mc, Rng(rng_seed));
    sl.node = net_->add_node(
        "machine-" + std::to_string(idx),
        [this, idx](const net::Frame& f) { on_frame_(idx, f); });
    if (sharded_ != nullptr) net_->set_node_owner(sl.node, owner);
  }
  s.materialized = true;
  ++materialized_shards_;
  materialized_machines_ += count;
}

MachineTable::Slot& MachineTable::slot(int machine) {
  const int shard = shard_of(machine);
  Shard& s = shards_[static_cast<std::size_t>(shard)];
  if (!s.materialized) materialize_shard(shard);
  return s.slots[static_cast<std::size_t>(machine % cfg_.shard_size)];
}

hypervisor::Machine& MachineTable::machine(int i) { return *slot(i).machine; }

NodeId MachineTable::machine_node(int i) { return slot(i).node; }

void MachineTable::materialize_all() {
  for (int s = 0; s < shard_count(); ++s) {
    if (!shards_[static_cast<std::size_t>(s)].materialized) {
      materialize_shard(s);
    }
  }
}

bool MachineTable::machine_materialized(int i) const {
  SW_EXPECTS(i >= 0 && i < cfg_.machine_count);
  return shards_[static_cast<std::size_t>(i / cfg_.shard_size)].materialized;
}

}  // namespace stopwatch::topology
