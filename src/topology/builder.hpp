// Cloud-scale topology assembly — the layer between the simulator kernel
// and core::Cloud.
//
// The TopologyBuilder owns the structure of the cloud: the sharded
// MachineTable, the ingress/egress fabric, and one VmEntry per guest VM.
// Two wiring modes govern when a VM's expensive parts — its control and
// ingress multicast groups, its replica GuestContexts, its machines'
// shards — come into existence:
//
//  * WiringMode::kEager (the seed behaviour): everything is built inside
//    add_vm and booted by start(). Boot events are batched per machine
//    shard into single simulator entries (Simulator::schedule_batch).
//  * WiringMode::kLazy: add_vm records only the placement (name, machine
//    triple, program factory, deterministic seed) and registers the VM's
//    ingress address node; the first frame that arrives there materializes
//    the wiring and boots the replicas at the median of their machines'
//    clocks — exactly the Sec. IV-A boot rule, applied on demand.
//    Registering Θ(n²) placements over n = 501 machines therefore costs
//    O(VMs) records and zero scheduled events; only driven VMs ever pay
//    for replicas.
//
// Frame routing (ingress replication, reliable-multicast group dispatch,
// median egress release) lives here too: it is placement-scale plumbing,
// not policy — the delivery-time agreement itself stays in
// hypervisor::GuestContext.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "hypervisor/guest_context.hpp"
#include "hypervisor/policy.hpp"
#include "net/multicast.hpp"
#include "net/network.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"
#include "topology/machine_table.hpp"
#include "topology/shard_plan.hpp"
#include "vm/guest.hpp"

namespace stopwatch::topology {

/// When a VM's replicas, multicast groups, and machine shards are built.
enum class WiringMode {
  kEager,  ///< at add_vm (all tests/scenarios predating the topology layer)
  kLazy,   ///< on the first frame reaching the VM's ingress address
};

struct TopologyConfig {
  std::uint64_t seed{1};
  hypervisor::PolicyConfig policy{};
  int replica_count{3};
  int machine_count{1};
  int shard_size{64};
  WiringMode wiring{WiringMode::kEager};
  hypervisor::MachineConfig machine_template{};
  hypervisor::GuestContextConfig guest_template{};
  Duration clock_offset_spread{};
};

/// Per-VM egress statistics.
struct EgressStats {
  std::uint64_t packets_released{0};
  /// Replica output hash mismatches observed at the egress (must stay 0:
  /// replicas are deterministic).
  std::uint64_t hash_mismatches{0};
};

class TopologyBuilder {
 public:
  using ProgramFactory = std::function<std::unique_ptr<vm::GuestProgram>()>;
  /// Observer of egress packet releases — the attacker-visible event. Fires
  /// at the instant the egress forwards a guest output (the median emission
  /// timing under StopWatch, the sole copy under baseline, the batch
  /// boundary under Deterland, the paced-queue slot under TifcPacing), for
  /// every VM.
  using EgressTap =
      std::function<void(std::uint32_t vm, RealTime when, const net::Packet&)>;

  TopologyBuilder(sim::Simulator& sim, net::Network& net, TopologyConfig cfg);

  TopologyBuilder(const TopologyBuilder&) = delete;
  TopologyBuilder& operator=(const TopologyBuilder&) = delete;

  /// Registers a guest VM placed on the first effective_replicas() entries
  /// of `machine_indices` (validated: in range, pairwise distinct). Under
  /// kEager the replicas are wired immediately; under kLazy only the
  /// placement is recorded. Returns the VM index.
  std::uint32_t add_vm(std::string name, ProgramFactory factory,
                       const std::vector<int>& machine_indices);

  /// Boots every wired VM, batching boot callbacks per machine shard into
  /// single simulator entries at the current time. Under kLazy,
  /// still-unwired VMs boot later, at materialization.
  void start();

  /// Halts every materialized replica.
  void halt_all();

  /// Wires (and, once started, boots) the VM now. Idempotent: the first
  /// call materializes, replays are no-ops — the property the lazy ingress
  /// path relies on.
  void materialize(std::uint32_t vm);

  /// Switches the topology to shard-parallel execution: every machine (and
  /// every VM whose replicas it hosts) is built on the simulator core the
  /// plan assigns it, and the listed VMs — the activation set — are wired
  /// up front, in index order. Afterwards the set is LOCKED: traffic
  /// reaching a VM outside it would have to materialize machines from a
  /// worker thread mid-window, so that path throws instead. The egress
  /// gateway moves to the plan's egress_shard() — the least-loaded core,
  /// never core 0 on a balanced multi-shard plan. Requires
  /// WiringMode::kLazy with nothing materialized yet (eager mode builds
  /// everything on one core in the constructor). An installed egress tap
  /// is allowed across >1 shard iff it stays single-writer: the policy
  /// tunnels output (the tap fires only on the egress core), or the whole
  /// activation set lives on one shard (non-tunneled sends fire it only
  /// from that core).
  void attach_sharding(sim::ShardedSimulator& sharded, ShardPlan plan,
                       const std::vector<std::uint32_t>& active_vms);

  /// Installs (or, with nullptr, removes) the egress release observer used
  /// by the leakage subsystem's TimingTap. At most one tap is active; the
  /// tap sees releases of every VM and filters by index itself. Across
  /// >1 shard the tap must stay single-writer (see attach_sharding);
  /// installing one that would not be is rejected.
  void set_egress_tap(EgressTap tap);
  [[nodiscard]] bool has_egress_tap() const {
    return static_cast<bool>(egress_tap_);
  }

  /// Installs (or, with nullptr, removes) the sim-time rollup series fed
  /// one sample per egress release: the span from the first replica copy's
  /// arrival at the gate to the policy's release instant, in ns, keyed by
  /// the release time. Written only from the egress node's owner core
  /// (the plan's egress shard when sharded) — the same single-writer
  /// discipline as egress_track_ — so the series is byte-identical across
  /// shard counts.
  void set_egress_latency_series(obs::TimeSeries* series) {
    egress_series_ = series;
  }

  // --- Introspection ---

  [[nodiscard]] int effective_replicas() const {
    return policy_->effective_replicas(cfg_.replica_count);
  }
  /// The mitigation backend governing this topology's routing and egress
  /// release semantics.
  [[nodiscard]] const hypervisor::MitigationPolicy& policy() const {
    return *policy_;
  }
  [[nodiscard]] MachineTable& machines() { return table_; }
  [[nodiscard]] const MachineTable& machines() const { return table_; }
  [[nodiscard]] NodeId egress_node() const { return egress_node_; }
  [[nodiscard]] std::size_t vm_count() const { return vms_.size(); }
  [[nodiscard]] std::size_t materialized_vm_count() const {
    return materialized_vms_;
  }
  [[nodiscard]] bool materialized(std::uint32_t vm) const;
  [[nodiscard]] NodeId vm_addr(std::uint32_t vm) const;
  [[nodiscard]] const std::vector<int>& vm_machines(std::uint32_t vm) const;
  /// Materialized replicas of `vm` (0 while lazily unwired).
  [[nodiscard]] int replicas_of(std::uint32_t vm) const;
  [[nodiscard]] hypervisor::GuestContext& replica(std::uint32_t vm, int r);
  [[nodiscard]] const EgressStats& egress_stats(std::uint32_t vm) const;
  /// True if every pair of materialized replicas of `vm` agrees on the
  /// common prefix of emitted packet hashes (vacuously true while unwired).
  [[nodiscard]] bool replicas_deterministic(std::uint32_t vm) const;
  /// Sum of divergence counters across all materialized replicas plus
  /// egress hash mismatches.
  [[nodiscard]] std::uint64_t total_divergences() const;
  /// Sum of policy decision counters over the topology-level policy
  /// instance and every materialized replica's instance.
  [[nodiscard]] hypervisor::PolicyStats aggregate_policy_stats() const;
  [[nodiscard]] const TopologyConfig& config() const { return cfg_; }
  /// The machine-to-core assignment (trivial one-shard plan until
  /// attach_sharding installs a real one).
  [[nodiscard]] const ShardPlan& shard_plan() const { return plan_; }

 private:
  struct VmEntry {
    std::string name;
    VmId id{};
    NodeId addr{};
    std::vector<int> machines;
    ProgramFactory factory;
    std::uint64_t det_seed{0};
    bool wired{false};
    bool booted{false};
    std::vector<std::unique_ptr<hypervisor::GuestContext>> replicas;
    std::unique_ptr<net::MulticastGroup> control_group;
    std::unique_ptr<net::MulticastGroup> ingress_group;
    std::uint32_t ingress_group_id{0};
    std::uint64_t ingress_seq{0};
    // Egress reassembly: out_seq -> (copies seen, first hash, released).
    struct EgressSlot {
      int copies{0};
      std::uint64_t hash{0};
      bool released{false};
      /// Arrival time of the first replica copy — the base of the
      /// release-latency sample fed to the egress latency series.
      std::int64_t first_copy_ns{0};
    };
    std::map<std::uint64_t, EgressSlot> egress_slots;
    EgressStats egress_stats;
    /// Frame-lifecycle trace track (null when tracing is inactive). Events
    /// are written only from the core owning the VM's machines — one
    /// writer per track, which is what the recorder's lock-free append
    /// relies on.
    obs::TraceTrack* track{nullptr};
  };

  void wire(std::uint32_t vm_index);
  void boot(VmEntry& entry);
  /// The simulator core that owns `machine` (sim_ when unsharded).
  [[nodiscard]] sim::Simulator& core_of_machine(int machine);
  /// True if every wired VM's replicas live on one shard — the condition
  /// under which a non-tunneling policy's egress tap stays single-writer.
  [[nodiscard]] bool wired_vms_on_one_shard() const;
  void on_addr_frame(std::uint32_t vm_index, const net::Frame& frame);
  void on_ingress_packet(std::uint32_t vm_index, const net::Packet& pkt);
  void on_machine_frame(int machine_idx, const net::Frame& frame);
  void on_egress_frame(const net::Frame& frame);

  TopologyConfig cfg_;
  /// Built first: validation and every capability query go through it.
  std::unique_ptr<hypervisor::MitigationPolicy> policy_;
  /// Trace session active at construction (null = tracing off). Captured
  /// once so every track this topology creates shares one recorder.
  obs::TraceRecorder* trace_;
  /// Egress-gate track (pid 0/tid 0): replica copies, holds, releases.
  /// Written only from the egress node's owner core (the egress shard).
  obs::TraceTrack* egress_track_{nullptr};
  /// Release-latency rollups (null = off); single-writer, see setter.
  obs::TimeSeries* egress_series_{nullptr};
  EgressTap egress_tap_;
  sim::Simulator* sim_;
  /// The core owning the egress gateway: sim_ until attach_sharding moves
  /// it to the plan's egress shard. All egress-gate clock reads and hold
  /// scheduling go through this core, never sim_ directly.
  sim::Simulator* egress_core_;
  sim::ShardedSimulator* sharded_{nullptr};
  ShardPlan plan_;
  /// Set by attach_sharding once the activation set is wired: any further
  /// wire() is a contract violation (see attach_sharding).
  bool activation_locked_{false};
  net::Network* net_;
  MachineTable table_;
  NodeId egress_node_{};
  std::vector<VmEntry> vms_;
  std::map<std::uint32_t, std::uint32_t> addr_to_vm_;  // addr node -> vm idx
  std::map<std::uint32_t, net::MulticastGroup*> groups_;  // by group id
  std::uint32_t next_group_id_{1};
  std::size_t materialized_vms_{0};
  bool started_{false};
};

}  // namespace stopwatch::topology
