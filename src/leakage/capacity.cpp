#include "leakage/capacity.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace stopwatch::leakage {

namespace {

constexpr double kLog2e = 1.4426950408889634;  // nats -> bits

}  // namespace

double binary_entropy_bits(double p) {
  SW_EXPECTS(p >= 0.0 && p <= 1.0);
  if (p == 0.0 || p == 1.0) return 0.0;
  return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

CapacityResult blahut_arimoto(const std::vector<std::vector<double>>& channel,
                              double tolerance, int max_iterations) {
  const std::size_t inputs = channel.size();
  SW_EXPECTS_MSG(inputs >= 2, "capacity needs at least two input classes");
  const std::size_t outputs = channel.front().size();
  SW_EXPECTS(outputs >= 1);
  for (const auto& row : channel) {
    SW_EXPECTS_MSG(row.size() == outputs,
                   "channel rows must share one output alphabet");
    double mass = 0.0;
    for (const double w : row) {
      SW_EXPECTS(w >= 0.0);
      mass += w;
    }
    SW_EXPECTS_MSG(std::abs(mass - 1.0) < 1e-6,
                   "channel rows must be probability vectors");
  }

  CapacityResult result;
  result.optimal_input.assign(inputs, 1.0 / static_cast<double>(inputs));
  std::vector<double> output_marginal(outputs, 0.0);
  std::vector<double> row_exponent(inputs, 0.0);
  double last_lower_nats = 0.0;

  for (int iter = 1; iter <= max_iterations; ++iter) {
    result.iterations = iter;
    // q_T(t) = Σ_c p(c) W(t|c).
    std::fill(output_marginal.begin(), output_marginal.end(), 0.0);
    for (std::size_t c = 0; c < inputs; ++c) {
      for (std::size_t t = 0; t < outputs; ++t) {
        output_marginal[t] += result.optimal_input[c] * channel[c][t];
      }
    }
    // D_c = D(W(·|c) ‖ q_T) in nats; I(p) = Σ_c p(c) D_c; C ≤ max_c D_c.
    double lower_nats = 0.0;
    double upper_nats = -1.0;
    for (std::size_t c = 0; c < inputs; ++c) {
      double d = 0.0;
      for (std::size_t t = 0; t < outputs; ++t) {
        if (channel[c][t] > 0.0) {
          // W(t|c) > 0 with p(c) > 0 implies q_T(t) > 0; rows of
          // zero-mass inputs still divide safely below via the max guard.
          d += channel[c][t] *
               std::log(channel[c][t] /
                        std::max(output_marginal[t], 1e-300));
        }
      }
      row_exponent[c] = d;
      lower_nats += result.optimal_input[c] * d;
      upper_nats = std::max(upper_nats, d);
    }
    last_lower_nats = lower_nats;
    if (upper_nats - lower_nats <= tolerance) {
      result.capacity_bits = std::max(0.0, lower_nats * kLog2e);
      result.converged = true;
      return result;
    }
    // p'(c) ∝ p(c) exp(D_c); subtract the max exponent for stability.
    double norm = 0.0;
    for (std::size_t c = 0; c < inputs; ++c) {
      result.optimal_input[c] *= std::exp(row_exponent[c] - upper_nats);
      norm += result.optimal_input[c];
    }
    SW_ASSERT(norm > 0.0);
    for (double& p : result.optimal_input) p /= norm;
  }
  // Ran out of iterations: report the last in-loop lower bound. I(p_t) is
  // non-decreasing over BA iterations, so it also lower-bounds what the
  // (one step newer) returned prior achieves — mixing stale D_c terms
  // with the updated prior would not.
  result.capacity_bits = std::max(0.0, last_lower_nats * kLog2e);
  result.converged = false;
  return result;
}

}  // namespace stopwatch::leakage
