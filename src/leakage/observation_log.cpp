#include "leakage/observation_log.hpp"

#include <bit>
#include <cstdio>
#include <sstream>

#include "common/contracts.hpp"

namespace stopwatch::leakage {

ObservationLog::ObservationLog(ObservationLogConfig cfg)
    : cfg_(cfg), rng_(SplitMix64(cfg.seed ^ 0x0b5e7a71ULL).next()) {}

void ObservationLog::record(int secret_class, double value) {
  SW_EXPECTS(secret_class >= 0);
  ClassSlot& slot = classes_[secret_class];
  ++slot.seen;
  ++total_;
  // Welford's online moments: exact regardless of reservoir evictions.
  const double delta = value - slot.mean;
  slot.mean += delta / static_cast<double>(slot.seen);
  slot.m2 += delta * (value - slot.mean);

  if (cfg_.reservoir_capacity == 0 ||
      slot.reservoir.size() < cfg_.reservoir_capacity) {
    slot.reservoir.push_back(value);
    return;
  }
  // Algorithm R: the i-th record replaces a uniformly chosen slot with
  // probability capacity/i, keeping the reservoir a uniform sample.
  const auto j = static_cast<std::uint64_t>(rng_.uniform_int(
      0, static_cast<std::int64_t>(slot.seen) - 1));
  if (j < cfg_.reservoir_capacity) {
    slot.reservoir[static_cast<std::size_t>(j)] = value;
  }
}

std::vector<int> ObservationLog::classes() const {
  std::vector<int> out;
  out.reserve(classes_.size());
  for (const auto& [cls, slot] : classes_) out.push_back(cls);
  return out;
}

std::uint64_t ObservationLog::count(int cls) const {
  const auto it = classes_.find(cls);
  return it == classes_.end() ? 0 : it->second.seen;
}

double ObservationLog::mean(int cls) const {
  const auto it = classes_.find(cls);
  SW_EXPECTS(it != classes_.end() && it->second.seen > 0);
  return it->second.mean;
}

double ObservationLog::variance(int cls) const {
  const auto it = classes_.find(cls);
  SW_EXPECTS(it != classes_.end() && it->second.seen > 0);
  return it->second.m2 / static_cast<double>(it->second.seen);
}

const std::vector<double>& ObservationLog::samples(int cls) const {
  const auto it = classes_.find(cls);
  SW_EXPECTS_MSG(it != classes_.end(),
                 "ObservationLog has no samples for secret class " +
                     std::to_string(cls));
  return it->second.reservoir;
}

std::vector<double> ObservationLog::pooled_samples() const {
  std::vector<double> out;
  for (const auto& [cls, slot] : classes_) {
    out.insert(out.end(), slot.reservoir.begin(), slot.reservoir.end());
  }
  return out;
}

std::string ObservationLog::serialize() const {
  std::ostringstream out;
  out << "observation-log/1 capacity=" << cfg_.reservoir_capacity
      << " total=" << total_ << "\n";
  char buf[32];
  for (const auto& [cls, slot] : classes_) {
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(
                      std::bit_cast<std::uint64_t>(slot.mean)));
    out << "class " << cls << " seen=" << slot.seen << " mean=" << buf;
    out << " samples=";
    for (const double v : slot.reservoir) {
      std::snprintf(buf, sizeof(buf), "%016llx",
                    static_cast<unsigned long long>(
                        std::bit_cast<std::uint64_t>(v)));
      out << buf << ",";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace stopwatch::leakage
