// Mutual-information estimation over labeled observation logs.
//
// The attacker's channel is (secret class C) -> (timing observation T). The
// estimators here discretize T into cells and estimate I(C; T) from the
// empirical joint distribution:
//
//   * binning — fixed-width cells over the sample range, adaptive
//     (equiprobable over the pooled empirical distribution, concentrating
//     resolution where the mass is), or Sturges' rule
//     (ceil(log2 n) + 1 fixed-width cells, the classic histogram default);
//   * plug-in MI — I(C;T) = H(C) + H(T) - H(C,T) over empirical
//     frequencies, upward-biased by O(cells / N);
//   * Miller–Madow correction — the first-order bias term
//     (m_C + m_T - m_CT - 1) / (2 N ln 2) subtracted cell-occupancy-wise,
//     the standard small-sample repair.
//
// The empirical conditional rows P(T-cell | C) feed the Blahut–Arimoto
// channel-capacity solver (capacity.hpp), which converts "bits leaked under
// this victim's input prior" into "bits leakable under the worst prior" —
// the quantity StopWatch's replicated-median design is meant to bound.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "leakage/observation_log.hpp"

namespace stopwatch::leakage {

/// How observation values are discretized into histogram cells.
enum class BinningMode {
  kFixed,     ///< `bin_count` equal-width cells over [min, max]
  kAdaptive,  ///< `bin_count` cells equiprobable under the pooled sample
  kSturges,   ///< ceil(log2 n) + 1 equal-width cells (bin_count ignored)
};

/// Maps the scenario-facing enum choice "fixed|adaptive|sturges"; fails the
/// contract on anything else (ParamSpec::enumeration validates upstream).
[[nodiscard]] BinningMode binning_mode_from_choice(const std::string& choice);

/// Sturges' bin-count rule for n samples: ceil(log2 n) + 1 (>= 2).
[[nodiscard]] int sturges_bin_count(std::size_t n);

/// Cell edges over `samples` (consumed: sorted in place). Returns
/// `bins + 1` strictly increasing edges spanning the sample range, padded
/// so every sample falls in a cell. Requires at least 2 distinct values.
[[nodiscard]] std::vector<double> make_bin_edges(std::vector<double> samples,
                                                 BinningMode mode,
                                                 int bin_count);

/// Cell index of `x` under `edges`; values outside the span clamp to the
/// first/last cell (the tails belong to the outermost cells).
[[nodiscard]] int bin_index(const std::vector<double>& edges, double x);

/// Empirical joint distribution over (secret class, observation cell).
struct JointDistribution {
  /// p[i][j] = empirical P(class i, cell j); sums to 1.
  std::vector<std::vector<double>> p;
  /// Secret class label of each row (log classes, ascending).
  std::vector<int> class_labels;
  /// Retained observations behind the estimate (reservoir sizes summed).
  std::uint64_t sample_count{0};

  [[nodiscard]] int classes() const { return static_cast<int>(p.size()); }
  [[nodiscard]] int cells() const {
    return p.empty() ? 0 : static_cast<int>(p.front().size());
  }
};

/// Bins every retained sample of the log. Requires >= 2 classes with at
/// least one retained sample each.
[[nodiscard]] JointDistribution joint_from_log(
    const ObservationLog& log, const std::vector<double>& edges);

/// Plug-in (maximum-likelihood) mutual information, in bits.
[[nodiscard]] double mutual_information_plugin(const JointDistribution& joint);

/// Miller–Madow bias-corrected mutual information, in bits (clamped at 0).
[[nodiscard]] double mutual_information_miller_madow(
    const JointDistribution& joint);

/// Shannon entropy of a probability vector, in bits.
[[nodiscard]] double entropy_bits(const std::vector<double>& p);

/// Conditional rows P(cell | class) — the empirical channel matrix. Rows
/// with zero class mass are rejected (joint_from_log never produces them).
[[nodiscard]] std::vector<std::vector<double>> channel_from_joint(
    const JointDistribution& joint);

}  // namespace stopwatch::leakage
