#include "leakage/estimators.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/contracts.hpp"
#include "obs/profiler.hpp"

namespace stopwatch::leakage {

namespace {

constexpr double kLn2 = 0.6931471805599453;

/// x log2 x with the measure-theoretic 0 log 0 = 0 convention.
double xlog2x(double x) { return x > 0.0 ? x * std::log2(x) : 0.0; }

}  // namespace

BinningMode binning_mode_from_choice(const std::string& choice) {
  if (choice == "fixed") return BinningMode::kFixed;
  if (choice == "adaptive") return BinningMode::kAdaptive;
  SW_EXPECTS_MSG(choice == "sturges",
                 "unknown binning mode '" + choice +
                     "' (expected fixed|adaptive|sturges)");
  return BinningMode::kSturges;
}

int sturges_bin_count(std::size_t n) {
  SW_EXPECTS(n >= 1);
  int bins = 1;
  std::size_t span = 1;
  while (span < n) {
    span *= 2;
    ++bins;
  }
  return std::max(2, bins);
}

std::vector<double> make_bin_edges(std::vector<double> samples,
                                   BinningMode mode, int bin_count) {
  SW_EXPECTS(samples.size() >= 2);
  std::sort(samples.begin(), samples.end());
  const double lo = samples.front();
  const double hi = samples.back();
  SW_EXPECTS_MSG(lo < hi,
                 "bin edges need at least two distinct observation values");
  const int bins = mode == BinningMode::kSturges
                       ? sturges_bin_count(samples.size())
                       : bin_count;
  SW_EXPECTS(bins >= 2);
  // Pad the span so boundary samples bin unambiguously.
  const double pad = (hi - lo) * 1e-9 + 1e-12;

  std::vector<double> edges;
  edges.reserve(static_cast<std::size_t>(bins) + 1);
  edges.push_back(lo - pad);
  for (int i = 1; i < bins; ++i) {
    if (mode == BinningMode::kAdaptive) {
      // Interior edges at pooled-sample quantiles i/bins (nearest rank).
      const auto rank = static_cast<std::size_t>(
          static_cast<double>(samples.size()) * i / bins);
      edges.push_back(samples[std::min(rank, samples.size() - 1)]);
    } else {
      edges.push_back(lo - pad + (hi + pad - (lo - pad)) * i / bins);
    }
  }
  edges.push_back(hi + pad);
  // Equal pooled quantiles collapse edges (heavy ties); keep the layout
  // strictly increasing by nudging, preserving the cell count.
  for (std::size_t i = 1; i < edges.size(); ++i) {
    if (edges[i] <= edges[i - 1]) {
      edges[i] = std::nextafter(edges[i - 1],
                                std::numeric_limits<double>::infinity());
    }
  }
  return edges;
}

int bin_index(const std::vector<double>& edges, double x) {
  SW_EXPECTS(edges.size() >= 3);
  const int bins = static_cast<int>(edges.size()) - 1;
  if (x < edges.front()) return 0;
  if (x >= edges.back()) return bins - 1;
  // First edge strictly greater than x bounds the cell on the right.
  const auto it = std::upper_bound(edges.begin(), edges.end(), x);
  const int idx = static_cast<int>(it - edges.begin()) - 1;
  return std::clamp(idx, 0, bins - 1);
}

JointDistribution joint_from_log(const ObservationLog& log,
                                 const std::vector<double>& edges) {
  OBS_PROF_SCOPE("leakage.estimate");
  const std::vector<int> classes = log.classes();
  SW_EXPECTS_MSG(classes.size() >= 2,
                 "mutual information needs at least two secret classes");
  const int cells = static_cast<int>(edges.size()) - 1;

  JointDistribution joint;
  joint.class_labels = classes;
  joint.p.assign(classes.size(),
                 std::vector<double>(static_cast<std::size_t>(cells), 0.0));
  for (std::size_t i = 0; i < classes.size(); ++i) {
    const std::vector<double>& samples = log.samples(classes[i]);
    SW_EXPECTS_MSG(!samples.empty(),
                   "secret class " + std::to_string(classes[i]) +
                       " has no retained observations");
    for (const double v : samples) {
      joint.p[i][static_cast<std::size_t>(bin_index(edges, v))] += 1.0;
    }
    joint.sample_count += samples.size();
  }
  const auto n = static_cast<double>(joint.sample_count);
  for (auto& row : joint.p) {
    for (double& cell : row) cell /= n;
  }
  return joint;
}

double entropy_bits(const std::vector<double>& p) {
  double h = 0.0;
  for (const double x : p) {
    SW_EXPECTS(x >= 0.0);
    h -= xlog2x(x);
  }
  return h;
}

double mutual_information_plugin(const JointDistribution& joint) {
  OBS_PROF_SCOPE("leakage.estimate");
  SW_EXPECTS(joint.classes() >= 2 && joint.cells() >= 1);
  std::vector<double> row_marginal(static_cast<std::size_t>(joint.classes()),
                                   0.0);
  std::vector<double> col_marginal(static_cast<std::size_t>(joint.cells()),
                                   0.0);
  for (std::size_t i = 0; i < joint.p.size(); ++i) {
    for (std::size_t j = 0; j < joint.p[i].size(); ++j) {
      row_marginal[i] += joint.p[i][j];
      col_marginal[j] += joint.p[i][j];
    }
  }
  // I = H(C) + H(T) - H(C,T).
  double joint_entropy = 0.0;
  for (const auto& row : joint.p) {
    for (const double cell : row) joint_entropy -= xlog2x(cell);
  }
  const double mi =
      entropy_bits(row_marginal) + entropy_bits(col_marginal) - joint_entropy;
  return std::max(0.0, mi);
}

double mutual_information_miller_madow(const JointDistribution& joint) {
  SW_EXPECTS(joint.sample_count > 0);
  int occupied_rows = 0;
  int occupied_cols = 0;
  int occupied_cells = 0;
  std::vector<bool> col_seen(static_cast<std::size_t>(joint.cells()), false);
  for (const auto& row : joint.p) {
    bool row_seen = false;
    for (std::size_t j = 0; j < row.size(); ++j) {
      if (row[j] > 0.0) {
        ++occupied_cells;
        row_seen = true;
        col_seen[j] = true;
      }
    }
    if (row_seen) ++occupied_rows;
  }
  for (const bool seen : col_seen) {
    if (seen) ++occupied_cols;
  }
  // MM entropy correction is +(m-1)/(2N) nats per entropy term; through
  // I = H(C) + H(T) - H(C,T) the net MI correction is
  // (m_C + m_T - m_CT - 1) / (2N), converted to bits.
  const double correction =
      static_cast<double>(occupied_rows + occupied_cols - occupied_cells - 1) /
      (2.0 * static_cast<double>(joint.sample_count) * kLn2);
  // The correction can push a near-deterministic channel past the
  // information-theoretic ceiling min(H(C), H(T)); clamp to it.
  std::vector<double> row_marginal(static_cast<std::size_t>(joint.classes()),
                                   0.0);
  std::vector<double> col_marginal(static_cast<std::size_t>(joint.cells()),
                                   0.0);
  for (std::size_t i = 0; i < joint.p.size(); ++i) {
    for (std::size_t j = 0; j < joint.p[i].size(); ++j) {
      row_marginal[i] += joint.p[i][j];
      col_marginal[j] += joint.p[i][j];
    }
  }
  const double ceiling =
      std::min(entropy_bits(row_marginal), entropy_bits(col_marginal));
  return std::clamp(mutual_information_plugin(joint) + correction, 0.0,
                    ceiling);
}

std::vector<std::vector<double>> channel_from_joint(
    const JointDistribution& joint) {
  std::vector<std::vector<double>> channel;
  channel.reserve(joint.p.size());
  for (const auto& row : joint.p) {
    double mass = 0.0;
    for (const double cell : row) mass += cell;
    SW_EXPECTS_MSG(mass > 0.0,
                   "channel row with zero class mass cannot be normalized");
    std::vector<double> normalized(row.size());
    for (std::size_t j = 0; j < row.size(); ++j) normalized[j] = row[j] / mass;
    channel.push_back(std::move(normalized));
  }
  return channel;
}

}  // namespace stopwatch::leakage
