#include "leakage/timing_tap.hpp"

#include "common/contracts.hpp"

namespace stopwatch::leakage {

TimingTap::TimingTap(core::Cloud& cloud, core::VmHandle vm, Mode mode,
                     ObservationLog& log)
    : cloud_(&cloud), vm_index_(vm.index), mode_(mode), log_(&log) {
  // Exclusive by contract: silently replacing a live tap would leave the
  // replaced tap recording nothing while its destructor later detaches
  // *this* one. Destroy the previous tap first.
  SW_EXPECTS_MSG(!cloud_->has_egress_tap(),
                 "cloud already has an active TimingTap");
  cloud_->set_egress_tap(
      [this](std::uint32_t vm_idx, RealTime when, const net::Packet&) {
        on_release(vm_idx, when);
      });
}

TimingTap::~TimingTap() { cloud_->set_egress_tap(nullptr); }

void TimingTap::set_secret_class(int secret_class) {
  SW_EXPECTS(secret_class >= 0);
  secret_class_ = secret_class;
  have_last_release_ = false;
}

void TimingTap::begin_trial(int secret_class) {
  SW_EXPECTS(mode_ == Mode::kTrialDuration);
  SW_EXPECTS_MSG(!trial_open_, "end_trial() the previous trial first");
  set_secret_class(secret_class);
  trial_open_ = true;
  trial_saw_release_ = false;
  trial_mark_ = cloud_->simulator().now();
}

bool TimingTap::end_trial() {
  SW_EXPECTS(mode_ == Mode::kTrialDuration);
  SW_EXPECTS_MSG(trial_open_, "no trial is open");
  trial_open_ = false;
  if (!trial_saw_release_) return false;
  record_observation((last_release_ - trial_mark_).to_millis(),
                     last_release_);
  return true;
}

void TimingTap::on_release(std::uint32_t vm, RealTime when) {
  if (vm != vm_index_) return;
  ++releases_;
  if (mode_ == Mode::kInterRelease) {
    if (have_last_release_) {
      record_observation((when - last_release_).to_millis(), when);
    }
  } else if (trial_open_) {
    trial_saw_release_ = true;
  }
  have_last_release_ = true;
  last_release_ = when;
}

void TimingTap::record_observation(double value_ms, RealTime at) {
  log_->record(secret_class_, value_ms);
  if (series_ != nullptr) {
    // Rollups take integers: microseconds keep sub-ms structure without
    // floating-point in the deterministic series.
    series_->record(at.ns,
                    static_cast<std::uint64_t>(value_ms * 1000.0));
  }
}

}  // namespace stopwatch::leakage
