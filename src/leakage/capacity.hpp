// Channel capacity of a discrete memoryless channel via Blahut–Arimoto.
//
// Mutual information measures the leakage under the victim's *actual* input
// distribution; capacity is the supremum over priors — what an adaptive
// attacker who controls (or knows) the secret distribution could extract
// per observation. StopWatch's quantitative claim is a capacity claim: the
// replicated median bounds the *capacity* of the access-driven channel, not
// just the leakage of one workload.
//
// The solver is the classic alternating maximization: given input prior p,
//   q(c|t) ∝ p(c) W(t|c)            (posterior under the current prior)
//   p'(c) ∝ exp( Σ_t W(t|c) ln q(c|t) )
// with the Csiszár bounds max_c D(W(·|c) ‖ q_T) and I(p) sandwiching C, so
// convergence is certified, not assumed.
#pragma once

#include <vector>

namespace stopwatch::leakage {

struct CapacityResult {
  /// Channel capacity in bits per observation.
  double capacity_bits{0.0};
  /// The capacity-achieving input prior over secret classes.
  std::vector<double> optimal_input;
  int iterations{0};
  /// Csiszár upper-lower gap fell below tolerance within max_iterations.
  bool converged{false};
};

/// Capacity of the channel with conditional rows `channel[c][t] = W(t|c)`.
/// Every row must be a probability vector; at least 2 rows and 1 column.
[[nodiscard]] CapacityResult blahut_arimoto(
    const std::vector<std::vector<double>>& channel, double tolerance = 1e-9,
    int max_iterations = 5000);

/// Binary entropy H2(p) in bits — the closed form behind the binary
/// symmetric channel's capacity 1 - H2(p), used by tests and scenarios.
[[nodiscard]] double binary_entropy_bits(double p);

}  // namespace stopwatch::leakage
