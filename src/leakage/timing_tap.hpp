// TimingTap — turns egress packet releases into labeled observations.
//
// The tap subscribes to a Cloud's egress release hook (the moment a guest
// output actually leaves the cloud: the median emission timing under
// StopWatch, Sec. VI) and converts the releases of one watched VM into
// ObservationLog entries labeled with the victim's current secret input
// class. Two observation shapes cover the scenarios:
//
//  * kInterRelease — each release records the gap (ms) since the previous
//    release of the watched VM. The attacker-as-observer view of a
//    continuously emitting guest (the Fig. 4 channel, seen from egress).
//  * kTrialDuration — the scenario brackets each secret-labeled request
//    with begin_trial / end_trial; end_trial records the span (ms) from
//    the trial mark to the last release observed inside it. The
//    response-latency view of request/response and batch workloads.
//
// The tap is exclusive (Cloud holds one egress hook) and detaches in its
// destructor, so scenarios can tap several clouds in sequence.
#pragma once

#include <cstdint>

#include "common/time.hpp"
#include "core/cloud.hpp"
#include "leakage/observation_log.hpp"
#include "obs/timeseries.hpp"

namespace stopwatch::leakage {

class TimingTap {
 public:
  enum class Mode {
    kInterRelease,   ///< record gaps between consecutive releases
    kTrialDuration,  ///< record mark -> last-release spans per trial
  };

  /// Watches egress releases of `vm` on `cloud`, recording into `log`
  /// (not owned; must outlive the tap). Exclusive: constructing a second
  /// tap on a cloud whose tap is still alive is a contract violation —
  /// destroy the previous tap first (the destructor detaches).
  TimingTap(core::Cloud& cloud, core::VmHandle vm, Mode mode,
            ObservationLog& log);
  ~TimingTap();

  TimingTap(const TimingTap&) = delete;
  TimingTap& operator=(const TimingTap&) = delete;

  /// Labels subsequent observations with `secret_class` and resets the
  /// inter-release reference so no gap spans a label change.
  void set_secret_class(int secret_class);

  /// kTrialDuration: opens a trial labeled `secret_class`, marking the
  /// current simulated time as its start.
  void begin_trial(int secret_class);

  /// kTrialDuration: closes the open trial; records (class, span-to-last-
  /// release) if any release happened inside it. Returns whether an
  /// observation was recorded.
  bool end_trial();

  /// Egress releases of the watched VM seen since construction.
  [[nodiscard]] std::uint64_t releases_seen() const { return releases_; }

  /// Installs (or, with nullptr, removes) a sim-time rollup series that
  /// receives every observation this tap records, in microseconds, keyed
  /// by the simulated time of the release (kInterRelease) or the trial's
  /// last release (kTrialDuration). Values are sim-time functions, so the
  /// series stays byte-identical across sim_shards and --jobs.
  void set_series(obs::TimeSeries* series) { series_ = series; }

 private:
  void on_release(std::uint32_t vm, RealTime when);

  /// Records (class, value) into the log and, when attached, the value in
  /// microseconds into the series at sim time `at`.
  void record_observation(double value_ms, RealTime at);

  core::Cloud* cloud_;
  std::uint32_t vm_index_;
  Mode mode_;
  ObservationLog* log_;
  obs::TimeSeries* series_{nullptr};
  int secret_class_{0};
  std::uint64_t releases_{0};
  bool have_last_release_{false};
  RealTime last_release_{};
  bool trial_open_{false};
  bool trial_saw_release_{false};
  RealTime trial_mark_{};
};

}  // namespace stopwatch::leakage
