// Attacker-visible observation capture for leakage analysis.
//
// An ObservationLog records timing observations labeled with the victim's
// secret input class — the raw material every leakage estimator in this
// subsystem consumes. StopWatch's claim is information-theoretic (the
// replicated median bounds the channel to a handful of bits), so the log is
// the bridge between a simulated experiment and that verdict: a scenario
// taps egress timings (see timing_tap.hpp), labels them with the secret the
// victim was acting on, and hands the log to the mutual-information and
// channel-capacity estimators (estimators.hpp, capacity.hpp).
//
// Memory is bounded: each secret class keeps an exact streaming summary
// (count, mean, variance via Welford) plus a reservoir sample (Vitter's
// Algorithm R) of at most `reservoir_capacity` values. Reservoir
// replacement draws from a dedicated Rng seeded from the config, so the
// retained sample — and therefore `serialize()` — is a pure function of
// (seed, record sequence): the determinism property the tap tests assert.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace stopwatch::leakage {

struct ObservationLogConfig {
  std::uint64_t seed{1};
  /// Maximum retained samples per secret class; 0 keeps every observation.
  std::size_t reservoir_capacity{8192};
};

class ObservationLog {
 public:
  ObservationLog() : ObservationLog(ObservationLogConfig{}) {}
  explicit ObservationLog(ObservationLogConfig cfg);

  /// Records one observation of `value` made while the victim's secret
  /// input belonged to `secret_class` (a small non-negative label).
  void record(int secret_class, double value);

  /// Distinct secret classes seen so far, ascending.
  [[nodiscard]] std::vector<int> classes() const;

  /// Observations recorded for `cls` (exact, even when the reservoir
  /// retains fewer). Zero for classes never seen.
  [[nodiscard]] std::uint64_t count(int cls) const;
  [[nodiscard]] std::uint64_t total_count() const { return total_; }

  /// Exact streaming mean / population variance of all observations of
  /// `cls` (not just the retained reservoir).
  [[nodiscard]] double mean(int cls) const;
  [[nodiscard]] double variance(int cls) const;

  /// The retained sample for `cls` (all observations while under capacity;
  /// a uniform random subset once the reservoir saturates).
  [[nodiscard]] const std::vector<double>& samples(int cls) const;

  /// Retained samples of every class pooled together (class-ascending,
  /// insertion order within a class) — the input to bin-edge selection.
  [[nodiscard]] std::vector<double> pooled_samples() const;

  /// Deterministic byte-exact text serialization (doubles as IEEE-754 bit
  /// patterns): two logs fed the same records under the same seed
  /// serialize identically.
  [[nodiscard]] std::string serialize() const;

  [[nodiscard]] const ObservationLogConfig& config() const { return cfg_; }

  /// Bytes held by the per-class reservoirs (capacity, not size: the
  /// memory actually reserved). The accounting gauge behind
  /// `mem.reservoir_bytes` — bounded by classes * reservoir_capacity.
  [[nodiscard]] std::size_t reservoir_bytes() const {
    std::size_t bytes = 0;
    for (const auto& [cls, slot] : classes_) {
      bytes += slot.reservoir.capacity() * sizeof(double);
    }
    return bytes;
  }

 private:
  struct ClassSlot {
    std::uint64_t seen{0};
    double mean{0.0};
    double m2{0.0};
    std::vector<double> reservoir;
  };

  ObservationLogConfig cfg_;
  Rng rng_;
  std::map<int, ClassSlot> classes_;
  std::uint64_t total_{0};
};

}  // namespace stopwatch::leakage
