#include "sim/simulator.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#include "common/contracts.hpp"
#include "obs/profiler.hpp"

namespace stopwatch::sim {

namespace {
/// Rotates `v` right by `r` (r in [0, 63]); bit i of the result is bit
/// (i + r) mod 64 of `v` — the rotated occupancy scan used to find the next
/// pending wheel slot at or after the cursor position.
inline std::uint64_t rotr64(std::uint64_t v, unsigned r) {
  return std::rotr(v, static_cast<int>(r));
}
}  // namespace

EventId Simulator::schedule_at(RealTime at, Task cb) {
  SW_EXPECTS(at.ns >= now_.ns);
  return schedule_impl(at.ns, std::move(cb));
}

EventId Simulator::schedule_after(Duration delay, Task cb) {
  if (delay.ns < 0) delay.ns = 0;
  return schedule_impl(now_.ns + delay.ns, std::move(cb));
}

EventId Simulator::schedule_batch(RealTime at, std::vector<Task> batch) {
  SW_EXPECTS(!batch.empty());
  for (const Task& cb : batch) SW_EXPECTS(cb != nullptr);
  batched_ += batch.size();
  // `this` + the moved-in vector is 32 bytes: the batch rides the same slab
  // slot inline, its callbacks' own storage living in the vector.
  return schedule_at(at, [this, b = std::move(batch)]() mutable {
    // step() already counted the record once; count the remaining callbacks
    // so a batch of k reads as k executed events.
    executed_ += b.size() - 1;
    for (Task& cb : b) cb();
  });
}

EventId Simulator::schedule_impl(std::int64_t at_ns, Task&& cb) {
  SW_EXPECTS(cb != nullptr);
  const std::uint32_t slot = alloc_slot();
  Record& rec = record(slot);
  rec.task = std::move(cb);
  rec.at_ns = at_ns;
  rec.seq = next_seq_++;
  place(slot, rec);
  ++live_;
  if (live_ > stats_.max_live) stats_.max_live = live_;
  ++stats_.scheduled;
  return EventId{slot, rec.gen};
}

EventId Simulator::reschedule_after(EventId id, Duration delay) {
  if (delay.ns < 0) delay.ns = 0;
  ++stats_.rescheduled;
  if (is_executing(id)) {
    // Re-arm the running event: its Task is parked in execute_top()'s frame
    // and will be moved back into the same slot after the callback returns.
    rearm_at_ns_ = now_.ns + delay.ns;
    return id;
  }
  SW_EXPECTS(is_scheduled(id));
  Record& rec = record(id.slot);
  if (rec.where == Where::kWheel) {
    wheel_unlink(id.slot);
  } else if (rec.where == Where::kDue) {
    ++due_stale_;  // the old heap entry dies of a sequence mismatch
  } else {
    ++far_stale_;
  }
  rec.at_ns = now_.ns + delay.ns;
  rec.seq = next_seq_++;  // retime = new position in the equal-time order
  place(id.slot, rec);
  return id;
}

bool Simulator::cancel(EventId id) {
  if (is_executing(id)) {
    // The event already fired; the only thing left to revoke is a re-arm.
    const bool had_rearm = rearm_at_ns_ != kNoRearm;
    rearm_at_ns_ = kNoRearm;
    return had_rearm;
  }
  if (id.slot >= slab_size_) return false;
  Record& rec = record(id.slot);
  if (rec.gen != id.gen || rec.where == Where::kFree) return false;
  if (rec.where == Where::kWheel) {
    wheel_unlink(id.slot);
  } else if (rec.where == Where::kDue) {
    ++due_stale_;
  } else {
    ++far_stale_;
  }
  free_slot(id.slot);
  --live_;
  ++stats_.cancelled;
  if (due_stale_ > 64 && due_stale_ * 2 > due_.size()) due_compact();
  if (far_stale_ > 64 && far_stale_ * 2 > far_.size()) far_compact();
  return true;
}

bool Simulator::is_scheduled(EventId id) const {
  if (id.slot >= slab_size_) return false;
  const Record& rec = record(id.slot);
  return rec.gen == id.gen && rec.where != Where::kFree &&
         rec.where != Where::kExecuting;
}

bool Simulator::is_executing(EventId id) const {
  return executing_slot_ == id.slot && executing_slot_ != kNil &&
         executing_gen_ == id.gen;
}

std::uint32_t Simulator::alloc_slot() {
  if (free_head_ != kNil) {
    const std::uint32_t slot = free_head_;
    free_head_ = record(slot).next;
    return slot;
  }
  SW_ASSERT(slab_size_ < kNil);
  if (slab_size_ == chunks_.size() << kChunkBits) {
    // Default-initialized (not value-initialized): Record's field
    // initializers run but the 48-byte inline Task buffer is left untouched
    // — a fresh chunk costs header writes, not a 24 KiB memset.
    chunks_.push_back(
        std::make_unique_for_overwrite<Record[]>(std::size_t{1}
                                                 << kChunkBits));
    ++stats_.arena_chunks;
    // Piggyback the due heap's initial reservation on the (rare) chunk
    // allocation so steady-state pushes never reallocate in small steps.
    if (due_.capacity() < kSlotsPerLevel) due_.reserve(kSlotsPerLevel);
  }
  return static_cast<std::uint32_t>(slab_size_++);
}

void Simulator::free_slot(std::uint32_t slot) {
  Record& rec = record(slot);
  rec.task.reset();
  ++rec.gen;  // stale handles and lazy heap entries now miss
  rec.where = Where::kFree;
  // Free slots chain through their own `next` field: recycling costs two
  // writes and no container.
  rec.next = free_head_;
  free_head_ = slot;
}

void Simulator::place(std::uint32_t slot, Record& rec) {
  const std::int64_t tick = rec.at_ns >> kTickShift;
  const std::int64_t delta = tick - cur_tick_;
  if (delta <= 0) {
    // At or behind the cursor (including "later this tick"): executable
    // order is decided by the due heap's (time, seq) key.
    rec.where = Where::kDue;
    ++stats_.placed_due;
    due_push_entry(HeapEntry{rec.at_ns, rec.seq, slot, rec.gen});
    return;
  }
  if (delta >= kWheelHorizonTicks) {
    rec.where = Where::kFar;
    ++stats_.placed_far;
    far_.push_back(HeapEntry{rec.at_ns, rec.seq, slot, rec.gen});
    std::push_heap(far_.begin(), far_.end(), HeapLater{});
    if (far_.size() > stats_.max_far) stats_.max_far = far_.size();
    return;
  }
  ++stats_.placed_wheel;
  int level = 0;
  while (delta >= (std::int64_t{1} << (kLevelBits * (level + 1)))) ++level;
  const auto bucket = static_cast<std::uint32_t>(
      (tick >> (kLevelBits * level)) & kSlotMask);
  wheel_link(slot, rec, level, bucket);
}

void Simulator::wheel_link(std::uint32_t slot, Record& rec, int level,
                           std::uint32_t bucket) {
  rec.where = Where::kWheel;
  rec.level = static_cast<std::uint8_t>(level);
  rec.bucket = static_cast<std::uint8_t>(bucket);
  std::uint32_t& head =
      bucket_head_[static_cast<std::size_t>(level) * kSlotsPerLevel + bucket];
  rec.prev = kNil;
  rec.next = head;
  if (head != kNil) record(head).prev = slot;
  head = slot;
  bitmap_[level] |= std::uint64_t{1} << bucket;
}

void Simulator::wheel_unlink(std::uint32_t slot) {
  Record& rec = record(slot);
  SW_ASSERT(rec.where == Where::kWheel);
  std::uint32_t& head =
      bucket_head_[static_cast<std::size_t>(rec.level) * kSlotsPerLevel +
                   rec.bucket];
  if (rec.prev != kNil) {
    record(rec.prev).next = rec.next;
  } else {
    head = rec.next;
  }
  if (rec.next != kNil) record(rec.next).prev = rec.prev;
  if (head == kNil) {
    bitmap_[rec.level] &= ~(std::uint64_t{1} << rec.bucket);
  }
  rec.prev = rec.next = kNil;
}

bool Simulator::entry_live(const HeapEntry& e) const {
  const Record& rec = record(e.slot);
  return rec.gen == e.gen && rec.seq == e.seq;
}

void Simulator::due_pop() {
  if (due_sorted_) {
    ++stats_.due_sorted_pops;
    if (++due_head_ == due_.size()) {
      due_.clear();
      due_head_ = 0;
    }
  } else {
    pop_heap_top(due_);
    if (due_.empty()) {
      due_sorted_ = true;
      due_head_ = 0;
    }
  }
}

void Simulator::due_push_entry(const HeapEntry& e) {
  if (due_sorted_) {
    if (due_head_ == due_.size()) {
      due_.clear();
      due_head_ = 0;
      due_.push_back(e);
      return;
    }
    const HeapEntry& back = due_.back();
    if (back.at_ns < e.at_ns || (back.at_ns == e.at_ns && back.seq < e.seq)) {
      due_.push_back(e);  // in-order append keeps the array sorted
      return;
    }
    // Out-of-order arrival mid-drain: shed the consumed prefix and finish
    // this drain in heap order.
    OBS_PROF_SCOPE("sim.due_fallback");
    due_.erase(due_.begin(),
               due_.begin() + static_cast<std::ptrdiff_t>(due_head_));
    due_head_ = 0;
    due_.push_back(e);
    std::make_heap(due_.begin(), due_.end(), HeapLater{});
    due_sorted_ = false;
    ++stats_.heap_fallbacks;
  } else {
    due_.push_back(e);
    std::push_heap(due_.begin(), due_.end(), HeapLater{});
    ++stats_.due_fallback_pushes;
  }
  if (due_.size() > stats_.max_due) stats_.max_due = due_.size();
}

void Simulator::due_compact() {
  due_.erase(due_.begin(),
             due_.begin() + static_cast<std::ptrdiff_t>(due_head_));
  due_head_ = 0;
  std::erase_if(due_, [this](const HeapEntry& e) { return !entry_live(e); });
  // Erasure preserves relative order, so sorted mode survives compaction.
  if (!due_sorted_) std::make_heap(due_.begin(), due_.end(), HeapLater{});
  due_stale_ = 0;
}

void Simulator::far_compact() {
  std::erase_if(far_, [this](const HeapEntry& e) { return !entry_live(e); });
  std::make_heap(far_.begin(), far_.end(), HeapLater{});
  far_stale_ = 0;
}

void Simulator::pop_heap_top(std::vector<HeapEntry>& heap) {
  std::pop_heap(heap.begin(), heap.end(), HeapLater{});
  heap.pop_back();
}

bool Simulator::prepare_next() {
  for (;;) {
    // Zero stale entries (the common case: no cancels in flight) means the
    // due top is valid by construction — no record load needed.
    while (!due_empty()) {
      if (due_stale_ == 0 || entry_live(due_front())) return true;
      due_pop();
      --due_stale_;
    }
    if (live_ == 0) return false;
    advance_wheel();
  }
}

std::optional<std::int64_t> Simulator::next_event_time_ns() {
  if (!prepare_next()) return std::nullopt;
  return due_front().at_ns;
}

void Simulator::flush_bucket(int level, std::uint32_t bucket) {
  // Detach the bucket, then refile each record relative to the (already
  // advanced) cursor: a level-0 bucket harvests straight into the due heap
  // (its one tick equals the cursor), a higher level cascades strictly
  // downward (its deltas now fit a lower level or the due heap).
  std::uint32_t& head =
      bucket_head_[static_cast<std::size_t>(level) * kSlotsPerLevel + bucket];
  std::uint32_t walk = std::exchange(head, kNil);
  bitmap_[level] &= ~(std::uint64_t{1} << bucket);
  if (level == 0 && due_empty()) {
    // Bulk harvest: append, then sort ascending by (time, seq). A sorted
    // array satisfies the heap property, so later pushes compose — and the
    // per-event sift-up of the one-at-a-time path is skipped entirely.
    due_.clear();
    due_head_ = 0;
    due_sorted_ = true;
    while (walk != kNil) {
      Record& rec = record(walk);
      rec.where = Where::kDue;
      due_.push_back(HeapEntry{rec.at_ns, rec.seq, walk, rec.gen});
      const std::uint32_t next = std::exchange(rec.next, kNil);
      rec.prev = kNil;
      walk = next;
    }
    // Direct schedules detach LIFO (descending), but a bucket filled by a
    // cascade was built from an already-LIFO walk, so it detaches ascending
    // — probe both orientations before paying for a real sort.
    const auto ascending = [](const HeapEntry& a, const HeapEntry& b) {
      if (a.at_ns != b.at_ns) return a.at_ns < b.at_ns;
      return a.seq < b.seq;
    };
    if (!std::is_sorted(due_.begin(), due_.end(), ascending)) {
      std::reverse(due_.begin(), due_.end());
      if (!std::is_sorted(due_.begin(), due_.end(), ascending)) {
        std::sort(due_.begin(), due_.end(), ascending);
      }
    }
    if (due_.size() > stats_.max_due) stats_.max_due = due_.size();
    return;
  }
  while (walk != kNil) {
    Record& rec = record(walk);
    const std::uint32_t next = std::exchange(rec.next, kNil);
    rec.prev = kNil;
    place(walk, rec);
    walk = next;
  }
}

void Simulator::advance_wheel() {
  OBS_PROF_SCOPE("sim.harvest");
  // Skim stale far-heap tops so the far candidate below is a real event
  // (zero stale entries — the common case — skips the record loads).
  while (far_stale_ > 0 && !far_.empty() && !entry_live(far_.front())) {
    pop_heap_top(far_);
    --far_stale_;
  }

  // The earliest pending bound of each structure. Level 0 yields an exact
  // event tick (each occupied bucket holds exactly one tick value of the
  // 63-tick window); higher levels yield the lower bound of their earliest
  // pending slot; the far heap yields its top's exact tick.
  bool have = false;
  std::int64_t best_tick = 0;
  const auto consider = [&](std::int64_t t) {
    if (!have || t < best_tick) {
      best_tick = t;
      have = true;
    }
  };
  if (bitmap_[0] != 0) {
    const auto pos = static_cast<unsigned>(cur_tick_ & kSlotMask);
    consider(cur_tick_ + std::countr_zero(rotr64(bitmap_[0], pos)));
  }
  for (int level = 1; level < kWheelLevels; ++level) {
    if (bitmap_[level] == 0) continue;
    const std::int64_t cur_group = cur_tick_ >> (kLevelBits * level);
    // Pending groups live in [cur_group + 1, cur_group + 64]; scan the
    // occupancy bitmap rotated so that slot (cur_group + 1) is bit 0.
    const auto pos = static_cast<unsigned>((cur_group + 1) & kSlotMask);
    const int dist = std::countr_zero(rotr64(bitmap_[level], pos));
    consider((cur_group + 1 + dist) << (kLevelBits * level));
  }
  if (!far_.empty()) consider(far_.front().at_ns >> kTickShift);
  SW_ASSERT(have);  // live_ > 0 and due_ empty => somewhere to go
  SW_ASSERT(best_tick >= cur_tick_);

  // Advance the cursor to the minimum bound, then flush every structure
  // that may contain events at that tick, coarse to fine, so equal-tick
  // events all meet in the due heap where (time, seq) decides. No pending
  // slot has a lower bound below best_tick (it is the minimum), so the
  // cursor lands on at most one slot per level — the tie case the seed of
  // this function got wrong — and never skips over one.
  const std::int64_t old_tick = std::exchange(cur_tick_, best_tick);
  for (int level = kWheelLevels - 1; level >= 1; --level) {
    const std::int64_t new_group = cur_tick_ >> (kLevelBits * level);
    const std::int64_t old_group = old_tick >> (kLevelBits * level);
    const auto slot = static_cast<std::uint32_t>(new_group & kSlotMask);
    if (new_group > old_group &&
        ((bitmap_[level] >> slot) & 1u) != 0) {
      flush_bucket(level, slot);
    }
  }
  // Pull far events now inside the wheel horizon (including any at the
  // cursor tick itself, which refile straight into the due heap).
  while (!far_.empty()) {
    const HeapEntry top = far_.front();
    if (far_stale_ > 0 && !entry_live(top)) {
      pop_heap_top(far_);
      --far_stale_;
      continue;
    }
    if ((top.at_ns >> kTickShift) - cur_tick_ >= kWheelHorizonTicks) break;
    pop_heap_top(far_);
    place(top.slot, record(top.slot));
  }
  // Harvest the level-0 bucket the cursor landed on, if occupied.
  const auto l0 = static_cast<std::uint32_t>(cur_tick_ & kSlotMask);
  if (((bitmap_[0] >> l0) & 1u) != 0) flush_bucket(0, l0);
}

void Simulator::execute_top() {
  const HeapEntry top = due_front();
  due_pop();
  Record& rec = record(top.slot);
  SW_ASSERT(rec.at_ns >= now_.ns);
  now_ = RealTime{rec.at_ns};
  ++executed_;
  --live_;
  if (trace_sink_ != nullptr) [[unlikely]] {
    if ((executed_ & (kTraceSampleEvery - 1)) == 0) {
      trace_sink_->on_executed(rec.at_ns, executed_);
    }
  }
  rec.where = Where::kExecuting;
  executing_slot_ = top.slot;
  executing_gen_ = top.gen;
  rearm_at_ns_ = kNoRearm;
  // The Task leaves the slab before it runs, so a throwing callback (or one
  // that churns the slab) cannot strand a half-dead record; the guard
  // restores a consistent simulator on unwind.
  struct ExecGuard {
    Simulator* sim;
    std::uint32_t slot;
    bool armed{true};
    ~ExecGuard() {
      if (armed) {
        sim->free_slot(slot);
        sim->executing_slot_ = kNil;
        sim->rearm_at_ns_ = kNoRearm;
      }
    }
  } guard{this, top.slot};
  Task task = std::move(rec.task);
  task();
  guard.armed = false;
  if (rearm_at_ns_ != kNoRearm) {
    // reschedule_after() on the running event: hand the Task back to the
    // same slot (same generation — the caller's handle stays valid).
    rec.task = std::move(task);
    rec.at_ns = rearm_at_ns_;
    rec.seq = next_seq_++;
    place(top.slot, rec);
    ++live_;
    rearm_at_ns_ = kNoRearm;
  } else {
    free_slot(top.slot);
  }
  executing_slot_ = kNil;
}

bool Simulator::step() {
  if (!prepare_next()) return false;
  execute_top();
  return true;
}

void Simulator::run(std::uint64_t max_events) {
  for (std::uint64_t i = 0; i < max_events; ++i) {
    if (!step()) return;
  }
}

void Simulator::run_until(RealTime t) {
  SW_EXPECTS(t.ns >= now_.ns);
  while (prepare_next() && due_front().at_ns <= t.ns) {
    execute_top();
  }
  now_ = t;
}

}  // namespace stopwatch::sim
