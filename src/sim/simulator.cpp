#include "sim/simulator.hpp"

#include <utility>

#include "common/contracts.hpp"

namespace stopwatch::sim {

EventId Simulator::schedule_at(RealTime at, Callback cb) {
  SW_EXPECTS(at.ns >= now_.ns);
  SW_EXPECTS(cb != nullptr);
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{at, seq});
  callbacks_.emplace(seq, std::move(cb));
  return EventId{seq};
}

EventId Simulator::schedule_after(Duration delay, Callback cb) {
  if (delay.ns < 0) delay.ns = 0;
  return schedule_at(now_ + delay, std::move(cb));
}

EventId Simulator::schedule_batch(RealTime at, std::vector<Callback> batch) {
  SW_EXPECTS(!batch.empty());
  for (const Callback& cb : batch) SW_EXPECTS(cb != nullptr);
  batched_ += batch.size();
  return schedule_at(at, [this, b = std::move(batch)] {
    // step() already counted the entry once; count the remaining callbacks
    // so a batch of k reads as k executed events.
    executed_ += b.size() - 1;
    for (const Callback& cb : b) cb();
  });
}

bool Simulator::cancel(EventId id) {
  auto it = callbacks_.find(id.value);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  cancelled_.insert(id.value);
  return true;
}

bool Simulator::step() {
  while (!heap_.empty()) {
    const Entry e = heap_.top();
    heap_.pop();
    if (cancelled_.erase(e.seq) > 0) continue;  // lazily dropped
    auto it = callbacks_.find(e.seq);
    SW_ASSERT(it != callbacks_.end());
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    SW_ASSERT(e.at.ns >= now_.ns);
    now_ = e.at;
    ++executed_;
    cb();
    return true;
  }
  return false;
}

void Simulator::run(std::uint64_t max_events) {
  for (std::uint64_t i = 0; i < max_events; ++i) {
    if (!step()) return;
  }
}

void Simulator::run_until(RealTime t) {
  SW_EXPECTS(t.ns >= now_.ns);
  while (!heap_.empty()) {
    // Peek past cancelled entries.
    Entry e = heap_.top();
    while (cancelled_.count(e.seq) > 0) {
      heap_.pop();
      cancelled_.erase(e.seq);
      if (heap_.empty()) break;
      e = heap_.top();
    }
    if (heap_.empty()) break;
    if (e.at.ns > t.ns) break;
    step();
  }
  now_ = t;
}

}  // namespace stopwatch::sim
