// sim::Task — the simulator's callback type: a move-only, small-buffer-
// optimized owner of a `void()` callable.
//
// Every event the kernel fires is one of these. std::function<void()> put a
// heap allocation on the hot path for anything beyond a pointer or two of
// captures; Task instead embeds up to kInlineBytes (48) of callable state
// directly in the event record, which covers every scheduling lambda in the
// tree (the common shapes are `[this]`, `[this, seq]`, and a moved-in
// std::vector — 8 to 32 bytes). Larger or alignment-exotic callables fall
// back to a single heap allocation, so nothing is lost relative to
// std::function; the type is simply move-only because events fire exactly
// once and are never copied.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace stopwatch::sim {

class Task {
 public:
  /// Inline capture capacity. 48 bytes holds `this` plus five words of
  /// captures (or a moved-in vector/std::function) while keeping the whole
  /// event record within a cache line and a half; see README "sim kernel".
  static constexpr std::size_t kInlineBytes = 48;

  Task() noexcept = default;
  Task(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, Task> &&
             !std::is_same_v<std::remove_cvref_t<F>, std::nullptr_t> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  Task(F&& fn) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    if constexpr (fits_inline<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      ops_ = &kOps<Fn, true>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(fn)));
      ops_ = &kOps<Fn, false>;
    }
  }

  Task(Task&& other) noexcept { move_from(other); }
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { reset(); }

  /// Destroys the held callable (if any); the Task becomes empty.
  void reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  /// Invokes the held callable. Precondition: non-empty.
  void operator()() { ops_->invoke(storage_); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }
  friend bool operator==(const Task& t, std::nullptr_t) noexcept {
    return t.ops_ == nullptr;
  }

  /// True if the held callable lives in the inline buffer (diagnostics and
  /// tests; empty Tasks report true vacuously).
  [[nodiscard]] bool is_inline() const noexcept {
    return ops_ == nullptr || ops_->inline_storage;
  }

 private:
  struct Ops {
    void (*invoke)(void* self);
    /// Move-constructs the callable from `from` into `to`, then destroys the
    /// source — a destructive relocate, so moves never leave a moved-from
    /// callable behind in the buffer. Null when a raw memcpy of the buffer
    /// is equivalent (trivially copyable captures, or the heap pointer),
    /// which keeps Task moves on the event hot path call-free.
    void (*relocate)(void* from, void* to) noexcept;
    /// Null when destruction is a no-op (trivial captures / moved-out heap
    /// pointer slots are handled by their own branch).
    void (*destroy)(void* self) noexcept;
    bool inline_storage;
  };

  template <typename Fn>
  static constexpr bool fits_inline =
      sizeof(Fn) <= kInlineBytes &&
      alignof(Fn) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<Fn>;

  template <typename Fn, bool Inline>
  static constexpr Ops make_ops() {
    if constexpr (Inline) {
      return Ops{
          [](void* self) { (*std::launder(reinterpret_cast<Fn*>(self)))(); },
          std::is_trivially_copyable_v<Fn>
              ? nullptr
              : +[](void* from, void* to) noexcept {
                  Fn* src = std::launder(reinterpret_cast<Fn*>(from));
                  ::new (to) Fn(std::move(*src));
                  src->~Fn();
                },
          std::is_trivially_destructible_v<Fn>
              ? nullptr
              : +[](void* self) noexcept {
                  std::launder(reinterpret_cast<Fn*>(self))->~Fn();
                },
          true};
    } else {
      return Ops{
          [](void* self) { (**std::launder(reinterpret_cast<Fn**>(self)))(); },
          nullptr,  // relocating the owning pointer is a memcpy
          [](void* self) noexcept {
            delete *std::launder(reinterpret_cast<Fn**>(self));
          },
          false};
    }
  }

  template <typename Fn, bool Inline>
  static constexpr Ops kOps = make_ops<Fn, Inline>();

  void move_from(Task& other) noexcept {
    if (other.ops_ != nullptr) {
      if (other.ops_->relocate != nullptr) {
        other.ops_->relocate(other.storage_, storage_);
      } else {
        std::memcpy(storage_, other.storage_, kInlineBytes);
      }
      ops_ = std::exchange(other.ops_, nullptr);
    }
  }

  alignas(std::max_align_t) std::byte storage_[kInlineBytes];
  const Ops* ops_{nullptr};
};

}  // namespace stopwatch::sim
