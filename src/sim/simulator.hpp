// Deterministic discrete-event simulation kernel.
//
// This is the substrate on which the whole cloud runs: machines, links,
// VMMs, and guest vCPUs are all driven by events scheduled here. Events at
// equal timestamps fire in schedule order (sequence-number tie-break), so a
// simulation run is a pure function of its configuration and seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/time.hpp"

namespace stopwatch::sim {

/// Handle for a scheduled event; can be used to cancel it.
struct EventId {
  std::uint64_t value{0};
  constexpr auto operator<=>(const EventId&) const = default;
};

/// Event-driven simulator with a single global (simulated) real-time clock.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated real time.
  [[nodiscard]] RealTime now() const { return now_; }

  /// Schedule `cb` to run at absolute time `at`. `at` must not be in the
  /// past.
  EventId schedule_at(RealTime at, Callback cb);

  /// Schedule `cb` to run `delay` after now. Negative delays are clamped to
  /// zero (fires this instant, after already-queued same-time events).
  EventId schedule_after(Duration delay, Callback cb);

  /// Schedule a batch of callbacks as ONE queue entry at absolute time `at`;
  /// when it fires the callbacks run back to back in vector order. A shard
  /// of k same-time events costs one heap insertion instead of k — the
  /// topology layer uses this to boot machine shards without flooding the
  /// queue. Cancelling the returned id cancels the whole batch.
  EventId schedule_batch(RealTime at, std::vector<Callback> batch);

  /// Cancel a pending event. Cancelling an already-fired or unknown event is
  /// a no-op and returns false.
  bool cancel(EventId id);

  /// Run the single earliest pending event. Returns false if none pending.
  bool step();

  /// Run events until the queue is empty or `max_events` fired.
  void run(std::uint64_t max_events = UINT64_MAX);

  /// Run events with timestamp <= t, then advance the clock to exactly t.
  void run_until(RealTime t);

  /// Number of events executed so far. A batch of k callbacks counts k (the
  /// count reflects work performed, not queue entries consumed).
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Number of callbacks that rode inside batches instead of occupying
  /// their own queue entries (diagnostics for the batching win).
  [[nodiscard]] std::uint64_t batched_callbacks() const { return batched_; }

  /// Number of events currently pending (including cancelled-but-queued).
  [[nodiscard]] std::size_t pending() const { return heap_.size() - cancelled_.size(); }

 private:
  struct Entry {
    RealTime at;
    std::uint64_t seq;
    // Min-heap: earliest time first; FIFO among equal times.
    bool operator>(const Entry& o) const {
      if (at.ns != o.at.ns) return at.ns > o.at.ns;
      return seq > o.seq;
    }
  };

  RealTime now_{};
  std::uint64_t next_seq_{1};
  std::uint64_t executed_{0};
  std::uint64_t batched_{0};
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  // Callbacks stored separately, keyed by seq, so Entry stays trivially
  // copyable inside the heap.
  std::unordered_map<std::uint64_t, Callback> callbacks_;
  std::unordered_set<std::uint64_t> cancelled_;
};

}  // namespace stopwatch::sim
