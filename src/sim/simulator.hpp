// Deterministic discrete-event simulation kernel.
//
// This is the substrate on which the whole cloud runs: machines, links,
// VMMs, and guest vCPUs are all driven by events scheduled here. Events at
// equal timestamps fire in schedule order (sequence-number tie-break), so a
// simulation run is a pure function of its configuration and seed.
//
// Storage layout (the PR-5 event core):
//  * every event lives in one slot of a slab arena of Record entries,
//    recycled through a free list; handles are generation-checked
//    EventId{slot, gen}, so a stale cancel (or a stale heap entry left by a
//    lazy deletion) is detected by a generation/sequence mismatch instead of
//    a hash lookup;
//  * timing is tracked by a three-part structure: a `due` min-heap of
//    events at or before the wheel cursor (the only place equal-time
//    ordering is ever decided), a hierarchical timer wheel (kWheelLevels
//    levels x 64 slots, level-0 tick = 2^kTickShift ns, per-level occupancy
//    bitmaps) for the near horizon, and an overflow min-heap for events
//    beyond the wheel horizon (~275 ms);
//  * callbacks are sim::Task — move-only with 48 bytes of inline storage —
//    so the common scheduling lambdas never touch the allocator.
//
// Wheel buckets hold live events only (cancel unlinks in O(1) via intrusive
// prev/next indices); the two heaps use lazy deletion with generation
// checks and periodic compaction. Equal-time FIFO order is preserved across
// every structure because events become executable only through the due
// heap, which orders by (time, sequence).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/time.hpp"
#include "sim/task.hpp"

namespace stopwatch::sim {

/// Handle for a scheduled event; can be used to cancel or reschedule it.
/// `slot` names an arena slot, `gen` the slot's generation at allocation —
/// a handle outlives its event harmlessly (stale operations return false).
struct EventId {
  std::uint32_t slot{0xffffffffu};
  std::uint32_t gen{0};
  constexpr auto operator<=>(const EventId&) const = default;
};

/// Observer of kernel event execution. The kernel samples: an installed
/// sink is notified once every `Simulator::kTraceSampleEvery` executed
/// events, so an attached sink costs one predicted branch and a mask test
/// per event between notifications. Null by default — the disabled cost
/// is one [[unlikely]] null check per event.
class KernelTraceSink {
 public:
  virtual ~KernelTraceSink() = default;
  virtual void on_executed(std::int64_t now_ns, std::uint64_t executed) = 0;
};

/// Always-on kernel counters, exported into the observability block.
/// Plain integers: each Simulator core is single-threaded by construction.
struct KernelStats {
  std::uint64_t scheduled{0};
  std::uint64_t cancelled{0};
  std::uint64_t rescheduled{0};
  /// Out-of-order due-array pushes that flipped the drain into heap mode.
  std::uint64_t heap_fallbacks{0};
  /// Pops served by the sorted-array fast path (O(1), no sifting).
  std::uint64_t due_sorted_pops{0};
  /// Pushes absorbed while the due structure was in heap-fallback mode
  /// (each one sifts). due_sorted_pops vs due_fallback_pushes is the
  /// retire-the-fallback evidence the ROADMAP item asks for.
  std::uint64_t due_fallback_pushes{0};
  /// Occupancy high-water marks (memory accounting gauges): live events,
  /// due-structure entries, far-heap entries.
  std::uint64_t max_live{0};
  std::uint64_t max_due{0};
  std::uint64_t max_far{0};
  /// Placements by destination structure. Counts every place() — initial
  /// schedules plus refiles from wheel cascades and far-heap pulls — so
  /// (placed_wheel + placed_far) - scheduled measures refile traffic.
  std::uint64_t placed_due{0};
  std::uint64_t placed_wheel{0};
  std::uint64_t placed_far{0};
  /// Slab chunks allocated (arena growth; never shrinks).
  std::uint64_t arena_chunks{0};
};

/// Event-driven simulator with a single global (simulated) real-time clock.
class Simulator {
 public:
  using Callback = Task;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated real time.
  [[nodiscard]] RealTime now() const { return now_; }

  /// Schedule `cb` to run at absolute time `at`. `at` must not be in the
  /// past.
  EventId schedule_at(RealTime at, Task cb);

  /// Schedule `cb` to run `delay` after now. Negative delays are clamped to
  /// zero (fires this instant, after already-queued same-time events).
  EventId schedule_after(Duration delay, Task cb);

  /// Schedule a batch of callbacks as ONE event record at absolute time
  /// `at`; when it fires the callbacks run back to back in vector order. A
  /// shard of k same-time events costs one slab slot instead of k — the
  /// topology layer uses this to boot machine shards without flooding the
  /// queue. Cancelling the returned id cancels the whole batch.
  EventId schedule_batch(RealTime at, std::vector<Task> batch);

  /// Re-arms the event `id` to fire `delay` after now, reusing its arena
  /// slot and — when called from inside the event's own callback — its Task
  /// object, so periodic timers (vCPU slices, sync beacons, stall rechecks)
  /// pay no allocation, no construction, and no cancel on each tick. Works
  /// on a pending event too (it is retimed without firing). Negative delays
  /// clamp to zero. Returns `id` unchanged (the handle stays valid).
  /// Precondition: `id` is pending or currently executing.
  EventId reschedule_after(EventId id, Duration delay);

  /// Cancel a pending event. Cancelling an already-fired, stale, or unknown
  /// event is a no-op and returns false. Cancelling the currently executing
  /// event revokes a reschedule_after() re-arm if one is in flight.
  bool cancel(EventId id);

  /// True if `id` names an event that is scheduled and not yet fired.
  [[nodiscard]] bool is_scheduled(EventId id) const;
  /// True if `id` names the event whose callback is currently running.
  [[nodiscard]] bool is_executing(EventId id) const;

  /// Run the single earliest pending event. Returns false if none pending.
  bool step();

  /// Run events until the queue is empty or `max_events` fired.
  void run(std::uint64_t max_events = UINT64_MAX);

  /// Run events with timestamp <= t, then advance the clock to exactly t.
  void run_until(RealTime t);

  /// Number of events executed so far. A batch of k callbacks counts k (the
  /// count reflects work performed, not queue entries consumed).
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Number of callbacks that rode inside batches instead of occupying
  /// their own slab slots (diagnostics for the batching win).
  [[nodiscard]] std::uint64_t batched_callbacks() const { return batched_; }

  /// Number of live pending events: scheduled, not yet fired, not
  /// cancelled. Exact — derived from live slab slots, not from queue sizes
  /// (the seed implementation undercounted after a cancelled entry had been
  /// lazily popped). A batch counts as one pending event.
  [[nodiscard]] std::size_t pending() const { return live_; }

  /// Timestamp of the earliest pending event, or nullopt when nothing is
  /// pending. Non-const: it may advance the wheel cursor (draining wheel
  /// buckets / the far heap into the due heap) to find the front, but it
  /// never fires anything and never moves now(). This is the per-core
  /// watermark the sharded kernel's adaptive barrier window reads.
  [[nodiscard]] std::optional<std::int64_t> next_event_time_ns();

  /// Size of the slab arena (live + free slots) — the churn tests assert
  /// this stays flat while events are recycled.
  [[nodiscard]] std::size_t arena_slots() const { return slab_size_; }

  /// Bytes held by the slab arena (chunks never shrink) — the memory-
  /// accounting gauge behind `mem.arena_bytes`.
  [[nodiscard]] std::size_t arena_bytes() const {
    return chunks_.size() * (std::size_t{1} << kChunkBits) * sizeof(Record);
  }

  /// Always-on scheduling/placement counters (see KernelStats).
  [[nodiscard]] const KernelStats& kernel_stats() const { return stats_; }

  /// Installs (or, with nullptr, removes) the sampled execution observer.
  void set_trace_sink(KernelTraceSink* sink) { trace_sink_ = sink; }

  /// Executed-event sampling interval for an installed KernelTraceSink
  /// (power of two: the hot path tests `executed & (kTraceSampleEvery-1)`).
  static constexpr std::uint64_t kTraceSampleEvery = 4096;

 private:
  // --- Wheel geometry ---
  static constexpr int kTickShift = 10;  // level-0 tick = 1024 ns
  static constexpr int kLevelBits = 6;   // 64 slots per level
  static constexpr int kWheelLevels = 3;
  static constexpr std::uint32_t kSlotsPerLevel = 1u << kLevelBits;
  static constexpr std::uint32_t kSlotMask = kSlotsPerLevel - 1;
  /// Ticks covered by levels [0, l). Level l spans one tick of size
  /// 2^(kLevelBits*l) per slot; beyond kWheelHorizonTicks events overflow
  /// into the far heap.
  static constexpr std::int64_t kWheelHorizonTicks =
      std::int64_t{1} << (kLevelBits * kWheelLevels);

  static constexpr std::uint32_t kNil = 0xffffffffu;

  enum class Where : std::uint8_t {
    kFree,       // on the free list
    kDue,        // in the due heap (tick <= wheel cursor)
    kWheel,      // linked into a wheel bucket
    kFar,        // in the far overflow heap
    kExecuting,  // callback currently running (slot pinned, not live)
  };

  struct Record {
    Task task;
    std::int64_t at_ns{0};
    std::uint64_t seq{0};
    std::uint32_t gen{1};
    Where where{Where::kFree};
    std::uint8_t level{0};
    std::uint8_t bucket{0};  // slot index within the level
    std::uint32_t prev{kNil};
    std::uint32_t next{kNil};
  };

  /// Heap entry (due and far heaps). Carries its own copy of the ordering
  /// key plus the generation/sequence pair that validates it against the
  /// slab: cancel and reschedule free or re-key the record immediately and
  /// leave the entry behind as garbage to be skipped at pop time.
  struct HeapEntry {
    std::int64_t at_ns;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };
  struct HeapLater {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.at_ns != b.at_ns) return a.at_ns > b.at_ns;
      return a.seq > b.seq;
    }
  };

  EventId schedule_impl(std::int64_t at_ns, Task&& cb);
  /// Slab accessors: records live in fixed-size chunks, so a slot's address
  /// is stable for the simulator's lifetime — callbacks may schedule (and
  /// grow the slab) while a record is being executed, without relocations.
  [[nodiscard]] Record& record(std::uint32_t slot) {
    return chunks_[slot >> kChunkBits][slot & kChunkMask];
  }
  [[nodiscard]] const Record& record(std::uint32_t slot) const {
    return chunks_[slot >> kChunkBits][slot & kChunkMask];
  }
  std::uint32_t alloc_slot();
  void free_slot(std::uint32_t slot);
  /// Files `slot` (whose record is `rec`) into due/wheel/far according to
  /// its record's time, relative to the current wheel cursor.
  void place(std::uint32_t slot, Record& rec);
  void wheel_link(std::uint32_t slot, Record& rec, int level,
                  std::uint32_t bucket);
  void wheel_unlink(std::uint32_t slot);
  /// Ensures the due heap's top is the earliest live event, advancing the
  /// wheel cursor (harvesting level-0 buckets, cascading higher levels,
  /// draining the far heap) as needed. Returns false if nothing is pending.
  /// This is the single lazy-skip path shared by step() and run_until().
  bool prepare_next();
  /// One cursor advance: moves at least one event toward the due heap.
  void advance_wheel();
  /// Detaches a wheel bucket and refiles its records against the cursor.
  void flush_bucket(int level, std::uint32_t bucket);
  [[nodiscard]] bool entry_live(const HeapEntry& e) const;
  void pop_heap_top(std::vector<HeapEntry>& heap);
  void execute_top();

  // The due structure runs in one of two modes: a sorted array consumed
  // through due_head_ (how a bulk-harvested level-0 bucket drains — O(1)
  // pops, no sifting) or, after an out-of-order push lands mid-drain, a
  // binary heap over the whole vector. It returns to sorted mode whenever
  // it drains empty.
  [[nodiscard]] bool due_empty() const {
    return due_sorted_ ? due_head_ == due_.size() : due_.empty();
  }
  [[nodiscard]] const HeapEntry& due_front() const {
    return due_sorted_ ? due_[due_head_] : due_.front();
  }
  void due_pop();
  void due_push_entry(const HeapEntry& e);
  void due_compact();
  void far_compact();

  RealTime now_{};
  std::uint64_t next_seq_{1};
  std::uint64_t executed_{0};
  std::uint64_t batched_{0};
  std::size_t live_{0};
  KernelStats stats_;
  KernelTraceSink* trace_sink_{nullptr};

  static constexpr int kChunkBits = 8;  // 256 records per slab chunk
  static constexpr std::uint32_t kChunkMask = (1u << kChunkBits) - 1;

  std::vector<std::unique_ptr<Record[]>> chunks_;
  std::size_t slab_size_{0};
  /// Head of the intrusive free list (chained through Record::next).
  std::uint32_t free_head_{kNil};

  using BucketHeads = std::array<std::uint32_t, kWheelLevels * kSlotsPerLevel>;
  static constexpr BucketHeads nil_buckets() {
    BucketHeads a{};
    a.fill(kNil);
    return a;
  }

  /// Wheel cursor: no live event has tick < cur_tick_ except those already
  /// in the due heap. Advances monotonically, possibly ahead of now().
  std::int64_t cur_tick_{0};
  /// Bucket list heads, flattened [level * kSlotsPerLevel + slot].
  BucketHeads bucket_head_ = nil_buckets();
  std::uint64_t bitmap_[kWheelLevels]{};

  std::vector<HeapEntry> due_;
  std::size_t due_head_{0};
  bool due_sorted_{true};
  std::vector<HeapEntry> far_;
  std::uint64_t due_stale_{0};
  std::uint64_t far_stale_{0};

  /// Slot of the event whose callback is running (kNil when none), with its
  /// generation; plain sentinels rather than optionals — these are touched
  /// on every event execution.
  std::uint32_t executing_slot_{kNil};
  std::uint32_t executing_gen_{0};
  static constexpr std::int64_t kNoRearm = INT64_MIN;
  std::int64_t rearm_at_ns_{kNoRearm};
};

}  // namespace stopwatch::sim
