#include "sim/sharded.hpp"

#include <algorithm>
#include <exception>
#include <limits>
#include <string>
#include <thread>
#include <utility>

#include "common/contracts.hpp"
#include "common/thread_pool.hpp"
#include "obs/profiler.hpp"

namespace stopwatch::sim {

ShardedSimulator::ShardedSimulator(ShardedConfig cfg) : cfg_(cfg) {
  SW_EXPECTS(cfg_.shards >= 1);
  SW_EXPECTS(cfg_.window.ns > 0);
  cores_.reserve(static_cast<std::size_t>(cfg_.shards));
  for (int s = 0; s < cfg_.shards; ++s) {
    cores_.push_back(std::make_unique<Simulator>());
  }
  const auto k = static_cast<std::size_t>(cfg_.shards);
  lanes_.resize(k * k);
  lane_seq_.assign(k, 0);
  if (cfg_.shards > 1 && cfg_.threads != 1) {
    // hardware_concurrency() == 0 means "unknown" — assume enough cores.
    const std::size_t host =
        std::max<std::size_t>(1, std::thread::hardware_concurrency() == 0
                                     ? k
                                     : std::thread::hardware_concurrency());
    const std::size_t threads =
        cfg_.threads == 0 ? std::min(k, host) : cfg_.threads;
    if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
  }
}

ShardedSimulator::~ShardedSimulator() = default;

void ShardedSimulator::set_window(Duration w) {
  SW_EXPECTS(!running_);
  SW_EXPECTS(w.ns > 0);
  cfg_.window = w;
}

void ShardedSimulator::set_window_policy(WindowPolicy policy) {
  SW_EXPECTS(!running_);
  cfg_.policy = policy;
}

void ShardedSimulator::set_lookahead(int src, int dst, Duration floor) {
  SW_EXPECTS(!running_);
  SW_EXPECTS(src >= 0 && src < cfg_.shards);
  SW_EXPECTS(dst >= 0 && dst < cfg_.shards);
  SW_EXPECTS(floor.ns > 0);
  const auto k = static_cast<std::size_t>(cfg_.shards);
  if (lookahead_.empty()) lookahead_.assign(k * k, -1);
  lookahead_[static_cast<std::size_t>(src) * k +
             static_cast<std::size_t>(dst)] = floor.ns;
}

void ShardedSimulator::set_lookahead_unreachable(int src, int dst) {
  SW_EXPECTS(!running_);
  SW_EXPECTS(src >= 0 && src < cfg_.shards);
  SW_EXPECTS(dst >= 0 && dst < cfg_.shards);
  const auto k = static_cast<std::size_t>(cfg_.shards);
  if (lookahead_.empty()) lookahead_.assign(k * k, -1);
  lookahead_[static_cast<std::size_t>(src) * k +
             static_cast<std::size_t>(dst)] = kUnreachableNs;
}

std::int64_t ShardedSimulator::lookahead_ns(int src, int dst) const {
  if (lookahead_.empty()) return cfg_.window.ns;
  const auto k = static_cast<std::size_t>(cfg_.shards);
  const std::int64_t v = lookahead_[static_cast<std::size_t>(src) * k +
                                    static_cast<std::size_t>(dst)];
  return v < 0 ? cfg_.window.ns : v;
}

Simulator& ShardedSimulator::shard(int s) {
  SW_EXPECTS(s >= 0 && s < cfg_.shards);
  return *cores_[static_cast<std::size_t>(s)];
}

const Simulator& ShardedSimulator::shard(int s) const {
  SW_EXPECTS(s >= 0 && s < cfg_.shards);
  return *cores_[static_cast<std::size_t>(s)];
}

void ShardedSimulator::cross_schedule(int src, int dst, RealTime at, Task cb) {
  SW_EXPECTS(src >= 0 && src < cfg_.shards);
  SW_EXPECTS(dst >= 0 && dst < cfg_.shards);
  if (!running_) {
    // Single-threaded context (setup between runs): no lane needed, the
    // destination core's own (time, sequence) order is deterministic.
    cores_[static_cast<std::size_t>(dst)]->schedule_at(at, std::move(cb));
    return;
  }
  // Lookahead contract: inside a window every cross-shard timestamp must
  // land at or beyond the bound its destination's window was granted,
  // else the destination shard may already have run past it.
  const std::int64_t bound = window_end_ns_[static_cast<std::size_t>(dst)];
  SW_EXPECTS_MSG(at.ns >= bound,
                 "cross-shard event at t=" + std::to_string(at.ns) +
                     "ns lands before shard " + std::to_string(dst) +
                     "'s window bound at t=" + std::to_string(bound) +
                     "ns; shrink the window / widen the declared lookahead "
                     "floor to the pair's true minimum latency (or fall "
                     "back to the fixed window policy)");
  auto& lane = lanes_[static_cast<std::size_t>(src) *
                          static_cast<std::size_t>(cfg_.shards) +
                      static_cast<std::size_t>(dst)];
  lane.entries.push_back(
      {at.ns, ++lane_seq_[static_cast<std::size_t>(src)], src, dst,
       std::move(cb)});
}

void ShardedSimulator::set_lane_drain_order(std::vector<int> order) {
  SW_EXPECTS(!running_);
  if (!order.empty()) {
    const auto k = static_cast<std::size_t>(cfg_.shards);
    SW_EXPECTS(order.size() == k * k);
    std::vector<int> sorted = order;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      SW_EXPECTS(sorted[i] == static_cast<int>(i));
    }
  }
  drain_order_ = std::move(order);
}

std::size_t ShardedSimulator::lane_backlog() const {
  std::size_t n = 0;
  for (const auto& lane : lanes_) n += lane.entries.size();
  return n;
}

bool ShardedSimulator::merge_lanes() {
  OBS_PROF_SCOPE("sharded.merge");
  merge_scratch_.clear();
  if (drain_order_.empty()) {
    for (auto& lane : lanes_) {
      for (auto& e : lane.entries) merge_scratch_.push_back(std::move(e));
      lane.entries.clear();
    }
  } else {
    for (int idx : drain_order_) {
      auto& lane = lanes_[static_cast<std::size_t>(idx)];
      for (auto& e : lane.entries) merge_scratch_.push_back(std::move(e));
      lane.entries.clear();
    }
  }
  if (merge_scratch_.empty()) return false;
  // The deterministic merge rule: timestamp, then source shard, then the
  // source's sequence number. seq is unique per source, so this is a
  // total order — the drain order above cannot leak through the sort.
  std::sort(merge_scratch_.begin(), merge_scratch_.end(),
            [](const LaneEntry& a, const LaneEntry& b) {
              if (a.at_ns != b.at_ns) return a.at_ns < b.at_ns;
              if (a.src != b.src) return a.src < b.src;
              return a.seq < b.seq;
            });
  crossed_ += merge_scratch_.size();
  max_merge_batch_ = std::max(max_merge_batch_,
                              static_cast<std::uint64_t>(
                                  merge_scratch_.size()));
  if (merge_hist_ != nullptr) merge_hist_->record(merge_scratch_.size());
  bool any_due = false;
  for (auto& e : merge_scratch_) {
    Simulator& dst = *cores_[static_cast<std::size_t>(e.dst)];
    any_due = any_due || e.at_ns <= dst.now().ns;
    dst.schedule_at(RealTime::nanos(e.at_ns), std::move(e.task));
  }
  merge_scratch_.clear();
  return any_due;
}

void ShardedSimulator::run_window(const std::vector<std::int64_t>& run_to_ns,
                                  const std::vector<char>& mask) {
  running_ = true;
  // Callbacks may throw (contract violations): catch per core, re-raise
  // on the main thread after the barrier — exceptions must not escape
  // into the pool's workers.
  std::vector<std::exception_ptr> errors(cores_.size());
  std::size_t ran = 0;
  for (const char m : mask) ran += static_cast<std::size_t>(m);
  if (pool_ && ran > 1) {
    // Submit + wait is the barrier: on the main thread this scope is the
    // time spent waiting for the slowest core of the window.
    OBS_PROF_SCOPE("sharded.barrier_wait");
    for (std::size_t s = 0; s < cores_.size(); ++s) {
      if (!mask[s]) continue;
      Simulator* core = cores_[s].get();
      const RealTime run_to = RealTime::nanos(run_to_ns[s]);
      std::exception_ptr* slot = &errors[s];
      pool_->submit([core, run_to, slot] {
        try {
          core->run_until(run_to);
        } catch (...) {
          *slot = std::current_exception();
        }
      });
    }
    pool_->wait_idle();
  } else {
    // Zero or one core with work (or no pool): no join needed, run on
    // the calling thread.
    for (std::size_t s = 0; s < cores_.size(); ++s) {
      if (!mask[s]) continue;
      try {
        cores_[s]->run_until(RealTime::nanos(run_to_ns[s]));
      } catch (...) {
        errors[s] = std::current_exception();
      }
    }
  }
  running_ = false;
  if (ran > 1) ++barriers_;
  for (auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

void ShardedSimulator::run_until(RealTime t) {
  SW_EXPECTS(!running_);
  if (cfg_.shards == 1) {
    cores_[0]->run_until(t);
    return;
  }
  SW_EXPECTS(t.ns >= now().ns);
  if (cfg_.policy == WindowPolicy::kAdaptive) {
    run_until_adaptive(t);
    return;
  }
  const auto k = cores_.size();
  std::int64_t base = now().ns;
  bool done = false;
  while (!done) {
    // Idle fast-path: with no pending events anywhere and no lane
    // backlog, no event can materialize before t — jump the clocks.
    if (pending() == 0) {
      for (auto& core : cores_) core->run_until(t);
      break;
    }
    const std::int64_t end = std::min(t.ns, base + cfg_.window.ns);
    const bool final_window = end == t.ns;
    // Non-final windows stop strictly before the barrier so an event at
    // exactly `end` orders after any cross-shard entry merged for `end`.
    run_to_scratch_.assign(k, final_window ? end : end - 1);
    run_mask_.assign(k, 1);
    window_end_ns_.assign(k, end);
    run_window(run_to_scratch_, run_mask_);
    // A cross-shard entry can land exactly at t during the final window;
    // run_until(t) is inclusive, so re-run the window until none does.
    const bool rerun = merge_lanes();
    if (hook_) hook_(RealTime::nanos(end));
    base = end;
    done = final_window && !rerun;
  }
}

void ShardedSimulator::run_until_adaptive(RealTime t) {
  constexpr std::int64_t kInf = kUnreachableNs;
  const auto k = cores_.size();
  bool done = false;
  while (!done) {
    // Same idle fast-path as the fixed loop.
    if (pending() == 0) {
      for (auto& core : cores_) core->run_until(t);
      break;
    }
    // Per-core earliest-pending-event watermarks. Lanes are empty here
    // (merge_lanes drains fully after every window), so the wheels hold
    // everything that is known to be pending.
    t_min_scratch_.assign(k, kInf);
    for (std::size_t s = 0; s < k; ++s) {
      if (const auto next = cores_[s]->next_event_time_ns()) {
        t_min_scratch_[s] = *next;
      }
    }
    // Earliest-input-time fixpoint: the earliest a cross-shard entry
    // could still reach core d is bounded by every other core's earliest
    // activity — its next known event, or the earliest entry *it* could
    // receive and react to — plus the pair's lookahead floor. Positive
    // floors make the relaxation converge (shortest-path structure).
    eit_scratch_.assign(k, kInf);
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t d = 0; d < k; ++d) {
        std::int64_t best = kInf;
        for (std::size_t s = 0; s < k; ++s) {
          if (s == d) continue;
          const std::int64_t floor =
              lookahead_ns(static_cast<int>(s), static_cast<int>(d));
          if (floor == kUnreachableNs) continue;
          const std::int64_t src_earliest =
              std::min(t_min_scratch_[s], eit_scratch_[s]);
          if (src_earliest == kInf) continue;
          const std::int64_t bound =
              src_earliest > kInf - floor ? kInf : src_earliest + floor;
          best = std::min(best, bound);
        }
        if (best < eit_scratch_[d]) {
          eit_scratch_[d] = best;
          changed = true;
        }
      }
    }
    // Per-core window ends and run decisions. A core runs only when its
    // bound grants it work (or the final advance to t); skipped cores
    // keep their clocks, and their contract bound stays at that clock so
    // entries landing behind their granted-but-unused window still
    // deliver.
    run_to_scratch_.assign(k, 0);
    run_mask_.assign(k, 0);
    window_end_ns_.assign(k, 0);
    bool all_final = true;
    bool extended = false;
    std::size_t ran = 0;
    for (std::size_t d = 0; d < k; ++d) {
      const std::int64_t end = std::min(t.ns, eit_scratch_[d]);
      const bool final_d = end == t.ns;
      all_final = all_final && final_d;
      const std::int64_t now_d = cores_[d]->now().ns;
      const std::int64_t run_to = final_d ? end : end - 1;
      bool run = false;
      if (run_to >= now_d) {
        run = final_d ? (now_d < t.ns || t_min_scratch_[d] <= t.ns)
                      : t_min_scratch_[d] <= run_to;
      }
      run_mask_[d] = run ? 1 : 0;
      run_to_scratch_[d] = run ? run_to : now_d;
      window_end_ns_[d] = run ? end : now_d;
      if (run) {
        ++ran;
        if (run_to - now_d > cfg_.window.ns) extended = true;
      }
    }
    if (extended) ++adaptive_extensions_;
    SW_EXPECTS_MSG(ran > 0 || all_final,
                   "adaptive window fixpoint granted no core any work");
    run_window(run_to_scratch_, run_mask_);
    const bool rerun = merge_lanes();
    if (hook_) {
      // The frontier: the farthest any core has committed to.
      std::int64_t frontier = cores_[0]->now().ns;
      for (std::size_t s = 1; s < k; ++s) {
        frontier = std::max(frontier, cores_[s]->now().ns);
      }
      hook_(RealTime::nanos(frontier));
    }
    done = all_final && !rerun;
  }
}

std::uint64_t ShardedSimulator::events_executed() const {
  std::uint64_t n = 0;
  for (const auto& core : cores_) n += core->events_executed();
  return n;
}

std::size_t ShardedSimulator::pending() const {
  std::size_t n = lane_backlog();
  for (const auto& core : cores_) n += core->pending();
  return n;
}

}  // namespace stopwatch::sim
