#include "sim/sharded.hpp"

#include <algorithm>
#include <exception>
#include <string>
#include <utility>

#include "common/contracts.hpp"
#include "common/thread_pool.hpp"
#include "obs/profiler.hpp"

namespace stopwatch::sim {

ShardedSimulator::ShardedSimulator(ShardedConfig cfg) : cfg_(cfg) {
  SW_EXPECTS(cfg_.shards >= 1);
  SW_EXPECTS(cfg_.window.ns > 0);
  cores_.reserve(static_cast<std::size_t>(cfg_.shards));
  for (int s = 0; s < cfg_.shards; ++s) {
    cores_.push_back(std::make_unique<Simulator>());
  }
  const auto k = static_cast<std::size_t>(cfg_.shards);
  lanes_.resize(k * k);
  lane_seq_.assign(k, 0);
  if (cfg_.shards > 1 && cfg_.threads != 1) {
    const std::size_t threads = cfg_.threads == 0 ? k : cfg_.threads;
    pool_ = std::make_unique<ThreadPool>(threads);
  }
}

ShardedSimulator::~ShardedSimulator() = default;

void ShardedSimulator::set_window(Duration w) {
  SW_EXPECTS(!running_);
  SW_EXPECTS(w.ns > 0);
  cfg_.window = w;
}

Simulator& ShardedSimulator::shard(int s) {
  SW_EXPECTS(s >= 0 && s < cfg_.shards);
  return *cores_[static_cast<std::size_t>(s)];
}

const Simulator& ShardedSimulator::shard(int s) const {
  SW_EXPECTS(s >= 0 && s < cfg_.shards);
  return *cores_[static_cast<std::size_t>(s)];
}

void ShardedSimulator::cross_schedule(int src, int dst, RealTime at, Task cb) {
  SW_EXPECTS(src >= 0 && src < cfg_.shards);
  SW_EXPECTS(dst >= 0 && dst < cfg_.shards);
  if (!running_) {
    // Single-threaded context (setup between runs): no lane needed, the
    // destination core's own (time, sequence) order is deterministic.
    cores_[static_cast<std::size_t>(dst)]->schedule_at(at, std::move(cb));
    return;
  }
  // Lookahead contract: inside a window every cross-shard timestamp must
  // land at or beyond the next barrier, else the destination shard may
  // already have run past it.
  SW_EXPECTS_MSG(at.ns >= window_end_ns_,
                 "cross-shard event at t=" + std::to_string(at.ns) +
                     "ns lands before the window barrier at t=" +
                     std::to_string(window_end_ns_) +
                     "ns; shrink the window to the cross-shard lookahead");
  auto& lane = lanes_[static_cast<std::size_t>(src) *
                          static_cast<std::size_t>(cfg_.shards) +
                      static_cast<std::size_t>(dst)];
  lane.entries.push_back(
      {at.ns, ++lane_seq_[static_cast<std::size_t>(src)], src, dst,
       std::move(cb)});
}

void ShardedSimulator::set_lane_drain_order(std::vector<int> order) {
  SW_EXPECTS(!running_);
  if (!order.empty()) {
    const auto k = static_cast<std::size_t>(cfg_.shards);
    SW_EXPECTS(order.size() == k * k);
    std::vector<int> sorted = order;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      SW_EXPECTS(sorted[i] == static_cast<int>(i));
    }
  }
  drain_order_ = std::move(order);
}

std::size_t ShardedSimulator::lane_backlog() const {
  std::size_t n = 0;
  for (const auto& lane : lanes_) n += lane.entries.size();
  return n;
}

bool ShardedSimulator::merge_lanes(std::int64_t inclusive_ns) {
  OBS_PROF_SCOPE("sharded.merge");
  merge_scratch_.clear();
  if (drain_order_.empty()) {
    for (auto& lane : lanes_) {
      for (auto& e : lane.entries) merge_scratch_.push_back(std::move(e));
      lane.entries.clear();
    }
  } else {
    for (int idx : drain_order_) {
      auto& lane = lanes_[static_cast<std::size_t>(idx)];
      for (auto& e : lane.entries) merge_scratch_.push_back(std::move(e));
      lane.entries.clear();
    }
  }
  if (merge_scratch_.empty()) return false;
  // The deterministic merge rule: timestamp, then source shard, then the
  // source's sequence number. seq is unique per source, so this is a
  // total order — the drain order above cannot leak through the sort.
  std::sort(merge_scratch_.begin(), merge_scratch_.end(),
            [](const LaneEntry& a, const LaneEntry& b) {
              if (a.at_ns != b.at_ns) return a.at_ns < b.at_ns;
              if (a.src != b.src) return a.src < b.src;
              return a.seq < b.seq;
            });
  crossed_ += merge_scratch_.size();
  max_merge_batch_ = std::max(max_merge_batch_,
                              static_cast<std::uint64_t>(
                                  merge_scratch_.size()));
  if (merge_hist_ != nullptr) merge_hist_->record(merge_scratch_.size());
  bool any_due = false;
  for (auto& e : merge_scratch_) {
    any_due = any_due || e.at_ns <= inclusive_ns;
    cores_[static_cast<std::size_t>(e.dst)]->schedule_at(
        RealTime::nanos(e.at_ns), std::move(e.task));
  }
  merge_scratch_.clear();
  return any_due;
}

void ShardedSimulator::run_window(RealTime run_to, std::int64_t end_ns) {
  window_end_ns_ = end_ns;
  running_ = true;
  // Callbacks may throw (contract violations): catch per core, re-raise
  // on the main thread after the barrier — exceptions must not escape
  // into the pool's workers.
  std::vector<std::exception_ptr> errors(cores_.size());
  if (pool_) {
    // Submit + wait is the barrier: on the main thread this scope is the
    // time spent waiting for the slowest core of the window.
    OBS_PROF_SCOPE("sharded.barrier_wait");
    for (std::size_t s = 0; s < cores_.size(); ++s) {
      Simulator* core = cores_[s].get();
      std::exception_ptr* slot = &errors[s];
      pool_->submit([core, run_to, slot] {
        try {
          core->run_until(run_to);
        } catch (...) {
          *slot = std::current_exception();
        }
      });
    }
    pool_->wait_idle();
  } else {
    for (std::size_t s = 0; s < cores_.size(); ++s) {
      try {
        cores_[s]->run_until(run_to);
      } catch (...) {
        errors[s] = std::current_exception();
      }
    }
  }
  running_ = false;
  ++barriers_;
  for (auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

void ShardedSimulator::run_until(RealTime t) {
  SW_EXPECTS(!running_);
  if (cfg_.shards == 1) {
    cores_[0]->run_until(t);
    return;
  }
  std::int64_t base = now().ns;
  SW_EXPECTS(t.ns >= base);
  bool done = false;
  while (!done) {
    // Idle fast-path: with no pending events anywhere and no lane
    // backlog, no event can materialize before t — jump the clocks.
    if (pending() == 0) {
      for (auto& core : cores_) core->run_until(t);
      break;
    }
    const std::int64_t end = std::min(t.ns, base + cfg_.window.ns);
    const bool final_window = end == t.ns;
    // Non-final windows stop strictly before the barrier so an event at
    // exactly `end` orders after any cross-shard entry merged for `end`.
    const RealTime run_to = RealTime::nanos(final_window ? end : end - 1);
    run_window(run_to, end);
    // A cross-shard entry can land exactly at t during the final window;
    // run_until(t) is inclusive, so re-run the window until none does.
    const bool rerun = merge_lanes(run_to.ns);
    if (hook_) hook_(RealTime::nanos(end));
    base = end;
    done = final_window && !rerun;
  }
}

std::uint64_t ShardedSimulator::events_executed() const {
  std::uint64_t n = 0;
  for (const auto& core : cores_) n += core->events_executed();
  return n;
}

std::size_t ShardedSimulator::pending() const {
  std::size_t n = lane_backlog();
  for (const auto& core : cores_) n += core->pending();
  return n;
}

}  // namespace stopwatch::sim
