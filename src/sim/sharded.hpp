// Shard-parallel deterministic event execution (conservative PDES).
//
// A ShardedSimulator owns K independent sim::Simulator cores — each with
// its own timer wheel and slab arena — and runs them on a ThreadPool in
// barrier-synchronized windows. The protocol is the classic conservative
// one, specialized to this codebase's topology:
//
//  * Event ownership is static: every event belongs to exactly one shard
//    (derived upstream from the machine index a VM lives on), and a
//    shard's events touch only shard-confined state. Within a window the
//    K cores therefore share nothing and run fully in parallel.
//  * A window spans [B, B + window). Each core executes its events with
//    timestamp <= B + window - 1ns, then all cores meet at a barrier
//    (ThreadPool::wait_idle). Under WindowPolicy::kAdaptive each core
//    instead gets its own window end: the earliest time any cross-shard
//    entry could still reach it, computed from the per-core earliest-
//    pending-event watermarks and the declared per-pair lookahead floors
//    (set_lookahead) by the classic earliest-input-time relaxation
//      eit[d] = min over s != d of (min(t_min[s], eit[s]) + L[s][d]),
//    iterated to its fixpoint so reaction chains (s receives, then
//    sends) are bounded transitively. Cores whose bound grants no work
//    skip the window entirely; a "barrier" is only counted when two or
//    more cores actually run (a thread join happens). The executed event
//    orders are identical either way.
//  * An event that must run on another shard (a cross-shard frame
//    delivery) is not scheduled directly — the sender enqueues it into
//    the (source-shard, destination-shard) lane via cross_schedule().
//    Lanes are single-writer per source shard, so enqueueing is lock-free
//    by construction.
//  * At the barrier the main thread drains every lane and schedules the
//    entries into their destination cores in one deterministic order:
//    (timestamp, source shard, per-source sequence number). The order is
//    a pure function of simulation content — worker completion order,
//    thread count, and lane drain order cannot affect it.
//
// Correctness requires the lookahead contract: every cross-shard entry's
// timestamp must lie at or beyond the bound its destination's window was
// granted — under the fixed policy the next barrier, under the adaptive
// policy the destination's earliest-input-time (enforced per entry by a
// contract check). Under that contract the sharded run executes the
// same events at the same timestamps as a sequential run; ties between
// cross-shard and shard-local events at the exact same nanosecond are the
// only place orderings could differ, and the jittered links that feed the
// lanes make exact ties measure-zero (the differential tests check this
// empirically).
//
// shards == 1 bypasses the machinery entirely (direct run_until on the
// single core, zero overhead), which is what makes `sim_shards=1` output
// the byte-identical reference for `sim_shards=N`.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "common/time.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace stopwatch {
class ThreadPool;
}  // namespace stopwatch

namespace stopwatch::sim {

/// How the per-window barrier bound is chosen.
enum class WindowPolicy {
  /// Every window spans exactly the configured lookahead: next barrier at
  /// base + window. The PR 7 behavior, and the conservative reference.
  kFixed,
  /// Each core's window end is pushed to the *realized* safe bound: the
  /// earliest-input-time fixpoint over the per-core earliest-pending-
  /// event watermarks and the per-pair lookahead floors (the uniform
  /// `window` when none are declared). Identical event orders — windows
  /// only widen over spans where no cross-shard entry can land, so the
  /// same events run at the same timestamps and the per-entry contract
  /// holds exactly as before (every send executing at ts lands at
  /// >= ts + its pair's floor >= the destination's window end).
  kAdaptive,
};

struct ShardedConfig {
  /// Number of independent simulator cores (>= 1).
  int shards{1};
  /// Barrier window width. Must be positive and no larger than the
  /// minimum cross-shard event latency (the lookahead). The topology
  /// layer derives this from the link models; tests set it directly.
  Duration window{Duration::micros(100)};
  /// Worker threads: 0 auto-sizes to min(shards, host cores) — a 1-CPU
  /// host gets the inline path, and an 8-shard run on a 4-core host
  /// gets 4 workers instead of 8 thrashing ones. 1 runs every window
  /// inline on the calling thread (same results — useful for
  /// debugging; results never depend on the thread count).
  std::size_t threads{0};
  /// Barrier placement policy. kFixed is the kernel default; the cloud
  /// layer defaults to kAdaptive (CloudConfig::shard_window_policy).
  WindowPolicy policy{WindowPolicy::kFixed};
};

/// K simulator cores + deterministic cross-shard lanes + barrier loop.
class ShardedSimulator {
 public:
  explicit ShardedSimulator(ShardedConfig cfg);
  ~ShardedSimulator();

  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  [[nodiscard]] int shard_count() const { return cfg_.shards; }
  [[nodiscard]] Duration window() const { return cfg_.window; }
  /// Adjusts the barrier window. Must not be called mid-run.
  void set_window(Duration w);
  [[nodiscard]] WindowPolicy window_policy() const { return cfg_.policy; }
  /// Switches the barrier placement policy. Must not be called mid-run.
  void set_window_policy(WindowPolicy policy);

  /// Declares the minimum latency of cross-shard traffic from `src` to
  /// `dst`: no event executing on `src` at time ts may cross_schedule an
  /// entry for `dst` earlier than ts + floor. Pairs without a declared
  /// floor fall back to the uniform window. Only the adaptive policy
  /// reads these; the per-entry contract validates every cross event
  /// against the bound actually granted, so an optimistic declaration
  /// fails loudly instead of corrupting the merge order.
  void set_lookahead(int src, int dst, Duration floor);
  /// Declares that `src` never sends cross-shard traffic to `dst` (the
  /// pair places no bound on `dst`'s window). An entry on the pair still
  /// delivers correctly when it lands beyond the granted bound — and
  /// throws when it does not.
  void set_lookahead_unreachable(int src, int dst);

  [[nodiscard]] Simulator& shard(int s);
  [[nodiscard]] const Simulator& shard(int s) const;

  /// Barrier-aligned current time: every core sits at this time between
  /// run_until calls.
  [[nodiscard]] RealTime now() const { return shard(0).now(); }

  /// Hands an event from shard `src` to shard `dst` for time `at`. Safe
  /// to call from shard `src`'s worker thread during a window (lanes are
  /// single-writer per source). The lookahead contract requires `at` to
  /// be at or beyond the next barrier; violations throw.
  void cross_schedule(int src, int dst, RealTime at, Task cb);

  /// Runs all cores to exactly `t` through barrier-synchronized windows.
  /// On return every core's clock reads `t` and every lane entry with
  /// timestamp <= t has executed on its destination core.
  void run_until(RealTime t);

  /// True while worker threads are inside a window — shared-state
  /// mutation from the main thread is illegal then.
  [[nodiscard]] bool running() const { return running_; }

  // --- Aggregate introspection (sum over cores) ---
  [[nodiscard]] std::uint64_t events_executed() const;
  [[nodiscard]] std::size_t pending() const;
  /// Total entries handed across shards via cross_schedule.
  [[nodiscard]] std::uint64_t cross_scheduled() const { return crossed_; }
  /// Barriers executed so far: windows in which two or more cores ran
  /// and met at a thread join. (Adaptive rounds that run a single
  /// lagging core inline are not barriers — no join happens.)
  [[nodiscard]] std::uint64_t barriers() const { return barriers_; }
  /// Windows in which the adaptive policy granted some core a bound more
  /// than one uniform window past its position (each one stands in for
  /// at least one barrier the fixed policy would have paid). Always 0
  /// under WindowPolicy::kFixed.
  [[nodiscard]] std::uint64_t adaptive_extensions() const {
    return adaptive_extensions_;
  }
  /// Largest single-barrier merge batch seen (peak cross-shard lane
  /// depth at a barrier).
  [[nodiscard]] std::uint64_t max_merge_batch() const {
    return max_merge_batch_;
  }
  /// Peak bytes held across all cross-shard lanes at a barrier (the
  /// memory-accounting gauge behind `mem.lane_bytes_highwater`).
  [[nodiscard]] std::uint64_t lane_bytes_highwater() const {
    return max_merge_batch_ * sizeof(LaneEntry);
  }

  /// Installs (or, with nullptr, removes) a histogram receiving the size
  /// of each non-empty barrier merge batch. Recorded on the main thread
  /// at barriers only, never inside a window.
  void set_merge_histogram(obs::Histogram* hist) { merge_hist_ = hist; }

  // --- Test hooks ---
  /// Invoked single-threaded after each barrier merge with the barrier
  /// time. The differential tests snapshot per-shard state here.
  using BarrierHook = std::function<void(RealTime barrier_time)>;
  void set_barrier_hook(BarrierHook hook) { hook_ = std::move(hook); }
  /// Permutes the order lanes are drained in at the merge (indices into
  /// the flattened src*K+dst lane array). The merge result must not
  /// depend on it — the merge-stability test sets adversarial orders.
  void set_lane_drain_order(std::vector<int> order);

 private:
  struct LaneEntry {
    std::int64_t at_ns;
    std::uint64_t seq;  // per-source-shard, monotonically increasing
    int src;
    int dst;
    Task task;
  };
  struct Lane {
    std::vector<LaneEntry> entries;
  };

  /// Drains and merge-schedules every lane; returns true if any entry
  /// landed at or before its destination core's current clock (only
  /// possible at a final window, where it forces a re-run).
  bool merge_lanes();
  /// One window: runs every core whose `mask` entry is set to its
  /// `run_to_ns` entry on the pool (inline when only one runs),
  /// collecting callback exceptions for re-raise on this thread.
  /// Counts a barrier when two or more cores ran. `window_end_ns_` must
  /// already hold the per-destination bounds for the contract check.
  void run_window(const std::vector<std::int64_t>& run_to_ns,
                  const std::vector<char>& mask);
  /// The adaptive barrier loop: per-core window ends from the
  /// earliest-input-time fixpoint over watermarks + lookahead floors.
  void run_until_adaptive(RealTime t);
  /// The declared floor for src -> dst entries (window.ns when the pair
  /// has none), or kUnreachableNs.
  [[nodiscard]] std::int64_t lookahead_ns(int src, int dst) const;
  [[nodiscard]] std::size_t lane_backlog() const;

  static constexpr std::int64_t kUnreachableNs =
      std::numeric_limits<std::int64_t>::max();

  ShardedConfig cfg_;
  std::vector<std::unique_ptr<Simulator>> cores_;
  /// Flattened [src * shards + dst]; each lane is written only by its
  /// source shard's worker during a window, drained only at barriers.
  std::vector<Lane> lanes_;
  /// Per-source-shard sequence counters (worker-confined like the lanes).
  std::vector<std::uint64_t> lane_seq_;
  std::vector<int> drain_order_;
  std::unique_ptr<ThreadPool> pool_;
  BarrierHook hook_;
  std::uint64_t crossed_{0};
  std::uint64_t barriers_{0};
  std::uint64_t adaptive_extensions_{0};
  std::uint64_t max_merge_batch_{0};
  obs::Histogram* merge_hist_{nullptr};
  bool running_{false};
  /// Per-destination bounds for the window in flight; cross_schedule
  /// validates each entry's timestamp against its destination's slot.
  /// Written single-threaded before the workers start.
  std::vector<std::int64_t> window_end_ns_;
  /// Flattened [src * shards + dst] per-pair floors; empty until the
  /// first set_lookahead, -1 entries fall back to cfg_.window.
  std::vector<std::int64_t> lookahead_;
  std::vector<LaneEntry> merge_scratch_;
  // Adaptive-round scratch (sized shards, reused across rounds).
  std::vector<std::int64_t> t_min_scratch_;
  std::vector<std::int64_t> eit_scratch_;
  std::vector<std::int64_t> run_to_scratch_;
  std::vector<char> run_mask_;
};

}  // namespace stopwatch::sim
