// Shard-parallel deterministic event execution (conservative PDES).
//
// A ShardedSimulator owns K independent sim::Simulator cores — each with
// its own timer wheel and slab arena — and runs them on a ThreadPool in
// barrier-synchronized windows. The protocol is the classic conservative
// one, specialized to this codebase's topology:
//
//  * Event ownership is static: every event belongs to exactly one shard
//    (derived upstream from the machine index a VM lives on), and a
//    shard's events touch only shard-confined state. Within a window the
//    K cores therefore share nothing and run fully in parallel.
//  * A window spans [B, B + window). Each core executes its events with
//    timestamp <= B + window - 1ns, then all cores meet at a barrier
//    (ThreadPool::wait_idle).
//  * An event that must run on another shard (a cross-shard frame
//    delivery) is not scheduled directly — the sender enqueues it into
//    the (source-shard, destination-shard) lane via cross_schedule().
//    Lanes are single-writer per source shard, so enqueueing is lock-free
//    by construction.
//  * At the barrier the main thread drains every lane and schedules the
//    entries into their destination cores in one deterministic order:
//    (timestamp, source shard, per-source sequence number). The order is
//    a pure function of simulation content — worker completion order,
//    thread count, and lane drain order cannot affect it.
//
// Correctness requires the lookahead contract: every cross-shard entry's
// timestamp must lie at or beyond the *next* barrier, i.e. the window
// must not exceed the minimum cross-shard latency (enforced per entry by
// a contract check). Under that contract the sharded run executes the
// same events at the same timestamps as a sequential run; ties between
// cross-shard and shard-local events at the exact same nanosecond are the
// only place orderings could differ, and the jittered links that feed the
// lanes make exact ties measure-zero (the differential tests check this
// empirically).
//
// shards == 1 bypasses the machinery entirely (direct run_until on the
// single core, zero overhead), which is what makes `sim_shards=1` output
// the byte-identical reference for `sim_shards=N`.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/time.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace stopwatch {
class ThreadPool;
}  // namespace stopwatch

namespace stopwatch::sim {

struct ShardedConfig {
  /// Number of independent simulator cores (>= 1).
  int shards{1};
  /// Barrier window width. Must be positive and no larger than the
  /// minimum cross-shard event latency (the lookahead). The topology
  /// layer derives this from the link models; tests set it directly.
  Duration window{Duration::micros(100)};
  /// Worker threads: 0 means one per shard. 1 runs every window inline
  /// on the calling thread (same results — useful for debugging).
  std::size_t threads{0};
};

/// K simulator cores + deterministic cross-shard lanes + barrier loop.
class ShardedSimulator {
 public:
  explicit ShardedSimulator(ShardedConfig cfg);
  ~ShardedSimulator();

  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  [[nodiscard]] int shard_count() const { return cfg_.shards; }
  [[nodiscard]] Duration window() const { return cfg_.window; }
  /// Adjusts the barrier window. Must not be called mid-run.
  void set_window(Duration w);

  [[nodiscard]] Simulator& shard(int s);
  [[nodiscard]] const Simulator& shard(int s) const;

  /// Barrier-aligned current time: every core sits at this time between
  /// run_until calls.
  [[nodiscard]] RealTime now() const { return shard(0).now(); }

  /// Hands an event from shard `src` to shard `dst` for time `at`. Safe
  /// to call from shard `src`'s worker thread during a window (lanes are
  /// single-writer per source). The lookahead contract requires `at` to
  /// be at or beyond the next barrier; violations throw.
  void cross_schedule(int src, int dst, RealTime at, Task cb);

  /// Runs all cores to exactly `t` through barrier-synchronized windows.
  /// On return every core's clock reads `t` and every lane entry with
  /// timestamp <= t has executed on its destination core.
  void run_until(RealTime t);

  /// True while worker threads are inside a window — shared-state
  /// mutation from the main thread is illegal then.
  [[nodiscard]] bool running() const { return running_; }

  // --- Aggregate introspection (sum over cores) ---
  [[nodiscard]] std::uint64_t events_executed() const;
  [[nodiscard]] std::size_t pending() const;
  /// Total entries handed across shards via cross_schedule.
  [[nodiscard]] std::uint64_t cross_scheduled() const { return crossed_; }
  /// Barriers executed (windows run) so far.
  [[nodiscard]] std::uint64_t barriers() const { return barriers_; }
  /// Largest single-barrier merge batch seen (peak cross-shard lane
  /// depth at a barrier).
  [[nodiscard]] std::uint64_t max_merge_batch() const {
    return max_merge_batch_;
  }
  /// Peak bytes held across all cross-shard lanes at a barrier (the
  /// memory-accounting gauge behind `mem.lane_bytes_highwater`).
  [[nodiscard]] std::uint64_t lane_bytes_highwater() const {
    return max_merge_batch_ * sizeof(LaneEntry);
  }

  /// Installs (or, with nullptr, removes) a histogram receiving the size
  /// of each non-empty barrier merge batch. Recorded on the main thread
  /// at barriers only, never inside a window.
  void set_merge_histogram(obs::Histogram* hist) { merge_hist_ = hist; }

  // --- Test hooks ---
  /// Invoked single-threaded after each barrier merge with the barrier
  /// time. The differential tests snapshot per-shard state here.
  using BarrierHook = std::function<void(RealTime barrier_time)>;
  void set_barrier_hook(BarrierHook hook) { hook_ = std::move(hook); }
  /// Permutes the order lanes are drained in at the merge (indices into
  /// the flattened src*K+dst lane array). The merge result must not
  /// depend on it — the merge-stability test sets adversarial orders.
  void set_lane_drain_order(std::vector<int> order);

 private:
  struct LaneEntry {
    std::int64_t at_ns;
    std::uint64_t seq;  // per-source-shard, monotonically increasing
    int src;
    int dst;
    Task task;
  };
  struct Lane {
    std::vector<LaneEntry> entries;
  };

  /// Drains and merge-schedules every lane; returns true if any entry
  /// landed at or before `inclusive_ns` (only possible at a final
  /// window, where it forces a re-run).
  bool merge_lanes(std::int64_t inclusive_ns);
  /// One barrier window: runs every core to `run_to` on the pool (or
  /// inline), collecting callback exceptions for re-raise on this thread.
  void run_window(RealTime run_to, std::int64_t end_ns);
  [[nodiscard]] std::size_t lane_backlog() const;

  ShardedConfig cfg_;
  std::vector<std::unique_ptr<Simulator>> cores_;
  /// Flattened [src * shards + dst]; each lane is written only by its
  /// source shard's worker during a window, drained only at barriers.
  std::vector<Lane> lanes_;
  /// Per-source-shard sequence counters (worker-confined like the lanes).
  std::vector<std::uint64_t> lane_seq_;
  std::vector<int> drain_order_;
  std::unique_ptr<ThreadPool> pool_;
  BarrierHook hook_;
  std::uint64_t crossed_{0};
  std::uint64_t barriers_{0};
  std::uint64_t max_merge_batch_{0};
  obs::Histogram* merge_hist_{nullptr};
  bool running_{false};
  /// Set while a window's workers run; cross_schedule validates its
  /// timestamps against this (the next barrier).
  std::int64_t window_end_ns_{0};
  std::vector<LaneEntry> merge_scratch_;
};

}  // namespace stopwatch::sim
