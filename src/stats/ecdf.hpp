// Empirical distributions built from measured samples (e.g., the virtual
// inter-packet delivery times collected in the Fig. 4 experiment).
#pragma once

#include <vector>

namespace stopwatch::stats {

/// Empirical CDF over a sample set; also provides quantiles and moments.
class Ecdf {
 public:
  explicit Ecdf(std::vector<double> samples);

  /// Fraction of samples <= x.
  [[nodiscard]] double cdf(double x) const;
  /// p-quantile using the nearest-rank method, p in [0, 1].
  [[nodiscard]] double quantile(double p) const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] std::size_t size() const { return sorted_.size(); }
  [[nodiscard]] const std::vector<double>& sorted_samples() const { return sorted_; }

 private:
  std::vector<double> sorted_;
  double mean_{0.0};
  double stddev_{0.0};
};

/// Exact two-sample Kolmogorov-Smirnov statistic between two ECDFs.
[[nodiscard]] double ks_two_sample(const Ecdf& a, const Ecdf& b);

}  // namespace stopwatch::stats
