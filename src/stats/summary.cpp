#include "stats/summary.hpp"

#include "common/contracts.hpp"
#include "stats/ecdf.hpp"

namespace stopwatch::stats {

Summary summarize(const std::vector<double>& samples) {
  SW_EXPECTS(!samples.empty());
  const Ecdf e(samples);
  Summary s;
  s.count = e.size();
  s.mean = e.mean();
  s.stddev = e.stddev();
  s.min = e.min();
  s.p50 = e.quantile(0.50);
  s.p95 = e.quantile(0.95);
  s.p99 = e.quantile(0.99);
  s.max = e.max();
  return s;
}

}  // namespace stopwatch::stats
