// Probability distributions used by the analytic experiments (Figs. 1 and 8)
// and by the simulator's noise models. A Distribution exposes its CDF, so the
// order-statistics machinery (median of three) can be composed over any mix
// of distributions, exactly as in the paper's Appendix.
#pragma once

#include <functional>
#include <memory>

#include "common/rng.hpp"

namespace stopwatch::stats {

/// Abstract real-valued distribution: CDF + sampling.
class Distribution {
 public:
  virtual ~Distribution() = default;

  /// P(X <= x).
  [[nodiscard]] virtual double cdf(double x) const = 0;
  /// Draw one sample.
  [[nodiscard]] virtual double sample(Rng& rng) const = 0;
  /// E[X]; computed analytically by concrete classes where possible.
  [[nodiscard]] virtual double mean() const = 0;
};

/// Exponential with rate lambda: the paper's model for packet inter-arrival
/// times (Fig. 1 footnote cites the Poisson-traffic literature).
class Exponential final : public Distribution {
 public:
  explicit Exponential(double lambda);
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double lambda() const { return lambda_; }

 private:
  double lambda_;
};

/// Uniform on [lo, hi]; U(0, b) is the additive-noise comparator of Fig. 8.
class Uniform final : public Distribution {
 public:
  Uniform(double lo, double hi);
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] double mean() const override;

 private:
  double lo_, hi_;
};

/// X + c for a fixed shift c (e.g., adding Δn to a delivery-time variable).
class Shifted final : public Distribution {
 public:
  Shifted(std::shared_ptr<const Distribution> base, double shift);
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] double mean() const override;

 private:
  std::shared_ptr<const Distribution> base_;
  double shift_;
};

/// Sum X + Y of two independent variables, CDF by numeric convolution over
/// the second variable's support (used for Exp + Uniform noise in Fig. 8).
class SumOfIndependent final : public Distribution {
 public:
  /// `quadrature_points` controls the accuracy of the convolution integral.
  SumOfIndependent(std::shared_ptr<const Distribution> x,
                   std::shared_ptr<const Uniform> uniform_noise,
                   int quadrature_points = 512);
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] double mean() const override;

 private:
  std::shared_ptr<const Distribution> x_;
  std::shared_ptr<const Uniform> noise_;
  double noise_lo_, noise_hi_;
  int quadrature_points_;
};

/// Wraps an arbitrary CDF function as a Distribution (sampling by numeric
/// inversion). Used to treat a median-of-three CDF as a first-class
/// distribution.
class CdfDistribution final : public Distribution {
 public:
  /// `support_hi` bounds the numeric inversion search; the CDF must be
  /// monotone nondecreasing with cdf(0-) ~ 0 for nonnegative variables.
  CdfDistribution(std::function<double(double)> cdf_fn, double support_lo,
                  double support_hi);
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] double mean() const override;

 private:
  std::function<double(double)> cdf_fn_;
  double lo_, hi_;
};

/// Numerically computes E[X] for a nonnegative variable from its CDF via
/// E[X] = ∫ (1 - F(x)) dx over [0, hi].
[[nodiscard]] double mean_from_cdf(const std::function<double(double)>& cdf,
                                   double hi, int steps = 20000);

/// Numerically inverts a monotone CDF: smallest x in [lo, hi] with
/// F(x) >= p.
[[nodiscard]] double invert_cdf(const std::function<double(double)>& cdf,
                                double p, double lo, double hi);

}  // namespace stopwatch::stats
