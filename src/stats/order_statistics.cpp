#include "stats/order_statistics.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace stopwatch::stats {

double median_of_three_cdf(double f1, double f2, double f3) {
  return f1 * f2 + f1 * f3 + f2 * f3 - 2.0 * f1 * f2 * f3;
}

namespace {

/// Binomial coefficient for the small arguments used here.
double choose(int n, int k) {
  if (k < 0 || k > n) return 0.0;
  double r = 1.0;
  for (int i = 1; i <= k; ++i) r = r * (n - k + i) / i;
  return r;
}

/// Sum over all subsets I of {0..m-1} with |I| = l of prod_{i in I} f[i],
/// i.e. the elementary symmetric polynomial e_l(f).
double elementary_symmetric(const std::vector<double>& f, int l) {
  const int m = static_cast<int>(f.size());
  // DP: e[j] after processing each element.
  std::vector<double> e(static_cast<std::size_t>(l) + 1, 0.0);
  e[0] = 1.0;
  for (int i = 0; i < m; ++i) {
    for (int j = std::min(l, i + 1); j >= 1; --j) {
      e[static_cast<std::size_t>(j)] += e[static_cast<std::size_t>(j - 1)] * f[static_cast<std::size_t>(i)];
    }
  }
  return e[static_cast<std::size_t>(l)];
}

}  // namespace

double order_statistic_cdf(const std::vector<double>& f, int r) {
  const int m = static_cast<int>(f.size());
  SW_EXPECTS(m >= 1);
  SW_EXPECTS(r >= 1 && r <= m);
  for (double fi : f) SW_EXPECTS(fi >= 0.0 && fi <= 1.0);

  double acc = 0.0;
  for (int l = r; l <= m; ++l) {
    const double sign = ((l - r) % 2 == 0) ? 1.0 : -1.0;
    acc += sign * choose(l - 1, r - 1) * elementary_symmetric(f, l);
  }
  // Numeric guard: a CDF stays within [0, 1].
  if (acc < 0.0) acc = 0.0;
  if (acc > 1.0) acc = 1.0;
  return acc;
}

std::shared_ptr<Distribution> make_median_of_three(
    std::shared_ptr<const Distribution> d1,
    std::shared_ptr<const Distribution> d2,
    std::shared_ptr<const Distribution> d3, double support_hi) {
  SW_EXPECTS(d1 && d2 && d3);
  SW_EXPECTS(support_hi > 0.0);
  auto cdf = [d1, d2, d3](double x) {
    return median_of_three_cdf(d1->cdf(x), d2->cdf(x), d3->cdf(x));
  };
  return std::make_shared<CdfDistribution>(cdf, 0.0, support_hi);
}

double ks_distance(const std::function<double(double)>& f,
                   const std::function<double(double)>& g, double lo,
                   double hi, int grid_points) {
  SW_EXPECTS(lo < hi);
  SW_EXPECTS(grid_points >= 2);
  double d = 0.0;
  for (int i = 0; i <= grid_points; ++i) {
    const double x = lo + (hi - lo) * i / grid_points;
    d = std::max(d, std::fabs(f(x) - g(x)));
  }
  return d;
}

}  // namespace stopwatch::stats
