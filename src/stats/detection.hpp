// The paper's detection methodology: how many observations does an attacker
// need before a chi-squared test rejects, at a given confidence, the null
// hypothesis "I am not coresident with the victim"? (Figs. 1(b), 1(c), 4(b),
// and the calibration behind Fig. 8.)
//
// Methodology: partition the observation space into k cells. If the
// attacker's observations actually come from the alternative distribution,
// the expected chi-squared statistic after N observations is approximately
// (k - 1) + N * λ1, where
//
//   λ1 = Σ_i (p'_i - p_i)² / p_i
//
// is the per-observation noncentrality. The attacker detects at confidence c
// once the expected statistic exceeds the chi-squared critical value
// χ²_{k-1}(c), giving N(c) = max(1, ⌈(χ²_{k-1}(c) - (k-1)) / λ1⌉).
//
// Binning matters. Equal-width cells over the support (the default) are
// tail-sensitive: a victim that inflates the tail is detectable in a handful
// of observations without StopWatch — matching the paper's "a single
// observation" claim — while the median-of-three damps tail differences
// quadratically (the (F2 + F3 - 2 F2 F3) factor of Theorem 3 vanishes in
// both tails), which is precisely why StopWatch buys ~2 orders of magnitude.
// Equiprobable-under-null cells are also provided for sensitivity analysis.
#pragma once

#include <functional>
#include <vector>

#include "stats/distribution.hpp"
#include "stats/ecdf.hpp"

namespace stopwatch::stats {

/// Cell layout for the chi-squared test.
enum class Binning {
  kEqualWidth,    ///< k equal-width cells over [lo, hi] (paper mode).
  kEquiprobable,  ///< k cells with equal null mass.
};

/// Result of a detection analysis at one confidence level.
struct DetectionResult {
  double confidence{0.0};
  /// Observations needed to reject the null at `confidence`.
  long observations_needed{0};
  /// Per-observation chi-squared noncentrality λ1.
  double noncentrality{0.0};
};

/// Analyses distinguishability of two distributions with a chi-squared test.
class ChiSquaredDetector {
 public:
  ChiSquaredDetector(std::function<double(double)> null_cdf,
                     std::function<double(double)> alt_cdf, double support_lo,
                     double support_hi, int bins = 60,
                     Binning binning = Binning::kEqualWidth);

  /// Convenience: analyse two sample sets (the Fig. 4 path). Cells are laid
  /// out over the combined sample range; the null cell mass is floored at
  /// 0.5 / |null sample| to keep finite-sample noise from exploding λ1.
  static ChiSquaredDetector from_samples(const Ecdf& null_samples,
                                         const Ecdf& alt_samples,
                                         int bins = 40,
                                         Binning binning = Binning::kEqualWidth);

  [[nodiscard]] double noncentrality() const { return noncentrality_; }

  /// Observations needed at one confidence level.
  [[nodiscard]] long observations_needed(double confidence) const;

  /// Sweep over several confidence levels (the x-axes of Figs. 1(b,c), 4(b)).
  [[nodiscard]] std::vector<DetectionResult> sweep(
      const std::vector<double>& confidences) const;

  [[nodiscard]] int bins() const { return bins_; }

 private:
  ChiSquaredDetector(std::vector<double> null_probs,
                     std::vector<double> alt_probs, double null_mass_floor);

  void compute_noncentrality(const std::vector<double>& null_probs,
                             const std::vector<double>& alt_probs,
                             double null_mass_floor);

  int bins_{0};
  double noncentrality_{0.0};
};

/// The confidence grid used throughout the paper's figures.
[[nodiscard]] std::vector<double> paper_confidence_grid();

}  // namespace stopwatch::stats
