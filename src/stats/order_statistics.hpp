// Order statistics of independent (not necessarily identical) variables —
// the mathematical core of the paper's Appendix.
//
// StopWatch discloses only the *median* of three replica timings. For
// independent X1, X2, X3 with CDFs F1, F2, F3, the median's CDF is
//
//   F_{2:3}(x) = F1F2 + F1F3 + F2F3 - 2 F1F2F3            (Appendix)
//
// and Theorems 3/4 bound the Kolmogorov-Smirnov distance between the
// "no victim" and "one coresident victim" median distributions by (half) the
// distance between the underlying single-replica distributions.
#pragma once

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "stats/distribution.hpp"

namespace stopwatch::stats {

/// CDF of the median of three independent variables with the given CDFs,
/// evaluated at x.
[[nodiscard]] double median_of_three_cdf(double f1, double f2, double f3);

/// CDF of the r-th smallest of m independent variables (general
/// Güngör et al. formula used in the Appendix proof):
///   F_{r:m}(x) = Σ_{ℓ=r..m} (-1)^{ℓ-r} C(ℓ-1, r-1) Σ_{|I|=ℓ} Π_{i∈I} F_i(x)
/// `f` holds the individual CDF values F_i(x). 1 <= r <= m = f.size().
[[nodiscard]] double order_statistic_cdf(const std::vector<double>& f, int r);

/// Builds the median-of-three distribution over three component
/// distributions. The returned object owns shared references to them.
[[nodiscard]] std::shared_ptr<Distribution> make_median_of_three(
    std::shared_ptr<const Distribution> d1,
    std::shared_ptr<const Distribution> d2,
    std::shared_ptr<const Distribution> d3, double support_hi);

/// Kolmogorov-Smirnov distance between two CDFs, max over a uniform grid of
/// `grid_points` points on [lo, hi].
[[nodiscard]] double ks_distance(const std::function<double(double)>& f,
                                 const std::function<double(double)>& g,
                                 double lo, double hi, int grid_points = 4096);

/// The median of three concrete values (the operation each VMM performs on
/// proposed delivery times, Sec. V).
template <typename T>
[[nodiscard]] T median3(T a, T b, T c) {
  if (a > b) std::swap(a, b);
  if (b > c) std::swap(b, c);
  if (a > b) std::swap(a, b);
  return b;
}

}  // namespace stopwatch::stats
