#include "stats/ecdf.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace stopwatch::stats {

Ecdf::Ecdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  SW_EXPECTS(!sorted_.empty());
  std::sort(sorted_.begin(), sorted_.end());
  double acc = 0.0;
  for (double v : sorted_) acc += v;
  mean_ = acc / static_cast<double>(sorted_.size());
  double var = 0.0;
  for (double v : sorted_) var += (v - mean_) * (v - mean_);
  stddev_ = sorted_.size() > 1
                ? std::sqrt(var / static_cast<double>(sorted_.size() - 1))
                : 0.0;
}

double Ecdf::cdf(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::quantile(double p) const {
  SW_EXPECTS(p >= 0.0 && p <= 1.0);
  if (p <= 0.0) return sorted_.front();
  const auto n = static_cast<double>(sorted_.size());
  auto rank = static_cast<std::size_t>(std::ceil(p * n));
  if (rank == 0) rank = 1;
  if (rank > sorted_.size()) rank = sorted_.size();
  return sorted_[rank - 1];
}

double Ecdf::min() const { return sorted_.front(); }
double Ecdf::max() const { return sorted_.back(); }
double Ecdf::mean() const { return mean_; }
double Ecdf::stddev() const { return stddev_; }

double ks_two_sample(const Ecdf& a, const Ecdf& b) {
  double d = 0.0;
  for (double x : a.sorted_samples()) d = std::max(d, std::fabs(a.cdf(x) - b.cdf(x)));
  for (double x : b.sorted_samples()) d = std::max(d, std::fabs(a.cdf(x) - b.cdf(x)));
  return d;
}

}  // namespace stopwatch::stats
