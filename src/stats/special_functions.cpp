#include "stats/special_functions.hpp"

#include <cmath>
#include <limits>
#include <map>
#include <utility>

#include "common/contracts.hpp"

namespace stopwatch::stats {

namespace {

constexpr int kMaxIterations = 500;
constexpr double kEps = 1e-14;
constexpr double kFpMin = std::numeric_limits<double>::min() / kEps;
constexpr double kPi = 3.14159265358979323846;

/// Lanczos coefficients (g = 7, n = 9), accurate to ~1e-14 relative error
/// over the positive reals.
constexpr double kLanczos[] = {
    0.99999999999980993,     676.5203681218851,     -1259.1392167224028,
    771.32342877765313,      -176.61502916214059,   12.507343278686905,
    -0.13857109526572012,    9.9843695780195716e-6, 1.5056327351493116e-7};

/// Series representation of P(a, x), valid (fast-converging) for x < a + 1.
double gamma_p_series(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int i = 0; i < kMaxIterations; ++i) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * kEps) break;
  }
  return sum * std::exp(-x + a * std::log(x) - log_gamma(a));
}

/// Continued-fraction representation of Q(a, x), valid for x >= a + 1
/// (modified Lentz's method).
double gamma_q_continued_fraction(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return std::exp(-x + a * std::log(x) - log_gamma(a)) * h;
}

}  // namespace

double log_gamma(double x) {
  SW_EXPECTS(x > 0.0);
  // Reflection keeps the Lanczos sum in its accurate range x >= 0.5.
  if (x < 0.5) return std::log(kPi / std::sin(kPi * x)) - log_gamma(1.0 - x);
  x -= 1.0;
  double sum = kLanczos[0];
  for (int i = 1; i < 9; ++i) {
    sum += kLanczos[i] / (x + static_cast<double>(i));
  }
  const double t = x + 7.5;
  return 0.5 * std::log(2.0 * kPi) + (x + 0.5) * std::log(t) - t +
         std::log(sum);
}

double regularized_gamma_p(double a, double x) {
  SW_EXPECTS(a > 0.0);
  SW_EXPECTS(x >= 0.0);
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_continued_fraction(a, x);
}

double regularized_gamma_q(double a, double x) {
  SW_EXPECTS(a > 0.0);
  SW_EXPECTS(x >= 0.0);
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_continued_fraction(a, x);
}

double chi_squared_cdf(double x, double k) {
  SW_EXPECTS(k > 0.0);
  if (x <= 0.0) return 0.0;
  return regularized_gamma_p(k / 2.0, x / 2.0);
}

double chi_squared_inverse_cdf(double p, double k) {
  SW_EXPECTS(p >= 0.0 && p < 1.0);
  SW_EXPECTS(k > 0.0);
  if (p == 0.0) return 0.0;

  // Detection sweeps evaluate a fixed confidence grid against a handful of
  // dof values, so the same (p, k) recurs thousands of times per scenario
  // at ~8.4 us per cold solve. Exact-key memoization is sound here —
  // callers pass round constants — and thread_local keeps the parallel
  // runner contention-free. Bounded so adversarial key streams cannot grow
  // it without limit.
  thread_local std::map<std::pair<double, double>, double> memo;
  const std::pair<double, double> key{p, k};
  if (const auto it = memo.find(key); it != memo.end()) return it->second;

  // Wilson-Hilferty approximation as a starting point.
  const double z = normal_inverse_cdf(p);
  const double t = 1.0 - 2.0 / (9.0 * k) + z * std::sqrt(2.0 / (9.0 * k));
  double x = k * t * t * t;
  if (x <= 0.0) x = 0.5;

  // Bracket the root, then bisect; the CDF is monotone so this is robust.
  double lo = 0.0;
  double hi = x;
  while (chi_squared_cdf(hi, k) < p) {
    lo = hi;
    hi *= 2.0;
    SW_ASSERT(hi < 1e12);
  }
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (chi_squared_cdf(mid, k) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12 * (1.0 + hi)) break;
  }
  const double root = 0.5 * (lo + hi);
  if (memo.size() >= 4096) memo.clear();
  memo.emplace(key, root);
  return root;
}

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double normal_inverse_cdf(double p) {
  SW_EXPECTS(p > 0.0 && p < 1.0);
  // Acklam's algorithm.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;

  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }

  // One Halley refinement step using the exact CDF.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * 3.14159265358979323846) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

}  // namespace stopwatch::stats
