// Special functions needed for the paper's statistical methodology:
// regularized incomplete gamma (-> chi-squared CDF and inverse CDF), used by
// the chi-squared "observations needed to detect the victim" analysis of
// Figs. 1, 4 and 8.
#pragma once

namespace stopwatch::stats {

/// ln Γ(x) for x > 0 (Lanczos approximation, ~1e-14 relative error).
/// Replaces std::lgamma, which is not thread-safe (it writes the global
/// `signgam`) — scenarios calling it concurrently under --jobs raced — and
/// additionally makes the value byte-identical across libm implementations.
[[nodiscard]] double log_gamma(double x);

/// Regularized lower incomplete gamma P(a, x) = γ(a,x) / Γ(a), for a > 0,
/// x >= 0. Series expansion for x < a+1, continued fraction otherwise.
[[nodiscard]] double regularized_gamma_p(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
[[nodiscard]] double regularized_gamma_q(double a, double x);

/// CDF of the chi-squared distribution with k degrees of freedom.
[[nodiscard]] double chi_squared_cdf(double x, double k);

/// Inverse CDF (quantile) of the chi-squared distribution with k degrees of
/// freedom: smallest x with CDF(x) >= p. Wilson-Hilferty starting point
/// refined by bisection/Newton.
[[nodiscard]] double chi_squared_inverse_cdf(double p, double k);

/// Standard normal CDF.
[[nodiscard]] double normal_cdf(double x);

/// Inverse of the standard normal CDF (Acklam's rational approximation,
/// refined with one Halley step).
[[nodiscard]] double normal_inverse_cdf(double p);

}  // namespace stopwatch::stats
