// Small helpers to summarize measurement vectors in benches and tests.
#pragma once

#include <vector>

namespace stopwatch::stats {

struct Summary {
  std::size_t count{0};
  double mean{0.0};
  double stddev{0.0};
  double min{0.0};
  double p50{0.0};
  double p95{0.0};
  double p99{0.0};
  double max{0.0};
};

/// Computes a full summary of the sample vector; requires non-empty input.
[[nodiscard]] Summary summarize(const std::vector<double>& samples);

}  // namespace stopwatch::stats
