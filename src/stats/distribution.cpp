#include "stats/distribution.hpp"

#include <cmath>
#include <utility>

#include "common/contracts.hpp"

namespace stopwatch::stats {

Exponential::Exponential(double lambda) : lambda_(lambda) { SW_EXPECTS(lambda > 0.0); }

double Exponential::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return 1.0 - std::exp(-lambda_ * x);
}

double Exponential::sample(Rng& rng) const { return rng.exponential(lambda_); }

double Exponential::mean() const { return 1.0 / lambda_; }

Uniform::Uniform(double lo, double hi) : lo_(lo), hi_(hi) { SW_EXPECTS(lo < hi); }

double Uniform::cdf(double x) const {
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  return (x - lo_) / (hi_ - lo_);
}

double Uniform::sample(Rng& rng) const { return rng.uniform(lo_, hi_); }

double Uniform::mean() const { return 0.5 * (lo_ + hi_); }

Shifted::Shifted(std::shared_ptr<const Distribution> base, double shift)
    : base_(std::move(base)), shift_(shift) {
  SW_EXPECTS(base_ != nullptr);
}

double Shifted::cdf(double x) const { return base_->cdf(x - shift_); }

double Shifted::sample(Rng& rng) const { return base_->sample(rng) + shift_; }

double Shifted::mean() const { return base_->mean() + shift_; }

SumOfIndependent::SumOfIndependent(std::shared_ptr<const Distribution> x,
                                   std::shared_ptr<const Uniform> uniform_noise,
                                   int quadrature_points)
    : x_(std::move(x)),
      noise_(std::move(uniform_noise)),
      quadrature_points_(quadrature_points) {
  SW_EXPECTS(x_ != nullptr);
  SW_EXPECTS(noise_ != nullptr);
  SW_EXPECTS(quadrature_points_ >= 8);
  // Recover [lo, hi] of the uniform via its quantiles.
  noise_lo_ = invert_cdf([this](double v) { return noise_->cdf(v); }, 1e-12,
                         -1e12, 1e12);
  noise_hi_ = invert_cdf([this](double v) { return noise_->cdf(v); },
                         1.0 - 1e-12, -1e12, 1e12);
}

double SumOfIndependent::cdf(double s) const {
  // P(X + N <= s) = (1/(hi-lo)) ∫_{lo}^{hi} F_X(s - n) dn  (midpoint rule).
  const double width = noise_hi_ - noise_lo_;
  const double h = width / quadrature_points_;
  double acc = 0.0;
  for (int i = 0; i < quadrature_points_; ++i) {
    const double n = noise_lo_ + (i + 0.5) * h;
    acc += x_->cdf(s - n);
  }
  return acc / quadrature_points_;
}

double SumOfIndependent::sample(Rng& rng) const {
  return x_->sample(rng) + noise_->sample(rng);
}

double SumOfIndependent::mean() const { return x_->mean() + noise_->mean(); }

CdfDistribution::CdfDistribution(std::function<double(double)> cdf_fn,
                                 double support_lo, double support_hi)
    : cdf_fn_(std::move(cdf_fn)), lo_(support_lo), hi_(support_hi) {
  SW_EXPECTS(cdf_fn_ != nullptr);
  SW_EXPECTS(lo_ < hi_);
}

double CdfDistribution::cdf(double x) const { return cdf_fn_(x); }

double CdfDistribution::sample(Rng& rng) const {
  return invert_cdf(cdf_fn_, rng.uniform01(), lo_, hi_);
}

double CdfDistribution::mean() const {
  // Valid for variables supported on [lo_, hi_]:
  // E[X] = lo + ∫_{lo}^{hi} (1 - F(x)) dx.
  const int steps = 20000;
  const double h = (hi_ - lo_) / steps;
  double acc = 0.0;
  for (int i = 0; i < steps; ++i) {
    const double x = lo_ + (i + 0.5) * h;
    acc += (1.0 - cdf_fn_(x)) * h;
  }
  return lo_ + acc;
}

double mean_from_cdf(const std::function<double(double)>& cdf, double hi,
                     int steps) {
  SW_EXPECTS(hi > 0.0);
  SW_EXPECTS(steps > 0);
  const double h = hi / steps;
  double acc = 0.0;
  for (int i = 0; i < steps; ++i) {
    const double x = (i + 0.5) * h;
    acc += (1.0 - cdf(x)) * h;
  }
  return acc;
}

double invert_cdf(const std::function<double(double)>& cdf, double p,
                  double lo, double hi) {
  SW_EXPECTS(p >= 0.0 && p <= 1.0);
  SW_EXPECTS(lo < hi);
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (cdf(mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo <= 1e-13 * (1.0 + std::fabs(hi))) break;
  }
  return 0.5 * (lo + hi);
}

}  // namespace stopwatch::stats
