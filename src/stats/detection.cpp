#include "stats/detection.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/contracts.hpp"
#include "stats/special_functions.hpp"

namespace stopwatch::stats {

namespace {

/// Probability mass of `cdf` in each cell delimited by `edges`.
std::vector<double> cell_masses(const std::function<double(double)>& cdf,
                                const std::vector<double>& edges) {
  std::vector<double> masses;
  masses.reserve(edges.size() - 1);
  for (std::size_t i = 0; i + 1 < edges.size(); ++i) {
    masses.push_back(std::max(0.0, cdf(edges[i + 1]) - cdf(edges[i])));
  }
  return masses;
}

std::vector<double> make_edges(const std::function<double(double)>& null_cdf,
                               double lo, double hi, int bins,
                               Binning binning) {
  std::vector<double> edges;
  edges.reserve(static_cast<std::size_t>(bins) + 1);
  edges.push_back(lo);
  for (int i = 1; i < bins; ++i) {
    if (binning == Binning::kEqualWidth) {
      edges.push_back(lo + (hi - lo) * i / bins);
    } else {
      edges.push_back(invert_cdf(null_cdf, static_cast<double>(i) / bins, lo, hi));
    }
  }
  edges.push_back(hi);
  return edges;
}

}  // namespace

ChiSquaredDetector::ChiSquaredDetector(std::function<double(double)> null_cdf,
                                       std::function<double(double)> alt_cdf,
                                       double support_lo, double support_hi,
                                       int bins, Binning binning) {
  SW_EXPECTS(bins >= 2);
  SW_EXPECTS(support_lo < support_hi);
  bins_ = bins;
  const auto edges = make_edges(null_cdf, support_lo, support_hi, bins, binning);
  // Analytic CDFs: use a tiny floor that only guards true zero-mass cells.
  compute_noncentrality(cell_masses(null_cdf, edges),
                        cell_masses(alt_cdf, edges),
                        /*null_mass_floor=*/1e-9);
}

ChiSquaredDetector::ChiSquaredDetector(std::vector<double> null_probs,
                                       std::vector<double> alt_probs,
                                       double null_mass_floor) {
  bins_ = static_cast<int>(null_probs.size());
  compute_noncentrality(null_probs, alt_probs, null_mass_floor);
}

ChiSquaredDetector ChiSquaredDetector::from_samples(const Ecdf& null_samples,
                                                    const Ecdf& alt_samples,
                                                    int bins, Binning binning) {
  SW_EXPECTS(bins >= 2);
  const double lo = std::min(null_samples.min(), alt_samples.min());
  const double hi = std::max(null_samples.max(), alt_samples.max());
  const double pad = (hi - lo) * 1e-9 + 1e-12;

  auto null_cdf = [&null_samples](double x) { return null_samples.cdf(x); };
  const auto edges =
      make_edges(null_cdf, lo - pad, hi + pad, bins, binning);

  auto mass = [](const Ecdf& e, const std::vector<double>& eg) {
    std::vector<double> m;
    for (std::size_t i = 0; i + 1 < eg.size(); ++i)
      m.push_back(std::max(0.0, e.cdf(eg[i + 1]) - e.cdf(eg[i])));
    return m;
  };
  // Finite-sample floor: a cell the null sample never hit still gets mass
  // equivalent to half an observation.
  const double floor_p = 0.5 / static_cast<double>(null_samples.size());
  return ChiSquaredDetector(mass(null_samples, edges), mass(alt_samples, edges),
                            floor_p);
}

void ChiSquaredDetector::compute_noncentrality(
    const std::vector<double>& null_probs,
    const std::vector<double>& alt_probs, double null_mass_floor) {
  SW_EXPECTS(null_probs.size() == alt_probs.size());
  double lambda = 0.0;
  for (std::size_t i = 0; i < null_probs.size(); ++i) {
    const double p = std::max(null_probs[i], null_mass_floor);
    const double d = alt_probs[i] - null_probs[i];
    lambda += d * d / p;
  }
  noncentrality_ = lambda;
}

long ChiSquaredDetector::observations_needed(double confidence) const {
  SW_EXPECTS(confidence > 0.0 && confidence < 1.0);
  const double dof = bins_ - 1;
  const double crit = chi_squared_inverse_cdf(confidence, dof);
  if (noncentrality_ <= 0.0) return std::numeric_limits<long>::max();
  // Expected statistic after N draws from the alternative ~ (k-1) + N λ1.
  const double n = (crit - dof) / noncentrality_;
  if (n <= 1.0) return 1;
  // Near-degenerate channels (heavily quantized policies) can push λ1 to
  // denormal territory where ceil(n) no longer fits in long.
  if (n >= 9.2e18) return std::numeric_limits<long>::max();
  return static_cast<long>(std::ceil(n));
}

std::vector<DetectionResult> ChiSquaredDetector::sweep(
    const std::vector<double>& confidences) const {
  std::vector<DetectionResult> out;
  out.reserve(confidences.size());
  for (double c : confidences) {
    out.push_back(DetectionResult{c, observations_needed(c), noncentrality_});
  }
  return out;
}

std::vector<double> paper_confidence_grid() {
  return {0.70, 0.75, 0.80, 0.85, 0.90, 0.95, 0.99};
}

}  // namespace stopwatch::stats
