#include "common/rng.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace stopwatch {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

Rng Rng::fork(std::uint64_t stream_tag) const {
  // Mix the current state with the tag through splitmix to decorrelate.
  SplitMix64 sm(s_[0] ^ rotl(s_[2], 17) ^ (stream_tag * 0x9e3779b97f4a7c15ULL));
  return Rng(sm.next());
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() {
  // 53-bit mantissa for a uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  SW_EXPECTS(lo <= hi);
  return lo + (hi - lo) * uniform01();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  SW_EXPECTS(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % range);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::exponential(double lambda) {
  SW_EXPECTS(lambda > 0.0);
  double u = uniform01();
  while (u <= 0.0) u = uniform01();  // avoid log(0)
  return -std::log(u) / lambda;
}

double Rng::normal(double mean, double stddev) {
  SW_EXPECTS(stddev >= 0.0);
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = uniform01();
  while (u1 <= 0.0) u1 = uniform01();
  const double u2 = uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

bool Rng::chance(double p) {
  SW_EXPECTS(p >= 0.0 && p <= 1.0);
  return uniform01() < p;
}

}  // namespace stopwatch
