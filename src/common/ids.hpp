// Strong identifier types (Core Guidelines I.4): machine, VM, replica, and
// packet identities never mix silently.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>

namespace stopwatch {

namespace detail {
template <typename Tag>
struct Id {
  std::uint32_t value{0};
  constexpr auto operator<=>(const Id&) const = default;
};
}  // namespace detail

/// Identifies a physical machine (a node of K_n in the placement model).
using MachineId = detail::Id<struct MachineTag>;
/// Identifies a guest VM (all three replicas of a guest share its VmId).
using VmId = detail::Id<struct VmTag>;
/// Index of a replica within its triple: 0, 1, or 2 (or up to 4 when the
/// Sec. IX five-replica hardening is enabled).
using ReplicaIndex = detail::Id<struct ReplicaTag>;
/// Identifies an endpoint on the simulated network (VM, client, ingress...).
using NodeId = detail::Id<struct NodeTag>;

template <typename Tag>
std::ostream& operator<<(std::ostream& os, detail::Id<Tag> id) {
  return os << id.value;
}

}  // namespace stopwatch

namespace std {
template <typename Tag>
struct hash<stopwatch::detail::Id<Tag>> {
  size_t operator()(stopwatch::detail::Id<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};
}  // namespace std
