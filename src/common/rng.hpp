// Deterministic random number generation.
//
// Every stochastic element of the simulation (link jitter, host load noise,
// packet inter-arrival times) draws from an Rng seeded from the experiment
// configuration, so simulation runs are bit-reproducible — a requirement for
// both the replica-determinism property the paper relies on (Sec. VI) and
// for regression testing.
#pragma once

#include <cstdint>

namespace stopwatch {

/// splitmix64: used to expand a single user seed into stream seeds.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — fast, high-quality, reproducible PRNG with convenience
/// samplers for the distributions the simulator needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Derive an independent child stream (e.g., one per machine) so that
  /// adding noise consumers does not perturb unrelated streams.
  [[nodiscard]] Rng fork(std::uint64_t stream_tag) const;

  std::uint64_t next_u64();
  /// Uniform in [0, 1).
  double uniform01();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Exponential with rate lambda (mean 1/lambda).
  double exponential(double lambda);
  /// Standard normal via Box-Muller (cached second variate).
  double normal(double mean = 0.0, double stddev = 1.0);
  /// Lognormal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma);
  /// Bernoulli trial.
  bool chance(double p);

 private:
  std::uint64_t s_[4];
  double cached_normal_{0.0};
  bool has_cached_normal_{false};
};

}  // namespace stopwatch
