// Time types used throughout StopWatch.
//
// Two distinct clock domains exist in the system (paper Sec. IV):
//  - *real* (simulated wall-clock) time: what the physical hosts, links, and
//    external observers experience;
//  - *virtual* time: what a guest VM observes, a deterministic function of
//    its own progress, virt(instr) = slope * instr + start (Eqn. 1).
//
// Mixing the two domains is the classic source of timing-channel bugs, so
// they are distinct strong types (Core Guidelines I.4): RealTime and
// VirtTime cannot be compared or subtracted across domains.
#pragma once

#include <compare>
#include <cstdint>
#include <ostream>

namespace stopwatch {

/// A span of time in nanoseconds. Durations are domain-agnostic: a delta
/// such as the paper's Δn is specified in virtual time but derived from
/// real-time bounds, so conversions are explicit at the point of use.
struct Duration {
  std::int64_t ns{0};

  [[nodiscard]] static constexpr Duration nanos(std::int64_t v) { return {v}; }
  [[nodiscard]] static constexpr Duration micros(std::int64_t v) { return {v * 1'000}; }
  [[nodiscard]] static constexpr Duration millis(std::int64_t v) { return {v * 1'000'000}; }
  [[nodiscard]] static constexpr Duration seconds(std::int64_t v) { return {v * 1'000'000'000}; }
  [[nodiscard]] static constexpr Duration from_seconds_f(double s) {
    return {static_cast<std::int64_t>(s * 1e9)};
  }

  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ns) / 1e9; }
  [[nodiscard]] constexpr double to_millis() const { return static_cast<double>(ns) / 1e6; }

  constexpr auto operator<=>(const Duration&) const = default;
  constexpr Duration operator+(Duration o) const { return {ns + o.ns}; }
  constexpr Duration operator-(Duration o) const { return {ns - o.ns}; }
  constexpr Duration operator*(std::int64_t k) const { return {ns * k}; }
  constexpr Duration operator/(std::int64_t k) const { return {ns / k}; }
  constexpr Duration& operator+=(Duration o) { ns += o.ns; return *this; }
  constexpr Duration& operator-=(Duration o) { ns -= o.ns; return *this; }
};

namespace detail {

/// CRTP time-point over a tag type; points in different domains do not
/// interoperate.
template <typename Derived>
struct TimePointBase {
  std::int64_t ns{0};

  [[nodiscard]] static constexpr Derived nanos(std::int64_t v) { return Derived{v}; }
  [[nodiscard]] static constexpr Derived millis(std::int64_t v) { return Derived{v * 1'000'000}; }
  [[nodiscard]] static constexpr Derived seconds(std::int64_t v) { return Derived{v * 1'000'000'000}; }

  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ns) / 1e9; }
  [[nodiscard]] constexpr double to_millis() const { return static_cast<double>(ns) / 1e6; }

  constexpr auto operator<=>(const TimePointBase&) const = default;

  constexpr Derived operator+(Duration d) const { return Derived{ns + d.ns}; }
  constexpr Derived operator-(Duration d) const { return Derived{ns - d.ns}; }
  constexpr Duration operator-(const TimePointBase& o) const { return Duration{ns - o.ns}; }
  constexpr Derived& operator+=(Duration d) {
    ns += d.ns;
    return static_cast<Derived&>(*this);
  }
};

}  // namespace detail

/// Simulated wall-clock time as experienced by hosts and external observers.
struct RealTime : detail::TimePointBase<RealTime> {};

/// Guest-visible virtual time (paper Eqn. 1).
struct VirtTime : detail::TimePointBase<VirtTime> {};

inline std::ostream& operator<<(std::ostream& os, Duration d) {
  return os << d.ns << "ns";
}
inline std::ostream& operator<<(std::ostream& os, RealTime t) {
  return os << "R+" << t.ns << "ns";
}
inline std::ostream& operator<<(std::ostream& os, VirtTime t) {
  return os << "V+" << t.ns << "ns";
}

}  // namespace stopwatch
