// A small fixed-size thread pool for running independent tasks — the
// execution engine behind `stopwatch_bench --jobs N`. Tasks are opaque
// void() callables; anything task-specific (results, errors, timing) is
// captured by the callable itself, so the pool stays policy-free. The
// destructor drains the queue and joins, so a scope exit is a barrier.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace stopwatch {

class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1; pass `recommended_jobs(0)` for the
  /// hardware concurrency). Tasks submitted before destruction all run.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw — wrap the work and capture the
  /// exception into task-local state (the runner stores it per scenario).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing. The pool
  /// stays usable for further submissions afterwards.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t in_flight_{0};
  bool stopping_{false};
};

/// Maps a --jobs value to a worker count: 0 means "use the hardware
/// concurrency" (minimum 1 when the runtime reports 0), anything else is
/// taken literally.
[[nodiscard]] std::size_t recommended_jobs(std::size_t requested);

}  // namespace stopwatch
