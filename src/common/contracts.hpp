// Lightweight contract checking in the spirit of the C++ Core Guidelines'
// Expects()/Ensures() (I.5-I.8). Violations throw ContractViolation so tests
// can assert on them; they are never silently ignored.
#pragma once

#include <stdexcept>
#include <string>

namespace stopwatch {

/// Thrown when a precondition, postcondition, or invariant is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                          file + ":" + std::to_string(line));
}
[[noreturn]] inline void contract_fail_msg(const char* kind,
                                           const std::string& message,
                                           const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + message + " at " +
                          file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace stopwatch

/// Precondition check: argument/state requirements at function entry.
#define SW_EXPECTS(cond)                                                     \
  do {                                                                       \
    if (!(cond))                                                             \
      ::stopwatch::detail::contract_fail("Precondition", #cond, __FILE__,    \
                                         __LINE__);                          \
  } while (0)

/// Precondition check with a caller-supplied message (a std::string
/// expression), for boundary validation whose failure should explain itself
/// — e.g. "CloudConfig.replica_count must be odd (got 4)" instead of the
/// raw condition text.
#define SW_EXPECTS_MSG(cond, msg)                                            \
  do {                                                                       \
    if (!(cond))                                                             \
      ::stopwatch::detail::contract_fail_msg("Precondition", (msg),          \
                                             __FILE__, __LINE__);            \
  } while (0)

/// Postcondition check: result guarantees at function exit.
#define SW_ENSURES(cond)                                                     \
  do {                                                                       \
    if (!(cond))                                                             \
      ::stopwatch::detail::contract_fail("Postcondition", #cond, __FILE__,   \
                                         __LINE__);                          \
  } while (0)

/// Internal invariant check.
#define SW_ASSERT(cond)                                                      \
  do {                                                                       \
    if (!(cond))                                                             \
      ::stopwatch::detail::contract_fail("Invariant", #cond, __FILE__,       \
                                         __LINE__);                          \
  } while (0)
