#include "common/thread_pool.hpp"

#include <utility>

#include "common/contracts.hpp"

namespace stopwatch {

ThreadPool::ThreadPool(std::size_t threads) {
  SW_EXPECTS(threads >= 1);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  SW_EXPECTS(task != nullptr);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    SW_EXPECTS(!stopping_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      // Drain remaining tasks even when stopping: destruction after submit
      // must still run everything, so "stop" only means "no new work".
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

std::size_t recommended_jobs(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace stopwatch
