// Replica placement in the cloud (paper Sec. VIII).
//
// StopWatch requires the three replicas of each guest VM to coreside with
// nonoverlapping sets of (replicas of) other VMs. Modeling machines as the
// vertices of K_n and each VM's replica triple as a triangle, the constraint
// is that placed triangles be pairwise *edge-disjoint*.
//
//  * Theorem 1 (via Horsley): the maximum number of edge-disjoint triangles
//    in K_n — so a cloud of n machines can run Θ(n²) guest VMs.
//  * Theorem 2 (via Bose's Steiner-triple-system construction over an
//    idempotent commutative quasigroup): an efficient constructive placement
//    for n ≡ 3 (mod 6) under per-machine capacity c ≤ (n-1)/2, split into
//    the three residue classes of c mod 3.
//  * A greedy packer for arbitrary n (the "practical algorithm" for clouds
//    whose size is not ≡ 3 mod 6).
#pragma once

#include <cstdint>
#include <vector>

namespace stopwatch::placement {

/// A triangle of machine indices (one guest VM's replica placement).
struct Triangle {
  int a{0};
  int b{0};
  int c{0};
};

/// An idempotent commutative quasigroup of odd order q: the multiplication
/// a ∘ b = ((a + b) * (q+1)/2) mod q. Backbone of Bose's construction.
class Quasigroup {
 public:
  explicit Quasigroup(int order);

  [[nodiscard]] int order() const { return order_; }
  /// a ∘ b for a, b in [0, order).
  [[nodiscard]] int op(int a, int b) const;

 private:
  int order_;
  int half_;  // (q+1)/2 = multiplicative inverse of 2 mod q
};

/// Theorem 1: size of a maximum edge-disjoint triangle packing of K_n.
[[nodiscard]] long max_triangle_packing(int n);

/// Bose construction: a Steiner triple system on n = 6v + 3 points,
/// organized into the paper's triangle groups G_0 (the "spool" triples,
/// 2v+1 of them) and G_1..G_v (n triangles each). Every node appears exactly
/// once in G_0 and exactly three times in each G_t.
struct BoseSystem {
  int n{0};
  int v{0};
  std::vector<Triangle> g0;
  std::vector<std::vector<Triangle>> gt;  // gt[t-1] = G_t, 1 <= t <= v
};
[[nodiscard]] BoseSystem bose_construction(int n);

/// Memoized view of bose_construction(n), shared process-wide behind a
/// mutex (the parallel scenario runner calls theorem2_placement from many
/// worker threads at once). The returned reference is heap-backed and
/// never evicted, so it stays valid across later insertions; reading the
/// system concurrently is safe — it is immutable once built.
[[nodiscard]] const BoseSystem& bose_construction_cached(int n);

/// Drops every cached Bose system. Single-threaded contexts only (bench
/// cold-path isolation and tests); outstanding references die with it.
void bose_cache_clear();

/// Theorem 2: constructive capacity-constrained placement. Requires
/// n ≡ 3 (mod 6) and 1 <= c <= (n-1)/2. Returns edge-disjoint triangles
/// such that no machine appears in more than c of them, of the size the
/// theorem guarantees:
///   c ≡ 0 (mod 3):  (1/3)cn
///   c ≡ 1 (mod 3):  (1/3)cn
///   c ≡ 2 (mod 3):  (1/3)(c-1)n + (n-3)/6
[[nodiscard]] std::vector<Triangle> theorem2_placement(int n, int c);

/// Number of VMs Theorem 2 guarantees for (n, c).
[[nodiscard]] long theorem2_bound(int n, int c);

/// Greedy edge-disjoint triangle packing for arbitrary n >= 3 (practical
/// fallback; typically achieves a large fraction of the Theorem 1 bound).
/// Honors per-machine capacity c if c > 0 (0 = unbounded).
[[nodiscard]] std::vector<Triangle> greedy_packing(int n, int c = 0);

/// Validates the StopWatch constraints: triangles are pairwise
/// edge-disjoint, have three distinct vertices in [0, n), and no vertex
/// appears in more than c triangles (c <= 0 disables the capacity check).
[[nodiscard]] bool valid_placement(const std::vector<Triangle>& triangles,
                                   int n, int c = 0);

/// Per-machine occupancy (how many replicas each machine hosts).
[[nodiscard]] std::vector<int> occupancy(const std::vector<Triangle>& t, int n);

}  // namespace stopwatch::placement
