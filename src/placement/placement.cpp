#include "placement/placement.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <utility>

#include "common/contracts.hpp"
#include "obs/profiler.hpp"

namespace stopwatch::placement {

Quasigroup::Quasigroup(int order) : order_(order), half_((order + 1) / 2) {
  SW_EXPECTS(order >= 1);
  SW_EXPECTS(order % 2 == 1);
}

int Quasigroup::op(int a, int b) const {
  SW_EXPECTS(a >= 0 && a < order_);
  SW_EXPECTS(b >= 0 && b < order_);
  return static_cast<int>(
      (static_cast<long long>(a + b) * half_) % order_);
}

long max_triangle_packing(int n) {
  SW_EXPECTS(n >= 0);
  if (n < 3) return 0;
  const long long pairs = static_cast<long long>(n) * (n - 1) / 2;
  if (n % 2 == 1) {
    // Largest k with 3k <= C(n,2) and C(n,2) - 3k not in {1, 2}.
    long long k = pairs / 3;
    while (k > 0 && (pairs - 3 * k == 1 || pairs - 3 * k == 2)) --k;
    return static_cast<long>(k);
  }
  // n even: largest k with 3k <= C(n,2) - n/2.
  return static_cast<long>((pairs - n / 2) / 3);
}

BoseSystem bose_construction(int n) {
  SW_EXPECTS(n >= 3);
  SW_EXPECTS(n % 6 == 3);
  BoseSystem sys;
  sys.n = n;
  sys.v = (n - 3) / 6;
  const int q = 2 * sys.v + 1;  // quasigroup order
  const Quasigroup Q(q);

  // Node (a, l) -> index a + l * q, a in [0, q), l in {0, 1, 2}.
  const auto node = [q](int a, int l) { return a + l * q; };

  // G_0: the 2v+1 "spool" triples {(a,0), (a,1), (a,2)}.
  for (int a = 0; a < q; ++a) {
    sys.g0.push_back(Triangle{node(a, 0), node(a, 1), node(a, 2)});
  }

  // G_t, 1 <= t <= v: {(a_i, l), (a_j, l), (a_i ∘ a_j, l+1 mod 3)},
  // j = i + t mod q.
  for (int t = 1; t <= sys.v; ++t) {
    std::vector<Triangle> group;
    for (int i = 0; i < q; ++i) {
      const int j = (i + t) % q;
      for (int l = 0; l < 3; ++l) {
        group.push_back(
            Triangle{node(i, l), node(j, l), node(Q.op(i, j), (l + 1) % 3)});
      }
    }
    sys.gt.push_back(std::move(group));
  }
  return sys;
}

namespace {

// unique_ptr values keep each system's address stable across later map
// insertions, so references handed out under the lock stay valid after it
// is released. Guarded by a mutex rather than thread_local (cf. the
// chi-squared memo): a Bose system for n=201 is ~100 KB, and the parallel
// scenario runner would otherwise rebuild it once per worker thread.
struct BoseCache {
  std::mutex mutex;
  std::map<int, std::unique_ptr<BoseSystem>> by_n;
};

BoseCache& bose_cache() {
  static BoseCache cache;
  return cache;
}

}  // namespace

const BoseSystem& bose_construction_cached(int n) {
  BoseCache& cache = bose_cache();
  const std::lock_guard<std::mutex> lock(cache.mutex);
  auto it = cache.by_n.find(n);
  if (it == cache.by_n.end()) {
    it = cache.by_n
             .emplace(n, std::make_unique<BoseSystem>(bose_construction(n)))
             .first;
  }
  return *it->second;
}

void bose_cache_clear() {
  BoseCache& cache = bose_cache();
  const std::lock_guard<std::mutex> lock(cache.mutex);
  cache.by_n.clear();
}

long theorem2_bound(int n, int c) {
  SW_EXPECTS(n % 6 == 3);
  SW_EXPECTS(c >= 1 && c <= (n - 1) / 2);
  switch (c % 3) {
    case 0:
      return static_cast<long>(c) * n / 3;
    case 1:
      return static_cast<long>(c) * n / 3;
    default:  // c ≡ 2 (mod 3)
      return static_cast<long>(c - 1) * n / 3 + (n - 3) / 6;
  }
}

std::vector<Triangle> theorem2_placement(int n, int c) {
  OBS_PROF_SCOPE("placement.theorem2");
  SW_EXPECTS(n % 6 == 3);
  SW_EXPECTS(c >= 1 && c <= (n - 1) / 2);
  const BoseSystem& sys = bose_construction_cached(n);
  const int q = 2 * sys.v + 1;
  const Quasigroup Q(q);
  const auto node = [q](int a, int l) { return a + l * q; };

  std::vector<Triangle> placed;
  placed.reserve(static_cast<std::size_t>(theorem2_bound(n, c)));
  const auto take_groups = [&](int count) {
    for (int t = 1; t <= count; ++t) {
      const auto& g = sys.gt[static_cast<std::size_t>(t - 1)];
      placed.insert(placed.end(), g.begin(), g.end());
    }
  };

  if (c % 3 == 0) {
    // G_1 .. G_{c/3}: each visits every node exactly 3 times.
    take_groups(c / 3);
  } else if (c % 3 == 1) {
    // G_0 (1 visit) + G_1 .. G_{(c-1)/3}.
    placed.insert(placed.end(), sys.g0.begin(), sys.g0.end());
    take_groups((c - 1) / 3);
  } else {
    // G_0 + G_1 .. G_{(c-2)/3} + v triangles from G_v visiting each node
    // at most once: {(a_i, 0), (a_j, 0), (a_i ∘ a_j, 1)}, j = i + v.
    placed.insert(placed.end(), sys.g0.begin(), sys.g0.end());
    take_groups((c - 2) / 3);
    SW_ASSERT(sys.v >= 1);  // c ≡ 2 requires c >= 2, so (n-1)/2 >= 2, v >= 1
    // These must come from a group not already used; since
    // (c-2)/3 <= (n-7)/6 < v when c <= (n-1)/2 ... use G_v, which the
    // take_groups above touched only if (c-2)/3 == v, impossible:
    // c <= (n-1)/2 = 3v+1 gives (c-2)/3 <= v - 1/3 < v.
    for (int i = 0; i < sys.v; ++i) {
      const int j = i + sys.v;  // i + t mod q with t = v; i < v so no wrap
      placed.push_back(Triangle{node(i, 0), node(j, 0), node(Q.op(i, j), 1)});
    }
  }
  SW_ENSURES(static_cast<long>(placed.size()) == theorem2_bound(n, c));
  return placed;
}

std::vector<Triangle> greedy_packing(int n, int c) {
  SW_EXPECTS(n >= 0);
  std::vector<Triangle> placed;
  if (n < 3) return placed;

  // used[a][b]: edge {a,b} consumed.
  std::vector<std::vector<bool>> used(static_cast<std::size_t>(n),
                                      std::vector<bool>(static_cast<std::size_t>(n), false));
  std::vector<int> load(static_cast<std::size_t>(n), 0);
  const auto cap_ok = [&](int x) { return c <= 0 || load[static_cast<std::size_t>(x)] < c; };

  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      if (used[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)]) continue;
      if (!cap_ok(a) || !cap_ok(b)) continue;
      for (int d = b + 1; d < n; ++d) {
        if (used[static_cast<std::size_t>(a)][static_cast<std::size_t>(d)] ||
            used[static_cast<std::size_t>(b)][static_cast<std::size_t>(d)]) {
          continue;
        }
        if (!cap_ok(d)) continue;
        placed.push_back(Triangle{a, b, d});
        used[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] = true;
        used[static_cast<std::size_t>(a)][static_cast<std::size_t>(d)] = true;
        used[static_cast<std::size_t>(b)][static_cast<std::size_t>(d)] = true;
        ++load[static_cast<std::size_t>(a)];
        ++load[static_cast<std::size_t>(b)];
        ++load[static_cast<std::size_t>(d)];
        break;
      }
    }
  }
  return placed;
}

bool valid_placement(const std::vector<Triangle>& triangles, int n, int c) {
  std::set<std::pair<int, int>> edges;
  std::vector<int> load(static_cast<std::size_t>(n), 0);
  for (const Triangle& t : triangles) {
    const int vs[3] = {t.a, t.b, t.c};
    for (int v : vs) {
      if (v < 0 || v >= n) return false;
    }
    if (t.a == t.b || t.a == t.c || t.b == t.c) return false;
    const std::pair<int, int> es[3] = {
        {std::min(t.a, t.b), std::max(t.a, t.b)},
        {std::min(t.a, t.c), std::max(t.a, t.c)},
        {std::min(t.b, t.c), std::max(t.b, t.c)},
    };
    for (const auto& e : es) {
      if (!edges.insert(e).second) return false;  // edge reused
    }
    for (int v : vs) {
      if (++load[static_cast<std::size_t>(v)] > c && c > 0) return false;
    }
  }
  return true;
}

std::vector<int> occupancy(const std::vector<Triangle>& t, int n) {
  std::vector<int> load(static_cast<std::size_t>(n), 0);
  for (const Triangle& tri : t) {
    ++load[static_cast<std::size_t>(tri.a)];
    ++load[static_cast<std::size_t>(tri.b)];
    ++load[static_cast<std::size_t>(tri.c)];
  }
  return load;
}

}  // namespace stopwatch::placement
