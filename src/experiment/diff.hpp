// Bench-trajectory diff: compares two stopwatch-bench/1 reports (a baseline
// from main and a candidate from the PR) metric by metric, and gates CI on
// wall-clock regressions. Only ns-class metrics (unit "ns" or "ns/...") are
// gated — they are the perf trajectory; deterministic simulation metrics
// change only when behavior changes, so their deltas are reported as signal
// but never fail the build. Implements the stopwatch_bench_diff binary; kept
// in the library so tests can exercise the exact gate CI uses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace stopwatch::experiment {

/// One metric of one scenario as read from a stopwatch-bench/1 report.
struct BenchMetric {
  std::string name;
  double value{0.0};
  std::string unit;
};

/// One scenario's result as read from a stopwatch-bench/1 report. Only the
/// fields the diff consumes are retained.
struct BenchResult {
  std::string scenario;
  std::uint64_t seed{0};
  std::vector<BenchMetric> metrics;
};

/// A parsed stopwatch-bench/1 report.
struct BenchReport {
  std::string schema;
  std::vector<BenchResult> results;
};

/// Parses a report produced by `stopwatch_bench --json`. Returns false with
/// a message on `error` for malformed JSON or a schema tag other than
/// stopwatch-bench/1.
[[nodiscard]] bool parse_bench_report(const std::string& json,
                                      BenchReport& report, std::string& error);

/// The comparison of one metric present in both reports.
struct MetricDelta {
  std::string scenario;
  std::string metric;
  std::string unit;
  double baseline{0.0};
  double candidate{0.0};
  /// (candidate - baseline) / baseline; +inf when baseline is 0 and the
  /// candidate is not.
  double delta_fraction{0.0};
  /// True for ns-class metrics — the ones the threshold applies to.
  bool gated{false};
  /// gated && delta_fraction > threshold.
  bool regression{false};
};

struct DiffOptions {
  /// Maximum tolerated fractional increase of a gated metric (0.10 = +10%).
  double threshold{0.10};
};

/// The full baseline-vs-candidate comparison. Missing/new entries (metrics
/// or whole scenarios present on only one side) are reported but never
/// fatal: adding a scenario or renaming a metric must not require a
/// baseline reset to land.
struct DiffReport {
  std::vector<MetricDelta> deltas;
  /// "scenario.metric" present in the baseline only.
  std::vector<std::string> missing_in_candidate;
  /// "scenario.metric" present in the candidate only.
  std::vector<std::string> new_in_candidate;
  std::size_t regressions{0};

  [[nodiscard]] bool passed() const { return regressions == 0; }
};

[[nodiscard]] DiffReport diff_reports(const BenchReport& baseline,
                                      const BenchReport& candidate,
                                      const DiffOptions& options);

/// Human-readable per-metric delta table (gated metrics always; ungated
/// metrics only when they changed) plus the missing/new lists and verdict.
[[nodiscard]] std::string render_diff_table(const DiffReport& report,
                                            const DiffOptions& options);

/// Same content as GitHub-flavored markdown, for $GITHUB_STEP_SUMMARY.
[[nodiscard]] std::string render_diff_markdown(const DiffReport& report,
                                               const DiffOptions& options);

/// Runs the stopwatch_bench_diff CLI:
///   stopwatch_bench_diff <baseline.json> <candidate.json>
///       [--threshold <frac>] [--markdown <path>] [--quiet]
/// Exit codes: 0 = no gated regression, 1 = regression beyond threshold,
/// 2 = usage / IO / parse error.
int run_diff_cli(int argc, const char* const* argv);

}  // namespace stopwatch::experiment
