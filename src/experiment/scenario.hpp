// A Scenario is one self-contained experiment: a name, a description, a
// numeric parameter schema, and a run function mapping a ScenarioContext
// (seed + smoke flag + parameter overrides) to a Result. Scenarios
// self-register with the ScenarioRegistry at static-initialization time;
// the stopwatch_bench runner and the determinism tests drive them through
// the registry, never through bespoke mains.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "experiment/result.hpp"

namespace stopwatch::experiment {

/// One numeric knob a scenario exposes (all StopWatch experiment knobs —
/// durations, rates, counts — are representable as doubles).
struct ParamSpec {
  ParamSpec(std::string name, std::string description, double default_value)
      : ParamSpec(std::move(name), std::move(description), default_value,
                  default_value) {}
  /// `smoke_value` is substituted in --smoke mode — the short deterministic
  /// CI configuration of the knob.
  ParamSpec(std::string name, std::string description, double default_value,
            double smoke_value)
      : name(std::move(name)),
        description(std::move(description)),
        default_value(default_value),
        smoke_value(smoke_value) {}

  /// Returns a copy restricted to [lo, hi]. Out-of-range CLI overrides are
  /// rejected before the scenario runs; a count knob without bounds lets
  /// `--param rate_count=0` index an empty vector.
  [[nodiscard]] ParamSpec with_range(double lo, double hi) const;
  /// with_range plus an integrality requirement, for count/iteration knobs
  /// read through param_int: fractional overrides are rejected up front.
  [[nodiscard]] ParamSpec with_int_range(double lo, double hi) const;

  std::string name;
  std::string description;
  double default_value;
  double smoke_value;
  double min_value = -std::numeric_limits<double>::infinity();
  double max_value = std::numeric_limits<double>::infinity();
  bool integral = false;
};

/// The resolved inputs of one scenario run.
class ScenarioContext {
 public:
  ScenarioContext(std::uint64_t seed, bool smoke,
                  std::map<std::string, double> overrides,
                  const std::vector<ParamSpec>& schema);

  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] bool smoke() const { return smoke_; }

  /// The effective value of a declared parameter: the CLI override if given,
  /// else the schema's smoke/default value. Fails the contract for names
  /// not in the schema — scenarios must declare their knobs.
  [[nodiscard]] double param(const std::string& name) const;
  [[nodiscard]] int param_int(const std::string& name) const;

  /// All effective parameter values in schema order (for Result stamping).
  [[nodiscard]] std::vector<std::pair<std::string, double>> resolved() const;

 private:
  std::uint64_t seed_;
  bool smoke_;
  std::map<std::string, double> values_;
  std::vector<std::string> order_;
};

/// A registered experiment.
struct Scenario {
  std::string name;
  std::string description;
  std::vector<ParamSpec> params;
  /// Whether two runs with the same context must produce byte-identical
  /// JSON. False only for scenarios measuring wall-clock time.
  bool deterministic{true};
  std::function<Result(const ScenarioContext&)> run;
};

}  // namespace stopwatch::experiment
