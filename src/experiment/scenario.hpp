// A Scenario is one self-contained experiment: a name, a description, a
// parameter schema, and a run function mapping a ScenarioContext (seed +
// smoke flag + parameter overrides) to a Result. Scenarios self-register
// with the ScenarioRegistry at static-initialization time; the
// stopwatch_bench runner and the determinism tests drive them through the
// registry, never through bespoke mains.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "experiment/result.hpp"

namespace stopwatch::experiment {

/// One knob a scenario exposes. Two kinds exist: numeric (durations, rates,
/// counts — representable as doubles) and enumerated (a string validated
/// against a declared choice list, e.g. an aggregation rule).
struct ParamSpec {
  enum class Kind { kNumeric, kEnum };

  ParamSpec(std::string name, std::string description, double default_value)
      : ParamSpec(std::move(name), std::move(description), default_value,
                  default_value) {}
  /// `smoke_value` is substituted in --smoke mode — the short deterministic
  /// CI configuration of the knob.
  ParamSpec(std::string name, std::string description, double default_value,
            double smoke_value)
      : name(std::move(name)),
        description(std::move(description)),
        default_value(default_value),
        smoke_value(smoke_value) {}

  /// Declares an enumerated parameter: overrides must be one of `choices`
  /// (which must contain `default_choice`). Smoke runs use the default.
  [[nodiscard]] static ParamSpec enumeration(std::string name,
                                             std::string description,
                                             std::string default_choice,
                                             std::vector<std::string> choices);

  /// Returns a copy restricted to [lo, hi]. Out-of-range CLI overrides are
  /// rejected before the scenario runs; a count knob without bounds lets
  /// `--param rate_count=0` index an empty vector.
  [[nodiscard]] ParamSpec with_range(double lo, double hi) const;
  /// with_range plus an integrality requirement, for count/iteration knobs
  /// read through param_int: fractional overrides are rejected up front.
  [[nodiscard]] ParamSpec with_int_range(double lo, double hi) const;

  /// "median|min|max" — for catalogs and error messages.
  [[nodiscard]] std::string choices_joined() const;

  std::string name;
  std::string description;
  Kind kind{Kind::kNumeric};
  // Numeric knobs.
  double default_value{0.0};
  double smoke_value{0.0};
  double min_value = -std::numeric_limits<double>::infinity();
  double max_value = std::numeric_limits<double>::infinity();
  bool integral = false;
  // Enumerated knobs.
  std::string default_choice;
  std::vector<std::string> choices;

 private:
  ParamSpec() = default;
};

/// Raw parameter overrides as they arrive from the CLI or a caller: values
/// stay text until the schema says whether they are numbers or choices.
using ParamOverrides = std::map<std::string, std::string>;

/// The resolved inputs of one scenario run.
class ScenarioContext {
 public:
  ScenarioContext(std::uint64_t seed, bool smoke, ParamOverrides overrides,
                  const std::vector<ParamSpec>& schema);

  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] bool smoke() const { return smoke_; }

  /// The effective value of a declared numeric parameter: the override if
  /// given, else the schema's smoke/default value. Fails the contract for
  /// names not in the schema — scenarios must declare their knobs — and
  /// for enumerated parameters (use param_choice).
  [[nodiscard]] double param(const std::string& name) const;
  [[nodiscard]] int param_int(const std::string& name) const;
  /// The effective choice of a declared enumerated parameter.
  [[nodiscard]] const std::string& param_choice(const std::string& name) const;

  /// All effective parameter values in schema order, pre-encoded as JSON
  /// values (numbers or strings) for Result stamping.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> resolved()
      const;

 private:
  std::uint64_t seed_;
  bool smoke_;
  std::map<std::string, double> values_;
  std::map<std::string, std::string> choices_;
  std::vector<std::string> order_;
};

/// A registered experiment.
struct Scenario {
  std::string name;
  std::string description;
  std::vector<ParamSpec> params;
  /// Whether two runs with the same context must produce byte-identical
  /// JSON. False only for scenarios measuring wall-clock time.
  bool deterministic{true};
  std::function<Result(const ScenarioContext&)> run;
};

}  // namespace stopwatch::experiment
