// Command-line driver for the scenario registry — the implementation of the
// stopwatch_bench binary. Kept in the library so tests can exercise the
// exact CLI surface CI uses.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "experiment/result.hpp"
#include "experiment/scenario.hpp"

namespace stopwatch::experiment {

/// Parsed stopwatch_bench command line.
struct RunnerOptions {
  bool list{false};
  bool smoke{false};
  bool run_all{false};
  bool quiet{false};
  std::uint64_t seed{1};
  /// Worker threads for scenario execution: 1 = sequential (default),
  /// 0 = one per hardware thread.
  std::uint64_t jobs{1};
  std::vector<std::string> scenarios;
  /// Raw --param key=value pairs in command-line order; values stay text
  /// until each scenario's schema says whether they are numbers or enum
  /// choices.
  std::vector<std::pair<std::string, std::string>> param_overrides;
  std::string json_path;
  /// Chrome/Perfetto trace-event JSON output path. The trace session is
  /// process-wide, so multi-scenario selections require --jobs 1 and emit
  /// one suffixed file per scenario (<stem>.<scenario>.<ext>).
  std::string trace_path;
  /// Self-profile output path (wall-clock phase attribution + RSS, JSON;
  /// collapsed stacks land at <path>.stacks). Same composition rule as
  /// --trace: multi-scenario selections require --jobs 1 and write
  /// per-scenario suffixed files.
  std::string profile_path;
  /// Include shard-execution-machinery tracks (barrier windows, per-core
  /// kernel counters) in the trace. These are inherently shard-dependent,
  /// so the default export omits them to keep traces byte-identical
  /// across sim_shards.
  bool trace_parallel{false};
  /// Print each result's observability counters/histograms as a table.
  bool metrics{false};
};

/// Parses argv into options. Returns false (with a message on `error`) on
/// malformed input.
[[nodiscard]] bool parse_runner_options(int argc, const char* const* argv,
                                        RunnerOptions& options,
                                        std::string& error);

/// The per-scenario output file a multi-scenario --trace/--profile run
/// writes: ".<scenario>" inserted before the path's final extension
/// ("out.json" -> "out.fig6_nfs.json"; extensionless paths just append).
[[nodiscard]] std::string per_scenario_path(const std::string& path,
                                            const std::string& scenario);

/// One scenario's execution outcome within a runner invocation. A throwing
/// scenario is captured here instead of aborting its siblings.
struct ScenarioOutcome {
  std::string name;
  bool ok{false};
  /// exception::what() (or a placeholder for non-std exceptions) when !ok.
  std::string error;
  /// Valid only when ok.
  Result result;
  double elapsed_s{0.0};
};

/// Invoked once per scenario, in selection order, from the calling thread.
using OutcomeCallback =
    std::function<void(const ScenarioOutcome&, std::size_t index)>;

/// Executes `selected` on `jobs` workers (1 = in the calling thread, 0 = one
/// per hardware thread). Each scenario runs in per-task isolation: its own
/// derived RNG stream (see derive_scenario_seed), its own Result sink, and
/// its own exception capture. `overrides` is filtered per scenario to the
/// parameters it declares. Outcomes are returned — and `on_complete` fires —
/// in selection order regardless of completion order, so reports are
/// byte-identical across --jobs values.
[[nodiscard]] std::vector<ScenarioOutcome> run_scenarios(
    const std::vector<const Scenario*>& selected,
    const ParamOverrides& overrides, std::uint64_t seed, bool smoke,
    std::uint64_t jobs, const OutcomeCallback& on_complete = {});

/// Runs the experiment CLI: --list / --scenario <name> / --all / --seed N /
/// --smoke / --jobs N / --param k=v / --json <path>. Returns a process exit
/// code.
int run_cli(int argc, const char* const* argv);

}  // namespace stopwatch::experiment
