// Command-line driver for the scenario registry — the implementation of the
// stopwatch_bench binary. Kept in the library so tests can exercise the
// exact CLI surface CI uses.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace stopwatch::experiment {

/// Parsed stopwatch_bench command line.
struct RunnerOptions {
  bool list{false};
  bool smoke{false};
  bool run_all{false};
  bool quiet{false};
  std::uint64_t seed{1};
  std::vector<std::string> scenarios;
  std::vector<std::pair<std::string, double>> param_overrides;
  std::string json_path;
};

/// Parses argv into options. Returns false (with a message on `error`) on
/// malformed input.
[[nodiscard]] bool parse_runner_options(int argc, const char* const* argv,
                                        RunnerOptions& options,
                                        std::string& error);

/// Runs the experiment CLI: --list / --scenario <name> / --all / --seed N /
/// --smoke / --param k=v / --json <path>. Returns a process exit code.
int run_cli(int argc, const char* const* argv);

}  // namespace stopwatch::experiment
