// Minimal deterministic JSON emission and reading for experiment results.
// Numbers use the shortest round-trip representation (std::to_chars), so
// the same Result always serializes to the same bytes — the property the
// determinism tests and CI bench-smoke artifacts rely on. The reader is
// the consumer half: stopwatch_bench_diff loads stopwatch-bench/1 reports
// through JsonValue to compare bench trajectories in CI.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace stopwatch::experiment {

/// Escapes `s` for use inside a JSON string literal (no surrounding quotes).
[[nodiscard]] std::string json_escape(const std::string& s);

/// `s` as a quoted JSON string.
[[nodiscard]] std::string json_string(const std::string& s);

/// Shortest round-trip decimal form of `v`; non-finite values map to null
/// (JSON has no NaN/Inf).
[[nodiscard]] std::string json_number(double v);

[[nodiscard]] std::string json_number(std::uint64_t v);

/// Parses `s` as a double, requiring the whole string to be consumed (no
/// trailing garbage, no leading whitespace). The one numeric-override
/// parser shared by the CLI pre-validation and the ScenarioContext
/// contract check, so both accept exactly the same strings.
[[nodiscard]] bool parse_double_strict(std::string_view s, double& out);

/// A parsed JSON document node. Objects preserve member order and allow
/// duplicate-free lookup by key; accessors contract-check the kind, so a
/// schema mismatch surfaces as a ContractViolation instead of garbage.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses `text` (a complete JSON document; trailing garbage is an
  /// error). Returns false with a position-annotated message on `error`.
  [[nodiscard]] static bool parse(std::string_view text, JsonValue& out,
                                  std::string& error);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }

  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& items() const;
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& members()
      const;

  /// Object member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

 private:
  friend class JsonParser;

  Kind kind_{Kind::kNull};
  bool bool_{false};
  double number_{0.0};
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace stopwatch::experiment
