// Minimal deterministic JSON emission for experiment results. Numbers use
// the shortest round-trip representation (std::to_chars), so the same
// Result always serializes to the same bytes — the property the
// determinism tests and CI bench-smoke artifacts rely on.
#pragma once

#include <cstdint>
#include <string>

namespace stopwatch::experiment {

/// Escapes `s` for use inside a JSON string literal (no surrounding quotes).
[[nodiscard]] std::string json_escape(const std::string& s);

/// `s` as a quoted JSON string.
[[nodiscard]] std::string json_string(const std::string& s);

/// Shortest round-trip decimal form of `v`; non-finite values map to null
/// (JSON has no NaN/Inf).
[[nodiscard]] std::string json_number(double v);

[[nodiscard]] std::string json_number(std::uint64_t v);

}  // namespace stopwatch::experiment
