// Process-wide scenario catalog. Scenario translation units self-register
// via ScenarioRegistrar at static-initialization time; lookup and listing
// are name-sorted so registration (link) order never leaks into output.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "experiment/result.hpp"
#include "experiment/scenario.hpp"

namespace stopwatch::experiment {

class ScenarioRegistry {
 public:
  /// The process-wide registry (Meyers singleton, safe during static init).
  static ScenarioRegistry& instance();

  /// Registers a scenario; the name must be unique and the run fn non-null.
  void add(Scenario scenario);

  /// Looks up a scenario by name; nullptr if unknown.
  [[nodiscard]] const Scenario* find(const std::string& name) const;

  /// All scenarios, sorted by name.
  [[nodiscard]] std::vector<const Scenario*> list() const;

  [[nodiscard]] std::size_t size() const { return scenarios_.size(); }

  /// Runs a registered scenario and stamps the Result with the invocation
  /// context. The single entry point used by the runner and by tests. The
  /// scenario's RNG stream is seeded with derive_scenario_seed(seed, name),
  /// so sibling scenarios of one invocation draw decorrelated streams and a
  /// scenario's output depends only on (seed, name, params) — never on
  /// which other scenarios ran, or on what thread ran it. The Result is
  /// stamped with the invocation `seed`, the value a user re-runs with.
  [[nodiscard]] Result run(const std::string& name, std::uint64_t seed,
                           bool smoke, ParamOverrides overrides = {}) const;

 private:
  std::map<std::string, Scenario> scenarios_;
};

/// Expands one user-facing seed into the per-scenario stream seed: an
/// FNV-1a hash of `name` mixed with `seed` through splitmix64. Stable
/// across platforms and runs — part of the stopwatch-bench/1 contract.
[[nodiscard]] std::uint64_t derive_scenario_seed(std::uint64_t seed,
                                                 const std::string& name);

/// Static-object helper: `static ScenarioRegistrar reg{{...}};` at namespace
/// scope in a scenario .cpp registers the scenario before main() runs.
struct ScenarioRegistrar {
  explicit ScenarioRegistrar(Scenario scenario);
};

}  // namespace stopwatch::experiment
