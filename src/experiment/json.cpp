#include "experiment/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <utility>

#include "common/contracts.hpp"

namespace stopwatch::experiment {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_string(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  out += json_escape(s);
  out += '"';
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) return "null";
  return std::string(buf, end);
}

std::string json_number(std::uint64_t v) {
  char buf[24];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) return "0";
  return std::string(buf, end);
}

bool parse_double_strict(std::string_view s, double& out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

bool JsonValue::as_bool() const {
  SW_EXPECTS(kind_ == Kind::kBool);
  return bool_;
}

double JsonValue::as_number() const {
  SW_EXPECTS(kind_ == Kind::kNumber);
  return number_;
}

const std::string& JsonValue::as_string() const {
  SW_EXPECTS(kind_ == Kind::kString);
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  SW_EXPECTS(kind_ == Kind::kArray);
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  SW_EXPECTS(kind_ == Kind::kObject);
  return members_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

/// Recursive-descent parser over the full document. Depth-limited so a
/// hostile or corrupted report cannot overflow the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool run(JsonValue& out, std::string& error) {
    if (!parse_value(out, 0)) {
      error = error_ + " at offset " + std::to_string(pos_);
      return false;
    }
    skip_whitespace();
    if (pos_ != text_.size()) {
      error = "trailing characters at offset " + std::to_string(pos_);
      return false;
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool fail(std::string message) {
    error_ = std::move(message);
    return false;
  }

  bool consume(char expected) {
    if (pos_ >= text_.size() || text_[pos_] != expected) {
      return fail(std::string("expected '") + expected + "'");
    }
    ++pos_;
    return true;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return fail("invalid literal");
    }
    pos_ += literal.size();
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_whitespace();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return parse_object(out, depth);
      case '[':
        return parse_array(out, depth);
      case '"':
        out.kind_ = JsonValue::Kind::kString;
        return parse_string(out.string_);
      case 't':
        out.kind_ = JsonValue::Kind::kBool;
        out.bool_ = true;
        return consume_literal("true");
      case 'f':
        out.kind_ = JsonValue::Kind::kBool;
        out.bool_ = false;
        return consume_literal("false");
      case 'n':
        out.kind_ = JsonValue::Kind::kNull;
        return consume_literal("null");
      default:
        return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    out.kind_ = JsonValue::Kind::kObject;
    if (!consume('{')) return false;
    skip_whitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_whitespace();
      std::string key;
      if (!parse_string(key)) return false;
      skip_whitespace();
      if (!consume(':')) return false;
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.members_.emplace_back(std::move(key), std::move(value));
      skip_whitespace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return consume('}');
    }
  }

  bool parse_array(JsonValue& out, int depth) {
    out.kind_ = JsonValue::Kind::kArray;
    if (!consume('[')) return false;
    skip_whitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.items_.push_back(std::move(value));
      skip_whitespace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return consume(']');
    }
  }

  bool parse_hex4(std::uint32_t& out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return fail("invalid \\u escape");
      }
    }
    pos_ += 4;
    return true;
  }

  static void append_utf8(std::uint32_t cp, std::string& out) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xc0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xe0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else {
      out += static_cast<char>(0xf0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    }
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return fail("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!parse_hex4(cp)) return false;
          if (cp >= 0xd800 && cp <= 0xdbff) {
            // High surrogate: must be followed by \uDC00-\uDFFF.
            if (text_.substr(pos_, 2) != "\\u") {
              return fail("unpaired surrogate");
            }
            pos_ += 2;
            std::uint32_t low = 0;
            if (!parse_hex4(low)) return false;
            if (low < 0xdc00 || low > 0xdfff) {
              return fail("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xd800) << 10) + (low - 0xdc00);
          } else if (cp >= 0xdc00 && cp <= 0xdfff) {
            return fail("unpaired surrogate");
          }
          append_utf8(cp, out);
          break;
        }
        default:
          return fail("invalid escape character");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    out.kind_ = JsonValue::Kind::kNumber;
    const auto [ptr, ec] = std::from_chars(
        text_.data() + pos_, text_.data() + text_.size(), out.number_);
    if (ec != std::errc{} || ptr == text_.data() + pos_) {
      return fail("invalid number");
    }
    pos_ = static_cast<std::size_t>(ptr - text_.data());
    return true;
  }

  std::string_view text_;
  std::size_t pos_{0};
  std::string error_;
};

bool JsonValue::parse(std::string_view text, JsonValue& out,
                      std::string& error) {
  out = JsonValue();
  JsonParser parser(text);
  return parser.run(out, error);
}

}  // namespace stopwatch::experiment
