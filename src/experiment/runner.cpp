#include "experiment/runner.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <exception>
#include <fstream>
#include <map>
#include <mutex>
#include <string_view>

#include "common/thread_pool.hpp"
#include "experiment/json.hpp"
#include "experiment/registry.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"

namespace stopwatch::experiment {

namespace {

constexpr std::string_view kUsage =
    "usage: stopwatch_bench [options]\n"
    "  --list               list registered scenarios and their parameters\n"
    "  --scenario <name>    run one scenario (repeatable)\n"
    "  --all                run every registered scenario\n"
    "  --smoke              short deterministic runs (implies --all unless\n"
    "                       --scenario is given)\n"
    "  --seed <n>           base RNG seed (default 1)\n"
    "  --jobs <n>           run scenarios on <n> worker threads (default 1;\n"
    "                       0 = one per hardware thread); results stay in\n"
    "                       deterministic registry order\n"
    "  --param <k=v>        override a scenario parameter (applies to each\n"
    "                       selected scenario that declares <k>)\n"
    "  --json <path>        write results as JSON to <path>\n"
    "  --trace <path>       record a sim-time trace as Chrome/Perfetto\n"
    "                       trace-event JSON; multi-scenario selections\n"
    "                       require --jobs 1 and write one file per\n"
    "                       scenario (<stem>.<scenario>.<ext>)\n"
    "  --trace-parallel     include shard-machinery tracks (barrier windows,\n"
    "                       per-core kernel counters) in the trace; these\n"
    "                       vary with sim_shards, unlike the default export\n"
    "  --profile <path>     write a wall-clock self-profile (per-phase\n"
    "                       attribution, RSS) as JSON, plus flamegraph\n"
    "                       collapsed stacks at <path>.stacks; same\n"
    "                       multi-scenario rule as --trace\n"
    "  --metrics            print each result's observability counters and\n"
    "                       histograms (scenarios that embed them)\n"
    "  --quiet              suppress per-metric human-readable output\n";

bool parse_u64(std::string_view s, std::uint64_t& out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

void print_catalog() {
  const auto scenarios = ScenarioRegistry::instance().list();
  std::printf("%zu registered scenarios:\n\n", scenarios.size());
  for (const Scenario* s : scenarios) {
    std::printf("%-24s %s%s\n", s->name.c_str(), s->description.c_str(),
                s->deterministic ? "" : "  [non-deterministic]");
    for (const ParamSpec& p : s->params) {
      if (p.kind == ParamSpec::Kind::kEnum) {
        std::printf("    --param %s=<%s>  %s (default %s)\n", p.name.c_str(),
                    p.choices_joined().c_str(), p.description.c_str(),
                    p.default_choice.c_str());
      } else {
        std::printf("    --param %s=<v>  %s (default %g, smoke %g)\n",
                    p.name.c_str(), p.description.c_str(), p.default_value,
                    p.smoke_value);
      }
    }
  }
}

void print_result(const Result& result) {
  std::printf("--- %s (seed %llu) ---\n", result.scenario().c_str(),
              static_cast<unsigned long long>(result.seed()));
  for (const Metric& m : result.metrics()) {
    std::printf("  %-36s %14g %s\n", m.name.c_str(), m.value, m.unit.c_str());
  }
  for (const Series& s : result.series()) {
    std::printf("  %-36s %11zu pts %s\n", s.name.c_str(), s.values.size(),
                s.unit.c_str());
  }
  if (!result.note().empty()) {
    std::printf("  note: %s\n", result.note().c_str());
  }
}

void print_observability(const Result& result) {
  const obs::Snapshot& snap = result.observability();
  if (snap.empty()) {
    std::printf("  (no observability block: scenario does not embed one)\n");
    return;
  }
  std::printf("  observability counters:\n");
  for (const auto& [name, value] : snap.counters) {
    std::printf("    %-36s %20llu\n", name.c_str(),
                static_cast<unsigned long long>(value));
  }
  for (const auto& [name, h] : snap.histograms) {
    std::printf("    %-36s count=%llu sum=%llu max=%llu\n", name.c_str(),
                static_cast<unsigned long long>(h.count),
                static_cast<unsigned long long>(h.sum),
                static_cast<unsigned long long>(h.max));
  }
}

/// The per-task body: runs one scenario into its own outcome slot,
/// translating every escape (contract violations, scenario bugs, non-std
/// exceptions) into a captured per-scenario error so siblings keep running.
void run_one_scenario(const Scenario& scenario, const ParamOverrides& overrides,
                      std::uint64_t seed, bool smoke, ScenarioOutcome& out) {
  out.name = scenario.name;
  ParamOverrides scenario_overrides;
  for (const auto& [param, value] : overrides) {
    const bool declared =
        std::any_of(scenario.params.begin(), scenario.params.end(),
                    [&](const ParamSpec& p) { return p.name == param; });
    if (declared) scenario_overrides[param] = value;
  }
  const auto t0 = std::chrono::steady_clock::now();
  try {
    out.result = ScenarioRegistry::instance().run(
        scenario.name, seed, smoke, std::move(scenario_overrides));
    out.ok = true;
  } catch (const std::exception& e) {
    out.error = e.what();
  } catch (...) {
    out.error = "unknown non-standard exception";
  }
  out.elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
}

}  // namespace

std::string per_scenario_path(const std::string& path,
                              const std::string& scenario) {
  const std::size_t slash = path.find_last_of('/');
  const std::size_t dot = path.find_last_of('.');
  const bool dot_in_name =
      dot != std::string::npos &&
      (slash == std::string::npos || dot > slash);
  if (!dot_in_name) return path + "." + scenario;
  return path.substr(0, dot) + "." + scenario + path.substr(dot);
}

std::vector<ScenarioOutcome> run_scenarios(
    const std::vector<const Scenario*>& selected,
    const ParamOverrides& overrides, std::uint64_t seed, bool smoke,
    std::uint64_t jobs, const OutcomeCallback& on_complete) {
  std::vector<ScenarioOutcome> outcomes(selected.size());
  const std::size_t workers = std::min<std::size_t>(
      recommended_jobs(static_cast<std::size_t>(jobs)),
      std::max<std::size_t>(1, selected.size()));

  if (workers <= 1) {
    for (std::size_t i = 0; i < selected.size(); ++i) {
      run_one_scenario(*selected[i], overrides, seed, smoke, outcomes[i]);
      if (on_complete) on_complete(outcomes[i], i);
    }
    return outcomes;
  }

  std::mutex mutex;
  std::condition_variable completed;
  std::vector<char> done(selected.size(), 0);
  {
    ThreadPool pool(workers);
    for (std::size_t i = 0; i < selected.size(); ++i) {
      pool.submit([&, i] {
        run_one_scenario(*selected[i], overrides, seed, smoke, outcomes[i]);
        {
          const std::lock_guard<std::mutex> lock(mutex);
          done[i] = 1;
        }
        completed.notify_all();
      });
    }
    // Publish outcomes progressively but strictly in selection order: the
    // callback (and therefore stdout and the JSON report) never observes
    // completion order, which is what keeps --jobs N byte-identical to
    // --jobs 1.
    for (std::size_t i = 0; i < selected.size(); ++i) {
      std::unique_lock<std::mutex> lock(mutex);
      completed.wait(lock, [&] { return done[i] != 0; });
      lock.unlock();
      if (on_complete) on_complete(outcomes[i], i);
    }
  }
  return outcomes;
}

bool parse_runner_options(int argc, const char* const* argv,
                          RunnerOptions& options, std::string& error) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto next_value = [&](std::string_view flag,
                                std::string_view& out) -> bool {
      if (i + 1 >= argc) {
        error = std::string(flag) + " requires a value";
        return false;
      }
      out = argv[++i];
      return true;
    };

    if (arg == "--list") {
      options.list = true;
    } else if (arg == "--smoke") {
      options.smoke = true;
    } else if (arg == "--all") {
      options.run_all = true;
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else if (arg == "--scenario") {
      std::string_view v;
      if (!next_value(arg, v)) return false;
      options.scenarios.emplace_back(v);
    } else if (arg == "--seed") {
      std::string_view v;
      if (!next_value(arg, v)) return false;
      if (!parse_u64(v, options.seed)) {
        error = "--seed expects an unsigned integer, got '" + std::string(v) +
                "'";
        return false;
      }
    } else if (arg == "--jobs") {
      std::string_view v;
      if (!next_value(arg, v)) return false;
      // parse_u64 rejects signs, so `--jobs -1` fails here rather than
      // wrapping to a huge thread count via an atoi-style fallback.
      if (!parse_u64(v, options.jobs)) {
        error = "--jobs expects a non-negative integer (0 = one per "
                "hardware thread), got '" +
                std::string(v) + "'";
        return false;
      }
    } else if (arg == "--json") {
      std::string_view v;
      if (!next_value(arg, v)) return false;
      options.json_path = std::string(v);
    } else if (arg == "--trace") {
      std::string_view v;
      if (!next_value(arg, v)) return false;
      options.trace_path = std::string(v);
    } else if (arg == "--trace-parallel") {
      options.trace_parallel = true;
    } else if (arg == "--profile") {
      std::string_view v;
      if (!next_value(arg, v)) return false;
      options.profile_path = std::string(v);
    } else if (arg == "--metrics") {
      options.metrics = true;
    } else if (arg == "--param") {
      std::string_view v;
      if (!next_value(arg, v)) return false;
      const std::size_t eq = v.find('=');
      // Values stay text here: whether "median" or "2.5" is valid depends
      // on the declaring scenario's schema, checked after selection.
      if (eq == std::string_view::npos || eq == 0 || eq + 1 == v.size()) {
        error = "--param expects <name>=<value>, got '" + std::string(v) + "'";
        return false;
      }
      options.param_overrides.emplace_back(std::string(v.substr(0, eq)),
                                           std::string(v.substr(eq + 1)));
    } else {
      error = "unknown argument '" + std::string(arg) + "'";
      return false;
    }
  }
  return true;
}

int run_cli(int argc, const char* const* argv) {
  RunnerOptions options;
  std::string error;
  if (!parse_runner_options(argc, argv, options, error)) {
    std::fprintf(stderr, "error: %s\n%s", error.c_str(),
                 std::string(kUsage).c_str());
    return 2;
  }

  const ScenarioRegistry& registry = ScenarioRegistry::instance();
  if (options.list) {
    print_catalog();
    return 0;
  }

  std::vector<std::string> selection = options.scenarios;
  if (selection.empty() && (options.run_all || options.smoke)) {
    for (const Scenario* s : registry.list()) selection.push_back(s->name);
  }
  if (selection.empty()) {
    std::fprintf(stderr, "%s", std::string(kUsage).c_str());
    return 2;
  }

  std::vector<const Scenario*> selected;
  selected.reserve(selection.size());
  for (const std::string& name : selection) {
    const Scenario* scenario = registry.find(name);
    if (scenario == nullptr) {
      std::fprintf(stderr, "error: unknown scenario '%s'; --list shows %zu\n",
                   name.c_str(), registry.size());
      return 2;
    }
    selected.push_back(scenario);
  }

  // Last occurrence wins for repeated --param keys, matching the usual CLI
  // convention for appended overrides (the map range constructor would keep
  // an unspecified one).
  ParamOverrides overrides;
  for (const auto& [param, value] : options.param_overrides) {
    overrides[param] = value;
  }

  // An override must be declared by at least one selected scenario and be
  // valid for every selected scenario that declares it; the rest simply
  // don't receive it, so --param composes with --all/--smoke sweeps.
  for (const auto& [param, text] : overrides) {
    bool declared = false;
    for (const Scenario* scenario : selected) {
      const auto spec =
          std::find_if(scenario->params.begin(), scenario->params.end(),
                       [&](const ParamSpec& p) { return p.name == param; });
      if (spec == scenario->params.end()) continue;
      declared = true;
      if (spec->kind == ParamSpec::Kind::kEnum) {
        if (std::find(spec->choices.begin(), spec->choices.end(), text) ==
            spec->choices.end()) {
          std::fprintf(stderr,
                       "error: --param %s=%s must be one of %s for "
                       "scenario '%s'\n",
                       param.c_str(), text.c_str(),
                       spec->choices_joined().c_str(),
                       scenario->name.c_str());
          return 2;
        }
        continue;
      }
      double value = 0.0;
      if (!parse_double_strict(text, value)) {
        std::fprintf(stderr,
                     "error: --param %s expects a number for scenario "
                     "'%s', got '%s'\n",
                     param.c_str(), scenario->name.c_str(), text.c_str());
        return 2;
      }
      if (value < spec->min_value || value > spec->max_value) {
        std::fprintf(stderr,
                     "error: --param %s=%g is out of range [%g, %g] for "
                     "scenario '%s'\n",
                     param.c_str(), value, spec->min_value, spec->max_value,
                     scenario->name.c_str());
        return 2;
      }
      if (spec->integral && std::nearbyint(value) != value) {
        std::fprintf(stderr,
                     "error: --param %s=%g must be a whole number for "
                     "scenario '%s'\n",
                     param.c_str(), value, scenario->name.c_str());
        return 2;
      }
    }
    if (!declared) {
      std::fprintf(stderr,
                   "error: no selected scenario declares parameter '%s' "
                   "(--list shows schemas)\n",
                   param.c_str());
      return 2;
    }
  }

  // Open the report file before running anything: discovering an unwritable
  // path after a full-length scenario sweep would waste the whole run.
  std::ofstream json_out;
  if (!options.json_path.empty()) {
    json_out.open(options.json_path, std::ios::binary);
    if (!json_out) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   options.json_path.c_str());
      return 2;
    }
  }

  if (options.trace_parallel && options.trace_path.empty()) {
    std::fprintf(stderr, "error: --trace-parallel requires --trace <path>\n");
    return 2;
  }
  // The trace and profile sessions are process-wide recorders the
  // scenario's cloud (respectively the instrumented phases) capture
  // directly, so concurrent scenarios would interleave into one recording.
  // Sequential multi-scenario runs compose instead: export + reset between
  // scenarios, one suffixed file each. Anything else is a named error —
  // never a silent drop.
  const bool tracing = !options.trace_path.empty();
  const bool profiling = !options.profile_path.empty();
  const bool multi = selected.size() > 1;
  if ((tracing || profiling) && multi && options.jobs != 1) {
    std::fprintf(stderr,
                 "error: --trace/--profile with %zu scenarios requires "
                 "--jobs 1 (sequential runs write per-scenario files "
                 "<stem>.<scenario>.<ext>)\n",
                 selected.size());
    return 2;
  }
  obs::TraceRecorder trace;
  if (tracing) {
    obs::set_active_trace(&trace);
    trace.arm();
  }
  obs::Profiler profiler;
  if (profiling) {
    obs::set_active_profiler(&profiler);
    profiler.arm();
  }

  bool side_output_failed = false;
  const auto write_side_file = [&](const std::string& path,
                                   const std::string& body, const char* what,
                                   std::size_t count) {
    std::ofstream out(path, std::ios::binary);
    if (out) out << body;
    out.close();
    if (!out) {
      std::fprintf(stderr, "error: failed writing '%s'\n", path.c_str());
      side_output_failed = true;
      return;
    }
    std::printf("wrote %zu %s to %s\n", count, what, path.c_str());
  };

  const OutcomeCallback print_outcome = [&](const ScenarioOutcome& outcome,
                                            std::size_t) {
    if (!outcome.ok) {
      std::fprintf(stderr, "error: scenario '%s' failed: %s\n",
                   outcome.name.c_str(), outcome.error.c_str());
    } else if (!options.quiet) {
      print_result(outcome.result);
      if (options.metrics) print_observability(outcome.result);
      std::printf("  [%.2fs wall]\n\n", outcome.elapsed_s);
    } else {
      std::printf("%-24s done in %.2fs\n", outcome.name.c_str(),
                  outcome.elapsed_s);
      if (options.metrics) print_observability(outcome.result);
    }
    // Sequential composition: this callback runs between scenarios (and,
    // single-scenario, once at the end), so exporting + resetting here
    // scopes each output file to exactly one scenario run.
    if (tracing) {
      trace.disarm();
      const std::string path =
          multi ? per_scenario_path(options.trace_path, outcome.name)
                : options.trace_path;
      write_side_file(path, trace.export_json(options.trace_parallel),
                      "trace event(s)", trace.event_count());
      trace.clear();
      trace.arm();
    }
    if (profiling) {
      profiler.disarm();
      const obs::ProfilerSnapshot snap = profiler.snapshot();
      // Boundary samples: the scenario's own wall clock plus the process
      // RSS right after it finished. Nondeterministic by nature, which is
      // why they live here and never in the deterministic report.
      const auto wall_ns =
          static_cast<std::uint64_t>(outcome.elapsed_s * 1e9);
      const std::string path =
          multi ? per_scenario_path(options.profile_path, outcome.name)
                : options.profile_path;
      write_side_file(path,
                      obs::profile_to_json(snap, wall_ns,
                                           obs::process_rss_bytes(),
                                           obs::process_rss_peak_bytes()),
                      "profiled phase(s)", obs::kProfPhaseCount);
      write_side_file(path + ".stacks", obs::collapsed_stacks(snap),
                      "stack line(s)", snap.paths.size());
      profiler.clear();
      profiler.arm();
    }
  };
  const std::vector<ScenarioOutcome> outcomes =
      run_scenarios(selected, overrides, options.seed, options.smoke,
                    options.jobs, print_outcome);

  if (tracing) {
    trace.disarm();
    obs::set_active_trace(nullptr);
  }
  if (profiling) {
    profiler.disarm();
    obs::set_active_profiler(nullptr);
  }

  std::vector<Result> results;
  results.reserve(outcomes.size());
  std::size_t failures = 0;
  for (const ScenarioOutcome& outcome : outcomes) {
    if (outcome.ok) {
      results.push_back(outcome.result);
    } else {
      ++failures;
    }
  }
  if (failures > 0) {
    std::fprintf(stderr, "error: %zu of %zu scenario(s) failed\n", failures,
                 outcomes.size());
  }

  if (json_out.is_open()) {
    json_out << report_to_json(results);
    json_out.close();
    if (!json_out) {
      std::fprintf(stderr, "error: failed writing '%s'\n",
                   options.json_path.c_str());
      return 1;
    }
    std::printf("wrote %zu result(s) to %s\n", results.size(),
                options.json_path.c_str());
  }
  return failures > 0 || side_output_failed ? 1 : 0;
}

}  // namespace stopwatch::experiment
