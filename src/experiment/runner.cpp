#include "experiment/runner.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <exception>
#include <fstream>
#include <map>
#include <string_view>

#include "experiment/registry.hpp"

namespace stopwatch::experiment {

namespace {

constexpr std::string_view kUsage =
    "usage: stopwatch_bench [options]\n"
    "  --list               list registered scenarios and their parameters\n"
    "  --scenario <name>    run one scenario (repeatable)\n"
    "  --all                run every registered scenario\n"
    "  --smoke              short deterministic runs (implies --all unless\n"
    "                       --scenario is given)\n"
    "  --seed <n>           base RNG seed (default 1)\n"
    "  --param <k=v>        override a scenario parameter (applies to each\n"
    "                       selected scenario that declares <k>)\n"
    "  --json <path>        write results as JSON to <path>\n"
    "  --quiet              suppress per-metric human-readable output\n";

bool parse_u64(std::string_view s, std::uint64_t& out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

bool parse_double(std::string_view s, double& out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

void print_catalog() {
  const auto scenarios = ScenarioRegistry::instance().list();
  std::printf("%zu registered scenarios:\n\n", scenarios.size());
  for (const Scenario* s : scenarios) {
    std::printf("%-24s %s%s\n", s->name.c_str(), s->description.c_str(),
                s->deterministic ? "" : "  [non-deterministic]");
    for (const ParamSpec& p : s->params) {
      std::printf("    --param %s=<v>  %s (default %g, smoke %g)\n",
                  p.name.c_str(), p.description.c_str(), p.default_value,
                  p.smoke_value);
    }
  }
}

void print_result(const Result& result) {
  std::printf("--- %s (seed %llu) ---\n", result.scenario().c_str(),
              static_cast<unsigned long long>(result.seed()));
  for (const Metric& m : result.metrics()) {
    std::printf("  %-36s %14g %s\n", m.name.c_str(), m.value, m.unit.c_str());
  }
  for (const Series& s : result.series()) {
    std::printf("  %-36s %11zu pts %s\n", s.name.c_str(), s.values.size(),
                s.unit.c_str());
  }
  if (!result.note().empty()) {
    std::printf("  note: %s\n", result.note().c_str());
  }
}

}  // namespace

bool parse_runner_options(int argc, const char* const* argv,
                          RunnerOptions& options, std::string& error) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto next_value = [&](std::string_view flag,
                                std::string_view& out) -> bool {
      if (i + 1 >= argc) {
        error = std::string(flag) + " requires a value";
        return false;
      }
      out = argv[++i];
      return true;
    };

    if (arg == "--list") {
      options.list = true;
    } else if (arg == "--smoke") {
      options.smoke = true;
    } else if (arg == "--all") {
      options.run_all = true;
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else if (arg == "--scenario") {
      std::string_view v;
      if (!next_value(arg, v)) return false;
      options.scenarios.emplace_back(v);
    } else if (arg == "--seed") {
      std::string_view v;
      if (!next_value(arg, v)) return false;
      if (!parse_u64(v, options.seed)) {
        error = "--seed expects an unsigned integer, got '" + std::string(v) +
                "'";
        return false;
      }
    } else if (arg == "--json") {
      std::string_view v;
      if (!next_value(arg, v)) return false;
      options.json_path = std::string(v);
    } else if (arg == "--param") {
      std::string_view v;
      if (!next_value(arg, v)) return false;
      const std::size_t eq = v.find('=');
      double value = 0.0;
      if (eq == std::string_view::npos || eq == 0 ||
          !parse_double(v.substr(eq + 1), value)) {
        error = "--param expects <name>=<number>, got '" + std::string(v) + "'";
        return false;
      }
      options.param_overrides.emplace_back(std::string(v.substr(0, eq)), value);
    } else {
      error = "unknown argument '" + std::string(arg) + "'";
      return false;
    }
  }
  return true;
}

int run_cli(int argc, const char* const* argv) {
  RunnerOptions options;
  std::string error;
  if (!parse_runner_options(argc, argv, options, error)) {
    std::fprintf(stderr, "error: %s\n%s", error.c_str(),
                 std::string(kUsage).c_str());
    return 2;
  }

  const ScenarioRegistry& registry = ScenarioRegistry::instance();
  if (options.list) {
    print_catalog();
    return 0;
  }

  std::vector<std::string> selection = options.scenarios;
  if (selection.empty() && (options.run_all || options.smoke)) {
    for (const Scenario* s : registry.list()) selection.push_back(s->name);
  }
  if (selection.empty()) {
    std::fprintf(stderr, "%s", std::string(kUsage).c_str());
    return 2;
  }

  std::vector<const Scenario*> selected;
  selected.reserve(selection.size());
  for (const std::string& name : selection) {
    const Scenario* scenario = registry.find(name);
    if (scenario == nullptr) {
      std::fprintf(stderr, "error: unknown scenario '%s'; --list shows %zu\n",
                   name.c_str(), registry.size());
      return 2;
    }
    selected.push_back(scenario);
  }

  // Last occurrence wins for repeated --param keys, matching the usual CLI
  // convention for appended overrides (the map range constructor would keep
  // an unspecified one).
  std::map<std::string, double> overrides;
  for (const auto& [param, value] : options.param_overrides) {
    overrides[param] = value;
  }

  // An override must be declared by at least one selected scenario and be
  // valid for every selected scenario that declares it; the rest simply
  // don't receive it, so --param composes with --all/--smoke sweeps.
  for (const auto& [param, value] : overrides) {
    bool declared = false;
    for (const Scenario* scenario : selected) {
      const auto spec =
          std::find_if(scenario->params.begin(), scenario->params.end(),
                       [&](const ParamSpec& p) { return p.name == param; });
      if (spec == scenario->params.end()) continue;
      declared = true;
      if (value < spec->min_value || value > spec->max_value) {
        std::fprintf(stderr,
                     "error: --param %s=%g is out of range [%g, %g] for "
                     "scenario '%s'\n",
                     param.c_str(), value, spec->min_value, spec->max_value,
                     scenario->name.c_str());
        return 2;
      }
      if (spec->integral && std::nearbyint(value) != value) {
        std::fprintf(stderr,
                     "error: --param %s=%g must be a whole number for "
                     "scenario '%s'\n",
                     param.c_str(), value, scenario->name.c_str());
        return 2;
      }
    }
    if (!declared) {
      std::fprintf(stderr,
                   "error: no selected scenario declares parameter '%s' "
                   "(--list shows schemas)\n",
                   param.c_str());
      return 2;
    }
  }

  // Open the report file before running anything: discovering an unwritable
  // path after a full-length scenario sweep would waste the whole run.
  std::ofstream json_out;
  if (!options.json_path.empty()) {
    json_out.open(options.json_path, std::ios::binary);
    if (!json_out) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   options.json_path.c_str());
      return 2;
    }
  }

  std::vector<Result> results;
  results.reserve(selected.size());
  for (const Scenario* scenario : selected) {
    std::map<std::string, double> scenario_overrides;
    for (const auto& [param, value] : overrides) {
      const bool declared =
          std::any_of(scenario->params.begin(), scenario->params.end(),
                      [&](const ParamSpec& p) { return p.name == param; });
      if (declared) scenario_overrides[param] = value;
    }
    const auto t0 = std::chrono::steady_clock::now();
    try {
      results.push_back(registry.run(scenario->name, options.seed,
                                     options.smoke, scenario_overrides));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: scenario '%s' failed: %s\n",
                   scenario->name.c_str(), e.what());
      return 1;
    }
    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (!options.quiet) {
      print_result(results.back());
      std::printf("  [%.2fs wall]\n\n", elapsed_s);
    } else {
      std::printf("%-24s done in %.2fs\n", scenario->name.c_str(), elapsed_s);
    }
  }

  if (json_out.is_open()) {
    json_out << report_to_json(results);
    json_out.close();
    if (!json_out) {
      std::fprintf(stderr, "error: failed writing '%s'\n",
                   options.json_path.c_str());
      return 1;
    }
    std::printf("wrote %zu result(s) to %s\n", results.size(),
                options.json_path.c_str());
  }
  return 0;
}

}  // namespace stopwatch::experiment
