#include "experiment/diff.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string_view>

#include "experiment/json.hpp"

namespace stopwatch::experiment {

namespace {

constexpr std::string_view kDiffUsage =
    "usage: stopwatch_bench_diff <baseline.json> <candidate.json> [options]\n"
    "  --threshold <frac>   max fractional ns-metric regression tolerated\n"
    "                       before failing (default 0.10 = +10%)\n"
    "  --markdown <path>    also write a GitHub-flavored markdown summary\n"
    "                       (suitable for $GITHUB_STEP_SUMMARY)\n"
    "  --quiet              print only the verdict line\n";

/// The gate applies to wall-clock trajectory metrics only: unit "ns" or any
/// "ns/..." rate. Substring matching would be wrong ("observations"
/// contains "ns").
bool is_gated_unit(const std::string& unit) {
  return unit == "ns" || unit.rfind("ns/", 0) == 0;
}

std::string format_value(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string format_delta(double fraction) {
  if (!std::isfinite(fraction)) return fraction < 0.0 ? "-inf" : "+inf";
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%+.2f%%", fraction * 100.0);
  return buf;
}

/// Rows worth showing: every gated metric (the trajectory), plus any
/// ungated metric whose value moved (behavior change signal).
bool is_visible(const MetricDelta& d) {
  return d.gated || d.baseline != d.candidate;
}

const BenchMetric* find_metric(const BenchResult& result,
                               const std::string& name) {
  const auto it =
      std::find_if(result.metrics.begin(), result.metrics.end(),
                   [&](const BenchMetric& m) { return m.name == name; });
  return it == result.metrics.end() ? nullptr : &*it;
}

const BenchResult* find_result(const BenchReport& report,
                               const std::string& scenario) {
  const auto it = std::find_if(
      report.results.begin(), report.results.end(),
      [&](const BenchResult& r) { return r.scenario == scenario; });
  return it == report.results.end() ? nullptr : &*it;
}

}  // namespace

bool parse_bench_report(const std::string& json, BenchReport& report,
                        std::string& error) {
  report = BenchReport();
  JsonValue root;
  if (!JsonValue::parse(json, root, error)) return false;
  if (!root.is_object()) {
    error = "report root is not an object";
    return false;
  }
  const JsonValue* schema = root.find("schema");
  if (schema == nullptr || !schema->is_string()) {
    error = "report has no \"schema\" string";
    return false;
  }
  report.schema = schema->as_string();
  if (report.schema != "stopwatch-bench/1") {
    error = "unsupported schema '" + report.schema +
            "' (expected stopwatch-bench/1)";
    return false;
  }
  const JsonValue* results = root.find("results");
  if (results == nullptr || !results->is_array()) {
    error = "report has no \"results\" array";
    return false;
  }
  for (const JsonValue& entry : results->items()) {
    const JsonValue* scenario = entry.find("scenario");
    const JsonValue* metrics = entry.find("metrics");
    if (scenario == nullptr || !scenario->is_string() || metrics == nullptr ||
        !metrics->is_array()) {
      error = "result entry missing \"scenario\" string or \"metrics\" array";
      return false;
    }
    BenchResult result;
    result.scenario = scenario->as_string();
    if (const JsonValue* seed = entry.find("seed");
        seed != nullptr && seed->is_number()) {
      result.seed = static_cast<std::uint64_t>(seed->as_number());
    }
    for (const JsonValue& metric : metrics->items()) {
      const JsonValue* name = metric.find("name");
      const JsonValue* value = metric.find("value");
      const JsonValue* unit = metric.find("unit");
      if (name == nullptr || !name->is_string() || value == nullptr ||
          unit == nullptr || !unit->is_string()) {
        error = "metric entry of '" + result.scenario +
                "' missing name/value/unit";
        return false;
      }
      // A non-finite metric serializes as null; keep it as NaN so deltas
      // against it are reported (as non-finite) rather than dropped.
      const double v = value->is_number()
                           ? value->as_number()
                           : std::numeric_limits<double>::quiet_NaN();
      result.metrics.push_back({name->as_string(), v, unit->as_string()});
    }
    report.results.push_back(std::move(result));
  }
  return true;
}

DiffReport diff_reports(const BenchReport& baseline,
                        const BenchReport& candidate,
                        const DiffOptions& options) {
  DiffReport out;
  for (const BenchResult& base_result : baseline.results) {
    const BenchResult* cand_result =
        find_result(candidate, base_result.scenario);
    if (cand_result == nullptr) {
      for (const BenchMetric& m : base_result.metrics) {
        out.missing_in_candidate.push_back(base_result.scenario + "." + m.name);
      }
      continue;
    }
    for (const BenchMetric& base_metric : base_result.metrics) {
      const BenchMetric* cand_metric =
          find_metric(*cand_result, base_metric.name);
      if (cand_metric == nullptr) {
        out.missing_in_candidate.push_back(base_result.scenario + "." +
                                           base_metric.name);
        continue;
      }
      if (cand_metric->unit != base_metric.unit) {
        // A unit change makes the raw values incomparable; treat it like a
        // rename (missing + new) so it is visible but never requires a
        // baseline reset.
        out.missing_in_candidate.push_back(base_result.scenario + "." +
                                           base_metric.name + " [" +
                                           base_metric.unit + "]");
        out.new_in_candidate.push_back(base_result.scenario + "." +
                                       cand_metric->name + " [" +
                                       cand_metric->unit + "]");
        continue;
      }
      MetricDelta delta;
      delta.scenario = base_result.scenario;
      delta.metric = base_metric.name;
      delta.unit = cand_metric->unit;
      delta.baseline = base_metric.value;
      delta.candidate = cand_metric->value;
      if (base_metric.value == cand_metric->value ||
          (std::isnan(base_metric.value) && std::isnan(cand_metric->value))) {
        // Two null (non-finite) readings are "unchanged", not a regression:
        // NaN != NaN would otherwise gate them forever.
        delta.delta_fraction = 0.0;
      } else if (std::isnan(base_metric.value)) {
        // null -> measurable is a recovery; it must pass the gate.
        delta.delta_fraction = -std::numeric_limits<double>::infinity();
      } else if (std::isnan(cand_metric->value)) {
        // measurable -> null loses the trajectory; fail the gate.
        delta.delta_fraction = std::numeric_limits<double>::infinity();
      } else if (base_metric.value != 0.0) {
        delta.delta_fraction =
            (cand_metric->value - base_metric.value) / base_metric.value;
      } else {
        delta.delta_fraction = std::numeric_limits<double>::infinity();
      }
      delta.gated = is_gated_unit(cand_metric->unit);
      delta.regression =
          delta.gated && !(delta.delta_fraction <= options.threshold);
      if (delta.regression) ++out.regressions;
      out.deltas.push_back(std::move(delta));
    }
    for (const BenchMetric& cand_metric : cand_result->metrics) {
      if (find_metric(base_result, cand_metric.name) == nullptr) {
        out.new_in_candidate.push_back(base_result.scenario + "." +
                                       cand_metric.name);
      }
    }
  }
  for (const BenchResult& cand_result : candidate.results) {
    if (find_result(baseline, cand_result.scenario) == nullptr) {
      for (const BenchMetric& m : cand_result.metrics) {
        out.new_in_candidate.push_back(cand_result.scenario + "." + m.name);
      }
    }
  }
  return out;
}

std::string render_diff_table(const DiffReport& report,
                              const DiffOptions& options) {
  std::ostringstream out;
  out << "metric deltas (gate: ns-class metrics, threshold +"
      << format_value(options.threshold * 100.0) << "%)\n";
  std::size_t shown = 0;
  for (const MetricDelta& d : report.deltas) {
    if (!is_visible(d)) continue;
    ++shown;
    char line[256];
    std::snprintf(line, sizeof(line), "  %-52s %12s -> %12s  %9s %s%s\n",
                  (d.scenario + "." + d.metric).c_str(),
                  format_value(d.baseline).c_str(),
                  format_value(d.candidate).c_str(),
                  format_delta(d.delta_fraction).c_str(),
                  d.gated ? "[gated]" : "", d.regression ? " REGRESSION" : "");
    out << line;
  }
  if (shown == 0) out << "  (no gated or changed metrics)\n";
  for (const std::string& name : report.missing_in_candidate) {
    out << "  missing in candidate: " << name << "\n";
  }
  for (const std::string& name : report.new_in_candidate) {
    out << "  new in candidate:     " << name << "\n";
  }
  out << (report.passed() ? "PASS" : "FAIL") << ": " << report.regressions
      << " gated regression(s)\n";
  return out.str();
}

std::string render_diff_markdown(const DiffReport& report,
                                 const DiffOptions& options) {
  std::ostringstream out;
  out << "### Bench diff — "
      << (report.passed() ? ":white_check_mark: pass" : ":x: fail") << " ("
      << report.regressions << " gated regression(s), threshold +"
      << format_value(options.threshold * 100.0) << "%)\n\n";
  out << "| metric | baseline | candidate | delta | gate |\n";
  out << "|---|---:|---:|---:|---|\n";
  std::size_t shown = 0;
  for (const MetricDelta& d : report.deltas) {
    if (!is_visible(d)) continue;
    ++shown;
    out << "| `" << d.scenario << "." << d.metric << "` | "
        << format_value(d.baseline) << " | " << format_value(d.candidate)
        << " | " << format_delta(d.delta_fraction) << " | "
        << (d.regression ? "**regression**" : (d.gated ? "gated" : "—"))
        << " |\n";
  }
  if (shown == 0) out << "| _no gated or changed metrics_ | | | | |\n";
  if (!report.missing_in_candidate.empty() ||
      !report.new_in_candidate.empty()) {
    out << "\n";
    for (const std::string& name : report.missing_in_candidate) {
      out << "- missing in candidate: `" << name << "`\n";
    }
    for (const std::string& name : report.new_in_candidate) {
      out << "- new in candidate: `" << name << "`\n";
    }
  }
  return out.str();
}

namespace {

bool read_file(const std::string& path, std::string& out, std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = "cannot read '" + path + "'";
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

}  // namespace

int run_diff_cli(int argc, const char* const* argv) {
  std::vector<std::string> paths;
  DiffOptions options;
  std::string markdown_path;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto next_value = [&](std::string_view flag,
                                std::string_view& out) -> bool {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s requires a value\n%s",
                     std::string(flag).c_str(),
                     std::string(kDiffUsage).c_str());
        return false;
      }
      out = argv[++i];
      return true;
    };
    if (arg == "--threshold") {
      std::string_view v;
      if (!next_value(arg, v)) return 2;
      const auto [ptr, ec] =
          std::from_chars(v.data(), v.data() + v.size(), options.threshold);
      if (ec != std::errc{} || ptr != v.data() + v.size() ||
          !(options.threshold >= 0.0)) {
        std::fprintf(stderr,
                     "error: --threshold expects a non-negative fraction, "
                     "got '%s'\n",
                     std::string(v).c_str());
        return 2;
      }
    } else if (arg == "--markdown") {
      std::string_view v;
      if (!next_value(arg, v)) return 2;
      markdown_path = std::string(v);
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg.front() == '-') {
      std::fprintf(stderr, "error: unknown argument '%s'\n%s",
                   std::string(arg).c_str(), std::string(kDiffUsage).c_str());
      return 2;
    } else {
      paths.emplace_back(arg);
    }
  }
  if (paths.size() != 2) {
    std::fprintf(stderr, "%s", std::string(kDiffUsage).c_str());
    return 2;
  }

  BenchReport baseline;
  BenchReport candidate;
  std::string text;
  std::string error;
  if (!read_file(paths[0], text, error) ||
      !parse_bench_report(text, baseline, error)) {
    std::fprintf(stderr, "error: baseline %s: %s\n", paths[0].c_str(),
                 error.c_str());
    return 2;
  }
  if (!read_file(paths[1], text, error) ||
      !parse_bench_report(text, candidate, error)) {
    std::fprintf(stderr, "error: candidate %s: %s\n", paths[1].c_str(),
                 error.c_str());
    return 2;
  }

  const DiffReport report = diff_reports(baseline, candidate, options);
  if (!quiet) {
    std::fputs(render_diff_table(report, options).c_str(), stdout);
  } else {
    std::printf("%s: %zu gated regression(s)\n",
                report.passed() ? "PASS" : "FAIL", report.regressions);
  }
  if (!markdown_path.empty()) {
    std::ofstream md(markdown_path, std::ios::binary);
    if (!md) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   markdown_path.c_str());
      return 2;
    }
    md << render_diff_markdown(report, options);
  }
  return report.passed() ? 0 : 1;
}

}  // namespace stopwatch::experiment
