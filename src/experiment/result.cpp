#include "experiment/result.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "experiment/json.hpp"
#include "stats/summary.hpp"

namespace stopwatch::experiment {

namespace {

std::string pad(int indent) { return std::string(indent, ' '); }

}  // namespace

void Result::add_metric(std::string name, double value, std::string unit) {
  SW_EXPECTS(!name.empty());
  SW_EXPECTS(!has_metric(name));
  metrics_.push_back({std::move(name), value, std::move(unit)});
}

void Result::add_series(std::string name, std::string unit,
                        std::vector<double> values) {
  SW_EXPECTS(!name.empty());
  series_.push_back({std::move(name), std::move(unit), std::move(values)});
}

void Result::add_summary_metrics(const std::string& prefix,
                                 const std::string& unit,
                                 const std::vector<double>& values) {
  add_metric(prefix + "_count", static_cast<double>(values.size()), "samples");
  if (values.empty()) return;
  const stats::Summary s = stats::summarize(values);
  add_metric(prefix + "_mean", s.mean, unit);
  add_metric(prefix + "_p50", s.p50, unit);
  add_metric(prefix + "_p99", s.p99, unit);
}

double Result::metric(const std::string& name) const {
  const auto it = std::find_if(metrics_.begin(), metrics_.end(),
                               [&](const Metric& m) { return m.name == name; });
  SW_EXPECTS(it != metrics_.end());
  return it->value;
}

bool Result::has_metric(const std::string& name) const {
  return std::any_of(metrics_.begin(), metrics_.end(),
                     [&](const Metric& m) { return m.name == name; });
}

void Result::add_timeseries(std::string name,
                            obs::TimeSeriesSnapshot snapshot) {
  SW_EXPECTS(!name.empty());
  timeseries_.emplace_back(std::move(name), std::move(snapshot));
  std::sort(timeseries_.begin(), timeseries_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
}

void Result::set_context(
    std::uint64_t seed, bool smoke,
    std::vector<std::pair<std::string, std::string>> params) {
  seed_ = seed;
  smoke_ = smoke;
  params_ = std::move(params);
}

std::string Result::to_json(int indent) const {
  const std::string p0 = pad(indent);
  const std::string p1 = pad(indent + 2);
  const std::string p2 = pad(indent + 4);
  const std::string p3 = pad(indent + 6);

  std::string out = p0 + "{\n";
  out += p1 + "\"scenario\": " + json_string(scenario_) + ",\n";
  out += p1 + "\"seed\": " + json_number(seed_) + ",\n";
  out += p1 + "\"smoke\": " + (smoke_ ? "true" : "false") + ",\n";

  out += p1 + "\"params\": {";
  for (std::size_t i = 0; i < params_.size(); ++i) {
    out += (i == 0 ? "\n" : ",\n") + p2 + json_string(params_[i].first) + ": " +
           params_[i].second;  // already JSON-encoded
  }
  out += params_.empty() ? "},\n" : "\n" + p1 + "},\n";

  out += p1 + "\"metrics\": [";
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    const Metric& m = metrics_[i];
    out += (i == 0 ? "\n" : ",\n") + p2 + "{\"name\": " + json_string(m.name) +
           ", \"value\": " + json_number(m.value) +
           ", \"unit\": " + json_string(m.unit) + "}";
  }
  out += metrics_.empty() ? "]" : "\n" + p1 + "]";

  if (!series_.empty()) {
    out += ",\n" + p1 + "\"series\": [";
    for (std::size_t i = 0; i < series_.size(); ++i) {
      const Series& s = series_[i];
      out += (i == 0 ? "\n" : ",\n") + p2 + "{\n";
      out += p3 + "\"name\": " + json_string(s.name) + ",\n";
      out += p3 + "\"unit\": " + json_string(s.unit) + ",\n";
      out += p3 + "\"values\": [";
      for (std::size_t j = 0; j < s.values.size(); ++j) {
        out += (j == 0 ? "" : ", ") + json_number(s.values[j]);
      }
      out += "]\n" + p2 + "}";
    }
    out += "\n" + p1 + "]";
  }

  if (!note_.empty()) {
    out += ",\n" + p1 + "\"note\": " + json_string(note_);
  }

  // `timeseries` is deterministic across sim_shards/--jobs and must stay
  // inside the byte-identity comparisons, so it serializes BEFORE the
  // shard-dependent `observability` block (comparators strip everything
  // from the observability marker onward).
  if (!timeseries_.empty()) {
    out += ",\n" + p1 + "\"timeseries\": {";
    for (std::size_t i = 0; i < timeseries_.size(); ++i) {
      const auto& [name, ts] = timeseries_[i];
      out += (i == 0 ? "\n" : ",\n") + p2 + json_string(name) + ": {\n";
      out += p3 + "\"window_ns\": " +
             json_number(static_cast<std::uint64_t>(ts.window_ns)) + ",\n";
      out += p3 + "\"budget_windows\": " + json_number(ts.budget_windows) +
             ",\n";
      out += p3 + "\"windows\": [";
      for (std::size_t w = 0; w < ts.windows.size(); ++w) {
        const auto& [start_ns, roll] = ts.windows[w];
        out += (w == 0 ? "\n" : ",\n") + pad(indent + 8) +
               "{\"start_ns\": " +
               json_number(static_cast<std::uint64_t>(start_ns)) +
               ", \"count\": " + json_number(roll.count) +
               ", \"sum\": " + json_number(roll.sum) +
               ", \"max\": " + json_number(roll.max) + ", \"sketch\": [";
        const auto buckets = roll.sketch.nonzero();
        for (std::size_t b = 0; b < buckets.size(); ++b) {
          if (b != 0) out += ", ";
          out += "[" +
                 json_number(static_cast<std::uint64_t>(buckets[b].first)) +
                 ", " + json_number(buckets[b].second) + "]";
        }
        out += "]}";
      }
      out += ts.windows.empty() ? "]\n" : "\n" + p3 + "]\n";
      out += p2 + "}";
    }
    out += "\n" + p1 + "}";
  }

  if (!observability_.empty()) {
    out += ",\n" + p1 + "\"observability\": {\n";
    out += p2 + "\"counters\": {";
    for (std::size_t i = 0; i < observability_.counters.size(); ++i) {
      const auto& [name, value] = observability_.counters[i];
      out += (i == 0 ? "\n" : ",\n") + p3 + json_string(name) + ": " +
             json_number(value);
    }
    out += observability_.counters.empty() ? "}" : "\n" + p2 + "}";
    if (!observability_.gauges.empty()) {
      out += ",\n" + p2 + "\"gauges\": {";
      for (std::size_t i = 0; i < observability_.gauges.size(); ++i) {
        const auto& [name, value] = observability_.gauges[i];
        out += (i == 0 ? "\n" : ",\n") + p3 + json_string(name) + ": " +
               json_number(value);
      }
      out += "\n" + p2 + "}";
    }
    if (!observability_.histograms.empty()) {
      out += ",\n" + p2 + "\"histograms\": {";
      for (std::size_t i = 0; i < observability_.histograms.size(); ++i) {
        const auto& [name, h] = observability_.histograms[i];
        out += (i == 0 ? "\n" : ",\n") + p3 + json_string(name) +
               ": {\"count\": " + json_number(h.count) +
               ", \"sum\": " + json_number(h.sum) +
               ", \"max\": " + json_number(h.max) + ", \"buckets\": [";
        for (std::size_t b = 0; b < h.buckets.size(); ++b) {
          if (b != 0) out += ", ";
          out += "[" +
                 json_number(static_cast<std::uint64_t>(h.buckets[b].first)) +
                 ", " + json_number(h.buckets[b].second) + "]";
        }
        out += "]}";
      }
      out += "\n" + p2 + "}";
    }
    out += "\n" + p1 + "}";
  }
  out += "\n" + p0 + "}";
  return out;
}

std::string report_to_json(const std::vector<Result>& results) {
  std::string out = "{\n  \"schema\": \"stopwatch-bench/1\",\n  \"results\": [";
  for (std::size_t i = 0; i < results.size(); ++i) {
    out += (i == 0 ? "\n" : ",\n") + results[i].to_json(4);
  }
  out += results.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

}  // namespace stopwatch::experiment
