#include "experiment/registry.hpp"

#include <utility>

#include "common/contracts.hpp"

namespace stopwatch::experiment {

ScenarioRegistry& ScenarioRegistry::instance() {
  static ScenarioRegistry registry;
  return registry;
}

void ScenarioRegistry::add(Scenario scenario) {
  SW_EXPECTS(!scenario.name.empty());
  SW_EXPECTS(scenario.run != nullptr);
  SW_EXPECTS(!scenarios_.contains(scenario.name));
  scenarios_.emplace(scenario.name, std::move(scenario));
}

const Scenario* ScenarioRegistry::find(const std::string& name) const {
  const auto it = scenarios_.find(name);
  return it == scenarios_.end() ? nullptr : &it->second;
}

std::vector<const Scenario*> ScenarioRegistry::list() const {
  std::vector<const Scenario*> out;
  out.reserve(scenarios_.size());
  for (const auto& [_, scenario] : scenarios_) out.push_back(&scenario);
  return out;
}

Result ScenarioRegistry::run(const std::string& name, std::uint64_t seed,
                             bool smoke,
                             std::map<std::string, double> overrides) const {
  const Scenario* scenario = find(name);
  SW_EXPECTS(scenario != nullptr);
  const ScenarioContext ctx(seed, smoke, std::move(overrides),
                            scenario->params);
  Result result = scenario->run(ctx);
  SW_ENSURES(result.scenario() == scenario->name);
  result.set_context(seed, smoke, ctx.resolved());
  return result;
}

ScenarioRegistrar::ScenarioRegistrar(Scenario scenario) {
  ScenarioRegistry::instance().add(std::move(scenario));
}

}  // namespace stopwatch::experiment
