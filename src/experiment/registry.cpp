#include "experiment/registry.hpp"

#include <utility>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace stopwatch::experiment {

ScenarioRegistry& ScenarioRegistry::instance() {
  static ScenarioRegistry registry;
  return registry;
}

void ScenarioRegistry::add(Scenario scenario) {
  SW_EXPECTS(!scenario.name.empty());
  SW_EXPECTS(scenario.run != nullptr);
  SW_EXPECTS(!scenarios_.contains(scenario.name));
  scenarios_.emplace(scenario.name, std::move(scenario));
}

const Scenario* ScenarioRegistry::find(const std::string& name) const {
  const auto it = scenarios_.find(name);
  return it == scenarios_.end() ? nullptr : &it->second;
}

std::vector<const Scenario*> ScenarioRegistry::list() const {
  std::vector<const Scenario*> out;
  out.reserve(scenarios_.size());
  for (const auto& [_, scenario] : scenarios_) out.push_back(&scenario);
  return out;
}

Result ScenarioRegistry::run(const std::string& name, std::uint64_t seed,
                             bool smoke, ParamOverrides overrides) const {
  const Scenario* scenario = find(name);
  SW_EXPECTS(scenario != nullptr);
  const ScenarioContext ctx(derive_scenario_seed(seed, name), smoke,
                            std::move(overrides), scenario->params);
  Result result = scenario->run(ctx);
  SW_ENSURES(result.scenario() == scenario->name);
  result.set_context(seed, smoke, ctx.resolved());
  return result;
}

ScenarioRegistrar::ScenarioRegistrar(Scenario scenario) {
  ScenarioRegistry::instance().add(std::move(scenario));
}

std::uint64_t derive_scenario_seed(std::uint64_t seed,
                                   const std::string& name) {
  // FNV-1a over the name gives a stable per-scenario tag; splitmix64 then
  // mixes tag and seed so adjacent seeds do not yield adjacent streams.
  std::uint64_t tag = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    tag ^= static_cast<unsigned char>(c);
    tag *= 0x100000001b3ULL;
  }
  SplitMix64 mixer(seed ^ tag);
  return mixer.next();
}

}  // namespace stopwatch::experiment
