#include "experiment/scenario.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "experiment/json.hpp"

namespace stopwatch::experiment {

ParamSpec ParamSpec::enumeration(std::string name, std::string description,
                                 std::string default_choice,
                                 std::vector<std::string> choices) {
  SW_EXPECTS(!choices.empty());
  SW_EXPECTS(std::find(choices.begin(), choices.end(), default_choice) !=
             choices.end());
  for (const std::string& c : choices) SW_EXPECTS(!c.empty());
  ParamSpec out;
  out.name = std::move(name);
  out.description = std::move(description);
  out.kind = Kind::kEnum;
  out.default_choice = std::move(default_choice);
  out.choices = std::move(choices);
  return out;
}

ParamSpec ParamSpec::with_range(double lo, double hi) const {
  SW_EXPECTS(kind == Kind::kNumeric);
  SW_EXPECTS(lo <= hi);
  SW_EXPECTS(lo <= default_value && default_value <= hi);
  SW_EXPECTS(lo <= smoke_value && smoke_value <= hi);
  ParamSpec out = *this;
  out.min_value = lo;
  out.max_value = hi;
  return out;
}

ParamSpec ParamSpec::with_int_range(double lo, double hi) const {
  SW_EXPECTS(std::nearbyint(default_value) == default_value);
  SW_EXPECTS(std::nearbyint(smoke_value) == smoke_value);
  ParamSpec out = with_range(lo, hi);
  out.integral = true;
  return out;
}

std::string ParamSpec::choices_joined() const {
  std::string out;
  for (std::size_t i = 0; i < choices.size(); ++i) {
    if (i > 0) out += "|";
    out += choices[i];
  }
  return out;
}

ScenarioContext::ScenarioContext(std::uint64_t seed, bool smoke,
                                 ParamOverrides overrides,
                                 const std::vector<ParamSpec>& schema)
    : seed_(seed), smoke_(smoke) {
  for (const ParamSpec& spec : schema) {
    SW_EXPECTS(!values_.contains(spec.name) && !choices_.contains(spec.name));
    const auto it = overrides.find(spec.name);
    if (spec.kind == ParamSpec::Kind::kEnum) {
      if (it != overrides.end()) {
        SW_EXPECTS_MSG(std::find(spec.choices.begin(), spec.choices.end(),
                                 it->second) != spec.choices.end(),
                       "parameter '" + spec.name + "' must be one of " +
                           spec.choices_joined() + " (got '" + it->second +
                           "')");
        choices_[spec.name] = it->second;
        overrides.erase(it);
      } else {
        choices_[spec.name] = spec.default_choice;
      }
    } else {
      if (it != overrides.end()) {
        double value = 0.0;
        SW_EXPECTS_MSG(parse_double_strict(it->second, value),
                       "parameter '" + spec.name + "' expects a number (got '" +
                           it->second + "')");
        SW_EXPECTS(spec.min_value <= value && value <= spec.max_value);
        SW_EXPECTS(!spec.integral || std::nearbyint(value) == value);
        values_[spec.name] = value;
        overrides.erase(it);
      } else {
        values_[spec.name] = smoke ? spec.smoke_value : spec.default_value;
      }
    }
    order_.push_back(spec.name);
  }
  // Overrides must name declared parameters, or a typo would silently run
  // the scenario with defaults.
  SW_EXPECTS(overrides.empty());
}

double ScenarioContext::param(const std::string& name) const {
  const auto it = values_.find(name);
  SW_EXPECTS(it != values_.end());
  return it->second;
}

int ScenarioContext::param_int(const std::string& name) const {
  const double v = param(name);
  SW_EXPECTS(std::nearbyint(v) == v);
  return static_cast<int>(v);
}

const std::string& ScenarioContext::param_choice(
    const std::string& name) const {
  const auto it = choices_.find(name);
  SW_EXPECTS(it != choices_.end());
  return it->second;
}

std::vector<std::pair<std::string, std::string>> ScenarioContext::resolved()
    const {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(order_.size());
  for (const std::string& name : order_) {
    const auto choice = choices_.find(name);
    if (choice != choices_.end()) {
      out.emplace_back(name, json_string(choice->second));
    } else {
      out.emplace_back(name, json_number(values_.at(name)));
    }
  }
  return out;
}

}  // namespace stopwatch::experiment
