#include "experiment/scenario.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace stopwatch::experiment {

ParamSpec ParamSpec::with_range(double lo, double hi) const {
  SW_EXPECTS(lo <= hi);
  SW_EXPECTS(lo <= default_value && default_value <= hi);
  SW_EXPECTS(lo <= smoke_value && smoke_value <= hi);
  ParamSpec out = *this;
  out.min_value = lo;
  out.max_value = hi;
  return out;
}

ParamSpec ParamSpec::with_int_range(double lo, double hi) const {
  SW_EXPECTS(std::nearbyint(default_value) == default_value);
  SW_EXPECTS(std::nearbyint(smoke_value) == smoke_value);
  ParamSpec out = with_range(lo, hi);
  out.integral = true;
  return out;
}

ScenarioContext::ScenarioContext(std::uint64_t seed, bool smoke,
                                 std::map<std::string, double> overrides,
                                 const std::vector<ParamSpec>& schema)
    : seed_(seed), smoke_(smoke) {
  for (const ParamSpec& spec : schema) {
    SW_EXPECTS(!values_.contains(spec.name));
    const auto it = overrides.find(spec.name);
    if (it != overrides.end()) {
      SW_EXPECTS(spec.min_value <= it->second && it->second <= spec.max_value);
      SW_EXPECTS(!spec.integral || std::nearbyint(it->second) == it->second);
      values_[spec.name] = it->second;
      overrides.erase(it);
    } else {
      values_[spec.name] = smoke ? spec.smoke_value : spec.default_value;
    }
    order_.push_back(spec.name);
  }
  // Overrides must name declared parameters, or a typo would silently run
  // the scenario with defaults.
  SW_EXPECTS(overrides.empty());
}

double ScenarioContext::param(const std::string& name) const {
  const auto it = values_.find(name);
  SW_EXPECTS(it != values_.end());
  return it->second;
}

int ScenarioContext::param_int(const std::string& name) const {
  const double v = param(name);
  SW_EXPECTS(std::nearbyint(v) == v);
  return static_cast<int>(v);
}

std::vector<std::pair<std::string, double>> ScenarioContext::resolved() const {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(order_.size());
  for (const std::string& name : order_) {
    out.emplace_back(name, values_.at(name));
  }
  return out;
}

}  // namespace stopwatch::experiment
