// The experiment result model: scalar Metrics, figure-shaped Series, and a
// deterministic JSON writer. Every scenario run produces exactly one Result;
// the runner stamps it with the context (seed, smoke, resolved parameters)
// before serialization, so BENCH_*.json trajectories are self-describing.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"

namespace stopwatch::experiment {

/// One named scalar measurement (e.g. "obs_needed_at_99", unit
/// "observations").
struct Metric {
  std::string name;
  double value{0.0};
  std::string unit;
};

/// One named vector of measurements sharing a unit (e.g. a CDF grid or a
/// per-load-level latency curve).
struct Series {
  std::string name;
  std::string unit;
  std::vector<double> values;
};

/// The outcome of one scenario run.
class Result {
 public:
  Result() = default;
  explicit Result(std::string scenario) : scenario_(std::move(scenario)) {}

  void add_metric(std::string name, double value, std::string unit = "");
  void add_series(std::string name, std::string unit,
                  std::vector<double> values);
  /// Summarizes `values` into <prefix>_{count,mean,p50,p99} metrics — the
  /// compact form scenarios use for large sample vectors.
  void add_summary_metrics(const std::string& prefix, const std::string& unit,
                           const std::vector<double>& values);
  /// Free-text observation, e.g. the paper shape check the scenario verifies.
  void set_note(std::string note) { note_ = std::move(note); }
  /// Attaches the end-of-run metrics-registry snapshot; serialized as the
  /// `observability` block. Tooling that compares results across runs
  /// (stopwatch_bench_diff, the parallel-identity CI lane) ignores it.
  void set_observability(obs::Snapshot snapshot) {
    observability_ = std::move(snapshot);
  }
  [[nodiscard]] const obs::Snapshot& observability() const {
    return observability_;
  }
  /// Attaches a named sim-time rollup series; serialized as the
  /// `timeseries` block. Unlike `observability`, the block is sim-time
  /// keyed and single-writer, so it is byte-identical across sim_shards
  /// and --jobs and *participates* in the cross-shard identity checks
  /// (it is serialized before `observability` so block-stripping
  /// comparators keep it).
  void add_timeseries(std::string name, obs::TimeSeriesSnapshot snapshot);
  [[nodiscard]] const std::vector<std::pair<std::string,
                                            obs::TimeSeriesSnapshot>>&
  timeseries() const {
    return timeseries_;
  }

  [[nodiscard]] const std::string& scenario() const { return scenario_; }
  [[nodiscard]] const std::vector<Metric>& metrics() const { return metrics_; }
  [[nodiscard]] const std::vector<Series>& series() const { return series_; }
  [[nodiscard]] const std::string& note() const { return note_; }

  /// Looks up a metric by name; fails the contract if absent.
  [[nodiscard]] double metric(const std::string& name) const;
  [[nodiscard]] bool has_metric(const std::string& name) const;

  // Stamped by the runner before serialization. Param values arrive
  // pre-encoded as JSON (numbers for numeric knobs, quoted strings for
  // enumerated ones).
  void set_context(std::uint64_t seed, bool smoke,
                   std::vector<std::pair<std::string, std::string>> params);
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Serializes to deterministic, pretty-printed JSON (2-space indent).
  /// `indent` is the number of leading spaces applied to every line, so
  /// results can be nested inside a report object.
  [[nodiscard]] std::string to_json(int indent = 0) const;

 private:
  std::string scenario_;
  std::uint64_t seed_{0};
  bool smoke_{false};
  /// (name, pre-encoded JSON value) pairs in schema order.
  std::vector<std::pair<std::string, std::string>> params_;
  std::vector<Metric> metrics_;
  std::vector<Series> series_;
  std::string note_;
  std::vector<std::pair<std::string, obs::TimeSeriesSnapshot>> timeseries_;
  obs::Snapshot observability_;
};

/// A full runner invocation: one Result per executed scenario, wrapped with
/// a schema tag so downstream tooling can detect format drift.
[[nodiscard]] std::string report_to_json(const std::vector<Result>& results);

}  // namespace stopwatch::experiment
