// The StopWatch cloud — the paper's primary contribution assembled.
//
// A Cloud owns the simulator, the network fabric, and the topology layer
// (src/topology) that in turn owns the sharded machine table, the ingress
// and egress nodes, and the guest VMs. The mitigation backend is chosen by
// CloudConfig::policy (hypervisor::PolicyConfig — see
// src/hypervisor/policy.hpp). Under the StopWatch policy every guest
// VM added is transparently replicated `replica_count` times across the
// requested machines and wired into:
//   * a per-VM ingress entry (its logical network address) that replicates
//     every inbound packet to all hosting VMMs via reliable multicast
//     (Sec. V);
//   * a per-VM control multicast group carrying delivery-time proposals,
//     virtual-time sync beacons, and epoch reports among the replica VMMs;
//   * the egress node, which forwards a guest output packet to its
//     destination upon receiving the *second* replica copy — the median
//     emission timing (Sec. VI) — and simultaneously verifies replica
//     output determinism via content hashes.
//
// Wiring happens eagerly (the default: replicas exist from add_vm on) or
// lazily (CloudConfig::wiring = WiringMode::kLazy: a VM's replicas,
// multicast groups, and machine shards materialize on the first frame that
// reaches its ingress address) — the mode placement-scale scenarios use to
// register Θ(n²) VM placements over n = 501 machines and only pay for the
// ones actually driven.
//
// Under the baseline-Xen policy the same topology runs unreplicated
// guests on unmodified-Xen semantics (real clocks, immediate interrupt
// delivery): the comparison baseline for every experiment. The Deterland
// and TIFC policies reuse the unreplicated wiring with their own delivery
// and egress-release rules.
//
// Everything here is event-driven on sim::Simulator's slab/timer-wheel
// core: callbacks are sim::Task (48-byte inline storage — every scheduling
// lambda in this tree fits), and periodic mechanisms (vCPU slices, sync
// beacons, stall rechecks, multicast SPM/NAK timers, workload issue loops)
// re-arm their one arena slot via Simulator::reschedule_after.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "hypervisor/guest_context.hpp"
#include "hypervisor/machine.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"
#include "topology/builder.hpp"
#include "topology/shard_plan.hpp"
#include "vm/guest.hpp"

namespace stopwatch::core {

using hypervisor::Policy;
using hypervisor::PolicyConfig;
using hypervisor::PolicyKind;
using topology::EgressStats;
using topology::WiringMode;

struct CloudConfig {
  std::uint64_t seed{1};
  /// Mitigation-policy selection + per-policy knobs (implicitly
  /// constructible from a PolicyKind; see hypervisor/policy.hpp).
  PolicyConfig policy{};
  /// Replicas per guest VM under replicated policies (3 in the paper, 5
  /// for Sec. IX hardening). Ignored (forced to 1) under non-replicated
  /// policies.
  int replica_count{3};
  int machine_count{3};
  /// Machines per shard of the topology layer's machine table.
  int shard_size{64};
  /// When VM replicas are wired: at add_vm (kEager) or on first ingress
  /// traffic (kLazy).
  WiringMode wiring{WiringMode::kEager};
  hypervisor::MachineConfig machine_template{};
  hypervisor::GuestContextConfig guest_template{};
  /// Intra-cloud links (machine <-> machine / ingress / egress).
  net::LinkModel cloud_link{Duration::micros(150), 0.15, 125e6, 0.0};
  /// External client links (the paper's campus-wireless client).
  net::LinkModel client_link{Duration::millis(3), 0.20, 2.5e6, 0.0};
  /// Machine clock offsets drawn uniformly from [0, spread).
  Duration clock_offset_spread{Duration::millis(40)};
  /// Simulator cores. 1 = the sequential kernel. >1 enables shard-parallel
  /// execution once activate_sharded() partitions the active VMs across
  /// cores; scenario output stays byte-identical to sim_shards=1.
  int sim_shards{1};
  /// Barrier window override for shard-parallel runs. <= 0 (the default)
  /// derives the window from the network's minimum-latency floor — the
  /// conservative-lookahead bound; a positive value only ever clamps it
  /// further down (diagnostics / barrier-stress testing).
  Duration shard_window{};
  /// Barrier placement policy for shard-parallel runs. kAdaptive (the
  /// default) pushes each barrier to the realized safe bound (earliest
  /// pending event + lookahead) — same event orders, far fewer barriers
  /// on idle-heavy workloads; kFixed is the PR 7 fixed-width reference
  /// (--param shard_window=fixed on the sim_shards scenarios).
  sim::WindowPolicy shard_window_policy{sim::WindowPolicy::kAdaptive};
};

/// Opaque handle to a guest VM in the cloud.
struct VmHandle {
  std::uint32_t index{0};
};

class Cloud {
 public:
  using ProgramFactory = topology::TopologyBuilder::ProgramFactory;
  using PacketHandler = std::function<void(const net::Packet&)>;

  explicit Cloud(CloudConfig cfg);

  Cloud(const Cloud&) = delete;
  Cloud& operator=(const Cloud&) = delete;

  /// Adds a guest VM replicated across `machine_indices` (first
  /// `replica_count` entries used; baseline uses only the first). The
  /// factory is invoked once per replica; all replicas receive the same
  /// deterministic seed. Under lazy wiring the factory runs at
  /// materialization instead of here.
  VmHandle add_vm(std::string name, const ProgramFactory& factory,
                  const std::vector<int>& machine_indices);

  /// Adds an external endpoint (client, collector...) reached over the
  /// client link model (one per-node link entry, not a per-VM fan-out).
  NodeId add_external_node(std::string name, PacketHandler on_packet);

  /// Sends a packet from an external node (src is filled in).
  void send_external(NodeId from, net::Packet pkt);

  /// Boots every wired VM, batched per machine shard: exchanges machine
  /// clocks and starts each replica with the median as the initial virtual
  /// time (Sec. IV-A). Lazily wired VMs boot at materialization instead.
  void start();

  /// Runs the simulation for `d` (of simulated real time).
  void run_for(Duration d);

  /// Stops all guests (no further slices are scheduled).
  void halt_all();

  /// Forces materialization of a lazily wired VM (idempotent).
  void materialize(VmHandle vm) { topo_->materialize(vm.index); }

  /// Declares `driven` the activation set and partitions it across the
  /// configured sim_shards cores (whole shares-a-machine components per
  /// core — see topology::ShardPlan), pre-wiring every listed VM in index
  /// order and locking the set. Required before run_for when sim_shards >
  /// 1; valid (and the same code path, so outputs stay comparable) when
  /// sim_shards == 1. Requires WiringMode::kLazy and must run before
  /// start().
  void activate_sharded(const std::vector<VmHandle>& driven);

  /// Installs (or clears) the egress release observer — the hook the
  /// leakage subsystem's TimingTap uses to record attacker-visible egress
  /// timings (see src/leakage/timing_tap.hpp).
  void set_egress_tap(topology::TopologyBuilder::EgressTap tap) {
    topo_->set_egress_tap(std::move(tap));
  }
  [[nodiscard]] bool has_egress_tap() const {
    return topo_->has_egress_tap();
  }

  // --- Introspection ---

  /// The driver core — the core owning every external node and the egress
  /// gateway (shard 0 until activate_sharded moves them to the plan's
  /// egress shard; always shard 0 unsharded). Client-side drivers
  /// schedule here, which keeps external-node state single-core.
  [[nodiscard]] sim::Simulator& simulator() {
    return sharded_.shard(driver_shard_);
  }
  /// The sharded kernel itself (shard_count() == 1 unless configured up).
  [[nodiscard]] sim::ShardedSimulator& sharded() { return sharded_; }
  /// Events executed across all cores.
  [[nodiscard]] std::uint64_t events_executed() const {
    return sharded_.events_executed();
  }
  [[nodiscard]] net::Network& network() { return net_; }
  [[nodiscard]] topology::TopologyBuilder& topology() { return *topo_; }
  [[nodiscard]] hypervisor::Machine& machine(int idx);
  [[nodiscard]] int machine_count() const {
    return topo_->machines().machine_count();
  }
  [[nodiscard]] hypervisor::GuestContext& replica(VmHandle vm, int replica);
  [[nodiscard]] int replicas_of(VmHandle vm) const;
  [[nodiscard]] bool vm_materialized(VmHandle vm) const {
    return topo_->materialized(vm.index);
  }
  [[nodiscard]] NodeId vm_addr(VmHandle vm) const;
  [[nodiscard]] NodeId egress_node() const { return topo_->egress_node(); }
  [[nodiscard]] const EgressStats& egress_stats(VmHandle vm) const;
  [[nodiscard]] const CloudConfig& config() const { return cfg_; }

  /// True if every pair of replicas of `vm` agrees on the common prefix of
  /// emitted packet hashes (replica determinism, Sec. VI).
  [[nodiscard]] bool replicas_deterministic(VmHandle vm) const;

  /// Sum of divergence counters across all replicas of all VMs.
  [[nodiscard]] std::uint64_t total_divergences() const;

  /// End-of-run metrics snapshot: kernel counters summed over cores,
  /// sharded-execution stats, per-class frame counts, policy decision
  /// counters, memory-accounting gauges (arena bytes, live/due/far
  /// high-water marks, peak cross-shard lane bytes), and the frame-size /
  /// merge-batch histograms. Intended for a Result's `observability`
  /// block — call once after run_for.
  [[nodiscard]] obs::Snapshot observability();

  /// Sim-time rollup series owned by the cloud, named for a Result's
  /// `timeseries` block. Currently one series: `egress.release_latency_ns`,
  /// fed one sample per egress release (first replica copy -> policy
  /// release instant). Values are pure functions of sim time, so the
  /// snapshots are byte-identical across sim_shards and --jobs.
  [[nodiscard]] std::vector<std::pair<std::string, obs::TimeSeriesSnapshot>>
  timeseries() const {
    return {{"egress.release_latency_ns", egress_series_.snapshot()}};
  }

 private:
  CloudConfig cfg_;
  Rng root_rng_;
  sim::ShardedSimulator sharded_;
  net::Network net_;
  std::unique_ptr<topology::TopologyBuilder> topo_;
  /// Owns every named metric of this cloud; histograms are created in the
  /// constructor (single-threaded) and recorded into concurrently.
  obs::Registry registry_;
  /// Egress release-latency rollups, recorded by the topology's egress
  /// gate (single writer: the egress owner core). 64-window budget; the
  /// 50 ms initial width doubles as long horizons coarsen it.
  obs::TimeSeries egress_series_{50 * 1000 * 1000, 64};
  /// Kernel execution-counter bridges, one per core, alive for the
  /// cloud's lifetime (the cores hold raw pointers). Only populated when
  /// a trace session is active at construction.
  std::vector<std::unique_ptr<obs::KernelCounterSink>> kernel_sinks_;
  /// Barrier-window trace track (kParallel) + previous barrier time for
  /// span construction. Null / unset when tracing is off.
  obs::TraceTrack* barrier_track_{nullptr};
  std::int64_t prev_barrier_ns_{-1};
  /// External endpoints registered so far; activate_sharded re-homes them
  /// (with the egress) onto the plan's egress shard.
  std::vector<NodeId> external_nodes_;
  /// Core that owns externals + egress — what simulator() returns. 0
  /// until activate_sharded installs the plan's egress shard.
  int driver_shard_{0};
  bool started_{false};
};

}  // namespace stopwatch::core
