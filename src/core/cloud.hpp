// The StopWatch cloud — the paper's primary contribution assembled.
//
// A Cloud owns the simulator, the network fabric, n machines, the ingress
// and egress nodes, and the guest VMs. Under Policy::kStopWatch every guest
// VM added is transparently replicated `replica_count` times across the
// requested machines and wired into:
//   * a per-VM ingress entry (its logical network address) that replicates
//     every inbound packet to all hosting VMMs via reliable multicast
//     (Sec. V);
//   * a per-VM control multicast group carrying delivery-time proposals,
//     virtual-time sync beacons, and epoch reports among the replica VMMs;
//   * the egress node, which forwards a guest output packet to its
//     destination upon receiving the *second* replica copy — the median
//     emission timing (Sec. VI) — and simultaneously verifies replica
//     output determinism via content hashes.
//
// Under Policy::kBaselineXen the same topology runs unreplicated guests on
// unmodified-Xen semantics (real clocks, immediate interrupt delivery):
// the comparison baseline for every experiment.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "hypervisor/guest_context.hpp"
#include "hypervisor/machine.hpp"
#include "net/multicast.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "vm/guest.hpp"

namespace stopwatch::core {

using hypervisor::Policy;

struct CloudConfig {
  std::uint64_t seed{1};
  Policy policy{Policy::kStopWatch};
  /// Replicas per guest VM under StopWatch (3 in the paper, 5 for Sec. IX
  /// hardening). Ignored (forced to 1) under the baseline policy.
  int replica_count{3};
  int machine_count{3};
  hypervisor::MachineConfig machine_template{};
  hypervisor::GuestContextConfig guest_template{};
  /// Intra-cloud links (machine <-> machine / ingress / egress).
  net::LinkModel cloud_link{Duration::micros(150), 0.15, 125e6, 0.0};
  /// External client links (the paper's campus-wireless client).
  net::LinkModel client_link{Duration::millis(3), 0.20, 2.5e6, 0.0};
  /// Machine clock offsets drawn uniformly from [0, spread).
  Duration clock_offset_spread{Duration::millis(40)};
};

/// Opaque handle to a guest VM in the cloud.
struct VmHandle {
  std::uint32_t index{0};
};

/// Per-VM egress statistics.
struct EgressStats {
  std::uint64_t packets_released{0};
  /// Replica output hash mismatches observed at the egress (must stay 0:
  /// replicas are deterministic).
  std::uint64_t hash_mismatches{0};
};

class Cloud {
 public:
  using ProgramFactory = std::function<std::unique_ptr<vm::GuestProgram>()>;
  using PacketHandler = std::function<void(const net::Packet&)>;

  explicit Cloud(CloudConfig cfg);

  Cloud(const Cloud&) = delete;
  Cloud& operator=(const Cloud&) = delete;

  /// Adds a guest VM replicated across `machine_indices` (first
  /// `replica_count` entries used; baseline uses only the first). The
  /// factory is invoked once per replica; all replicas receive the same
  /// deterministic seed.
  VmHandle add_vm(std::string name, const ProgramFactory& factory,
                  const std::vector<int>& machine_indices);

  /// Adds an external endpoint (client, collector...) reached over the
  /// client link model.
  NodeId add_external_node(std::string name, PacketHandler on_packet);

  /// Sends a packet from an external node (src is filled in).
  void send_external(NodeId from, net::Packet pkt);

  /// Boots every VM: exchanges machine clocks and starts each replica with
  /// the median as the initial virtual time (Sec. IV-A).
  void start();

  /// Runs the simulation for `d` (of simulated real time).
  void run_for(Duration d);

  /// Stops all guests (no further slices are scheduled).
  void halt_all();

  // --- Introspection ---

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] net::Network& network() { return net_; }
  [[nodiscard]] hypervisor::Machine& machine(int idx);
  [[nodiscard]] int machine_count() const { return static_cast<int>(machines_.size()); }
  [[nodiscard]] hypervisor::GuestContext& replica(VmHandle vm, int replica);
  [[nodiscard]] int replicas_of(VmHandle vm) const;
  [[nodiscard]] NodeId vm_addr(VmHandle vm) const;
  [[nodiscard]] NodeId egress_node() const { return egress_node_; }
  [[nodiscard]] const EgressStats& egress_stats(VmHandle vm) const;
  [[nodiscard]] const CloudConfig& config() const { return cfg_; }

  /// True if every pair of replicas of `vm` agrees on the common prefix of
  /// emitted packet hashes (replica determinism, Sec. VI).
  [[nodiscard]] bool replicas_deterministic(VmHandle vm) const;

  /// Sum of divergence counters across all replicas of all VMs.
  [[nodiscard]] std::uint64_t total_divergences() const;

 private:
  struct VmEntry {
    std::string name;
    VmId id{};
    NodeId addr{};
    std::vector<int> machines;
    std::vector<std::unique_ptr<hypervisor::GuestContext>> replicas;
    std::unique_ptr<net::MulticastGroup> control_group;
    std::unique_ptr<net::MulticastGroup> ingress_group;
    std::uint64_t ingress_seq{0};
    // Egress reassembly: out_seq -> (copies seen, first hash, released).
    struct EgressSlot {
      int copies{0};
      std::uint64_t hash{0};
      bool released{false};
    };
    std::map<std::uint64_t, EgressSlot> egress_slots;
    EgressStats egress_stats;
  };

  void on_machine_frame(int machine_idx, const net::Frame& frame);
  void on_ingress_packet(std::uint32_t vm_index, const net::Packet& pkt);
  void on_egress_frame(const net::Frame& frame);
  [[nodiscard]] int effective_replicas() const {
    return cfg_.policy == Policy::kStopWatch ? cfg_.replica_count : 1;
  }

  CloudConfig cfg_;
  Rng root_rng_;
  sim::Simulator sim_;
  net::Network net_;
  std::vector<std::unique_ptr<hypervisor::Machine>> machines_;
  std::vector<NodeId> machine_nodes_;
  NodeId egress_node_{};
  std::vector<VmEntry> vms_;
  std::map<std::uint32_t, std::uint32_t> addr_to_vm_;  // addr node -> vm idx
  std::vector<NodeId> external_nodes_;
  std::map<std::uint32_t, net::MulticastGroup*> groups_;  // by group id
  std::uint32_t next_group_id_{1};
  bool started_{false};
};

}  // namespace stopwatch::core
