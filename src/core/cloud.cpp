#include "core/cloud.hpp"

#include <algorithm>
#include <array>
#include <string>
#include <utility>

#include "common/contracts.hpp"
#include "obs/profiler.hpp"

namespace stopwatch::core {

namespace {

/// Boundary validation of the whole configuration, before any wiring: a
/// bad replica/machine combination should explain itself here instead of
/// failing deep inside group or shard construction.
void validate(const CloudConfig& cfg) {
  SW_EXPECTS_MSG(cfg.machine_count >= 1,
                 "CloudConfig.machine_count must be >= 1 (got " +
                     std::to_string(cfg.machine_count) + ")");
  // make_policy validates the per-policy knobs (including the "replica
  // knobs on a non-replicated backend" contract); the replica/machine
  // combination check is the policy capability's job.
  hypervisor::make_policy(cfg.policy)
      ->validate_replicas("CloudConfig", cfg.replica_count, cfg.machine_count);
  SW_EXPECTS_MSG(cfg.shard_size >= 1,
                 "CloudConfig.shard_size must be >= 1 (got " +
                     std::to_string(cfg.shard_size) + ")");
  SW_EXPECTS_MSG(cfg.clock_offset_spread.ns >= 0,
                 "CloudConfig.clock_offset_spread must be >= 0 (got " +
                     std::to_string(cfg.clock_offset_spread.ns) + " ns)");
}

/// Validates the shard knob before the kernel is constructed (the sharded
/// kernel is a constructor-initialized member, so this runs first).
sim::ShardedConfig sharded_config(const CloudConfig& cfg) {
  SW_EXPECTS_MSG(cfg.sim_shards >= 1,
                 "CloudConfig.sim_shards must be >= 1 (got " +
                     std::to_string(cfg.sim_shards) + ")");
  sim::ShardedConfig sc;
  sc.shards = cfg.sim_shards;
  return sc;
}

topology::TopologyConfig topology_config(const CloudConfig& cfg) {
  topology::TopologyConfig tc;
  tc.seed = cfg.seed;
  tc.policy = cfg.policy;
  tc.replica_count = cfg.replica_count;
  tc.machine_count = cfg.machine_count;
  tc.shard_size = cfg.shard_size;
  tc.wiring = cfg.wiring;
  tc.machine_template = cfg.machine_template;
  tc.guest_template = cfg.guest_template;
  tc.clock_offset_spread = cfg.clock_offset_spread;
  return tc;
}

}  // namespace

Cloud::Cloud(CloudConfig cfg)
    : cfg_(cfg),
      root_rng_(cfg.seed),
      sharded_(sharded_config(cfg)),
      net_(sharded_.shard(0), root_rng_.fork(0xF00D)) {
  validate(cfg_);
  net_.attach_sharded(sharded_);
  net_.set_default_link(cfg_.cloud_link);
  topo_ = std::make_unique<topology::TopologyBuilder>(
      sharded_.shard(0), net_, topology_config(cfg_));
  // Histograms exist up front (worker threads record into them); counters
  // are copied in at observability() time.
  net_.set_bytes_histogram(registry_.histogram("net.frame_bytes"));
  sharded_.set_merge_histogram(registry_.histogram("sharded.merge_batch"));
  topo_->set_egress_latency_series(&egress_series_);
  if (obs::TraceRecorder* trace = obs::active_trace()) {
    // Execution-machinery tracks are inherently shard-dependent, so they
    // carry Category::kParallel and stay out of the default export.
    for (int s = 0; s < sharded_.shard_count(); ++s) {
      std::string tname = "core-";
      tname += std::to_string(s);
      obs::TraceTrack* track =
          trace->track(900 + static_cast<std::uint32_t>(s), 0, "sim-kernel",
                       std::move(tname), obs::Category::kParallel);
      kernel_sinks_.push_back(std::make_unique<obs::KernelCounterSink>(track));
      sharded_.shard(s).set_trace_sink(kernel_sinks_.back().get());
    }
    if (sharded_.shard_count() > 1) {
      barrier_track_ = trace->track(800, 0, "parallel", "barriers",
                                    obs::Category::kParallel);
      sharded_.set_barrier_hook([this](RealTime barrier_time) {
        if (prev_barrier_ns_ >= 0 && barrier_time.ns > prev_barrier_ns_) {
          barrier_track_->complete(prev_barrier_ns_,
                                   barrier_time.ns - prev_barrier_ns_,
                                   "window", "crossed",
                                   sharded_.cross_scheduled());
        }
        prev_barrier_ns_ = barrier_time.ns;
      });
    }
  }
}

VmHandle Cloud::add_vm(std::string name, const ProgramFactory& factory,
                       const std::vector<int>& machine_indices) {
  return VmHandle{topo_->add_vm(std::move(name), factory, machine_indices)};
}

NodeId Cloud::add_external_node(std::string name, PacketHandler on_packet) {
  SW_EXPECTS(on_packet != nullptr);
  const NodeId id = net_.add_node(
      std::move(name), [cb = std::move(on_packet)](const net::Frame& f) {
        if (const auto* gp = std::get_if<net::GuestPacketPayload>(&f.payload)) {
          cb(gp->pkt);
        }
      });
  // One node-scoped link entry covers this endpoint's traffic with every
  // VM ingress, machine, and the egress — no per-VM fan-out.
  net_.set_node_link(id, cfg_.client_link);
  external_nodes_.push_back(id);
  // Externals live on the driver core (the egress shard once a plan is
  // active): client sends, replies, and the egress release path all stay
  // off the worker cores' critical path.
  if (driver_shard_ != 0) net_.set_node_owner(id, driver_shard_);
  return id;
}

void Cloud::send_external(NodeId from, net::Packet pkt) {
  pkt.src = from;
  net::Frame f;
  f.src = from;
  f.dst = pkt.dst;
  f.size_bytes = pkt.size_bytes;
  f.payload = net::GuestPacketPayload{pkt};
  net_.send(std::move(f));
}

void Cloud::start() {
  SW_EXPECTS(!started_);
  started_ = true;
  topo_->start();
}

void Cloud::activate_sharded(const std::vector<VmHandle>& driven) {
  std::vector<std::uint32_t> indices;
  indices.reserve(driven.size());
  for (const VmHandle vm : driven) indices.push_back(vm.index);
  std::sort(indices.begin(), indices.end());
  indices.erase(std::unique(indices.begin(), indices.end()), indices.end());
  std::vector<std::vector<int>> groups;
  groups.reserve(indices.size());
  for (const std::uint32_t vm : indices) {
    groups.push_back(topo_->vm_machines(vm));
  }
  topo_->attach_sharding(
      sharded_,
      topology::ShardPlan::build(cfg_.sim_shards, cfg_.machine_count, groups),
      indices);
  // Egress + externals move off core 0 together: the builder re-homed the
  // egress node onto the plan's egress shard, and every external endpoint
  // (plus all future driver scheduling via simulator()) follows it.
  driver_shard_ = topo_->shard_plan().egress_shard();
  for (const NodeId id : external_nodes_) {
    net_.set_node_owner(id, driver_shard_);
  }
  // Per-pair lookahead floors for the adaptive window policy. The cloud's
  // cross-shard traffic is hub-and-spoke around the egress shard: worker
  // shards reach it over the datacenter fabric (tunneled output to the
  // egress gate) or the client link (direct replies to externals), and it
  // reaches worker shards only through client requests on the client
  // link, whose latency floor is typically an order of magnitude above
  // the fabric's — that asymmetry is what lets worker shards run windows
  // far wider than the uniform floor. Worker shards never exchange
  // traffic with each other: VMs sharing a machine share its shard (the
  // plan union-finds co-resident VMs), so guest traffic can only cross
  // shards via an external endpoint. The per-entry contract still
  // validates every cross event against the granted bound, so a workload
  // that breaks this shape fails loudly and can fall back to
  // shard_window=fixed.
  const int shards = sharded_.shard_count();
  const Duration to_egress = std::min(cfg_.cloud_link.min_latency(),
                                      cfg_.client_link.min_latency());
  const Duration from_egress = cfg_.client_link.min_latency();
  if (shards > 1 && to_egress.ns > 0 && from_egress.ns > 0) {
    for (int s = 0; s < shards; ++s) {
      for (int d = 0; d < shards; ++d) {
        if (s == d) continue;
        if (d == driver_shard_) {
          sharded_.set_lookahead(s, d, to_egress);
        } else if (s == driver_shard_) {
          sharded_.set_lookahead(s, d, from_egress);
        } else {
          sharded_.set_lookahead_unreachable(s, d);
        }
      }
    }
  }
}

void Cloud::run_for(Duration d) {
  OBS_PROF_SCOPE("cloud.run");
  SW_EXPECTS(started_);
  if (sharded_.shard_count() > 1) {
    SW_EXPECTS_MSG(
        topo_->shard_plan().shards() == sharded_.shard_count(),
        "sim_shards > 1 requires activate_sharded() before run_for");
    // Conservative lookahead: every cross-shard frame takes at least the
    // network's minimum-latency floor, so windows that long always land
    // cross events at or beyond the next barrier.
    Duration window = net_.min_latency_floor();
    if (cfg_.shard_window.ns > 0) {
      window = std::min(window, cfg_.shard_window);
    }
    SW_EXPECTS_MSG(window.ns > 0,
                   "shard-parallel run needs a positive lookahead window "
                   "(a zero-latency link defeats conservative windowing)");
    sharded_.set_window(window);
    sharded_.set_window_policy(cfg_.shard_window_policy);
  }
  sharded_.run_until(sharded_.now() + d);
}

void Cloud::halt_all() { topo_->halt_all(); }

hypervisor::Machine& Cloud::machine(int idx) {
  SW_EXPECTS(idx >= 0 && idx < machine_count());
  return topo_->machines().machine(idx);
}

hypervisor::GuestContext& Cloud::replica(VmHandle vm, int replica) {
  return topo_->replica(vm.index, replica);
}

int Cloud::replicas_of(VmHandle vm) const {
  return topo_->replicas_of(vm.index);
}

NodeId Cloud::vm_addr(VmHandle vm) const { return topo_->vm_addr(vm.index); }

const EgressStats& Cloud::egress_stats(VmHandle vm) const {
  return topo_->egress_stats(vm.index);
}

bool Cloud::replicas_deterministic(VmHandle vm) const {
  return topo_->replicas_deterministic(vm.index);
}

std::uint64_t Cloud::total_divergences() const {
  return topo_->total_divergences();
}

obs::Snapshot Cloud::observability() {
  // Names of the FramePayload alternatives, in variant-index order.
  static constexpr std::array<const char*, net::Network::kFrameClasses>
      kClassNames = {"guest_packet", "ingress_copy",    "proposal",
                     "sync_beacon",  "epoch_report",    "tunneled_output",
                     "mcast_nak",    "mcast_spm"};

  sim::KernelStats kernel{};
  std::uint64_t arena_bytes = 0;
  for (int s = 0; s < sharded_.shard_count(); ++s) {
    const sim::KernelStats& ks = sharded_.shard(s).kernel_stats();
    kernel.scheduled += ks.scheduled;
    kernel.cancelled += ks.cancelled;
    kernel.rescheduled += ks.rescheduled;
    kernel.heap_fallbacks += ks.heap_fallbacks;
    kernel.due_sorted_pops += ks.due_sorted_pops;
    kernel.due_fallback_pushes += ks.due_fallback_pushes;
    kernel.placed_due += ks.placed_due;
    kernel.placed_wheel += ks.placed_wheel;
    kernel.placed_far += ks.placed_far;
    kernel.arena_chunks += ks.arena_chunks;
    kernel.max_live += ks.max_live;
    kernel.max_due += ks.max_due;
    kernel.max_far += ks.max_far;
    arena_bytes += sharded_.shard(s).arena_bytes();
  }
  registry_.set_counter("sim.events_scheduled", kernel.scheduled);
  registry_.set_counter("sim.events_cancelled", kernel.cancelled);
  registry_.set_counter("sim.events_rescheduled", kernel.rescheduled);
  registry_.set_counter("sim.events_executed", sharded_.events_executed());
  registry_.set_counter("sim.heap_fallbacks", kernel.heap_fallbacks);
  registry_.set_counter("sim.due_sorted_pops", kernel.due_sorted_pops);
  registry_.set_counter("sim.due_fallback_pushes", kernel.due_fallback_pushes);
  registry_.set_counter("sim.placed_due", kernel.placed_due);
  registry_.set_counter("sim.placed_wheel", kernel.placed_wheel);
  registry_.set_counter("sim.placed_far", kernel.placed_far);
  registry_.set_counter("sim.arena_chunks", kernel.arena_chunks);

  // Memory-accounting gauges: deterministic quantities only (wall-clock
  // and RSS measurements belong in the --profile output, never here —
  // this snapshot participates in byte-identity comparisons).
  registry_.set_gauge("mem.arena_bytes", arena_bytes);
  registry_.set_gauge("mem.live_events_highwater", kernel.max_live);
  registry_.set_gauge("mem.due_highwater", kernel.max_due);
  registry_.set_gauge("mem.far_highwater", kernel.max_far);
  registry_.set_gauge("mem.lane_bytes_highwater",
                      sharded_.lane_bytes_highwater());

  registry_.set_counter("sharded.shards",
                        static_cast<std::uint64_t>(sharded_.shard_count()));
  registry_.set_counter("sharded.barriers", sharded_.barriers());
  registry_.set_counter("sharded.cross_scheduled", sharded_.cross_scheduled());
  registry_.set_counter("sharded.max_merge_batch", sharded_.max_merge_batch());
  registry_.set_counter("sharded.window_ns",
                        static_cast<std::uint64_t>(sharded_.window().ns));
  registry_.set_counter("sharded.adaptive_extensions",
                        sharded_.adaptive_extensions());

  for (std::size_t c = 0; c < net::Network::kFrameClasses; ++c) {
    registry_.set_counter(std::string("net.frames_sent.") + kClassNames[c],
                          net_.frames_sent_of_class(c));
  }
  registry_.set_counter("net.frames_dropped", net_.frames_dropped());

  const hypervisor::PolicyStats policy = topo_->aggregate_policy_stats();
  registry_.set_counter("policy.deliveries_quantized",
                        policy.deliveries_quantized);
  registry_.set_counter("policy.egress_releases", policy.egress_releases);
  registry_.set_counter("policy.replica_aggregations",
                        policy.replica_aggregations);

  registry_.set_counter("topology.vms",
                        static_cast<std::uint64_t>(topo_->vm_count()));
  registry_.set_counter(
      "topology.materialized_vms",
      static_cast<std::uint64_t>(topo_->materialized_vm_count()));
  registry_.set_counter("topology.divergences", topo_->total_divergences());

  return registry_.snapshot();
}

}  // namespace stopwatch::core
