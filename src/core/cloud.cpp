#include "core/cloud.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "common/contracts.hpp"

namespace stopwatch::core {

namespace {

/// Boundary validation of the whole configuration, before any wiring: a
/// bad replica/machine combination should explain itself here instead of
/// failing deep inside group or shard construction.
void validate(const CloudConfig& cfg) {
  SW_EXPECTS_MSG(cfg.machine_count >= 1,
                 "CloudConfig.machine_count must be >= 1 (got " +
                     std::to_string(cfg.machine_count) + ")");
  // make_policy validates the per-policy knobs (including the "replica
  // knobs on a non-replicated backend" contract); the replica/machine
  // combination check is the policy capability's job.
  hypervisor::make_policy(cfg.policy)
      ->validate_replicas("CloudConfig", cfg.replica_count, cfg.machine_count);
  SW_EXPECTS_MSG(cfg.shard_size >= 1,
                 "CloudConfig.shard_size must be >= 1 (got " +
                     std::to_string(cfg.shard_size) + ")");
  SW_EXPECTS_MSG(cfg.clock_offset_spread.ns >= 0,
                 "CloudConfig.clock_offset_spread must be >= 0 (got " +
                     std::to_string(cfg.clock_offset_spread.ns) + " ns)");
}

/// Validates the shard knob before the kernel is constructed (the sharded
/// kernel is a constructor-initialized member, so this runs first).
sim::ShardedConfig sharded_config(const CloudConfig& cfg) {
  SW_EXPECTS_MSG(cfg.sim_shards >= 1,
                 "CloudConfig.sim_shards must be >= 1 (got " +
                     std::to_string(cfg.sim_shards) + ")");
  sim::ShardedConfig sc;
  sc.shards = cfg.sim_shards;
  return sc;
}

topology::TopologyConfig topology_config(const CloudConfig& cfg) {
  topology::TopologyConfig tc;
  tc.seed = cfg.seed;
  tc.policy = cfg.policy;
  tc.replica_count = cfg.replica_count;
  tc.machine_count = cfg.machine_count;
  tc.shard_size = cfg.shard_size;
  tc.wiring = cfg.wiring;
  tc.machine_template = cfg.machine_template;
  tc.guest_template = cfg.guest_template;
  tc.clock_offset_spread = cfg.clock_offset_spread;
  return tc;
}

}  // namespace

Cloud::Cloud(CloudConfig cfg)
    : cfg_(cfg),
      root_rng_(cfg.seed),
      sharded_(sharded_config(cfg)),
      net_(sharded_.shard(0), root_rng_.fork(0xF00D)) {
  validate(cfg_);
  net_.attach_sharded(sharded_);
  net_.set_default_link(cfg_.cloud_link);
  topo_ = std::make_unique<topology::TopologyBuilder>(
      sharded_.shard(0), net_, topology_config(cfg_));
}

VmHandle Cloud::add_vm(std::string name, const ProgramFactory& factory,
                       const std::vector<int>& machine_indices) {
  return VmHandle{topo_->add_vm(std::move(name), factory, machine_indices)};
}

NodeId Cloud::add_external_node(std::string name, PacketHandler on_packet) {
  SW_EXPECTS(on_packet != nullptr);
  const NodeId id = net_.add_node(
      std::move(name), [cb = std::move(on_packet)](const net::Frame& f) {
        if (const auto* gp = std::get_if<net::GuestPacketPayload>(&f.payload)) {
          cb(gp->pkt);
        }
      });
  // One node-scoped link entry covers this endpoint's traffic with every
  // VM ingress, machine, and the egress — no per-VM fan-out.
  net_.set_node_link(id, cfg_.client_link);
  return id;
}

void Cloud::send_external(NodeId from, net::Packet pkt) {
  pkt.src = from;
  net::Frame f;
  f.src = from;
  f.dst = pkt.dst;
  f.size_bytes = pkt.size_bytes;
  f.payload = net::GuestPacketPayload{pkt};
  net_.send(std::move(f));
}

void Cloud::start() {
  SW_EXPECTS(!started_);
  started_ = true;
  topo_->start();
}

void Cloud::activate_sharded(const std::vector<VmHandle>& driven) {
  std::vector<std::uint32_t> indices;
  indices.reserve(driven.size());
  for (const VmHandle vm : driven) indices.push_back(vm.index);
  std::sort(indices.begin(), indices.end());
  indices.erase(std::unique(indices.begin(), indices.end()), indices.end());
  std::vector<std::vector<int>> groups;
  groups.reserve(indices.size());
  for (const std::uint32_t vm : indices) {
    groups.push_back(topo_->vm_machines(vm));
  }
  topo_->attach_sharding(
      sharded_,
      topology::ShardPlan::build(cfg_.sim_shards, cfg_.machine_count, groups),
      indices);
}

void Cloud::run_for(Duration d) {
  SW_EXPECTS(started_);
  if (sharded_.shard_count() > 1) {
    SW_EXPECTS_MSG(
        topo_->shard_plan().shards() == sharded_.shard_count(),
        "sim_shards > 1 requires activate_sharded() before run_for");
    // Conservative lookahead: every cross-shard frame takes at least the
    // network's minimum-latency floor, so windows that long always land
    // cross events at or beyond the next barrier.
    Duration window = net_.min_latency_floor();
    if (cfg_.shard_window.ns > 0) {
      window = std::min(window, cfg_.shard_window);
    }
    SW_EXPECTS_MSG(window.ns > 0,
                   "shard-parallel run needs a positive lookahead window "
                   "(a zero-latency link defeats conservative windowing)");
    sharded_.set_window(window);
  }
  sharded_.run_until(sharded_.now() + d);
}

void Cloud::halt_all() { topo_->halt_all(); }

hypervisor::Machine& Cloud::machine(int idx) {
  SW_EXPECTS(idx >= 0 && idx < machine_count());
  return topo_->machines().machine(idx);
}

hypervisor::GuestContext& Cloud::replica(VmHandle vm, int replica) {
  return topo_->replica(vm.index, replica);
}

int Cloud::replicas_of(VmHandle vm) const {
  return topo_->replicas_of(vm.index);
}

NodeId Cloud::vm_addr(VmHandle vm) const { return topo_->vm_addr(vm.index); }

const EgressStats& Cloud::egress_stats(VmHandle vm) const {
  return topo_->egress_stats(vm.index);
}

bool Cloud::replicas_deterministic(VmHandle vm) const {
  return topo_->replicas_deterministic(vm.index);
}

std::uint64_t Cloud::total_divergences() const {
  return topo_->total_divergences();
}

}  // namespace stopwatch::core
