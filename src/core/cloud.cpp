#include "core/cloud.hpp"

#include <algorithm>
#include <utility>

#include "common/contracts.hpp"
#include "stats/order_statistics.hpp"

namespace stopwatch::core {

Cloud::Cloud(CloudConfig cfg)
    : cfg_(cfg), root_rng_(cfg.seed), net_(sim_, root_rng_.fork(0xF00D)) {
  SW_EXPECTS(cfg.machine_count >= 1);
  SW_EXPECTS(cfg.replica_count >= 1 && cfg.replica_count % 2 == 1);
  net_.set_default_link(cfg_.cloud_link);

  for (int i = 0; i < cfg_.machine_count; ++i) {
    hypervisor::MachineConfig mc = cfg_.machine_template;
    if (cfg_.clock_offset_spread.ns > 0) {
      mc.clock_offset = Duration{
          root_rng_.uniform_int(0, cfg_.clock_offset_spread.ns - 1)};
    }
    auto machine = std::make_unique<hypervisor::Machine>(
        MachineId{static_cast<std::uint32_t>(i)}, sim_, mc,
        root_rng_.fork(0x1000 + static_cast<std::uint64_t>(i)));
    machines_.push_back(std::move(machine));

    const int idx = i;
    machine_nodes_.push_back(net_.add_node(
        "machine-" + std::to_string(i),
        [this, idx](const net::Frame& f) { on_machine_frame(idx, f); }));
  }

  egress_node_ = net_.add_node(
      "egress", [this](const net::Frame& f) { on_egress_frame(f); });
}

VmHandle Cloud::add_vm(std::string name, const ProgramFactory& factory,
                       const std::vector<int>& machine_indices) {
  SW_EXPECTS(!started_);
  SW_EXPECTS(factory != nullptr);
  const int replicas = effective_replicas();
  SW_EXPECTS(static_cast<int>(machine_indices.size()) >= replicas);

  const auto vm_index = static_cast<std::uint32_t>(vms_.size());
  vms_.push_back(VmEntry{});
  VmEntry& entry = vms_.back();
  entry.name = std::move(name);
  entry.id = VmId{vm_index};
  entry.machines.assign(machine_indices.begin(),
                        machine_indices.begin() + replicas);
  for (int m : entry.machines) {
    SW_EXPECTS(m >= 0 && m < machine_count());
  }
  // Replica placement constraint sanity: distinct machines.
  for (std::size_t i = 0; i < entry.machines.size(); ++i) {
    for (std::size_t j = i + 1; j < entry.machines.size(); ++j) {
      SW_EXPECTS(entry.machines[i] != entry.machines[j]);
    }
  }

  // The VM's logical address doubles as its ingress entry point.
  entry.addr = net_.add_node(
      "vm-" + entry.name + "-addr",
      [this, vm_index](const net::Frame& f) {
        if (const auto* gp = std::get_if<net::GuestPacketPayload>(&f.payload)) {
          on_ingress_packet(vm_index, gp->pkt);
        }
      });
  addr_to_vm_[entry.addr.value] = vm_index;
  // Wire client-link models to all known external nodes.
  for (const NodeId ext : external_nodes_) {
    net_.set_link_bidirectional(entry.addr, ext, cfg_.client_link);
  }

  // Control and ingress multicast groups (StopWatch only).
  if (cfg_.policy == Policy::kStopWatch && replicas > 1) {
    entry.control_group =
        std::make_unique<net::MulticastGroup>(net_, next_group_id_++);
    entry.ingress_group =
        std::make_unique<net::MulticastGroup>(net_, next_group_id_++);
    groups_[next_group_id_ - 2] = entry.control_group.get();
    groups_[next_group_id_ - 1] = entry.ingress_group.get();

    // Ingress node is the (sole) sender in the ingress group.
    entry.ingress_group->add_member(entry.addr,
                                    [](NodeId, const net::FramePayload&) {});
    // Route ingress-group frames arriving at the ingress node (none in
    // practice, but NAKs may flow back).
    const std::uint32_t ig = next_group_id_ - 1;
    net_.set_handler(entry.addr, [this, vm_index, ig](const net::Frame& f) {
      if (f.rm_group == ig) {
        groups_.at(ig)->on_frame(vms_[vm_index].addr, f);
        return;
      }
      if (const auto* gp = std::get_if<net::GuestPacketPayload>(&f.payload)) {
        on_ingress_packet(vm_index, gp->pkt);
      }
    });
  }

  const std::uint64_t det_seed =
      SplitMix64(cfg_.seed ^ (0xABCDULL + vm_index)).next();

  for (int r = 0; r < replicas; ++r) {
    const int m = entry.machines[static_cast<std::size_t>(r)];
    hypervisor::GuestContextConfig gc = cfg_.guest_template;
    gc.policy = cfg_.policy;
    gc.replica_count = replicas;

    hypervisor::ReplicaServices services;
    services.machine_node = machine_nodes_[static_cast<std::size_t>(m)];
    services.egress_node = egress_node_;
    services.send_frame = [this](net::Frame f) { net_.send(std::move(f)); };
    if (entry.control_group) {
      net::MulticastGroup* group = entry.control_group.get();
      const NodeId node = machine_nodes_[static_cast<std::size_t>(m)];
      services.control_multicast = [group, node](net::FramePayload payload,
                                                 std::uint32_t bytes) {
        group->send(node, std::move(payload), bytes);
      };
    }

    auto ctx = std::make_unique<hypervisor::GuestContext>(
        entry.id, ReplicaIndex{static_cast<std::uint32_t>(r)}, entry.addr,
        *machines_[static_cast<std::size_t>(m)], sim_, gc, factory(),
        det_seed, std::move(services));

    if (entry.control_group) {
      hypervisor::GuestContext* raw = ctx.get();
      entry.control_group->add_member(
          machine_nodes_[static_cast<std::size_t>(m)],
          [raw](NodeId, const net::FramePayload& p) {
            if (const auto* prop = std::get_if<net::Proposal>(&p)) {
              raw->on_proposal(*prop);
            } else if (const auto* b = std::get_if<net::SyncBeacon>(&p)) {
              raw->on_sync_beacon(*b);
            } else if (const auto* e = std::get_if<net::EpochReport>(&p)) {
              raw->on_epoch_report(*e);
            }
          });
    }
    if (entry.ingress_group) {
      hypervisor::GuestContext* raw = ctx.get();
      entry.ingress_group->add_member(
          machine_nodes_[static_cast<std::size_t>(m)],
          [raw](NodeId, const net::FramePayload& p) {
            if (const auto* c = std::get_if<net::IngressCopy>(&p)) {
              raw->on_ingress_copy(*c);
            }
          });
    }
    entry.replicas.push_back(std::move(ctx));
  }
  return VmHandle{vm_index};
}

NodeId Cloud::add_external_node(std::string name, PacketHandler on_packet) {
  SW_EXPECTS(on_packet != nullptr);
  const NodeId id = net_.add_node(
      std::move(name), [cb = std::move(on_packet)](const net::Frame& f) {
        if (const auto* gp = std::get_if<net::GuestPacketPayload>(&f.payload)) {
          cb(gp->pkt);
        }
      });
  external_nodes_.push_back(id);
  for (const auto& vm : vms_) {
    net_.set_link_bidirectional(id, vm.addr, cfg_.client_link);
  }
  net_.set_link_bidirectional(id, egress_node_, cfg_.client_link);
  // Baseline guests send to external nodes directly from their machine.
  for (const NodeId m : machine_nodes_) {
    net_.set_link_bidirectional(id, m, cfg_.client_link);
  }
  return id;
}

void Cloud::send_external(NodeId from, net::Packet pkt) {
  pkt.src = from;
  net::Frame f;
  f.src = from;
  f.dst = pkt.dst;
  f.size_bytes = pkt.size_bytes;
  f.payload = net::GuestPacketPayload{pkt};
  net_.send(std::move(f));
}

void Cloud::start() {
  SW_EXPECTS(!started_);
  started_ = true;
  for (auto& vm : vms_) {
    // Exchange of boot-time machine clocks; start = median (Sec. IV-A).
    std::vector<std::int64_t> clocks;
    for (int m : vm.machines) {
      clocks.push_back(machines_[static_cast<std::size_t>(m)]->local_clock().ns);
    }
    std::sort(clocks.begin(), clocks.end());
    const VirtTime start{clocks[(clocks.size() - 1) / 2]};
    for (auto& replica : vm.replicas) {
      replica->start(start);
    }
  }
}

void Cloud::run_for(Duration d) {
  SW_EXPECTS(started_);
  sim_.run_until(sim_.now() + d);
}

void Cloud::halt_all() {
  for (auto& vm : vms_) {
    for (auto& r : vm.replicas) r->halt();
  }
}

hypervisor::Machine& Cloud::machine(int idx) {
  SW_EXPECTS(idx >= 0 && idx < machine_count());
  return *machines_[static_cast<std::size_t>(idx)];
}

hypervisor::GuestContext& Cloud::replica(VmHandle vm, int replica) {
  SW_EXPECTS(vm.index < vms_.size());
  SW_EXPECTS(replica >= 0 &&
             replica < static_cast<int>(vms_[vm.index].replicas.size()));
  return *vms_[vm.index].replicas[static_cast<std::size_t>(replica)];
}

int Cloud::replicas_of(VmHandle vm) const {
  SW_EXPECTS(vm.index < vms_.size());
  return static_cast<int>(vms_[vm.index].replicas.size());
}

NodeId Cloud::vm_addr(VmHandle vm) const {
  SW_EXPECTS(vm.index < vms_.size());
  return vms_[vm.index].addr;
}

const EgressStats& Cloud::egress_stats(VmHandle vm) const {
  SW_EXPECTS(vm.index < vms_.size());
  return vms_[vm.index].egress_stats;
}

bool Cloud::replicas_deterministic(VmHandle vm) const {
  SW_EXPECTS(vm.index < vms_.size());
  const VmEntry& entry = vms_[vm.index];
  for (std::size_t i = 1; i < entry.replicas.size(); ++i) {
    const auto& a = entry.replicas[0]->output_hashes();
    const auto& b = entry.replicas[i]->output_hashes();
    const std::size_t n = std::min(a.size(), b.size());
    for (std::size_t k = 0; k < n; ++k) {
      if (a[k] != b[k]) return false;
    }
  }
  return true;
}

std::uint64_t Cloud::total_divergences() const {
  std::uint64_t total = 0;
  for (const auto& vm : vms_) {
    for (const auto& r : vm.replicas) {
      const auto& s = r->stats();
      total += s.divergence_median_passed + s.divergence_disk_late +
               s.divergence_epoch_missing;
    }
    total += vm.egress_stats.hash_mismatches;
  }
  return total;
}

void Cloud::on_machine_frame(int machine_idx, const net::Frame& frame) {
  // Reliable-multicast frames route to their group.
  if (frame.rm_group != 0) {
    const auto it = groups_.find(frame.rm_group);
    SW_ASSERT(it != groups_.end());
    it->second->on_frame(machine_nodes_[static_cast<std::size_t>(machine_idx)],
                         frame);
    return;
  }
  // Baseline direct guest packet: find the addressed VM on this machine.
  if (const auto* gp = std::get_if<net::GuestPacketPayload>(&frame.payload)) {
    const auto it = addr_to_vm_.find(gp->pkt.dst.value);
    if (it == addr_to_vm_.end()) return;
    VmEntry& entry = vms_[it->second];
    for (std::size_t r = 0; r < entry.replicas.size(); ++r) {
      if (entry.machines[r] == machine_idx) {
        entry.replicas[r]->on_direct_packet(gp->pkt);
        return;
      }
    }
  }
}

void Cloud::on_ingress_packet(std::uint32_t vm_index, const net::Packet& pkt) {
  VmEntry& entry = vms_[vm_index];
  if (cfg_.policy == Policy::kStopWatch && entry.ingress_group) {
    net::IngressCopy copy;
    copy.vm = entry.id;
    copy.copy_seq = ++entry.ingress_seq;
    copy.pkt = pkt;
    entry.ingress_group->send(entry.addr, copy,
                              pkt.size_bytes + net::kHeaderBytes);
  } else {
    // Baseline: forward to the (single) hosting machine.
    net::Frame f;
    f.src = entry.addr;
    f.dst = machine_nodes_[static_cast<std::size_t>(entry.machines[0])];
    f.size_bytes = pkt.size_bytes;
    f.payload = net::GuestPacketPayload{pkt};
    net_.send(std::move(f));
  }
}

void Cloud::on_egress_frame(const net::Frame& frame) {
  const auto* out = std::get_if<net::TunneledOutput>(&frame.payload);
  if (out == nullptr) return;
  SW_ASSERT(out->vm.value < vms_.size());
  VmEntry& entry = vms_[out->vm.value];
  auto& slot = entry.egress_slots[out->out_seq];
  if (slot.copies == 0) {
    slot.hash = out->content_hash;
  } else if (slot.hash != out->content_hash) {
    ++entry.egress_stats.hash_mismatches;
  }
  ++slot.copies;

  // Release on the ((r+1)/2)-th copy: the median emission timing.
  const int release_at = (static_cast<int>(entry.replicas.size()) + 1) / 2;
  if (!slot.released && slot.copies >= release_at) {
    slot.released = true;
    ++entry.egress_stats.packets_released;
    net::Frame f;
    f.src = egress_node_;
    f.dst = out->pkt.dst;
    f.size_bytes = out->pkt.size_bytes;
    f.payload = net::GuestPacketPayload{out->pkt};
    net_.send(std::move(f));
  }
  if (slot.copies >= static_cast<int>(entry.replicas.size())) {
    entry.egress_slots.erase(out->out_seq);
  }
}

}  // namespace stopwatch::core
