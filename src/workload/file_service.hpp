// File-download service (paper Sec. VII-C, Fig. 5).
//
// Guest side: an Apache-like server exposing the same files over an
// HTTP-like request/response protocol on TCP, and a UDP variant that
// streams the file after a single request datagram (the paper's
// demonstration that StopWatch's cost is dominated by inbound packets).
// Cold start: every request reads the file from the emulated disk.
//
// Client side: an external downloader that measures total retrieval time.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "transport/tcp.hpp"
#include "transport/udp.hpp"
#include "vm/guest.hpp"
#include "workload/external_host.hpp"
#include "workload/guest_env.hpp"

namespace stopwatch::workload {

/// Guest program: serves files over both TCP (HTTP-like) and UDP.
/// A request's app_tag carries the requested file size in bytes.
class FileServerProgram final : public vm::GuestProgram {
 public:
  struct Config {
    /// Instructions to parse/handle one request.
    std::uint64_t request_handling_instr{80'000};
    /// Instructions per 4 KiB of response preparation (checksums, copies).
    std::uint64_t per_4k_instr{2'000};
    /// Bytes per disk read (sequential chunks; cold start). Sized so one
    /// chunk's seek + transfer stays under the default Δd (Sec. V: the
    /// transfer must complete by the virtual delivery time).
    std::uint32_t disk_chunk{192 * 1024};
  };

  FileServerProgram() : FileServerProgram(Config{}) {}
  explicit FileServerProgram(Config cfg) : cfg_(cfg) {}

  void on_boot(vm::GuestApi& api) override;
  void on_timer_tick(vm::GuestApi& api, std::uint64_t tick) override;
  void on_packet(vm::GuestApi& api, const net::Packet& pkt) override;

 private:
  void serve_tcp(NodeId peer, std::uint32_t flow, std::uint32_t msg_id,
                 std::uint32_t file_size);
  void serve_udp(NodeId peer, std::uint32_t flow, std::uint32_t msg_id,
                 std::uint32_t file_size);
  /// Reads `remaining` bytes in chunks, then runs `done`.
  void read_file(std::uint32_t remaining, std::function<void()> done);

  Config cfg_;
  vm::GuestApi* api_{nullptr};
  std::unique_ptr<GuestTransportEnv> env_;
  std::unique_ptr<transport::TcpEndpoint> tcp_;
  std::unique_ptr<transport::UdpEndpoint> udp_;
};

/// External client that downloads one file and reports the latency.
class FileDownloadClient {
 public:
  enum class Protocol { kHttpTcp, kUdp };

  FileDownloadClient(core::Cloud& cloud, std::string name, NodeId server_addr,
                     Protocol protocol);

  /// Starts one download of `file_size` bytes; `done(latency)` fires on
  /// completion. Each download uses a fresh flow (fresh TCP connection —
  /// cold start, as in the paper).
  void download(std::uint32_t file_size, std::function<void(Duration)> done);

  [[nodiscard]] const transport::TcpStats& tcp_stats() const {
    return tcp_->stats();
  }

 private:
  core::Cloud* cloud_;
  ExternalHost host_;
  NodeId server_;
  Protocol protocol_;
  std::unique_ptr<transport::TcpEndpoint> tcp_;
  std::unique_ptr<transport::UdpEndpoint> udp_;
  std::uint32_t next_flow_{1};
  std::uint32_t next_msg_{1};

  struct Pending {
    RealTime started{};
    std::function<void(Duration)> done;
  };
  std::map<std::uint32_t, Pending> pending_;  // by msg_id
};

}  // namespace stopwatch::workload
