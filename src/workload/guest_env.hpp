// Adapter: run transport endpoints *inside* a guest VM.
//
// Everything is expressed in guest-visible terms — virtual time for clocks
// and timers, the VMM device model for packet egress — so protocol behaviour
// inside the guest stays deterministic across replicas.
#pragma once

#include "transport/env.hpp"
#include "vm/guest.hpp"

namespace stopwatch::workload {

class GuestTransportEnv final : public transport::TransportEnv {
 public:
  explicit GuestTransportEnv(vm::GuestApi& api) : api_(&api) {}

  void send(net::Packet pkt) override { api_->send_packet(pkt); }
  void set_timer(Duration delay, std::function<void()> cb) override {
    api_->set_timer(delay, std::move(cb));
  }
  [[nodiscard]] std::int64_t now_ns() const override { return api_->now().ns; }
  [[nodiscard]] NodeId local_addr() const override { return api_->self_addr(); }

 private:
  vm::GuestApi* api_;
};

}  // namespace stopwatch::workload
