#include "workload/nfs.hpp"

#include <utility>

#include "common/contracts.hpp"

namespace stopwatch::workload {

std::vector<NfsMixEntry> paper_nfs_mix() {
  return {
      {NfsOp::kSetattr, 0.1137}, {NfsOp::kLookup, 0.2407},
      {NfsOp::kWrite, 0.1192},   {NfsOp::kGetattr, 0.0793},
      {NfsOp::kRead, 0.3234},    {NfsOp::kCreate, 0.1237},
  };
}

void NfsServerProgram::on_boot(vm::GuestApi& api) {
  api_ = &api;
  env_ = std::make_unique<GuestTransportEnv>(api);
  tcp_ = std::make_unique<transport::TcpEndpoint>(*env_);
  tcp_->listen([this](NodeId peer, std::uint32_t flow, std::uint32_t msg_id,
                      std::uint32_t /*len*/, std::uint32_t app_tag) {
    handle(peer, flow, msg_id, static_cast<NfsOp>(app_tag));
  });
}

void NfsServerProgram::on_packet(vm::GuestApi&, const net::Packet& pkt) {
  tcp_->on_packet(pkt);
}

void NfsServerProgram::respond(NodeId peer, std::uint32_t flow,
                               std::uint32_t msg_id, std::uint32_t bytes,
                               NfsOp op) {
  tcp_->send_message(peer, flow, msg_id, bytes,
                     static_cast<std::uint32_t>(op));
}

void NfsServerProgram::handle(NodeId peer, std::uint32_t flow,
                              std::uint32_t msg_id, NfsOp op) {
  api_->compute(cfg_.rpc_parse_instr, [this, peer, flow, msg_id, op] {
    switch (op) {
      case NfsOp::kGetattr:
        api_->compute(cfg_.metadata_instr, [this, peer, flow, msg_id, op] {
          respond(peer, flow, msg_id, 128, op);
        });
        return;
      case NfsOp::kLookup:
        api_->compute(cfg_.metadata_instr, [this, peer, flow, msg_id, op] {
          respond(peer, flow, msg_id, 256, op);
        });
        return;
      case NfsOp::kRead: {
        const bool miss = api_->det_rng().chance(cfg_.read_miss_rate);
        if (miss) {
          api_->disk_read(cfg_.read_bytes, [this, peer, flow, msg_id, op] {
            respond(peer, flow, msg_id, cfg_.read_bytes + 128, op);
          });
        } else {
          api_->compute(cfg_.metadata_instr, [this, peer, flow, msg_id, op] {
            respond(peer, flow, msg_id, cfg_.read_bytes + 128, op);
          });
        }
        return;
      }
      case NfsOp::kWrite:
        if (cfg_.async_writes) {
          api_->disk_write(cfg_.write_bytes, [] {});
          api_->compute(cfg_.metadata_instr, [this, peer, flow, msg_id, op] {
            respond(peer, flow, msg_id, 136, op);
          });
        } else {
          // NFSv4 stable write: hit the disk before acknowledging.
          api_->disk_write(cfg_.write_bytes, [this, peer, flow, msg_id, op] {
            respond(peer, flow, msg_id, 136, op);
          });
        }
        return;
      case NfsOp::kSetattr:
        if (cfg_.async_writes) {
          api_->disk_write(512, [] {});
          api_->compute(cfg_.metadata_instr, [this, peer, flow, msg_id, op] {
            respond(peer, flow, msg_id, 128, op);
          });
        } else {
          api_->disk_write(512, [this, peer, flow, msg_id, op] {
            respond(peer, flow, msg_id, 128, op);
          });
        }
        return;
      case NfsOp::kCreate:
        if (cfg_.async_writes) {
          api_->disk_write(1024, [] {});
          api_->compute(cfg_.metadata_instr, [this, peer, flow, msg_id, op] {
            respond(peer, flow, msg_id, 160, op);
          });
        } else {
          api_->disk_write(1024, [this, peer, flow, msg_id, op] {
            respond(peer, flow, msg_id, 160, op);
          });
        }
        return;
    }
  });
}

NfsLoadGenerator::NfsLoadGenerator(core::Cloud& cloud, std::string name,
                                   NodeId server, int processes,
                                   double rate_per_second,
                                   std::vector<NfsMixEntry> mix,
                                   std::uint64_t seed)
    : cloud_(&cloud),
      host_(cloud, std::move(name)),
      server_(server),
      processes_(processes),
      rate_per_second_(rate_per_second),
      mix_(std::move(mix)),
      rng_(seed) {
  SW_EXPECTS(processes_ >= 1);
  SW_EXPECTS(rate_per_second_ > 0.0);
  SW_EXPECTS(!mix_.empty());
  op_events_.resize(static_cast<std::size_t>(processes_));
  for (const auto& e : mix_) mix_total_ += e.weight;

  tcp_ = std::make_unique<transport::TcpEndpoint>(host_);
  host_.add_packet_handler(
      [this](const net::Packet& pkt) { tcp_->on_packet(pkt); });
  tcp_->set_message_handler([this](NodeId, std::uint32_t, std::uint32_t msg_id,
                                   std::uint32_t, std::uint32_t) {
    const auto it = inflight_.find(msg_id);
    if (it == inflight_.end()) return;
    latencies_ms_.push_back(
        (cloud_->simulator().now() - it->second).to_seconds() * 1e3);
    inflight_.erase(it);
    ++ops_completed_;
  });
}

void NfsLoadGenerator::start(Duration warmup) {
  for (int p = 0; p < processes_; ++p) {
    tcp_->connect(server_, static_cast<std::uint32_t>(p + 1),
                  [this, warmup](NodeId, std::uint32_t) {
                    if (++connected_ == processes_) {
                      issuing_ = true;
                      cloud_->simulator().schedule_after(warmup, [this] {
                        for (int q = 0; q < processes_; ++q) {
                          schedule_next_op(q);
                        }
                      });
                    }
                  });
  }
}

NfsOp NfsLoadGenerator::sample_op() {
  double u = rng_.uniform(0.0, mix_total_);
  for (const auto& e : mix_) {
    if (u < e.weight) return e.op;
    u -= e.weight;
  }
  return mix_.back().op;
}

std::uint32_t NfsLoadGenerator::request_bytes(NfsOp op) {
  switch (op) {
    case NfsOp::kWrite:
      return 8192 + 160;  // payload + RPC header
    case NfsOp::kCreate:
      return 320;
    default:
      return 160;
  }
}

void NfsLoadGenerator::schedule_next_op(int process) {
  const double per_process_rate = rate_per_second_ / processes_;
  const double wait_s = rng_.exponential(per_process_rate);
  const Duration wait = Duration::from_seconds_f(wait_s);
  auto& ev = op_events_[static_cast<std::size_t>(process)];
  sim::Simulator& sim = cloud_->simulator();
  if (ev && sim.is_executing(*ev)) {
    // Called from the tail of this process's own op event: the open-loop
    // issue chain re-arms one arena slot per process.
    sim.reschedule_after(*ev, wait);
  } else {
    ev = sim.schedule_after(wait, [this, process] { issue_op(process); });
  }
}

void NfsLoadGenerator::issue_op(int process) {
  if (!issuing_) return;
  const NfsOp op = sample_op();
  const std::uint32_t msg_id = next_msg_++;
  inflight_[msg_id] = cloud_->simulator().now();
  ++ops_issued_;
  tcp_->send_message(server_, static_cast<std::uint32_t>(process + 1), msg_id,
                     request_bytes(op), static_cast<std::uint32_t>(op));
  schedule_next_op(process);
}

}  // namespace stopwatch::workload
