// NFS workload (paper Sec. VII-C, Fig. 6).
//
// Guest side: an NFSv4-like server over TCP whose request handlers mix pure
// CPU work (getattr/lookup) with disk I/O (read on cache miss, write/
// setattr/create). Client side: an nhfsstone-like open-loop generator —
// five client processes issuing operations at a constant aggregate rate
// with the paper's measured operation mix:
//   11.37% setattr, 24.07% lookup, 11.92% write, 7.93% getattr,
//   32.34% read, 12.37% create.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "transport/tcp.hpp"
#include "vm/guest.hpp"
#include "workload/external_host.hpp"
#include "workload/guest_env.hpp"

namespace stopwatch::workload {

enum class NfsOp : std::uint32_t {
  kSetattr = 1,
  kLookup = 2,
  kWrite = 3,
  kGetattr = 4,
  kRead = 5,
  kCreate = 6,
};

/// One (op, probability) entry of the operation mix.
struct NfsMixEntry {
  NfsOp op;
  double weight;
};

/// The paper's extracted mix (Sec. VII-C footnote 6).
[[nodiscard]] std::vector<NfsMixEntry> paper_nfs_mix();

/// Guest program: the NFS server.
class NfsServerProgram final : public vm::GuestProgram {
 public:
  struct Config {
    std::uint64_t rpc_parse_instr{50'000};
    std::uint64_t metadata_instr{120'000};
    std::uint32_t read_bytes{8192};
    std::uint32_t write_bytes{8192};
    /// Probability a read misses the page cache and touches disk.
    double read_miss_rate{0.25};
    /// Write-back caching: acknowledge writes once queued (the disk write
    /// still happens and still generates its completion interrupt).
    bool async_writes{true};
  };

  NfsServerProgram() : NfsServerProgram(Config{}) {}
  explicit NfsServerProgram(Config cfg) : cfg_(cfg) {}

  void on_boot(vm::GuestApi& api) override;
  void on_timer_tick(vm::GuestApi&, std::uint64_t) override {}
  void on_packet(vm::GuestApi&, const net::Packet& pkt) override;

 private:
  void handle(NodeId peer, std::uint32_t flow, std::uint32_t msg_id, NfsOp op);
  void respond(NodeId peer, std::uint32_t flow, std::uint32_t msg_id,
               std::uint32_t bytes, NfsOp op);

  Config cfg_;
  vm::GuestApi* api_{nullptr};
  std::unique_ptr<GuestTransportEnv> env_;
  std::unique_ptr<transport::TcpEndpoint> tcp_;
};

/// nhfsstone-like load generator: `processes` client processes sharing one
/// external host, issuing ops open-loop at `rate_per_second` total.
class NfsLoadGenerator {
 public:
  NfsLoadGenerator(core::Cloud& cloud, std::string name, NodeId server,
                   int processes, double rate_per_second,
                   std::vector<NfsMixEntry> mix, std::uint64_t seed);

  /// Connects all processes, then begins issuing after `warmup`.
  void start(Duration warmup = Duration::millis(50));

  /// Stops issuing new operations (in-flight operations still complete).
  /// Lets leakage windows run several single-op generators back to back
  /// without their load bleeding across window boundaries.
  void stop() { issuing_ = false; }

  [[nodiscard]] const std::vector<double>& latencies_ms() const {
    return latencies_ms_;
  }
  [[nodiscard]] std::uint64_t ops_issued() const { return ops_issued_; }
  [[nodiscard]] std::uint64_t ops_completed() const { return ops_completed_; }
  [[nodiscard]] const transport::TcpStats& tcp_stats() const {
    return tcp_->stats();
  }

 private:
  void schedule_next_op(int process);
  void issue_op(int process);
  [[nodiscard]] NfsOp sample_op();
  [[nodiscard]] static std::uint32_t request_bytes(NfsOp op);

  core::Cloud* cloud_;
  ExternalHost host_;
  NodeId server_;
  int processes_;
  double rate_per_second_;
  std::vector<NfsMixEntry> mix_;
  double mix_total_{0.0};
  Rng rng_;
  std::unique_ptr<transport::TcpEndpoint> tcp_;
  std::uint32_t next_msg_{1};
  std::map<std::uint32_t, RealTime> inflight_;  // msg_id -> issue time
  std::vector<double> latencies_ms_;
  std::uint64_t ops_issued_{0};
  std::uint64_t ops_completed_{0};
  int connected_{0};
  bool issuing_{false};
  /// Per-process issue timers (one re-armed arena slot each).
  std::vector<std::optional<sim::EventId>> op_events_;
};

}  // namespace stopwatch::workload
