// Timing side-channel workloads (paper Secs. III, V-B; Figs. 1 and 4).
//
//  * AttackerProbeProgram — the attacker VM: timestamps every packet
//    delivery with its guest-visible clock (virtual under StopWatch, real
//    under baseline Xen) and exposes the observation series.
//  * VictimServerProgram — the victim VM: a duty-cycled file server whose
//    bursts of CPU, disk, and network output load the host it shares with
//    one attacker replica.
//  * BackgroundBroadcaster — the campus-subnet broadcast traffic (ARP etc.,
//    50-100 packets/s in the paper's testbed) that gives the attacker a
//    steady stream of deliveries to time.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/cloud.hpp"
#include "vm/guest.hpp"

namespace stopwatch::workload {

/// Attacker guest: records the guest-clock time of every packet delivery.
class AttackerProbeProgram final : public vm::GuestProgram {
 public:
  void on_boot(vm::GuestApi&) override {}
  void on_timer_tick(vm::GuestApi&, std::uint64_t) override {}
  void on_packet(vm::GuestApi& api, const net::Packet&) override {
    observations_ns_.push_back(api.now().ns);
  }

  [[nodiscard]] const std::vector<std::int64_t>& observations_ns() const {
    return observations_ns_;
  }

  /// Inter-observation deltas in milliseconds (the attacker's measurement
  /// series for the chi-squared test).
  [[nodiscard]] std::vector<double> inter_arrival_ms() const {
    std::vector<double> out;
    for (std::size_t i = 1; i < observations_ns_.size(); ++i) {
      out.push_back(static_cast<double>(observations_ns_[i] -
                                        observations_ns_[i - 1]) /
                    1e6);
    }
    return out;
  }

 private:
  std::vector<std::int64_t> observations_ns_;
};

/// Victim guest: duty-cycled file serving (compute + disk + output bursts).
class VictimServerProgram final : public vm::GuestProgram {
 public:
  struct Config {
    /// Virtual-time burst / idle-gap durations.
    Duration burst{Duration::millis(60)};
    Duration gap{Duration::millis(25)};
    /// Work unit within a burst.
    std::uint64_t unit_instr{2'000'000};
    std::uint32_t disk_bytes{64 * 1024};
    double disk_probability{0.30};
    /// Response packets emitted per work unit.
    int packets_per_unit{2};
    std::uint32_t packet_bytes{1400};
    NodeId sink{};
  };

  explicit VictimServerProgram(Config cfg) : cfg_(cfg) {}

  void on_boot(vm::GuestApi& api) override;
  void on_timer_tick(vm::GuestApi&, std::uint64_t) override {}
  void on_packet(vm::GuestApi&, const net::Packet&) override {}

 private:
  void start_burst();
  void work_unit(std::int64_t burst_end_ns);

  Config cfg_;
  vm::GuestApi* api_{nullptr};
  std::uint32_t out_seq_{0};
};

/// External node emitting background traffic toward a VM address: Poisson
/// bursts (like subnet ARP/broadcast storms) of 1-5 packets spaced
/// sub-millisecond, at `rate_hz` packets/s on average.
class BackgroundBroadcaster {
 public:
  BackgroundBroadcaster(core::Cloud& cloud, std::string name, NodeId target,
                        double rate_hz, std::uint64_t seed);

  void start();

  [[nodiscard]] std::uint64_t packets_sent() const { return sent_; }

 private:
  [[nodiscard]] Duration next_burst_wait();
  void on_burst();

  core::Cloud* cloud_;
  NodeId self_{};
  NodeId target_;
  double rate_hz_;
  Rng rng_;
  std::uint64_t sent_{0};
  std::uint32_t seq_{0};
  /// The burst timer: one simulator arena slot, re-armed per burst.
  std::optional<sim::EventId> burst_event_;
};

}  // namespace stopwatch::workload
