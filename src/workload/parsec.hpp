// PARSEC-like computational workloads (paper Sec. VII-D, Fig. 7).
//
// Each application is modeled by its two load-bearing characteristics from
// the paper's measurements: total computation and the number/size of disk
// operations spread through the run (the paper shows StopWatch's overhead
// on these applications is directly proportional to their disk-interrupt
// counts). The model runs unpack -> interleaved compute/disk -> cleanup and
// emits one completion packet, whose egress timing defines the run time an
// external observer measures.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "vm/guest.hpp"

namespace stopwatch::workload {

struct ParsecAppSpec {
  std::string name;
  /// Total computation (instructions at the nominal 1e9 ips).
  std::uint64_t compute_instr{0};
  /// Disk operations spread uniformly through the run.
  int disk_ops{0};
  std::uint32_t bytes_per_op{32 * 1024};
  /// Fraction of disk ops that are writes (dedup-style output).
  double write_fraction{0.3};
  /// Paper-reported figures (for EXPERIMENTS.md comparison).
  double paper_baseline_ms{0.0};
  double paper_stopwatch_ms{0.0};
  int paper_disk_interrupts{0};
};

/// The five applications used in the paper, with compute budgets calibrated
/// against Fig. 7(a)'s baseline runtimes and Fig. 7(b)'s disk interrupts.
[[nodiscard]] const std::vector<ParsecAppSpec>& parsec_suite();

/// Guest program running one PARSEC-like app, then reporting completion to
/// `collector` (app_tag = run id).
class ParsecProgram final : public vm::GuestProgram {
 public:
  ParsecProgram(ParsecAppSpec spec, NodeId collector, std::uint32_t run_id);

  void on_boot(vm::GuestApi& api) override;
  void on_timer_tick(vm::GuestApi&, std::uint64_t) override {}
  void on_packet(vm::GuestApi&, const net::Packet&) override {}

 private:
  void run_phase(int ops_left);
  void finish();

  ParsecAppSpec spec_;
  NodeId collector_;
  std::uint32_t run_id_;
  vm::GuestApi* api_{nullptr};
  std::uint64_t instr_per_phase_{0};
};

}  // namespace stopwatch::workload
