#include "workload/parsec.hpp"

#include "common/contracts.hpp"

namespace stopwatch::workload {

const std::vector<ParsecAppSpec>& parsec_suite() {
  // compute_instr calibrated so that at 1e9 instructions/s and the PARSEC
  // disk profile (0.5-3 ms positioning + 80 MB/s transfer, ~2.2 ms per op),
  // baseline runtimes land near the paper's Fig. 7(a) measurements.
  static const std::vector<ParsecAppSpec> suite = {
      {"ferret", 100'000'000, 31, 32 * 1024, 0.2, 171.0, 350.0, 31},
      {"blackscholes", 93'000'000, 38, 32 * 1024, 0.2, 177.0, 401.0, 38},
      {"canneal", 1'126'000'000, 183, 32 * 1024, 0.2, 1530.0, 3230.0, 183},
      {"dedup", 3'084'000'000, 293, 32 * 1024, 0.5, 3730.0, 5754.0, 293},
      {"streamcluster", 230'000'000, 27, 32 * 1024, 0.2, 290.0, 382.0, 27},
  };
  return suite;
}

ParsecProgram::ParsecProgram(ParsecAppSpec spec, NodeId collector,
                             std::uint32_t run_id)
    : spec_(std::move(spec)), collector_(collector), run_id_(run_id) {
  SW_EXPECTS(spec_.disk_ops >= 1);
  SW_EXPECTS(spec_.compute_instr >= 1);
}

void ParsecProgram::on_boot(vm::GuestApi& api) {
  api_ = &api;
  instr_per_phase_ =
      spec_.compute_instr / static_cast<std::uint64_t>(spec_.disk_ops);
  if (instr_per_phase_ == 0) instr_per_phase_ = 1;
  // Initial configuration / directory setup, then the main loop.
  api_->compute(2'000'000, [this] { run_phase(spec_.disk_ops); });
}

void ParsecProgram::run_phase(int ops_left) {
  if (ops_left == 0) {
    // Cleanup of temporary files, then report completion.
    api_->compute(1'000'000, [this] { finish(); });
    return;
  }
  api_->compute(instr_per_phase_, [this, ops_left] {
    const bool write = api_->det_rng().chance(spec_.write_fraction);
    const auto cont = [this, ops_left] { run_phase(ops_left - 1); };
    if (write) {
      api_->disk_write(spec_.bytes_per_op, cont);
    } else {
      api_->disk_read(spec_.bytes_per_op, cont);
    }
  });
}

void ParsecProgram::finish() {
  net::Packet done;
  done.dst = collector_;
  done.kind = net::PacketKind::kData;
  done.size_bytes = 128;
  done.msg_id = run_id_;
  done.msg_len = 128;
  done.app_tag = run_id_;
  api_->send_packet(done);
}

}  // namespace stopwatch::workload
