#include "workload/timing.hpp"

#include <utility>

#include "common/contracts.hpp"

namespace stopwatch::workload {

void VictimServerProgram::on_boot(vm::GuestApi& api) {
  api_ = &api;
  start_burst();
}

void VictimServerProgram::start_burst() {
  const std::int64_t end = api_->now().ns + cfg_.burst.ns;
  work_unit(end);
}

void VictimServerProgram::work_unit(std::int64_t burst_end_ns) {
  api_->compute(cfg_.unit_instr, [this, burst_end_ns] {
    // Emit response traffic.
    for (int i = 0; i < cfg_.packets_per_unit; ++i) {
      net::Packet pkt;
      pkt.dst = cfg_.sink;
      pkt.kind = net::PacketKind::kData;
      pkt.seq = ++out_seq_;
      pkt.size_bytes = cfg_.packet_bytes;
      pkt.msg_len = cfg_.packet_bytes;
      api_->send_packet(pkt);
    }
    // Disk reads proceed asynchronously (a real file server overlaps I/O
    // with serving other connections), so the burst keeps the vCPU busy.
    if (api_->det_rng().chance(cfg_.disk_probability)) {
      api_->disk_read(cfg_.disk_bytes, [] {});
    }
    if (api_->now().ns < burst_end_ns) {
      work_unit(burst_end_ns);
    } else {
      api_->set_timer(cfg_.gap, [this] { start_burst(); });
    }
  });
}

BackgroundBroadcaster::BackgroundBroadcaster(core::Cloud& cloud,
                                             std::string name, NodeId target,
                                             double rate_hz,
                                             std::uint64_t seed)
    : cloud_(&cloud), target_(target), rate_hz_(rate_hz), rng_(seed) {
  SW_EXPECTS(rate_hz > 0.0);
  self_ = cloud_->add_external_node(std::move(name),
                                    [](const net::Packet&) {});
}

void BackgroundBroadcaster::start() {
  burst_event_ = cloud_->simulator().schedule_after(next_burst_wait(),
                                                    [this] { on_burst(); });
}

Duration BackgroundBroadcaster::next_burst_wait() {
  // Bursts of 1-5 packets; mean burst size 3 -> burst rate = rate / 3.
  const double burst_rate = rate_hz_ / 3.0;
  return Duration::from_seconds_f(rng_.exponential(burst_rate));
}

void BackgroundBroadcaster::on_burst() {
  const auto burst = rng_.uniform_int(1, 5);
  Duration offset{};
  for (std::int64_t i = 0; i < burst; ++i) {
    cloud_->simulator().schedule_after(offset, [this] {
      net::Packet pkt;
      pkt.dst = target_;
      pkt.kind = net::PacketKind::kRequest;
      pkt.seq = ++seq_;
      pkt.size_bytes = 80;
      cloud_->send_external(self_, pkt);
      ++sent_;
    });
    offset += Duration{rng_.uniform_int(100'000, 900'000)};  // 0.1-0.9ms
  }
  // The burst loop re-arms its own arena slot for the next burst.
  cloud_->simulator().reschedule_after(*burst_event_, next_burst_wait());
}

}  // namespace stopwatch::workload
