#include "workload/file_service.hpp"

#include <algorithm>
#include <utility>

#include "common/contracts.hpp"

namespace stopwatch::workload {

void FileServerProgram::on_boot(vm::GuestApi& api) {
  api_ = &api;
  env_ = std::make_unique<GuestTransportEnv>(api);
  tcp_ = std::make_unique<transport::TcpEndpoint>(*env_);
  udp_ = std::make_unique<transport::UdpEndpoint>(*env_);

  tcp_->listen([this](NodeId peer, std::uint32_t flow, std::uint32_t msg_id,
                      std::uint32_t /*msg_len*/, std::uint32_t app_tag) {
    serve_tcp(peer, flow, msg_id, app_tag);
  });
  udp_->set_message_handler([this](NodeId peer, std::uint32_t flow,
                                   std::uint32_t msg_id,
                                   std::uint32_t /*msg_len*/,
                                   std::uint32_t app_tag) {
    serve_udp(peer, flow, msg_id, app_tag);
  });
}

void FileServerProgram::on_timer_tick(vm::GuestApi&, std::uint64_t) {}

void FileServerProgram::on_packet(vm::GuestApi&, const net::Packet& pkt) {
  // UDP requests use PacketKind::kRequest / flow >= 0x8000'0000 by
  // convention; everything else is TCP.
  if (pkt.kind == net::PacketKind::kRequest ||
      (pkt.kind == net::PacketKind::kNak && pkt.flow >= 0x80000000u)) {
    udp_->on_packet(pkt);
    return;
  }
  tcp_->on_packet(pkt);
}

void FileServerProgram::read_file(std::uint32_t remaining,
                                  std::function<void()> done) {
  if (remaining == 0) {
    done();
    return;
  }
  const std::uint32_t chunk = std::min(cfg_.disk_chunk, remaining);
  api_->disk_read(chunk, [this, remaining, chunk, done = std::move(done)] {
    read_file(remaining - chunk, done);
  });
}

void FileServerProgram::serve_tcp(NodeId peer, std::uint32_t flow,
                                  std::uint32_t msg_id,
                                  std::uint32_t file_size) {
  SW_EXPECTS(file_size >= 1);
  api_->compute(cfg_.request_handling_instr, [this, peer, flow, msg_id,
                                              file_size] {
    read_file(file_size, [this, peer, flow, msg_id, file_size] {
      const std::uint64_t prep =
          cfg_.per_4k_instr * ((file_size + 4095) / 4096) + 1;
      api_->compute(prep, [this, peer, flow, msg_id, file_size] {
        tcp_->send_message(peer, flow, msg_id, file_size, file_size);
      });
    });
  });
}

void FileServerProgram::serve_udp(NodeId peer, std::uint32_t flow,
                                  std::uint32_t msg_id,
                                  std::uint32_t file_size) {
  SW_EXPECTS(file_size >= 1);
  api_->compute(cfg_.request_handling_instr, [this, peer, flow, msg_id,
                                              file_size] {
    read_file(file_size, [this, peer, flow, msg_id, file_size] {
      const std::uint64_t prep =
          cfg_.per_4k_instr * ((file_size + 4095) / 4096) + 1;
      api_->compute(prep, [this, peer, flow, msg_id, file_size] {
        udp_->send_message(peer, flow, msg_id, file_size, file_size);
      });
    });
  });
}

FileDownloadClient::FileDownloadClient(core::Cloud& cloud, std::string name,
                                       NodeId server_addr, Protocol protocol)
    : cloud_(&cloud),
      host_(cloud, std::move(name)),
      server_(server_addr),
      protocol_(protocol) {
  tcp_ = std::make_unique<transport::TcpEndpoint>(host_);
  udp_ = std::make_unique<transport::UdpEndpoint>(host_);
  host_.add_packet_handler([this](const net::Packet& pkt) {
    if (protocol_ == Protocol::kHttpTcp) {
      tcp_->on_packet(pkt);
    } else {
      udp_->on_packet(pkt);
    }
  });

  const auto on_response = [this](NodeId, std::uint32_t, std::uint32_t msg_id,
                                  std::uint32_t, std::uint32_t) {
    const auto it = pending_.find(msg_id);
    if (it == pending_.end()) return;
    const Duration latency =
        cloud_->simulator().now() - it->second.started;
    auto done = std::move(it->second.done);
    pending_.erase(it);
    if (done) done(latency);
  };
  tcp_->set_message_handler(on_response);
  udp_->set_message_handler(on_response);
}

void FileDownloadClient::download(std::uint32_t file_size,
                                  std::function<void(Duration)> done) {
  SW_EXPECTS(file_size >= 1);
  const std::uint32_t msg_id = next_msg_++;
  pending_[msg_id] = Pending{cloud_->simulator().now(), std::move(done)};

  if (protocol_ == Protocol::kHttpTcp) {
    const std::uint32_t flow = next_flow_++;
    tcp_->connect(server_, flow,
                  [this, flow, msg_id, file_size](NodeId peer, std::uint32_t) {
                    // HTTP GET: ~200-byte request; app_tag = file size.
                    tcp_->send_message(peer, flow, msg_id, 200, file_size);
                  });
  } else {
    // Single request datagram; response streams back over UDP.
    net::Packet req;
    req.dst = server_;
    req.kind = net::PacketKind::kRequest;
    req.flow = 0x80000000u | next_flow_++;
    req.msg_id = msg_id;
    req.msg_len = 64;
    req.size_bytes = 64 + net::kHeaderBytes;
    req.app_tag = file_size;
    host_.send(req);
  }
}

}  // namespace stopwatch::workload
