// External endpoints (clients, collectors) attached to the cloud over the
// client link — the paper's "Lenovo T400 on campus wireless".
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/cloud.hpp"
#include "transport/env.hpp"

namespace stopwatch::workload {

/// A host outside the cloud: owns a network address, real-time timers, and
/// a packet dispatch point that transports and application code share.
class ExternalHost final : public transport::TransportEnv {
 public:
  using PacketHandler = std::function<void(const net::Packet&)>;

  ExternalHost(core::Cloud& cloud, std::string name) : cloud_(&cloud) {
    addr_ = cloud_->add_external_node(
        std::move(name), [this](const net::Packet& pkt) {
          for (const auto& h : handlers_) h(pkt);
        });
  }

  ExternalHost(const ExternalHost&) = delete;
  ExternalHost& operator=(const ExternalHost&) = delete;

  /// Registers a packet consumer (e.g., a TcpEndpoint's on_packet).
  void add_packet_handler(PacketHandler h) {
    handlers_.push_back(std::move(h));
  }

  // TransportEnv:
  void send(net::Packet pkt) override { cloud_->send_external(addr_, pkt); }
  void set_timer(Duration delay, std::function<void()> cb) override {
    // The std::function itself (32 bytes) rides the event record's inline
    // buffer; only captures beyond the function's own SBO still allocate.
    cloud_->simulator().schedule_after(delay, std::move(cb));
  }
  [[nodiscard]] std::int64_t now_ns() const override {
    return cloud_->simulator().now().ns;
  }
  [[nodiscard]] NodeId local_addr() const override { return addr_; }

 private:
  core::Cloud* cloud_;
  NodeId addr_{};
  std::vector<PacketHandler> handlers_;
};

}  // namespace stopwatch::workload
