#include "vm/guest.hpp"

#include <utility>

#include "common/contracts.hpp"

namespace stopwatch::vm {

GuestVm::GuestVm(VmId id, NodeId self_addr,
                 std::unique_ptr<GuestProgram> program, std::uint64_t det_seed,
                 std::function<VirtTime()> clock)
    : id_(id),
      self_addr_(self_addr),
      program_(std::move(program)),
      det_rng_(det_seed),
      clock_(std::move(clock)) {
  SW_EXPECTS(program_ != nullptr);
  SW_EXPECTS(clock_ != nullptr);
}

void GuestVm::boot() {
  SW_EXPECTS(!booted_);
  booted_ = true;
  program_->on_boot(*this);
  ensure_runnable();
}

std::uint64_t GuestVm::instr_to_boundary() const {
  SW_EXPECTS(!run_queue_.empty());
  return run_queue_.front().remaining;
}

void GuestVm::ensure_runnable() {
  if (run_queue_.empty()) {
    run_queue_.push_back(Task{kIdleChunkInstr, nullptr, true});
  }
}

void GuestVm::advance(std::uint64_t n) {
  SW_EXPECTS(booted_);
  SW_EXPECTS(staged_handlers_.empty());  // commit_injections() before running
  SW_EXPECTS(!run_queue_.empty());
  SW_EXPECTS(n >= 1 && n <= run_queue_.front().remaining);
  instr_ += n;
  Task& task = run_queue_.front();
  task.remaining -= n;
  if (task.remaining == 0) {
    // Move the completion out before popping: it may enqueue tasks.
    auto done = std::move(task.on_complete);
    run_queue_.pop_front();
    if (done) done();
    ensure_runnable();
  }
}

bool GuestVm::is_idle() const {
  return run_queue_.size() == 1 && run_queue_.front().idle;
}

void GuestVm::stage_handler(std::uint64_t cost, std::function<void()> body) {
  staged_handlers_.push_back(Task{cost, std::move(body), false});
}

void GuestVm::commit_injections() {
  // Handlers preempt queued work (but not partially executed instructions —
  // injection only happens at VM exits, which are instruction boundaries
  // for the current slice). Reverse push_front preserves injection order.
  for (auto it = staged_handlers_.rbegin(); it != staged_handlers_.rend();
       ++it) {
    run_queue_.push_front(std::move(*it));
  }
  staged_handlers_.clear();
}

void GuestVm::inject_timer_tick() {
  ++counters_.timer_ticks;
  const std::uint64_t tick = ++timer_tick_count_;
  stage_handler(kIrqHandlerInstr,
                [this, tick] { program_->on_timer_tick(*this, tick); });
}

void GuestVm::inject_net_packet(const net::Packet& pkt) {
  ++counters_.net_interrupts;
  stage_handler(kIrqHandlerInstr,
                [this, pkt] { program_->on_packet(*this, pkt); });
}

void GuestVm::inject_disk_complete(std::uint64_t request_id) {
  ++counters_.disk_interrupts;
  stage_handler(kIrqHandlerInstr, [this, request_id] {
    const auto it = disk_waiters_.find(request_id);
    SW_ASSERT(it != disk_waiters_.end());
    auto done = std::move(it->second);
    disk_waiters_.erase(it);
    if (done) done();
  });
}

void GuestVm::fire_due_timers() {
  const std::int64_t now_ns = clock_().ns;
  while (!timers_.empty() && timers_.begin()->first <= now_ns) {
    auto cb = std::move(timers_.begin()->second);
    timers_.erase(timers_.begin());
    // Timer callbacks run as (cheap) softirq-like handlers.
    stage_handler(500, std::move(cb));
  }
}

std::vector<GuestIoOp> GuestVm::drain_io_ops() {
  std::vector<GuestIoOp> out;
  out.swap(pending_io_);
  return out;
}

void GuestVm::compute(std::uint64_t instr, std::function<void()> done) {
  SW_EXPECTS(instr >= 1);
  run_queue_.push_back(Task{instr, std::move(done), false});
  // Drop a pending idle chunk so new work starts at the next boundary.
  if (run_queue_.size() >= 2 && run_queue_.front().idle &&
      run_queue_.front().remaining == kIdleChunkInstr) {
    run_queue_.pop_front();
  }
}

void GuestVm::disk_read(std::uint32_t bytes, std::function<void()> done) {
  const std::uint64_t id = next_disk_request_++;
  disk_waiters_.emplace(id, std::move(done));
  pending_io_.push_back(DiskReadOp{id, bytes});
  ++counters_.disk_requests;
}

void GuestVm::disk_write(std::uint32_t bytes, std::function<void()> done) {
  const std::uint64_t id = next_disk_request_++;
  disk_waiters_.emplace(id, std::move(done));
  pending_io_.push_back(DiskWriteOp{id, bytes});
  ++counters_.disk_requests;
}

void GuestVm::send_packet(net::Packet pkt) {
  pkt.src = self_addr_;
  pending_io_.push_back(SendPacketOp{pkt});
  ++counters_.packets_sent;
}

void GuestVm::set_timer(Duration delay, std::function<void()> cb) {
  SW_EXPECTS(cb != nullptr);
  if (delay.ns < 0) delay.ns = 0;
  timers_.emplace(clock_().ns + delay.ns, std::move(cb));
}

}  // namespace stopwatch::vm
