// The guest VM model: a uniprocessor HVM guest whose externally visible
// behaviour is a *deterministic function* of (program, injected interrupt
// sequence, injection instruction points) — the property StopWatch enforces
// and exploits (paper Sec. VI).
//
// The guest is an instruction engine: it executes Tasks (instruction-costed
// units of work) from a run queue; when the queue is empty it runs an idle
// loop that still burns instructions, so guest progress (and hence virtual
// time) never stalls. Interrupt handlers are Tasks injected at the front of
// the queue at VM entries. Guest programs never see real time: the only
// clock available through GuestApi is the virtual clock provided by the VMM.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "net/packet.hpp"

namespace stopwatch::vm {

/// I/O operations a guest emits; collected by the VMM at guest-caused VM
/// exits (each one models a trapping I/O instruction).
struct DiskReadOp {
  std::uint64_t request_id{0};
  std::uint32_t bytes{0};
};
struct DiskWriteOp {
  std::uint64_t request_id{0};
  std::uint32_t bytes{0};
};
struct SendPacketOp {
  net::Packet pkt;
};
using GuestIoOp = std::variant<DiskReadOp, DiskWriteOp, SendPacketOp>;

/// The services a guest program may use. All of them are deterministic in
/// guest-visible state; none expose real time.
class GuestApi {
 public:
  virtual ~GuestApi() = default;

  /// Current virtual time (Eqn. 1 under StopWatch; real time under the
  /// unmodified-Xen baseline policy).
  [[nodiscard]] virtual VirtTime now() const = 0;

  /// Emulated time-stamp counter (cycles derived from the virtual clock).
  [[nodiscard]] virtual std::uint64_t rdtsc() const = 0;

  /// Emulated CMOS RTC: whole seconds of virtual time.
  [[nodiscard]] virtual std::uint64_t rtc_seconds() const = 0;

  /// Emulated PIT counter readback: the 16-bit down-counter reloaded at
  /// 250 Hz, paced by *virtual* time (paper Sec. IV-B "Reading counters").
  [[nodiscard]] virtual std::uint32_t pit_counter() const = 0;

  /// Instructions retired so far (for programs that self-meter work).
  [[nodiscard]] virtual std::uint64_t instructions() const = 0;

  /// Burn `instr` instructions of computation, then call `done`.
  virtual void compute(std::uint64_t instr, std::function<void()> done) = 0;

  /// Issue a disk read of `bytes`; `done` runs in the completion-interrupt
  /// handler.
  virtual void disk_read(std::uint32_t bytes, std::function<void()> done) = 0;

  /// Issue a disk write of `bytes`; `done` runs in the completion-interrupt
  /// handler.
  virtual void disk_write(std::uint32_t bytes, std::function<void()> done) = 0;

  /// Emit a network packet (the VMM decides how it leaves the machine).
  /// `pkt.src` is filled with the VM's logical address.
  virtual void send_packet(net::Packet pkt) = 0;

  /// One-shot timer in virtual time.
  virtual void set_timer(Duration delay, std::function<void()> cb) = 0;

  /// Deterministic per-VM randomness (identical across replicas).
  virtual Rng& det_rng() = 0;

  /// Logical network address of this VM.
  [[nodiscard]] virtual NodeId self_addr() const = 0;
};

/// A guest application. Implementations live in src/workload.
class GuestProgram {
 public:
  virtual ~GuestProgram() = default;
  virtual void on_boot(GuestApi& api) = 0;
  /// 250 Hz PIT tick (paper's experimental guest configuration).
  virtual void on_timer_tick(GuestApi& api, std::uint64_t tick) = 0;
  virtual void on_packet(GuestApi& api, const net::Packet& pkt) = 0;
};

/// Counters exposed for experiments.
struct GuestCounters {
  std::uint64_t timer_ticks{0};
  std::uint64_t net_interrupts{0};
  std::uint64_t disk_interrupts{0};
  std::uint64_t packets_sent{0};
  std::uint64_t disk_requests{0};
};

/// The instruction engine. Owned and driven by the hypervisor's
/// GuestContext; one instance per replica.
class GuestVm final : private GuestApi {
 public:
  /// `clock` maps the guest's retired-instruction count to virtual time and
  /// is owned by the VMM. `det_seed` must be identical across replicas.
  GuestVm(VmId id, NodeId self_addr, std::unique_ptr<GuestProgram> program,
          std::uint64_t det_seed, std::function<VirtTime()> clock);

  GuestVm(const GuestVm&) = delete;
  GuestVm& operator=(const GuestVm&) = delete;

  /// Runs on_boot. Must be called exactly once before execution.
  void boot();

  // --- Instruction engine (called by the VMM execution driver) ---

  /// Instructions retired so far.
  [[nodiscard]] std::uint64_t instr() const { return instr_; }

  /// Instructions until the current task (or idle chunk) completes. Always
  /// >= 1.
  [[nodiscard]] std::uint64_t instr_to_boundary() const;

  /// Advance exactly `n` instructions, n <= instr_to_boundary(). If the
  /// current task completes, its completion logic runs (and may enqueue
  /// further tasks and I/O operations).
  void advance(std::uint64_t n);

  // --- VM entry (interrupt injection; only at guest-caused exits) ---
  //
  // Injections are staged and applied by commit_injections() so that
  // handlers execute in injection order (vPIC priority order chosen by the
  // VMM), ahead of previously queued guest work.

  void inject_timer_tick();
  void inject_net_packet(const net::Packet& pkt);
  void inject_disk_complete(std::uint64_t request_id);

  /// Fire guest virtual-time timers that are due (called by the VMM at
  /// guest-caused exits, where virtual time is well defined). Staged like
  /// interrupt handlers.
  void fire_due_timers();

  /// Pushes staged handlers onto the run queue (in injection order) — the
  /// VM entry. Must be called after inject_* / fire_due_timers.
  void commit_injections();

  /// I/O operations emitted since the last drain.
  [[nodiscard]] std::vector<GuestIoOp> drain_io_ops();

  /// True while the guest only runs its idle loop (used for the host load
  /// model, not for anything guest-visible).
  [[nodiscard]] bool is_idle() const;

  [[nodiscard]] const GuestCounters& counters() const { return counters_; }
  [[nodiscard]] VmId id() const { return id_; }
  [[nodiscard]] GuestProgram& program() { return *program_; }

 private:
  // GuestApi implementation.
  [[nodiscard]] VirtTime now() const override { return clock_(); }
  [[nodiscard]] std::uint64_t rdtsc() const override {
    // 3 "cycles" per virtual nanosecond, like a 3 GHz part.
    return static_cast<std::uint64_t>(clock_().ns) * 3;
  }
  [[nodiscard]] std::uint64_t rtc_seconds() const override {
    return static_cast<std::uint64_t>(clock_().ns / 1'000'000'000);
  }
  [[nodiscard]] std::uint32_t pit_counter() const override {
    // PIT oscillator 1.193182 MHz; reload for a 250 Hz tick = 4772 counts.
    constexpr double kPitHz = 1'193'182.0;
    constexpr std::uint32_t kReload = 4772;
    const auto ticks = static_cast<std::uint64_t>(
        static_cast<double>(clock_().ns) * kPitHz / 1e9);
    return kReload - static_cast<std::uint32_t>(ticks % kReload);
  }
  [[nodiscard]] std::uint64_t instructions() const override { return instr_; }
  void compute(std::uint64_t instr, std::function<void()> done) override;
  void disk_read(std::uint32_t bytes, std::function<void()> done) override;
  void disk_write(std::uint32_t bytes, std::function<void()> done) override;
  void send_packet(net::Packet pkt) override;
  void set_timer(Duration delay, std::function<void()> cb) override;
  Rng& det_rng() override { return det_rng_; }
  [[nodiscard]] NodeId self_addr() const override { return self_addr_; }

  struct Task {
    std::uint64_t remaining{0};
    std::function<void()> on_complete;  // may be null (idle chunk)
    bool idle{false};
  };

  void stage_handler(std::uint64_t cost, std::function<void()> body);
  void ensure_runnable();

  static constexpr std::uint64_t kIdleChunkInstr = 20'000;
  static constexpr std::uint64_t kIrqHandlerInstr = 2'000;

  VmId id_{};
  NodeId self_addr_{};
  std::unique_ptr<GuestProgram> program_;
  Rng det_rng_;
  std::function<VirtTime()> clock_;

  std::uint64_t instr_{0};
  std::deque<Task> run_queue_;
  std::vector<Task> staged_handlers_;
  std::vector<GuestIoOp> pending_io_;
  std::map<std::uint64_t, std::function<void()>> disk_waiters_;
  std::uint64_t next_disk_request_{1};
  std::uint64_t timer_tick_count_{0};

  // Guest virtual-time timers: multimap deadline -> callback.
  std::multimap<std::int64_t, std::function<void()>> timers_;

  GuestCounters counters_;
  bool booted_{false};
};

}  // namespace stopwatch::vm
