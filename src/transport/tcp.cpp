#include "transport/tcp.hpp"

#include <algorithm>
#include <utility>

#include "common/contracts.hpp"

namespace stopwatch::transport {

TcpEndpoint::TcpEndpoint(TransportEnv& env, TcpConfig cfg)
    : env_(&env), cfg_(cfg) {
  SW_EXPECTS(cfg_.mss >= 64);
  SW_EXPECTS(cfg_.initial_cwnd >= 1);
  SW_EXPECTS(cfg_.max_cwnd >= cfg_.initial_cwnd);
  SW_EXPECTS(cfg_.ack_every >= 1);
}

void TcpEndpoint::listen(MessageHandler on_message) {
  SW_EXPECTS(on_message != nullptr);
  listening_ = true;
  on_message_ = std::move(on_message);
}

void TcpEndpoint::set_message_handler(MessageHandler handler) {
  on_message_ = std::move(handler);
}

TcpEndpoint::Connection& TcpEndpoint::conn(NodeId peer, std::uint32_t flow) {
  auto [it, inserted] = conns_.try_emplace(key(peer, flow));
  if (inserted) {
    it->second.peer = peer;
    it->second.flow = flow;
    it->second.cwnd = cfg_.initial_cwnd;
  }
  return it->second;
}

void TcpEndpoint::connect(NodeId peer, std::uint32_t flow,
                          ConnectedHandler on_connected) {
  Connection& c = conn(peer, flow);
  SW_EXPECTS(!c.established && !c.syn_sent);
  c.syn_sent = true;
  c.on_connected = std::move(on_connected);

  net::Packet syn;
  syn.dst = peer;
  syn.kind = net::PacketKind::kSyn;
  syn.flow = flow;
  syn.size_bytes = net::kHeaderBytes;
  env_->send(syn);
  ++stats_.control_packets_sent;
  arm_rto(c);
}

void TcpEndpoint::send_message(NodeId peer, std::uint32_t flow,
                               std::uint32_t msg_id, std::uint32_t msg_len,
                               std::uint32_t app_tag) {
  SW_EXPECTS(msg_len >= 1);
  Connection& c = conn(peer, flow);
  Message m;
  m.id = msg_id;
  m.start = c.stream_len;
  m.len = msg_len;
  m.tag = app_tag;
  c.tx_messages.push_back(m);
  c.stream_len += msg_len;
  if (c.established) pump(c);
}

const TcpEndpoint::Message* TcpEndpoint::message_at(
    Connection& c, std::uint64_t offset) const {
  for (const Message& m : c.tx_messages) {
    if (offset >= m.start && offset < m.start + m.len) return &m;
  }
  return nullptr;
}

void TcpEndpoint::pump(Connection& c) {
  SW_ASSERT(c.established);
  const auto in_flight = [&c, this] {
    return static_cast<int>((c.snd_next - c.snd_una + cfg_.mss - 1) / cfg_.mss);
  };
  while (c.snd_next < c.stream_len && in_flight() < c.cwnd) {
    const Message* m = message_at(c, c.snd_next);
    SW_ASSERT(m != nullptr);
    send_segment(c, c.snd_next, *m);
    const std::uint64_t msg_end = m->start + m->len;
    const std::uint32_t payload = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(cfg_.mss, msg_end - c.snd_next));
    c.snd_next += payload;
  }
  if (c.snd_next > c.snd_una) arm_rto(c);
}

void TcpEndpoint::send_segment(Connection& c, std::uint64_t seq,
                               const Message& m) {
  const std::uint64_t msg_end = m.start + m.len;
  const std::uint32_t payload = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(cfg_.mss, msg_end - seq));
  net::Packet pkt;
  pkt.dst = c.peer;
  pkt.kind = net::PacketKind::kData;
  pkt.flow = c.flow;
  pkt.seq = seq;
  pkt.size_bytes = payload + net::kHeaderBytes;
  pkt.msg_id = m.id;
  pkt.msg_len = m.len;
  pkt.msg_off = static_cast<std::uint32_t>(seq - m.start);
  pkt.app_tag = m.tag;
  env_->send(pkt);
  ++stats_.data_packets_sent;
}

void TcpEndpoint::arm_rto(Connection& c) {
  const std::uint64_t generation = ++c.rto_generation;
  c.rto_armed = true;
  const Key k = key(c.peer, c.flow);
  env_->set_timer(cfg_.rto, [this, k, generation] { on_rto(k, generation); });
}

void TcpEndpoint::on_rto(Key k, std::uint64_t generation) {
  const auto it = conns_.find(k);
  if (it == conns_.end()) return;
  Connection& c = it->second;
  if (!c.rto_armed || c.rto_generation != generation) return;  // stale

  if (!c.established) {
    if (!c.syn_sent) return;
    // Retransmit SYN.
    net::Packet syn;
    syn.dst = c.peer;
    syn.kind = net::PacketKind::kSyn;
    syn.flow = c.flow;
    syn.size_bytes = net::kHeaderBytes;
    env_->send(syn);
    ++stats_.control_packets_sent;
    ++stats_.retransmissions;
    arm_rto(c);
    return;
  }
  if (c.snd_una >= c.snd_next) {
    c.rto_armed = false;
    return;  // everything acked meanwhile
  }
  // Go-back-N: rewind and re-enter slow start.
  ++stats_.retransmissions;
  c.snd_next = c.snd_una;
  c.cwnd = cfg_.initial_cwnd;
  pump(c);
}

void TcpEndpoint::send_ack(Connection& c) {
  net::Packet ack;
  ack.dst = c.peer;
  ack.kind = net::PacketKind::kAck;
  ack.flow = c.flow;
  ack.ack = c.rcv_next;
  ack.size_bytes = net::kHeaderBytes;
  env_->send(ack);
  ++stats_.ack_packets_sent;
  c.unacked_segments = 0;
}

void TcpEndpoint::on_packet(const net::Packet& pkt) {
  ++stats_.packets_received;
  switch (pkt.kind) {
    case net::PacketKind::kSyn: {
      if (!listening_) return;
      Connection& c = conn(pkt.src, pkt.flow);
      c.established = true;
      net::Packet sa;
      sa.dst = pkt.src;
      sa.kind = net::PacketKind::kSynAck;
      sa.flow = pkt.flow;
      sa.size_bytes = net::kHeaderBytes;
      env_->send(sa);
      ++stats_.control_packets_sent;
      return;
    }
    case net::PacketKind::kSynAck: {
      Connection& c = conn(pkt.src, pkt.flow);
      if (!c.syn_sent) return;
      const bool first = !c.established;
      c.established = true;
      c.rto_armed = false;
      net::Packet ack;
      ack.dst = pkt.src;
      ack.kind = net::PacketKind::kAck;
      ack.flow = pkt.flow;
      ack.ack = 0;
      ack.size_bytes = net::kHeaderBytes;
      env_->send(ack);
      ++stats_.ack_packets_sent;
      if (first && c.on_connected) c.on_connected(pkt.src, pkt.flow);
      pump(c);
      return;
    }
    case net::PacketKind::kAck: {
      Connection& c = conn(pkt.src, pkt.flow);
      c.established = true;  // implicit accept of handshake ACK
      handle_ack(c, pkt);
      return;
    }
    case net::PacketKind::kData: {
      Connection& c = conn(pkt.src, pkt.flow);
      c.established = true;
      handle_data(c, pkt);
      return;
    }
    case net::PacketKind::kFin: {
      return;  // connection teardown is a no-op in this model
    }
    default:
      return;  // not a TCP packet
  }
}

void TcpEndpoint::handle_ack(Connection& c, const net::Packet& pkt) {
  if (pkt.ack > c.snd_una) {
    c.snd_una = pkt.ack;
    // After a go-back-N rewind, a cumulative ACK for data the receiver had
    // already buffered can pass snd_next; transmission resumes from it.
    if (c.snd_next < c.snd_una) c.snd_next = c.snd_una;
    // Slow-start growth per ACK, capped.
    c.cwnd = std::min(cfg_.max_cwnd, c.cwnd + 1);
    // Prune fully acknowledged messages.
    while (!c.tx_messages.empty() &&
           c.tx_messages.front().start + c.tx_messages.front().len <=
               c.snd_una) {
      c.tx_messages.pop_front();
    }
    if (c.snd_una >= c.snd_next) {
      c.rto_armed = false;
    } else {
      arm_rto(c);
    }
  }
  pump(c);
}

void TcpEndpoint::handle_data(Connection& c, const net::Packet& pkt) {
  const std::uint32_t payload = pkt.size_bytes >= net::kHeaderBytes
                                    ? pkt.size_bytes - net::kHeaderBytes
                                    : 0;
  SW_ASSERT(payload > 0);

  // Record the message header (start derivable from seq - msg_off).
  const std::uint64_t msg_start = pkt.seq - pkt.msg_off;
  Message m;
  m.id = pkt.msg_id;
  m.start = msg_start;
  m.len = pkt.msg_len;
  m.tag = pkt.app_tag;
  c.rx_headers.emplace(msg_start, m);

  // Advance the in-order window.
  if (pkt.seq <= c.rcv_next) {
    c.rcv_next = std::max(c.rcv_next, pkt.seq + payload);
    // Absorb any stashed out-of-order data now contiguous.
    auto it = c.ooo.begin();
    while (it != c.ooo.end() && it->first <= c.rcv_next) {
      c.rcv_next = std::max(c.rcv_next, it->first + it->second);
      it = c.ooo.erase(it);
    }
  } else {
    c.ooo.emplace(pkt.seq, payload);
  }

  deliver_messages(c);

  // Delayed-ACK policy.
  if (++c.unacked_segments >= cfg_.ack_every || !c.ooo.empty()) {
    send_ack(c);
  } else if (!c.delack_armed) {
    c.delack_armed = true;
    const std::uint64_t generation = ++c.delack_generation;
    const Key k = key(c.peer, c.flow);
    env_->set_timer(cfg_.delayed_ack, [this, k, generation] {
      const auto it = conns_.find(k);
      if (it == conns_.end()) return;
      Connection& cc = it->second;
      if (cc.delack_generation != generation) return;
      cc.delack_armed = false;
      if (cc.unacked_segments > 0) send_ack(cc);
    });
  }
}

void TcpEndpoint::deliver_messages(Connection& c) {
  for (;;) {
    const auto it = c.rx_headers.find(c.next_msg_start);
    if (it == c.rx_headers.end()) return;
    const Message& m = it->second;
    if (c.rcv_next < m.start + m.len) return;  // not fully received
    ++stats_.messages_delivered;
    if (on_message_) on_message_(c.peer, c.flow, m.id, m.len, m.tag);
    c.next_msg_start = m.start + m.len;
    c.rx_headers.erase(it);
  }
}

}  // namespace stopwatch::transport
