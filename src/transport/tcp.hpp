// A compact TCP-like reliable byte-stream transport with message framing.
//
// Models the TCP behaviours that drive the paper's Fig. 5/6 results:
//  * 3-way handshake (SYN / SYN-ACK / ACK) — two of which are *inbound* to
//    the server and therefore pay StopWatch's Δn on every connection;
//  * MSS segmentation, a slow-start congestion window, cumulative ACKs;
//  * delayed ACKs (every 2nd segment or a short timer) — the coalescing
//    that makes packets-per-operation fall as NFS load rises (Fig. 6(b));
//  * go-back-N retransmission on RTO (losses are rare on the cloud LAN but
//    the protocol must stay correct under them).
//
// Application data is exchanged as *messages* (length-delimited byte runs);
// the receiver fires one callback per completed message.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "transport/env.hpp"

namespace stopwatch::transport {

struct TcpConfig {
  std::uint32_t mss{net::kMss};
  int initial_cwnd{4};
  /// Effective window cap in segments (~23 KB — a 2.6-era Linux default
  /// receive window, as on the paper's testbed guests).
  int max_cwnd{16};
  Duration rto{Duration::millis(200)};
  Duration delayed_ack{Duration::millis(5)};
  int ack_every{2};
};

/// Statistics per endpoint (both directions, all connections).
struct TcpStats {
  std::uint64_t data_packets_sent{0};
  std::uint64_t ack_packets_sent{0};
  std::uint64_t control_packets_sent{0};  // SYN / SYN-ACK / FIN
  std::uint64_t packets_received{0};
  std::uint64_t retransmissions{0};
  std::uint64_t messages_delivered{0};
};

/// A TCP-like endpoint multiplexing connections by (peer, flow).
class TcpEndpoint {
 public:
  /// on_message(peer, flow, msg_id, msg_len, app_tag).
  using MessageHandler = std::function<void(
      NodeId, std::uint32_t, std::uint32_t, std::uint32_t, std::uint32_t)>;
  using ConnectedHandler = std::function<void(NodeId, std::uint32_t)>;

  explicit TcpEndpoint(TransportEnv& env, TcpConfig cfg = {});

  TcpEndpoint(const TcpEndpoint&) = delete;
  TcpEndpoint& operator=(const TcpEndpoint&) = delete;

  /// Accept inbound connections; `on_message` fires per completed message.
  void listen(MessageHandler on_message);

  /// Actively open a connection.
  void connect(NodeId peer, std::uint32_t flow, ConnectedHandler on_connected);

  /// Queue an application message on the connection (opens implicitly on
  /// the client after connect()). Messages are delivered reliably, in
  /// order.
  void send_message(NodeId peer, std::uint32_t flow, std::uint32_t msg_id,
                    std::uint32_t msg_len, std::uint32_t app_tag);

  /// Feed an inbound packet addressed to this endpoint.
  void on_packet(const net::Packet& pkt);

  /// Registers the message handler for client-side endpoints (responses).
  void set_message_handler(MessageHandler handler);

  [[nodiscard]] const TcpStats& stats() const { return stats_; }

 private:
  struct Message {
    std::uint32_t id{0};
    std::uint64_t start{0};
    std::uint32_t len{0};
    std::uint32_t tag{0};
  };

  struct Connection {
    NodeId peer{};
    std::uint32_t flow{0};
    bool established{false};
    bool syn_sent{false};
    ConnectedHandler on_connected;

    // Sender.
    std::uint64_t snd_una{0};
    std::uint64_t snd_next{0};
    std::uint64_t stream_len{0};
    std::deque<Message> tx_messages;  // pruned as fully acked
    int cwnd{4};
    std::uint64_t rto_generation{0};
    bool rto_armed{false};

    // Receiver.
    std::uint64_t rcv_next{0};
    std::map<std::uint64_t, std::uint32_t> ooo;  // seq -> payload len
    std::map<std::uint64_t, Message> rx_headers;  // msg start -> header
    std::uint64_t next_msg_start{0};
    int unacked_segments{0};
    bool delack_armed{0};
    std::uint64_t delack_generation{0};
  };

  using Key = std::uint64_t;
  static Key key(NodeId peer, std::uint32_t flow) {
    return (static_cast<std::uint64_t>(peer.value) << 32) | flow;
  }

  Connection& conn(NodeId peer, std::uint32_t flow);
  void pump(Connection& c);
  void send_segment(Connection& c, std::uint64_t seq, const Message& m);
  void arm_rto(Connection& c);
  void on_rto(Key k, std::uint64_t generation);
  void send_ack(Connection& c);
  void deliver_messages(Connection& c);
  void handle_data(Connection& c, const net::Packet& pkt);
  void handle_ack(Connection& c, const net::Packet& pkt);
  const Message* message_at(Connection& c, std::uint64_t offset) const;

  TransportEnv* env_;
  TcpConfig cfg_;
  MessageHandler on_message_;
  bool listening_{false};
  std::map<Key, Connection> conns_;
  TcpStats stats_;
};

}  // namespace stopwatch::transport
