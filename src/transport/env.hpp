// Transport environment abstraction.
//
// The same TCP-like/UDP-like protocol code runs in two very different
// places: *inside guest VMs* (where the only clock is virtual time and
// packets leave via the VMM's device model) and *on external client
// machines* (real time, plain network access). TransportEnv abstracts the
// difference; see GuestTransportEnv (workload) and the client adapters.
#pragma once

#include <cstdint>
#include <functional>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "net/packet.hpp"

namespace stopwatch::transport {

class TransportEnv {
 public:
  virtual ~TransportEnv() = default;

  /// Emit a packet (src filled by the environment).
  virtual void send(net::Packet pkt) = 0;

  /// One-shot timer in the local clock domain. Not cancelable — protocol
  /// code must guard stale firings (generation counters).
  virtual void set_timer(Duration delay, std::function<void()> cb) = 0;

  /// Local clock in nanoseconds (virtual for guests, real for clients).
  [[nodiscard]] virtual std::int64_t now_ns() const = 0;

  /// This endpoint's network address.
  [[nodiscard]] virtual NodeId local_addr() const = 0;
};

}  // namespace stopwatch::transport
