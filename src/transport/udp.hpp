// A UDP-like datagram transport with message fragmentation/reassembly and
// NO acknowledgments — the alternative transport of the paper's Fig. 5
// experiment ("UDP StopWatch"), whose near-baseline performance demonstrates
// that StopWatch's cost is dominated by *inbound* packets.
//
// Reliability, when needed, is layered above with NAKs (paper Sec. VII-C
// suggests negative acknowledgments / forward error correction; see
// NakReliableReceiver below for the NAK layer used by the file-download
// workload when losses are enabled).
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "transport/env.hpp"

namespace stopwatch::transport {

struct UdpStats {
  std::uint64_t datagrams_sent{0};
  std::uint64_t datagrams_received{0};
  std::uint64_t messages_delivered{0};
  std::uint64_t naks_sent{0};
};

/// Connectionless endpoint: messages are fragmented into MTU datagrams and
/// reassembled at the receiver; completion fires per message. With
/// `nak_reliability` enabled, the receiver detects holes after the message's
/// advertised length is known and requests retransmission of missing
/// fragments (the sender keeps the last `retain` messages).
class UdpEndpoint {
 public:
  /// on_message(peer, flow, msg_id, msg_len, app_tag).
  using MessageHandler = std::function<void(
      NodeId, std::uint32_t, std::uint32_t, std::uint32_t, std::uint32_t)>;

  explicit UdpEndpoint(TransportEnv& env, bool nak_reliability = false,
                       Duration nak_delay = Duration::millis(20));

  UdpEndpoint(const UdpEndpoint&) = delete;
  UdpEndpoint& operator=(const UdpEndpoint&) = delete;

  void set_message_handler(MessageHandler handler);

  /// Sends a message of `msg_len` bytes to `peer` as back-to-back datagrams.
  void send_message(NodeId peer, std::uint32_t flow, std::uint32_t msg_id,
                    std::uint32_t msg_len, std::uint32_t app_tag);

  /// Feed an inbound packet addressed to this endpoint.
  void on_packet(const net::Packet& pkt);

  [[nodiscard]] const UdpStats& stats() const { return stats_; }

 private:
  struct RxMessage {
    std::uint32_t len{0};
    std::uint32_t tag{0};
    std::map<std::uint32_t, std::uint32_t> got;  // offset -> fragment len
    std::uint32_t bytes{0};
    bool delivered{false};
    bool nak_armed{false};
  };
  struct RxKey {
    std::uint64_t peer_flow{0};
    std::uint32_t msg_id{0};
    auto operator<=>(const RxKey&) const = default;
  };

  void maybe_deliver(NodeId peer, std::uint32_t flow, std::uint32_t msg_id,
                     RxMessage& m);
  void arm_nak(NodeId peer, std::uint32_t flow, std::uint32_t msg_id);
  void send_fragment(NodeId peer, std::uint32_t flow, std::uint32_t msg_id,
                     std::uint32_t msg_len, std::uint32_t off,
                     std::uint32_t len, std::uint32_t tag);

  TransportEnv* env_;
  bool nak_reliability_;
  Duration nak_delay_;
  MessageHandler on_message_;
  std::map<RxKey, RxMessage> rx_;
  /// Sender-side retained messages for NAK service: key -> (len, tag).
  std::map<RxKey, std::pair<std::uint32_t, std::uint32_t>> tx_retained_;
  UdpStats stats_;
};

}  // namespace stopwatch::transport
