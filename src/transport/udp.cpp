#include "transport/udp.hpp"

#include <algorithm>
#include <utility>

#include "common/contracts.hpp"

namespace stopwatch::transport {

namespace {
constexpr std::uint32_t kUdpMtuPayload = 1472;

std::uint64_t peer_flow_key(NodeId peer, std::uint32_t flow) {
  return (static_cast<std::uint64_t>(peer.value) << 32) | flow;
}
}  // namespace

UdpEndpoint::UdpEndpoint(TransportEnv& env, bool nak_reliability,
                         Duration nak_delay)
    : env_(&env), nak_reliability_(nak_reliability), nak_delay_(nak_delay) {}

void UdpEndpoint::set_message_handler(MessageHandler handler) {
  on_message_ = std::move(handler);
}

void UdpEndpoint::send_fragment(NodeId peer, std::uint32_t flow,
                                std::uint32_t msg_id, std::uint32_t msg_len,
                                std::uint32_t off, std::uint32_t len,
                                std::uint32_t tag) {
  net::Packet pkt;
  pkt.dst = peer;
  pkt.kind = net::PacketKind::kData;
  pkt.flow = flow;
  pkt.seq = off;  // datagram offset within the message
  pkt.size_bytes = len + net::kHeaderBytes;
  pkt.msg_id = msg_id;
  pkt.msg_len = msg_len;
  pkt.msg_off = off;
  pkt.app_tag = tag;
  env_->send(pkt);
  ++stats_.datagrams_sent;
}

void UdpEndpoint::send_message(NodeId peer, std::uint32_t flow,
                               std::uint32_t msg_id, std::uint32_t msg_len,
                               std::uint32_t app_tag) {
  SW_EXPECTS(msg_len >= 1);
  for (std::uint32_t off = 0; off < msg_len; off += kUdpMtuPayload) {
    const std::uint32_t len = std::min(kUdpMtuPayload, msg_len - off);
    send_fragment(peer, flow, msg_id, msg_len, off, len, app_tag);
  }
  if (nak_reliability_) {
    tx_retained_[RxKey{peer_flow_key(peer, flow), msg_id}] = {msg_len, app_tag};
    while (tx_retained_.size() > 64) tx_retained_.erase(tx_retained_.begin());
  }
}

void UdpEndpoint::on_packet(const net::Packet& pkt) {
  // NAK service (sender side): retransmit one missing fragment.
  if (pkt.kind == net::PacketKind::kNak) {
    const RxKey k{peer_flow_key(pkt.src, pkt.flow), pkt.msg_id};
    const auto it = tx_retained_.find(k);
    if (it == tx_retained_.end()) return;
    const auto [len_total, tag] = it->second;
    const auto off = static_cast<std::uint32_t>(pkt.seq);
    if (off >= len_total) return;
    const std::uint32_t len = std::min(kUdpMtuPayload, len_total - off);
    send_fragment(pkt.src, pkt.flow, pkt.msg_id, len_total, off, len, tag);
    return;
  }
  if (pkt.kind != net::PacketKind::kData &&
      pkt.kind != net::PacketKind::kRequest) {
    return;
  }
  ++stats_.datagrams_received;

  const std::uint32_t payload = pkt.size_bytes >= net::kHeaderBytes
                                    ? pkt.size_bytes - net::kHeaderBytes
                                    : pkt.size_bytes;
  const RxKey k{peer_flow_key(pkt.src, pkt.flow), pkt.msg_id};
  RxMessage& m = rx_[k];
  if (m.delivered) return;
  m.len = pkt.msg_len;
  m.tag = pkt.app_tag;
  if (m.got.emplace(pkt.msg_off, payload).second) {
    m.bytes += payload;
  }
  maybe_deliver(pkt.src, pkt.flow, pkt.msg_id, m);
  if (!m.delivered && nak_reliability_ && !m.nak_armed) {
    arm_nak(pkt.src, pkt.flow, pkt.msg_id);
  }
}

void UdpEndpoint::maybe_deliver(NodeId peer, std::uint32_t flow,
                                std::uint32_t msg_id, RxMessage& m) {
  if (m.delivered || m.bytes < m.len) return;
  m.delivered = true;
  ++stats_.messages_delivered;
  if (on_message_) on_message_(peer, flow, msg_id, m.len, m.tag);
}

void UdpEndpoint::arm_nak(NodeId peer, std::uint32_t flow,
                          std::uint32_t msg_id) {
  const RxKey k{peer_flow_key(peer, flow), msg_id};
  rx_[k].nak_armed = true;
  env_->set_timer(nak_delay_, [this, peer, flow, msg_id, k] {
    const auto it = rx_.find(k);
    if (it == rx_.end()) return;
    RxMessage& m = it->second;
    m.nak_armed = false;
    if (m.delivered) return;
    // NAK the first missing fragment.
    std::uint32_t expect = 0;
    for (const auto& [off, len] : m.got) {
      if (off > expect) break;
      expect = off + len;
    }
    if (expect >= m.len) return;
    net::Packet nak;
    nak.dst = peer;
    nak.kind = net::PacketKind::kNak;
    nak.flow = flow;
    nak.seq = expect;
    nak.msg_id = msg_id;
    nak.size_bytes = net::kHeaderBytes;
    env_->send(nak);
    ++stats_.naks_sent;
    arm_nak(peer, flow, msg_id);  // re-arm until delivered
  });
}

}  // namespace stopwatch::transport
