// TifcPacing backend (arXiv:1003.5303, "Determinating Timing Channels in
// Compute Clouds") — the guest itself runs on unmodified-Xen semantics
// (real passthrough clock, immediate inbound delivery), but its outputs
// drain through a per-flow paced egress queue: the wire sees release
// instants only on a fixed quantum grid, and consecutive releases of one
// VM's flow are at least one quantum apart. Output timing therefore
// carries at most log2(queue occupancy) bits per quantum regardless of
// when the guest produced the packets.
#include "hypervisor/policy.hpp"

#include <algorithm>
#include <map>

#include "common/contracts.hpp"

namespace stopwatch::hypervisor {

namespace {

class TifcPacingPolicy final : public MitigationPolicy {
 public:
  explicit TifcPacingPolicy(TifcPolicyConfig cfg) : cfg_(cfg) {
    SW_EXPECTS(cfg_.release_quantum.ns >= 1);
  }

  [[nodiscard]] PolicyKind kind() const override {
    return PolicyKind::kTifcPacing;
  }
  [[nodiscard]] std::string_view name() const override { return "tifc"; }

  [[nodiscard]] bool replicated() const override { return false; }
  [[nodiscard]] bool tunnels_output() const override { return true; }
  [[nodiscard]] VirtualClock::Mode clock_mode() const override {
    return VirtualClock::Mode::kRealPassthrough;
  }

  // Inbound path inherits the base behavior: immediate delivery at the
  // Dom0-processing-done instant.

  [[nodiscard]] std::int64_t disk_delivery(
      std::int64_t /*guest_now*/, std::int64_t done_local) const override {
    return done_local;
  }

  [[nodiscard]] Duration egress_release_delay(std::uint32_t vm,
                                              RealTime now) override {
    ++stats_.egress_releases;
    const std::int64_t q = cfg_.release_quantum.ns;
    // Grid-align, then keep FIFO spacing of at least one quantum within
    // the VM's flow (the paced-queue drain rate).
    const std::int64_t aligned = ((now.ns + q - 1) / q) * q;
    std::int64_t release = aligned;
    const auto it = last_release_.find(vm);
    if (it != last_release_.end()) {
      release = std::max(release, it->second + q);
    }
    last_release_[vm] = release;
    return Duration{release - now.ns};
  }
  [[nodiscard]] Duration release_quantum() const override {
    return cfg_.release_quantum;
  }

 private:
  TifcPolicyConfig cfg_;
  /// Per-VM (per-flow) lane: real-time instant of the last scheduled
  /// release.
  std::map<std::uint32_t, std::int64_t> last_release_;
};

}  // namespace

std::unique_ptr<MitigationPolicy> make_tifc_policy(
    const TifcPolicyConfig& cfg) {
  return std::make_unique<TifcPacingPolicy>(cfg);
}

}  // namespace stopwatch::hypervisor
