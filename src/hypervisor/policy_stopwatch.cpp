// StopWatch backend — the paper's system, a behavior-preserving port of
// the former `if (policy == kStopWatch)` branches (pinned byte-identical
// by tests/sim/test_golden_identity.cpp):
//   * virtualized guest clock (Eqn. 1) with sync beacons, fastest-replica
//     throttling, and optional epoch resync with a clamped slope;
//   * inbound delivery at the median (or ablation rule) of the replicas'
//     virt(last exit) + Δn proposals;
//   * disk completions at the deterministic virt(request) + Δd deadline;
//   * outputs tunneled to the egress and released on the (r+1)/2-th copy —
//     the median emission timing.
#include "hypervisor/policy.hpp"

#include <algorithm>
#include <vector>

#include "common/contracts.hpp"

namespace stopwatch::hypervisor {

namespace {

class StopWatchPolicy final : public MitigationPolicy {
 public:
  explicit StopWatchPolicy(StopWatchPolicyConfig cfg) : cfg_(cfg) {
    SW_EXPECTS(cfg_.delta_n.ns >= 0);
    SW_EXPECTS(cfg_.delta_d.ns >= 0);
    SW_EXPECTS(cfg_.max_replica_gap.ns >= 0);
    SW_EXPECTS(cfg_.sync_interval.ns > 0);
    // epoch_instr only drives the epoch boundary when resync is on;
    // disabled-resync configs may leave it 0.
    SW_EXPECTS(!cfg_.epoch_resync || cfg_.epoch_instr >= 1);
    SW_EXPECTS(cfg_.slope_min > 0.0 && cfg_.slope_min <= cfg_.slope_max);
  }

  [[nodiscard]] PolicyKind kind() const override {
    return PolicyKind::kStopWatch;
  }
  [[nodiscard]] std::string_view name() const override { return "stopwatch"; }

  [[nodiscard]] bool replicated() const override { return true; }
  [[nodiscard]] bool tunnels_output() const override { return true; }
  [[nodiscard]] VirtualClock::Mode clock_mode() const override {
    return VirtualClock::Mode::kVirtualized;
  }

  [[nodiscard]] std::int64_t propose_delivery(
      std::int64_t guest_now) const override {
    return guest_now + cfg_.delta_n.ns;
  }

  [[nodiscard]] std::int64_t combine_proposals(
      const std::map<std::uint32_t, std::int64_t>& by_machine) const override {
    SW_EXPECTS(!by_machine.empty());
    ++stats_.replica_aggregations;
    std::vector<std::int64_t> vals;
    vals.reserve(by_machine.size());
    for (const auto& [machine, v] : by_machine) vals.push_back(v);
    std::sort(vals.begin(), vals.end());
    switch (cfg_.aggregation) {
      case AggregationRule::kMedian:
        return vals[(vals.size() - 1) / 2];
      case AggregationRule::kMin:
        return vals.front();
      case AggregationRule::kMax:
        return vals.back();
      case AggregationRule::kLeader: {
        const auto lit = by_machine.find(cfg_.leader_machine);
        SW_ASSERT(lit != by_machine.end());
        return lit->second;
      }
    }
    SW_ASSERT(false);
    return vals.back();
  }

  [[nodiscard]] std::int64_t disk_delivery(
      std::int64_t guest_now, std::int64_t /*done_local*/) const override {
    return guest_now + cfg_.delta_d.ns;
  }
  [[nodiscard]] bool deterministic_disk_deadline() const override {
    return true;
  }

  [[nodiscard]] Duration sync_interval() const override {
    return cfg_.sync_interval;
  }
  [[nodiscard]] Duration max_replica_gap() const override {
    return cfg_.max_replica_gap;
  }
  [[nodiscard]] std::uint64_t epoch_instructions() const override {
    return cfg_.epoch_resync ? cfg_.epoch_instr : 0;
  }
  [[nodiscard]] double epoch_slope(double candidate) const override {
    return clamp_slope(candidate, cfg_.slope_min, cfg_.slope_max);
  }

  [[nodiscard]] int egress_release_copies(int wired_replicas) const override {
    return (wired_replicas + 1) / 2;
  }

 private:
  StopWatchPolicyConfig cfg_;
};

}  // namespace

std::unique_ptr<MitigationPolicy> make_stopwatch_policy(
    const StopWatchPolicyConfig& cfg) {
  return std::make_unique<StopWatchPolicy>(cfg);
}

}  // namespace stopwatch::hypervisor
