// Deterland backend (arXiv:1504.07070) — deterministic execution on an
// artificial (virtualized) clock. The guest runs against the same Eqn.-1
// virtual clock as StopWatch, but without replication: timing-channel
// mitigation comes from quantization instead of agreement. Everything the
// guest (or the wire) can observe happens only at batch boundaries of the
// artificial time:
//   * inbound packets become visible at the first boundary at or after
//     guest-now + Δn, disk completions at or after guest-now + Δd — the
//     deadline is a deterministic function of artificial time, so an
//     unfinished physical transfer at the deadline counts as a divergence
//     exactly as under StopWatch;
//   * outputs are tunneled to the egress gateway, which projects the batch
//     grid onto the wire: a release waits for the next real-time multiple
//     of the batch quantum.
#include "hypervisor/policy.hpp"

#include "common/contracts.hpp"

namespace stopwatch::hypervisor {

namespace {

/// Smallest multiple of `quantum` at or after `t` (batch boundary).
std::int64_t quantize_up(std::int64_t t, std::int64_t quantum) {
  if (t <= 0) return 0;
  return ((t + quantum - 1) / quantum) * quantum;
}

class DeterlandPolicy final : public MitigationPolicy {
 public:
  explicit DeterlandPolicy(DeterlandPolicyConfig cfg) : cfg_(cfg) {
    SW_EXPECTS(cfg_.batch_quantum.ns >= 1);
    SW_EXPECTS(cfg_.delta_n.ns >= 0);
    SW_EXPECTS(cfg_.delta_d.ns >= 0);
  }

  [[nodiscard]] PolicyKind kind() const override {
    return PolicyKind::kDeterland;
  }
  [[nodiscard]] std::string_view name() const override { return "deterland"; }

  [[nodiscard]] bool replicated() const override { return false; }
  [[nodiscard]] bool tunnels_output() const override { return true; }
  [[nodiscard]] VirtualClock::Mode clock_mode() const override {
    return VirtualClock::Mode::kVirtualized;
  }

  [[nodiscard]] std::int64_t direct_delivery(
      std::int64_t /*arrival_local*/, std::int64_t guest_now) const override {
    ++stats_.deliveries_quantized;
    return quantize_up(guest_now + cfg_.delta_n.ns, cfg_.batch_quantum.ns);
  }

  [[nodiscard]] std::int64_t disk_delivery(
      std::int64_t guest_now, std::int64_t /*done_local*/) const override {
    ++stats_.deliveries_quantized;
    return quantize_up(guest_now + cfg_.delta_d.ns, cfg_.batch_quantum.ns);
  }
  [[nodiscard]] bool deterministic_disk_deadline() const override {
    return true;
  }

  [[nodiscard]] Duration egress_release_delay(std::uint32_t /*vm*/,
                                              RealTime now) override {
    ++stats_.egress_releases;
    const std::int64_t q = cfg_.batch_quantum.ns;
    return Duration{(q - now.ns % q) % q};
  }
  [[nodiscard]] Duration release_quantum() const override {
    return cfg_.batch_quantum;
  }

 private:
  DeterlandPolicyConfig cfg_;
};

}  // namespace

std::unique_ptr<MitigationPolicy> make_deterland_policy(
    const DeterlandPolicyConfig& cfg) {
  return std::make_unique<DeterlandPolicy>(cfg);
}

}  // namespace stopwatch::hypervisor
