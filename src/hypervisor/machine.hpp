// A physical machine of the cloud: CPU with contention and jitter, a
// machine-local real clock (with offset), the Dom0/VMM processing-delay
// model, and a FIFO rotating disk.
//
// The machine is where cross-VM interference lives — the *source* of the
// timing side channel. A coresident victim's CPU activity slows other
// guests' instruction rates, loads the VMM's packet-processing path, and
// queues the shared disk; the baseline policy leaks all of this to the
// attacker through interrupt timing, while StopWatch's median masks it.
#pragma once

#include <cstdint>
#include <vector>

#include "common/contracts.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "sim/simulator.hpp"

namespace stopwatch::hypervisor {

/// A source of host load (implemented by GuestContext).
class LoadSource {
 public:
  virtual ~LoadSource() = default;
  /// Current activity in [0, 1] (fraction of recent time spent non-idle).
  [[nodiscard]] virtual double activity() const = 0;
};

struct MachineConfig {
  /// Nominal instructions per second of one vCPU.
  double base_ips{1e9};
  /// Lognormal sigma of per-slice instruction-rate jitter.
  double ips_jitter_sigma{0.04};
  /// Effective rate = base / (1 + alpha * other_load).
  double contention_alpha{0.7};
  /// Cost of one VM exit + entry (added per execution slice).
  Duration exit_overhead{Duration::micros(2)};

  /// Dom0 device-model processing latency for an inbound packet:
  /// base + load_coefficient * load, jittered lognormally.
  Duration vmm_base_delay{Duration::micros(50)};
  Duration vmm_load_delay{Duration::micros(600)};
  double vmm_delay_jitter_sigma{0.35};

  /// vCPU scheduling: roughly once per `preempt_interval_instr` of guest
  /// execution on a contended host, the vCPU loses the physical core and
  /// waits ~Exp(preempt_wait * other_load) before resuming. This is the
  /// credit-scheduler contention a coresident victim inflicts — and the
  /// dominant leak through interrupt-delivery timing on unmodified Xen.
  Duration preempt_wait{Duration::millis(4)};
  std::uint64_t preempt_interval_instr{10'000'000};

  /// Rotating-disk model: per-op positioning time uniform in
  /// [seek_min, seek_max] plus transfer at `disk_bytes_per_second`.
  Duration disk_seek_min{Duration::millis(2)};
  Duration disk_seek_max{Duration::millis(8)};
  double disk_bytes_per_second{80e6};

  /// Machine-local clock offset from simulated global time.
  Duration clock_offset{};
};

/// Statistics for experiment harnesses.
struct MachineStats {
  std::uint64_t disk_ops{0};
  std::uint64_t disk_bytes{0};
};

class Machine {
 public:
  Machine(MachineId id, sim::Simulator& sim, MachineConfig cfg, Rng rng)
      : id_(id), sim_(&sim), cfg_(cfg), rng_(std::move(rng)) {
    SW_EXPECTS(cfg.base_ips > 0.0);
    SW_EXPECTS(cfg.disk_bytes_per_second > 0.0);
    SW_EXPECTS(cfg.disk_seek_min.ns >= 0 &&
               cfg.disk_seek_min.ns <= cfg.disk_seek_max.ns);
  }

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  [[nodiscard]] MachineId id() const { return id_; }
  [[nodiscard]] const MachineConfig& config() const { return cfg_; }
  [[nodiscard]] const MachineStats& stats() const { return stats_; }

  /// Machine-local real clock (global simulated time + offset).
  [[nodiscard]] RealTime local_clock() const {
    return sim_->now() + cfg_.clock_offset;
  }

  void register_load_source(const LoadSource* src) {
    SW_EXPECTS(src != nullptr);
    sources_.push_back(src);
  }

  /// Extra host load injected by experiments (e.g., the collaborating
  /// attacker VM of Sec. IX).
  void set_extra_load(double load) {
    SW_EXPECTS(load >= 0.0);
    extra_load_ = load;
  }

  /// Sum of coresident activity excluding `self` (pass nullptr for "all").
  [[nodiscard]] double load_excluding(const LoadSource* self) const {
    double load = extra_load_;
    for (const auto* s : sources_) {
      if (s != self) load += s->activity();
    }
    return load;
  }

  /// Samples the effective instruction rate for a guest whose coresident
  /// load is `other_load`. Varies per slice (host jitter).
  [[nodiscard]] double effective_ips(double other_load) {
    const double jitter =
        cfg_.ips_jitter_sigma > 0.0 ? rng_.lognormal(0.0, cfg_.ips_jitter_sigma)
                                    : 1.0;
    return cfg_.base_ips * jitter / (1.0 + cfg_.contention_alpha * other_load);
  }

  /// Samples the runqueue wait a vCPU suffers when it loses the core on a
  /// host with coresident load `other_load` (0 load -> no wait).
  [[nodiscard]] Duration preemption_wait(double other_load) {
    if (other_load <= 0.0 || cfg_.preempt_wait.ns <= 0) return Duration{};
    const double mean_ns =
        static_cast<double>(cfg_.preempt_wait.ns) * other_load;
    return Duration{static_cast<std::int64_t>(rng_.exponential(1.0 / mean_ns))};
  }

  /// Samples the Dom0 device-model processing delay under `load`.
  [[nodiscard]] Duration vmm_processing_delay(double load) {
    const double jitter = cfg_.vmm_delay_jitter_sigma > 0.0
                              ? rng_.lognormal(0.0, cfg_.vmm_delay_jitter_sigma)
                              : 1.0;
    const double ns = (static_cast<double>(cfg_.vmm_base_delay.ns) +
                       static_cast<double>(cfg_.vmm_load_delay.ns) * load) *
                      jitter;
    return Duration{static_cast<std::int64_t>(ns)};
  }

  /// Enqueue a disk operation; returns its (real-time) completion. The disk
  /// is a per-machine FIFO shared by all hosted guests.
  RealTime schedule_disk_op(std::uint64_t bytes) {
    const auto seek_ns = rng_.uniform_int(cfg_.disk_seek_min.ns, cfg_.disk_seek_max.ns);
    const auto transfer = Duration::from_seconds_f(
        static_cast<double>(bytes) / cfg_.disk_bytes_per_second);
    const RealTime start =
        disk_free_.ns > sim_->now().ns ? disk_free_ : sim_->now();
    const RealTime done = start + Duration{seek_ns} + transfer;
    disk_free_ = done;
    ++stats_.disk_ops;
    stats_.disk_bytes += bytes;
    return done;
  }

 private:
  MachineId id_;
  sim::Simulator* sim_;
  MachineConfig cfg_;
  Rng rng_;
  std::vector<const LoadSource*> sources_;
  double extra_load_{0.0};
  RealTime disk_free_{};
  MachineStats stats_;
};

}  // namespace stopwatch::hypervisor
