// BaselineXen backend — unmodified Xen semantics, the comparison baseline
// for every experiment: the guest clock passes through machine-local real
// time, inbound packets are delivered as soon as Dom0 has processed them,
// and guest outputs are emitted directly by the hosting machine — which is
// exactly what leaks coresident-victim activity.
#include "hypervisor/policy.hpp"

namespace stopwatch::hypervisor {

namespace {

class BaselineXenPolicy final : public MitigationPolicy {
 public:
  [[nodiscard]] PolicyKind kind() const override {
    return PolicyKind::kBaselineXen;
  }
  [[nodiscard]] std::string_view name() const override { return "baseline"; }

  [[nodiscard]] bool replicated() const override { return false; }
  [[nodiscard]] bool tunnels_output() const override { return false; }
  [[nodiscard]] VirtualClock::Mode clock_mode() const override {
    return VirtualClock::Mode::kRealPassthrough;
  }

  // Immediate delivery: the packet is visible at the Dom0-processing-done
  // instant on the machine-local clock (== the guest clock).
  // direct_delivery inherits the base arrival_local passthrough.

  [[nodiscard]] std::int64_t disk_delivery(
      std::int64_t /*guest_now*/, std::int64_t done_local) const override {
    return done_local;
  }
};

}  // namespace

std::unique_ptr<MitigationPolicy> make_baseline_xen_policy() {
  return std::make_unique<BaselineXenPolicy>();
}

}  // namespace stopwatch::hypervisor
