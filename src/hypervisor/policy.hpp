// The pluggable mitigation-policy layer: every decision that used to be a
// scattered `if (policy == kStopWatch)` branch in the hypervisor, topology,
// and core layers now lives behind one interface.
//
// A MitigationPolicy owns four groups of decisions:
//   * the guest-clock source (virtualized Eqn.-1 clock vs machine-local
//     real time);
//   * inbound delivery-time computation (median-of-r proposal agreement vs
//     immediate delivery vs artificial-time batch boundaries);
//   * whether replicas and the ingress/control multicast groups exist at
//     all (capability queries consumed by topology::TopologyBuilder and
//     core::Cloud — the single home of the "replica_count forced to 1"
//     rule);
//   * egress release semantics (inline on the median copy, batched at a
//     quantum boundary, or per-flow paced), which is exactly what the
//     leakage subsystem's TimingTap observes.
//
// Backends (one translation unit each):
//   * BaselineXen — unmodified Xen: real clocks, immediate delivery, direct
//     output emission. The comparison baseline for every experiment.
//   * StopWatch — the paper's system: replicated VMs, virtual clocks,
//     median-of-r delivery proposals, tunneled outputs released on the
//     median copy. Behavior-preserving port of the former enum branches
//     (pinned byte-identical by tests/sim/test_golden_identity.cpp).
//   * Deterland — deterministic execution on an artificial (virtual) clock;
//     deliveries and outputs become visible only at batch boundaries of the
//     artificial time (arXiv:1504.07070).
//   * TifcPacing — real clocks, immediate delivery, but outputs drain
//     through per-flow paced egress queues on a fixed release quantum
//     (arXiv:1003.5303).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/time.hpp"
#include "hypervisor/virtual_clock.hpp"

namespace stopwatch::hypervisor {

/// Which mitigation the cloud runs. Selects a MitigationPolicy backend via
/// make_policy().
enum class PolicyKind {
  kBaselineXen,  ///< unmodified Xen: real clocks, immediate delivery
  kStopWatch,    ///< the paper's system
  kDeterland,    ///< artificial-time batching (arXiv:1504.07070)
  kTifcPacing,   ///< paced egress queues (arXiv:1003.5303)
};

/// Backwards-compatible name: the pre-policy-API enum was
/// `hypervisor::Policy` with the first two enumerators.
using Policy = PolicyKind;

/// How the StopWatch VMMs combine proposed delivery times (ablation E11;
/// the paper argues only the median resists both a coresident victim and a
/// leader that copies its timing to all replicas).
enum class AggregationRule {
  kMedian,  ///< the paper's choice
  kMin,     ///< earliest proposal dictates
  kMax,     ///< latest proposal dictates
  kLeader,  ///< one fixed replica dictates (classic replication systems)
};

/// Knobs of the StopWatch backend (formerly spread over
/// GuestContextConfig). Customizing any of these under a non-replicated
/// policy is a ContractViolation — the knobs would be silently dead.
struct StopWatchPolicyConfig {
  /// Δn: virtual-time offset for network-interrupt proposals.
  Duration delta_n{Duration::millis(10)};
  /// Δd: virtual-time offset for disk/DMA completion delivery.
  Duration delta_d{Duration::millis(12)};
  AggregationRule aggregation{AggregationRule::kMedian};
  /// For AggregationRule::kLeader: machine id whose proposal dictates.
  std::uint32_t leader_machine{0};
  /// Maximum allowed virtual-time lead of the fastest replica over the
  /// second fastest; enforced by slowing the leader.
  Duration max_replica_gap{Duration::millis(3)};
  /// Real-time period of virtual-time sync beacons.
  Duration sync_interval{Duration::millis(2)};
  /// Epoch-based resynchronization of virt toward real time (Sec. IV-A).
  bool epoch_resync{false};
  std::uint64_t epoch_instr{200'000'000};  // the paper's I
  double slope_min{0.90};                  // ℓ
  double slope_max{1.10};                  // u

  bool operator==(const StopWatchPolicyConfig&) const = default;
};

/// Knobs of the Deterland backend: everything the guest can observe is
/// quantized up to a multiple of the artificial-time batch quantum.
struct DeterlandPolicyConfig {
  /// Artificial-time batch length. Deliveries land on the next boundary at
  /// or after guest-now + delta; egress releases on the next real-time
  /// boundary (the gateway projects the batch grid onto the wire).
  Duration batch_quantum{Duration::millis(1)};
  /// Minimum artificial-time delay before an inbound packet is visible.
  Duration delta_n{Duration::millis(10)};
  /// Minimum artificial-time delay before a disk completion is visible.
  Duration delta_d{Duration::millis(12)};

  bool operator==(const DeterlandPolicyConfig&) const = default;
};

/// Knobs of the TifcPacing backend: per-flow (per-VM lane) paced egress.
struct TifcPolicyConfig {
  /// Fixed release quantum: consecutive releases of one VM's flow are
  /// grid-aligned and at least this far apart.
  Duration release_quantum{Duration::micros(500)};

  bool operator==(const TifcPolicyConfig&) const = default;
};

/// Policy selection plus per-backend knobs. Implicitly constructible from a
/// PolicyKind so `cfg.policy = PolicyKind::kBaselineXen` keeps working at
/// every pre-redesign call site.
struct PolicyConfig {
  PolicyKind kind{PolicyKind::kStopWatch};
  StopWatchPolicyConfig stopwatch{};
  DeterlandPolicyConfig deterland{};
  TifcPolicyConfig tifc{};

  PolicyConfig() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): intentional implicit
  // conversion — the enum is the common spelling at call sites.
  PolicyConfig(PolicyKind k) : kind(k) {}

  bool operator==(const PolicyConfig&) const = default;
};

/// Decision counters every backend keeps (observability; surfaced in the
/// Result JSON's `observability` block). Each counter ticks in the method
/// that makes the corresponding decision, whichever backend implements it.
struct PolicyStats {
  /// Inbound deliveries whose visible time was quantized/deferred away
  /// from the physical arrival (Deterland batch boundaries).
  std::uint64_t deliveries_quantized{0};
  /// egress_release_delay() calls — one per release-gate decision.
  std::uint64_t egress_releases{0};
  /// combine_proposals() calls — one per replica-agreement round.
  std::uint64_t replica_aggregations{0};
};

/// One mitigation backend. Stateless except where noted
/// (egress_release_delay); one instance per GuestContext and one per
/// TopologyBuilder, all built by make_policy() from the same PolicyConfig.
class MitigationPolicy {
 public:
  virtual ~MitigationPolicy() = default;

  /// Decision counters accumulated by this instance. Each instance is
  /// confined to one shard's core, so plain (non-atomic) counters are
  /// safe; aggregation across instances happens at scenario end.
  [[nodiscard]] const PolicyStats& stats() const { return stats_; }

  [[nodiscard]] virtual PolicyKind kind() const = 0;
  /// Stable lowercase identifier ("baseline", "stopwatch", "deterland",
  /// "tifc") — matches the --param policy=... choices.
  [[nodiscard]] virtual std::string_view name() const = 0;

  // --- Capabilities (consumed by TopologyBuilder / core::Cloud) ---

  /// Whether guest VMs are replicated and the ingress/control multicast
  /// groups exist. Non-replicated policies force one replica per VM.
  [[nodiscard]] virtual bool replicated() const = 0;
  /// Whether guest outputs are tunneled to the egress node (and released
  /// there per egress_release_copies / egress_release_delay) instead of
  /// being emitted directly by the hosting machine.
  [[nodiscard]] virtual bool tunnels_output() const = 0;
  /// The guest-clock source.
  [[nodiscard]] virtual VirtualClock::Mode clock_mode() const = 0;

  /// The single home of the "replica_count forced to 1 under non-replicated
  /// policies" rule (formerly duplicated in core/cloud.cpp and
  /// topology/builder.cpp).
  [[nodiscard]] int effective_replicas(int requested) const {
    return replicated() ? requested : 1;
  }
  /// Shared replica/machine validation; `where` prefixes the messages
  /// ("CloudConfig", "TopologyConfig"). The odd-count requirement is
  /// unconditional (the knob must be a valid median width even where it is
  /// ignored); the distinct-machines bound applies only when replicated.
  void validate_replicas(const std::string& where, int replica_count,
                         int machine_count) const;

  // --- Inbound delivery times (guest-clock ns) ---

  /// Replicated policies: this replica's proposed delivery time for an
  /// ingress copy, given the guest clock at the last guest-caused exit.
  [[nodiscard]] virtual std::int64_t propose_delivery(
      std::int64_t guest_now) const;
  /// Replicated policies: combine all replicas' proposals (keyed by
  /// proposer machine id) into the agreed delivery time.
  [[nodiscard]] virtual std::int64_t combine_proposals(
      const std::map<std::uint32_t, std::int64_t>& by_machine) const;
  /// Non-replicated policies: delivery time of a directly routed packet.
  /// `arrival_local` is Dom0-processing-done in machine-local real ns;
  /// `guest_now` is the guest clock at the last exit.
  [[nodiscard]] virtual std::int64_t direct_delivery(
      std::int64_t arrival_local, std::int64_t guest_now) const;

  // --- Disk/DMA completion ---

  /// Delivery time (guest-clock ns) of a disk completion trapped at
  /// guest-clock `guest_now` whose physical transfer finishes at
  /// machine-local real `done_local`.
  [[nodiscard]] virtual std::int64_t disk_delivery(
      std::int64_t guest_now, std::int64_t done_local) const = 0;
  /// Whether the disk deadline is deterministic (independent of the
  /// physical transfer), so a transfer unfinished at the deadline is a
  /// divergence to count (Sec. V footnote 4).
  [[nodiscard]] virtual bool deterministic_disk_deadline() const {
    return false;
  }

  // --- Replica pacing / epochs (no-ops unless replicated) ---

  /// Real-time period of virtual-time sync beacons (0 = no beacons).
  [[nodiscard]] virtual Duration sync_interval() const { return {}; }
  [[nodiscard]] virtual Duration max_replica_gap() const { return {}; }
  /// Epoch length in instructions (0 = epoch resync disabled).
  [[nodiscard]] virtual std::uint64_t epoch_instructions() const { return 0; }
  /// Admissible slope closest to the candidate (Sec. IV-A clamp).
  [[nodiscard]] virtual double epoch_slope(double candidate) const {
    return candidate;
  }

  // --- Egress release semantics (consumed by TopologyBuilder) ---

  /// How many tunneled replica copies of an output must arrive before the
  /// egress releases it ((r+1)/2 under StopWatch: the median timing).
  [[nodiscard]] virtual int egress_release_copies(int wired_replicas) const;
  /// Additional real-time hold applied at the release gate. 0 = release
  /// inline at the gating copy's arrival (StopWatch/baseline). Stateful for
  /// paced policies: each call advances the VM's release lane.
  [[nodiscard]] virtual Duration egress_release_delay(std::uint32_t vm,
                                                      RealTime now);
  /// Quantum with which wire-visible release instants are discretized
  /// (0 = none). Capability consumed by scenarios that model the channel
  /// analytically (leakage_capacity).
  [[nodiscard]] virtual Duration release_quantum() const { return {}; }

 protected:
  /// Mutable: several decision methods are const (they compute times
  /// without changing policy behaviour) but still count as decisions.
  mutable PolicyStats stats_;
};

/// Builds the backend selected by `cfg.kind`, validating the per-backend
/// knobs. Throws ContractViolation — naming the policy — when StopWatch
/// replica knobs are customized under a non-replicated backend.
std::unique_ptr<MitigationPolicy> make_policy(const PolicyConfig& cfg);

/// Capability shortcut: whether `kind` replicates guest VMs (with default
/// knobs — replication is a property of the backend, not of its knobs).
[[nodiscard]] bool policy_replicated(PolicyKind kind);

/// The --param policy=... choice list, in enum order.
[[nodiscard]] const std::vector<std::string>& policy_choices();
/// Maps a choice ("baseline" | "stopwatch" | "deterland" | "tifc") to its
/// kind. Throws ContractViolation on an unknown choice.
[[nodiscard]] PolicyKind policy_kind_from_choice(const std::string& choice);
/// The stable lowercase name of `kind` (inverse of policy_kind_from_choice).
[[nodiscard]] std::string_view policy_choice_name(PolicyKind kind);

// Per-backend factories (one translation unit each).
std::unique_ptr<MitigationPolicy> make_baseline_xen_policy();
std::unique_ptr<MitigationPolicy> make_stopwatch_policy(
    const StopWatchPolicyConfig& cfg);
std::unique_ptr<MitigationPolicy> make_deterland_policy(
    const DeterlandPolicyConfig& cfg);
std::unique_ptr<MitigationPolicy> make_tifc_policy(const TifcPolicyConfig& cfg);

}  // namespace stopwatch::hypervisor
