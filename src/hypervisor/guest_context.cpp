#include "hypervisor/guest_context.hpp"

#include <algorithm>
#include <climits>
#include <utility>

#include "common/contracts.hpp"

namespace stopwatch::hypervisor {

namespace {
std::uint64_t mix_hash(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}
}  // namespace

GuestContext::GuestContext(VmId vm, ReplicaIndex replica, NodeId vm_addr,
                           Machine& machine, sim::Simulator& sim,
                           GuestContextConfig cfg,
                           std::unique_ptr<vm::GuestProgram> program,
                           std::uint64_t det_seed, ReplicaServices services)
    : vm_(vm),
      replica_(replica),
      vm_addr_(vm_addr),
      machine_(&machine),
      sim_(&sim),
      cfg_(cfg),
      services_(std::move(services)),
      policy_(make_policy(cfg.policy)),
      clock_(policy_->clock_mode(), [m = machine_] { return m->local_clock(); }) {
  SW_EXPECTS(cfg_.replica_count >= 1);
  SW_EXPECTS(cfg_.exit_interval_instr >= 1'000);
  SW_EXPECTS(cfg_.initial_slope > 0.0);
  SW_EXPECTS(services_.send_frame != nullptr);
  if (policy_->replicated() && cfg_.replica_count > 1) {
    SW_EXPECTS(services_.control_multicast != nullptr);
  }
  guest_ = std::make_unique<vm::GuestVm>(
      vm, vm_addr, std::move(program), det_seed,
      [this] { return clock_.now(guest_->instr()); });
  machine_->register_load_source(this);
}

void GuestContext::start(VirtTime start) {
  SW_EXPECTS(!running_);
  running_ = true;
  clock_.initialize(start, cfg_.initial_slope);
  guest_->boot();

  last_exit_instr_ = 0;
  last_exit_clock_ns_ = clock_.now(0).ns;
  next_periodic_exit_ = cfg_.exit_interval_instr;
  next_timer_tick_ns_ = last_exit_clock_ns_ + cfg_.timer_period.ns;
  epoch_start_local_ = machine_->local_clock();

  // Launch the beacon loop used for fastest-replica throttling. The loop
  // owns one arena slot for its whole life: each tick re-arms the same
  // event via reschedule_after instead of scheduling a fresh one.
  if (policy_->replicated() && cfg_.replica_count > 1) {
    beacon_event_ = sim_->schedule_after(policy_->sync_interval(),
                                         [this] { beacon_tick(); });
  }

  schedule_slice();
}

void GuestContext::beacon_tick() {
  if (halted_) return;
  net::SyncBeacon b;
  b.vm = vm_;
  b.machine = machine_->id();
  b.virt = VirtTime{last_exit_clock_ns_};
  b.instr = guest_->instr();
  services_.control_multicast(b, 64);
  sim_->reschedule_after(*beacon_event_, policy_->sync_interval());
}

void GuestContext::halt() {
  halted_ = true;
  if (slice_event_) {
    sim_->cancel(*slice_event_);
    slice_event_.reset();
  }
}

VirtTime GuestContext::virt_now() const {
  return clock_.now(guest_->instr());
}

void GuestContext::schedule_slice() {
  if (halted_ || stalled_) return;
  SW_ASSERT(!slice_event_ || !sim_->is_scheduled(*slice_event_));
  const std::uint64_t cur = guest_->instr();
  SW_ASSERT(next_periodic_exit_ > cur);
  const std::uint64_t to_periodic = next_periodic_exit_ - cur;
  std::uint64_t n = std::min(guest_->instr_to_boundary(), to_periodic);
  if (n == 0) n = 1;

  const double other_load = machine_->load_excluding(this);
  const double ips = machine_->effective_ips(other_load);
  auto run_time = Duration::from_seconds_f(static_cast<double>(n) / ips) +
                  machine_->config().exit_overhead;
  // Periodic loss of the physical core to coresident load (vCPU scheduling).
  if (cur >= next_preempt_instr_) {
    run_time += machine_->preemption_wait(other_load);
    next_preempt_instr_ = cur + machine_->config().preempt_interval_instr;
  }
  pending_slice_n_ = n;
  if (slice_event_ && sim_->is_executing(*slice_event_)) {
    // The common case: the slice that just ended re-arms itself — same
    // arena slot, same Task, no allocation or construction per slice.
    sim_->reschedule_after(*slice_event_, run_time);
  } else {
    slice_event_ = sim_->schedule_after(
        run_time, [this] { on_slice_end(pending_slice_n_); });
  }
}

void GuestContext::on_slice_end(std::uint64_t n) {
  guest_->advance(n);
  on_guest_exit();
}

void GuestContext::on_guest_exit() {
  const std::uint64_t exit_instr = guest_->instr();
  last_exit_instr_ = exit_instr;
  last_exit_clock_ns_ = clock_.now(exit_instr).ns;
  next_periodic_exit_ = exit_instr + cfg_.exit_interval_instr;

  process_io_ops();
  if (policy_->epoch_instructions() > 0) {
    check_epoch(exit_instr);
  }
  inject_due_interrupts();

  // Host-load bookkeeping (not guest-visible).
  const double busy = guest_->is_idle() ? 0.0 : 1.0;
  activity_ema_ = 0.98 * activity_ema_ + 0.02 * busy;

  if (policy_->replicated() && should_stall()) {
    enter_stall();
    return;
  }
  schedule_slice();
}

void GuestContext::process_io_ops() {
  for (auto& op : guest_->drain_io_ops()) {
    if (const auto* rd = std::get_if<vm::DiskReadOp>(&op)) {
      const RealTime done = machine_->schedule_disk_op(rd->bytes);
      DiskSlot slot;
      slot.request_id = rd->request_id;
      slot.physical_done = done;
      slot.read = true;
      slot.delivery = policy_->disk_delivery(
          last_exit_clock_ns_, done.ns + machine_->config().clock_offset.ns);
      disk_slots_.push_back(slot);
    } else if (const auto* wr = std::get_if<vm::DiskWriteOp>(&op)) {
      const RealTime done = machine_->schedule_disk_op(wr->bytes);
      DiskSlot slot;
      slot.request_id = wr->request_id;
      slot.physical_done = done;
      slot.read = false;
      slot.delivery = policy_->disk_delivery(
          last_exit_clock_ns_, done.ns + machine_->config().clock_offset.ns);
      disk_slots_.push_back(slot);
    } else if (auto* sp = std::get_if<vm::SendPacketOp>(&op)) {
      ++out_seq_;
      out_hash_chain_ = mix_hash(out_hash_chain_, sp->pkt.content_hash());
      out_hashes_.push_back(sp->pkt.content_hash());
      if (policy_->tunnels_output()) {
        net::Frame f;
        f.src = services_.machine_node;
        f.dst = services_.egress_node;
        f.size_bytes = sp->pkt.size_bytes + net::kHeaderBytes;  // tunneled
        net::TunneledOutput t;
        t.vm = vm_;
        t.replica = replica_;
        t.out_seq = out_seq_;
        t.content_hash = sp->pkt.content_hash();
        t.pkt = sp->pkt;
        f.payload = t;
        services_.send_frame(std::move(f));
        ++stats_.outputs_tunneled;
      } else {
        net::Frame f;
        f.src = services_.machine_node;
        f.dst = sp->pkt.dst;
        f.size_bytes = sp->pkt.size_bytes;
        f.payload = net::GuestPacketPayload{sp->pkt};
        services_.send_frame(std::move(f));
      }
    }
  }
}

void GuestContext::inject_due_interrupts() {
  const std::int64_t now_ns = last_exit_clock_ns_;

  // PIT timer interrupts (virtual-time schedule; Sec. IV-B).
  while (next_timer_tick_ns_ <= now_ns) {
    guest_->inject_timer_tick();
    ++stats_.timer_injections;
    next_timer_tick_ns_ += cfg_.timer_period.ns;
  }

  // Guest soft timers (deterministic: driven by the guest clock).
  guest_->fire_due_timers();

  // Disk/DMA completions, in request (FIFO) order.
  while (!disk_slots_.empty() && disk_slots_.front().delivery <= now_ns) {
    DiskSlot& slot = disk_slots_.front();
    if (policy_->deterministic_disk_deadline() &&
        sim_->now().ns < slot.physical_done.ns && !slot.late_counted) {
      // Δd was too small: the physical transfer has not finished by the
      // virtual delivery time. In the real system this replica would have
      // to be recovered from a peer (Sec. V footnote 4); here we count the
      // violation and proceed at the deterministic virtual deadline (the
      // delivered *contents* are deterministic either way), so the
      // experiment quantifies how often a deployment's Δd would have been
      // too small.
      slot.late_counted = true;
      ++stats_.divergence_disk_late;
    }
    // Real-time slack between the physical transfer finishing and this
    // injection (negative = the virtual deadline beat the hardware).
    stats_.disk_margin_ms.push_back(
        static_cast<double>(sim_->now().ns - slot.physical_done.ns) / 1e6);
    guest_->inject_disk_complete(slot.request_id);
    ++stats_.disk_deliveries;
    disk_slots_.pop_front();
  }

  // Network packets, in ingress copy_seq order.
  for (;;) {
    const auto it = net_slots_.find(next_net_inject_seq_);
    if (it == net_slots_.end()) break;
    NetSlot& slot = it->second;
    if (!slot.delivery.has_value() || !slot.have_pkt) break;
    if (*slot.delivery > now_ns) break;
    guest_->inject_net_packet(slot.pkt);
    ++stats_.net_deliveries;
    const auto trace_it = live_traces_.find(next_net_inject_seq_);
    if (trace_it != live_traces_.end()) {
      trace_it->second.inject_virt_ms = static_cast<double>(now_ns) / 1e6;
      trace_it->second.inject_real_ms =
          static_cast<double>(sim_->now().ns) / 1e6;
      stats_.packet_traces.push_back(std::move(trace_it->second));
      live_traces_.erase(trace_it);
    }
    net_slots_.erase(it);
    ++next_net_inject_seq_;
  }

  guest_->commit_injections();
}

bool GuestContext::should_stall() const {
  if (cfg_.replica_count <= 1) return false;
  if (peer_virt_ns_.size() + 1 <
      static_cast<std::size_t>(cfg_.replica_count)) {
    return false;  // not all peers known yet
  }
  std::int64_t max_peer = INT64_MIN;
  for (const auto& [machine, virt] : peer_virt_ns_) {
    max_peer = std::max(max_peer, virt);
  }
  // I am the fastest and my lead over the second-fastest exceeds the cap.
  return last_exit_clock_ns_ - max_peer > policy_->max_replica_gap().ns;
}

void GuestContext::enter_stall() {
  SW_ASSERT(!stalled_);
  stalled_ = true;
  stall_began_ = sim_->now();
  ++stats_.throttle_stalls;
  stall_event_ =
      sim_->schedule_after(Duration::micros(500), [this] { recheck_stall(); });
}

void GuestContext::recheck_stall() {
  if (halted_) return;
  if (should_stall()) {
    // Still the fastest replica: the recheck re-arms its own slot.
    sim_->reschedule_after(*stall_event_, Duration::micros(500));
    return;
  }
  stalled_ = false;
  stats_.total_stall_time += sim_->now() - stall_began_;
  schedule_slice();
}

void GuestContext::on_ingress_copy(const net::IngressCopy& copy) {
  SW_EXPECTS(policy_->replicated());
  if (copy.vm != vm_) return;
  NetSlot& slot = net_slots_[copy.copy_seq];
  slot.pkt = copy.pkt;
  slot.have_pkt = true;
  if (cfg_.record_packet_traces && copy.copy_seq <= 32) {
    PacketTrace& tr = live_traces_[copy.copy_seq];
    tr.copy_seq = copy.copy_seq;
    tr.arrival_real_ms = static_cast<double>(sim_->now().ns) / 1e6;
  }

  // Dom0 device-model processing before the proposal goes out; this is
  // where coresident load perturbs the proposal (and where StopWatch's
  // median protects: the perturbation affects only this replica's vote).
  const Duration processing =
      machine_->vmm_processing_delay(machine_->load_excluding(nullptr));
  const std::uint64_t seq = copy.copy_seq;
  sim_->schedule_after(processing, [this, seq] {
    if (halted_) return;
    net::Proposal p;
    p.vm = vm_;
    p.copy_seq = seq;
    p.proposed_delivery =
        VirtTime{policy_->propose_delivery(last_exit_clock_ns_)};
    p.proposer = machine_->id();
    const auto it = net_slots_.find(seq);
    if (it != net_slots_.end()) {
      it->second.proposal_base = last_exit_clock_ns_;
    }
    services_.control_multicast(p, 96);
  });
}

void GuestContext::on_proposal(const net::Proposal& p) {
  SW_EXPECTS(policy_->replicated());
  if (p.vm != vm_) return;
  if (p.copy_seq < next_net_inject_seq_) return;  // already delivered
  NetSlot& slot = net_slots_[p.copy_seq];
  slot.proposals[p.proposer.value] = p.proposed_delivery.ns;
  {
    const auto trace_it = live_traces_.find(p.copy_seq);
    if (trace_it != live_traces_.end()) {
      trace_it->second.proposals_ms.emplace_back(
          p.proposer.value, static_cast<double>(p.proposed_delivery.ns) / 1e6);
    }
  }
  if (slot.delivery.has_value()) return;
  if (slot.proposals.size() <
      static_cast<std::size_t>(cfg_.replica_count)) {
    return;
  }

  // All proposals in: combine per the policy's aggregation rule (median of
  // the replicas' votes in the paper).
  std::int64_t median = policy_->combine_proposals(slot.proposals);

  // Spread between the two *fastest* replicas — the gap Δn must dominate
  // (the slowest replica may lag arbitrarily; the median never comes from
  // it, and the throttle only paces the leaders, Sec. VII-A).
  std::vector<std::int64_t> vals;
  vals.reserve(slot.proposals.size());
  for (const auto& [machine, v] : slot.proposals) vals.push_back(v);
  std::sort(vals.begin(), vals.end());
  stats_.proposal_spread_ms.push_back(
      static_cast<double>(vals[vals.size() - 1] - vals[vals.size() - 2]) /
      1e6);
  const std::int64_t margin = median - last_exit_clock_ns_;
  stats_.median_margin_ms.push_back(static_cast<double>(margin) / 1e6);
  if (margin < 0) {
    // The chosen median already passed on this replica: synchrony violated
    // (Sec. V footnote 4). Deliver as soon as possible and count it.
    ++stats_.divergence_median_passed;
    median = last_exit_clock_ns_;
  }
  slot.delivery = median;
  {
    const auto trace_it = live_traces_.find(p.copy_seq);
    if (trace_it != live_traces_.end()) {
      trace_it->second.chosen_delivery_virt_ms =
          static_cast<double>(median) / 1e6;
    }
  }
}

void GuestContext::on_sync_beacon(const net::SyncBeacon& b) {
  if (b.vm != vm_) return;
  if (b.machine == machine_->id()) return;  // self-delivery
  auto& v = peer_virt_ns_[b.machine.value];
  v = std::max(v, b.virt.ns);
}

void GuestContext::on_epoch_report(const net::EpochReport& r) {
  if (r.vm != vm_) return;
  epoch_reports_[r.epoch].by_machine[r.machine.value] = r;
}

void GuestContext::on_direct_packet(const net::Packet& pkt) {
  SW_EXPECTS(!policy_->replicated());
  const Duration processing =
      machine_->vmm_processing_delay(machine_->load_excluding(nullptr));
  const std::uint64_t seq = baseline_arrival_seq_++;
  NetSlot slot;
  slot.pkt = pkt;
  slot.have_pkt = true;
  slot.delivery = policy_->direct_delivery(
      (sim_->now() + processing).ns + machine_->config().clock_offset.ns,
      last_exit_clock_ns_);
  net_slots_.emplace(seq, std::move(slot));
}

void GuestContext::check_epoch(std::uint64_t exit_instr) {
  const std::uint64_t epoch_instr = policy_->epoch_instructions();
  const std::uint64_t boundary = (epoch_index_ + 1) * epoch_instr;
  if (exit_instr < boundary) return;

  // Apply the update derived from the *previous* epoch's reports. Doing it
  // exactly when the next boundary is crossed gives all replicas the same
  // (instruction-indexed) application point.
  if (epoch_index_ >= 1) {
    const std::uint64_t prev = epoch_index_ - 1;
    const auto it = epoch_reports_.find(prev);
    if (it == epoch_reports_.end() ||
        it->second.by_machine.size() <
            static_cast<std::size_t>(cfg_.replica_count)) {
      ++stats_.divergence_epoch_missing;
    } else {
      // Median report by R_k; D* comes from the same machine (Sec. IV-A).
      std::vector<net::EpochReport> reports;
      for (const auto& [machine, rep] : it->second.by_machine) {
        reports.push_back(rep);
      }
      std::sort(reports.begin(), reports.end(),
                [](const net::EpochReport& a, const net::EpochReport& b) {
                  return a.r_k.ns < b.r_k.ns;
                });
      const net::EpochReport& med = reports[(reports.size() - 1) / 2];
      // Paper Sec. IV-A: slope_{k+1} = clamp((R*_k - virt_k(I) + D*_k) / I).
      const auto end_it = epoch_end_virt_.find(prev);
      SW_ASSERT(end_it != epoch_end_virt_.end());
      const double virt_at_epoch_end = static_cast<double>(end_it->second);
      const double candidate =
          (static_cast<double>(med.r_k.ns) - virt_at_epoch_end +
           static_cast<double>(med.d_k.ns)) /
          static_cast<double>(epoch_instr);
      const double slope = policy_->epoch_slope(candidate);
      clock_.rebase(exit_instr, slope);
      ++stats_.epoch_rebase_count;
    }
    epoch_reports_.erase(prev);
    epoch_end_virt_.erase(prev);
  }

  // Emit this epoch's report.
  epoch_end_virt_[epoch_index_] = clock_.at_instr(exit_instr).ns;
  if (cfg_.replica_count > 1 && services_.control_multicast) {
    net::EpochReport rep;
    rep.vm = vm_;
    rep.machine = machine_->id();
    rep.epoch = epoch_index_;
    rep.d_k = machine_->local_clock() - epoch_start_local_;
    rep.r_k = machine_->local_clock();
    services_.control_multicast(rep, 96);
  }
  epoch_start_local_ = machine_->local_clock();
  ++epoch_index_;
}

}  // namespace stopwatch::hypervisor
