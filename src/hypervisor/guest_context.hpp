// The per-replica VMM driver — StopWatch's modified hypervisor + QEMU
// device models (paper Secs. IV-V), one instance per (guest VM, replica).
//
// Responsibilities:
//  * execution engine: runs the guest in instruction slices whose real
//    duration reflects host speed, contention, and jitter; every slice ends
//    in a guest-caused VM exit (periodic, or at a trapping I/O instruction);
//  * the guest clock and PIT timer-interrupt injection (Sec. IV-B);
//  * the network card device model: buffer-hide inbound packets and deliver
//    them at the policy's delivery time — under StopWatch: propose
//    virt(last exit) + Δn, multicast proposals, adopt the median, inject at
//    the first guest-caused exit past the delivery time, and only then copy
//    data to the guest (anti-polling) (Sec. V);
//  * the IDE disk / DMA device model: deliver completion interrupts at the
//    policy's disk deadline (virt(request) + Δd under StopWatch), provided
//    the physical transfer finished (Sec. V);
//  * output tunneling to the egress node, when the policy tunnels (Sec. VI);
//  * fastest-replica throttling via virtual-time sync beacons (Sec. VII-A);
//  * epoch-based clock resynchronization (Sec. IV-A);
//  * divergence detection (synchrony violations).
//
// Every policy-dependent decision is delegated to the MitigationPolicy
// built from GuestContextConfig::policy (see hypervisor/policy.hpp): under
// PolicyKind::kBaselineXen the same machinery emulates unmodified Xen —
// the guest clock passes through machine-local real time, and interrupts
// are delivered as soon as Dom0 has processed them — which is exactly what
// leaks coresident-victim activity.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "hypervisor/machine.hpp"
#include "hypervisor/policy.hpp"
#include "hypervisor/virtual_clock.hpp"
#include "net/frame.hpp"
#include "sim/simulator.hpp"
#include "vm/guest.hpp"

namespace stopwatch::hypervisor {

struct GuestContextConfig {
  /// Mitigation-policy selection + per-policy knobs (StopWatch's Δn/Δd,
  /// aggregation rule, throttle gap, epoch resync, ... live in
  /// policy.stopwatch; see hypervisor/policy.hpp).
  PolicyConfig policy{};
  /// Replicas per guest VM (3 in the paper; 5 hardens against Sec. IX).
  /// Forced to 1 by non-replicated policies.
  int replica_count{3};
  /// Keep per-packet protocol traces (first 32 inbound packets).
  bool record_packet_traces{false};
  /// Guest-caused VM exits occur at least every this many instructions.
  std::uint64_t exit_interval_instr{100'000};
  /// PIT period (250 Hz in the paper's guests).
  Duration timer_period{Duration::micros(4000)};
  /// Initial virtual-clock slope (ns of virtual time per instruction).
  double initial_slope{1.0};
};

/// Timeline of one inbound packet through the StopWatch protocol (Fig. 2/3).
struct PacketTrace {
  std::uint64_t copy_seq{0};
  double arrival_real_ms{0.0};
  /// (machine, proposed delivery in virtual ms), in arrival order.
  std::vector<std::pair<std::uint32_t, double>> proposals_ms;
  double chosen_delivery_virt_ms{0.0};
  double inject_virt_ms{0.0};
  double inject_real_ms{0.0};
};

/// Divergence and delivery statistics (per replica).
struct GuestContextStats {
  std::uint64_t net_deliveries{0};
  std::uint64_t disk_deliveries{0};
  std::uint64_t timer_injections{0};
  std::uint64_t outputs_tunneled{0};
  /// Median delivery time had already passed when determined (synchrony
  /// assumption violated; Sec. V footnote 4).
  std::uint64_t divergence_median_passed{0};
  /// Physical disk transfer not finished by the virtual delivery time
  /// (Δd too small).
  std::uint64_t divergence_disk_late{0};
  /// Epoch reports incomplete at the (deterministic) apply point.
  std::uint64_t divergence_epoch_missing{0};
  std::uint64_t throttle_stalls{0};
  Duration total_stall_time{};
  std::uint64_t epoch_rebase_count{0};

  /// Per-packet spread (max - min) of the three proposals, in ms of virtual
  /// time — the quantity Δn must dominate (Sec. VII-A calibration).
  std::vector<double> proposal_spread_ms;
  /// Slack between median determination and the median deadline, ms.
  std::vector<double> median_margin_ms;
  /// Slack between physical disk completion and virtual delivery, ms.
  std::vector<double> disk_margin_ms;
  /// Protocol traces (when GuestContextConfig::record_packet_traces).
  std::vector<PacketTrace> packet_traces;
};

/// Hooks the GuestContext needs from the cloud fabric.
struct ReplicaServices {
  /// Multicast a control payload to the VM's replica VMM group (reliable;
  /// includes synchronous self-delivery).
  std::function<void(net::FramePayload, std::uint32_t bytes)> control_multicast;
  /// Send a frame from this machine's network node.
  std::function<void(net::Frame)> send_frame;
  NodeId machine_node{};
  NodeId egress_node{};
};

class GuestContext final : public LoadSource {
 public:
  GuestContext(VmId vm, ReplicaIndex replica, NodeId vm_addr,
               Machine& machine, sim::Simulator& sim, GuestContextConfig cfg,
               std::unique_ptr<vm::GuestProgram> program,
               std::uint64_t det_seed, ReplicaServices services);

  GuestContext(const GuestContext&) = delete;
  GuestContext& operator=(const GuestContext&) = delete;

  /// Boot the guest and begin execution. `start` is the initial virtual
  /// time (median of the replicas' machine clocks under StopWatch).
  void start(VirtTime start);

  /// Stop scheduling further slices (end of experiment).
  void halt();

  // --- Cloud-facing event entry points ---

  /// Replicated policies: an ingress copy of an inbound guest packet
  /// arrived at this machine's Dom0.
  void on_ingress_copy(const net::IngressCopy& copy);
  /// A peer VMM's (or our own) proposal for an inbound packet.
  void on_proposal(const net::Proposal& p);
  /// A peer replica's virtual-time beacon.
  void on_sync_beacon(const net::SyncBeacon& b);
  /// A peer replica's epoch report.
  void on_epoch_report(const net::EpochReport& r);
  /// Non-replicated policies: a packet delivered directly to this machine
  /// for this guest.
  void on_direct_packet(const net::Packet& pkt);

  // --- Introspection for experiments ---

  [[nodiscard]] VirtTime virt_now() const;
  [[nodiscard]] std::uint64_t instr() const { return guest_->instr(); }
  [[nodiscard]] const GuestContextStats& stats() const { return stats_; }
  [[nodiscard]] const MitigationPolicy& policy() const { return *policy_; }
  [[nodiscard]] const vm::GuestCounters& guest_counters() const {
    return guest_->counters();
  }
  [[nodiscard]] vm::GuestProgram& program() { return guest_->program(); }
  [[nodiscard]] VmId vm() const { return vm_; }
  [[nodiscard]] ReplicaIndex replica() const { return replica_; }
  [[nodiscard]] Machine& machine() { return *machine_; }
  /// Rolling hash + count of emitted guest packets (replica-determinism
  /// check: all replicas of a VM must agree at equal counts).
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> output_signature()
      const {
    return {out_hash_chain_, out_seq_};
  }
  /// Per-packet output hashes, for prefix comparison across replicas.
  [[nodiscard]] const std::vector<std::uint64_t>& output_hashes() const {
    return out_hashes_;
  }
  [[nodiscard]] double activity() const override { return activity_ema_; }

 private:
  // Execution engine.
  void schedule_slice();
  void on_slice_end(std::uint64_t n);
  void on_guest_exit();
  void beacon_tick();
  void process_io_ops();
  void inject_due_interrupts();
  void check_epoch(std::uint64_t exit_instr);
  bool should_stall() const;
  void enter_stall();
  void recheck_stall();

  // Guest-clock "now" in ns (virtual under StopWatch/Deterland,
  // machine-local real under baseline/TIFC) as of the last guest-caused
  // exit.
  [[nodiscard]] std::int64_t guest_clock_at_last_exit() const {
    return last_exit_clock_ns_;
  }

  // Device-model state for one pending inbound packet.
  struct NetSlot {
    net::Packet pkt;
    bool have_pkt{false};
    /// Proposals received so far, keyed by proposer machine.
    std::map<std::uint32_t, std::int64_t> proposals;
    std::optional<std::int64_t> delivery;  // guest-clock ns
    std::int64_t proposal_base{0};
  };
  struct DiskSlot {
    std::uint64_t request_id{0};
    std::int64_t delivery{0};   // guest-clock ns
    RealTime physical_done{};
    bool read{false};
    bool late_counted{false};
  };

  VmId vm_;
  ReplicaIndex replica_;
  NodeId vm_addr_;
  Machine* machine_;
  sim::Simulator* sim_;
  GuestContextConfig cfg_;
  ReplicaServices services_;

  /// Built before clock_ (clock mode is a policy capability).
  std::unique_ptr<MitigationPolicy> policy_;
  std::unique_ptr<vm::GuestVm> guest_;
  VirtualClock clock_;

  bool running_{false};
  bool halted_{false};
  bool stalled_{false};
  RealTime stall_began_{};
  std::uint64_t pending_slice_n_{0};
  /// Periodic timers each own one simulator arena slot for their lifetime
  /// (re-armed in place via Simulator::reschedule_after; the handles stay
  /// valid across re-arms, so halt() can still cancel them).
  std::optional<sim::EventId> slice_event_;
  std::optional<sim::EventId> beacon_event_;
  std::optional<sim::EventId> stall_event_;

  std::uint64_t last_exit_instr_{0};
  std::int64_t last_exit_clock_ns_{0};
  std::uint64_t next_periodic_exit_{0};
  std::int64_t next_timer_tick_ns_{0};
  std::uint64_t next_preempt_instr_{0};

  // Network device model.
  std::map<std::uint64_t, NetSlot> net_slots_;  // keyed by ingress copy_seq
  std::uint64_t next_net_inject_seq_{1};
  std::uint64_t baseline_arrival_seq_{1};
  std::map<std::uint64_t, PacketTrace> live_traces_;

  // Disk device model (FIFO: requests complete in order).
  std::deque<DiskSlot> disk_slots_;

  // Output path.
  std::uint64_t out_seq_{0};
  std::uint64_t out_hash_chain_{0};
  std::vector<std::uint64_t> out_hashes_;

  // Peer tracking (throttle).
  std::map<std::uint32_t, std::int64_t> peer_virt_ns_;  // by machine id

  // Epoch resync state.
  std::uint64_t epoch_index_{0};
  RealTime epoch_start_local_{};
  struct EpochReports {
    std::map<std::uint32_t, net::EpochReport> by_machine;
  };
  std::map<std::uint64_t, EpochReports> epoch_reports_;
  /// virt_k(I): this replica's virtual time at the end of epoch k (recorded
  /// when the epoch report is emitted; consumed by the rebase).
  std::map<std::uint64_t, std::int64_t> epoch_end_virt_;

  double activity_ema_{0.0};

  GuestContextStats stats_;
};

}  // namespace stopwatch::hypervisor
