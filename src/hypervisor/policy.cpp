#include "hypervisor/policy.hpp"

#include <string>

#include "common/contracts.hpp"

namespace stopwatch::hypervisor {

void MitigationPolicy::validate_replicas(const std::string& where,
                                         int replica_count,
                                         int machine_count) const {
  SW_EXPECTS_MSG(replica_count >= 1,
                 where + ".replica_count must be >= 1 (got " +
                     std::to_string(replica_count) + ")");
  SW_EXPECTS_MSG(replica_count % 2 == 1,
                 where + ".replica_count must be odd for median "
                         "agreement (got " +
                     std::to_string(replica_count) + ")");
  if (replicated()) {
    SW_EXPECTS_MSG(replica_count <= machine_count,
                   where + ".replica_count (" + std::to_string(replica_count) +
                       ") cannot exceed machine_count (" +
                       std::to_string(machine_count) +
                       "): replicas must land on distinct machines");
  }
}

std::int64_t MitigationPolicy::propose_delivery(std::int64_t /*guest_now*/)
    const {
  SW_EXPECTS_MSG(false, "policy '" + std::string(name()) +
                            "' does not use delivery proposals");
  return 0;
}

std::int64_t MitigationPolicy::combine_proposals(
    const std::map<std::uint32_t, std::int64_t>& /*by_machine*/) const {
  SW_EXPECTS_MSG(false, "policy '" + std::string(name()) +
                            "' does not aggregate delivery proposals");
  return 0;
}

std::int64_t MitigationPolicy::direct_delivery(std::int64_t arrival_local,
                                               std::int64_t /*guest_now*/)
    const {
  return arrival_local;
}

int MitigationPolicy::egress_release_copies(int /*wired_replicas*/) const {
  return 1;
}

Duration MitigationPolicy::egress_release_delay(std::uint32_t /*vm*/,
                                                RealTime /*now*/) {
  ++stats_.egress_releases;
  return {};
}

std::unique_ptr<MitigationPolicy> make_policy(const PolicyConfig& cfg) {
  std::unique_ptr<MitigationPolicy> policy;
  switch (cfg.kind) {
    case PolicyKind::kBaselineXen:
      policy = make_baseline_xen_policy();
      break;
    case PolicyKind::kStopWatch:
      policy = make_stopwatch_policy(cfg.stopwatch);
      break;
    case PolicyKind::kDeterland:
      policy = make_deterland_policy(cfg.deterland);
      break;
    case PolicyKind::kTifcPacing:
      policy = make_tifc_policy(cfg.tifc);
      break;
  }
  SW_EXPECTS_MSG(policy != nullptr, "unknown PolicyKind");
  // Customized StopWatch replica knobs are dead weight under any policy
  // that does not replicate; failing here (naming the policy) beats
  // silently ignoring the configuration.
  if (!policy->replicated() && !(cfg.stopwatch == StopWatchPolicyConfig{})) {
    SW_EXPECTS_MSG(false,
                   "policy '" + std::string(policy->name()) +
                       "' does not replicate guest VMs, but StopWatch "
                       "replica knobs (PolicyConfig.stopwatch) were "
                       "customized; move them under kind = kStopWatch or "
                       "drop them");
  }
  return policy;
}

bool policy_replicated(PolicyKind kind) {
  return make_policy(PolicyConfig{kind})->replicated();
}

const std::vector<std::string>& policy_choices() {
  static const std::vector<std::string> kChoices = {"baseline", "stopwatch",
                                                    "deterland", "tifc"};
  return kChoices;
}

PolicyKind policy_kind_from_choice(const std::string& choice) {
  if (choice == "baseline") return PolicyKind::kBaselineXen;
  if (choice == "stopwatch") return PolicyKind::kStopWatch;
  if (choice == "deterland") return PolicyKind::kDeterland;
  if (choice == "tifc") return PolicyKind::kTifcPacing;
  SW_EXPECTS_MSG(false, "unknown policy choice '" + choice +
                            "' (expected baseline|stopwatch|deterland|tifc)");
  return PolicyKind::kStopWatch;
}

std::string_view policy_choice_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kBaselineXen:
      return "baseline";
    case PolicyKind::kStopWatch:
      return "stopwatch";
    case PolicyKind::kDeterland:
      return "deterland";
    case PolicyKind::kTifcPacing:
      return "tifc";
  }
  return "unknown";
}

}  // namespace stopwatch::hypervisor
