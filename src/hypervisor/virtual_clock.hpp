// The guest's virtual clock (paper Sec. IV, Eqn. 1):
//
//   virt(instr) = slope × instr + start
//
// All guest-visible time sources (PIT timer interrupts, rdtsc, CMOS RTC,
// PIT counter readback) are derived from this function of the guest's
// retired-instruction count (branch count in the prototype). Epoch-based
// resynchronization (Sec. IV-A) rebases the line with a clamped slope while
// keeping it continuous.
//
// Under the unmodified-Xen baseline policy the clock passes through the
// machine-local real clock instead — that is precisely the timing channel
// StopWatch closes.
#pragma once

#include <cstdint>
#include <functional>

#include "common/contracts.hpp"
#include "common/time.hpp"

namespace stopwatch::hypervisor {

class VirtualClock {
 public:
  enum class Mode {
    kVirtualized,      ///< Eqn. 1 over guest instructions (StopWatch)
    kRealPassthrough,  ///< machine-local real time (unmodified Xen)
  };

  /// `local_real_now` returns the machine-local real clock (simulated global
  /// time plus the machine's clock offset); used only in passthrough mode.
  VirtualClock(Mode mode, std::function<RealTime()> local_real_now)
      : mode_(mode), local_real_now_(std::move(local_real_now)) {
    SW_EXPECTS(local_real_now_ != nullptr);
  }

  /// Sets the line's origin: virt(anchor 0) = start, with `slope` in
  /// nanoseconds of virtual time per instruction.
  void initialize(VirtTime start, double slope) {
    SW_EXPECTS(slope > 0.0);
    anchor_instr_ = 0;
    anchor_virt_ = start;
    slope_ = slope;
    initialized_ = true;
  }

  [[nodiscard]] Mode mode() const { return mode_; }
  [[nodiscard]] double slope() const { return slope_; }
  [[nodiscard]] bool initialized() const { return initialized_; }

  /// Virtual time after `instr` retired instructions (virtualized mode).
  [[nodiscard]] VirtTime at_instr(std::uint64_t instr) const {
    SW_EXPECTS(initialized_);
    SW_EXPECTS(instr >= anchor_instr_);
    const double delta = static_cast<double>(instr - anchor_instr_) * slope_;
    return anchor_virt_ + Duration{static_cast<std::int64_t>(delta)};
  }

  /// The guest-visible clock right now, given the current instruction count.
  [[nodiscard]] VirtTime now(std::uint64_t current_instr) const {
    if (mode_ == Mode::kRealPassthrough) {
      return VirtTime{local_real_now_().ns};
    }
    return at_instr(current_instr);
  }

  /// Rebase at `anchor_instr` with a new slope, keeping the clock continuous
  /// (start_{k+1} = virt_k at the anchor). Used by epoch resync.
  void rebase(std::uint64_t anchor_instr, double new_slope) {
    SW_EXPECTS(initialized_);
    SW_EXPECTS(new_slope > 0.0);
    const VirtTime v = at_instr(anchor_instr);
    anchor_instr_ = anchor_instr;
    anchor_virt_ = v;
    slope_ = new_slope;
  }

 private:
  Mode mode_;
  std::function<RealTime()> local_real_now_;
  std::uint64_t anchor_instr_{0};
  VirtTime anchor_virt_{};
  double slope_{1.0};
  bool initialized_{false};
};

/// Clamp a candidate slope into [lo, hi] — the paper's argmin over [ℓ, u]
/// (Sec. IV-A): the closest admissible value to the candidate.
[[nodiscard]] inline double clamp_slope(double candidate, double lo, double hi) {
  SW_EXPECTS(lo > 0.0 && lo <= hi);
  if (candidate < lo) return lo;
  if (candidate > hi) return hi;
  return candidate;
}

}  // namespace stopwatch::hypervisor
