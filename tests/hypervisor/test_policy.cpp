#include "hypervisor/policy.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/contracts.hpp"
#include "common/time.hpp"

namespace stopwatch::hypervisor {
namespace {

// --- Capability matrix -----------------------------------------------------

TEST(Policy, CapabilityMatrix) {
  const auto baseline = make_policy(PolicyConfig{PolicyKind::kBaselineXen});
  const auto sw = make_policy(PolicyConfig{PolicyKind::kStopWatch});
  const auto det = make_policy(PolicyConfig{PolicyKind::kDeterland});
  const auto tifc = make_policy(PolicyConfig{PolicyKind::kTifcPacing});

  EXPECT_FALSE(baseline->replicated());
  EXPECT_TRUE(sw->replicated());
  EXPECT_FALSE(det->replicated());
  EXPECT_FALSE(tifc->replicated());

  EXPECT_FALSE(baseline->tunnels_output());
  EXPECT_TRUE(sw->tunnels_output());
  EXPECT_TRUE(det->tunnels_output());
  EXPECT_TRUE(tifc->tunnels_output());

  EXPECT_EQ(baseline->clock_mode(), VirtualClock::Mode::kRealPassthrough);
  EXPECT_EQ(sw->clock_mode(), VirtualClock::Mode::kVirtualized);
  EXPECT_EQ(det->clock_mode(), VirtualClock::Mode::kVirtualized);
  EXPECT_EQ(tifc->clock_mode(), VirtualClock::Mode::kRealPassthrough);
}

TEST(Policy, EffectiveReplicasCollapsesForNonReplicatedBackends) {
  for (const PolicyKind kind :
       {PolicyKind::kBaselineXen, PolicyKind::kDeterland,
        PolicyKind::kTifcPacing}) {
    const auto policy = make_policy(PolicyConfig{kind});
    EXPECT_EQ(policy->effective_replicas(3), 1) << policy->name();
    EXPECT_EQ(policy->effective_replicas(5), 1) << policy->name();
  }
  const auto sw = make_policy(PolicyConfig{PolicyKind::kStopWatch});
  EXPECT_EQ(sw->effective_replicas(3), 3);
  EXPECT_EQ(sw->effective_replicas(5), 5);
  EXPECT_FALSE(policy_replicated(PolicyKind::kDeterland));
  EXPECT_TRUE(policy_replicated(PolicyKind::kStopWatch));
}

TEST(Policy, ValidateReplicasOddUnconditionalDistinctOnlyIfReplicated) {
  const auto sw = make_policy(PolicyConfig{PolicyKind::kStopWatch});
  const auto baseline = make_policy(PolicyConfig{PolicyKind::kBaselineXen});
  EXPECT_THROW(sw->validate_replicas("X", 0, 3), ContractViolation);
  EXPECT_THROW(sw->validate_replicas("X", 4, 5), ContractViolation);
  // Distinct-machines bound binds only replicated backends.
  EXPECT_THROW(sw->validate_replicas("X", 5, 3), ContractViolation);
  EXPECT_NO_THROW(baseline->validate_replicas("X", 5, 3));
  EXPECT_THROW(baseline->validate_replicas("X", 4, 5), ContractViolation);
}

// --- Choice mapping --------------------------------------------------------

TEST(Policy, ChoiceNamesRoundTrip) {
  ASSERT_EQ(policy_choices().size(), 4u);
  for (const std::string& choice : policy_choices()) {
    const PolicyKind kind = policy_kind_from_choice(choice);
    EXPECT_EQ(policy_choice_name(kind), choice);
    EXPECT_EQ(make_policy(PolicyConfig{kind})->name(), choice);
  }
  EXPECT_THROW((void)policy_kind_from_choice("xen"), ContractViolation);
}

// --- ContractViolation for dead knobs --------------------------------------

TEST(Policy, StopWatchKnobsUnderNonReplicatedBackendAreRejectedByName) {
  for (const PolicyKind kind :
       {PolicyKind::kBaselineXen, PolicyKind::kDeterland,
        PolicyKind::kTifcPacing}) {
    PolicyConfig cfg{kind};
    cfg.stopwatch.delta_n = Duration::millis(99);
    try {
      (void)make_policy(cfg);
      FAIL() << "customized StopWatch knobs accepted under "
             << std::string(policy_choice_name(kind));
    } catch (const ContractViolation& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find(std::string(policy_choice_name(kind))),
                std::string::npos)
          << what;
    }
  }
  // Default (untouched) StopWatch sub-config stays legal everywhere.
  EXPECT_NO_THROW((void)make_policy(PolicyConfig{PolicyKind::kBaselineXen}));
  // And under StopWatch itself the knobs are live, not dead.
  PolicyConfig sw{PolicyKind::kStopWatch};
  sw.stopwatch.delta_n = Duration::millis(99);
  EXPECT_NO_THROW((void)make_policy(sw));
}

// --- StopWatch delivery rules ----------------------------------------------

TEST(Policy, StopWatchProposalAndAggregationRules) {
  StopWatchPolicyConfig cfg;
  cfg.delta_n = Duration::millis(10);
  const auto sw = make_stopwatch_policy(cfg);
  EXPECT_EQ(sw->propose_delivery(5'000'000), 15'000'000);

  const std::map<std::uint32_t, std::int64_t> proposals = {
      {0, 30}, {1, 10}, {2, 20}};
  EXPECT_EQ(sw->combine_proposals(proposals), 20);  // median

  cfg.aggregation = AggregationRule::kMin;
  EXPECT_EQ(make_stopwatch_policy(cfg)->combine_proposals(proposals), 10);
  cfg.aggregation = AggregationRule::kMax;
  EXPECT_EQ(make_stopwatch_policy(cfg)->combine_proposals(proposals), 30);
  cfg.aggregation = AggregationRule::kLeader;
  cfg.leader_machine = 1;
  EXPECT_EQ(make_stopwatch_policy(cfg)->combine_proposals(proposals), 10);
}

TEST(Policy, StopWatchDiskDeadlineIsDeterministic) {
  StopWatchPolicyConfig cfg;
  cfg.delta_d = Duration::millis(12);
  const auto sw = make_stopwatch_policy(cfg);
  // Deadline depends on the trap-time guest clock, not the physical
  // completion.
  EXPECT_EQ(sw->disk_delivery(1'000'000, 999'000'000), 13'000'000);
  EXPECT_TRUE(sw->deterministic_disk_deadline());
  EXPECT_EQ(sw->egress_release_copies(3), 2);
  EXPECT_EQ(sw->egress_release_copies(5), 3);
  EXPECT_EQ(sw->egress_release_delay(0, RealTime::millis(7)).ns, 0);
}

// --- Deterland batch-boundary quantization ----------------------------------

TEST(Policy, DeterlandQuantizesDeliveriesUpToBatchBoundaries) {
  DeterlandPolicyConfig cfg;
  cfg.batch_quantum = Duration::millis(1);
  cfg.delta_n = Duration::millis(10);
  cfg.delta_d = Duration::millis(12);
  const auto det = make_deterland_policy(cfg);

  // guest_now + delta_n = 10.4 ms -> next boundary 11 ms.
  EXPECT_EQ(det->direct_delivery(/*arrival_local=*/0, /*guest_now=*/400'000),
            11'000'000);
  // Exactly on a boundary stays put.
  EXPECT_EQ(det->direct_delivery(0, 1'000'000), 11'000'000);
  EXPECT_EQ(det->direct_delivery(0, 0), 10'000'000);
  // Disk: guest_now + delta_d, quantized; completion time is irrelevant.
  EXPECT_EQ(det->disk_delivery(500'000, 999'000'000), 13'000'000);
  EXPECT_TRUE(det->deterministic_disk_deadline());
}

TEST(Policy, DeterlandHoldsEgressToTheNextBatchBoundary) {
  DeterlandPolicyConfig cfg;
  cfg.batch_quantum = Duration::millis(1);
  const auto det = make_deterland_policy(cfg);
  EXPECT_EQ(det->egress_release_delay(0, RealTime{{400'000}}).ns, 600'000);
  // On-boundary releases go out immediately (hold 0), keeping the wire
  // grid exactly the batch grid.
  EXPECT_EQ(det->egress_release_delay(0, RealTime{{2'000'000}}).ns, 0);
  EXPECT_EQ(det->release_quantum().ns, 1'000'000);
}

// --- TIFC paced-lane release order ------------------------------------------

TEST(Policy, TifcReleasesAreGridAlignedAndSpacedPerVm) {
  TifcPolicyConfig cfg;
  cfg.release_quantum = Duration::micros(500);
  const auto tifc = make_tifc_policy(cfg);
  const std::int64_t q = 500'000;

  // First release: aligned up to the grid.
  const Duration h1 = tifc->egress_release_delay(7, RealTime{{100'000}});
  EXPECT_EQ(100'000 + h1.ns, q);
  // Second release at the same instant: the lane advances a full quantum.
  const Duration h2 = tifc->egress_release_delay(7, RealTime{{100'000}});
  EXPECT_EQ(100'000 + h2.ns, 2 * q);
  // A later burst keeps spacing >= q from the lane's last release.
  const Duration h3 = tifc->egress_release_delay(7, RealTime{{150'000}});
  EXPECT_EQ(150'000 + h3.ns, 3 * q);
  // Once real time has moved past the lane, alignment dominates again.
  const Duration h4 = tifc->egress_release_delay(7, RealTime{{10'200'000}});
  EXPECT_EQ(10'200'000 + h4.ns, 10'500'000);

  // Independent lanes: a different VM is not delayed by VM 7's backlog.
  const Duration other = tifc->egress_release_delay(8, RealTime{{100'000}});
  EXPECT_EQ(100'000 + other.ns, q);

  EXPECT_EQ(tifc->release_quantum().ns, q);
  EXPECT_FALSE(tifc->deterministic_disk_deadline());
  // Real-clock passthrough disk completion: delivered when done.
  EXPECT_EQ(tifc->disk_delivery(1'000'000, 3'000'000), 3'000'000);
}

}  // namespace
}  // namespace stopwatch::hypervisor
