// Direct tests of the VMM per-replica driver: clock virtualization, PIT
// injection, the network/disk device-model protocols, throttling, epoch
// resync, and the baseline-Xen emulation — against a hand-built harness
// with deterministic (jitter-free) machine parameters.
#include "hypervisor/guest_context.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "hypervisor/machine.hpp"
#include "sim/simulator.hpp"

namespace stopwatch::hypervisor {
namespace {

/// Guest program that records delivery timestamps via the guest clock.
class RecorderProgram final : public vm::GuestProgram {
 public:
  void on_boot(vm::GuestApi& api) override {
    api_ = &api;
    if (boot_action) boot_action(api);
  }
  void on_timer_tick(vm::GuestApi& api, std::uint64_t) override {
    tick_virt_ns.push_back(api.now().ns);
  }
  void on_packet(vm::GuestApi& api, const net::Packet& pkt) override {
    packet_virt_ns.push_back(api.now().ns);
    packet_seqs.push_back(pkt.seq);
  }

  std::function<void(vm::GuestApi&)> boot_action;
  vm::GuestApi* api_{nullptr};
  std::vector<std::int64_t> tick_virt_ns;
  std::vector<std::int64_t> packet_virt_ns;
  std::vector<std::uint64_t> packet_seqs;
};

MachineConfig exact_machine() {
  MachineConfig mc;
  mc.base_ips = 1e9;
  mc.ips_jitter_sigma = 0.0;
  mc.contention_alpha = 0.0;
  mc.exit_overhead = Duration{};
  mc.vmm_base_delay = Duration::micros(50);
  mc.vmm_load_delay = Duration{};
  mc.vmm_delay_jitter_sigma = 0.0;
  mc.disk_seek_min = Duration::millis(3);
  mc.disk_seek_max = Duration::millis(3);
  mc.preempt_wait = Duration{};
  mc.clock_offset = Duration{};
  return mc;
}

struct Harness {
  sim::Simulator sim;
  Machine machine;
  RecorderProgram* program{nullptr};
  std::unique_ptr<GuestContext> ctx;
  std::vector<net::Proposal> own_proposals;
  std::vector<net::EpochReport> own_reports;
  std::vector<net::Frame> frames_out;

  explicit Harness(GuestContextConfig cfg,
                   std::function<void(vm::GuestApi&)> boot = nullptr,
                   MachineConfig mc = exact_machine())
      : machine(MachineId{0}, sim, mc, Rng(5)) {
    auto prog = std::make_unique<RecorderProgram>();
    prog->boot_action = std::move(boot);
    program = prog.get();

    ReplicaServices svc;
    svc.machine_node = NodeId{100};
    svc.egress_node = NodeId{200};
    svc.send_frame = [this](net::Frame f) { frames_out.push_back(std::move(f)); };
    svc.control_multicast = [this](net::FramePayload payload, std::uint32_t) {
      // Synchronous self-delivery, as MulticastGroup provides.
      if (const auto* p = std::get_if<net::Proposal>(&payload)) {
        own_proposals.push_back(*p);
        ctx->on_proposal(*p);
      } else if (const auto* e = std::get_if<net::EpochReport>(&payload)) {
        own_reports.push_back(*e);
        ctx->on_epoch_report(*e);
      } else if (const auto* b = std::get_if<net::SyncBeacon>(&payload)) {
        ctx->on_sync_beacon(*b);
      }
    };
    ctx = std::make_unique<GuestContext>(VmId{1}, ReplicaIndex{0}, NodeId{50},
                                         machine, sim, cfg, std::move(prog),
                                         777, svc);
  }

  void start() { ctx->start(VirtTime{}); }

  void feed_peer_proposal(std::uint64_t seq, std::int64_t virt_ns,
                          std::uint32_t machine_id) {
    net::Proposal p;
    p.vm = VmId{1};
    p.copy_seq = seq;
    p.proposed_delivery = VirtTime{virt_ns};
    p.proposer = MachineId{machine_id};
    ctx->on_proposal(p);
  }

  void feed_ingress(std::uint64_t seq, std::uint64_t pkt_seq = 0) {
    net::IngressCopy copy;
    copy.vm = VmId{1};
    copy.copy_seq = seq;
    copy.pkt.seq = pkt_seq;
    copy.pkt.size_bytes = 100;
    ctx->on_ingress_copy(copy);
  }
};

GuestContextConfig stopwatch_cfg() {
  GuestContextConfig cfg;
  cfg.policy = Policy::kStopWatch;
  cfg.replica_count = 3;
  cfg.policy.stopwatch.delta_n = Duration::millis(10);
  cfg.policy.stopwatch.delta_d = Duration::millis(12);
  return cfg;
}

TEST(GuestContext, VirtualTimeTracksInstructionsExactly) {
  Harness h(stopwatch_cfg());
  h.start();
  h.sim.run_until(RealTime::millis(50));
  // base_ips 1e9 and slope 1.0 with zero overheads: virt == real.
  EXPECT_NEAR(static_cast<double>(h.ctx->virt_now().ns), 50e6, 2e5);
}

TEST(GuestContext, TimerTicksAt250HzVirtual) {
  Harness h(stopwatch_cfg());
  h.start();
  h.sim.run_until(RealTime::millis(100));
  // 250 Hz -> one tick per 4 ms -> ~25 ticks in 100 ms.
  ASSERT_GE(h.program->tick_virt_ns.size(), 23u);
  ASSERT_LE(h.program->tick_virt_ns.size(), 25u);
  // Tick k is handled just after virtual time (k+1) * 4 ms.
  for (std::size_t k = 0; k < h.program->tick_virt_ns.size(); ++k) {
    const double expected = 4e6 * static_cast<double>(k + 1);
    EXPECT_NEAR(static_cast<double>(h.program->tick_virt_ns[k]), expected,
                1.5e5)
        << "tick " << k;
  }
}

TEST(GuestContext, ProposalIsVirtAtLastExitPlusDeltaN) {
  Harness h(stopwatch_cfg());
  h.start();
  h.sim.run_until(RealTime::millis(20));
  h.feed_ingress(1);
  // Dom0 processing: 50 us with zero jitter/load.
  h.sim.run_until(RealTime::millis(21));
  ASSERT_EQ(h.own_proposals.size(), 1u);
  // Proposal = virt at last exit (~20.05 ms) + 10 ms.
  EXPECT_NEAR(static_cast<double>(h.own_proposals[0].proposed_delivery.ns),
              30.05e6, 2e5);
}

TEST(GuestContext, PacketDeliveredAtMedianProposal) {
  Harness h(stopwatch_cfg());
  h.start();
  h.sim.run_until(RealTime::millis(5));
  h.feed_ingress(1, /*pkt_seq=*/42);
  h.sim.run_until(RealTime::millis(6));  // our proposal goes out (~15 ms)
  // Peers propose 18 ms and 40 ms; median = 18 ms.
  h.feed_peer_proposal(1, 18'000'000, 1);
  h.feed_peer_proposal(1, 40'000'000, 2);
  h.sim.run_until(RealTime::millis(30));
  ASSERT_EQ(h.program->packet_seqs.size(), 1u);
  EXPECT_EQ(h.program->packet_seqs[0], 42u);
  // Delivered at the first exit past virt 18 ms (+ handler cost ~2 us).
  EXPECT_NEAR(static_cast<double>(h.program->packet_virt_ns[0]), 18.0e6, 2e5);
  EXPECT_EQ(h.ctx->stats().net_deliveries, 1u);
  EXPECT_EQ(h.ctx->stats().divergence_median_passed, 0u);
}

TEST(GuestContext, PacketsInjectedInIngressOrder) {
  Harness h(stopwatch_cfg());
  h.start();
  h.sim.run_until(RealTime::millis(5));
  h.feed_ingress(1, 10);
  h.feed_ingress(2, 20);
  h.sim.run_until(RealTime::millis(6));
  // Packet 2's median is EARLIER than packet 1's; order must still hold.
  h.feed_peer_proposal(1, 25'000'000, 1);
  h.feed_peer_proposal(1, 25'000'000, 2);
  h.feed_peer_proposal(2, 20'000'000, 1);
  h.feed_peer_proposal(2, 20'000'000, 2);
  h.sim.run_until(RealTime::millis(40));
  ASSERT_EQ(h.program->packet_seqs.size(), 2u);
  EXPECT_EQ(h.program->packet_seqs[0], 10u);
  EXPECT_EQ(h.program->packet_seqs[1], 20u);
  EXPECT_LE(h.program->packet_virt_ns[0], h.program->packet_virt_ns[1]);
}

TEST(GuestContext, MedianAlreadyPassedCountsDivergence) {
  Harness h(stopwatch_cfg());
  h.start();
  h.sim.run_until(RealTime::millis(20));
  h.feed_ingress(1);
  h.sim.run_until(RealTime::millis(21));
  // Peer proposals in the past (virt ~1 ms): median passed.
  h.feed_peer_proposal(1, 1'000'000, 1);
  h.feed_peer_proposal(1, 1'100'000, 2);
  h.sim.run_until(RealTime::millis(25));
  EXPECT_EQ(h.ctx->stats().divergence_median_passed, 1u);
  EXPECT_EQ(h.ctx->stats().net_deliveries, 1u);  // delivered ASAP
}

TEST(GuestContext, DiskDeliveredAtDeltaD) {
  GuestContextConfig cfg = stopwatch_cfg();
  std::vector<std::int64_t> completion_virt;
  Harness h(cfg, [&completion_virt](vm::GuestApi& api) {
    api.disk_read(4096, [&completion_virt, &api] {
      completion_virt.push_back(api.now().ns);
    });
  });
  h.start();
  h.sim.run_until(RealTime::millis(30));
  ASSERT_EQ(completion_virt.size(), 1u);
  // Request trapped at the first exit (~0.02-0.1 ms); delivery at +12 ms.
  EXPECT_NEAR(static_cast<double>(completion_virt[0]), 12.1e6, 3e5);
  EXPECT_EQ(h.ctx->stats().disk_deliveries, 1u);
  EXPECT_EQ(h.ctx->stats().divergence_disk_late, 0u);
}

TEST(GuestContext, DiskLateWhenDeltaDTooSmall) {
  GuestContextConfig cfg = stopwatch_cfg();
  cfg.policy.stopwatch.delta_d = Duration::millis(1);  // disk takes 3 ms seek
  Harness h(cfg, [](vm::GuestApi& api) { api.disk_read(4096, [] {}); });
  h.start();
  h.sim.run_until(RealTime::millis(30));
  EXPECT_EQ(h.ctx->stats().divergence_disk_late, 1u);
  EXPECT_EQ(h.ctx->stats().disk_deliveries, 1u);  // still deterministic
}

TEST(GuestContext, OutputsAreTunneledToEgress) {
  Harness h(stopwatch_cfg(), [](vm::GuestApi& api) {
    net::Packet pkt;
    pkt.dst = NodeId{9};
    pkt.size_bytes = 100;
    api.send_packet(pkt);
  });
  h.start();
  h.sim.run_until(RealTime::millis(1));
  ASSERT_EQ(h.frames_out.size(), 1u);
  EXPECT_EQ(h.frames_out[0].dst, (NodeId{200}));  // egress node
  const auto* t = std::get_if<net::TunneledOutput>(&h.frames_out[0].payload);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->out_seq, 1u);
  EXPECT_EQ(t->pkt.dst, (NodeId{9}));
  EXPECT_EQ(t->content_hash, t->pkt.content_hash());
}

TEST(GuestContext, BaselineSendsDirectlyAndUsesRealClock) {
  GuestContextConfig cfg;
  cfg.policy = Policy::kBaselineXen;
  cfg.replica_count = 1;
  MachineConfig mc = exact_machine();
  mc.clock_offset = Duration::millis(500);
  Harness h(cfg, [](vm::GuestApi& api) {
    net::Packet pkt;
    pkt.dst = NodeId{9};
    pkt.size_bytes = 100;
    api.send_packet(pkt);
  }, mc);
  h.start();
  h.sim.run_until(RealTime::millis(10));
  ASSERT_EQ(h.frames_out.size(), 1u);
  EXPECT_EQ(h.frames_out[0].dst, (NodeId{9}));  // direct, no egress
  // Passthrough clock = machine-local real time (offset included).
  EXPECT_NEAR(static_cast<double>(h.ctx->virt_now().ns), 510e6, 1e5);
}

TEST(GuestContext, BaselineDeliversAfterProcessingDelay) {
  GuestContextConfig cfg;
  cfg.policy = Policy::kBaselineXen;
  cfg.replica_count = 1;
  Harness h(cfg);
  h.start();
  h.sim.run_until(RealTime::millis(5));
  net::Packet pkt;
  pkt.seq = 3;
  pkt.size_bytes = 80;
  h.ctx->on_direct_packet(pkt);
  h.sim.run_until(RealTime::millis(8));
  ASSERT_EQ(h.program->packet_seqs.size(), 1u);
  // Delivery ~5 ms + 50 us Dom0 + exit quantization.
  EXPECT_NEAR(static_cast<double>(h.program->packet_virt_ns[0]), 5.05e6, 2e5);
}

TEST(GuestContext, ThrottleStallsFastestReplica) {
  GuestContextConfig cfg = stopwatch_cfg();
  cfg.policy.stopwatch.max_replica_gap = Duration::millis(2);
  Harness h(cfg);
  h.start();
  // Peers report virtual times far behind ours.
  net::SyncBeacon b1;
  b1.vm = VmId{1};
  b1.machine = MachineId{1};
  b1.virt = VirtTime::millis(1);
  net::SyncBeacon b2 = b1;
  b2.machine = MachineId{2};
  h.ctx->on_sync_beacon(b1);
  h.ctx->on_sync_beacon(b2);
  h.sim.run_until(RealTime::millis(20));
  // We must have stalled: virt stays near peers' + gap, well below 20 ms.
  EXPECT_GT(h.ctx->stats().throttle_stalls, 0u);
  EXPECT_LT(h.ctx->virt_now().ns, Duration::millis(5).ns);

  // Peers catch up -> we resume.
  b1.virt = VirtTime::millis(50);
  b2.virt = VirtTime::millis(50);
  h.ctx->on_sync_beacon(b1);
  h.ctx->on_sync_beacon(b2);
  h.sim.run_until(RealTime::millis(40));
  EXPECT_GT(h.ctx->virt_now().ns, Duration::millis(10).ns);
}

TEST(GuestContext, EpochReportsEmittedAndClockRebased) {
  GuestContextConfig cfg = stopwatch_cfg();
  cfg.policy.stopwatch.epoch_resync = true;
  cfg.policy.stopwatch.epoch_instr = 10'000'000;  // 10 ms epochs
  cfg.policy.stopwatch.slope_min = 0.5;
  cfg.policy.stopwatch.slope_max = 2.0;
  Harness h(cfg);
  h.start();

  // Run in short phases, relaying our own reports as if the two peer
  // machines sent identical ones (identical hardware).
  std::size_t relayed = 0;
  for (int ms = 2; ms <= 80; ms += 2) {
    h.sim.run_until(RealTime::millis(ms));
    for (; relayed < h.own_reports.size(); ++relayed) {
      net::EpochReport r = h.own_reports[relayed];
      for (std::uint32_t m : {1u, 2u}) {
        r.machine = MachineId{m};
        h.ctx->on_epoch_report(r);
      }
    }
  }
  EXPECT_GE(h.own_reports.size(), 3u);
  EXPECT_GE(h.ctx->stats().epoch_rebase_count, 1u);
  // With identical machines the rebased slope stays ~1: virt ~ real.
  EXPECT_NEAR(static_cast<double>(h.ctx->virt_now().ns), 80e6, 2e6);
}

TEST(GuestContext, PacketTracesRecordProtocolTimeline) {
  GuestContextConfig cfg = stopwatch_cfg();
  cfg.record_packet_traces = true;
  Harness h(cfg);
  h.start();
  h.sim.run_until(RealTime::millis(5));
  h.feed_ingress(1, 9);
  h.sim.run_until(RealTime::millis(6));
  h.feed_peer_proposal(1, 17'000'000, 1);
  h.feed_peer_proposal(1, 19'000'000, 2);
  h.sim.run_until(RealTime::millis(30));
  ASSERT_EQ(h.ctx->stats().packet_traces.size(), 1u);
  const auto& tr = h.ctx->stats().packet_traces[0];
  EXPECT_EQ(tr.copy_seq, 1u);
  EXPECT_NEAR(tr.arrival_real_ms, 5.0, 0.1);
  EXPECT_EQ(tr.proposals_ms.size(), 3u);
  EXPECT_NEAR(tr.chosen_delivery_virt_ms, 17.0, 0.1);  // median of 15/17/19
  EXPECT_GE(tr.inject_virt_ms, tr.chosen_delivery_virt_ms);
}

}  // namespace
}  // namespace stopwatch::hypervisor
