#include "hypervisor/virtual_clock.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"

namespace stopwatch::hypervisor {
namespace {

TEST(VirtualClock, Eqn1LinearInInstructions) {
  VirtualClock clock(VirtualClock::Mode::kVirtualized,
                     [] { return RealTime{}; });
  clock.initialize(VirtTime::millis(5), 1.0);
  EXPECT_EQ(clock.at_instr(0), VirtTime::millis(5));
  EXPECT_EQ(clock.at_instr(1'000'000).ns, VirtTime::millis(6).ns);
}

TEST(VirtualClock, SlopeScalesProgress) {
  VirtualClock clock(VirtualClock::Mode::kVirtualized,
                     [] { return RealTime{}; });
  clock.initialize(VirtTime{}, 2.0);
  EXPECT_EQ(clock.at_instr(500).ns, 1000);
}

TEST(VirtualClock, RebaseKeepsContinuity) {
  VirtualClock clock(VirtualClock::Mode::kVirtualized,
                     [] { return RealTime{}; });
  clock.initialize(VirtTime{}, 1.0);
  const auto before = clock.at_instr(1000);
  clock.rebase(1000, 0.5);
  EXPECT_EQ(clock.at_instr(1000), before);  // continuous at the anchor
  EXPECT_EQ(clock.at_instr(2000).ns, before.ns + 500);
}

TEST(VirtualClock, PassthroughTracksMachineClock) {
  RealTime machine_now{};
  VirtualClock clock(VirtualClock::Mode::kRealPassthrough,
                     [&machine_now] { return machine_now; });
  clock.initialize(VirtTime{}, 1.0);
  machine_now = RealTime::millis(123);
  EXPECT_EQ(clock.now(777).ns, RealTime::millis(123).ns);  // instr ignored
}

TEST(VirtualClock, MonotoneUnderRebaseSequence) {
  VirtualClock clock(VirtualClock::Mode::kVirtualized,
                     [] { return RealTime{}; });
  clock.initialize(VirtTime{}, 1.0);
  std::int64_t prev = -1;
  std::uint64_t instr = 0;
  for (int k = 0; k < 20; ++k) {
    instr += 1000;
    const auto v = clock.at_instr(instr).ns;
    EXPECT_GT(v, prev);
    prev = v;
    clock.rebase(instr, k % 2 == 0 ? 0.9 : 1.1);
  }
}

TEST(VirtualClock, RejectsBadArguments) {
  VirtualClock clock(VirtualClock::Mode::kVirtualized,
                     [] { return RealTime{}; });
  EXPECT_THROW((void)clock.at_instr(0), ContractViolation);  // uninitialized
  EXPECT_THROW(clock.initialize(VirtTime{}, 0.0), ContractViolation);
  clock.initialize(VirtTime{}, 1.0);
  clock.rebase(100, 1.0);
  EXPECT_THROW((void)clock.at_instr(50), ContractViolation);  // before anchor
}

TEST(VirtualClock, ClampSlopeRespectsBounds) {
  EXPECT_DOUBLE_EQ(clamp_slope(1.05, 0.9, 1.1), 1.05);
  EXPECT_DOUBLE_EQ(clamp_slope(0.5, 0.9, 1.1), 0.9);
  EXPECT_DOUBLE_EQ(clamp_slope(2.0, 0.9, 1.1), 1.1);
  EXPECT_THROW((void)clamp_slope(1.0, -0.1, 1.0), ContractViolation);
}

}  // namespace
}  // namespace stopwatch::hypervisor
