#include "hypervisor/machine.hpp"

#include <gtest/gtest.h>

namespace stopwatch::hypervisor {
namespace {

struct FakeLoad final : LoadSource {
  double value{0.0};
  [[nodiscard]] double activity() const override { return value; }
};

MachineConfig quiet_config() {
  MachineConfig cfg;
  cfg.ips_jitter_sigma = 0.0;
  cfg.vmm_delay_jitter_sigma = 0.0;
  cfg.disk_seek_min = Duration::millis(3);
  cfg.disk_seek_max = Duration::millis(3);
  return cfg;
}

TEST(Machine, LocalClockIncludesOffset) {
  sim::Simulator sim;
  MachineConfig cfg = quiet_config();
  cfg.clock_offset = Duration::millis(25);
  Machine m(MachineId{0}, sim, cfg, Rng(1));
  EXPECT_EQ(m.local_clock().ns, Duration::millis(25).ns);
  sim.schedule_at(RealTime::millis(10), [] {});
  sim.run();
  EXPECT_EQ(m.local_clock().ns, Duration::millis(35).ns);
}

TEST(Machine, ContentionSlowsEffectiveIps) {
  sim::Simulator sim;
  Machine m(MachineId{0}, sim, quiet_config(), Rng(2));
  FakeLoad self, other;
  m.register_load_source(&self);
  m.register_load_source(&other);
  other.value = 1.0;
  const double solo = m.effective_ips(0.0);
  const double contended = m.effective_ips(m.load_excluding(&self));
  EXPECT_DOUBLE_EQ(solo, 1e9);
  EXPECT_NEAR(contended, 1e9 / 1.7, 1.0);  // alpha = 0.7, load = 1
}

TEST(Machine, LoadExcludingSkipsSelf) {
  sim::Simulator sim;
  Machine m(MachineId{0}, sim, quiet_config(), Rng(3));
  FakeLoad a, b;
  a.value = 0.5;
  b.value = 0.25;
  m.register_load_source(&a);
  m.register_load_source(&b);
  EXPECT_DOUBLE_EQ(m.load_excluding(&a), 0.25);
  EXPECT_DOUBLE_EQ(m.load_excluding(&b), 0.5);
  EXPECT_DOUBLE_EQ(m.load_excluding(nullptr), 0.75);
}

TEST(Machine, ExtraLoadCountsTowardContention) {
  sim::Simulator sim;
  Machine m(MachineId{0}, sim, quiet_config(), Rng(4));
  m.set_extra_load(2.0);
  EXPECT_DOUBLE_EQ(m.load_excluding(nullptr), 2.0);
}

TEST(Machine, VmmDelayGrowsWithLoad) {
  sim::Simulator sim;
  Machine m(MachineId{0}, sim, quiet_config(), Rng(5));
  const auto idle = m.vmm_processing_delay(0.0);
  const auto busy = m.vmm_processing_delay(1.0);
  EXPECT_EQ(idle.ns, quiet_config().vmm_base_delay.ns);
  EXPECT_EQ(busy.ns,
            quiet_config().vmm_base_delay.ns + quiet_config().vmm_load_delay.ns);
}

TEST(Machine, DiskIsFifoAndAccountsSeekPlusTransfer) {
  sim::Simulator sim;
  MachineConfig cfg = quiet_config();
  cfg.disk_bytes_per_second = 1e6;  // 1 MB/s
  Machine m(MachineId{0}, sim, cfg, Rng(6));
  // 1000 bytes at 1 MB/s = 1 ms transfer; 3 ms seek.
  const RealTime first = m.schedule_disk_op(1000);
  EXPECT_EQ(first.ns, Duration::millis(4).ns);
  // Second op queues behind the first.
  const RealTime second = m.schedule_disk_op(1000);
  EXPECT_EQ(second.ns, Duration::millis(8).ns);
  EXPECT_EQ(m.stats().disk_ops, 2u);
  EXPECT_EQ(m.stats().disk_bytes, 2000u);
}

TEST(Machine, DiskQueueDrainsOverTime) {
  sim::Simulator sim;
  MachineConfig cfg = quiet_config();
  Machine m(MachineId{0}, sim, cfg, Rng(7));
  const RealTime first = m.schedule_disk_op(0);
  sim.schedule_at(RealTime::millis(100), [] {});
  sim.run();
  // After the queue is idle, a new op starts from "now".
  const RealTime second = m.schedule_disk_op(0);
  EXPECT_EQ(second.ns, (sim.now() + Duration::millis(3)).ns);
  EXPECT_GT(second.ns, first.ns);
}

}  // namespace
}  // namespace stopwatch::hypervisor
