// ObservationLog: bounded memory (reservoir), exact streaming moments, and
// deterministic serialization — the byte-identity property the TimingTap
// tests and the --jobs runner rely on.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "leakage/observation_log.hpp"

namespace stopwatch::leakage {
namespace {

TEST(ObservationLog, StreamingMomentsAreExactUnderEviction) {
  // Reservoir of 16 with 10'000 records: retained samples are a subset,
  // but count/mean/variance must stay exact (Welford, not reservoir).
  ObservationLog log(ObservationLogConfig{1, 16});
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 10'000;
  for (int i = 0; i < n; ++i) {
    const double v = std::sin(i * 0.37) * 3.0 + i % 7;
    log.record(0, v);
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_EQ(log.count(0), static_cast<std::uint64_t>(n));
  EXPECT_EQ(log.samples(0).size(), 16u);
  const double mean = sum / n;
  EXPECT_NEAR(log.mean(0), mean, 1e-9);
  EXPECT_NEAR(log.variance(0), sum_sq / n - mean * mean, 1e-6);
}

TEST(ObservationLog, ReservoirIsUnboundedWhenCapacityZero) {
  ObservationLog log(ObservationLogConfig{1, 0});
  for (int i = 0; i < 5000; ++i) log.record(2, i);
  EXPECT_EQ(log.samples(2).size(), 5000u);
  EXPECT_EQ(log.classes(), std::vector<int>{2});
}

TEST(ObservationLog, ReservoirKeepsRepresentativeSample) {
  // Record 0..9999; a uniform reservoir's retained mean should land near
  // the stream mean, not near either end.
  ObservationLog log(ObservationLogConfig{42, 256});
  for (int i = 0; i < 10'000; ++i) log.record(0, i);
  double retained_mean = 0.0;
  for (const double v : log.samples(0)) retained_mean += v;
  retained_mean /= static_cast<double>(log.samples(0).size());
  EXPECT_NEAR(retained_mean, 4999.5, 800.0);
}

TEST(ObservationLog, SameSeedSameRecordsSerializeByteIdentically) {
  const auto fill = [](ObservationLog& log) {
    Rng rng(99);
    for (int i = 0; i < 3000; ++i) {
      log.record(i % 3, rng.exponential(1.0));
    }
  };
  ObservationLog a(ObservationLogConfig{7, 64});
  ObservationLog b(ObservationLogConfig{7, 64});
  fill(a);
  fill(b);
  EXPECT_EQ(a.serialize(), b.serialize());
  EXPECT_EQ(a.pooled_samples(), b.pooled_samples());

  // A different log seed draws different reservoir evictions.
  ObservationLog c(ObservationLogConfig{8, 64});
  fill(c);
  EXPECT_NE(a.serialize(), c.serialize());
  // ...while the exact summaries still agree.
  for (int cls = 0; cls < 3; ++cls) {
    EXPECT_EQ(a.count(cls), c.count(cls));
    EXPECT_NEAR(a.mean(cls), c.mean(cls), 1e-12);
  }
}

TEST(ObservationLog, RejectsNegativeClassAndUnknownLookups) {
  ObservationLog log;
  EXPECT_THROW(log.record(-1, 0.5), ContractViolation);
  log.record(0, 0.5);
  EXPECT_EQ(log.count(5), 0u);
  EXPECT_THROW(static_cast<void>(log.mean(5)), ContractViolation);
  EXPECT_THROW(static_cast<void>(log.samples(5)), ContractViolation);
}

}  // namespace
}  // namespace stopwatch::leakage
