// Closed-form checks of the leakage estimators: plug-in / Miller-Madow
// mutual information against hand-computable channels, Blahut-Arimoto
// against textbook capacities (deterministic channel -> log2 |inputs|,
// binary symmetric channel -> 1 - H2(p), useless channel -> 0), and the
// binning rules' layout guarantees.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "leakage/capacity.hpp"
#include "leakage/estimators.hpp"
#include "leakage/observation_log.hpp"

namespace stopwatch::leakage {
namespace {

JointDistribution make_joint(std::vector<std::vector<double>> p,
                             std::uint64_t n) {
  JointDistribution joint;
  joint.p = std::move(p);
  for (std::size_t i = 0; i < joint.p.size(); ++i) {
    joint.class_labels.push_back(static_cast<int>(i));
  }
  joint.sample_count = n;
  return joint;
}

TEST(MutualInformation, IndependentJointHasZeroBits) {
  // p(c, t) = p(c) p(t): knowing the cell says nothing about the class.
  const JointDistribution joint =
      make_joint({{0.125, 0.125, 0.25}, {0.125, 0.125, 0.25}}, 1000);
  EXPECT_NEAR(mutual_information_plugin(joint), 0.0, 1e-12);
}

TEST(MutualInformation, DeterministicChannelLeaksClassEntropy) {
  // Each class maps to its own cell: I = H(C) = log2 4.
  const JointDistribution joint = make_joint({{0.25, 0, 0, 0},
                                              {0, 0.25, 0, 0},
                                              {0, 0, 0.25, 0},
                                              {0, 0, 0, 0.25}},
                                             4000);
  EXPECT_NEAR(mutual_information_plugin(joint), 2.0, 1e-12);
}

TEST(MutualInformation, BinarySymmetricJointMatchesClosedForm) {
  // Uniform input through BSC(p): I = 1 - H2(p).
  const double p = 0.11;
  const JointDistribution joint = make_joint(
      {{(1 - p) / 2, p / 2}, {p / 2, (1 - p) / 2}}, 10000);
  EXPECT_NEAR(mutual_information_plugin(joint), 1.0 - binary_entropy_bits(p),
              1e-12);
}

TEST(MutualInformation, MillerMadowShrinksIndependentNoiseBias) {
  // Independent samples: true MI is 0; the plug-in estimate is biased up
  // by finite sampling, and Miller-Madow must land closer to the truth.
  Rng rng(7);
  ObservationLog log(ObservationLogConfig{3, 0});
  for (int i = 0; i < 400; ++i) {
    for (int c = 0; c < 2; ++c) log.record(c, rng.uniform(0.0, 1.0));
  }
  const auto edges =
      make_bin_edges(log.pooled_samples(), BinningMode::kFixed, 16);
  const JointDistribution joint = joint_from_log(log, edges);
  const double plugin = mutual_information_plugin(joint);
  const double corrected = mutual_information_miller_madow(joint);
  EXPECT_GT(plugin, 0.0);
  EXPECT_LT(corrected, plugin);
  EXPECT_LT(corrected, 0.02);
}

TEST(MutualInformation, MillerMadowNeverExceedsMarginalEntropies) {
  // A deterministic 2-class channel: the +1/(2N ln 2) correction must not
  // push the estimate past min(H(C), H(T)) = 1 bit.
  ObservationLog log(ObservationLogConfig{1, 0});
  for (int i = 0; i < 20; ++i) {
    log.record(0, 1.0 + 0.001 * i);
    log.record(1, 5.0 + 0.001 * i);
  }
  const auto edges =
      make_bin_edges(log.pooled_samples(), BinningMode::kFixed, 8);
  const double mi = mutual_information_miller_madow(joint_from_log(log, edges));
  EXPECT_LE(mi, 1.0);
  EXPECT_GT(mi, 0.9);
}

TEST(Capacity, DeterministicChannelReachesLogInputs) {
  // Identity channel over k inputs: C = log2 k, uniform optimal prior.
  const CapacityResult r = blahut_arimoto(
      {{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}, {0, 0, 0, 1}});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.capacity_bits, 2.0, 1e-6);
  for (const double p : r.optimal_input) EXPECT_NEAR(p, 0.25, 1e-6);
}

TEST(Capacity, BinarySymmetricChannelMatchesClosedForm) {
  for (const double p : {0.05, 0.11, 0.25, 0.45}) {
    const CapacityResult r = blahut_arimoto({{1 - p, p}, {p, 1 - p}});
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.capacity_bits, 1.0 - binary_entropy_bits(p), 1e-6) << p;
  }
}

TEST(Capacity, IdenticalRowsCarryNothing) {
  const CapacityResult r = blahut_arimoto(
      {{0.3, 0.5, 0.2}, {0.3, 0.5, 0.2}, {0.3, 0.5, 0.2}});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.capacity_bits, 0.0, 1e-9);
}

TEST(Capacity, ZChannelBeatsUniformPrior) {
  // Z-channel with crossover 0.5: C = log2(1 + (1-h(0.5)/1)... known value
  // log2(1 + 0.5 * 0.5^(0.5/0.5)) = log2(1.25); the optimal prior is
  // biased toward the noiseless input, so capacity exceeds I(uniform).
  const std::vector<std::vector<double>> channel = {{1.0, 0.0}, {0.5, 0.5}};
  const CapacityResult r = blahut_arimoto(channel);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.capacity_bits, std::log2(1.25), 1e-6);
  const JointDistribution uniform = make_joint(
      {{0.5, 0.0}, {0.25, 0.25}}, 1000);
  EXPECT_GT(r.capacity_bits, mutual_information_plugin(uniform));
}

TEST(Capacity, RejectsNonStochasticRows) {
  EXPECT_THROW(static_cast<void>(blahut_arimoto({{0.9, 0.2}, {0.5, 0.5}})),
               ContractViolation);
  EXPECT_THROW(static_cast<void>(blahut_arimoto({{1.0, 0.0}})),
               ContractViolation);
}

TEST(Binning, SturgesRuleCounts) {
  EXPECT_EQ(sturges_bin_count(1), 2);
  EXPECT_EQ(sturges_bin_count(2), 2);
  EXPECT_EQ(sturges_bin_count(3), 3);
  EXPECT_EQ(sturges_bin_count(64), 7);
  EXPECT_EQ(sturges_bin_count(100), 8);
  EXPECT_EQ(sturges_bin_count(1000), 11);
}

TEST(Binning, ModesProduceCoveringMonotoneEdges) {
  Rng rng(11);
  std::vector<double> samples;
  for (int i = 0; i < 500; ++i) samples.push_back(rng.exponential(1.0));
  for (const BinningMode mode :
       {BinningMode::kFixed, BinningMode::kAdaptive, BinningMode::kSturges}) {
    const auto edges = make_bin_edges(samples, mode, 12);
    const std::size_t expected =
        mode == BinningMode::kSturges
            ? static_cast<std::size_t>(sturges_bin_count(samples.size())) + 1
            : 13u;
    EXPECT_EQ(edges.size(), expected);
    for (std::size_t i = 1; i < edges.size(); ++i) {
      EXPECT_LT(edges[i - 1], edges[i]);
    }
    for (const double s : samples) {
      const int cell = bin_index(edges, s);
      EXPECT_GE(cell, 0);
      EXPECT_LT(cell, static_cast<int>(edges.size()) - 1);
      EXPECT_GE(s, edges[static_cast<std::size_t>(cell)]);
      EXPECT_LT(s, edges[static_cast<std::size_t>(cell) + 1]);
    }
  }
}

TEST(Binning, AdaptiveEdgesEqualizePooledMass) {
  Rng rng(5);
  std::vector<double> samples;
  for (int i = 0; i < 4000; ++i) samples.push_back(rng.exponential(0.5));
  const int bins = 10;
  const auto edges = make_bin_edges(samples, BinningMode::kAdaptive, bins);
  std::vector<int> counts(bins, 0);
  for (const double s : samples) {
    ++counts[static_cast<std::size_t>(bin_index(edges, s))];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), 400.0, 40.0);
  }
}

TEST(Binning, ChoiceMappingMatchesScenarioKnob) {
  EXPECT_EQ(binning_mode_from_choice("fixed"), BinningMode::kFixed);
  EXPECT_EQ(binning_mode_from_choice("adaptive"), BinningMode::kAdaptive);
  EXPECT_EQ(binning_mode_from_choice("sturges"), BinningMode::kSturges);
  EXPECT_THROW(static_cast<void>(binning_mode_from_choice("scott")),
               ContractViolation);
}

}  // namespace
}  // namespace stopwatch::leakage
