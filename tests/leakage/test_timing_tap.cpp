// TimingTap end to end over a real Cloud: labeled inter-release gaps,
// trial-duration bracketing, baseline direct-emission observation, and the
// headline determinism property — the same seed must produce a
// byte-identical ObservationLog.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>

#include "common/contracts.hpp"
#include "core/cloud.hpp"
#include "leakage/observation_log.hpp"
#include "leakage/timing_tap.hpp"
#include "vm/guest.hpp"

namespace stopwatch::leakage {
namespace {

/// Emits one packet to `sink` every 10 ms of virtual time, paying `work`
/// instructions per emission.
class BeaconProgram final : public vm::GuestProgram {
 public:
  BeaconProgram(NodeId sink, std::uint64_t work) : sink_(sink), work_(work) {}

  void on_boot(vm::GuestApi& api) override {
    api_ = &api;
    schedule();
  }
  void on_timer_tick(vm::GuestApi&, std::uint64_t) override {}
  void on_packet(vm::GuestApi&, const net::Packet&) override {}

 private:
  void schedule() {
    api_->set_timer(Duration::millis(10), [this] {
      api_->compute(work_, [this] {
        net::Packet pkt;
        pkt.dst = sink_;
        pkt.kind = net::PacketKind::kData;
        pkt.size_bytes = 256;
        pkt.seq = ++seq_;
        api_->send_packet(pkt);
        schedule();
      });
    });
  }

  NodeId sink_;
  std::uint64_t work_;
  vm::GuestApi* api_{nullptr};
  std::uint64_t seq_{0};
};

struct TapFixture {
  core::Cloud cloud;
  NodeId sink;
  core::VmHandle vm;

  explicit TapFixture(core::Policy policy, std::uint64_t seed)
      : cloud([&] {
          core::CloudConfig cfg;
          cfg.seed = seed;
          cfg.policy = policy;
          cfg.machine_count = 3;
          return cfg;
        }()) {
    sink = cloud.add_external_node("sink", [](const net::Packet&) {});
    const NodeId sink_copy = sink;
    vm = cloud.add_vm(
        "beacon",
        [sink_copy] {
          return std::make_unique<BeaconProgram>(sink_copy, 50'000);
        },
        {0, 1, 2});
  }
};

TEST(TimingTap, RecordsLabeledInterReleaseGaps) {
  TapFixture fx(core::Policy::kStopWatch, 11);
  ObservationLog log(ObservationLogConfig{11, 0});
  TimingTap tap(fx.cloud, fx.vm, TimingTap::Mode::kInterRelease, log);
  fx.cloud.start();

  tap.set_secret_class(0);
  fx.cloud.run_for(Duration::millis(500));
  tap.set_secret_class(1);
  fx.cloud.run_for(Duration::millis(500));
  fx.cloud.halt_all();

  EXPECT_GT(tap.releases_seen(), 40u);
  ASSERT_EQ(log.classes(), (std::vector<int>{0, 1}));
  EXPECT_GT(log.count(0), 20u);
  EXPECT_GT(log.count(1), 20u);
  // ~10 ms beacon cadence: the mean inter-release gap must sit near it.
  EXPECT_GT(log.mean(0), 5.0);
  EXPECT_LT(log.mean(0), 20.0);
  // The egress releases the tap saw are the cloud's released packets.
  EXPECT_EQ(tap.releases_seen(),
            fx.cloud.egress_stats(fx.vm).packets_released);
}

TEST(TimingTap, SameSeedProducesByteIdenticalObservationLog) {
  const auto capture = [](std::uint64_t seed) {
    TapFixture fx(core::Policy::kStopWatch, seed);
    ObservationLog log(ObservationLogConfig{seed, 64});
    TimingTap tap(fx.cloud, fx.vm, TimingTap::Mode::kInterRelease, log);
    fx.cloud.start();
    tap.set_secret_class(0);
    fx.cloud.run_for(Duration::millis(400));
    tap.set_secret_class(1);
    fx.cloud.run_for(Duration::millis(400));
    fx.cloud.halt_all();
    return log.serialize();
  };
  const std::string first = capture(21);
  const std::string second = capture(21);
  EXPECT_EQ(first, second);
  EXPECT_NE(first, capture(22));
}

TEST(TimingTap, TrialDurationBracketsReleases) {
  TapFixture fx(core::Policy::kStopWatch, 31);
  ObservationLog log(ObservationLogConfig{31, 0});
  TimingTap tap(fx.cloud, fx.vm, TimingTap::Mode::kTrialDuration, log);
  fx.cloud.start();

  tap.begin_trial(2);
  fx.cloud.run_for(Duration::millis(100));
  EXPECT_TRUE(tap.end_trial());
  ASSERT_EQ(log.count(2), 1u);
  // Span from trial start to the last release inside the 100 ms window.
  EXPECT_GT(log.samples(2).front(), 0.0);
  EXPECT_LE(log.samples(2).front(), 100.0);

  // A trial during which nothing was released records nothing.
  tap.begin_trial(3);
  EXPECT_FALSE(tap.end_trial());
  EXPECT_EQ(log.count(3), 0u);

  // Protocol misuse is a contract violation, not silent mislabeling.
  tap.begin_trial(4);
  EXPECT_THROW(tap.begin_trial(5), ContractViolation);
  fx.cloud.halt_all();
}

TEST(TimingTap, BaselineDirectEmissionIsObserved) {
  // Under unmodified Xen output skips the egress median gate; the tap must
  // still see the attacker-visible instant (the VMM's direct send).
  TapFixture fx(core::Policy::kBaselineXen, 41);
  ObservationLog log(ObservationLogConfig{41, 0});
  TimingTap tap(fx.cloud, fx.vm, TimingTap::Mode::kInterRelease, log);
  fx.cloud.start();
  tap.set_secret_class(0);
  fx.cloud.run_for(Duration::millis(500));
  fx.cloud.halt_all();
  EXPECT_GT(tap.releases_seen(), 30u);
  EXPECT_GT(log.count(0), 20u);
}

TEST(TimingTap, ModeGuardsRejectMismatchedCalls) {
  TapFixture fx(core::Policy::kStopWatch, 51);
  ObservationLog log;
  TimingTap tap(fx.cloud, fx.vm, TimingTap::Mode::kInterRelease, log);
  EXPECT_THROW(tap.begin_trial(0), ContractViolation);
  EXPECT_THROW(static_cast<void>(tap.end_trial()), ContractViolation);
}

}  // namespace
}  // namespace stopwatch::leakage
