#include "workload/timing.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace stopwatch::workload {
namespace {

TEST(Broadcaster, EmitsAtApproximateRate) {
  core::CloudConfig cfg;
  cfg.seed = 4;
  cfg.machine_count = 3;
  core::Cloud cloud(cfg);
  const core::VmHandle vm = cloud.add_vm(
      "probe", [] { return std::make_unique<AttackerProbeProgram>(); },
      {0, 1, 2});
  BackgroundBroadcaster bcast(cloud, "bcast", cloud.vm_addr(vm), 80.0, 5);
  cloud.start();
  bcast.start();
  cloud.run_for(Duration::seconds(10));
  // 80 pkt/s for 10 s: Poisson bursts, allow generous slack.
  EXPECT_GT(bcast.packets_sent(), 500u);
  EXPECT_LT(bcast.packets_sent(), 1100u);
}

TEST(AttackerProbe, RecordsEveryDelivery) {
  core::CloudConfig cfg;
  cfg.seed = 6;
  cfg.machine_count = 3;
  core::Cloud cloud(cfg);
  const core::VmHandle vm = cloud.add_vm(
      "probe", [] { return std::make_unique<AttackerProbeProgram>(); },
      {0, 1, 2});
  BackgroundBroadcaster bcast(cloud, "bcast", cloud.vm_addr(vm), 50.0, 7);
  cloud.start();
  bcast.start();
  cloud.run_for(Duration::seconds(5));
  cloud.halt_all();
  auto& probe = static_cast<AttackerProbeProgram&>(
      cloud.replica(vm, 0).program());
  // Everything sent early enough got delivered and observed.
  EXPECT_GT(probe.observations_ns().size(), 100u);
  EXPECT_EQ(probe.inter_arrival_ms().size(),
            probe.observations_ns().size() - 1);
  // Observations are monotone in virtual time.
  for (std::size_t i = 1; i < probe.observations_ns().size(); ++i) {
    EXPECT_GE(probe.observations_ns()[i], probe.observations_ns()[i - 1]);
  }
}

TEST(VictimServer, LoadsItsHost) {
  core::CloudConfig cfg;
  cfg.seed = 8;
  cfg.machine_count = 3;
  core::Cloud cloud(cfg);
  const NodeId sink = cloud.add_external_node("sink", [](const net::Packet&) {});
  VictimServerProgram::Config vc;
  vc.sink = sink;
  const core::VmHandle vm = cloud.add_vm(
      "victim", [vc] { return std::make_unique<VictimServerProgram>(vc); },
      {0, 1, 2});
  cloud.start();
  cloud.run_for(Duration::seconds(2));
  cloud.halt_all();
  // The victim's bursts keep its activity EMA well above idle.
  EXPECT_GT(cloud.replica(vm, 0).activity(), 0.3);
  // And it emits output traffic through the egress.
  EXPECT_GT(cloud.egress_stats(vm).packets_released, 100u);
  EXPECT_TRUE(cloud.replicas_deterministic(vm));
}

TEST(VictimServer, DeterministicAcrossReplicasDespiteDisk) {
  core::CloudConfig cfg;
  cfg.seed = 10;
  cfg.machine_count = 3;
  cfg.policy.stopwatch.delta_d = Duration::millis(30);
  core::Cloud cloud(cfg);
  const NodeId sink = cloud.add_external_node("sink", [](const net::Packet&) {});
  VictimServerProgram::Config vc;
  vc.sink = sink;
  vc.disk_probability = 0.2;
  const core::VmHandle vm = cloud.add_vm(
      "victim", [vc] { return std::make_unique<VictimServerProgram>(vc); },
      {0, 1, 2});
  cloud.start();
  cloud.run_for(Duration::seconds(3));
  cloud.halt_all();
  EXPECT_TRUE(cloud.replicas_deterministic(vm));
  EXPECT_EQ(cloud.egress_stats(vm).hash_mismatches, 0u);
}

}  // namespace
}  // namespace stopwatch::workload
