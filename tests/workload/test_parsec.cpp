#include "workload/parsec.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/cloud.hpp"

namespace stopwatch::workload {
namespace {

core::CloudConfig parsec_config(core::Policy policy, std::uint64_t seed = 9) {
  core::CloudConfig cfg;
  cfg.seed = seed;
  cfg.policy = policy;
  cfg.machine_count = 3;
  cfg.machine_template.disk_seek_min = Duration::micros(500);
  cfg.machine_template.disk_seek_max = Duration::millis(3);
  if (hypervisor::policy_replicated(policy)) {
    cfg.policy.stopwatch.delta_d = Duration::millis(9);
  }
  return cfg;
}

struct ParsecRun {
  double runtime_ms{0};
  std::uint64_t disk_interrupts{0};
  bool deterministic{false};
};

ParsecRun run_app(const ParsecAppSpec& spec, core::Policy policy) {
  core::Cloud cloud(parsec_config(policy));
  bool done = false;
  RealTime finish{};
  const NodeId collector = cloud.add_external_node(
      "collector", [&](const net::Packet&) {
        done = true;
        finish = cloud.simulator().now();
      });
  const core::VmHandle vm = cloud.add_vm(
      spec.name,
      [&spec, collector] {
        return std::make_unique<ParsecProgram>(spec, collector, 1);
      },
      {0, 1, 2});
  cloud.start();
  int guard = 0;
  while (!done && ++guard < 1000) cloud.run_for(Duration::millis(100));
  EXPECT_TRUE(done) << spec.name << " did not finish";
  ParsecRun out;
  out.runtime_ms = finish.to_seconds() * 1e3;
  out.disk_interrupts = cloud.replica(vm, 0).guest_counters().disk_interrupts;
  out.deterministic = cloud.replicas_deterministic(vm);
  return out;
}

TEST(Parsec, SuiteHasTheFivePaperApps) {
  const auto& suite = parsec_suite();
  ASSERT_EQ(suite.size(), 5u);
  EXPECT_EQ(suite[0].name, "ferret");
  EXPECT_EQ(suite[1].name, "blackscholes");
  EXPECT_EQ(suite[2].name, "canneal");
  EXPECT_EQ(suite[3].name, "dedup");
  EXPECT_EQ(suite[4].name, "streamcluster");
  for (const auto& s : suite) {
    EXPECT_EQ(s.disk_ops, s.paper_disk_interrupts) << s.name;
  }
}

TEST(Parsec, DiskInterruptCountMatchesSpec) {
  const auto& spec = parsec_suite()[0];  // ferret
  const ParsecRun r = run_app(spec, core::Policy::kStopWatch);
  EXPECT_EQ(r.disk_interrupts, static_cast<std::uint64_t>(spec.disk_ops));
  EXPECT_TRUE(r.deterministic);
}

TEST(Parsec, BaselineRuntimeNearPaperValue) {
  const auto& spec = parsec_suite()[4];  // streamcluster
  const ParsecRun r = run_app(spec, core::Policy::kBaselineXen);
  EXPECT_GT(r.runtime_ms, spec.paper_baseline_ms * 0.7);
  EXPECT_LT(r.runtime_ms, spec.paper_baseline_ms * 1.4);
}

TEST(Parsec, StopWatchOverheadTracksDiskInterrupts) {
  // The paper's Fig. 7 correlation: absolute overhead grows with disk ops.
  const auto& small = parsec_suite()[0];  // ferret, 31 ops
  const auto& large = parsec_suite()[3];  // dedup, 293 ops
  const double small_overhead =
      run_app(small, core::Policy::kStopWatch).runtime_ms -
      run_app(small, core::Policy::kBaselineXen).runtime_ms;
  const double large_overhead =
      run_app(large, core::Policy::kStopWatch).runtime_ms -
      run_app(large, core::Policy::kBaselineXen).runtime_ms;
  EXPECT_GT(large_overhead, small_overhead * 4.0);
}

TEST(Parsec, OverheadStaysWithinPaperBand) {
  const auto& spec = parsec_suite()[1];  // blackscholes (worst case 2.27x)
  const double base = run_app(spec, core::Policy::kBaselineXen).runtime_ms;
  const double sw = run_app(spec, core::Policy::kStopWatch).runtime_ms;
  EXPECT_GT(sw / base, 1.2);
  EXPECT_LT(sw / base, 3.5);
}

TEST(Parsec, RejectsDegenerateSpecs) {
  ParsecAppSpec bad;
  bad.name = "bad";
  bad.compute_instr = 0;
  bad.disk_ops = 1;
  EXPECT_THROW(ParsecProgram(bad, NodeId{0}, 1), ContractViolation);
  bad.compute_instr = 100;
  bad.disk_ops = 0;
  EXPECT_THROW(ParsecProgram(bad, NodeId{0}, 1), ContractViolation);
}

}  // namespace
}  // namespace stopwatch::workload
