#include "workload/nfs.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "stats/summary.hpp"

namespace stopwatch::workload {
namespace {

core::CloudConfig nfs_config(core::Policy policy) {
  core::CloudConfig cfg;
  cfg.seed = 13;
  cfg.policy = policy;
  cfg.machine_count = 3;
  cfg.machine_template.disk_seek_min = Duration::micros(500);
  cfg.machine_template.disk_seek_max = Duration::millis(3);
  return cfg;
}

TEST(NfsMix, PaperMixSumsToOne) {
  double total = 0.0;
  for (const auto& e : paper_nfs_mix()) total += e.weight;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_EQ(paper_nfs_mix().size(), 6u);
}

struct NfsRun {
  std::uint64_t issued{0};
  std::uint64_t completed{0};
  double mean_latency_ms{0};
};

NfsRun run_nfs(core::Policy policy, double rate, Duration sim_time,
               NfsServerProgram::Config server_cfg = {}) {
  core::Cloud cloud(nfs_config(policy));
  const core::VmHandle vm = cloud.add_vm(
      "nfs",
      [server_cfg] { return std::make_unique<NfsServerProgram>(server_cfg); },
      {0, 1, 2});
  NfsLoadGenerator gen(cloud, "gen", cloud.vm_addr(vm), 5, rate,
                       paper_nfs_mix(), 17);
  cloud.start();
  gen.start();
  cloud.run_for(sim_time);
  cloud.halt_all();
  EXPECT_TRUE(cloud.replicas_deterministic(vm));
  NfsRun out;
  out.issued = gen.ops_issued();
  out.completed = gen.ops_completed();
  if (!gen.latencies_ms().empty()) {
    out.mean_latency_ms = stats::summarize(gen.latencies_ms()).mean;
  }
  return out;
}

TEST(Nfs, OpsCompleteUnderStopWatch) {
  const NfsRun r = run_nfs(core::Policy::kStopWatch, 50, Duration::seconds(5));
  EXPECT_GT(r.issued, 150u);
  // Open loop: nearly everything issued long enough ago completes.
  EXPECT_GT(r.completed, r.issued * 8 / 10);
  EXPECT_GT(r.mean_latency_ms, 5.0);
  EXPECT_LT(r.mean_latency_ms, 80.0);
}

TEST(Nfs, BaselineFasterThanStopWatch) {
  const NfsRun base =
      run_nfs(core::Policy::kBaselineXen, 50, Duration::seconds(5));
  const NfsRun sw = run_nfs(core::Policy::kStopWatch, 50, Duration::seconds(5));
  EXPECT_LT(base.mean_latency_ms, sw.mean_latency_ms);
  // And within the paper's overall range (a handful of Δn-scale units).
  EXPECT_LT(sw.mean_latency_ms, base.mean_latency_ms * 8.0);
}

TEST(Nfs, SyncWritesSlowerThanAsync) {
  NfsServerProgram::Config sync_cfg;
  sync_cfg.async_writes = false;
  const NfsRun async_run =
      run_nfs(core::Policy::kStopWatch, 50, Duration::seconds(5));
  const NfsRun sync_run =
      run_nfs(core::Policy::kStopWatch, 50, Duration::seconds(5), sync_cfg);
  EXPECT_GT(sync_run.mean_latency_ms, async_run.mean_latency_ms);
}

class NfsLoadSweep : public ::testing::TestWithParam<double> {};

TEST_P(NfsLoadSweep, ThroughputScalesWithOfferedLoad) {
  const double rate = GetParam();
  const NfsRun r =
      run_nfs(core::Policy::kStopWatch, rate, Duration::seconds(4));
  // Completed ops should track offered rate (open loop, 4 s minus warmup).
  const double expected = rate * 3.5;
  EXPECT_GT(static_cast<double>(r.completed), expected * 0.7) << rate;
  EXPECT_LT(static_cast<double>(r.completed), expected * 1.3) << rate;
}

INSTANTIATE_TEST_SUITE_P(Rates, NfsLoadSweep,
                         ::testing::Values(25.0, 50.0, 100.0, 200.0));

}  // namespace
}  // namespace stopwatch::workload
