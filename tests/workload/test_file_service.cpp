#include "workload/file_service.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace stopwatch::workload {
namespace {

struct ServiceFixture {
  core::Cloud cloud;
  core::VmHandle server;

  explicit ServiceFixture(core::Policy policy, std::uint64_t seed = 3)
      : cloud(make_config(policy, seed)),
        server(cloud.add_vm(
            "files", [] { return std::make_unique<FileServerProgram>(); },
            {0, 1, 2})) {}

  static core::CloudConfig make_config(core::Policy policy,
                                       std::uint64_t seed) {
    core::CloudConfig cfg;
    cfg.seed = seed;
    cfg.policy = policy;
    cfg.machine_count = 3;
    return cfg;
  }

  double download_ms(FileDownloadClient& client, std::uint32_t size) {
    bool done = false;
    Duration latency{};
    client.download(size, [&](Duration d) {
      done = true;
      latency = d;
    });
    int guard = 0;
    while (!done && ++guard < 2000) cloud.run_for(Duration::millis(50));
    EXPECT_TRUE(done) << "download of " << size << " bytes stalled";
    return latency.to_seconds() * 1e3;
  }
};

class DownloadSizeTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint32_t>> {};

TEST_P(DownloadSizeTest, CompletesUnderBothProtocolsAndPolicies) {
  const auto [policy_int, size] = GetParam();
  const auto policy = static_cast<core::Policy>(policy_int);
  ServiceFixture fx(policy);
  FileDownloadClient tcp(fx.cloud, "tcp-client", fx.cloud.vm_addr(fx.server),
                         FileDownloadClient::Protocol::kHttpTcp);
  FileDownloadClient udp(fx.cloud, "udp-client", fx.cloud.vm_addr(fx.server),
                         FileDownloadClient::Protocol::kUdp);
  fx.cloud.start();
  const double tcp_ms = fx.download_ms(tcp, size);
  const double udp_ms = fx.download_ms(udp, size);
  EXPECT_GT(tcp_ms, 0.0);
  EXPECT_GT(udp_ms, 0.0);
  EXPECT_EQ(fx.cloud.total_divergences(), 0u);
  EXPECT_TRUE(fx.cloud.replicas_deterministic(fx.server));
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndPolicies, DownloadSizeTest,
    ::testing::Combine(
        ::testing::Values(static_cast<int>(core::Policy::kBaselineXen),
                          static_cast<int>(core::Policy::kStopWatch)),
        ::testing::Values(1024u, 65536u, 1048576u)));

TEST(FileService, StopWatchHttpSlowerThanBaseline) {
  ServiceFixture base(core::Policy::kBaselineXen);
  ServiceFixture sw(core::Policy::kStopWatch);
  FileDownloadClient cb(base.cloud, "c", base.cloud.vm_addr(base.server),
                        FileDownloadClient::Protocol::kHttpTcp);
  FileDownloadClient cs(sw.cloud, "c", sw.cloud.vm_addr(sw.server),
                        FileDownloadClient::Protocol::kHttpTcp);
  base.cloud.start();
  sw.cloud.start();
  const double b = base.download_ms(cb, 100 * 1024);
  const double s = sw.download_ms(cs, 100 * 1024);
  EXPECT_GT(s, b * 1.3);
  EXPECT_LT(s, b * 6.0);  // but pipelining keeps it in the paper's range
}

TEST(FileService, UdpNarrowsTheGapOnLargeFiles) {
  ServiceFixture base(core::Policy::kBaselineXen);
  ServiceFixture sw(core::Policy::kStopWatch);
  FileDownloadClient cb(base.cloud, "c", base.cloud.vm_addr(base.server),
                        FileDownloadClient::Protocol::kUdp);
  FileDownloadClient cs(sw.cloud, "c", sw.cloud.vm_addr(sw.server),
                        FileDownloadClient::Protocol::kUdp);
  base.cloud.start();
  sw.cloud.start();
  const double b = base.download_ms(cb, 2 * 1024 * 1024);
  const double s = sw.download_ms(cs, 2 * 1024 * 1024);
  // The paper's Fig. 5 punchline: UDP StopWatch ~ competitive.
  EXPECT_LT(s, b * 1.4);
}

TEST(FileService, SequentialDownloadsUseIndependentConnections) {
  ServiceFixture fx(core::Policy::kStopWatch);
  FileDownloadClient client(fx.cloud, "c", fx.cloud.vm_addr(fx.server),
                            FileDownloadClient::Protocol::kHttpTcp);
  fx.cloud.start();
  const double first = fx.download_ms(client, 10 * 1024);
  const double second = fx.download_ms(client, 10 * 1024);
  // Fresh flow per download: no warm-connection advantage beyond noise.
  EXPECT_GT(second, first * 0.4);
  EXPECT_LT(second, first * 2.5);
  EXPECT_GE(client.tcp_stats().messages_delivered, 2u);
}

TEST(FileService, ColdStartReadsWholeFileFromDisk) {
  ServiceFixture fx(core::Policy::kStopWatch);
  FileDownloadClient client(fx.cloud, "c", fx.cloud.vm_addr(fx.server),
                            FileDownloadClient::Protocol::kUdp);
  fx.cloud.start();
  fx.download_ms(client, 1024 * 1024);
  // 1 MB in 192 KiB chunks -> 6 disk interrupts on every replica.
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(fx.cloud.replica(fx.server, r).guest_counters().disk_interrupts,
              6u);
  }
}

}  // namespace
}  // namespace stopwatch::workload
