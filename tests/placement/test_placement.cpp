#include "placement/placement.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/contracts.hpp"

namespace stopwatch::placement {
namespace {

TEST(Quasigroup, IdempotentCommutativeLatinSquare) {
  for (int q : {1, 3, 5, 7, 9, 11, 21}) {
    const Quasigroup Q(q);
    for (int a = 0; a < q; ++a) {
      EXPECT_EQ(Q.op(a, a), a) << "idempotent, q=" << q;
      std::set<int> row;
      for (int b = 0; b < q; ++b) {
        EXPECT_EQ(Q.op(a, b), Q.op(b, a)) << "commutative";
        row.insert(Q.op(a, b));
      }
      EXPECT_EQ(static_cast<int>(row.size()), q) << "Latin row, q=" << q;
    }
  }
}

TEST(Theorem1, SmallKnownValues) {
  // K_3: 1 triangle. K_7: C(7,2)=21 -> 7 triangles (Steiner).
  EXPECT_EQ(max_triangle_packing(3), 1);
  EXPECT_EQ(max_triangle_packing(7), 7);
  // K_9: 36/3 = 12 (STS(9)).
  EXPECT_EQ(max_triangle_packing(9), 12);
  // n < 3: no triangle.
  EXPECT_EQ(max_triangle_packing(0), 0);
  EXPECT_EQ(max_triangle_packing(2), 0);
  // K_5: C(5,2)=10; 3k<=10 with 10-3k not in {1,2} -> k=2 (10-6=4 ok; k=3
  // leaves 1).
  EXPECT_EQ(max_triangle_packing(5), 2);
  // K_4 (even): (6 - 2)/3 = 1.
  EXPECT_EQ(max_triangle_packing(4), 1);
  // K_6 (even): (15 - 3)/3 = 4.
  EXPECT_EQ(max_triangle_packing(6), 4);
}

TEST(Theorem1, QuadraticScaling) {
  // Θ(n²): packing count relative to C(n,2)/3 approaches 1.
  for (int n : {21, 45, 99, 201}) {
    const long k = max_triangle_packing(n);
    const long long pairs = static_cast<long long>(n) * (n - 1) / 2;
    EXPECT_GE(3 * k, pairs - 4);
  }
}

TEST(Bose, ConstructsValidSteinerTripleSystem) {
  for (int n : {9, 15, 21, 33, 45}) {
    const BoseSystem sys = bose_construction(n);
    EXPECT_EQ(sys.n, n);
    EXPECT_EQ(static_cast<int>(sys.g0.size()), (n / 3));
    EXPECT_EQ(static_cast<int>(sys.gt.size()), sys.v);

    // All triangles together form an STS: every edge exactly once.
    std::vector<Triangle> all = sys.g0;
    for (const auto& g : sys.gt) all.insert(all.end(), g.begin(), g.end());
    EXPECT_EQ(static_cast<long>(all.size()), max_triangle_packing(n));
    EXPECT_TRUE(valid_placement(all, n));

    std::set<std::pair<int, int>> edges;
    for (const auto& t : all) {
      edges.insert({std::min(t.a, t.b), std::max(t.a, t.b)});
      edges.insert({std::min(t.a, t.c), std::max(t.a, t.c)});
      edges.insert({std::min(t.b, t.c), std::max(t.b, t.c)});
    }
    EXPECT_EQ(static_cast<long long>(edges.size()),
              static_cast<long long>(n) * (n - 1) / 2)
        << "every edge of K_n covered, n=" << n;
  }
}

TEST(Bose, GroupVisitCounts) {
  const BoseSystem sys = bose_construction(21);
  // G_0 visits each node exactly once.
  auto g0_occ = occupancy(sys.g0, 21);
  for (int o : g0_occ) EXPECT_EQ(o, 1);
  // Each G_t visits each node exactly three times.
  for (const auto& g : sys.gt) {
    auto occ = occupancy(g, 21);
    for (int o : occ) EXPECT_EQ(o, 3);
  }
}

TEST(Bose, RejectsBadN) {
  EXPECT_THROW(bose_construction(10), ContractViolation);
  EXPECT_THROW(bose_construction(12), ContractViolation);
  EXPECT_THROW(bose_construction(7), ContractViolation);
}

class Theorem2Test
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Theorem2Test, PlacementIsValidAndMeetsBound) {
  const auto [n, c] = GetParam();
  const auto placement = theorem2_placement(n, c);
  EXPECT_EQ(static_cast<long>(placement.size()), theorem2_bound(n, c))
      << "n=" << n << " c=" << c;
  EXPECT_TRUE(valid_placement(placement, n, c)) << "n=" << n << " c=" << c;
}

INSTANTIATE_TEST_SUITE_P(
    CapacitySweep, Theorem2Test,
    ::testing::Values(
        // n = 9: c <= 4; c mod 3 covers 1, 2, 0, 1.
        std::make_tuple(9, 1), std::make_tuple(9, 2), std::make_tuple(9, 3),
        std::make_tuple(9, 4),
        // n = 15: c <= 7.
        std::make_tuple(15, 1), std::make_tuple(15, 2),
        std::make_tuple(15, 3), std::make_tuple(15, 5),
        std::make_tuple(15, 6), std::make_tuple(15, 7),
        // n = 21: c <= 10.
        std::make_tuple(21, 4), std::make_tuple(21, 8),
        std::make_tuple(21, 9), std::make_tuple(21, 10),
        // n = 45: c <= 22.
        std::make_tuple(45, 10), std::make_tuple(45, 21),
        std::make_tuple(45, 22),
        // n = 99: c <= 49.
        std::make_tuple(99, 33), std::make_tuple(99, 47),
        std::make_tuple(99, 49)));

TEST(Theorem2, UtilizationBeatsIsolation) {
  // Isolation runs n VMs on n machines. StopWatch with capacity c places
  // ~cn/3 VMs, beating isolation from c >= 4 onward.
  for (int n : {9, 21, 45, 99}) {
    const int c = (n - 1) / 2;
    EXPECT_GT(theorem2_bound(n, c), n) << "n=" << n;
  }
}

TEST(Theorem2, RejectsOutOfRangeInputs) {
  EXPECT_THROW(theorem2_placement(10, 1), ContractViolation);
  EXPECT_THROW(theorem2_placement(9, 0), ContractViolation);
  EXPECT_THROW(theorem2_placement(9, 5), ContractViolation);  // c > (n-1)/2
}

class GreedyTest : public ::testing::TestWithParam<int> {};

TEST_P(GreedyTest, ProducesValidPackingOfDecentSize) {
  const int n = GetParam();
  const auto packing = greedy_packing(n);
  EXPECT_TRUE(valid_placement(packing, n));
  const long bound = max_triangle_packing(n);
  if (bound > 0) {
    EXPECT_GE(static_cast<long>(packing.size()), bound / 2)
        << "greedy too weak for n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GreedyTest,
                         ::testing::Values(3, 4, 5, 8, 10, 16, 25, 40, 64));

TEST(Greedy, HonorsCapacity) {
  for (int c : {1, 2, 3, 5}) {
    const auto packing = greedy_packing(30, c);
    EXPECT_TRUE(valid_placement(packing, 30, c)) << "c=" << c;
  }
}

TEST(ValidPlacement, DetectsViolations) {
  // Edge reuse.
  EXPECT_FALSE(valid_placement({{0, 1, 2}, {0, 1, 3}}, 4));
  // Degenerate triangle.
  EXPECT_FALSE(valid_placement({{0, 0, 1}}, 3));
  // Vertex out of range.
  EXPECT_FALSE(valid_placement({{0, 1, 5}}, 4));
  // Capacity violation.
  EXPECT_FALSE(valid_placement({{0, 1, 2}, {0, 3, 4}}, 5, 1));
  // A clean placement.
  EXPECT_TRUE(valid_placement({{0, 1, 2}, {0, 3, 4}}, 5, 2));
}

}  // namespace
}  // namespace stopwatch::placement
