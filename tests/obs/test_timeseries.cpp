// The bounded-memory time-series contract: the quantile sketch merges
// exactly (per-shard/per-window rollups fold into the same sketch as the
// concatenated stream), serializes deterministically, and bounds rank
// error by one power-of-two bucket even on adversarial streams; the
// TimeSeries window ring never holds more than its budget and its memory
// footprint is fixed at construction — for any horizon.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "obs/timeseries.hpp"

namespace stopwatch::obs {
namespace {

std::vector<std::uint64_t> xorshift_stream(std::size_t n, std::uint64_t mod) {
  std::vector<std::uint64_t> values;
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;
  for (std::size_t i = 0; i < n; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    values.push_back(x % mod);
  }
  return values;
}

TEST(QuantileSketch, MergeEqualsConcatenatedStream) {
  // The mergeability law the per-window and per-shard rollups lean on:
  // sketch(A) + sketch(B) == sketch(A ++ B), byte-exact.
  const auto values = xorshift_stream(8192, 1'000'000'000ULL);

  QuantileSketch whole;
  for (const std::uint64_t v : values) whole.record(v);

  QuantileSketch left;
  QuantileSketch right;
  for (std::size_t i = 0; i < values.size(); ++i) {
    (i < values.size() / 3 ? left : right).record(values[i]);
  }
  QuantileSketch merged = left;
  merged.merge(right);

  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_EQ(merged.nonzero(), whole.nonzero());
  EXPECT_EQ(merged.serialize(), whole.serialize());
}

TEST(QuantileSketch, SerializationIsDeterministicAndOrderIndependent) {
  // Same multiset, recorded forward vs reversed, must serialize to the
  // same bytes — and the text form is the documented "i:count,..." shape.
  const auto values = xorshift_stream(2048, 1u << 20);
  QuantileSketch forward;
  for (const std::uint64_t v : values) forward.record(v);
  QuantileSketch reversed;
  for (auto it = values.rbegin(); it != values.rend(); ++it) {
    reversed.record(*it);
  }
  EXPECT_EQ(forward.serialize(), reversed.serialize());

  QuantileSketch small;
  EXPECT_EQ(small.serialize(), "");  // empty sketch is ""
  small.record(0);
  small.record(1);
  small.record(1);
  small.record(5);  // bit_width 3 -> bucket 3
  EXPECT_EQ(small.serialize(), "0:1,1:2,3:1");
}

TEST(QuantileSketch, RankErrorBoundedOnAdversarialStreams) {
  // The documented bound: v <= quantile_upper(q) < 2 * max(v, 1) for the
  // true rank-q value v. Exercised on the streams that break naive
  // sketches — sorted, constant, and bimodal.
  const auto check_stream = [](std::vector<std::uint64_t> values) {
    QuantileSketch sketch;
    for (const std::uint64_t v : values) sketch.record(v);
    std::sort(values.begin(), values.end());
    for (const double q : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0}) {
      // The sketch's rank convention: ceil(q * n), 1-based, minimum 1.
      auto rank = static_cast<std::uint64_t>(
          q * static_cast<double>(values.size()));
      if (static_cast<double>(rank) < q * static_cast<double>(values.size())) {
        ++rank;
      }
      if (rank == 0) rank = 1;
      const std::uint64_t truth = values[static_cast<std::size_t>(rank - 1)];
      const std::uint64_t upper = sketch.quantile_upper(q);
      EXPECT_GE(upper, truth) << "q=" << q;
      EXPECT_LT(upper, 2 * std::max<std::uint64_t>(truth, 1)) << "q=" << q;
    }
  };

  std::vector<std::uint64_t> sorted;
  for (std::uint64_t i = 0; i < 4096; ++i) sorted.push_back(i * 37 + 1);
  check_stream(sorted);

  check_stream(std::vector<std::uint64_t>(4096, 777));  // constant

  std::vector<std::uint64_t> bimodal;  // tiny mode + huge mode
  for (int i = 0; i < 2000; ++i) bimodal.push_back(3);
  for (int i = 0; i < 2000; ++i) bimodal.push_back(1'000'000'003ULL);
  check_stream(bimodal);

  // Wide-range random, capped below 2^62 so the doubled bound itself
  // cannot overflow uint64 arithmetic in the assertion.
  check_stream(xorshift_stream(4096, 1ULL << 62));
}

TEST(QuantileSketch, QuantileEdgeCases) {
  QuantileSketch empty;
  EXPECT_EQ(empty.quantile_upper(0.5), 0u);

  QuantileSketch zeros;
  zeros.record(0);
  zeros.record(0);
  EXPECT_EQ(zeros.quantile_upper(1.0), 0u);  // bucket 0: exactly the zeros

  QuantileSketch one;
  one.record(1u << 30);
  // Out-of-range q clamps rather than reading past the buckets.
  EXPECT_EQ(one.quantile_upper(-3.0), one.quantile_upper(0.0));
  EXPECT_EQ(one.quantile_upper(7.0), one.quantile_upper(1.0));
}

TEST(TimeSeries, CoarseningKeepsWindowCountWithinBudget) {
  // 8 windows of 100ns; recording out to 100x the initial horizon must
  // double the width (as many times as needed) instead of growing the
  // ring, with nothing dropped.
  TimeSeries series(100, 8);
  std::uint64_t recorded = 0;
  for (std::int64_t t = 0; t < 80'000; t += 93) {
    series.record(t, static_cast<std::uint64_t>(t % 1000));
    ++recorded;
    EXPECT_LE(series.window_count(), 8u);
  }
  EXPECT_EQ(series.total_count(), recorded);
  // Width doubled from 100ns to cover 80us in <= 8 windows.
  EXPECT_GE(series.window_ns(), 80'000 / 8);
  // The snapshot's windows carry every recorded value between them.
  const TimeSeriesSnapshot snap = series.snapshot();
  std::uint64_t in_windows = 0;
  for (const auto& [start, w] : snap.windows) in_windows += w.count;
  EXPECT_EQ(in_windows, recorded);
}

TEST(TimeSeries, CoarseningPreservesRollupsExactly) {
  // A pairwise fold must behave exactly like recording into the coarser
  // windows from the start: count/sum/max and the sketch are mergeable,
  // so the two paths agree byte for byte.
  const auto values = xorshift_stream(4096, 1'000'000);
  TimeSeries fine(50, 4);      // will coarsen repeatedly
  TimeSeries coarse(6400, 4);  // already wide enough for the horizon
  for (std::size_t i = 0; i < values.size(); ++i) {
    const auto t = static_cast<std::int64_t>(i * 6);  // horizon 24576ns
    fine.record(t, values[i]);
    coarse.record(t, values[i]);
  }
  const TimeSeriesSnapshot a = fine.snapshot();
  const TimeSeriesSnapshot b = coarse.snapshot();
  EXPECT_EQ(a.window_ns, b.window_ns);
  ASSERT_EQ(a.windows.size(), b.windows.size());
  for (std::size_t i = 0; i < a.windows.size(); ++i) {
    EXPECT_EQ(a.windows[i].first, b.windows[i].first);
    EXPECT_EQ(a.windows[i].second.count, b.windows[i].second.count);
    EXPECT_EQ(a.windows[i].second.sum, b.windows[i].second.sum);
    EXPECT_EQ(a.windows[i].second.max, b.windows[i].second.max);
    EXPECT_EQ(a.windows[i].second.sketch.serialize(),
              b.windows[i].second.sketch.serialize());
  }
}

TEST(TimeSeries, MemoryIsFixedAtConstructionForAnyHorizon) {
  // The fixed-budget guarantee: the ring reserves its budget up front and
  // memory_bytes() never moves, no matter how far the horizon runs.
  TimeSeries series(1000, 16);
  const std::size_t at_birth = series.memory_bytes();
  EXPECT_GT(at_birth, 0u);
  for (std::int64_t t = 0; t < 10'000'000; t += 977) {
    series.record(t, static_cast<std::uint64_t>(t));
    EXPECT_EQ(series.memory_bytes(), at_birth);
  }
  EXPECT_LE(series.window_count(), 16u);
}

TEST(TimeSeries, NegativeTimesClampToWindowZero) {
  TimeSeries series(100, 4);
  series.record(-5'000, 42);
  const TimeSeriesSnapshot snap = series.snapshot();
  ASSERT_EQ(snap.windows.size(), 1u);
  EXPECT_EQ(snap.windows[0].first, 0);
  EXPECT_EQ(snap.windows[0].second.max, 42u);
}

}  // namespace
}  // namespace stopwatch::obs
