// The profiler's accounting contract: nested scopes subtract child time
// from parent self time (so attributed_ns never double counts), the
// disarmed path records nothing, per-thread slots merge into one
// snapshot, the JSON schema lists every registry phase in order, and
// collapsed stacks render the call paths flamegraph tools expect.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/profiler.hpp"

namespace stopwatch::obs {
namespace {

constexpr std::size_t kSetup = prof_phase_index("scenario.setup");
constexpr std::size_t kDrive = prof_phase_index("scenario.drive");
constexpr std::size_t kRun = prof_phase_index("cloud.run");

void spin_for(std::chrono::microseconds d) {
  const auto until = std::chrono::steady_clock::now() + d;
  while (std::chrono::steady_clock::now() < until) {
  }
}

/// Installs `p` as the active profiler for the test's duration.
class ActiveProfiler {
 public:
  explicit ActiveProfiler(Profiler* p) : previous_(active_profiler()) {
    set_active_profiler(p);
  }
  ~ActiveProfiler() { set_active_profiler(previous_); }

 private:
  Profiler* previous_;
};

TEST(Profiler, NestedScopesSubtractChildTimeFromParentSelf) {
  Profiler profiler;
  ActiveProfiler install(&profiler);
  profiler.arm();
  {
    OBS_PROF_SCOPE("scenario.drive");
    spin_for(std::chrono::microseconds(2000));
    {
      OBS_PROF_SCOPE("cloud.run");
      spin_for(std::chrono::microseconds(4000));
    }
  }
  profiler.disarm();

  const ProfilerSnapshot snap = profiler.snapshot();
  const auto& drive = snap.phases[kDrive];
  const auto& run = snap.phases[kRun];
  EXPECT_EQ(drive.calls, 1u);
  EXPECT_EQ(run.calls, 1u);
  // Parent total includes the child; parent self does not.
  EXPECT_GE(drive.total_ns, run.total_ns);
  EXPECT_EQ(drive.self_ns, drive.total_ns - run.total_ns);
  EXPECT_EQ(run.self_ns, run.total_ns);
  // attributed_ns is the sum of self times — no double counting, so it
  // cannot exceed the root's inclusive time.
  EXPECT_EQ(snap.attributed_ns(), drive.self_ns + run.self_ns);
  EXPECT_LE(snap.attributed_ns(), drive.total_ns);
}

TEST(Profiler, DisarmedAndUninstalledRecordNothing) {
  Profiler profiler;
  {
    // Installed but never armed.
    ActiveProfiler install(&profiler);
    OBS_PROF_SCOPE("scenario.setup");
    spin_for(std::chrono::microseconds(100));
  }
  {
    // Armed but not installed (the scope sees no active profiler).
    profiler.arm();
    OBS_PROF_SCOPE("scenario.setup");
    spin_for(std::chrono::microseconds(100));
    profiler.disarm();
  }
  const ProfilerSnapshot snap = profiler.snapshot();
  EXPECT_EQ(snap.phases[kSetup].calls, 0u);
  EXPECT_EQ(snap.attributed_ns(), 0u);
  EXPECT_TRUE(snap.paths.empty());
}

TEST(Profiler, SnapshotMergesThreadSlots) {
  Profiler profiler;
  ActiveProfiler install(&profiler);
  profiler.arm();
  constexpr int kThreads = 4;
  constexpr int kCallsPerThread = 50;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        OBS_PROF_SCOPE("sharded.merge");
        spin_for(std::chrono::microseconds(10));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  profiler.disarm();

  const ProfilerSnapshot snap = profiler.snapshot();
  const auto& merge = snap.phases[prof_phase_index("sharded.merge")];
  EXPECT_EQ(merge.calls,
            static_cast<std::uint64_t>(kThreads * kCallsPerThread));
  EXPECT_GT(merge.self_ns, 0u);
  // All threads ran the same single-phase path, so the paths collapse to
  // one entry carrying every call.
  ASSERT_EQ(snap.paths.size(), 1u);
  EXPECT_EQ(snap.paths[0].stack, "sharded.merge");
  EXPECT_EQ(snap.paths[0].calls, merge.calls);
  EXPECT_EQ(snap.paths[0].self_ns, merge.self_ns);
}

TEST(Profiler, CollapsedStacksRenderSemicolonPaths) {
  Profiler profiler;
  ActiveProfiler install(&profiler);
  profiler.arm();
  {
    OBS_PROF_SCOPE("scenario.drive");
    {
      OBS_PROF_SCOPE("cloud.run");
      spin_for(std::chrono::microseconds(200));
    }
  }
  profiler.disarm();

  const ProfilerSnapshot snap = profiler.snapshot();
  const std::string stacks = collapsed_stacks(snap);
  // One line per path, "a;b self_ns", paths sorted by stack string.
  EXPECT_NE(stacks.find("scenario.drive "), std::string::npos);
  EXPECT_NE(stacks.find("scenario.drive;cloud.run "), std::string::npos);
  std::size_t lines = 0;
  for (const char c : stacks) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, snap.paths.size());
}

TEST(Profiler, ClearDropsDataButKeepsArming) {
  Profiler profiler;
  ActiveProfiler install(&profiler);
  profiler.arm();
  {
    OBS_PROF_SCOPE("scenario.setup");
    spin_for(std::chrono::microseconds(100));
  }
  EXPECT_GT(profiler.snapshot().phases[kSetup].calls, 0u);
  profiler.clear();
  EXPECT_TRUE(profiler.armed());
  EXPECT_EQ(profiler.snapshot().phases[kSetup].calls, 0u);
  EXPECT_TRUE(profiler.snapshot().paths.empty());
  {
    OBS_PROF_SCOPE("scenario.setup");
  }
  // The thread slot survived the clear and keeps recording.
  EXPECT_EQ(profiler.snapshot().phases[kSetup].calls, 1u);
  profiler.disarm();
}

TEST(Profiler, JsonSchemaListsEveryPhaseInRegistryOrder) {
  // The schema guarantee: all phases appear, in kProfPhases order, zeros
  // included — so the *shape* of the profile block is byte-stable across
  // runs even though the wall values are measurements.
  const ProfilerSnapshot empty;
  const std::string json =
      profile_to_json(empty, /*wall_ns=*/1000, /*rss_bytes=*/0,
                      /*rss_peak_bytes=*/0);
  EXPECT_NE(json.find("\"schema\": \"stopwatch-profile/1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"wall_ns\": 1000"), std::string::npos);
  EXPECT_NE(json.find("\"attributed_ns\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"other_ns\": 1000"), std::string::npos);
  std::size_t at = 0;
  for (const char* phase : kProfPhases) {
    const std::size_t found =
        json.find("\"name\": \"" + std::string(phase) + "\"", at);
    ASSERT_NE(found, std::string::npos) << phase;
    at = found;  // each phase appears after the previous one
  }
  // other_ns clamps at zero when attribution exceeds the wall sample.
  ProfilerSnapshot busy;
  busy.phases[kRun] = {1, 5000, 5000};
  const std::string clamped = profile_to_json(busy, /*wall_ns=*/1, 0, 0);
  EXPECT_NE(clamped.find("\"other_ns\": 0"), std::string::npos);
}

TEST(Profiler, RssSamplersReportThisProcess) {
  // Linux /proc/self/status backs both; a real process is resident.
  const std::uint64_t rss = process_rss_bytes();
  const std::uint64_t peak = process_rss_peak_bytes();
  EXPECT_GT(rss, 0u);
  EXPECT_GE(peak, rss / 2);  // peak >= current modulo sampling slack
}

}  // namespace
}  // namespace stopwatch::obs
