// The metrics layer's determinism contract: histogram buckets are fixed
// powers of two, every mutation commutes (so record order and thread
// interleaving cannot change a snapshot), and registry snapshots come out
// sorted by name — the properties the `observability` report block and
// the cross-shard identity tests lean on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace stopwatch::obs {
namespace {

TEST(Histogram, BucketIndexIsBitWidth) {
  Histogram h;
  h.record(0);     // bucket 0: exactly the zeros
  h.record(1);     // bucket 1: [1, 2)
  h.record(2);     // bucket 2: [2, 4)
  h.record(3);     // bucket 2
  h.record(1024);  // bucket 11: [1024, 2048)
  h.record(2047);  // bucket 11

  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 6u);
  EXPECT_EQ(snap.sum, 0u + 1 + 2 + 3 + 1024 + 2047);
  EXPECT_EQ(snap.max, 2047u);
  const std::vector<std::pair<int, std::uint64_t>> expected = {
      {0, 1}, {1, 1}, {2, 2}, {11, 2}};
  EXPECT_EQ(snap.buckets, expected);
}

TEST(Histogram, SnapshotSkipsEmptyBucketsAndEmptyIsEmpty) {
  Histogram h;
  EXPECT_EQ(h.snapshot().count, 0u);
  EXPECT_TRUE(h.snapshot().buckets.empty());
  h.record(1u << 20);
  ASSERT_EQ(h.snapshot().buckets.size(), 1u);
  EXPECT_EQ(h.snapshot().buckets[0].first, 21);
}

TEST(Histogram, SnapshotIsIndependentOfRecordOrder) {
  // The merge-order determinism the sharded simulator relies on: the same
  // multiset of values, recorded forward, reversed, and split across
  // threads, must snapshot identically.
  std::vector<std::uint64_t> values;
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;
  for (int i = 0; i < 4096; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    values.push_back(x % 1'000'000);
  }

  Histogram forward;
  for (const std::uint64_t v : values) forward.record(v);

  Histogram reversed;
  for (auto it = values.rbegin(); it != values.rend(); ++it) {
    reversed.record(*it);
  }

  Histogram threaded;
  {
    std::vector<std::thread> workers;
    const std::size_t stripe = values.size() / 4;
    for (int w = 0; w < 4; ++w) {
      workers.emplace_back([&threaded, &values, stripe, w] {
        const std::size_t begin = static_cast<std::size_t>(w) * stripe;
        const std::size_t end =
            w == 3 ? values.size() : begin + stripe;
        for (std::size_t i = begin; i < end; ++i) threaded.record(values[i]);
      });
    }
    for (std::thread& t : workers) t.join();
  }

  const HistogramSnapshot a = forward.snapshot();
  const HistogramSnapshot b = reversed.snapshot();
  const HistogramSnapshot c = threaded.snapshot();
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.sum, b.sum);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.buckets, b.buckets);
  EXPECT_EQ(a.count, c.count);
  EXPECT_EQ(a.sum, c.sum);
  EXPECT_EQ(a.max, c.max);
  EXPECT_EQ(a.buckets, c.buckets);
}

TEST(Registry, SnapshotSortedByNameAndLastWriteWins) {
  Registry reg;
  EXPECT_TRUE(reg.snapshot().empty());

  reg.set_counter("zeta", 1);
  reg.set_counter("alpha", 2);
  reg.set_counter("zeta", 3);  // overwrites
  Histogram* h = reg.histogram("bytes");
  EXPECT_EQ(h, reg.histogram("bytes"));  // stable pointer, created once
  h->record(7);

  const Snapshot snap = reg.snapshot();
  EXPECT_FALSE(snap.empty());
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "alpha");
  EXPECT_EQ(snap.counters[0].second, 2u);
  EXPECT_EQ(snap.counters[1].first, "zeta");
  EXPECT_EQ(snap.counters[1].second, 3u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].first, "bytes");
  EXPECT_EQ(snap.histograms[0].second.count, 1u);
  EXPECT_EQ(snap.histograms[0].second.max, 7u);
}

}  // namespace
}  // namespace stopwatch::obs
