// The trace recorder's export contract: disarmed recording is a no-op,
// events serialize stable-sorted by (ts, pid, tid) with integer-exact
// microsecond timestamps, and kParallel tracks stay out of the default
// export — the properties behind the cross-shard byte-identity guarantee.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace stopwatch::obs {
namespace {

TEST(TraceRecorder, DisarmedRecordingIsANoOp) {
  TraceRecorder rec;
  TraceTrack* t = rec.track(1, 0, "proc", "thread");
  t->instant(100, "ev");
  t->complete(200, 50, "span");
  t->counter(300, "ctr", "v", 7);
  EXPECT_EQ(rec.event_count(), 0u);

  rec.arm();
  t->instant(100, "ev");
  EXPECT_EQ(rec.event_count(), 1u);
  rec.disarm();
  t->instant(101, "ev");
  EXPECT_EQ(rec.event_count(), 1u);

  rec.clear();
  EXPECT_EQ(rec.event_count(), 0u);
}

TEST(TraceRecorder, TrackIdentityIsPidTid) {
  TraceRecorder rec;
  TraceTrack* a = rec.track(5, 2, "p", "t");
  EXPECT_EQ(a, rec.track(5, 2, "ignored", "ignored"));
  EXPECT_NE(a, rec.track(5, 3, "p", "t2"));
}

TEST(TraceRecorder, ExportSortsByTsThenPidTidAndFormatsMicroseconds) {
  TraceRecorder rec;
  // Created out of identity order on purpose: export must not depend on
  // creation order.
  TraceTrack* late = rec.track(2, 0, "proc-b", "row");
  TraceTrack* early = rec.track(1, 0, "proc-a", "row");
  rec.arm();
  late->instant(1500, "tie");           // 1.500 us, pid 2
  early->instant(1500, "tie");          // 1.500 us, pid 1 — sorts first
  early->complete(2000, 250, "span");   // ts 2.000, dur 0.250
  late->instant(999, "first");          // 0.999 us — earliest
  rec.disarm();

  const std::string json = rec.export_json();
  // Metadata precedes events, processes in pid order.
  const auto meta_a = json.find("\"name\": \"proc-a\"");
  const auto meta_b = json.find("\"name\": \"proc-b\"");
  ASSERT_NE(meta_a, std::string::npos);
  ASSERT_NE(meta_b, std::string::npos);
  EXPECT_LT(meta_a, meta_b);

  const auto first = json.find("\"ts\": 0.999, \"pid\": 2");
  const auto tie_p1 = json.find("\"ts\": 1.500, \"pid\": 1");
  const auto tie_p2 = json.find("\"ts\": 1.500, \"pid\": 2");
  const auto span = json.find("\"dur\": 0.250, \"pid\": 1");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(tie_p1, std::string::npos);
  ASSERT_NE(tie_p2, std::string::npos);
  ASSERT_NE(span, std::string::npos);
  EXPECT_LT(first, tie_p1);
  EXPECT_LT(tie_p1, tie_p2);
  EXPECT_LT(tie_p2, span);

  // Two exports of the same recorder are byte-identical.
  EXPECT_EQ(json, rec.export_json());
}

TEST(TraceRecorder, ParallelTracksAreOptIn) {
  TraceRecorder rec;
  TraceTrack* sim_track = rec.track(1, 0, "vm", "v0");
  TraceTrack* par = rec.track(800, 0, "parallel", "barriers",
                              Category::kParallel);
  rec.arm();
  sim_track->instant(10, "ingress");
  par->complete(10, 5, "window");
  rec.disarm();

  const std::string def = rec.export_json();
  EXPECT_NE(def.find("\"ingress\""), std::string::npos);
  EXPECT_EQ(def.find("\"window\""), std::string::npos);
  EXPECT_EQ(def.find("\"barriers\""), std::string::npos);

  const std::string with = rec.export_json(/*include_parallel=*/true);
  EXPECT_NE(with.find("\"window\""), std::string::npos);
  EXPECT_NE(with.find("\"barriers\""), std::string::npos);
}

TEST(TraceRecorder, EscapesQuotesInTrackNames) {
  TraceRecorder rec;
  rec.track(1, 0, "p", "vm \"quoted\"\nname");
  const std::string json = rec.export_json();
  EXPECT_NE(json.find("vm \\\"quoted\\\" name"), std::string::npos);
}

TEST(KernelCounterSink, RecordsKernelNotificationsAsCounterEvents) {
  TraceRecorder rec;
  TraceTrack* t =
      rec.track(900, 0, "sim-kernel", "core-0", Category::kParallel);
  KernelCounterSink sink(t);
  sink.on_executed(100, 4096);  // disarmed: dropped
  rec.arm();
  sink.on_executed(200, 8192);
  sink.on_executed(300, 12288);
  EXPECT_EQ(rec.event_count(), 2u);
  const std::string json = rec.export_json(/*include_parallel=*/true);
  EXPECT_NE(json.find("\"events_executed\""), std::string::npos);
  EXPECT_NE(json.find("{\"executed\": 8192}"), std::string::npos);
}

TEST(KernelCounterSink, KernelSamplesEveryPowerOfTwoInterval) {
  // The sampling lives in the kernel: a sink attached to a real simulator
  // is notified once per kTraceSampleEvery executed events.
  TraceRecorder rec;
  TraceTrack* t =
      rec.track(901, 0, "sim-kernel", "core-0", Category::kParallel);
  rec.arm();
  KernelCounterSink sink(t);
  sim::Simulator simulator;
  simulator.set_trace_sink(&sink);
  const std::uint64_t events = 2 * sim::Simulator::kTraceSampleEvery + 10;
  for (std::uint64_t i = 0; i < events; ++i) {
    simulator.schedule_at(RealTime::nanos(static_cast<std::int64_t>(i)),
                          [] {});
  }
  simulator.run();
  EXPECT_EQ(rec.event_count(), 2u);
}

TEST(ActiveTrace, InstallAndClear) {
  EXPECT_EQ(active_trace(), nullptr);
  TraceRecorder rec;
  set_active_trace(&rec);
  EXPECT_EQ(active_trace(), &rec);
  set_active_trace(nullptr);
  EXPECT_EQ(active_trace(), nullptr);
}

}  // namespace
}  // namespace stopwatch::obs
