// Lazy replica wiring: a VM registered under WiringMode::kLazy costs one
// ingress address node until the first frame reaches it; that frame
// materializes the multicast groups and replica GuestContexts exactly once
// (replays never re-wire), boots the replicas at the median of their
// machines' clocks, and the packet itself is still delivered — the guest
// echoes it like an eagerly wired one would.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/cloud.hpp"

namespace stopwatch::core {
namespace {

/// Echoes every request back to its sender.
class EchoProgram final : public vm::GuestProgram {
 public:
  void on_boot(vm::GuestApi&) override {}
  void on_timer_tick(vm::GuestApi&, std::uint64_t) override {}
  void on_packet(vm::GuestApi& api, const net::Packet& pkt) override {
    if (pkt.kind != net::PacketKind::kRequest) return;
    net::Packet reply;
    reply.dst = pkt.src;
    reply.kind = net::PacketKind::kData;
    reply.seq = pkt.seq;
    reply.size_bytes = 100;
    api.send_packet(reply);
  }
};

CloudConfig lazy_config(std::uint64_t seed = 11) {
  CloudConfig cfg;
  cfg.seed = seed;
  cfg.policy = Policy::kStopWatch;
  cfg.machine_count = 9;
  cfg.shard_size = 4;
  cfg.wiring = WiringMode::kLazy;
  return cfg;
}

void send_request(Cloud& cloud, NodeId client, VmHandle vm, std::uint64_t seq,
                  Duration at) {
  cloud.simulator().schedule_at(RealTime{} + at, [&cloud, client, vm, seq] {
    net::Packet req;
    req.dst = cloud.vm_addr(vm);
    req.kind = net::PacketKind::kRequest;
    req.seq = seq;
    req.size_bytes = 80;
    cloud.send_external(client, req);
  });
}

TEST(LazyWiring, FirstPacketWiresOnceAndRepliesFlow) {
  Cloud cloud(lazy_config());
  const VmHandle a = cloud.add_vm(
      "a", [] { return std::make_unique<EchoProgram>(); }, {0, 1, 2});
  const VmHandle b = cloud.add_vm(
      "b", [] { return std::make_unique<EchoProgram>(); }, {3, 4, 5});
  const VmHandle untouched = cloud.add_vm(
      "untouched", [] { return std::make_unique<EchoProgram>(); }, {6, 7, 8});

  std::vector<std::uint64_t> replies;
  const NodeId client = cloud.add_external_node(
      "client", [&](const net::Packet& pkt) { replies.push_back(pkt.seq); });

  cloud.start();
  // Nothing materialized at start: no replicas, no machine shards beyond
  // what eager mode would have forced.
  EXPECT_EQ(cloud.topology().materialized_vm_count(), 0u);
  EXPECT_EQ(cloud.topology().machines().materialized_machines(), 0);
  EXPECT_EQ(cloud.replicas_of(a), 0);
  EXPECT_FALSE(cloud.vm_materialized(a));

  // Drive VM a with several packets; b and untouched get none.
  for (int i = 0; i < 10; ++i) {
    send_request(cloud, client, a, static_cast<std::uint64_t>(i),
                 Duration::millis(20 * (i + 1)));
  }
  cloud.run_for(Duration::seconds(2));

  // Exactly one VM wired, by its first packet; replays did not re-wire
  // (re-wiring would re-run the factory and reset guest state, so replies
  // past the first would restart their sequence).
  EXPECT_TRUE(cloud.vm_materialized(a));
  EXPECT_FALSE(cloud.vm_materialized(b));
  EXPECT_FALSE(cloud.vm_materialized(untouched));
  EXPECT_EQ(cloud.topology().materialized_vm_count(), 1u);
  EXPECT_EQ(cloud.replicas_of(a), 3);
  EXPECT_EQ(cloud.replicas_of(b), 0);

  ASSERT_EQ(replies.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(replies[i], i);
  EXPECT_EQ(cloud.egress_stats(a).packets_released, 10u);
  EXPECT_TRUE(cloud.replicas_deterministic(a));
  EXPECT_EQ(cloud.total_divergences(), 0u);

  // Only the shards hosting a's machines {0,1,2} materialized: shard 0 of
  // the size-4 sharding. The untouched VMs' machines stayed un-built.
  EXPECT_EQ(cloud.topology().machines().materialized_machines(), 4);

  // Introspecting an unwired VM's replicas is a contract violation that
  // names the VM instead of an opaque index check.
  try {
    static_cast<void>(cloud.replica(untouched, 0));
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("untouched"), std::string::npos);
  }
}

TEST(LazyWiring, MaterializeIsIdempotentAndExplicit) {
  Cloud cloud(lazy_config(5));
  const VmHandle vm = cloud.add_vm(
      "echo", [] { return std::make_unique<EchoProgram>(); }, {0, 1, 2});
  // Explicit materialization before start wires but defers boot to start().
  cloud.materialize(vm);
  EXPECT_TRUE(cloud.vm_materialized(vm));
  EXPECT_EQ(cloud.replicas_of(vm), 3);
  cloud.materialize(vm);  // replay: no re-wire
  EXPECT_EQ(cloud.topology().materialized_vm_count(), 1u);

  int received = 0;
  const NodeId client = cloud.add_external_node(
      "client", [&](const net::Packet&) { ++received; });
  cloud.start();
  send_request(cloud, client, vm, 1, Duration::millis(10));
  cloud.run_for(Duration::seconds(1));
  EXPECT_EQ(received, 1);
  EXPECT_GT(cloud.replica(vm, 0).instr(), 0u);
}

TEST(LazyWiring, LazyEchoMatchesEagerSemantics) {
  // The same traffic through a lazy and an eager cloud produces the same
  // application-level outcome (every request echoed exactly once, replicas
  // deterministic) — laziness changes construction cost, not behaviour.
  for (const WiringMode mode : {WiringMode::kEager, WiringMode::kLazy}) {
    CloudConfig cfg = lazy_config(21);
    cfg.wiring = mode;
    Cloud cloud(cfg);
    const VmHandle vm = cloud.add_vm(
        "echo", [] { return std::make_unique<EchoProgram>(); }, {0, 4, 8});
    std::vector<std::uint64_t> replies;
    const NodeId client = cloud.add_external_node(
        "client", [&](const net::Packet& pkt) { replies.push_back(pkt.seq); });
    cloud.start();
    for (int i = 0; i < 6; ++i) {
      send_request(cloud, client, vm, static_cast<std::uint64_t>(i),
                   Duration::millis(30 * (i + 1)));
    }
    cloud.run_for(Duration::seconds(2));
    ASSERT_EQ(replies.size(), 6u) << "mode " << static_cast<int>(mode);
    for (std::uint64_t i = 0; i < 6; ++i) EXPECT_EQ(replies[i], i);
    EXPECT_TRUE(cloud.replicas_deterministic(vm));
    EXPECT_EQ(cloud.total_divergences(), 0u);
    // VM machines {0,4,8} span all three size-4 shards under lazy wiring.
    if (mode == WiringMode::kLazy) {
      EXPECT_EQ(cloud.topology().machines().materialized_machines(), 9);
    }
  }
}

TEST(LazyWiring, BaselinePolicyMaterializesOnFirstDirectPacket) {
  CloudConfig cfg = lazy_config(3);
  cfg.policy = Policy::kBaselineXen;
  Cloud cloud(cfg);
  const VmHandle vm = cloud.add_vm(
      "echo", [] { return std::make_unique<EchoProgram>(); }, {2});
  int received = 0;
  const NodeId client = cloud.add_external_node(
      "client", [&](const net::Packet&) { ++received; });
  cloud.start();
  EXPECT_EQ(cloud.replicas_of(vm), 0);
  send_request(cloud, client, vm, 0, Duration::millis(5));
  cloud.run_for(Duration::seconds(1));
  EXPECT_EQ(received, 1);
  EXPECT_EQ(cloud.replicas_of(vm), 1);  // baseline: single replica
}

}  // namespace
}  // namespace stopwatch::core
