// The sharded machine table must be observably identical to a dense one:
// every machine's identity, clock offset, and RNG stream is a pure function
// of (seed, index), independent of shard size and of the order shards
// materialize in.
#include "topology/machine_table.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/contracts.hpp"

namespace stopwatch::topology {
namespace {

struct Fixture {
  explicit Fixture(int machines, int shard_size, std::uint64_t seed = 7)
      : table(sim, net,
              MachineTableConfig{machines, shard_size, seed,
                                 hypervisor::MachineConfig{},
                                 Duration::millis(40)},
              [this](int, const net::Frame&) { ++frames; }) {}

  sim::Simulator sim;
  net::Network net{sim, Rng(99)};
  int frames{0};
  MachineTable table;
};

TEST(MachineTable, ShardMathCoversAllMachines) {
  Fixture fx(101, 16);
  EXPECT_EQ(fx.table.machine_count(), 101);
  EXPECT_EQ(fx.table.shard_count(), 7);  // ceil(101 / 16)
  EXPECT_EQ(fx.table.shard_of(0), 0);
  EXPECT_EQ(fx.table.shard_of(15), 0);
  EXPECT_EQ(fx.table.shard_of(16), 1);
  EXPECT_EQ(fx.table.shard_of(100), 6);
  EXPECT_THROW(static_cast<void>(fx.table.shard_of(101)), ContractViolation);
}

TEST(MachineTable, ShardedLookupEquivalentToDenseTable) {
  // Same seed, different shard sizes (1 = fully dense): every machine must
  // come out identical — offsets, ids, and the first RNG draws.
  Fixture dense(40, 40);
  Fixture sharded(40, 7);
  dense.table.materialize_all();
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(dense.table.clock_offset(i).ns, sharded.table.clock_offset(i).ns)
        << i;
    auto& dm = dense.table.machine(i);
    auto& sm = sharded.table.machine(i);
    EXPECT_EQ(dm.id().value, sm.id().value);
    EXPECT_EQ(dm.config().clock_offset.ns, sm.config().clock_offset.ns);
    EXPECT_EQ(dm.local_clock().ns, sm.local_clock().ns);
    // The per-machine RNG stream is derived from (seed, index), not from a
    // shared draw order: the first jittered IPS samples must agree.
    EXPECT_DOUBLE_EQ(dm.effective_ips(0.0), sm.effective_ips(0.0)) << i;
  }
}

TEST(MachineTable, MaterializationOrderDoesNotChangeMachines) {
  Fixture forward(30, 8);
  Fixture backward(30, 8);
  std::vector<double> fwd, bwd;
  for (int i = 0; i < 30; ++i) {
    fwd.push_back(forward.table.machine(i).effective_ips(0.5));
  }
  for (int i = 29; i >= 0; --i) {
    bwd.push_back(backward.table.machine(i).effective_ips(0.5));
  }
  for (int i = 0; i < 30; ++i) {
    EXPECT_DOUBLE_EQ(fwd[static_cast<std::size_t>(i)],
                     bwd[static_cast<std::size_t>(29 - i)])
        << i;
  }
}

TEST(MachineTable, TouchingOneMachineMaterializesOnlyItsShard) {
  Fixture fx(100, 10);
  EXPECT_EQ(fx.table.materialized_shards(), 0);
  EXPECT_EQ(fx.table.materialized_machines(), 0);
  EXPECT_FALSE(fx.table.machine_materialized(42));
  static_cast<void>(fx.table.machine(42));
  EXPECT_EQ(fx.table.materialized_shards(), 1);
  EXPECT_EQ(fx.table.materialized_machines(), 10);
  EXPECT_TRUE(fx.table.machine_materialized(42));
  EXPECT_TRUE(fx.table.machine_materialized(40));  // same shard
  EXPECT_FALSE(fx.table.machine_materialized(39));
  // clock_offset stays computable without materializing anything.
  static_cast<void>(fx.table.clock_offset(99));
  EXPECT_EQ(fx.table.materialized_shards(), 1);
}

TEST(MachineTable, RaggedFinalShardMaterializes) {
  Fixture fx(23, 10);  // last shard holds 3 machines
  EXPECT_EQ(fx.table.shard_count(), 3);
  static_cast<void>(fx.table.machine(22));
  EXPECT_EQ(fx.table.materialized_machines(), 3);
  fx.table.materialize_all();
  EXPECT_EQ(fx.table.materialized_machines(), 23);
  EXPECT_EQ(fx.table.materialized_shards(), 3);
}

TEST(MachineTable, MachineNodesReceiveFrames) {
  Fixture fx(8, 4);
  const NodeId n0 = fx.table.machine_node(0);
  const NodeId n7 = fx.table.machine_node(7);
  net::Frame f;
  f.src = n0;
  f.dst = n7;
  f.size_bytes = 64;
  fx.net.send(std::move(f));
  fx.sim.run();
  EXPECT_EQ(fx.frames, 1);
}

TEST(MachineTable, RejectsBadConfigWithClearMessage) {
  sim::Simulator sim;
  net::Network net{sim, Rng(1)};
  try {
    MachineTable bad(sim, net, MachineTableConfig{0, 8, 1, {}, {}},
                     [](int, const net::Frame&) {});
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("machine_count"), std::string::npos);
  }
  try {
    MachineTable bad(sim, net, MachineTableConfig{4, 0, 1, {}, {}},
                     [](int, const net::Frame&) {});
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("shard_size"), std::string::npos);
  }
}

}  // namespace
}  // namespace stopwatch::topology
