// Sharded-kernel correctness: the N-shard run must be indistinguishable
// from the 1-shard reference — the parallel mirror of the PR 5
// PQ-differential test. A synthetic entity workload (self-rescheduling
// chains + cross-entity messages through the lanes) is replayed under
// different shard counts, thread counts, and lane drain orders; per-entity
// event logs must match entry for entry, and at every barrier the sharded
// logs must be an exact prefix of the sequential reference.
//
// Timestamp parity keeps the comparison tie-free by construction: chain
// ticks land on even nanoseconds, message deliveries on odd ones, and a
// message's arrival time encodes its source entity — so two messages can
// collide in time only when they share a source, where both orderings
// degenerate to the source's own (deterministic) send order.
#include "sim/sharded.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <numeric>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace stopwatch::sim {
namespace {

constexpr Duration kWindow = Duration::nanos(10'000);  // even: parity trick

struct DiffHarness {
  struct Entry {
    std::int64_t t{0};
    int kind{0};         // 0 = chain tick, 1 = message delivery
    std::uint64_t a{0};  // tick number / source entity
    std::uint64_t b{0};  // message id (per source)
    bool operator==(const Entry&) const = default;
  };

  DiffHarness(int shards, int entities, std::uint64_t seed,
              std::size_t threads = 0,
              WindowPolicy policy = WindowPolicy::kFixed)
      : entities_(entities),
        sim_({shards, kWindow, threads, policy}),
        logs_(static_cast<std::size_t>(entities)),
        ticks_(static_cast<std::size_t>(entities), 0),
        sent_(static_cast<std::size_t>(entities), 0) {
    const Rng root(seed);
    rngs_.reserve(static_cast<std::size_t>(entities));
    for (int e = 0; e < entities; ++e) {
      rngs_.push_back(root.fork(static_cast<std::uint64_t>(1000 + e)));
    }
    for (int e = 0; e < entities; ++e) {
      sim_.shard(shard_of(e)).schedule_at(RealTime::nanos(2 * (e + 1)),
                                          [this, e] { tick(e); });
    }
  }

  [[nodiscard]] int shard_of(int e) const { return e % sim_.shard_count(); }

  void tick(int e) {
    const auto eu = static_cast<std::size_t>(e);
    Simulator& core = sim_.shard(shard_of(e));
    logs_[eu].push_back({core.now().ns, 0, ticks_[eu]++, 0});
    Rng& rng = rngs_[eu];
    if (rng.chance(0.35)) {
      const int target = static_cast<int>(rng.uniform_int(0, entities_ - 1));
      const std::int64_t draw = rng.uniform_int(0, 499);
      // Beyond the lookahead (== window), odd, and with the arrival's
      // half-tick residue mod entities_ pinned to the sender — so two
      // sources can never collide on an arrival time, and same-source
      // collisions order by send sequence under both kernels.
      const std::int64_t half = (core.now().ns + kWindow.ns) / 2;
      std::int64_t residue = (e - half) % entities_;
      if (residue < 0) residue += entities_;
      const std::int64_t at =
          core.now().ns + kWindow.ns + 2 * (draw * entities_ + residue) + 1;
      const std::uint64_t msg = ++sent_[eu];
      auto deliver = [this, target, e, msg] {
        logs_[static_cast<std::size_t>(target)].push_back(
            {sim_.shard(shard_of(target)).now().ns, 1,
             static_cast<std::uint64_t>(e), msg});
      };
      const int src_shard = shard_of(e);
      const int dst_shard = shard_of(target);
      if (src_shard == dst_shard) {
        core.schedule_at(RealTime::nanos(at), std::move(deliver));
      } else {
        sim_.cross_schedule(src_shard, dst_shard, RealTime::nanos(at),
                            std::move(deliver));
      }
    }
    const Duration delay = Duration::nanos(2 * rng.uniform_int(1, 800));
    core.schedule_after(delay, [this, e] { tick(e); });
  }

  int entities_;
  ShardedSimulator sim_;
  std::vector<std::vector<Entry>> logs_;
  std::vector<Rng> rngs_;
  std::vector<std::uint64_t> ticks_;
  std::vector<std::uint64_t> sent_;
};

void expect_logs_equal(const DiffHarness& a, const DiffHarness& b) {
  ASSERT_EQ(a.logs_.size(), b.logs_.size());
  for (std::size_t e = 0; e < a.logs_.size(); ++e) {
    EXPECT_EQ(a.logs_[e], b.logs_[e]) << "entity " << e;
  }
}

TEST(ShardedSimulator, SingleShardDelegatesToPlainCore) {
  ShardedSimulator sharded({1, kWindow, 1});
  Simulator plain;
  std::vector<int> got_sharded;
  std::vector<int> got_plain;
  for (int i = 0; i < 5; ++i) {
    sharded.shard(0).schedule_at(
        RealTime::nanos(100 * (5 - i)),
        [&got_sharded, i] { got_sharded.push_back(i); });
    plain.schedule_at(RealTime::nanos(100 * (5 - i)),
                      [&got_plain, i] { got_plain.push_back(i); });
  }
  sharded.run_until(RealTime::nanos(600));
  plain.run_until(RealTime::nanos(600));
  EXPECT_EQ(got_sharded, got_plain);
  EXPECT_EQ(sharded.now(), plain.now());
  EXPECT_EQ(sharded.events_executed(), plain.events_executed());
  EXPECT_EQ(sharded.barriers(), 0u);  // bypass: no windows at all
}

TEST(ShardedSimulator, IdleFastPathJumpsTheClock) {
  ShardedSimulator sharded({4, kWindow, 1});
  sharded.run_until(RealTime::seconds(10));
  EXPECT_EQ(sharded.now(), RealTime::seconds(10));
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(sharded.shard(s).now(), RealTime::seconds(10));
  }
  EXPECT_EQ(sharded.barriers(), 0u);
}

TEST(ShardedSimulator, CrossScheduleOutsideWindowIsDirect) {
  ShardedSimulator sharded({2, kWindow, 1});
  std::vector<int> order;
  sharded.cross_schedule(0, 1, RealTime::nanos(200),
                         [&] { order.push_back(2); });
  sharded.shard(1).schedule_at(RealTime::nanos(100),
                               [&] { order.push_back(1); });
  sharded.run_until(RealTime::nanos(300));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(ShardedSimulator, LookaheadViolationThrows) {
  ShardedSimulator sharded({2, kWindow, 1});
  sharded.shard(0).schedule_at(RealTime::nanos(10), [&sharded] {
    // Arrival before the window barrier: the destination shard may have
    // run past it already — must be rejected.
    sharded.cross_schedule(0, 1, RealTime::nanos(500), [] {});
  });
  EXPECT_THROW(sharded.run_until(RealTime::nanos(20'000)), ContractViolation);
}

TEST(ShardedSimulator, CrossShardDeliveryExecutesAtExactTime) {
  ShardedSimulator sharded({2, kWindow, 1});
  std::int64_t delivered_at = -1;
  sharded.shard(0).schedule_at(RealTime::nanos(100), [&sharded, &delivered_at] {
    sharded.cross_schedule(0, 1, RealTime::nanos(25'000),
                           [&sharded, &delivered_at] {
                             delivered_at = sharded.shard(1).now().ns;
                           });
  });
  sharded.run_until(RealTime::nanos(40'000));
  EXPECT_EQ(delivered_at, 25'000);
  EXPECT_EQ(sharded.cross_scheduled(), 1u);
  EXPECT_GE(sharded.barriers(), 1u);
}

TEST(ShardedSimulator, FinalWindowArrivalAtEndTimeStillExecutes) {
  // run_until(t) is inclusive: a cross-shard entry landing exactly at t
  // during the final window must run before run_until returns.
  ShardedSimulator sharded({2, kWindow, 1});
  bool delivered = false;
  sharded.shard(0).schedule_at(RealTime::nanos(100), [&sharded, &delivered] {
    sharded.cross_schedule(0, 1, RealTime::nanos(10'000),
                           [&delivered] { delivered = true; });
  });
  sharded.run_until(RealTime::nanos(10'000));
  EXPECT_TRUE(delivered);
  EXPECT_EQ(sharded.now(), RealTime::nanos(10'000));
}

TEST(ShardedSimulator, DifferentialRandomizedStress) {
  // The satellite's core claim: N-shard == 1-shard on the same seed, for
  // several seeds and shard counts, with real worker threads.
  const RealTime horizon = RealTime::nanos(400'000);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    DiffHarness reference(1, 12, seed);
    reference.sim_.run_until(horizon);
    for (int shards : {2, 3, 4}) {
      DiffHarness sharded(shards, 12, seed);
      sharded.sim_.run_until(horizon);
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " shards=" + std::to_string(shards));
      expect_logs_equal(reference, sharded);
      EXPECT_EQ(reference.sim_.events_executed(),
                sharded.sim_.events_executed());
    }
  }
}

TEST(ShardedSimulator, AdaptiveWindowMatchesFixedOnRandomizedStress) {
  // The adaptive barrier bound must be invisible in the event orders: the
  // same stress workloads, fixed vs adaptive, with real worker threads —
  // identical logs, never more barriers, and (on this dense workload)
  // at least some windows extended past the fixed bound.
  const RealTime horizon = RealTime::nanos(400'000);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    for (int shards : {2, 4}) {
      DiffHarness fixed(shards, 12, seed);
      fixed.sim_.run_until(horizon);
      DiffHarness adaptive(shards, 12, seed, /*threads=*/0,
                           WindowPolicy::kAdaptive);
      adaptive.sim_.run_until(horizon);
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " shards=" + std::to_string(shards));
      expect_logs_equal(fixed, adaptive);
      EXPECT_EQ(fixed.sim_.events_executed(), adaptive.sim_.events_executed());
      EXPECT_LE(adaptive.sim_.barriers(), fixed.sim_.barriers());
      EXPECT_GT(adaptive.sim_.adaptive_extensions(), 0u);
      EXPECT_EQ(fixed.sim_.adaptive_extensions(), 0u);
    }
  }
}

TEST(ShardedSimulator, AdaptiveWindowCrossesIdleGapsInOneBarrier) {
  // Ten bursts separated by 500 idle windows: the fixed policy pays a
  // barrier per window while events remain pending; the adaptive policy
  // jumps each gap in one window.
  const auto build = [](WindowPolicy policy) {
    auto sim = std::make_unique<ShardedSimulator>(
        ShardedConfig{2, kWindow, 1, policy});
    auto delivered = std::make_shared<std::vector<std::int64_t>>();
    for (int k = 0; k < 10; ++k) {
      const std::int64_t at = k * 500 * kWindow.ns + 2;
      sim->shard(0).schedule_at(
          RealTime::nanos(at), [sim = sim.get(), delivered, at] {
            sim->cross_schedule(0, 1, RealTime::nanos(at + kWindow.ns + 1),
                                [sim, delivered] {
                                  delivered->push_back(sim->shard(1).now().ns);
                                });
          });
    }
    return std::pair{std::move(sim), delivered};
  };
  auto [fixed, fixed_log] = build(WindowPolicy::kFixed);
  auto [adaptive, adaptive_log] = build(WindowPolicy::kAdaptive);
  const RealTime horizon = RealTime::nanos(10 * 500 * kWindow.ns);
  fixed->run_until(horizon);
  adaptive->run_until(horizon);
  EXPECT_EQ(*fixed_log, *adaptive_log);
  EXPECT_EQ(fixed_log->size(), 10u);
  EXPECT_GT(adaptive->adaptive_extensions(), 0u);
  // ~500 fixed windows vs ~2-3 barriers per burst adaptive.
  EXPECT_GE(fixed->barriers(), 10 * adaptive->barriers());
}

TEST(ShardedSimulator, AdaptiveLookaheadViolationThrows) {
  // A send legal under the fixed bound but behind the adaptive barrier:
  // shard 1 has its own work, so the adaptive policy grants it a window
  // reaching t_min(shard 0) + lookahead, and shard 0's entry lands one
  // nanosecond behind that bound. The contract tracks the *realized*
  // per-destination window end, so the violation must be caught, not
  // silently reordered. (Without local work shard 1 would skip the
  // window, keep its clock, and the late entry would deliver safely —
  // the contract only rejects what could actually misorder.)
  const auto drive = [](ShardedSimulator& sharded) {
    sharded.shard(1).schedule_at(RealTime::nanos(50), [] {});
    sharded.shard(1).schedule_at(RealTime::nanos(200), [] {});
    sharded.shard(0).schedule_at(RealTime::nanos(100), [&sharded] {
      sharded.cross_schedule(0, 1, RealTime::nanos(100 + kWindow.ns - 1),
                             [] {});
    });
  };
  ShardedSimulator fixed({2, kWindow, 1});
  drive(fixed);
  EXPECT_NO_THROW(fixed.run_until(RealTime::nanos(20'000)));

  ShardedSimulator adaptive({2, kWindow, 1, WindowPolicy::kAdaptive});
  drive(adaptive);
  EXPECT_THROW(adaptive.run_until(RealTime::nanos(20'000)),
               ContractViolation);
}

TEST(ShardedSimulator, BarrierCutsArePrefixesOfTheSequentialRun) {
  // "Identical event orderings at every barrier": at each barrier, every
  // entity's sharded log must be an exact prefix of the sequential
  // reference log, and the first un-run reference entry must lie at or
  // beyond the barrier time.
  const RealTime horizon = RealTime::nanos(300'000);
  const std::uint64_t seed = 42;
  DiffHarness reference(1, 10, seed);
  reference.sim_.run_until(horizon);

  DiffHarness sharded(4, 10, seed);
  std::uint64_t checked_barriers = 0;
  sharded.sim_.set_barrier_hook([&](RealTime barrier) {
    ++checked_barriers;
    for (std::size_t e = 0; e < sharded.logs_.size(); ++e) {
      const auto& cur = sharded.logs_[e];
      const auto& ref = reference.logs_[e];
      ASSERT_LE(cur.size(), ref.size()) << "entity " << e;
      EXPECT_TRUE(std::equal(cur.begin(), cur.end(), ref.begin()))
          << "entity " << e << " diverged at barrier t=" << barrier.ns;
      if (cur.size() < ref.size()) {
        EXPECT_GE(ref[cur.size()].t, barrier.ns) << "entity " << e;
      }
    }
  });
  sharded.sim_.run_until(horizon);
  EXPECT_GT(checked_barriers, 10u);
  expect_logs_equal(reference, sharded);
}

TEST(ShardedSimulator, MergeOrderStableUnderPermutedDrainOrder) {
  // The merge must be a pure function of lane content: drain the lanes
  // in adversarial orders (a stand-in for arbitrary worker completion
  // order) and with different thread counts — identical logs required.
  const RealTime horizon = RealTime::nanos(300'000);
  const std::uint64_t seed = 7;
  const int shards = 4;
  DiffHarness baseline(shards, 12, seed, /*threads=*/1);
  baseline.sim_.run_until(horizon);

  std::vector<int> reversed(static_cast<std::size_t>(shards * shards));
  std::iota(reversed.begin(), reversed.end(), 0);
  std::reverse(reversed.begin(), reversed.end());
  DiffHarness permuted(shards, 12, seed, /*threads=*/1);
  permuted.sim_.set_lane_drain_order(reversed);
  permuted.sim_.run_until(horizon);
  expect_logs_equal(baseline, permuted);

  // An interleaved permutation plus real threads (worker completion
  // order is genuinely nondeterministic here).
  std::vector<int> interleaved;
  for (int i = 0; i < shards * shards; i += 2) interleaved.push_back(i);
  for (int i = 1; i < shards * shards; i += 2) interleaved.push_back(i);
  DiffHarness threaded(shards, 12, seed, /*threads=*/4);
  threaded.sim_.set_lane_drain_order(interleaved);
  threaded.sim_.run_until(horizon);
  expect_logs_equal(baseline, threaded);
}

TEST(ShardedSimulator, RepeatedRunsWithThreadsAreIdentical) {
  const RealTime horizon = RealTime::nanos(200'000);
  DiffHarness first(3, 9, 11, /*threads=*/3);
  first.sim_.run_until(horizon);
  for (int repeat = 0; repeat < 3; ++repeat) {
    DiffHarness again(3, 9, 11, /*threads=*/3);
    again.sim_.run_until(horizon);
    expect_logs_equal(first, again);
  }
}

TEST(ShardedSimulator, AggregateCountersSumOverCores) {
  DiffHarness h(4, 8, 3);
  h.sim_.run_until(RealTime::nanos(100'000));
  std::uint64_t executed = 0;
  std::size_t pending = 0;
  for (int s = 0; s < 4; ++s) {
    executed += h.sim_.shard(s).events_executed();
    pending += h.sim_.shard(s).pending();
  }
  EXPECT_EQ(h.sim_.events_executed(), executed);
  EXPECT_EQ(h.sim_.pending(), pending);  // lanes are empty between runs
  EXPECT_GT(h.sim_.cross_scheduled(), 0u);
}

TEST(ShardedSimulator, RejectsInvalidConfig) {
  EXPECT_THROW(ShardedSimulator({0, kWindow, 1}), ContractViolation);
  EXPECT_THROW(ShardedSimulator({2, Duration::nanos(0), 1}),
               ContractViolation);
  ShardedSimulator ok({2, kWindow, 1});
  EXPECT_THROW(ok.set_window(Duration::nanos(-5)), ContractViolation);
  EXPECT_THROW(static_cast<void>(ok.shard(2)), ContractViolation);
  EXPECT_THROW(ok.set_lane_drain_order({0, 1, 2}), ContractViolation);
}

}  // namespace
}  // namespace stopwatch::sim
