// Arena recycling under churn — the lifetime-bug habitat of the slab event
// core. A schedule/cancel (or schedule/run) cycle must recycle the same
// handful of slots forever: pending() stays flat because it counts live
// slots exactly, and arena_slots() stays flat because cancel releases a
// slot immediately (wheel residents unlink in O(1); heap residents are
// generation-checked so their stale entries cannot resurrect a recycled
// slot). CI runs this suite under ASan+UBSan specifically to shake out
// use-after-recycle bugs.
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace stopwatch::sim {
namespace {

constexpr std::uint64_t kCycles = 1'000'000;

TEST(EventCoreChurn, ScheduleCancelMillionCycleStaysFlat) {
  Simulator sim;
  // Warm the arena with a few live events so recycling happens amid
  // neighbours, not in an empty simulator.
  for (int i = 0; i < 8; ++i) {
    sim.schedule_after(Duration::seconds(5), [] {});
  }
  const std::size_t base_pending = sim.pending();
  // The first cycle may grow the arena by the one slot the churn then
  // recycles; everything after must reuse it.
  {
    const EventId id = sim.schedule_after(Duration::millis(1), [] {});
    ASSERT_TRUE(sim.cancel(id));
  }
  const std::size_t base_slots = sim.arena_slots();
  std::uint64_t rng = 0x243f6a8885a308d3ULL;
  for (std::uint64_t i = 0; i < kCycles; ++i) {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    // Mixed horizons: due (0), wheel levels, and far heap all recycle.
    const auto delay = static_cast<std::int64_t>(rng % 400'000'000);
    const EventId id = sim.schedule_after(Duration{delay}, [] {});
    ASSERT_TRUE(sim.cancel(id));
    ASSERT_FALSE(sim.cancel(id));  // double cancel stays a no-op
    ASSERT_EQ(sim.pending(), base_pending);
  }
  // One slot serves the whole million-cycle churn.
  EXPECT_EQ(sim.arena_slots(), base_slots);
  sim.run();
  EXPECT_EQ(sim.events_executed(), 8u);
}

TEST(EventCoreChurn, ScheduleRunChurnReusesSlots) {
  Simulator sim;
  std::uint64_t fired = 0;
  // 1000 rounds of 64 events: the arena high-water mark is one round.
  for (int round = 0; round < 1000; ++round) {
    for (int i = 0; i < 64; ++i) {
      sim.schedule_after(Duration::nanos(50 + i * 977), [&fired] { ++fired; });
    }
    sim.run();
  }
  EXPECT_EQ(fired, 64'000u);
  EXPECT_LE(sim.arena_slots(), 64u);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(EventCoreChurn, RescheduleChurnHoldsOneSlot) {
  Simulator sim;
  std::uint64_t ticks = 0;
  EventId id{};
  id = sim.schedule_after(Duration::nanos(100), [&] {
    if (++ticks < 200'000) sim.reschedule_after(id, Duration::nanos(100));
  });
  sim.run();
  EXPECT_EQ(ticks, 200'000u);
  EXPECT_EQ(sim.arena_slots(), 1u);
}

TEST(EventCoreChurn, CancelHeavyHeapsCompact) {
  // Cancel far-heap residents en masse: stale heap entries must be
  // compacted away rather than accumulating (the heaps' lazy deletion has
  // an amortized bound), and the run must still fire survivors in order.
  Simulator sim;
  std::vector<EventId> ids;
  std::uint64_t fired = 0;
  for (int round = 0; round < 200; ++round) {
    ids.clear();
    for (int i = 0; i < 500; ++i) {
      ids.push_back(sim.schedule_after(
          Duration::millis(300 + (i % 7)), [&fired] { ++fired; }));
    }
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (i % 10 != 0) ASSERT_TRUE(sim.cancel(ids[i]));
    }
    sim.run();
  }
  EXPECT_EQ(fired, 200u * 50u);
  EXPECT_LE(sim.arena_slots(), 500u);
}

}  // namespace
}  // namespace stopwatch::sim
