// Golden-seed byte identity across the event-core refactor.
//
// The committed JSONs under tests/sim/golden/ were produced by the seed
// (PR-4) event core — priority queue + hash maps + std::function — at seed
// 7 in smoke mode. The slab/timer-wheel core must reproduce them byte for
// byte: every equal-time ordering guarantee, RNG draw order, and timestamp
// the scenarios depend on is pinned here, end to end through the network,
// hypervisor, topology, workload, and leakage layers.
//
// If a FUTURE behaviour-changing PR (new model, retuned constants) breaks
// these on purpose, regenerate the files by running this test with
// STOPWATCH_UPDATE_GOLDEN=1 in the environment — and say so in the PR.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "experiment/registry.hpp"
#include "experiment/result.hpp"

namespace stopwatch::experiment {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden file: " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

const std::vector<std::string> kGoldenScenarios = {
    "fig2_protocol_trace",
    "placement_e2e",
    "leakage_capacity",
    "leakage_workloads",
};

TEST(GoldenIdentity, ScenariosMatchPreRefactorBytes) {
  const auto& registry = ScenarioRegistry::instance();
  for (const std::string& name : kGoldenScenarios) {
    ASSERT_NE(registry.find(name), nullptr) << name;
    const Result result = registry.run(name, /*seed=*/7, /*smoke=*/true);
    const std::string got = result.to_json() + "\n";
    const std::string path =
        std::string(STOPWATCH_GOLDEN_DIR) + "/" + name + ".json";
    if (std::getenv("STOPWATCH_UPDATE_GOLDEN") != nullptr) {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out << got;
      continue;
    }
    const std::string want = read_file(path);
    EXPECT_EQ(got, want) << name
                         << ": output diverged from the pre-refactor golden";
  }
}

}  // namespace
}  // namespace stopwatch::experiment
