#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/contracts.hpp"

namespace stopwatch::sim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(RealTime::millis(30), [&] { order.push_back(3); });
  sim.schedule_at(RealTime::millis(10), [&] { order.push_back(1); });
  sim.schedule_at(RealTime::millis(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), RealTime::millis(30));
}

TEST(Simulator, EqualTimestampsFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(RealTime::millis(5), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  RealTime fired{};
  sim.schedule_at(RealTime::millis(10), [&] {
    sim.schedule_after(Duration::millis(5), [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, RealTime::millis(15));
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator sim;
  bool ran = false;
  sim.schedule_at(RealTime::millis(10), [&] {
    sim.schedule_after(Duration::millis(-5), [&] { ran = true; });
  });
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.now(), RealTime::millis(10));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const auto id = sim.schedule_at(RealTime::millis(10), [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // second cancel is a no-op
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, RunUntilAdvancesClockExactly) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(RealTime::millis(10), [&] { ++count; });
  sim.schedule_at(RealTime::millis(20), [&] { ++count; });
  sim.schedule_at(RealTime::millis(30), [&] { ++count; });
  sim.run_until(RealTime::millis(20));
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.now(), RealTime::millis(20));
  sim.run();
  EXPECT_EQ(count, 3);
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule_at(RealTime::millis(10), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(RealTime::millis(5), [] {}), ContractViolation);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) sim.schedule_after(Duration::micros(1), chain);
  };
  sim.schedule_at(RealTime::nanos(0), chain);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.events_executed(), 100u);
}

TEST(Simulator, RunWithEventBudgetStopsEarly) {
  Simulator sim;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(RealTime::millis(i), [&] { ++count; });
  }
  sim.run(4);
  EXPECT_EQ(count, 4);
}

TEST(Simulator, PendingCountExcludesCancelled) {
  Simulator sim;
  const auto a = sim.schedule_at(RealTime::millis(1), [] {});
  sim.schedule_at(RealTime::millis(2), [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, BatchOccupiesOneQueueEntryButCountsAllCallbacks) {
  Simulator sim;
  std::vector<int> order;
  std::vector<Simulator::Callback> batch;
  for (int i = 0; i < 5; ++i) {
    batch.push_back([&order, i] { order.push_back(i); });
  }
  sim.schedule_batch(RealTime::millis(10), std::move(batch));
  EXPECT_EQ(sim.pending(), 1u);  // the whole shard is one heap entry
  sim.schedule_at(RealTime::millis(5), [&order] { order.push_back(-1); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{-1, 0, 1, 2, 3, 4}));
  EXPECT_EQ(sim.events_executed(), 6u);  // 5 batched + 1 plain
  EXPECT_EQ(sim.batched_callbacks(), 5u);
}

TEST(Simulator, BatchOrdersAgainstEqualTimestampEventsBySchedule) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(RealTime::millis(10), [&order] { order.push_back(0); });
  std::vector<Simulator::Callback> batch;
  batch.push_back([&order] { order.push_back(1); });
  batch.push_back([&order] { order.push_back(2); });
  sim.schedule_batch(RealTime::millis(10), std::move(batch));
  sim.schedule_at(RealTime::millis(10), [&order] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Simulator, CancelDropsWholeBatch) {
  Simulator sim;
  int fired = 0;
  std::vector<Simulator::Callback> batch;
  batch.push_back([&fired] { ++fired; });
  batch.push_back([&fired] { ++fired; });
  const auto id = sim.schedule_batch(RealTime::millis(1), std::move(batch));
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, EmptyOrNullBatchRejected) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_batch(RealTime::millis(1), {}), ContractViolation);
  std::vector<Simulator::Callback> with_null;
  with_null.push_back([] {});
  with_null.push_back(nullptr);
  EXPECT_THROW(sim.schedule_batch(RealTime::millis(1), std::move(with_null)),
               ContractViolation);
}

// --- PR-5 event core: generation checks, wheel/heap boundaries, exact
// pending(), and in-place rescheduling. ---

TEST(Simulator, PendingExactAfterCancelThenStep) {
  // Regression for the seed implementation's `heap size - cancelled size`
  // arithmetic, which undercounted once a cancelled entry had been lazily
  // popped. pending() must track live events exactly through any
  // cancel/step interleaving.
  Simulator sim;
  const auto a = sim.schedule_at(RealTime::millis(1), [] {});
  sim.schedule_at(RealTime::millis(2), [] {});
  sim.schedule_at(RealTime::millis(3), [] {});
  EXPECT_EQ(sim.pending(), 3u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 2u);
  EXPECT_TRUE(sim.step());  // skips the cancelled entry, runs the 2 ms event
  EXPECT_EQ(sim.now(), RealTime::millis(2));
  EXPECT_EQ(sim.pending(), 1u);
  sim.run_until(RealTime::millis(10));
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, StaleCancelIsGenerationChecked) {
  // A recycled slot must not honour handles from its previous life.
  Simulator sim;
  const auto a = sim.schedule_at(RealTime::millis(1), [] {});
  EXPECT_TRUE(sim.cancel(a));
  bool ran = false;
  const auto b = sim.schedule_at(RealTime::millis(1), [&] { ran = true; });
  // The arena recycles the freed slot with a bumped generation...
  EXPECT_EQ(a.slot, b.slot);
  EXPECT_NE(a.gen, b.gen);
  // ...so the stale handle misses instead of killing the new event.
  EXPECT_FALSE(sim.cancel(a));
  EXPECT_TRUE(sim.is_scheduled(b));
  EXPECT_FALSE(sim.is_scheduled(a));
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_FALSE(sim.cancel(b));  // already fired
}

TEST(Simulator, EqualTimeFifoAcrossFarHorizonBoundary) {
  // First event sits beyond the timer wheel's ~275 ms horizon (far heap);
  // the second is scheduled at the same instant much later, from the near
  // side. Schedule order must still decide.
  Simulator sim;
  std::vector<int> order;
  const RealTime t = RealTime::millis(400);
  sim.schedule_at(t, [&] { order.push_back(1); });  // far heap
  sim.schedule_at(RealTime::millis(399), [&] {
    sim.schedule_at(t, [&] { order.push_back(2); });  // near side
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now(), t);
}

TEST(Simulator, EqualTimeFifoAcrossWheelAndDueBoundary) {
  // First event waits in the wheel; run_until stops the clock just short of
  // it, then a same-timestamp event arrives (which files straight into the
  // due heap). FIFO among equal timestamps must hold across the boundary.
  Simulator sim;
  std::vector<int> order;
  const RealTime t{2'000'000};
  sim.schedule_at(t, [&] { order.push_back(1); });
  sim.run_until(RealTime{t.ns - 1});
  sim.schedule_at(t, [&] { order.push_back(2); });
  sim.schedule_at(t, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, ManyTimescalesRunInOrder) {
  // One event per timescale from nanoseconds (due/level 0) to seconds (far
  // heap), interleaved at schedule time; execution must sort them.
  Simulator sim;
  std::vector<std::int64_t> fired;
  const std::int64_t delays[] = {
      3'000'000'000,  // far heap, seconds out
      500,            // due this tick
      40'000'000,     // wheel level 2
      1'000,          // level 0
      900'000'000,    // far heap
      65'000,         // level 1
      270'000'000,    // just past the horizon
      4'200'000,      // level 2
      77,             // due
  };
  for (const std::int64_t d : delays) {
    sim.schedule_after(Duration{d}, [&fired, &sim] {
      fired.push_back(sim.now().ns);
    });
  }
  sim.run();
  ASSERT_EQ(fired.size(), std::size(delays));
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
  EXPECT_EQ(sim.now(), RealTime{3'000'000'000});
}

TEST(Simulator, RescheduleAfterFromInsideCallbackKeepsIdAndSlot) {
  Simulator sim;
  int fired = 0;
  std::optional<EventId> id;
  id = sim.schedule_after(Duration::micros(10), [&] {
    if (++fired < 3) {
      const EventId again = sim.reschedule_after(*id, Duration::micros(10));
      EXPECT_EQ(again, *id);  // the handle survives the re-arm
    }
  });
  const std::size_t slots_before = sim.arena_slots();
  sim.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.now(), RealTime{30'000});
  EXPECT_EQ(sim.arena_slots(), slots_before);  // same slot all along
}

TEST(Simulator, RescheduleAfterRetimesPendingEvent) {
  Simulator sim;
  RealTime fired{};
  const auto id =
      sim.schedule_at(RealTime::millis(5), [&] { fired = sim.now(); });
  sim.schedule_at(RealTime::millis(1), [&] {
    sim.reschedule_after(id, Duration::millis(9));  // 1 ms + 9 ms = 10 ms
  });
  sim.run();
  EXPECT_EQ(fired, RealTime::millis(10));
}

TEST(Simulator, CancelDuringOwnCallbackRevokesRearm) {
  Simulator sim;
  int fired = 0;
  std::optional<EventId> id;
  id = sim.schedule_after(Duration::micros(1), [&] {
    ++fired;
    sim.reschedule_after(*id, Duration::micros(1));
    EXPECT_TRUE(sim.cancel(*id));   // revokes the re-arm...
    EXPECT_FALSE(sim.cancel(*id));  // ...which can only be done once
  });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, TaskHoldsMoveOnlyAndOversizedCallables) {
  Simulator sim;
  // Move-only capture (unique_ptr) stays inline.
  auto box = std::make_unique<int>(7);
  int got = 0;
  sim.schedule_after(Duration::micros(1),
                     [&got, b = std::move(box)] { got = *b; });
  // A capture larger than Task's 48-byte inline buffer falls back to the
  // heap but must behave identically.
  std::array<std::int64_t, 16> big{};
  big.fill(41);
  sim.schedule_after(Duration::micros(2), [&got, big] {
    got += static_cast<int>(big[15]);
  });
  Task small = [] {};
  Task large = [big] { (void)big[0]; };
  EXPECT_TRUE(small.is_inline());
  EXPECT_FALSE(large.is_inline());
  sim.run();
  EXPECT_EQ(got, 48);
}

}  // namespace
}  // namespace stopwatch::sim
