#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/contracts.hpp"

namespace stopwatch::sim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(RealTime::millis(30), [&] { order.push_back(3); });
  sim.schedule_at(RealTime::millis(10), [&] { order.push_back(1); });
  sim.schedule_at(RealTime::millis(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), RealTime::millis(30));
}

TEST(Simulator, EqualTimestampsFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(RealTime::millis(5), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  RealTime fired{};
  sim.schedule_at(RealTime::millis(10), [&] {
    sim.schedule_after(Duration::millis(5), [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, RealTime::millis(15));
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator sim;
  bool ran = false;
  sim.schedule_at(RealTime::millis(10), [&] {
    sim.schedule_after(Duration::millis(-5), [&] { ran = true; });
  });
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.now(), RealTime::millis(10));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const auto id = sim.schedule_at(RealTime::millis(10), [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // second cancel is a no-op
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, RunUntilAdvancesClockExactly) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(RealTime::millis(10), [&] { ++count; });
  sim.schedule_at(RealTime::millis(20), [&] { ++count; });
  sim.schedule_at(RealTime::millis(30), [&] { ++count; });
  sim.run_until(RealTime::millis(20));
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.now(), RealTime::millis(20));
  sim.run();
  EXPECT_EQ(count, 3);
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule_at(RealTime::millis(10), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(RealTime::millis(5), [] {}), ContractViolation);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) sim.schedule_after(Duration::micros(1), chain);
  };
  sim.schedule_at(RealTime::nanos(0), chain);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.events_executed(), 100u);
}

TEST(Simulator, RunWithEventBudgetStopsEarly) {
  Simulator sim;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(RealTime::millis(i), [&] { ++count; });
  }
  sim.run(4);
  EXPECT_EQ(count, 4);
}

TEST(Simulator, PendingCountExcludesCancelled) {
  Simulator sim;
  const auto a = sim.schedule_at(RealTime::millis(1), [] {});
  sim.schedule_at(RealTime::millis(2), [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, BatchOccupiesOneQueueEntryButCountsAllCallbacks) {
  Simulator sim;
  std::vector<int> order;
  std::vector<Simulator::Callback> batch;
  for (int i = 0; i < 5; ++i) {
    batch.push_back([&order, i] { order.push_back(i); });
  }
  sim.schedule_batch(RealTime::millis(10), std::move(batch));
  EXPECT_EQ(sim.pending(), 1u);  // the whole shard is one heap entry
  sim.schedule_at(RealTime::millis(5), [&order] { order.push_back(-1); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{-1, 0, 1, 2, 3, 4}));
  EXPECT_EQ(sim.events_executed(), 6u);  // 5 batched + 1 plain
  EXPECT_EQ(sim.batched_callbacks(), 5u);
}

TEST(Simulator, BatchOrdersAgainstEqualTimestampEventsBySchedule) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(RealTime::millis(10), [&order] { order.push_back(0); });
  std::vector<Simulator::Callback> batch;
  batch.push_back([&order] { order.push_back(1); });
  batch.push_back([&order] { order.push_back(2); });
  sim.schedule_batch(RealTime::millis(10), std::move(batch));
  sim.schedule_at(RealTime::millis(10), [&order] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Simulator, CancelDropsWholeBatch) {
  Simulator sim;
  int fired = 0;
  std::vector<Simulator::Callback> batch;
  batch.push_back([&fired] { ++fired; });
  batch.push_back([&fired] { ++fired; });
  const auto id = sim.schedule_batch(RealTime::millis(1), std::move(batch));
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, EmptyOrNullBatchRejected) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_batch(RealTime::millis(1), {}), ContractViolation);
  std::vector<Simulator::Callback> with_null;
  with_null.push_back([] {});
  with_null.push_back(nullptr);
  EXPECT_THROW(sim.schedule_batch(RealTime::millis(1), std::move(with_null)),
               ContractViolation);
}

}  // namespace
}  // namespace stopwatch::sim
