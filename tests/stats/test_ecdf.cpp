#include "stats/ecdf.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "stats/summary.hpp"

namespace stopwatch::stats {
namespace {

TEST(Ecdf, BasicCdf) {
  const Ecdf e({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(e.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(e.cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(e.cdf(2.5), 0.5);
  EXPECT_DOUBLE_EQ(e.cdf(10.0), 1.0);
}

TEST(Ecdf, QuantilesNearestRank) {
  const Ecdf e({10.0, 20.0, 30.0, 40.0, 50.0});
  EXPECT_DOUBLE_EQ(e.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.5), 30.0);
  EXPECT_DOUBLE_EQ(e.quantile(1.0), 50.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.2), 10.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.21), 20.0);
}

TEST(Ecdf, MomentsAndExtremes) {
  const Ecdf e({2.0, 4.0, 6.0});
  EXPECT_DOUBLE_EQ(e.mean(), 4.0);
  EXPECT_DOUBLE_EQ(e.min(), 2.0);
  EXPECT_DOUBLE_EQ(e.max(), 6.0);
  EXPECT_NEAR(e.stddev(), 2.0, 1e-12);
}

TEST(Ecdf, EmptyInputRejected) {
  EXPECT_THROW(Ecdf({}), ContractViolation);
}

TEST(Ecdf, KsTwoSampleIdenticalIsZero) {
  const Ecdf a({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(ks_two_sample(a, a), 0.0);
}

TEST(Ecdf, KsTwoSampleDisjointIsOne) {
  const Ecdf a({1.0, 2.0, 3.0});
  const Ecdf b({10.0, 20.0, 30.0});
  EXPECT_DOUBLE_EQ(ks_two_sample(a, b), 1.0);
}

TEST(Ecdf, KsTwoSampleDetectsShift) {
  Rng rng(5);
  std::vector<double> a, b;
  for (int i = 0; i < 5000; ++i) {
    a.push_back(rng.exponential(1.0));
    b.push_back(rng.exponential(0.5));
  }
  const double d = ks_two_sample(Ecdf(std::move(a)), Ecdf(std::move(b)));
  EXPECT_GT(d, 0.15);  // true KS distance for Exp(1) vs Exp(1/2) ~ 0.25
  EXPECT_LT(d, 0.35);
}

TEST(Summary, PercentilesOrdered) {
  Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 10000; ++i) xs.push_back(rng.uniform(0.0, 100.0));
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 10000u);
  EXPECT_LE(s.min, s.p50);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, s.max);
  EXPECT_NEAR(s.mean, 50.0, 1.5);
}

}  // namespace
}  // namespace stopwatch::stats
