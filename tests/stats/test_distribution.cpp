#include "stats/distribution.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

namespace stopwatch::stats {
namespace {

TEST(Distribution, ExponentialCdfAndMean) {
  const Exponential e(2.0);
  EXPECT_DOUBLE_EQ(e.cdf(0.0), 0.0);
  EXPECT_NEAR(e.cdf(std::log(2.0) / 2.0), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(e.mean(), 0.5);
}

TEST(Distribution, UniformCdf) {
  const Uniform u(2.0, 6.0);
  EXPECT_DOUBLE_EQ(u.cdf(1.0), 0.0);
  EXPECT_DOUBLE_EQ(u.cdf(4.0), 0.5);
  EXPECT_DOUBLE_EQ(u.cdf(7.0), 1.0);
  EXPECT_DOUBLE_EQ(u.mean(), 4.0);
}

TEST(Distribution, ShiftedMovesCdfAndMean) {
  auto base = std::make_shared<Exponential>(1.0);
  const Shifted s(base, 5.0);
  EXPECT_DOUBLE_EQ(s.cdf(5.0), 0.0);
  EXPECT_NEAR(s.cdf(5.0 + std::log(2.0)), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(s.mean(), 6.0);
}

TEST(Distribution, SumOfIndependentHasCorrectMean) {
  auto x = std::make_shared<Exponential>(1.0);
  auto n = std::make_shared<Uniform>(0.0, 4.0);
  const SumOfIndependent s(x, n);
  EXPECT_NEAR(s.mean(), 1.0 + 2.0, 1e-9);
}

TEST(Distribution, SumOfIndependentCdfIsSmoothedExponential) {
  auto x = std::make_shared<Exponential>(1.0);
  auto n = std::make_shared<Uniform>(0.0, 2.0);
  const SumOfIndependent s(x, n, 2048);
  // Closed form: P(X+N <= t) for t in (0, 2]:
  //  (1/2)∫_0^t (1 - e^{-(t-v)}) dv = (t - 1 + e^{-t}) / 2.
  for (double t : {0.5, 1.0, 1.5, 2.0}) {
    const double expected = (t - 1.0 + std::exp(-t)) / 2.0;
    EXPECT_NEAR(s.cdf(t), expected, 2e-3) << "t=" << t;
  }
}

TEST(Distribution, SumOfIndependentSamplingMatchesCdf) {
  auto x = std::make_shared<Exponential>(1.0);
  auto n = std::make_shared<Uniform>(0.0, 2.0);
  const SumOfIndependent s(x, n);
  Rng rng(99);
  int below = 0;
  const int trials = 50000;
  const double t = 1.7;
  for (int i = 0; i < trials; ++i) {
    if (s.sample(rng) <= t) ++below;
  }
  EXPECT_NEAR(static_cast<double>(below) / trials, s.cdf(t), 0.01);
}

TEST(Distribution, CdfDistributionInversionSampling) {
  // Wrap an exponential CDF and verify sampled mean.
  auto cdf = [](double v) { return v <= 0 ? 0.0 : 1.0 - std::exp(-v); };
  const CdfDistribution d(cdf, 0.0, 60.0);
  Rng rng(7);
  double acc = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) acc += d.sample(rng);
  EXPECT_NEAR(acc / n, 1.0, 0.03);
  EXPECT_NEAR(d.mean(), 1.0, 1e-3);
}

TEST(Distribution, MeanFromCdf) {
  auto cdf = [](double v) { return v <= 0 ? 0.0 : 1.0 - std::exp(-2.0 * v); };
  EXPECT_NEAR(mean_from_cdf(cdf, 40.0), 0.5, 1e-4);
}

TEST(Distribution, InvertCdfFindsQuantile) {
  auto cdf = [](double v) { return v <= 0 ? 0.0 : 1.0 - std::exp(-v); };
  EXPECT_NEAR(invert_cdf(cdf, 0.5, 0.0, 100.0), std::log(2.0), 1e-9);
  EXPECT_NEAR(invert_cdf(cdf, 0.99, 0.0, 100.0), -std::log(0.01), 1e-7);
}

}  // namespace
}  // namespace stopwatch::stats
