// The two chi-squared cell layouts and their distinct sensitivities — the
// methodology choice documented in EXPERIMENTS.md (E1).
#include <gtest/gtest.h>

#include <memory>

#include "stats/detection.hpp"
#include "stats/order_statistics.hpp"

namespace stopwatch::stats {
namespace {

TEST(DetectionBinning, EqualWidthIsTailSensitiveForExponentials) {
  auto base = std::make_shared<Exponential>(1.0);
  auto victim = std::make_shared<Exponential>(0.5);
  const ChiSquaredDetector equal_width(
      [&](double x) { return base->cdf(x); },
      [&](double x) { return victim->cdf(x); }, 0.0, 30.0, 60,
      Binning::kEqualWidth);
  const ChiSquaredDetector equiprobable(
      [&](double x) { return base->cdf(x); },
      [&](double x) { return victim->cdf(x); }, 0.0, 30.0, 60,
      Binning::kEquiprobable);
  // The victim's heavy tail is where the evidence is; equal-width cells
  // keep it, equiprobable cells dilute it.
  EXPECT_GT(equal_width.noncentrality(), 2.0 * equiprobable.noncentrality());
}

TEST(DetectionBinning, MedianSuppressesTailEvidenceMoreThanBulk) {
  // The ratio (observations with StopWatch / without) is larger under the
  // tail-sensitive layout: the median's (F2+F3-2F2F3) factor vanishes in
  // the tails (Theorem 3), exactly where equal-width binning looks.
  auto base = std::make_shared<Exponential>(1.0);
  auto victim = std::make_shared<Exponential>(0.5);
  auto median_null = [&](double x) {
    const double f = base->cdf(x);
    return median_of_three_cdf(f, f, f);
  };
  auto median_alt = [&](double x) {
    return median_of_three_cdf(victim->cdf(x), base->cdf(x), base->cdf(x));
  };

  const auto ratio_for = [&](Binning binning) {
    const ChiSquaredDetector raw([&](double x) { return base->cdf(x); },
                                 [&](double x) { return victim->cdf(x); },
                                 0.0, 30.0, 60, binning);
    const ChiSquaredDetector med(median_null, median_alt, 0.0, 30.0, 60,
                                 binning);
    return static_cast<double>(med.observations_needed(0.95)) /
           static_cast<double>(raw.observations_needed(0.95));
  };
  EXPECT_GT(ratio_for(Binning::kEqualWidth),
            2.0 * ratio_for(Binning::kEquiprobable));
}

TEST(DetectionBinning, MoreBinsNeverHideAStrongSignal) {
  auto base = std::make_shared<Exponential>(1.0);
  auto victim = std::make_shared<Exponential>(0.25);
  for (int bins : {10, 20, 40, 80}) {
    const ChiSquaredDetector det([&](double x) { return base->cdf(x); },
                                 [&](double x) { return victim->cdf(x); },
                                 0.0, 30.0, bins, Binning::kEqualWidth);
    EXPECT_LE(det.observations_needed(0.95), 10) << bins << " bins";
  }
}

TEST(DetectionBinning, FromSamplesSupportsBothLayouts) {
  Rng rng(33);
  std::vector<double> a, b;
  for (int i = 0; i < 30000; ++i) {
    a.push_back(rng.exponential(1.0));
    b.push_back(rng.exponential(0.4));
  }
  const Ecdf ea(std::move(a)), eb(std::move(b));
  const auto ew =
      ChiSquaredDetector::from_samples(ea, eb, 40, Binning::kEqualWidth);
  const auto ep =
      ChiSquaredDetector::from_samples(ea, eb, 40, Binning::kEquiprobable);
  EXPECT_LT(ew.observations_needed(0.99), 100);
  EXPECT_LT(ep.observations_needed(0.99), 100);
}

}  // namespace
}  // namespace stopwatch::stats
