#include "stats/detection.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "stats/order_statistics.hpp"

namespace stopwatch::stats {
namespace {

/// Reproduces the paper's Fig. 1 setting: baseline Exp(1), victim Exp(λ').
struct Fig1Setting {
  std::shared_ptr<Exponential> base = std::make_shared<Exponential>(1.0);
  std::shared_ptr<Exponential> victim;
  explicit Fig1Setting(double lambda_victim)
      : victim(std::make_shared<Exponential>(lambda_victim)) {}

  [[nodiscard]] ChiSquaredDetector without_stopwatch() const {
    return ChiSquaredDetector([b = base](double x) { return b->cdf(x); },
                              [v = victim](double x) { return v->cdf(x); },
                              0.0, 30.0);
  }
  [[nodiscard]] ChiSquaredDetector with_stopwatch() const {
    auto b = base;
    auto v = victim;
    auto null_cdf = [b](double x) {
      return median_of_three_cdf(b->cdf(x), b->cdf(x), b->cdf(x));
    };
    auto alt_cdf = [b, v](double x) {
      return median_of_three_cdf(v->cdf(x), b->cdf(x), b->cdf(x));
    };
    return ChiSquaredDetector(null_cdf, alt_cdf, 0.0, 30.0);
  }
};

TEST(Detection, IdenticalDistributionsAreUndetectable) {
  auto e = std::make_shared<Exponential>(1.0);
  const ChiSquaredDetector d([e](double x) { return e->cdf(x); },
                             [e](double x) { return e->cdf(x); }, 0.0, 30.0);
  EXPECT_NEAR(d.noncentrality(), 0.0, 1e-12);
  EXPECT_GT(d.observations_needed(0.95), 1000000000L);
}

TEST(Detection, ObservationsGrowWithConfidence) {
  const Fig1Setting s(0.5);
  const auto det = s.with_stopwatch();
  long prev = 0;
  for (double c : paper_confidence_grid()) {
    const long n = det.observations_needed(c);
    EXPECT_GE(n, prev);
    prev = n;
  }
}

TEST(Detection, StopWatchRequiresOrdersOfMagnitudeMoreObservations) {
  // The paper's headline claim for Fig. 1(b): with λ' = 1/2 the attacker
  // needs ~2 orders of magnitude more observations under StopWatch.
  const Fig1Setting s(0.5);
  const long without = s.without_stopwatch().observations_needed(0.99);
  const long with = s.with_stopwatch().observations_needed(0.99);
  EXPECT_LE(without, 10);  // paper: "a single observation" (order of 1)
  EXPECT_GE(with, 20 * without);
  // At the low end of the confidence grid the attacker without StopWatch
  // needs only a couple of observations.
  EXPECT_LE(s.without_stopwatch().observations_needed(0.70), 3);
}

TEST(Detection, CloserVictimDistributionIsHarderForBoth) {
  // Fig. 1(c): λ' = 10/11 needs far more observations than λ' = 1/2.
  const Fig1Setting far(0.5);
  const Fig1Setting close(10.0 / 11.0);
  EXPECT_GT(close.with_stopwatch().observations_needed(0.9),
            far.with_stopwatch().observations_needed(0.9));
  EXPECT_GT(close.without_stopwatch().observations_needed(0.9),
            far.without_stopwatch().observations_needed(0.9));
}

TEST(Detection, SweepMatchesPointQueries) {
  const Fig1Setting s(0.5);
  const auto det = s.with_stopwatch();
  const auto sweep = det.sweep(paper_confidence_grid());
  ASSERT_EQ(sweep.size(), paper_confidence_grid().size());
  for (const auto& r : sweep) {
    EXPECT_EQ(r.observations_needed, det.observations_needed(r.confidence));
  }
}

TEST(Detection, FromSamplesDetectsObviousShift) {
  Rng rng(21);
  std::vector<double> null_s, alt_s;
  for (int i = 0; i < 20000; ++i) {
    null_s.push_back(rng.exponential(1.0));
    alt_s.push_back(rng.exponential(0.25));
  }
  const auto det =
      ChiSquaredDetector::from_samples(Ecdf(std::move(null_s)), Ecdf(std::move(alt_s)));
  EXPECT_LE(det.observations_needed(0.99), 5);
}

TEST(Detection, FromSamplesSameDistributionNeedsMany) {
  Rng rng(22);
  std::vector<double> a, b;
  for (int i = 0; i < 40000; ++i) {
    a.push_back(rng.exponential(1.0));
    b.push_back(rng.exponential(1.0));
  }
  const auto det =
      ChiSquaredDetector::from_samples(Ecdf(std::move(a)), Ecdf(std::move(b)));
  // Finite-sample noise only; should need lots of observations.
  EXPECT_GT(det.observations_needed(0.99), 500);
}

class DetectionMonotonicityTest : public ::testing::TestWithParam<double> {};

TEST_P(DetectionMonotonicityTest, MedianAlwaysWeakensDetection) {
  // Property over a sweep of victim rates: StopWatch's median never makes
  // detection easier (Theorem 3 manifested through the chi-squared lens).
  const double lambda_victim = GetParam();
  const Fig1Setting s(lambda_victim);
  const long with = s.with_stopwatch().observations_needed(0.95);
  const long without = s.without_stopwatch().observations_needed(0.95);
  EXPECT_GE(with, without);
}

INSTANTIATE_TEST_SUITE_P(VictimRates, DetectionMonotonicityTest,
                         ::testing::Values(0.2, 0.33, 0.5, 0.66, 0.75, 0.9,
                                           10.0 / 11.0, 0.95));

}  // namespace
}  // namespace stopwatch::stats
