#include "stats/special_functions.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"

namespace stopwatch::stats {
namespace {

TEST(SpecialFunctions, LogGammaMatchesKnownValues) {
  // Γ(n) = (n-1)! at integers; half-integers via Γ(1/2) = sqrt(pi). The
  // local Lanczos log_gamma replaces std::lgamma (whose signgam global made
  // it thread-unsafe under the --jobs runner).
  EXPECT_NEAR(log_gamma(1.0), 0.0, 1e-13);
  EXPECT_NEAR(log_gamma(2.0), 0.0, 1e-13);
  EXPECT_NEAR(log_gamma(5.0), std::log(24.0), 1e-12);
  EXPECT_NEAR(log_gamma(11.0), std::log(3628800.0), 1e-11);
  EXPECT_NEAR(log_gamma(0.5), 0.5 * std::log(3.14159265358979323846), 1e-12);
  // Reflection branch (x < 0.5): Γ(0.25) = 3.6256099082219083...
  EXPECT_NEAR(log_gamma(0.25), std::log(3.6256099082219083), 1e-12);
  // Large argument (Stirling regime), value from reference tables.
  EXPECT_NEAR(log_gamma(100.0), 359.13420536957540, 1e-9);
  EXPECT_THROW(static_cast<void>(log_gamma(0.0)), ContractViolation);
}

TEST(SpecialFunctions, GammaPBoundaries) {
  EXPECT_DOUBLE_EQ(regularized_gamma_p(1.0, 0.0), 0.0);
  EXPECT_NEAR(regularized_gamma_p(1.0, 50.0), 1.0, 1e-12);
}

TEST(SpecialFunctions, GammaPMatchesExponentialCdf) {
  // P(1, x) = 1 - e^{-x}.
  for (double x : {0.1, 0.5, 1.0, 2.0, 5.0}) {
    EXPECT_NEAR(regularized_gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-10);
  }
}

TEST(SpecialFunctions, GammaPPlusQIsOne) {
  for (double a : {0.5, 1.0, 2.5, 10.0}) {
    for (double x : {0.01, 0.5, 1.0, 3.0, 20.0}) {
      EXPECT_NEAR(regularized_gamma_p(a, x) + regularized_gamma_q(a, x), 1.0,
                  1e-12);
    }
  }
}

TEST(SpecialFunctions, ChiSquaredCdfKnownValues) {
  // Chi-squared with k=2 is Exp(1/2): CDF(x) = 1 - e^{-x/2}.
  for (double x : {0.5, 1.0, 2.0, 5.991}) {
    EXPECT_NEAR(chi_squared_cdf(x, 2.0), 1.0 - std::exp(-x / 2.0), 1e-10);
  }
  // Standard table values.
  EXPECT_NEAR(chi_squared_cdf(3.841, 1.0), 0.95, 1e-3);
  EXPECT_NEAR(chi_squared_cdf(16.919, 9.0), 0.95, 1e-3);
}

TEST(SpecialFunctions, ChiSquaredInverseRoundTrips) {
  for (double k : {1.0, 2.0, 5.0, 9.0, 30.0}) {
    for (double p : {0.1, 0.5, 0.7, 0.9, 0.95, 0.99}) {
      const double x = chi_squared_inverse_cdf(p, k);
      EXPECT_NEAR(chi_squared_cdf(x, k), p, 1e-9) << "k=" << k << " p=" << p;
    }
  }
}

TEST(SpecialFunctions, ChiSquaredInverseTableValues) {
  EXPECT_NEAR(chi_squared_inverse_cdf(0.95, 1.0), 3.841, 5e-3);
  EXPECT_NEAR(chi_squared_inverse_cdf(0.99, 9.0), 21.666, 5e-3);
  EXPECT_NEAR(chi_squared_inverse_cdf(0.95, 9.0), 16.919, 5e-3);
}

TEST(SpecialFunctions, NormalCdfSymmetry) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  for (double x : {0.5, 1.0, 1.96, 3.0}) {
    EXPECT_NEAR(normal_cdf(x) + normal_cdf(-x), 1.0, 1e-12);
  }
  EXPECT_NEAR(normal_cdf(1.959963985), 0.975, 1e-6);
}

TEST(SpecialFunctions, NormalInverseRoundTrips) {
  for (double p : {0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999}) {
    EXPECT_NEAR(normal_cdf(normal_inverse_cdf(p)), p, 1e-9);
  }
}

TEST(SpecialFunctions, ContractsRejectBadArguments) {
  EXPECT_THROW((void)regularized_gamma_p(0.0, 1.0), ContractViolation);
  EXPECT_THROW((void)regularized_gamma_p(1.0, -1.0), ContractViolation);
  EXPECT_THROW((void)chi_squared_inverse_cdf(1.0, 2.0), ContractViolation);
  EXPECT_THROW((void)normal_inverse_cdf(0.0), ContractViolation);
}

}  // namespace
}  // namespace stopwatch::stats
