#include "stats/order_statistics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "stats/distribution.hpp"

namespace stopwatch::stats {
namespace {

TEST(OrderStatistics, Median3Values) {
  EXPECT_EQ(median3(1, 2, 3), 2);
  EXPECT_EQ(median3(3, 1, 2), 2);
  EXPECT_EQ(median3(2, 3, 1), 2);
  EXPECT_EQ(median3(5, 5, 1), 5);
  EXPECT_EQ(median3(7, 7, 7), 7);
  EXPECT_DOUBLE_EQ(median3(-1.0, 0.5, 0.25), 0.25);
}

TEST(OrderStatistics, MedianCdfMatchesClosedForm) {
  // For iid F, median-of-3 CDF is 3F^2 - 2F^3.
  for (double f : {0.0, 0.1, 0.3, 0.5, 0.8, 1.0}) {
    EXPECT_NEAR(median_of_three_cdf(f, f, f), 3 * f * f - 2 * f * f * f, 1e-12);
  }
}

TEST(OrderStatistics, GeneralFormulaAgreesWithMedianOfThree) {
  const std::vector<double> f{0.2, 0.55, 0.9};
  EXPECT_NEAR(order_statistic_cdf(f, 2), median_of_three_cdf(f[0], f[1], f[2]),
              1e-12);
}

TEST(OrderStatistics, MinAndMaxOfThree) {
  const std::vector<double> f{0.2, 0.5, 0.7};
  // Min: 1 - prod(1 - Fi); Max: prod(Fi).
  EXPECT_NEAR(order_statistic_cdf(f, 1), 1.0 - 0.8 * 0.5 * 0.3, 1e-12);
  EXPECT_NEAR(order_statistic_cdf(f, 3), 0.2 * 0.5 * 0.7, 1e-12);
}

TEST(OrderStatistics, CdfIsMonotoneInEachArgument) {
  double prev = -1.0;
  for (double f1 = 0.0; f1 <= 1.0; f1 += 0.05) {
    const double v = median_of_three_cdf(f1, 0.4, 0.6);
    EXPECT_GE(v, prev - 1e-12);
    prev = v;
  }
}

TEST(OrderStatistics, MedianOfThreeDistributionSamplesBetweenExtremes) {
  auto d1 = std::make_shared<Exponential>(1.0);
  auto d2 = std::make_shared<Exponential>(1.0);
  auto d3 = std::make_shared<Exponential>(1.0);
  auto med = make_median_of_three(d1, d2, d3, 100.0);

  // The analytic median CDF at the exponential median point:
  // F(ln 2) = 0.5 per component -> median CDF = 3/8 + ... = 0.5.
  EXPECT_NEAR(med->cdf(std::log(2.0)), 0.5, 1e-9);

  // Mean of median-of-3 iid Exp(1) = 5/6 (order statistics of exponential).
  EXPECT_NEAR(med->mean(), 5.0 / 6.0, 5e-3);
}

TEST(OrderStatistics, TheoremThreeKsContraction) {
  // Theorem 3: D(F_{2:3}, F'_{2:3}) < D(F_1, F'_1) when X2, X3 overlap.
  auto base = std::make_shared<Exponential>(1.0);
  auto victim = std::make_shared<Exponential>(0.5);

  auto f = [&](double x) {
    return median_of_three_cdf(base->cdf(x), base->cdf(x), base->cdf(x));
  };
  auto fp = [&](double x) {
    return median_of_three_cdf(victim->cdf(x), base->cdf(x), base->cdf(x));
  };
  const double d_median = ks_distance(f, fp, 0.0, 60.0);
  const double d_raw = ks_distance([&](double x) { return base->cdf(x); },
                                   [&](double x) { return victim->cdf(x); },
                                   0.0, 60.0);
  EXPECT_LT(d_median, d_raw);
}

TEST(OrderStatistics, TheoremFourHalvingWhenIdenticallyDistributed) {
  // Theorem 4: with X2 ~ X3, D(F_{2:3}, F'_{2:3}) <= D(F_1, F'_1) / 2.
  for (double lambda_victim : {0.2, 0.5, 0.75, 10.0 / 11.0}) {
    auto base = std::make_shared<Exponential>(1.0);
    auto victim = std::make_shared<Exponential>(lambda_victim);
    auto f = [&](double x) {
      return median_of_three_cdf(base->cdf(x), base->cdf(x), base->cdf(x));
    };
    auto fp = [&](double x) {
      return median_of_three_cdf(victim->cdf(x), base->cdf(x), base->cdf(x));
    };
    const double d_median = ks_distance(f, fp, 0.0, 120.0, 16384);
    const double d_raw = ks_distance([&](double x) { return base->cdf(x); },
                                     [&](double x) { return victim->cdf(x); },
                                     0.0, 120.0, 16384);
    EXPECT_LE(d_median, d_raw / 2.0 + 1e-9) << "lambda'=" << lambda_victim;
  }
}

class OrderStatisticBoundsTest : public ::testing::TestWithParam<int> {};

TEST_P(OrderStatisticBoundsTest, CdfWithinUnitIntervalForRandomInputs) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  for (int trial = 0; trial < 200; ++trial) {
    const int m = static_cast<int>(rng.uniform_int(1, 7));
    std::vector<double> f;
    for (int i = 0; i < m; ++i) f.push_back(rng.uniform01());
    for (int r = 1; r <= m; ++r) {
      const double v = order_statistic_cdf(f, r);
      ASSERT_GE(v, 0.0);
      ASSERT_LE(v, 1.0);
    }
  }
}

TEST_P(OrderStatisticBoundsTest, HigherRankHasSmallerCdf) {
  // F_{r+1:m}(x) <= F_{r:m}(x): the (r+1)-th smallest exceeds the r-th.
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 977 + 3);
  for (int trial = 0; trial < 200; ++trial) {
    const int m = static_cast<int>(rng.uniform_int(2, 7));
    std::vector<double> f;
    for (int i = 0; i < m; ++i) f.push_back(rng.uniform01());
    for (int r = 1; r < m; ++r) {
      ASSERT_LE(order_statistic_cdf(f, r + 1),
                order_statistic_cdf(f, r) + 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderStatisticBoundsTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace stopwatch::stats
