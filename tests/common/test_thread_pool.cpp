// The thread pool behind `stopwatch_bench --jobs`: every submitted task
// runs exactly once, destruction drains the queue, and wait_idle is a
// barrier — the properties the parallel runner's determinism rests on.
#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <vector>

#include "common/contracts.hpp"

namespace stopwatch {
namespace {

TEST(ThreadPool, RunsEverySubmittedTaskExactlyOnce) {
  constexpr std::size_t kTasks = 200;
  std::vector<std::atomic<int>> hits(kTasks);
  {
    ThreadPool pool(4);
    for (std::size_t i = 0; i < kTasks; ++i) {
      pool.submit([&hits, i] { hits[i].fetch_add(1); });
    }
  }  // Destructor drains the queue and joins.
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(ThreadPool, WaitIdleIsABarrierAndPoolStaysUsable) {
  std::atomic<int> count{0};
  ThreadPool pool(3);
  for (int i = 0; i < 50; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 50);
  // The pool accepts further work after an idle barrier.
  for (int i = 0; i < 25; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 75);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // Must not deadlock with nothing submitted.
  EXPECT_EQ(pool.thread_count(), 2u);
}

TEST(ThreadPool, SingleThreadPreservesSubmissionOrder) {
  std::vector<int> order;
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&order, i] { order.push_back(i); });
    }
  }
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPool, RejectsInvalidConstructionAndTasks) {
  EXPECT_THROW(ThreadPool(0), ContractViolation);
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(nullptr), ContractViolation);
}

TEST(RecommendedJobs, ZeroMeansHardwareConcurrency) {
  EXPECT_EQ(recommended_jobs(1), 1u);
  EXPECT_EQ(recommended_jobs(7), 7u);
  EXPECT_GE(recommended_jobs(0), 1u);
}

}  // namespace
}  // namespace stopwatch
