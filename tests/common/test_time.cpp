#include "common/time.hpp"

#include <gtest/gtest.h>

#include <type_traits>

namespace stopwatch {
namespace {

TEST(Time, DurationFactories) {
  EXPECT_EQ(Duration::millis(3).ns, 3'000'000);
  EXPECT_EQ(Duration::micros(5).ns, 5'000);
  EXPECT_EQ(Duration::seconds(2).ns, 2'000'000'000);
  EXPECT_DOUBLE_EQ(Duration::millis(1500).to_seconds(), 1.5);
}

TEST(Time, DurationArithmetic) {
  const auto d = Duration::millis(10) + Duration::micros(500);
  EXPECT_EQ(d.ns, 10'500'000);
  EXPECT_EQ((d - Duration::micros(500)).ns, 10'000'000);
  EXPECT_EQ((Duration::millis(2) * 3).ns, 6'000'000);
  EXPECT_EQ((Duration::millis(9) / 3).ns, 3'000'000);
}

TEST(Time, TimePointPlusDuration) {
  const auto t = RealTime::millis(100) + Duration::millis(50);
  EXPECT_EQ(t.ns, 150'000'000);
  EXPECT_EQ((t - RealTime::millis(100)).ns, 50'000'000);
}

TEST(Time, DomainsDoNotMix) {
  // RealTime and VirtTime must not be subtractable/comparable across
  // domains; this is a compile-time property.
  static_assert(!std::is_invocable_v<std::minus<>, RealTime, VirtTime>);
  static_assert(!std::is_convertible_v<RealTime, VirtTime>);
  static_assert(!std::is_convertible_v<VirtTime, RealTime>);
  SUCCEED();
}

TEST(Time, Ordering) {
  EXPECT_LT(VirtTime::millis(1), VirtTime::millis(2));
  EXPECT_EQ(RealTime::seconds(1), RealTime::millis(1000));
  EXPECT_GT(Duration::micros(1001), Duration::millis(1));
}

}  // namespace
}  // namespace stopwatch
