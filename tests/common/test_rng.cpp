#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/contracts.hpp"

namespace stopwatch {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkIsIndependentOfParentConsumption) {
  Rng parent(7);
  Rng child1 = parent.fork(1);
  Rng child2 = parent.fork(2);
  EXPECT_NE(child1.next_u64(), child2.next_u64());
}

TEST(Rng, Uniform01InRange) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntRespectsBoundsAndCoversRange) {
  Rng r(5);
  std::vector<int> counts(6, 0);
  for (int i = 0; i < 60000; ++i) {
    const auto v = r.uniform_int(10, 15);
    ASSERT_GE(v, 10);
    ASSERT_LE(v, 15);
    ++counts[static_cast<std::size_t>(v - 10)];
  }
  for (int c : counts) EXPECT_GT(c, 8000);  // ~10000 expected per cell
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng r(11);
  double acc = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) acc += r.exponential(2.0);
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng r(13);
  double acc = 0.0, acc2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal(3.0, 2.0);
    acc += v;
    acc2 += v * v;
  }
  const double mean = acc / n;
  const double var = acc2 / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.03);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng r(17);
  EXPECT_THROW(r.exponential(0.0), ContractViolation);
  EXPECT_THROW(r.exponential(-1.0), ContractViolation);
}

TEST(Rng, ChanceExtremes) {
  Rng r(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

}  // namespace
}  // namespace stopwatch
