#include "vm/guest.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/contracts.hpp"

namespace stopwatch::vm {
namespace {

/// Program that records callbacks and can enqueue scripted work.
class ScriptedProgram final : public GuestProgram {
 public:
  void on_boot(GuestApi& api) override {
    api_ = &api;
    ++boots;
    if (boot_action) boot_action(api);
  }
  void on_timer_tick(GuestApi&, std::uint64_t tick) override {
    ticks.push_back(tick);
  }
  void on_packet(GuestApi& api, const net::Packet& pkt) override {
    packet_times_ns.push_back(api.now().ns);
    packet_seqs.push_back(pkt.seq);
  }

  std::function<void(GuestApi&)> boot_action;
  GuestApi* api_{nullptr};
  int boots{0};
  std::vector<std::uint64_t> ticks;
  std::vector<std::int64_t> packet_times_ns;
  std::vector<std::uint64_t> packet_seqs;
};

struct GuestFixture {
  std::int64_t virt_ns{0};
  ScriptedProgram* program{nullptr};
  std::unique_ptr<GuestVm> guest;

  explicit GuestFixture(std::function<void(GuestApi&)> boot = nullptr) {
    auto prog = std::make_unique<ScriptedProgram>();
    prog->boot_action = std::move(boot);
    program = prog.get();
    guest = std::make_unique<GuestVm>(
        VmId{1}, NodeId{42}, std::move(prog), 99,
        [this] { return VirtTime{virt_ns}; });
  }

  /// Run `n` instructions in boundary-sized steps, advancing virt 1ns/instr.
  void run(std::uint64_t n) {
    while (n > 0) {
      const std::uint64_t step = std::min(n, guest->instr_to_boundary());
      guest->advance(step);
      virt_ns += static_cast<std::int64_t>(step);
      n -= step;
    }
  }
};

TEST(GuestVm, BootRunsProgramOnce) {
  GuestFixture fx;
  fx.guest->boot();
  EXPECT_EQ(fx.program->boots, 1);
  EXPECT_THROW(fx.guest->boot(), ContractViolation);
}

TEST(GuestVm, IdleGuestStillBurnsInstructions) {
  GuestFixture fx;
  fx.guest->boot();
  EXPECT_TRUE(fx.guest->is_idle());
  fx.run(100'000);
  EXPECT_EQ(fx.guest->instr(), 100'000u);
}

TEST(GuestVm, ComputeTaskCompletionFires) {
  bool done = false;
  GuestFixture fx([&done](GuestApi& api) {
    api.compute(50'000, [&done] { done = true; });
  });
  fx.guest->boot();
  fx.run(49'999);
  EXPECT_FALSE(done);
  fx.run(1);
  EXPECT_TRUE(done);
}

TEST(GuestVm, AdvancePastBoundaryRejected) {
  GuestFixture fx;
  fx.guest->boot();
  const auto b = fx.guest->instr_to_boundary();
  EXPECT_THROW(fx.guest->advance(b + 1), ContractViolation);
}

TEST(GuestVm, InjectedPacketHandlerRunsAfterHandlerCost) {
  GuestFixture fx;
  fx.guest->boot();
  fx.run(10'000);
  net::Packet pkt;
  pkt.seq = 7;
  fx.guest->inject_net_packet(pkt);
  fx.guest->commit_injections();
  EXPECT_TRUE(fx.program->packet_seqs.empty());
  fx.run(2'000);  // kIrqHandlerInstr
  ASSERT_EQ(fx.program->packet_seqs.size(), 1u);
  EXPECT_EQ(fx.program->packet_seqs[0], 7u);
}

TEST(GuestVm, InjectionOrderPreserved) {
  GuestFixture fx;
  fx.guest->boot();
  net::Packet a, b;
  a.seq = 1;
  b.seq = 2;
  fx.guest->inject_net_packet(a);
  fx.guest->inject_net_packet(b);
  fx.guest->commit_injections();
  fx.run(10'000);
  ASSERT_EQ(fx.program->packet_seqs.size(), 2u);
  EXPECT_EQ(fx.program->packet_seqs[0], 1u);
  EXPECT_EQ(fx.program->packet_seqs[1], 2u);
}

TEST(GuestVm, TimerTicksCounted) {
  GuestFixture fx;
  fx.guest->boot();
  fx.guest->inject_timer_tick();
  fx.guest->inject_timer_tick();
  fx.guest->commit_injections();
  fx.run(10'000);
  ASSERT_EQ(fx.program->ticks.size(), 2u);
  EXPECT_EQ(fx.program->ticks[0], 1u);
  EXPECT_EQ(fx.program->ticks[1], 2u);
  EXPECT_EQ(fx.guest->counters().timer_ticks, 2u);
}

TEST(GuestVm, DiskRequestEmitsIoOpAndCompletionFires) {
  bool disk_done = false;
  GuestFixture fx([&disk_done](GuestApi& api) {
    api.disk_read(4096, [&disk_done] { disk_done = true; });
  });
  fx.guest->boot();
  auto ops = fx.guest->drain_io_ops();
  ASSERT_EQ(ops.size(), 1u);
  const auto* rd = std::get_if<DiskReadOp>(&ops[0]);
  ASSERT_NE(rd, nullptr);
  EXPECT_EQ(rd->bytes, 4096u);

  fx.guest->inject_disk_complete(rd->request_id);
  fx.guest->commit_injections();
  fx.run(5'000);
  EXPECT_TRUE(disk_done);
  EXPECT_EQ(fx.guest->counters().disk_interrupts, 1u);
}

TEST(GuestVm, SendPacketStampsSourceAddress) {
  GuestFixture fx([](GuestApi& api) {
    net::Packet pkt;
    pkt.dst = NodeId{9};
    api.send_packet(pkt);
  });
  fx.guest->boot();
  auto ops = fx.guest->drain_io_ops();
  ASSERT_EQ(ops.size(), 1u);
  const auto* sp = std::get_if<SendPacketOp>(&ops[0]);
  ASSERT_NE(sp, nullptr);
  EXPECT_EQ(sp->pkt.src, (NodeId{42}));
}

TEST(GuestVm, VirtualTimersFireInOrder) {
  std::vector<int> fired;
  GuestFixture fx([&fired](GuestApi& api) {
    api.set_timer(Duration::micros(50), [&fired] { fired.push_back(2); });
    api.set_timer(Duration::micros(10), [&fired] { fired.push_back(1); });
  });
  fx.guest->boot();
  fx.run(5'000);  // virt +5us: nothing due
  fx.guest->fire_due_timers();
  fx.guest->commit_injections();
  EXPECT_TRUE(fired.empty());

  fx.run(20'000);  // virt = 25us: first timer due
  fx.guest->fire_due_timers();
  fx.guest->commit_injections();
  fx.run(2'000);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 1);

  fx.run(40'000);  // virt past 50us
  fx.guest->fire_due_timers();
  fx.guest->commit_injections();
  fx.run(2'000);
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[1], 2);
}

TEST(GuestVm, DeterministicRngIdenticalForSameSeed) {
  GuestFixture fx1, fx2;
  fx1.guest->boot();
  fx2.guest->boot();
  // Both guests constructed with det seed 99.
  auto& api1 = *fx1.program->api_;
  auto& api2 = *fx2.program->api_;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(api1.det_rng().next_u64(), api2.det_rng().next_u64());
  }
}

TEST(GuestVm, RdtscDerivesFromVirtualClock) {
  GuestFixture fx;
  fx.guest->boot();
  fx.virt_ns = 1'000'000;  // 1 ms
  EXPECT_EQ(fx.program->api_->rdtsc(), 3'000'000u);  // 3 GHz
  fx.virt_ns = 2'500'000'000;
  EXPECT_EQ(fx.program->api_->rtc_seconds(), 2u);
}

TEST(GuestVm, PitCounterCountsDownInVirtualTime) {
  GuestFixture fx;
  fx.guest->boot();
  fx.virt_ns = 0;
  const auto start = fx.program->api_->pit_counter();
  EXPECT_EQ(start, 4772u);  // full reload at virtual time zero
  fx.virt_ns = 1'000'000;   // +1 ms of virtual time = 1193 PIT ticks
  const auto later = fx.program->api_->pit_counter();
  EXPECT_EQ(later, 4772u - 1193u);
  // One full 4 ms period later the counter has wrapped to the same value.
  fx.virt_ns += 4'000'000;
  EXPECT_NEAR(static_cast<double>(fx.program->api_->pit_counter()),
              static_cast<double>(later), 2.0);
  // The counter is a pure function of virtual time: freezing virt freezes
  // it (this is what defeats its use as an independent clock).
  const auto frozen = fx.program->api_->pit_counter();
  fx.run(500'000);  // instructions advance...
  fx.virt_ns -= 500'000;  // ...but hold the fixture's virt constant
  EXPECT_EQ(fx.program->api_->pit_counter(), frozen);
}

}  // namespace
}  // namespace stopwatch::vm
