// Property-style sweeps over the full StopWatch cloud: the invariants the
// paper's security argument rests on must hold across seeds, replica
// counts, offsets, and aggregation rules.
#include <gtest/gtest.h>

#include <memory>

#include "core/cloud.hpp"
#include "workload/timing.hpp"

namespace stopwatch::core {
namespace {

struct RunResult {
  bool deterministic{false};
  std::uint64_t divergences{0};
  std::size_t observations{0};
  std::vector<std::int64_t> obs_ns;
};

RunResult run_probe_cloud(CloudConfig cfg, int replicas_used,
                          Duration run_time = Duration::seconds(4)) {
  Cloud cloud(cfg);
  std::vector<int> machines;
  for (int i = 0; i < replicas_used; ++i) machines.push_back(i);
  const VmHandle vm = cloud.add_vm(
      "probe", [] { return std::make_unique<workload::AttackerProbeProgram>(); },
      machines);
  workload::BackgroundBroadcaster bcast(cloud, "bcast", cloud.vm_addr(vm),
                                        60.0, cfg.seed ^ 0xAA);
  cloud.start();
  bcast.start();
  cloud.run_for(run_time);
  cloud.halt_all();

  RunResult r;
  r.deterministic = cloud.replicas_deterministic(vm);
  r.divergences = cloud.total_divergences();
  auto& probe = static_cast<workload::AttackerProbeProgram&>(
      cloud.replica(vm, 0).program());
  r.obs_ns = probe.observations_ns();
  r.observations = r.obs_ns.size();

  // Replicas must agree on the full common prefix of observations.
  for (int rep = 1; rep < cloud.replicas_of(vm); ++rep) {
    auto& other = static_cast<workload::AttackerProbeProgram&>(
        cloud.replica(vm, rep).program());
    const auto& o = other.observations_ns();
    const std::size_t n = std::min(o.size(), r.obs_ns.size());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(o[i], r.obs_ns[i]) << "replica " << rep << " obs " << i;
    }
  }
  return r;
}

class SeedSweep : public ::testing::TestWithParam<int> {};

TEST_P(SeedSweep, DeterminismAndZeroDivergenceAcrossSeeds) {
  CloudConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(GetParam());
  cfg.machine_count = 3;
  const RunResult r = run_probe_cloud(cfg, 3);
  EXPECT_TRUE(r.deterministic);
  EXPECT_EQ(r.divergences, 0u);
  EXPECT_GT(r.observations, 50u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

class OffsetSweep : public ::testing::TestWithParam<int> {};

TEST_P(OffsetSweep, MachineClockOffsetsDoNotBreakAgreement) {
  CloudConfig cfg;
  cfg.seed = 77;
  cfg.machine_count = 3;
  cfg.clock_offset_spread = Duration::millis(GetParam());
  const RunResult r = run_probe_cloud(cfg, 3);
  EXPECT_TRUE(r.deterministic);
  EXPECT_EQ(r.divergences, 0u);
}

INSTANTIATE_TEST_SUITE_P(Spreads, OffsetSweep,
                         ::testing::Values(0, 10, 40, 200, 1000));

class AggregationSweep
    : public ::testing::TestWithParam<hypervisor::AggregationRule> {};

TEST_P(AggregationSweep, AllRulesPreserveDeterminism) {
  // Even the "wrong" aggregation rules (the ablation comparators) must
  // deliver identically at all replicas — they differ in *leakage*, not in
  // agreement.
  CloudConfig cfg;
  cfg.seed = 5;
  cfg.machine_count = 3;
  cfg.policy.stopwatch.aggregation = GetParam();
  cfg.policy.stopwatch.leader_machine = 1;
  // kMin adopts the earliest proposal, which may already have passed on
  // slower replicas (that is exactly why the paper rejects it); give it
  // headroom so the test isolates determinism.
  cfg.policy.stopwatch.delta_n = Duration::millis(25);
  const RunResult r = run_probe_cloud(cfg, 3);
  EXPECT_TRUE(r.deterministic);
  EXPECT_GT(r.observations, 50u);
}

INSTANTIATE_TEST_SUITE_P(Rules, AggregationSweep,
                         ::testing::Values(hypervisor::AggregationRule::kMedian,
                                           hypervisor::AggregationRule::kMin,
                                           hypervisor::AggregationRule::kMax,
                                           hypervisor::AggregationRule::kLeader));

TEST(StopWatchProperties, FiveReplicasAgreeLikeThree) {
  CloudConfig cfg;
  cfg.seed = 3;
  cfg.machine_count = 5;
  cfg.replica_count = 5;
  const RunResult r = run_probe_cloud(cfg, 5);
  EXPECT_TRUE(r.deterministic);
  EXPECT_EQ(r.divergences, 0u);
}

TEST(StopWatchProperties, EpochResyncKeepsAgreementOnCleanHosts) {
  CloudConfig cfg;
  cfg.seed = 11;
  cfg.machine_count = 3;
  cfg.policy.stopwatch.epoch_resync = true;
  cfg.policy.stopwatch.epoch_instr = 100'000'000;
  const RunResult r = run_probe_cloud(cfg, 3, Duration::seconds(5));
  EXPECT_TRUE(r.deterministic);
  EXPECT_EQ(r.divergences, 0u);
}

TEST(StopWatchProperties, ObservationsAreVirtualNotReal) {
  // The attacker's observations are in virtual time: with a large machine
  // clock offset, the virtual epoch (median of machine clocks) shifts all
  // observations, proving the guest never sees raw real time.
  CloudConfig small;
  small.seed = 21;
  small.machine_count = 3;
  small.clock_offset_spread = Duration::millis(1);
  CloudConfig big = small;
  big.clock_offset_spread = Duration::seconds(100);
  const RunResult a = run_probe_cloud(small, 3);
  const RunResult b = run_probe_cloud(big, 3);
  ASSERT_FALSE(a.obs_ns.empty());
  ASSERT_FALSE(b.obs_ns.empty());
  // The big-offset cloud's observations start ~tens of seconds later in
  // "virtual" terms even though the runs last 4 real seconds.
  EXPECT_LT(a.obs_ns.front(), Duration::seconds(5).ns);
  EXPECT_GT(b.obs_ns.front(), Duration::seconds(5).ns);
}

TEST(StopWatchProperties, HaltStopsExecution) {
  CloudConfig cfg;
  cfg.seed = 9;
  cfg.machine_count = 3;
  Cloud cloud(cfg);
  const VmHandle vm = cloud.add_vm(
      "probe", [] { return std::make_unique<workload::AttackerProbeProgram>(); },
      {0, 1, 2});
  cloud.start();
  cloud.run_for(Duration::millis(100));
  cloud.halt_all();
  const auto instr = cloud.replica(vm, 0).instr();
  cloud.run_for(Duration::millis(100));
  EXPECT_EQ(cloud.replica(vm, 0).instr(), instr);
}

}  // namespace
}  // namespace stopwatch::core
