#include "core/cloud.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "workload/timing.hpp"

namespace stopwatch::core {
namespace {

/// Echoes every request back to its sender.
class EchoProgram final : public vm::GuestProgram {
 public:
  void on_boot(vm::GuestApi&) override {}
  void on_timer_tick(vm::GuestApi&, std::uint64_t) override {}
  void on_packet(vm::GuestApi& api, const net::Packet& pkt) override {
    if (pkt.kind != net::PacketKind::kRequest) return;
    net::Packet reply;
    reply.dst = pkt.src;
    reply.kind = net::PacketKind::kData;
    reply.seq = pkt.seq;
    reply.size_bytes = 100;
    api.send_packet(reply);
  }
};

/// Counts PIT ticks (for clock-rate checks).
class TickCounterProgram final : public vm::GuestProgram {
 public:
  void on_boot(vm::GuestApi&) override {}
  void on_timer_tick(vm::GuestApi& api, std::uint64_t) override {
    ++ticks;
    last_tick_virt_ns = api.now().ns;
  }
  void on_packet(vm::GuestApi&, const net::Packet&) override {}
  std::uint64_t ticks{0};
  std::int64_t last_tick_virt_ns{0};
};

CloudConfig stopwatch_config(std::uint64_t seed = 42) {
  CloudConfig cfg;
  cfg.seed = seed;
  cfg.policy = Policy::kStopWatch;
  cfg.machine_count = 3;
  return cfg;
}

struct EchoRun {
  std::vector<std::int64_t> reply_times_ns;
  std::vector<std::uint64_t> reply_seqs;
};

EchoRun run_echo_cloud(const CloudConfig& cfg, int requests,
                       Duration spacing) {
  Cloud cloud(cfg);
  const VmHandle vm = cloud.add_vm(
      "echo", [] { return std::make_unique<EchoProgram>(); }, {0, 1, 2});
  EchoRun run;
  const NodeId client = cloud.add_external_node(
      "client", [&run, &cloud](const net::Packet& pkt) {
        run.reply_times_ns.push_back(cloud.simulator().now().ns);
        run.reply_seqs.push_back(pkt.seq);
      });
  cloud.start();
  for (int i = 0; i < requests; ++i) {
    cloud.simulator().schedule_at(
        RealTime{} + spacing * (i + 1), [&cloud, client, vm, i] {
          net::Packet req;
          req.dst = cloud.vm_addr(vm);
          req.kind = net::PacketKind::kRequest;
          req.seq = static_cast<std::uint64_t>(i);
          req.size_bytes = 80;
          cloud.send_external(client, req);
        });
  }
  cloud.run_for(Duration::seconds(3));
  EXPECT_TRUE(cloud.replicas_deterministic(vm));
  EXPECT_EQ(cloud.egress_stats(vm).hash_mismatches, 0u);
  EXPECT_EQ(cloud.total_divergences(), 0u);
  return run;
}

TEST(Cloud, StopWatchEchoesAllRequests) {
  const EchoRun run =
      run_echo_cloud(stopwatch_config(), 20, Duration::millis(20));
  ASSERT_EQ(run.reply_seqs.size(), 20u);
  for (std::uint64_t i = 0; i < 20; ++i) EXPECT_EQ(run.reply_seqs[i], i);
}

TEST(Cloud, RunsAreBitReproducible) {
  const EchoRun a = run_echo_cloud(stopwatch_config(7), 10, Duration::millis(15));
  const EchoRun b = run_echo_cloud(stopwatch_config(7), 10, Duration::millis(15));
  EXPECT_EQ(a.reply_times_ns, b.reply_times_ns);
  EXPECT_EQ(a.reply_seqs, b.reply_seqs);
}

TEST(Cloud, DifferentSeedsChangeTimings) {
  const EchoRun a = run_echo_cloud(stopwatch_config(7), 10, Duration::millis(15));
  const EchoRun b = run_echo_cloud(stopwatch_config(8), 10, Duration::millis(15));
  EXPECT_NE(a.reply_times_ns, b.reply_times_ns);
}

TEST(Cloud, BaselineEchoes) {
  CloudConfig cfg = stopwatch_config();
  cfg.policy = Policy::kBaselineXen;
  const EchoRun run = run_echo_cloud(cfg, 10, Duration::millis(10));
  EXPECT_EQ(run.reply_seqs.size(), 10u);
}

TEST(Cloud, StopWatchDeliveryIsSlowerThanBaseline) {
  // The same echo exchange pays the Δn-median path under StopWatch.
  CloudConfig base_cfg = stopwatch_config();
  base_cfg.policy = Policy::kBaselineXen;
  const EchoRun base = run_echo_cloud(base_cfg, 10, Duration::millis(50));
  const EchoRun sw = run_echo_cloud(stopwatch_config(), 10, Duration::millis(50));
  ASSERT_EQ(base.reply_times_ns.size(), 10u);
  ASSERT_EQ(sw.reply_times_ns.size(), 10u);
  // Compare per-request round trips (request i sent at (i+1)*50 ms).
  double base_avg = 0.0, sw_avg = 0.0;
  for (int i = 0; i < 10; ++i) {
    const auto sent = (Duration::millis(50) * (i + 1)).ns;
    base_avg += static_cast<double>(base.reply_times_ns[static_cast<std::size_t>(i)] - sent);
    sw_avg += static_cast<double>(sw.reply_times_ns[static_cast<std::size_t>(i)] - sent);
  }
  EXPECT_GT(sw_avg, base_avg * 1.5);
  // But not absurdly slower (delivery pipeline works).
  EXPECT_LT(sw_avg, base_avg * 40.0);
}

TEST(Cloud, ReplicasObserveIdenticalVirtualDeliveryTimes) {
  CloudConfig cfg = stopwatch_config();
  Cloud cloud(cfg);
  const VmHandle vm = cloud.add_vm(
      "probe", [] { return std::make_unique<workload::AttackerProbeProgram>(); },
      {0, 1, 2});
  workload::BackgroundBroadcaster bcast(cloud, "bcast", cloud.vm_addr(vm),
                                        80.0, 5);
  cloud.start();
  bcast.start();
  cloud.run_for(Duration::seconds(5));
  cloud.halt_all();

  auto obs = [&](int r) {
    return static_cast<workload::AttackerProbeProgram&>(
               cloud.replica(vm, r).program())
        .observations_ns();
  };
  const auto& o0 = obs(0);
  const auto& o1 = obs(1);
  const auto& o2 = obs(2);
  ASSERT_GT(o0.size(), 100u);
  const std::size_t n = std::min({o0.size(), o1.size(), o2.size()});
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(o0[i], o1[i]) << "replica 0 vs 1 at obs " << i;
    ASSERT_EQ(o0[i], o2[i]) << "replica 0 vs 2 at obs " << i;
  }
  EXPECT_EQ(cloud.total_divergences(), 0u);
}

TEST(Cloud, TimerTicksTrackVirtualTimeAt250Hz) {
  CloudConfig cfg = stopwatch_config();
  Cloud cloud(cfg);
  const VmHandle vm = cloud.add_vm(
      "ticker", [] { return std::make_unique<TickCounterProgram>(); },
      {0, 1, 2});
  cloud.start();
  cloud.run_for(Duration::seconds(2));
  cloud.halt_all();
  for (int r = 0; r < 3; ++r) {
    auto& prog =
        static_cast<TickCounterProgram&>(cloud.replica(vm, r).program());
    ASSERT_GT(prog.ticks, 100u);
    // Tick N fires once virtual time passes N * 4 ms: 250 Hz in virt.
    const double measured_rate =
        static_cast<double>(prog.ticks) /
        (static_cast<double>(prog.last_tick_virt_ns) / 1e9 + 1e-12);
    EXPECT_NEAR(measured_rate, 250.0, 25.0) << "replica " << r;
  }
}

TEST(Cloud, EgressReleasesOnSecondCopy) {
  CloudConfig cfg = stopwatch_config();
  Cloud cloud(cfg);
  const VmHandle vm = cloud.add_vm(
      "echo", [] { return std::make_unique<EchoProgram>(); }, {0, 1, 2});
  int client_received = 0;
  const NodeId client = cloud.add_external_node(
      "client", [&](const net::Packet&) { ++client_received; });
  cloud.start();
  cloud.simulator().schedule_at(RealTime::millis(10), [&] {
    net::Packet req;
    req.dst = cloud.vm_addr(vm);
    req.kind = net::PacketKind::kRequest;
    req.size_bytes = 80;
    cloud.send_external(client, req);
  });
  cloud.run_for(Duration::seconds(2));
  EXPECT_EQ(client_received, 1);
  EXPECT_EQ(cloud.egress_stats(vm).packets_released, 1u);
}

/// Sends a request to a fixed destination every few PIT ticks.
class PeriodicSenderProgram final : public vm::GuestProgram {
 public:
  explicit PeriodicSenderProgram(NodeId dst) : dst_(dst) {}
  void on_boot(vm::GuestApi&) override {}
  void on_timer_tick(vm::GuestApi& api, std::uint64_t tick) override {
    if (tick % 8 != 0) return;  // every ~32 ms of virtual time
    net::Packet req;
    req.dst = dst_;
    req.kind = net::PacketKind::kRequest;
    req.seq = tick;
    req.size_bytes = 80;
    api.send_packet(req);
  }
  void on_packet(vm::GuestApi&, const net::Packet&) override {}

 private:
  NodeId dst_;
};

TEST(Cloud, VmToVmTrafficFlowsThroughEgressAndIngress) {
  // VM1's outputs leave via the egress (median timing) and re-enter through
  // VM2's ingress, where they are median-agreed again — both replicated VMs
  // must stay deterministic end to end.
  CloudConfig cfg = stopwatch_config();
  cfg.machine_count = 6;
  Cloud cloud(cfg);
  const VmHandle receiver = cloud.add_vm(
      "receiver",
      [] { return std::make_unique<workload::AttackerProbeProgram>(); },
      {0, 1, 2});
  const VmHandle sender = cloud.add_vm(
      "sender",
      [&cloud, receiver] {
        return std::make_unique<PeriodicSenderProgram>(cloud.vm_addr(receiver));
      },
      {3, 4, 5});
  cloud.start();
  cloud.run_for(Duration::seconds(3));
  cloud.halt_all();

  // ~3 s / 32 ms = ~90 requests; each released once by the sender's egress.
  EXPECT_GT(cloud.egress_stats(sender).packets_released, 60u);
  auto obs = [&](int r) {
    return static_cast<workload::AttackerProbeProgram&>(
               cloud.replica(receiver, r).program())
        .observations_ns();
  };
  ASSERT_GT(obs(0).size(), 60u);
  const std::size_t n =
      std::min({obs(0).size(), obs(1).size(), obs(2).size()});
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(obs(0)[i], obs(1)[i]);
    ASSERT_EQ(obs(0)[i], obs(2)[i]);
  }
  EXPECT_TRUE(cloud.replicas_deterministic(sender));
  EXPECT_TRUE(cloud.replicas_deterministic(receiver));
  EXPECT_EQ(cloud.total_divergences(), 0u);
}

TEST(Cloud, ReplicaPlacementOnSameMachineRejected) {
  Cloud cloud(stopwatch_config());
  EXPECT_THROW(cloud.add_vm(
                   "bad", [] { return std::make_unique<EchoProgram>(); },
                   {0, 0, 1}),
               ContractViolation);
}

/// Expects Cloud(cfg) to throw a ContractViolation whose message mentions
/// `needle` — misconfiguration must explain itself at the boundary instead
/// of failing deep inside wiring.
void expect_config_rejected(const CloudConfig& cfg, const std::string& needle) {
  try {
    Cloud cloud(cfg);
    FAIL() << "expected ContractViolation mentioning '" << needle << "'";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

TEST(Cloud, ConfigValidatedUpFrontWithClearMessages) {
  CloudConfig cfg = stopwatch_config();
  cfg.machine_count = 0;
  expect_config_rejected(cfg, "machine_count must be >= 1");

  cfg = stopwatch_config();
  cfg.replica_count = 0;
  expect_config_rejected(cfg, "replica_count must be >= 1");

  cfg = stopwatch_config();
  cfg.replica_count = -3;
  expect_config_rejected(cfg, "replica_count must be >= 1");

  cfg = stopwatch_config();
  cfg.replica_count = 4;
  expect_config_rejected(cfg, "must be odd");

  cfg = stopwatch_config();
  cfg.replica_count = 5;  // > machine_count = 3
  expect_config_rejected(cfg, "cannot exceed machine_count");

  cfg = stopwatch_config();
  cfg.shard_size = 0;
  expect_config_rejected(cfg, "shard_size must be >= 1");

  cfg = stopwatch_config();
  cfg.clock_offset_spread = Duration::millis(-1);
  expect_config_rejected(cfg, "clock_offset_spread");

  // Baseline runs single replicas, so replica_count > machine_count is
  // fine there (the knob is documented as ignored).
  CloudConfig baseline = stopwatch_config();
  baseline.policy = Policy::kBaselineXen;
  baseline.machine_count = 1;
  baseline.replica_count = 3;
  Cloud ok(baseline);
  EXPECT_EQ(ok.machine_count(), 1);
}

TEST(Cloud, FiveReplicaCloudWorks) {
  CloudConfig cfg = stopwatch_config();
  cfg.machine_count = 5;
  cfg.replica_count = 5;
  Cloud cloud(cfg);
  const VmHandle vm = cloud.add_vm(
      "echo", [] { return std::make_unique<EchoProgram>(); },
      {0, 1, 2, 3, 4});
  int received = 0;
  const NodeId client =
      cloud.add_external_node("client", [&](const net::Packet&) { ++received; });
  cloud.start();
  cloud.simulator().schedule_at(RealTime::millis(5), [&] {
    net::Packet req;
    req.dst = cloud.vm_addr(vm);
    req.kind = net::PacketKind::kRequest;
    req.size_bytes = 80;
    cloud.send_external(client, req);
  });
  cloud.run_for(Duration::seconds(2));
  EXPECT_EQ(received, 1);
  EXPECT_TRUE(cloud.replicas_deterministic(vm));
  EXPECT_EQ(cloud.total_divergences(), 0u);
}

}  // namespace
}  // namespace stopwatch::core
