// Shard-parallel Cloud execution: the sim_shards knob, the
// activate_sharded activation-set contract, and end-to-end equivalence of
// a sharded cloud against the sequential run of the same seed.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/contracts.hpp"
#include "core/cloud.hpp"

namespace stopwatch::core {
namespace {

/// Echoes every request back to its sender.
class EchoProgram final : public vm::GuestProgram {
 public:
  void on_boot(vm::GuestApi&) override {}
  void on_timer_tick(vm::GuestApi&, std::uint64_t) override {}
  void on_packet(vm::GuestApi& api, const net::Packet& pkt) override {
    if (pkt.kind != net::PacketKind::kRequest) return;
    net::Packet reply;
    reply.dst = pkt.src;
    reply.kind = net::PacketKind::kData;
    reply.seq = pkt.seq;
    reply.size_bytes = 100;
    api.send_packet(reply);
  }
};

CloudConfig sharded_config(int shards, std::uint64_t seed = 42) {
  CloudConfig cfg;
  cfg.seed = seed;
  cfg.policy = Policy::kStopWatch;
  cfg.machine_count = 9;
  cfg.wiring = WiringMode::kLazy;
  cfg.sim_shards = shards;
  return cfg;
}

/// Builds a 3-VM cloud on disjoint machine triples, drives each VM with
/// `requests` echo requests, and returns (reply src addr, arrival ns)
/// pairs in arrival order.
std::vector<std::pair<std::uint32_t, std::int64_t>> run_echo_cloud(
    const CloudConfig& cfg, int requests) {
  Cloud cloud(cfg);
  std::vector<VmHandle> vms;
  for (int v = 0; v < 3; ++v) {
    vms.push_back(cloud.add_vm(
        "echo" + std::to_string(v),
        [] { return std::make_unique<EchoProgram>(); },
        {3 * v, 3 * v + 1, 3 * v + 2}));
  }
  std::vector<std::pair<std::uint32_t, std::int64_t>> replies;
  const NodeId client = cloud.add_external_node(
      "client", [&replies, &cloud](const net::Packet& pkt) {
        replies.emplace_back(pkt.src.value, cloud.simulator().now().ns);
      });
  cloud.activate_sharded(vms);
  cloud.start();
  for (int v = 0; v < 3; ++v) {
    for (int i = 0; i < requests; ++i) {
      const VmHandle vm = vms[static_cast<std::size_t>(v)];
      const std::uint64_t seq = static_cast<std::uint64_t>(i);
      cloud.simulator().schedule_at(
          RealTime::nanos(1'000'000 + 7'000'000 * i + 1'000 * v),
          [&cloud, client, vm, seq] {
            net::Packet req;
            req.dst = cloud.vm_addr(vm);
            req.kind = net::PacketKind::kRequest;
            req.seq = seq;
            req.size_bytes = 80;
            cloud.send_external(client, req);
          });
    }
  }
  cloud.run_for(Duration::millis(7 * requests + 100));
  cloud.halt_all();
  return replies;
}

TEST(CloudSharded, FourShardsReproduceTheSequentialRunExactly) {
  const auto sequential = run_echo_cloud(sharded_config(1), 6);
  const auto sharded = run_echo_cloud(sharded_config(4), 6);
  ASSERT_FALSE(sequential.empty());
  EXPECT_EQ(sequential, sharded);
}

TEST(CloudSharded, RepeatedShardedRunsAreIdentical) {
  const auto a = run_echo_cloud(sharded_config(3), 4);
  const auto b = run_echo_cloud(sharded_config(3), 4);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(CloudSharded, RunForRequiresActivationWhenSharded) {
  Cloud cloud(sharded_config(2));
  cloud.start();
  EXPECT_THROW(cloud.run_for(Duration::millis(1)), ContractViolation);
}

TEST(CloudSharded, TrafficOutsideTheActivationSetThrows) {
  Cloud cloud(sharded_config(2));
  const VmHandle active = cloud.add_vm(
      "active", [] { return std::make_unique<EchoProgram>(); }, {0, 1, 2});
  const VmHandle dormant = cloud.add_vm(
      "dormant", [] { return std::make_unique<EchoProgram>(); }, {3, 4, 5});
  const NodeId client =
      cloud.add_external_node("client", [](const net::Packet&) {});
  cloud.activate_sharded({active});
  cloud.start();
  // A frame reaching the dormant VM's ingress would have to wire it from a
  // worker thread mid-window; the activation-set contract throws instead,
  // and the sharded kernel rethrows on the driving thread.
  net::Packet req;
  req.dst = cloud.vm_addr(dormant);
  req.kind = net::PacketKind::kRequest;
  req.seq = 1;
  req.size_bytes = 80;
  cloud.send_external(client, req);
  EXPECT_THROW(cloud.run_for(Duration::millis(50)), ContractViolation);
}

TEST(CloudSharded, TunnelingPolicyTapAllowedAcrossShards) {
  // StopWatch tunnels guest output through the egress gate, so the tap
  // fires only on the egress owner core — single-writer, even sharded.
  Cloud cloud(sharded_config(2));
  const VmHandle vm = cloud.add_vm(
      "echo", [] { return std::make_unique<EchoProgram>(); }, {0, 1, 2});
  cloud.activate_sharded({vm});
  cloud.set_egress_tap([](std::uint32_t, RealTime, const net::Packet&) {});
  EXPECT_TRUE(cloud.has_egress_tap());
}

TEST(CloudSharded, NonTunnelingTapRejectedWhenVmsSpanShards) {
  // Baseline Xen emits output from the replica send path — with active
  // VMs on two shards the tap would fire from two worker threads.
  CloudConfig cfg = sharded_config(2);
  cfg.policy = Policy::kBaselineXen;
  Cloud cloud(cfg);
  const VmHandle a = cloud.add_vm(
      "a", [] { return std::make_unique<EchoProgram>(); }, {0});
  const VmHandle b = cloud.add_vm(
      "b", [] { return std::make_unique<EchoProgram>(); }, {1});
  cloud.activate_sharded({a, b});
  EXPECT_THROW(
      cloud.set_egress_tap([](std::uint32_t, RealTime, const net::Packet&) {}),
      ContractViolation);
}

TEST(CloudSharded, NonTunnelingTapPreinstalledRejectedAtActivation) {
  CloudConfig cfg = sharded_config(2);
  cfg.policy = Policy::kBaselineXen;
  Cloud cloud(cfg);
  cloud.set_egress_tap([](std::uint32_t, RealTime, const net::Packet&) {});
  const VmHandle a = cloud.add_vm(
      "a", [] { return std::make_unique<EchoProgram>(); }, {0});
  const VmHandle b = cloud.add_vm(
      "b", [] { return std::make_unique<EchoProgram>(); }, {1});
  EXPECT_THROW(cloud.activate_sharded({a, b}), ContractViolation);
}

TEST(CloudSharded, NonTunnelingTapAllowedWhenActiveSetSharesAShard) {
  // One active VM -> one owner shard -> the replica send path is a single
  // writer even though shard_count > 1.
  CloudConfig cfg = sharded_config(2);
  cfg.policy = Policy::kBaselineXen;
  Cloud cloud(cfg);
  const VmHandle a = cloud.add_vm(
      "a", [] { return std::make_unique<EchoProgram>(); }, {0});
  cloud.activate_sharded({a});
  cloud.set_egress_tap([](std::uint32_t, RealTime, const net::Packet&) {});
  EXPECT_TRUE(cloud.has_egress_tap());
}

TEST(CloudSharded, EgressAndExternalsLeaveCoreZero) {
  Cloud cloud(sharded_config(2));
  const NodeId client =
      cloud.add_external_node("client", [](const net::Packet&) {});
  const VmHandle vm = cloud.add_vm(
      "echo", [] { return std::make_unique<EchoProgram>(); }, {0, 1, 2});
  cloud.activate_sharded({vm});
  const int egress = cloud.topology().shard_plan().egress_shard();
  EXPECT_GT(egress, 0);  // the single component fills shard 0
  EXPECT_EQ(cloud.network().node_owner(cloud.egress_node()), egress);
  EXPECT_EQ(cloud.network().node_owner(client), egress);
  // The driver core follows: external scheduling stays on the owner core.
  EXPECT_EQ(&cloud.simulator(), &cloud.sharded().shard(egress));
  // Externals registered after activation land there directly too.
  const NodeId late =
      cloud.add_external_node("late", [](const net::Packet&) {});
  EXPECT_EQ(cloud.network().node_owner(late), egress);
}

TEST(CloudSharded, RejectsNonPositiveShardCount) {
  CloudConfig cfg = sharded_config(0);
  EXPECT_THROW(Cloud{cfg}, ContractViolation);
}

}  // namespace
}  // namespace stopwatch::core
