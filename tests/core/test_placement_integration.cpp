// Capstone integration: deploy a whole cloud from a Theorem 2 placement —
// n machines, k guest VMs, replicas placed as edge-disjoint triangles —
// and verify that every VM runs, stays deterministic, and that the
// placement constraint (no two VMs share more than one machine) holds as
// the paper requires.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/cloud.hpp"
#include "placement/placement.hpp"
#include "workload/timing.hpp"

namespace stopwatch::core {
namespace {

TEST(PlacementIntegration, Theorem2CloudRunsAllVms) {
  const int n = 9;
  const int c = 4;
  const auto triangles = placement::theorem2_placement(n, c);
  ASSERT_EQ(triangles.size(), 12u);  // (1/3)*4*9
  ASSERT_TRUE(placement::valid_placement(triangles, n, c));

  CloudConfig cfg;
  cfg.seed = 14;
  cfg.machine_count = n;
  Cloud cloud(cfg);

  std::vector<VmHandle> vms;
  for (const auto& t : triangles) {
    vms.push_back(cloud.add_vm(
        "vm" + std::to_string(vms.size()),
        [] { return std::make_unique<workload::AttackerProbeProgram>(); },
        {t.a, t.b, t.c}));
  }
  // Broadcast a packet stream at the first few VMs.
  std::vector<std::unique_ptr<workload::BackgroundBroadcaster>> casts;
  for (int i = 0; i < 4; ++i) {
    casts.push_back(std::make_unique<workload::BackgroundBroadcaster>(
        cloud, "bcast" + std::to_string(i),
        cloud.vm_addr(vms[static_cast<std::size_t>(i)]), 40.0,
        static_cast<std::uint64_t>(100 + i)));
  }
  cloud.start();
  for (auto& b : casts) b->start();
  cloud.run_for(Duration::seconds(3));
  cloud.halt_all();

  // Every VM executed and stayed deterministic.
  for (std::size_t i = 0; i < vms.size(); ++i) {
    EXPECT_TRUE(cloud.replicas_deterministic(vms[i])) << "vm " << i;
    EXPECT_GT(cloud.replica(vms[i], 0).instr(), 1'000'000u) << "vm " << i;
  }
  // The probed VMs observed traffic.
  for (int i = 0; i < 4; ++i) {
    auto& probe = static_cast<workload::AttackerProbeProgram&>(
        cloud.replica(vms[static_cast<std::size_t>(i)], 0).program());
    EXPECT_GT(probe.observations_ns().size(), 20u) << "vm " << i;
  }
  EXPECT_EQ(cloud.total_divergences(), 0u);
}

TEST(PlacementIntegration, NonoverlappingCoresidencyHolds) {
  // The StopWatch constraint, stated directly: any two VMs' replica sets
  // share at most one machine (edge-disjoint triangles).
  const auto triangles = placement::theorem2_placement(15, 7);
  for (std::size_t i = 0; i < triangles.size(); ++i) {
    for (std::size_t j = i + 1; j < triangles.size(); ++j) {
      const std::set<int> a{triangles[i].a, triangles[i].b, triangles[i].c};
      const std::set<int> b{triangles[j].a, triangles[j].b, triangles[j].c};
      int shared = 0;
      for (int m : a) shared += b.count(m) > 0 ? 1 : 0;
      ASSERT_LE(shared, 1) << "VMs " << i << " and " << j;
    }
  }
}

}  // namespace
}  // namespace stopwatch::core
