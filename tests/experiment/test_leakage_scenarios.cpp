// The leakage scenarios through the registry: the paper-shape acceptance
// properties (capacity falls with replica count and matches the analytic
// order-statistics channel; aggregated observations track the logarithmic
// bound), per-workload bits metrics, --jobs byte-identity, and the
// detection scenarios' new binning knob.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/contracts.hpp"
#include "experiment/registry.hpp"
#include "experiment/result.hpp"
#include "experiment/runner.hpp"

namespace stopwatch::experiment {
namespace {

TEST(LeakageScenarios, RegisteredWithBinningKnob) {
  const auto& registry = ScenarioRegistry::instance();
  for (const std::string name : {"leakage_capacity", "leakage_workloads"}) {
    const Scenario* s = registry.find(name);
    ASSERT_NE(s, nullptr) << name;
    EXPECT_TRUE(s->deterministic) << name;
    bool has_binning = false;
    for (const ParamSpec& p : s->params) {
      if (p.name == "binning") {
        has_binning = true;
        EXPECT_EQ(p.kind, ParamSpec::Kind::kEnum);
        EXPECT_EQ(p.choices_joined(), "fixed|adaptive|sturges");
      }
    }
    EXPECT_TRUE(has_binning) << name;
  }
}

/// One shared smoke run: several tests assert on different facets of the
/// same deterministic result, and sanitizer jobs should not pay for the
/// Monte-Carlo sampling more than once.
const Result& capacity_smoke_result() {
  static const Result r = ScenarioRegistry::instance().run(
      "leakage_capacity", /*seed=*/7, /*smoke=*/true);
  return r;
}

TEST(LeakageScenarios, CapacityFallsWithReplicasAndMatchesAnalyticBound) {
  const Result& r = capacity_smoke_result();
  // The headline acceptance property: replication shrinks the channel.
  EXPECT_GT(r.metric("capacity_bits_r1"), r.metric("capacity_bits_r3"));
  EXPECT_GT(r.metric("capacity_bits_r3"), r.metric("capacity_bits_r5"));
  EXPECT_EQ(r.metric("capacity_decreases_with_replicas"), 1.0);
  // Debiased measurements sit within tolerance of the analytic
  // order-statistics channel (relative, with a 0.02-bit floor for the
  // noise-dominated r = 5 channel).
  EXPECT_LT(r.metric("max_capacity_rel_error"), 0.40);
  // The channel genuinely exists (r = 1 leaks a measurable fraction of a
  // bit under the default load spread) and the analytic values agree in
  // ordering too.
  EXPECT_GT(r.metric("capacity_bits_r1"), 0.1);
  EXPECT_GT(r.metric("analytic_capacity_bits_r1"),
            r.metric("analytic_capacity_bits_r3"));
  EXPECT_GT(r.metric("analytic_capacity_bits_r3"),
            r.metric("analytic_capacity_bits_r5"));
}

TEST(LeakageScenarios, AggregatedObservationsTrackLogarithmicBound) {
  const Result& r = capacity_smoke_result();
  // More observations never lose bits, gains stay under the Gaussian
  // 1/2 log2(1 + n SNR) bound (modulo estimator slack), and the ladder
  // never exceeds the secret's entropy.
  EXPECT_EQ(r.metric("mi_vs_obs_nondecreasing"), 1.0);
  EXPECT_LT(r.metric("max_excess_over_bound"), 0.12);
  EXPECT_GT(r.metric("mi_at_max_obs"), r.metric("mi_at_1_obs"));
  EXPECT_LE(r.metric("mi_at_max_obs"), r.metric("secret_entropy") + 1e-9);
}

TEST(LeakageScenarios, WorkloadsReportBitsPerWorkloadAndPolicy) {
  const Result r = ScenarioRegistry::instance().run(
      "leakage_workloads", /*seed=*/7, /*smoke=*/true);
  for (const std::string w : {"file", "nfs", "parsec"}) {
    for (const std::string p : {"baseline", "stopwatch"}) {
      EXPECT_GT(r.metric("observations_" + w + "_" + p), 0.0) << w << p;
      const double mi = r.metric("mi_bits_" + w + "_" + p);
      EXPECT_GE(mi, 0.0) << w << p;
      // file/nfs have 3 classes, parsec 2 — H(C) caps the estimate.
      EXPECT_LE(mi, w == "parsec" ? 1.0 + 1e-9 : std::log2(3.0) + 1e-9)
          << w << p;
    }
  }
}

TEST(LeakageScenarios, WorkloadShardCountsByteIdentical) {
  // The sim_shards knob spread to leakage_workloads: every per-workload
  // cloud runs on the configured simulator cores, and the report stays
  // byte-identical outside the stamped parameter and the observability
  // block (whose memory gauges are not shard-dependent here, but the
  // block is stripped for symmetry with placement_e2e).
  const auto run_with = [](const std::string& shards) {
    Result r = ScenarioRegistry::instance().run(
        "leakage_workloads", /*seed=*/13, /*smoke=*/true,
        {{"trials_per_class", "3"},
         {"parsec_trials", "2"},
         {"nfs_window_s", "0.3"},
         {"nfs_rounds", "1"},
         {"sim_shards", shards}});
    std::string json = r.to_json();
    const std::string block = ",\n  \"observability\"";
    const std::size_t block_at = json.find(block);
    EXPECT_NE(block_at, std::string::npos);
    if (block_at != std::string::npos) {
      json.erase(block_at);
      json += "\n}";
    }
    const std::string stamp = "\"sim_shards\": " + shards;
    const std::size_t at = json.find(stamp);
    EXPECT_NE(at, std::string::npos) << json.substr(0, 400);
    json.replace(at, stamp.size(), "\"sim_shards\": _");
    return json;
  };
  const std::string one = run_with("1");
  const std::string three = run_with("3");
  EXPECT_EQ(one, three);
}

TEST(LeakageScenarios, JobsEightByteIdenticalToSequential) {
  const auto& registry = ScenarioRegistry::instance();
  std::vector<const Scenario*> selected = {
      registry.find("leakage_capacity"), registry.find("leakage_workloads")};
  ASSERT_NE(selected[0], nullptr);
  ASSERT_NE(selected[1], nullptr);
  const auto sequential =
      run_scenarios(selected, {}, /*seed=*/9, /*smoke=*/true, /*jobs=*/1);
  const auto parallel =
      run_scenarios(selected, {}, /*seed=*/9, /*smoke=*/true, /*jobs=*/8);
  ASSERT_EQ(sequential.size(), 2u);
  ASSERT_EQ(parallel.size(), 2u);
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    ASSERT_TRUE(sequential[i].ok) << sequential[i].error;
    ASSERT_TRUE(parallel[i].ok) << parallel[i].error;
    EXPECT_EQ(sequential[i].result.to_json(), parallel[i].result.to_json());
  }
}

TEST(DetectionBinningKnob, ChoicesChangeTheDetectorAndStampTheJson) {
  // Short runs: the knob test needs identical samples per layout, not a
  // full Fig. 4 reproduction.
  const auto& registry = ScenarioRegistry::instance();
  const Result adaptive =
      registry.run("fig4_interpacket", /*seed=*/5,
                   /*smoke=*/true, {{"run_time_s", "2"}});
  const Result fixed =
      registry.run("fig4_interpacket", /*seed=*/5,
                   /*smoke=*/true,
                   {{"run_time_s", "2"}, {"binning", "fixed"}});
  const Result sturges =
      registry.run("fig4_interpacket", /*seed=*/5,
                   /*smoke=*/true,
                   {{"run_time_s", "2"}, {"binning", "sturges"}});
  EXPECT_NE(adaptive.to_json().find("\"binning\": \"adaptive\""),
            std::string::npos);
  EXPECT_NE(fixed.to_json().find("\"binning\": \"fixed\""),
            std::string::npos);
  // The cell layout feeds the noncentrality, so the observations-needed
  // figures must respond to the knob (identical samples either way).
  EXPECT_NE(fixed.metric("obs99_with_stopwatch"),
            adaptive.metric("obs99_with_stopwatch"));
  EXPECT_NE(sturges.metric("obs99_with_stopwatch"),
            adaptive.metric("obs99_with_stopwatch"));
}

TEST(DetectionBinningKnob, InvalidChoiceIsRejectedUpFront) {
  EXPECT_THROW(static_cast<void>(ScenarioRegistry::instance().run(
                   "fig4_interpacket", /*seed=*/5, /*smoke=*/true,
                   {{"binning", "scott"}})),
               ContractViolation);
}

TEST(DetectionBinningKnob, AllDetectionScenariosDeclareIt) {
  const auto& registry = ScenarioRegistry::instance();
  for (const std::string name :
       {"fig4_interpacket", "collab_attackers", "ablation_aggregation",
        "ablation_epoch_resync"}) {
    const Scenario* s = registry.find(name);
    ASSERT_NE(s, nullptr) << name;
    bool found = false;
    for (const ParamSpec& p : s->params) {
      if (p.name == "binning" && p.kind == ParamSpec::Kind::kEnum) {
        found = true;
        EXPECT_EQ(p.default_choice, "adaptive") << name;
      }
    }
    EXPECT_TRUE(found) << name;
  }
}

}  // namespace
}  // namespace stopwatch::experiment
