// The policy_matrix scenario and the --param policy=... knob: registration,
// the per-policy metric table, --jobs byte-identity, and the policy knob's
// effect on the scenarios that declare it.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/contracts.hpp"
#include "experiment/registry.hpp"
#include "experiment/result.hpp"
#include "experiment/runner.hpp"
#include "hypervisor/policy.hpp"

namespace stopwatch::experiment {
namespace {

const std::vector<std::string> kChoices = {"baseline", "stopwatch",
                                           "deterland", "tifc"};

TEST(PolicyMatrix, RegisteredAndDeterministic) {
  const Scenario* s = ScenarioRegistry::instance().find("policy_matrix");
  ASSERT_NE(s, nullptr);
  EXPECT_TRUE(s->deterministic);
}

/// One shared smoke run (the matrix runs eight clouds plus four channel
/// simulations; sanitizer jobs should pay for it once).
const Result& matrix_smoke_result() {
  static const Result r = ScenarioRegistry::instance().run(
      "policy_matrix", /*seed=*/7, /*smoke=*/true);
  return r;
}

TEST(PolicyMatrix, EmitsTheFullTableForAllFourPolicies) {
  const Result& r = matrix_smoke_result();
  for (const std::string& c : kChoices) {
    EXPECT_GT(r.metric("obs99_" + c), 0.0) << c;
    EXPECT_GE(r.metric("bits_per_epoch_" + c), 0.0) << c;
    EXPECT_GT(r.metric("latency_ms_" + c), 0.0) << c;
    EXPECT_GT(r.metric("egress_releases_per_s_" + c), 0.0) << c;
    // Overhead is relative to the baseline row, which itself is 0.
    (void)r.metric("latency_overhead_" + c);
  }
  EXPECT_EQ(r.metric("latency_overhead_baseline"), 0.0);
  // The headline ordering: StopWatch's replicated median makes detection
  // strictly harder than unmodified Xen.
  EXPECT_GT(r.metric("obs99_stopwatch"), r.metric("obs99_baseline"));
}

TEST(PolicyMatrix, JobsEightByteIdenticalToSequential) {
  const auto& registry = ScenarioRegistry::instance();
  std::vector<const Scenario*> selected = {registry.find("policy_matrix")};
  ASSERT_NE(selected[0], nullptr);
  const auto sequential =
      run_scenarios(selected, {}, /*seed=*/9, /*smoke=*/true, /*jobs=*/1);
  const auto parallel =
      run_scenarios(selected, {}, /*seed=*/9, /*smoke=*/true, /*jobs=*/8);
  ASSERT_EQ(sequential.size(), 1u);
  ASSERT_EQ(parallel.size(), 1u);
  ASSERT_TRUE(sequential[0].ok) << sequential[0].error;
  ASSERT_TRUE(parallel[0].ok) << parallel[0].error;
  EXPECT_EQ(sequential[0].result.to_json(), parallel[0].result.to_json());
}

TEST(PolicyKnob, DeclaredWithAllFourChoicesWhereRequired) {
  const auto& registry = ScenarioRegistry::instance();
  for (const std::string name :
       {"fig4_interpacket", "leakage_capacity", "leakage_workloads"}) {
    const Scenario* s = registry.find(name);
    ASSERT_NE(s, nullptr) << name;
    bool found = false;
    for (const ParamSpec& p : s->params) {
      if (p.name == "policy") {
        found = true;
        EXPECT_EQ(p.kind, ParamSpec::Kind::kEnum) << name;
        EXPECT_EQ(p.default_choice, "stopwatch") << name;
        EXPECT_EQ(p.choices_joined(), "baseline|stopwatch|deterland|tifc")
            << name;
      }
    }
    EXPECT_TRUE(found) << name;
  }
}

TEST(PolicyKnob, SelectsTheMitigatedArm) {
  // Short runs; the knob must change the mitigated arm's behaviour and
  // stamp the JSON, while the default reproduces the stopwatch arm.
  const auto& registry = ScenarioRegistry::instance();
  const Result def = registry.run("fig4_interpacket", /*seed=*/5,
                                  /*smoke=*/true, {{"run_time_s", "2"}});
  const Result tifc =
      registry.run("fig4_interpacket", /*seed=*/5, /*smoke=*/true,
                   {{"run_time_s", "2"}, {"policy", "tifc"}});
  EXPECT_NE(def.to_json().find("\"policy\": \"stopwatch\""),
            std::string::npos);
  EXPECT_NE(tifc.to_json().find("\"policy\": \"tifc\""), std::string::npos);
  // TIFC delivers inbound packets immediately (real clock), so the
  // mitigated arm's timing differs from the stopwatch arm's. Compare a
  // continuous timing metric, not a sample count — counts over a short
  // run can coincide by luck across policies.
  EXPECT_NE(tifc.metric("inter_arrival_stopwatch_victim_mean"),
            def.metric("inter_arrival_stopwatch_victim_mean"));
  EXPECT_THROW(static_cast<void>(registry.run(
                   "fig4_interpacket", /*seed=*/5, /*smoke=*/true,
                   {{"policy", "xen"}})),
               ContractViolation);
}

TEST(PolicyKnob, WorkloadMetricNamesFollowTheChoice) {
  const auto& registry = ScenarioRegistry::instance();
  const Result r = registry.run(
      "leakage_workloads", /*seed=*/7, /*smoke=*/true,
      {{"trials_per_class", "3"}, {"parsec_trials", "2"},
       {"nfs_rounds", "1"}, {"nfs_window_s", "0.3"},
       {"policy", "deterland"}});
  for (const std::string w : {"file", "nfs", "parsec"}) {
    EXPECT_GE(r.metric("mi_bits_" + w + "_deterland"), 0.0) << w;
    EXPECT_GT(r.metric("observations_" + w + "_baseline"), 0.0) << w;
  }
  EXPECT_GE(r.metric("max_deterland_mi"), 0.0);
}

}  // namespace
}  // namespace stopwatch::experiment
