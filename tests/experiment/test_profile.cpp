// The self-profiling acceptance contract, end to end: an armed profiler
// over placement_e2e attributes >= 90% of the measured wall time to named
// phases; the profile block's *schema* (names/structure, digits aside) is
// identical across sim_shards and --jobs; the deterministic `timeseries`
// block is byte-identical across those knobs; the memory-accounting
// gauges are populated; and the leakage_workloads MI series stays inside
// its fixed window budget on a 10x-horizon run.
#include <gtest/gtest.h>

#include <cctype>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "experiment/registry.hpp"
#include "experiment/result.hpp"
#include "experiment/runner.hpp"
#include "obs/profiler.hpp"

namespace stopwatch::experiment {
namespace {

const ParamOverrides kSmallPlacement = {{"machines", "99"},
                                        {"driven_vms", "8"},
                                        {"run_time_s", "0.4"},
                                        {"pair_samples", "2000"}};

TEST(Profile, AttributesAtLeastNinetyPercentOfPlacementE2eWall) {
  obs::Profiler profiler;
  obs::Profiler* const previous = obs::active_profiler();
  obs::set_active_profiler(&profiler);
  profiler.arm();
  const auto t0 = std::chrono::steady_clock::now();
  const Result r = ScenarioRegistry::instance().run(
      "placement_e2e", /*seed=*/11, /*smoke=*/true, kSmallPlacement);
  const auto t1 = std::chrono::steady_clock::now();
  profiler.disarm();
  obs::set_active_profiler(previous);
  ASSERT_FALSE(r.metrics().empty());

  const auto wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  const obs::ProfilerSnapshot snap = profiler.snapshot();
  const std::uint64_t attributed = snap.attributed_ns();
  EXPECT_GE(static_cast<double>(attributed),
            0.90 * static_cast<double>(wall_ns))
      << "attributed " << attributed << " of wall " << wall_ns << " ("
      << 100.0 * static_cast<double>(attributed) /
             static_cast<double>(wall_ns)
      << "%)";
  // Attribution is self-time based, so it can never exceed the wall.
  EXPECT_LE(attributed, wall_ns);
  // The load-bearing phases all fired.
  for (const char* phase :
       {"cloud.run", "sim.harvest", "scenario.setup", "scenario.drive",
        "scenario.analysis", "scenario.placement", "policy.release"}) {
    std::size_t index = 0;
    for (; index < obs::kProfPhaseCount; ++index) {
      if (std::string(obs::kProfPhases[index]) == phase) break;
    }
    EXPECT_GT(snap.phases[index].calls, 0u) << phase;
  }
}

/// Digit runs replaced by '#': what remains is the schema — field names,
/// phase names, structure, punctuation — with every measurement erased.
std::string schema_shape(const std::string& json) {
  std::string out;
  bool in_digits = false;
  for (const char c : json) {
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      if (!in_digits) out += '#';
      in_digits = true;
    } else {
      in_digits = false;
      out += c;
    }
  }
  return out;
}

/// Runs placement_e2e under an armed profiler and returns the profile
/// JSON (wall/RSS values are measurements — callers compare shapes).
std::string profile_json_of(const std::string& shards, std::uint64_t jobs) {
  obs::Profiler profiler;
  obs::Profiler* const previous = obs::active_profiler();
  obs::set_active_profiler(&profiler);
  profiler.arm();
  ParamOverrides overrides = kSmallPlacement;
  overrides["sim_shards"] = shards;
  const Scenario* scenario = ScenarioRegistry::instance().find("placement_e2e");
  EXPECT_NE(scenario, nullptr);
  const auto outcomes =
      run_scenarios({scenario}, overrides, /*seed=*/11, /*smoke=*/true, jobs);
  profiler.disarm();
  obs::set_active_profiler(previous);
  EXPECT_EQ(outcomes.size(), 1u);
  for (const auto& o : outcomes) EXPECT_TRUE(o.ok) << o.error;
  return obs::profile_to_json(profiler.snapshot(), /*wall_ns=*/1,
                              obs::process_rss_bytes(),
                              obs::process_rss_peak_bytes());
}

TEST(Profile, SchemaIsStableAcrossShardCountsAndJobs) {
  // The values are wall-clock measurements, but the shape — every phase
  // name, field, and separator — must not know how many simulator shards
  // or runner jobs produced it.
  const std::string one = schema_shape(profile_json_of("1", /*jobs=*/1));
  const std::string four = schema_shape(profile_json_of("4", /*jobs=*/1));
  const std::string pooled = schema_shape(profile_json_of("1", /*jobs=*/8));
  EXPECT_EQ(one, four);
  EXPECT_EQ(one, pooled);
  EXPECT_NE(one.find("\"schema\": \"stopwatch-profile/#\""),
            std::string::npos);
}

/// The serialized `timeseries` block of a small placement_e2e run.
std::string timeseries_block_of(const std::string& shards,
                                std::uint64_t jobs) {
  ParamOverrides overrides = kSmallPlacement;
  overrides["sim_shards"] = shards;
  const Scenario* scenario = ScenarioRegistry::instance().find("placement_e2e");
  EXPECT_NE(scenario, nullptr);
  const auto outcomes =
      run_scenarios({scenario}, overrides, /*seed=*/11, /*smoke=*/true, jobs);
  EXPECT_EQ(outcomes.size(), 1u);
  for (const auto& o : outcomes) EXPECT_TRUE(o.ok) << o.error;
  const std::string json = outcomes[0].result.to_json();
  const std::size_t begin = json.find("\"timeseries\"");
  EXPECT_NE(begin, std::string::npos);
  // The block is serialized immediately before `observability` (or the
  // closing brace), so slicing up to that marker isolates it.
  std::size_t end = json.find("\"observability\"", begin);
  if (end == std::string::npos) end = json.size();
  return json.substr(begin, end - begin);
}

TEST(Profile, TimeSeriesBlockByteIdenticalAcrossShardsAndJobs) {
  // Unlike the profile (wall measurements) and `observability`
  // (shard-dependent counters), the sim-time-keyed rollups are fully
  // deterministic: same bytes on 1 and 4 shards, inline and pooled.
  const std::string one = timeseries_block_of("1", /*jobs=*/1);
  const std::string four = timeseries_block_of("4", /*jobs=*/1);
  const std::string pooled = timeseries_block_of("4", /*jobs=*/8);
  EXPECT_EQ(one, four);
  EXPECT_EQ(four, pooled);
  EXPECT_NE(one.find("egress.release_latency_ns"), std::string::npos);
  EXPECT_NE(one.find("\"windows\""), std::string::npos);
}

TEST(Profile, MemoryAccountingGaugesArePopulated) {
  const Result r = ScenarioRegistry::instance().run(
      "placement_e2e", /*seed=*/7, /*smoke=*/true, kSmallPlacement);
  const auto& snap = r.observability();
  ASSERT_FALSE(snap.empty());
  const auto gauge = [&](const std::string& name) -> std::uint64_t {
    for (const auto& [n, v] : snap.gauges) {
      if (n == name) return v;
    }
    ADD_FAILURE() << "missing gauge " << name;
    return 0;
  };
  EXPECT_GT(gauge("mem.arena_bytes"), 0u);
  EXPECT_GT(gauge("mem.live_events_highwater"), 0u);
  EXPECT_GT(gauge("mem.due_highwater"), 0u);
  // The gauges serialize inside the observability block.
  EXPECT_NE(r.to_json().find("\"gauges\""), std::string::npos);
}

TEST(Profile, LeakageTimeSeriesStaysInBudgetOnTenTimesHorizon) {
  // leakage_workloads' default NFS window is 0.7 simulated seconds; a 10x
  // horizon must coarsen the MI-observation series instead of growing it.
  // Budget: 64 windows (see leakage_workloads.cpp), each a fixed-size
  // rollup — so the snapshot itself proves bounded memory.
  const Result r = ScenarioRegistry::instance().run(
      "leakage_workloads", /*seed=*/5, /*smoke=*/true,
      {{"nfs_window_s", "7.0"},
       {"trials_per_class", "20"},
       {"parsec_trials", "2"}});
  ASSERT_FALSE(r.timeseries().empty());
  bool saw_mi_series = false;
  for (const auto& [name, ts] : r.timeseries()) {
    if (name.rfind("mi_observations_us_", 0) == 0) {
      saw_mi_series = true;
      EXPECT_EQ(ts.budget_windows, 64u) << name;
      EXPECT_LE(ts.windows.size(), 64u) << name;
      std::uint64_t total = 0;
      for (const auto& [start, w] : ts.windows) total += w.count;
      EXPECT_GT(total, 0u) << name;
      // Coverage reaches the stretched horizon: the last window starts
      // at or after trial activity near the end of the 10x run.
      EXPECT_GT(ts.window_ns, 0) << name;
    }
  }
  EXPECT_TRUE(saw_mi_series);
}

}  // namespace
}  // namespace stopwatch::experiment
