// Unit tests of the experiment plumbing itself: registry lookup, parameter
// resolution (defaults / smoke values / overrides), the Result model, JSON
// emission, and the stopwatch_bench CLI parser.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>

#include "common/contracts.hpp"
#include "experiment/json.hpp"
#include "experiment/registry.hpp"
#include "experiment/runner.hpp"
#include "experiment/scenario.hpp"

namespace stopwatch::experiment {
namespace {

TEST(Json, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(json_string(std::string(1, '\x01')), "\"\\u0001\"");
}

TEST(Json, NumbersRoundTripShortest) {
  EXPECT_EQ(json_number(0.25), "0.25");
  EXPECT_EQ(json_number(3.0), "3");
  EXPECT_EQ(json_number(static_cast<std::uint64_t>(42)), "42");
  EXPECT_EQ(json_number(std::nan("")), "null");
}

TEST(ScenarioContext, ResolvesDefaultsSmokeAndOverrides) {
  const std::vector<ParamSpec> schema = {
      ParamSpec{"a", "", 10.0, 2.0},
      ParamSpec{"b", "", 5.0},
  };
  const ScenarioContext full(1, /*smoke=*/false, {}, schema);
  EXPECT_EQ(full.param("a"), 10.0);
  EXPECT_EQ(full.param("b"), 5.0);

  const ScenarioContext smoke(1, /*smoke=*/true, {}, schema);
  EXPECT_EQ(smoke.param("a"), 2.0);
  EXPECT_EQ(smoke.param("b"), 5.0);  // smoke value defaults to default_value

  const ScenarioContext overridden(1, /*smoke=*/true, {{"a", "7"}}, schema);
  EXPECT_EQ(overridden.param("a"), 7.0);

  EXPECT_THROW(static_cast<void>(full.param("missing")), ContractViolation);
  EXPECT_THROW(ScenarioContext(1, false, {{"unknown", "1"}}, schema),
               ContractViolation);
  // A numeric knob rejects non-numeric override text at the boundary.
  EXPECT_THROW(ScenarioContext(1, false, {{"a", "fast"}}, schema),
               ContractViolation);
}

TEST(ScenarioContext, ResolvesEnumParameters) {
  const std::vector<ParamSpec> schema = {
      ParamSpec::enumeration("mode", "aggregation rule", "median",
                             {"median", "min", "max"}),
      ParamSpec{"n", "", 4.0, 2.0}.with_int_range(1, 8),
  };
  const ScenarioContext defaulted(1, /*smoke=*/false, {}, schema);
  EXPECT_EQ(defaulted.param_choice("mode"), "median");
  EXPECT_EQ(defaulted.param_int("n"), 4);

  const ScenarioContext overridden(1, false, {{"mode", "max"}}, schema);
  EXPECT_EQ(overridden.param_choice("mode"), "max");
  // Stamped into the Result params as a JSON string, numerics as numbers.
  const auto resolved = overridden.resolved();
  ASSERT_EQ(resolved.size(), 2u);
  EXPECT_EQ(resolved[0].first, "mode");
  EXPECT_EQ(resolved[0].second, "\"max\"");
  EXPECT_EQ(resolved[1].second, "4");

  // Unknown choices are rejected up front, with the valid set named.
  try {
    ScenarioContext(1, false, {{"mode", "mean"}}, schema);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("median|min|max"), std::string::npos)
        << e.what();
  }
  // Kind mismatches fail the contract instead of returning garbage.
  EXPECT_THROW(static_cast<void>(defaulted.param("mode")), ContractViolation);
  EXPECT_THROW(static_cast<void>(defaulted.param_choice("n")),
               ContractViolation);
  // The enum factory rejects a default outside the choice list.
  EXPECT_THROW(static_cast<void>(ParamSpec::enumeration("bad", "", "none",
                                                        {"a", "b"})),
               ContractViolation);
}

TEST(ScenarioContext, RejectsOutOfRangeOverrides) {
  const std::vector<ParamSpec> schema = {
      ParamSpec{"count", "", 5.0, 2.0}.with_range(1, 5),
  };
  EXPECT_EQ(ScenarioContext(1, false, {{"count", "1"}}, schema).param("count"),
            1.0);
  EXPECT_EQ(ScenarioContext(1, false, {{"count", "5"}}, schema).param("count"),
            5.0);
  // A count knob without bounds would index an empty or out-of-bounds
  // vector inside the scenario; the context must reject it up front.
  EXPECT_THROW(ScenarioContext(1, false, {{"count", "0"}}, schema),
               ContractViolation);
  EXPECT_THROW(ScenarioContext(1, false, {{"count", "-1"}}, schema),
               ContractViolation);
  EXPECT_THROW(ScenarioContext(1, false, {{"count", "6"}}, schema),
               ContractViolation);
  // with_range itself rejects a schema whose defaults violate the range.
  EXPECT_THROW(static_cast<void>(ParamSpec{"bad", "", 9.0}.with_range(1, 5)),
               ContractViolation);
}

TEST(ScenarioContext, RejectsFractionalOverridesOfIntegralParams) {
  const std::vector<ParamSpec> schema = {
      ParamSpec{"n", "", 4.0, 2.0}.with_int_range(1, 8),
  };
  EXPECT_EQ(ScenarioContext(1, false, {{"n", "3"}}, schema).param_int("n"), 3);
  // Integral knobs feed param_int; a fractional override would fail deep
  // inside the scenario instead of at the boundary.
  EXPECT_THROW(ScenarioContext(1, false, {{"n", "2.5"}}, schema),
               ContractViolation);
  EXPECT_THROW(
      static_cast<void>(ParamSpec{"bad", "", 1.5}.with_int_range(1, 5)),
      ContractViolation);
}

TEST(Result, MetricsRejectDuplicatesAndLookupWorks) {
  Result r("x");
  r.add_metric("m", 1.0, "ms");
  EXPECT_TRUE(r.has_metric("m"));
  EXPECT_EQ(r.metric("m"), 1.0);
  EXPECT_THROW(r.add_metric("m", 2.0), ContractViolation);
  EXPECT_THROW(static_cast<void>(r.metric("absent")), ContractViolation);
}

TEST(Registry, FindAndListAreConsistent) {
  const auto& registry = ScenarioRegistry::instance();
  const auto all = registry.list();
  EXPECT_EQ(all.size(), registry.size());
  for (const Scenario* s : all) {
    EXPECT_EQ(registry.find(s->name), s);
  }
  EXPECT_EQ(registry.find("definitely_not_registered"), nullptr);
  // List is name-sorted so link order cannot leak into --list / reports.
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i - 1]->name, all[i]->name);
  }
}

TEST(RunnerCli, ParsesTheCiInvocation) {
  const char* argv[] = {"stopwatch_bench", "--smoke", "--json",
                        "bench_smoke.json", "--quiet"};
  RunnerOptions options;
  std::string error;
  ASSERT_TRUE(parse_runner_options(5, argv, options, error)) << error;
  EXPECT_TRUE(options.smoke);
  EXPECT_TRUE(options.quiet);
  EXPECT_EQ(options.json_path, "bench_smoke.json");
  EXPECT_TRUE(options.scenarios.empty());
}

TEST(RunnerCli, ParsesScenarioSeedAndParams) {
  const char* argv[] = {"stopwatch_bench", "--scenario", "fig4_interpacket",
                        "--seed", "9", "--param", "run_time_s=2.5"};
  RunnerOptions options;
  std::string error;
  ASSERT_TRUE(parse_runner_options(7, argv, options, error)) << error;
  ASSERT_EQ(options.scenarios.size(), 1u);
  EXPECT_EQ(options.scenarios[0], "fig4_interpacket");
  EXPECT_EQ(options.seed, 9u);
  ASSERT_EQ(options.param_overrides.size(), 1u);
  EXPECT_EQ(options.param_overrides[0].first, "run_time_s");
  EXPECT_EQ(options.param_overrides[0].second, "2.5");
}

TEST(RunnerCli, ParsesEnumParamValues) {
  const char* argv[] = {"stopwatch_bench", "--scenario",
                        "ablation_aggregation", "--param",
                        "aggregation=median"};
  RunnerOptions options;
  std::string error;
  ASSERT_TRUE(parse_runner_options(5, argv, options, error)) << error;
  ASSERT_EQ(options.param_overrides.size(), 1u);
  EXPECT_EQ(options.param_overrides[0].first, "aggregation");
  EXPECT_EQ(options.param_overrides[0].second, "median");
  // An empty value is malformed, like a missing '='.
  const char* empty_value[] = {"stopwatch_bench", "--param", "aggregation="};
  EXPECT_FALSE(parse_runner_options(3, empty_value, options, error));
}

TEST(RunnerCli, ParsesJobs) {
  RunnerOptions options;
  std::string error;
  const char* argv[] = {"stopwatch_bench", "--smoke", "--jobs", "8"};
  ASSERT_TRUE(parse_runner_options(4, argv, options, error)) << error;
  EXPECT_EQ(options.jobs, 8u);
  const char* all_cores[] = {"stopwatch_bench", "--smoke", "--jobs", "0"};
  ASSERT_TRUE(parse_runner_options(4, all_cores, options, error)) << error;
  EXPECT_EQ(options.jobs, 0u);
}

TEST(RunnerCli, RejectsMalformedInput) {
  RunnerOptions options;
  std::string error;
  const char* bad_flag[] = {"stopwatch_bench", "--frobnicate"};
  EXPECT_FALSE(parse_runner_options(2, bad_flag, options, error));
  const char* bad_seed[] = {"stopwatch_bench", "--seed", "banana"};
  EXPECT_FALSE(parse_runner_options(3, bad_seed, options, error));
  const char* bad_param[] = {"stopwatch_bench", "--param", "novalue"};
  EXPECT_FALSE(parse_runner_options(3, bad_param, options, error));
  const char* missing[] = {"stopwatch_bench", "--scenario"};
  EXPECT_FALSE(parse_runner_options(2, missing, options, error));
  // --jobs must fail cleanly on garbage and on negatives — an atoi-style
  // fallback would wrap -1 into a huge thread count.
  const char* negative_jobs[] = {"stopwatch_bench", "--jobs", "-1"};
  EXPECT_FALSE(parse_runner_options(3, negative_jobs, options, error));
  EXPECT_NE(error.find("--jobs"), std::string::npos);
  const char* garbage_jobs[] = {"stopwatch_bench", "--jobs", "abc"};
  EXPECT_FALSE(parse_runner_options(3, garbage_jobs, options, error));
  const char* fractional_jobs[] = {"stopwatch_bench", "--jobs", "2.5"};
  EXPECT_FALSE(parse_runner_options(3, fractional_jobs, options, error));
  const char* jobs_missing[] = {"stopwatch_bench", "--jobs"};
  EXPECT_FALSE(parse_runner_options(2, jobs_missing, options, error));
}

}  // namespace
}  // namespace stopwatch::experiment
