// The placement-scale end-to-end scenario: its measured co-residence and
// utilization must agree with the analytic placement_utilization numbers,
// lazy wiring must only pay for driven VMs, and — like every deterministic
// scenario — its JSON must be byte-identical across reruns and --jobs
// settings.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "experiment/registry.hpp"
#include "experiment/result.hpp"
#include "experiment/runner.hpp"

namespace stopwatch::experiment {
namespace {

TEST(PlacementE2e, SmokeRunCrossChecksAnalyticPlacement) {
  const Result r =
      ScenarioRegistry::instance().run("placement_e2e", /*seed=*/7,
                                       /*smoke=*/true);
  // n = 501 end to end, at the full Θ(n²) placement.
  EXPECT_EQ(r.metric("machines"), 501.0);
  EXPECT_EQ(r.metric("vms_placed"), 41750.0);
  EXPECT_EQ(r.metric("placement_valid"), 1.0);

  // Agreement with the analytic placement_utilization quantities: the
  // constructed improvement factor hits the Theorem 2 bound exactly, and
  // the sampled co-residence probability lands within the scenario's
  // stated 25% relative tolerance of the occupancy-exact value.
  EXPECT_EQ(r.metric("agrees_with_placement_utilization"), 1.0);
  EXPECT_EQ(r.metric("coresidence_within_tolerance"), 1.0);
  EXPECT_NEAR(r.metric("coresidence_measured"),
              r.metric("coresidence_analytic"),
              0.25 * r.metric("coresidence_analytic"));

  // And the same number placement_utilization itself reports at n = 501.
  const Result analytic = ScenarioRegistry::instance().run(
      "placement_utilization", /*seed=*/7, /*smoke=*/false);
  EXPECT_DOUBLE_EQ(r.metric("improvement_over_isolation"),
                   analytic.metric("improvement_over_isolation_at_largest_n"));

  // End-to-end pipeline health over the driven sample.
  EXPECT_GT(r.metric("replies_received"), 0.0);
  EXPECT_EQ(r.metric("replies_received"), r.metric("egress_packets_released"));
  EXPECT_EQ(r.metric("driven_replica_placement_errors"), 0.0);
  EXPECT_EQ(r.metric("nondeterministic_vms"), 0.0);
  EXPECT_EQ(r.metric("divergences"), 0.0);

  // Lazy wiring: only the driven sample materialized replicas.
  EXPECT_EQ(r.metric("lazy_materialized_only_driven"), 1.0);
  EXPECT_EQ(r.metric("materialized_vms"), r.metric("driven_vms"));
}

TEST(PlacementE2e, JobsZeroByteIdenticalToSequential) {
  // The satellite guarantee: running placement_e2e alongside siblings on
  // the thread pool (--jobs 0 = hardware threads) serializes to exactly
  // the bytes of the sequential run.
  const std::vector<std::string> names = {
      "fig2_protocol_trace", "placement_e2e", "placement_utilization"};
  std::vector<const Scenario*> selected;
  for (const std::string& name : names) {
    const Scenario* s = ScenarioRegistry::instance().find(name);
    ASSERT_NE(s, nullptr) << name;
    selected.push_back(s);
  }
  const auto report_of = [](const std::vector<ScenarioOutcome>& outcomes) {
    std::vector<Result> results;
    for (const ScenarioOutcome& o : outcomes) {
      if (o.ok) results.push_back(o.result);
    }
    return report_to_json(results);
  };
  const auto sequential =
      run_scenarios(selected, {}, /*seed=*/3, /*smoke=*/true, /*jobs=*/1);
  const auto parallel =
      run_scenarios(selected, {}, /*seed=*/3, /*smoke=*/true, /*jobs=*/0);
  for (const auto& o : sequential) EXPECT_TRUE(o.ok) << o.error;
  for (const auto& o : parallel) EXPECT_TRUE(o.ok) << o.error;
  EXPECT_EQ(report_of(sequential), report_of(parallel));
}

TEST(PlacementE2e, ShardCountsByteIdentical) {
  // The PR 7 tentpole guarantee end to end: the same cloud on four
  // simulator cores serializes to exactly the bytes of the sequential run
  // — only the stamped sim_shards parameter and the `observability` block
  // (whose counters are shard-count-dependent by design) may differ.
  const auto run_with = [](const std::string& shards) {
    Result r = ScenarioRegistry::instance().run(
        "placement_e2e", /*seed=*/11, /*smoke=*/true,
        {{"machines", "99"},
         {"driven_vms", "8"},
         {"run_time_s", "0.4"},
         {"pair_samples", "2000"},
         {"sim_shards", shards}});
    std::string json = r.to_json();
    const std::string block = ",\n  \"observability\"";
    const std::size_t block_at = json.find(block);
    EXPECT_NE(block_at, std::string::npos);
    if (block_at != std::string::npos) {
      json.erase(block_at);
      json += "\n}";
    }
    const std::string stamp = "\"sim_shards\": " + shards;
    const std::size_t at = json.find(stamp);
    EXPECT_NE(at, std::string::npos) << json.substr(0, 400);
    json.replace(at, stamp.size(), "\"sim_shards\": _");
    return json;
  };
  const std::string one = run_with("1");
  const std::string four = run_with("4");
  EXPECT_EQ(one, four);
}

TEST(PlacementE2e, WindowPoliciesByteIdentical) {
  // The PR 10 tentpole guarantee: the adaptive barrier window changes how
  // far each window reaches, never what executes in it — fixed and
  // adaptive runs of the same sharded cloud serialize to the same bytes
  // outside the stamped parameter and the observability block.
  const auto run_with = [](const std::string& policy) {
    Result r = ScenarioRegistry::instance().run(
        "placement_e2e", /*seed=*/11, /*smoke=*/true,
        {{"machines", "99"},
         {"driven_vms", "8"},
         {"run_time_s", "0.4"},
         {"pair_samples", "2000"},
         {"sim_shards", "4"},
         {"shard_window", policy}});
    std::string json = r.to_json();
    const std::string block = ",\n  \"observability\"";
    const std::size_t block_at = json.find(block);
    EXPECT_NE(block_at, std::string::npos);
    if (block_at != std::string::npos) {
      json.erase(block_at);
      json += "\n}";
    }
    const std::string stamp = "\"shard_window\": \"" + policy + "\"";
    const std::size_t at = json.find(stamp);
    EXPECT_NE(at, std::string::npos) << json.substr(0, 400);
    json.replace(at, stamp.size(), "\"shard_window\": _");
    return json;
  };
  const std::string fixed = run_with("fixed");
  const std::string adaptive = run_with("adaptive");
  EXPECT_EQ(fixed, adaptive);
}

TEST(PlacementE2e, AdaptiveWindowCutsBarriersThreefold) {
  // The perf claim behind the adaptive default, asserted on the scenario's
  // own observability counters: on the 4-core smoke run the adaptive bound
  // crosses idle stretches in one window, cutting barrier count >= 3x
  // while executing the same events.
  const auto counters_with = [](const std::string& policy) {
    const Result r = ScenarioRegistry::instance().run(
        "placement_e2e", /*seed=*/11, /*smoke=*/true,
        {{"machines", "99"},
         {"driven_vms", "8"},
         {"run_time_s", "0.4"},
         {"pair_samples", "2000"},
         {"sim_shards", "4"},
         {"shard_window", policy}});
    const auto counter = [&r](const std::string& name) -> std::uint64_t {
      for (const auto& [n, v] : r.observability().counters) {
        if (n == name) return v;
      }
      ADD_FAILURE() << "missing counter " << name;
      return 0;
    };
    return std::pair{counter("sharded.barriers"),
                     counter("sharded.adaptive_extensions")};
  };
  const auto [fixed_barriers, fixed_ext] = counters_with("fixed");
  const auto [adaptive_barriers, adaptive_ext] = counters_with("adaptive");
  EXPECT_EQ(fixed_ext, 0u);
  EXPECT_GT(adaptive_ext, 0u);
  ASSERT_GT(adaptive_barriers, 0u);
  EXPECT_GE(fixed_barriers, 3 * adaptive_barriers)
      << "fixed=" << fixed_barriers << " adaptive=" << adaptive_barriers;
}

TEST(PlacementE2e, GreedyPlacementModeRunsArbitraryN) {
  // The enum knob switches the construction; greedy handles n not ≡ 3
  // (mod 6) where Theorem 2 does not apply.
  const Result r = ScenarioRegistry::instance().run(
      "placement_e2e", /*seed=*/5, /*smoke=*/true,
      {{"machines", "100"},
       {"placement", "greedy"},
       {"driven_vms", "4"},
       {"pair_samples", "5000"}});
  EXPECT_EQ(r.metric("machines"), 100.0);
  EXPECT_EQ(r.metric("placement_valid"), 1.0);
  EXPECT_GT(r.metric("vms_placed"), 100.0);  // well past one VM per machine
  EXPECT_EQ(r.metric("coresidence_within_tolerance"), 1.0);
  EXPECT_EQ(r.metric("divergences"), 0.0);
}

}  // namespace
}  // namespace stopwatch::experiment
