// Determinism guarantees of the experiment subsystem: the same scenario and
// seed must serialize to byte-identical JSON (the property CI's bench-smoke
// artifacts and BENCH_*.json trajectories rely on), and differing seeds
// must actually change seed-sensitive measurements.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "experiment/registry.hpp"
#include "experiment/result.hpp"

namespace stopwatch::experiment {
namespace {

/// Smoke-mode scenarios cheap enough to run twice in a unit test. The
/// heavier simulation scenarios get the same guarantee transitively: they
/// are built from the same Cloud/Simulator machinery fig4 exercises.
const std::vector<std::string> kCheckedScenarios = {
    "fig1_median_analytic", "fig2_protocol_trace", "fig4_interpacket",
    "placement_utilization"};

TEST(Determinism, RegisteredScenariosCoverCheckedSet) {
  const auto& registry = ScenarioRegistry::instance();
  EXPECT_GE(registry.size(), 12u);
  for (const std::string& name : kCheckedScenarios) {
    const Scenario* scenario = registry.find(name);
    ASSERT_NE(scenario, nullptr) << name;
    EXPECT_TRUE(scenario->deterministic) << name;
  }
}

TEST(Determinism, SameSeedProducesByteIdenticalJson) {
  const auto& registry = ScenarioRegistry::instance();
  for (const std::string& name : kCheckedScenarios) {
    const Result first = registry.run(name, /*seed=*/7, /*smoke=*/true);
    const Result second = registry.run(name, /*seed=*/7, /*smoke=*/true);
    EXPECT_EQ(first.to_json(), second.to_json()) << name;
  }
}

TEST(Determinism, ReportSerializationIsByteStable) {
  const auto& registry = ScenarioRegistry::instance();
  const auto run_report = [&] {
    std::vector<Result> results;
    for (const std::string& name : kCheckedScenarios) {
      results.push_back(registry.run(name, /*seed=*/3, /*smoke=*/true));
    }
    return report_to_json(results);
  };
  EXPECT_EQ(run_report(), run_report());
}

TEST(Determinism, DifferentSeedsChangeSeedSensitiveMetrics) {
  const auto& registry = ScenarioRegistry::instance();
  // fig4 measures a simulated timing channel, so its sample series must
  // respond to the RNG seed (identical output would mean the seed is
  // ignored somewhere in the Cloud construction path).
  const Result a = registry.run("fig4_interpacket", /*seed=*/1, /*smoke=*/true);
  const Result b = registry.run("fig4_interpacket", /*seed=*/2, /*smoke=*/true);
  EXPECT_NE(a.metric("inter_arrival_stopwatch_victim_mean"),
            b.metric("inter_arrival_stopwatch_victim_mean"));
  EXPECT_NE(a.to_json(), b.to_json());
}

TEST(Determinism, ParameterOverridesAreStampedIntoJson) {
  const auto& registry = ScenarioRegistry::instance();
  const Result r = registry.run("fig2_protocol_trace", /*seed=*/5,
                                /*smoke=*/true, {{"run_time_s", "0.25"}});
  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"run_time_s\": 0.25"), std::string::npos);
  EXPECT_NE(json.find("\"seed\": 5"), std::string::npos);
}

}  // namespace
}  // namespace stopwatch::experiment
