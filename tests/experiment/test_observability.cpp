// The observability guarantees end to end: a traced scenario serializes
// to byte-identical trace JSON whether the event core runs on 1 or 4
// simulator shards and whether the runner uses 1 or 8 jobs; the
// `observability` report block is present, populated, and — since some of
// its counters legitimately depend on sim_shards — strippable, leaving
// the rest of the report byte-identical across the knob.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "experiment/registry.hpp"
#include "experiment/result.hpp"
#include "experiment/runner.hpp"
#include "obs/trace.hpp"

namespace stopwatch::experiment {
namespace {

const ParamOverrides kSmallPlacement = {{"machines", "99"},
                                        {"driven_vms", "8"},
                                        {"run_time_s", "0.4"},
                                        {"pair_samples", "2000"}};

/// Runs placement_e2e with a fresh armed recorder and returns the default
/// (shard-count-invariant) trace export.
std::string trace_of(const std::string& shards, std::uint64_t jobs) {
  obs::TraceRecorder recorder;
  obs::set_active_trace(&recorder);
  recorder.arm();
  ParamOverrides overrides = kSmallPlacement;
  overrides["sim_shards"] = shards;
  const Scenario* scenario = ScenarioRegistry::instance().find("placement_e2e");
  EXPECT_NE(scenario, nullptr);
  const auto outcomes =
      run_scenarios({scenario}, overrides, /*seed=*/11, /*smoke=*/true, jobs);
  recorder.disarm();
  obs::set_active_trace(nullptr);
  EXPECT_EQ(outcomes.size(), 1u);
  for (const auto& o : outcomes) EXPECT_TRUE(o.ok) << o.error;
  EXPECT_GT(recorder.event_count(), 0u);
  return recorder.export_json();
}

TEST(Observability, TraceByteIdenticalAcrossShardCounts) {
  // The tentpole guarantee: track identities are shard-count-invariant and
  // the export sort is deterministic, so the trace bytes cannot tell 1
  // simulator core from 4.
  const std::string one = trace_of("1", /*jobs=*/1);
  const std::string four = trace_of("4", /*jobs=*/1);
  EXPECT_EQ(one, four);
  // Frame-lifecycle vocabulary is actually in there.
  EXPECT_NE(one.find("\"ingress\""), std::string::npos);
  EXPECT_NE(one.find("\"release\""), std::string::npos);
  EXPECT_NE(one.find("\"boot\""), std::string::npos);
}

TEST(Observability, TraceByteIdenticalAcrossJobs) {
  // The scenario body runs inline at --jobs 1 and on a pool worker at
  // --jobs 8; the recorder must serialize the same bytes either way.
  const std::string inline_run = trace_of("2", /*jobs=*/1);
  const std::string pooled_run = trace_of("2", /*jobs=*/8);
  EXPECT_EQ(inline_run, pooled_run);
}

TEST(Observability, ParallelTracksExistButStayOutOfDefaultExport) {
  obs::TraceRecorder recorder;
  obs::set_active_trace(&recorder);
  recorder.arm();
  ParamOverrides overrides = kSmallPlacement;
  overrides["sim_shards"] = "4";
  static_cast<void>(ScenarioRegistry::instance().run("placement_e2e",
                                                     /*seed=*/11,
                                                     /*smoke=*/true,
                                                     overrides));
  recorder.disarm();
  obs::set_active_trace(nullptr);
  // Barrier windows and per-core kernel counters recorded on a 4-shard
  // run, but only the opt-in export shows them.
  const std::string def = recorder.export_json();
  const std::string parallel = recorder.export_json(/*include_parallel=*/true);
  EXPECT_EQ(def.find("\"barriers\""), std::string::npos);
  EXPECT_NE(parallel.find("\"barriers\""), std::string::npos);
  EXPECT_NE(parallel.find("\"sim-kernel\""), std::string::npos);
  EXPECT_GT(parallel.size(), def.size());
}

TEST(Observability, ReportBlockIsPresentAndPopulated) {
  const Result r = ScenarioRegistry::instance().run(
      "placement_e2e", /*seed=*/7, /*smoke=*/true, kSmallPlacement);
  const auto& snap = r.observability();
  ASSERT_FALSE(snap.empty());
  const auto counter = [&](const std::string& name) -> std::uint64_t {
    for (const auto& [n, v] : snap.counters) {
      if (n == name) return v;
    }
    ADD_FAILURE() << "missing counter " << name;
    return 0;
  };
  EXPECT_GT(counter("sim.events_scheduled"), 0u);
  EXPECT_GT(counter("sim.events_executed"), 0u);
  EXPECT_GT(counter("net.frames_sent.guest_packet"), 0u);
  EXPECT_GT(counter("policy.replica_aggregations"), 0u);
  EXPECT_EQ(counter("topology.divergences"), 0u);
  // The histograms made it through, and so did the serialized block.
  bool saw_bytes_histogram = false;
  for (const auto& [name, h] : snap.histograms) {
    if (name == "net.frame_bytes") {
      saw_bytes_histogram = h.count > 0;
    }
  }
  EXPECT_TRUE(saw_bytes_histogram);
  EXPECT_NE(r.to_json().find("\"observability\""), std::string::npos);
}

/// Truncates the trailing `observability` block (it holds shard-count-
/// dependent counters by design) so the remainder can be compared across
/// sim_shards values.
std::string strip_observability(std::string json) {
  const std::string marker = ",\n  \"observability\"";
  const std::size_t at = json.find(marker);
  EXPECT_NE(at, std::string::npos);
  if (at != std::string::npos) {
    json.erase(at);
    json += "\n}";
  }
  return json;
}

TEST(Observability, Fig7ShardCountsByteIdenticalOutsideTheBlock) {
  // fig7_parsec grows the same sim_shards knob as fig6_nfs: lazy wiring +
  // explicit activation keeps the code path identical whatever the shard
  // count, so the report differs only in the stripped shard-dependent
  // block and the knob's own context stamp.
  const auto run_with = [](const std::string& shards) {
    Result r = ScenarioRegistry::instance().run(
        "fig7_parsec", /*seed=*/17, /*smoke=*/true,
        {{"app_count", "1"}, {"runs_per_app", "1"}, {"sim_shards", shards}});
    std::string json = strip_observability(r.to_json());
    const std::string stamp = "\"sim_shards\": " + shards;
    const std::size_t at = json.find(stamp);
    EXPECT_NE(at, std::string::npos) << json.substr(0, 400);
    json.replace(at, stamp.size(), "\"sim_shards\": _");
    return json;
  };
  const std::string one = run_with("1");
  const std::string four = run_with("4");
  EXPECT_EQ(one, four);
}

TEST(Observability, Fig6ShardCountsByteIdenticalOutsideTheBlock) {
  // The lazily-wired fig6_nfs grows the sim_shards knob: same bytes on 1
  // and 2 simulator cores once the shard-dependent block is stripped.
  const auto run_with = [](const std::string& shards) {
    Result r = ScenarioRegistry::instance().run(
        "fig6_nfs", /*seed=*/13, /*smoke=*/true,
        {{"run_time_s", "0.3"}, {"rate_count", "1"}, {"sim_shards", shards}});
    std::string json = strip_observability(r.to_json());
    const std::string stamp = "\"sim_shards\": " + shards;
    const std::size_t at = json.find(stamp);
    EXPECT_NE(at, std::string::npos) << json.substr(0, 400);
    json.replace(at, stamp.size(), "\"sim_shards\": _");
    return json;
  };
  const std::string one = run_with("1");
  const std::string two = run_with("2");
  EXPECT_EQ(one, two);
}

}  // namespace
}  // namespace stopwatch::experiment
