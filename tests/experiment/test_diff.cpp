// The bench-trajectory diff gate: the JSON reader must round-trip reports
// the writer produced, and the comparison must pass improvements, fail
// ns-class regressions beyond the threshold, and report missing/new
// metrics without failing — the exact contract CI's gate relies on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/contracts.hpp"
#include "experiment/diff.hpp"
#include "experiment/json.hpp"
#include "experiment/result.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"

namespace stopwatch::experiment {
namespace {

TEST(JsonReader, ParsesScalarsContainersAndEscapes) {
  JsonValue v;
  std::string error;
  ASSERT_TRUE(JsonValue::parse(
      R"({"a": 1.5, "b": [true, false, null], "s": "x\n\"y\" \u00e9"})", v,
      error))
      << error;
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("a")->as_number(), 1.5);
  ASSERT_TRUE(v.find("b")->is_array());
  EXPECT_EQ(v.find("b")->items().size(), 3u);
  EXPECT_TRUE(v.find("b")->items()[0].as_bool());
  EXPECT_EQ(v.find("b")->items()[2].kind(), JsonValue::Kind::kNull);
  EXPECT_EQ(v.find("s")->as_string(), "x\n\"y\" \xc3\xa9");
  EXPECT_EQ(v.find("absent"), nullptr);
}

TEST(JsonReader, RejectsMalformedDocuments) {
  JsonValue v;
  std::string error;
  EXPECT_FALSE(JsonValue::parse("{", v, error));
  EXPECT_FALSE(JsonValue::parse("[1,]", v, error));
  EXPECT_FALSE(JsonValue::parse("{\"a\": 1} trailing", v, error));
  EXPECT_FALSE(JsonValue::parse("\"\\q\"", v, error));
  EXPECT_FALSE(JsonValue::parse("\"unterminated", v, error));
  EXPECT_FALSE(JsonValue::parse("tru", v, error));
  // Accessing the wrong kind is a contract violation, not silent garbage.
  ASSERT_TRUE(JsonValue::parse("3", v, error)) << error;
  EXPECT_THROW(static_cast<void>(v.as_string()), ContractViolation);
}

/// Builds a stopwatch-bench/1 report string through the real writer.
std::string make_report(
    const std::vector<std::pair<std::string,
                                std::vector<BenchMetric>>>& scenarios) {
  std::vector<Result> results;
  for (const auto& [name, metrics] : scenarios) {
    Result r(name);
    for (const BenchMetric& m : metrics) {
      r.add_metric(m.name, m.value, m.unit);
    }
    r.set_context(/*seed=*/1, /*smoke=*/true, {});
    results.push_back(std::move(r));
  }
  return report_to_json(results);
}

TEST(BenchReport, RoundTripsThroughWriterAndReader) {
  const std::string json = make_report(
      {{"alpha", {{"lat", 120.0, "ns/op"}, {"obs", 40.0, "observations"}}},
       {"beta", {{"loop", 9.5, "ns/event"}}}});
  BenchReport report;
  std::string error;
  ASSERT_TRUE(parse_bench_report(json, report, error)) << error;
  EXPECT_EQ(report.schema, "stopwatch-bench/1");
  ASSERT_EQ(report.results.size(), 2u);
  EXPECT_EQ(report.results[0].scenario, "alpha");
  ASSERT_EQ(report.results[0].metrics.size(), 2u);
  EXPECT_EQ(report.results[0].metrics[0].name, "lat");
  EXPECT_EQ(report.results[0].metrics[0].value, 120.0);
  EXPECT_EQ(report.results[0].metrics[0].unit, "ns/op");
  EXPECT_EQ(report.results[1].seed, 1u);
}

TEST(BenchReport, RejectsWrongSchemaAndShape) {
  BenchReport report;
  std::string error;
  EXPECT_FALSE(parse_bench_report("not json", report, error));
  EXPECT_FALSE(parse_bench_report(
      R"({"schema": "other/9", "results": []})", report, error));
  EXPECT_NE(error.find("other/9"), std::string::npos);
  EXPECT_FALSE(parse_bench_report(R"({"results": []})", report, error));
}

TEST(BenchReport, ObservabilityBlockIsIgnoredByTheDiff) {
  // Reports may carry an `observability` block (counters + histograms).
  // The diff compares metric trajectories only: a report with the block
  // must diff clean against the same metrics without it — no phantom
  // missing/new entries, no gate trips from counter churn.
  Result r("scn");
  r.add_metric("lat", 100.0, "ns/op");
  r.set_context(/*seed=*/1, /*smoke=*/true, {});
  obs::Registry registry;
  registry.set_counter("sim.events_scheduled", 42);
  registry.histogram("net.frame_bytes")->record(1500);
  r.set_observability(registry.snapshot());
  std::vector<Result> results;
  results.push_back(std::move(r));
  const std::string with_block = report_to_json(results);
  ASSERT_NE(with_block.find("\"observability\""), std::string::npos);

  BenchReport parsed;
  std::string error;
  ASSERT_TRUE(parse_bench_report(with_block, parsed, error)) << error;
  BenchReport plain;
  ASSERT_TRUE(parse_bench_report(
      make_report({{"scn", {{"lat", 100.0, "ns/op"}}}}), plain, error))
      << error;

  const DiffReport diff = diff_reports(plain, parsed, {.threshold = 0.10});
  EXPECT_TRUE(diff.passed());
  EXPECT_TRUE(diff.missing_in_candidate.empty());
  EXPECT_TRUE(diff.new_in_candidate.empty());
  ASSERT_EQ(diff.deltas.size(), 1u);
  EXPECT_EQ(diff.deltas[0].metric, "lat");
  EXPECT_EQ(diff.deltas[0].delta_fraction, 0.0);
}

TEST(BenchReport, TimeSeriesAndGaugeBlocksAreIgnoredByTheDiff) {
  // Reports may now carry a `timeseries` block (sim-time rollups) and
  // memory gauges inside `observability`. Like the counters, neither is
  // a trajectory metric: a report with both blocks must diff clean
  // against the same metrics without them.
  Result r("scn");
  r.add_metric("lat", 100.0, "ns/op");
  r.set_context(/*seed=*/1, /*smoke=*/true, {});
  obs::TimeSeries series(1000, 8);
  series.record(500, 42);
  series.record(1500, 99);
  r.add_timeseries("egress.release_latency_ns", series.snapshot());
  obs::Registry registry;
  registry.set_gauge("mem.arena_bytes", 1 << 20);
  r.set_observability(registry.snapshot());
  std::vector<Result> results;
  results.push_back(std::move(r));
  const std::string with_blocks = report_to_json(results);
  ASSERT_NE(with_blocks.find("\"timeseries\""), std::string::npos);
  ASSERT_NE(with_blocks.find("\"gauges\""), std::string::npos);

  BenchReport parsed;
  std::string error;
  ASSERT_TRUE(parse_bench_report(with_blocks, parsed, error)) << error;
  BenchReport plain;
  ASSERT_TRUE(parse_bench_report(
      make_report({{"scn", {{"lat", 100.0, "ns/op"}}}}), plain, error))
      << error;
  const DiffReport diff = diff_reports(plain, parsed, {.threshold = 0.10});
  EXPECT_TRUE(diff.passed());
  EXPECT_TRUE(diff.missing_in_candidate.empty());
  EXPECT_TRUE(diff.new_in_candidate.empty());
  ASSERT_EQ(diff.deltas.size(), 1u);
  EXPECT_EQ(diff.deltas[0].metric, "lat");
}

BenchReport report_with(const std::vector<BenchMetric>& metrics) {
  BenchReport report;
  report.schema = "stopwatch-bench/1";
  report.results.push_back({"scn", 1, metrics});
  return report;
}

TEST(DiffGate, ImprovementAndWithinThresholdPass) {
  const BenchReport baseline = report_with({{"lat", 100.0, "ns/op"}});
  // 40% faster: well under any threshold.
  EXPECT_TRUE(diff_reports(baseline, report_with({{"lat", 60.0, "ns/op"}}),
                           {.threshold = 0.10})
                  .passed());
  // +9% is within the 10% gate; exactly +10% is "not beyond" it.
  EXPECT_TRUE(diff_reports(baseline, report_with({{"lat", 109.0, "ns/op"}}),
                           {.threshold = 0.10})
                  .passed());
  EXPECT_TRUE(diff_reports(baseline, report_with({{"lat", 110.0, "ns/op"}}),
                           {.threshold = 0.10})
                  .passed());
}

TEST(DiffGate, RegressionBeyondThresholdFails) {
  const BenchReport baseline = report_with({{"lat", 100.0, "ns/op"}});
  const DiffReport report = diff_reports(
      baseline, report_with({{"lat", 125.0, "ns/op"}}), {.threshold = 0.10});
  EXPECT_FALSE(report.passed());
  EXPECT_EQ(report.regressions, 1u);
  ASSERT_EQ(report.deltas.size(), 1u);
  EXPECT_TRUE(report.deltas[0].gated);
  EXPECT_TRUE(report.deltas[0].regression);
  EXPECT_NEAR(report.deltas[0].delta_fraction, 0.25, 1e-12);
  // A looser threshold accepts the same delta.
  EXPECT_TRUE(diff_reports(baseline, report_with({{"lat", 125.0, "ns/op"}}),
                           {.threshold = 0.30})
                  .passed());
}

TEST(DiffGate, UngatedMetricsNeverFailTheGate) {
  // "observations" contains "ns" — substring unit matching would gate it.
  const BenchReport baseline = report_with({{"obs", 10.0, "observations"},
                                            {"dur", 2.0, "s"}});
  const DiffReport report =
      diff_reports(baseline,
                   report_with({{"obs", 500.0, "observations"},
                                {"dur", 9.0, "s"}}),
                   {.threshold = 0.10});
  EXPECT_TRUE(report.passed());
  for (const MetricDelta& d : report.deltas) {
    EXPECT_FALSE(d.gated) << d.metric;
    EXPECT_FALSE(d.regression) << d.metric;
  }
}

TEST(DiffGate, WallClockRatioAndByteClassMetricsNeverGate) {
  // The self-profiling PR adds wall-clock-adjacent metrics: overhead
  // ratios (unit "x", e.g. profiling_disabled_overhead_ratio) and memory
  // sizes (unit "bytes"). Only the "ns"/"ns/..." classes gate — a 100x
  // swing in a ratio or an RSS-like byte count is visible in the table
  // but can never fail the trajectory gate.
  const BenchReport baseline =
      report_with({{"profiling_disabled_overhead_ratio", 1.0, "x"},
                   {"rss_like", 1000.0, "bytes"},
                   {"lat", 100.0, "ns/op"}});
  const DiffReport report = diff_reports(
      baseline,
      report_with({{"profiling_disabled_overhead_ratio", 100.0, "x"},
                   {"rss_like", 100000.0, "bytes"},
                   {"lat", 100.0, "ns/op"}}),
      {.threshold = 0.02});
  EXPECT_TRUE(report.passed());
  EXPECT_EQ(report.regressions, 0u);
  for (const MetricDelta& d : report.deltas) {
    if (d.metric != "lat") {
      EXPECT_FALSE(d.gated) << d.metric;
      EXPECT_FALSE(d.regression) << d.metric;
    }
  }
  // The swings still show in the rendering (behavior-change signal).
  EXPECT_NE(render_diff_table(report, {.threshold = 0.02})
                .find("profiling_disabled_overhead_ratio"),
            std::string::npos);
}

TEST(DiffGate, BitsMetricsAreReportedButNeverGated) {
  // The leakage scenarios emit "bits" metrics; a leakage change must be
  // *visible* in the delta table (behavior-change signal) without ever
  // tripping the wall-clock regression gate — only ns-class units gate.
  const BenchReport baseline = report_with(
      {{"capacity_bits_r3", 0.04, "bits"}, {"lat", 100.0, "ns/op"}});
  const DiffReport report =
      diff_reports(baseline,
                   report_with({{"capacity_bits_r3", 4.0, "bits"},
                                {"lat", 100.0, "ns/op"}}),
                   {.threshold = 0.10});
  EXPECT_TRUE(report.passed());
  EXPECT_EQ(report.regressions, 0u);
  const MetricDelta* bits_delta = nullptr;
  for (const MetricDelta& d : report.deltas) {
    if (d.metric == "capacity_bits_r3") bits_delta = &d;
  }
  ASSERT_NE(bits_delta, nullptr);
  EXPECT_FALSE(bits_delta->gated);
  EXPECT_FALSE(bits_delta->regression);
  // A 100x leakage increase shows up in both renderings...
  EXPECT_NE(render_diff_table(report, {.threshold = 0.10})
                .find("capacity_bits_r3"),
            std::string::npos);
  EXPECT_NE(render_diff_markdown(report, {.threshold = 0.10})
                .find("capacity_bits_r3"),
            std::string::npos);
  // ...while an unchanged bits metric stays out of the table noise.
  const DiffReport unchanged = diff_reports(baseline, baseline, {});
  EXPECT_EQ(render_diff_table(unchanged, {}).find("capacity_bits_r3"),
            std::string::npos);
}

TEST(DiffGate, NullMetricsCompareSanely) {
  const double nan = std::nan("");
  // null on both sides is "unchanged", not an eternal regression.
  EXPECT_TRUE(diff_reports(report_with({{"lat", nan, "ns/op"}}),
                           report_with({{"lat", nan, "ns/op"}}),
                           {.threshold = 0.10})
                  .passed());
  // null -> measurable recovers the trajectory; measurable -> null loses it.
  EXPECT_TRUE(diff_reports(report_with({{"lat", nan, "ns/op"}}),
                           report_with({{"lat", 50.0, "ns/op"}}),
                           {.threshold = 0.10})
                  .passed());
  EXPECT_FALSE(diff_reports(report_with({{"lat", 50.0, "ns/op"}}),
                            report_with({{"lat", nan, "ns/op"}}),
                            {.threshold = 0.10})
                   .passed());
}

TEST(DiffGate, UnitChangeIsReportedAsRenameNotCompared) {
  // 5 ms -> 5e6 ns is the same latency; comparing raw values would report
  // a +1e8% regression. A unit change must read as missing + new instead.
  const DiffReport report =
      diff_reports(report_with({{"lat", 5.0, "ms"}}),
                   report_with({{"lat", 5e6, "ns"}}), {.threshold = 0.10});
  EXPECT_TRUE(report.passed());
  EXPECT_TRUE(report.deltas.empty());
  ASSERT_EQ(report.missing_in_candidate.size(), 1u);
  EXPECT_EQ(report.missing_in_candidate[0], "scn.lat [ms]");
  ASSERT_EQ(report.new_in_candidate.size(), 1u);
  EXPECT_EQ(report.new_in_candidate[0], "scn.lat [ns]");
}

TEST(DiffGate, MissingAndNewMetricsReportedButNonFatal) {
  BenchReport baseline = report_with({{"lat", 100.0, "ns/op"},
                                      {"gone", 5.0, "ns/op"}});
  baseline.results.push_back({"dropped_scenario", 1, {{"m", 1.0, "ns/op"}}});
  BenchReport candidate = report_with({{"lat", 100.0, "ns/op"},
                                       {"fresh", 3.0, "ns/op"}});
  candidate.results.push_back({"added_scenario", 1, {{"m", 1.0, "ns/op"}}});

  const DiffReport report =
      diff_reports(baseline, candidate, {.threshold = 0.10});
  EXPECT_TRUE(report.passed());
  ASSERT_EQ(report.missing_in_candidate.size(), 2u);
  EXPECT_EQ(report.missing_in_candidate[0], "scn.gone");
  EXPECT_EQ(report.missing_in_candidate[1], "dropped_scenario.m");
  ASSERT_EQ(report.new_in_candidate.size(), 2u);
  EXPECT_EQ(report.new_in_candidate[0], "scn.fresh");
  EXPECT_EQ(report.new_in_candidate[1], "added_scenario.m");
}

TEST(DiffRendering, TableAndMarkdownNameTheRegression) {
  const BenchReport baseline = report_with({{"lat", 100.0, "ns/op"},
                                            {"steady", 5.0, "ns/op"}});
  const DiffOptions options{.threshold = 0.10};
  const DiffReport report = diff_reports(
      baseline,
      report_with({{"lat", 150.0, "ns/op"}, {"steady", 5.0, "ns/op"}}),
      options);
  const std::string table = render_diff_table(report, options);
  EXPECT_NE(table.find("scn.lat"), std::string::npos);
  EXPECT_NE(table.find("REGRESSION"), std::string::npos);
  EXPECT_NE(table.find("FAIL: 1 gated regression(s)"), std::string::npos);
  const std::string markdown = render_diff_markdown(report, options);
  EXPECT_NE(markdown.find("| `scn.lat` |"), std::string::npos);
  EXPECT_NE(markdown.find("**regression**"), std::string::npos);
}

TEST(DiffCli, ExitCodesMatchVerdicts) {
  const auto write_file = [](const std::string& path,
                             const std::string& contents) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.is_open()) << path;
    out << contents;
  };
  const std::string dir = ::testing::TempDir();
  const std::string base_path = dir + "/sw_diff_base.json";
  const std::string good_path = dir + "/sw_diff_good.json";
  const std::string bad_path = dir + "/sw_diff_bad.json";
  write_file(base_path, make_report({{"scn", {{"lat", 100.0, "ns/op"}}}}));
  write_file(good_path, make_report({{"scn", {{"lat", 95.0, "ns/op"}}}}));
  write_file(bad_path, make_report({{"scn", {{"lat", 200.0, "ns/op"}}}}));

  const auto run = [](std::vector<const char*> argv) {
    argv.insert(argv.begin(), "stopwatch_bench_diff");
    return run_diff_cli(static_cast<int>(argv.size()), argv.data());
  };
  EXPECT_EQ(run({base_path.c_str(), good_path.c_str(), "--quiet"}), 0);
  EXPECT_EQ(run({base_path.c_str(), bad_path.c_str(), "--quiet"}), 1);
  EXPECT_EQ(run({base_path.c_str(), bad_path.c_str(), "--threshold", "1.5",
                 "--quiet"}),
            0);
  EXPECT_EQ(run({base_path.c_str()}), 2);                      // missing arg
  EXPECT_EQ(run({base_path.c_str(), "/nonexistent.json"}), 2);  // bad file
  EXPECT_EQ(run({base_path.c_str(), bad_path.c_str(), "--threshold", "x"}),
            2);

  std::remove(base_path.c_str());
  std::remove(good_path.c_str());
  std::remove(bad_path.c_str());
}

}  // namespace
}  // namespace stopwatch::experiment
