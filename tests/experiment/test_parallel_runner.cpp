// The --jobs scenario execution engine: a parallel run must be
// byte-identical to the sequential run (per-task isolation + deterministic
// emission order), a throwing scenario must not take down its siblings, and
// outcomes must arrive in selection order regardless of completion order.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "experiment/registry.hpp"
#include "experiment/result.hpp"
#include "experiment/runner.hpp"

namespace stopwatch::experiment {
namespace {

/// A registry-registered scenario that always throws mid-run, to prove the
/// runner confines a failure to its own outcome slot. Marked
/// non-deterministic so sweeps over deterministic scenarios skip it.
[[maybe_unused]] const ScenarioRegistrar kThrowingRegistrar{{
    .name = "test_always_throws",
    .description = "test-only scenario that throws mid-run",
    .params = {},
    .deterministic = false,
    .run = [](const ScenarioContext&) -> Result {
      throw std::runtime_error("synthetic mid-run failure");
    },
}};

/// Cheap deterministic scenarios — the whole set runs in well under a
/// second in smoke mode, so both of this file's sweeps stay fast even
/// under TSan.
std::vector<const Scenario*> cheap_deterministic_selection() {
  const std::vector<std::string> names = {
      "fig1_median_analytic", "fig2_protocol_trace",    "fig4_interpacket",
      "fig5_file_download",   "fig7_parsec",            "fig8_noise_comparison",
      "placement_utilization"};
  std::vector<const Scenario*> selected;
  for (const std::string& name : names) {
    const Scenario* scenario = ScenarioRegistry::instance().find(name);
    EXPECT_NE(scenario, nullptr) << name;
    if (scenario != nullptr) selected.push_back(scenario);
  }
  return selected;
}

std::string report_of(const std::vector<ScenarioOutcome>& outcomes) {
  std::vector<Result> results;
  for (const ScenarioOutcome& outcome : outcomes) {
    if (outcome.ok) results.push_back(outcome.result);
  }
  return report_to_json(results);
}

TEST(ParallelRunner, EightJobsByteIdenticalToSequential) {
  const auto selected = cheap_deterministic_selection();
  const auto sequential =
      run_scenarios(selected, {}, /*seed=*/7, /*smoke=*/true, /*jobs=*/1);
  const auto parallel =
      run_scenarios(selected, {}, /*seed=*/7, /*smoke=*/true, /*jobs=*/8);
  ASSERT_EQ(sequential.size(), selected.size());
  ASSERT_EQ(parallel.size(), selected.size());
  for (std::size_t i = 0; i < selected.size(); ++i) {
    EXPECT_TRUE(sequential[i].ok) << sequential[i].error;
    EXPECT_TRUE(parallel[i].ok) << parallel[i].error;
    EXPECT_EQ(parallel[i].name, selected[i]->name);
  }
  EXPECT_EQ(report_of(sequential), report_of(parallel));
}

TEST(ParallelRunner, ThrowingScenarioDoesNotTakeDownSiblings) {
  const Scenario* thrower =
      ScenarioRegistry::instance().find("test_always_throws");
  ASSERT_NE(thrower, nullptr);
  std::vector<const Scenario*> selected = cheap_deterministic_selection();
  // Place the failure in the middle so siblings run on both sides of it.
  selected.insert(selected.begin() + 3, thrower);

  for (const std::uint64_t jobs : {std::uint64_t{1}, std::uint64_t{4}}) {
    const auto outcomes =
        run_scenarios(selected, {}, /*seed=*/7, /*smoke=*/true, jobs);
    ASSERT_EQ(outcomes.size(), selected.size());
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      if (outcomes[i].name == "test_always_throws") {
        EXPECT_FALSE(outcomes[i].ok);
        EXPECT_NE(outcomes[i].error.find("synthetic mid-run failure"),
                  std::string::npos)
            << outcomes[i].error;
      } else {
        EXPECT_TRUE(outcomes[i].ok)
            << outcomes[i].name << ": " << outcomes[i].error;
      }
    }
  }
}

TEST(ParallelRunner, CallbackFiresInSelectionOrder) {
  const auto selected = cheap_deterministic_selection();
  std::vector<std::size_t> seen;
  const auto outcomes = run_scenarios(
      selected, {}, /*seed=*/3, /*smoke=*/true, /*jobs=*/8,
      [&](const ScenarioOutcome& outcome, std::size_t index) {
        EXPECT_EQ(outcome.name, selected[index]->name);
        seen.push_back(index);
      });
  ASSERT_EQ(outcomes.size(), selected.size());
  ASSERT_EQ(seen.size(), selected.size());
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i);
}

TEST(ParallelRunner, OverridesApplyOnlyToDeclaringScenarios) {
  std::vector<const Scenario*> selected = {
      ScenarioRegistry::instance().find("fig2_protocol_trace"),
      ScenarioRegistry::instance().find("placement_utilization")};
  ASSERT_NE(selected[0], nullptr);
  ASSERT_NE(selected[1], nullptr);
  const ParamOverrides overrides = {{"run_time_s", "0.25"}};
  const auto outcomes =
      run_scenarios(selected, overrides, /*seed=*/5, /*smoke=*/true,
                    /*jobs=*/2);
  ASSERT_TRUE(outcomes[0].ok) << outcomes[0].error;
  ASSERT_TRUE(outcomes[1].ok) << outcomes[1].error;
  EXPECT_NE(outcomes[0].result.to_json().find("\"run_time_s\": 0.25"),
            std::string::npos);
  EXPECT_EQ(outcomes[1].result.to_json().find("run_time_s"),
            std::string::npos);
}

TEST(ParallelRunner, DerivedSeedsDecorrelateScenariosButStampUserSeed) {
  // Two scenarios run under one invocation seed draw different RNG streams
  // (the derived seed mixes in the name) but both stamp the user's seed.
  EXPECT_NE(derive_scenario_seed(7, "fig4_interpacket"),
            derive_scenario_seed(7, "fig6_nfs"));
  EXPECT_NE(derive_scenario_seed(7, "fig4_interpacket"),
            derive_scenario_seed(8, "fig4_interpacket"));
  const Result r = ScenarioRegistry::instance().run(
      "fig1_median_analytic", /*seed=*/42, /*smoke=*/true);
  EXPECT_NE(r.to_json().find("\"seed\": 42"), std::string::npos);
}

}  // namespace
}  // namespace stopwatch::experiment
