// The CLI composition rules for process-wide side outputs (--trace,
// --profile): multi-scenario selections demand --jobs 1 and then write
// one suffixed file per scenario; parallel multi-scenario runs fail up
// front with a named error instead of corrupting a shared session; and
// per_scenario_path derives the suffixed names deterministically.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "experiment/runner.hpp"

namespace stopwatch::experiment {
namespace {

TEST(PerScenarioPath, InsertsScenarioBeforeFinalExtension) {
  EXPECT_EQ(per_scenario_path("out.json", "fig6_nfs"), "out.fig6_nfs.json");
  EXPECT_EQ(per_scenario_path("trace.perfetto.json", "a"),
            "trace.perfetto.a.json");
  // Extensionless paths just append.
  EXPECT_EQ(per_scenario_path("profile", "fig6_nfs"), "profile.fig6_nfs");
  // A dot in a directory name is not an extension.
  EXPECT_EQ(per_scenario_path("out.d/profile", "x"), "out.d/profile.x");
  EXPECT_EQ(per_scenario_path("out.d/profile.json", "x"),
            "out.d/profile.x.json");
}

TEST(RunnerOptions, ParsesProfileFlag) {
  const char* argv[] = {"stopwatch_bench", "--scenario", "fig1_median_analytic",
                        "--profile", "/tmp/p.json"};
  RunnerOptions options;
  std::string error;
  ASSERT_TRUE(parse_runner_options(5, argv, options, error)) << error;
  EXPECT_EQ(options.profile_path, "/tmp/p.json");
  EXPECT_TRUE(options.trace_path.empty());
}

int run(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "stopwatch_bench");
  return run_cli(static_cast<int>(argv.size()), argv.data());
}

bool file_exists(const std::string& path) {
  return std::ifstream(path, std::ios::binary).is_open();
}

bool file_nonempty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  return !buf.str().empty();
}

TEST(RunnerCli, MultiScenarioSideOutputsRequireSequentialJobs) {
  // A trace/profile session is process-wide state; two scenarios writing
  // it concurrently would interleave. The CLI refuses with a named error
  // (exit 2 = usage, same as other malformed invocations) before running
  // anything.
  const std::string dir = ::testing::TempDir();
  const std::string profile = dir + "/sw_cli_refused.json";
  EXPECT_EQ(run({"--scenario", "fig1_median_analytic", "--scenario",
                 "fig8_noise_comparison", "--smoke", "--quiet", "--jobs", "4",
                 "--profile", profile.c_str()}),
            2);
  EXPECT_FALSE(file_nonempty(profile));
  EXPECT_EQ(run({"--scenario", "fig1_median_analytic", "--scenario",
                 "fig8_noise_comparison", "--smoke", "--quiet", "--jobs", "4",
                 "--trace", profile.c_str()}),
            2);
  EXPECT_FALSE(file_nonempty(profile));
}

TEST(RunnerCli, SingleScenarioProfileWritesPlainPathPlusStacks) {
  // placement_utilization exercises the placement.theorem2 phase, so the
  // collapsed-stacks file carries real content, not just a valid header.
  const std::string dir = ::testing::TempDir();
  const std::string profile = dir + "/sw_cli_single.json";
  EXPECT_EQ(run({"--scenario", "placement_utilization", "--smoke", "--quiet",
                 "--profile", profile.c_str()}),
            0);
  EXPECT_TRUE(file_nonempty(profile));
  EXPECT_TRUE(file_nonempty(profile + ".stacks"));
  std::ifstream in(profile);
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("\"schema\": \"stopwatch-profile/1\""),
            std::string::npos);
  std::ifstream stacks_in(profile + ".stacks");
  std::ostringstream stacks;
  stacks << stacks_in.rdbuf();
  EXPECT_NE(stacks.str().find("placement.theorem2 "), std::string::npos);
  std::remove(profile.c_str());
  std::remove((profile + ".stacks").c_str());
}

TEST(RunnerCli, SequentialMultiScenarioWritesSuffixedFilesPerScenario) {
  // --jobs 1 (the default) makes multi-scenario sessions well-defined:
  // the runner exports and clears between scenarios, so each file holds
  // exactly its scenario's data.
  const std::string dir = ::testing::TempDir();
  const std::string profile = dir + "/sw_cli_multi.json";
  const std::string trace = dir + "/sw_cli_multi_trace.json";
  EXPECT_EQ(run({"--scenario", "fig1_median_analytic", "--scenario",
                 "fig8_noise_comparison", "--smoke", "--quiet", "--profile",
                 profile.c_str(), "--trace", trace.c_str()}),
            0);
  const std::string p1 =
      per_scenario_path(profile, "fig1_median_analytic");
  const std::string p2 =
      per_scenario_path(profile, "fig8_noise_comparison");
  EXPECT_FALSE(file_nonempty(profile));  // only the suffixed names exist
  EXPECT_TRUE(file_nonempty(p1));
  EXPECT_TRUE(file_nonempty(p2));
  // The stacks files are written either way; fig1/fig8 are analytic
  // scenarios that hit no instrumented phase, so theirs may be empty.
  EXPECT_TRUE(file_exists(p1 + ".stacks"));
  EXPECT_TRUE(file_exists(p2 + ".stacks"));
  EXPECT_TRUE(
      file_nonempty(per_scenario_path(trace, "fig1_median_analytic")));
  EXPECT_TRUE(
      file_nonempty(per_scenario_path(trace, "fig8_noise_comparison")));
  for (const std::string& f :
       {p1, p2, p1 + ".stacks", p2 + ".stacks",
        per_scenario_path(trace, "fig1_median_analytic"),
        per_scenario_path(trace, "fig8_noise_comparison")}) {
    std::remove(f.c_str());
  }
}

TEST(RunnerCli, UnwritableProfilePathFailsTheRun) {
  EXPECT_EQ(run({"--scenario", "fig1_median_analytic", "--smoke", "--quiet",
                 "--profile", "/nonexistent-dir/p.json"}),
            1);
}

}  // namespace
}  // namespace stopwatch::experiment
