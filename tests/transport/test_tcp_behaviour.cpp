// TCP behaviours that drive the paper's performance results: delayed-ACK
// coalescing (Fig. 6(b)), window-capped throughput (Fig. 5's 2.8x), and
// handshake packet economics (every inbound packet pays Δn).
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"
#include "transport/tcp.hpp"

namespace stopwatch::transport {
namespace {

/// Minimal two-endpoint world with adjustable one-way latency.
struct World {
  sim::Simulator sim;
  Duration latency{Duration::millis(2)};

  class Env final : public TransportEnv {
   public:
    Env(World& w, NodeId self) : w_(&w), self_(self) {}
    void send(net::Packet pkt) override {
      pkt.src = self_;
      auto* w = w_;
      w->sim.schedule_after(w->latency, [w, pkt] {
        if (pkt.dst.value == 1 && w->to_a) w->to_a(pkt);
        if (pkt.dst.value == 2 && w->to_b) w->to_b(pkt);
      });
    }
    void set_timer(Duration d, std::function<void()> cb) override {
      w_->sim.schedule_after(d, std::move(cb));
    }
    [[nodiscard]] std::int64_t now_ns() const override {
      return w_->sim.now().ns;
    }
    [[nodiscard]] NodeId local_addr() const override { return self_; }

   private:
    World* w_;
    NodeId self_;
  };

  std::function<void(const net::Packet&)> to_a, to_b;
};

TEST(TcpBehaviour, HandshakeCostsExactlyTwoInboundPacketsAtServer) {
  World w;
  World::Env ea(w, NodeId{1}), eb(w, NodeId{2});
  TcpEndpoint client(ea), server(eb);
  int server_inbound = 0;
  w.to_a = [&](const net::Packet& p) { client.on_packet(p); };
  w.to_b = [&](const net::Packet& p) {
    ++server_inbound;
    server.on_packet(p);
  };
  server.listen([](NodeId, std::uint32_t, std::uint32_t, std::uint32_t,
                   std::uint32_t) {});
  client.connect(NodeId{2}, 1, [](NodeId, std::uint32_t) {});
  w.sim.run();
  // SYN + final ACK: the two packets that each pay Δn under StopWatch.
  EXPECT_EQ(server_inbound, 2);
}

TEST(TcpBehaviour, DelayedAckCoalescesPipelinedSegments) {
  World w;
  World::Env ea(w, NodeId{1}), eb(w, NodeId{2});
  TcpEndpoint client(ea), server(eb);
  w.to_a = [&](const net::Packet& p) { client.on_packet(p); };
  w.to_b = [&](const net::Packet& p) { server.on_packet(p); };
  server.listen([&](NodeId peer, std::uint32_t flow, std::uint32_t id,
                    std::uint32_t, std::uint32_t tag) {
    server.send_message(peer, flow, id, tag, tag);
  });
  client.set_message_handler([](NodeId, std::uint32_t, std::uint32_t,
                                std::uint32_t, std::uint32_t) {});
  client.connect(NodeId{2}, 1, [&](NodeId peer, std::uint32_t flow) {
    client.send_message(peer, flow, 1, 200, 200'000);  // ~139 segments back
  });
  w.sim.run();
  const auto& cs = client.stats();
  // Roughly one ACK per two data segments, not one per segment.
  EXPECT_LT(cs.ack_packets_sent, server.stats().data_packets_sent * 3 / 4);
  EXPECT_GT(cs.ack_packets_sent, server.stats().data_packets_sent / 4);
}

TEST(TcpBehaviour, ThroughputIsWindowOverRttLimited) {
  // Transfer time for a large message ~ size / (cwnd_max * MSS / RTT).
  const auto run_with_latency = [](Duration lat) {
    World w;
    w.latency = lat;
    World::Env ea(w, NodeId{1}), eb(w, NodeId{2});
    TcpEndpoint client(ea), server(eb);
    w.to_a = [&](const net::Packet& p) { client.on_packet(p); };
    w.to_b = [&](const net::Packet& p) { server.on_packet(p); };
    RealTime done{};
    server.listen([&](NodeId peer, std::uint32_t flow, std::uint32_t id,
                      std::uint32_t, std::uint32_t tag) {
      server.send_message(peer, flow, id, tag, tag);
    });
    client.set_message_handler([&](NodeId, std::uint32_t, std::uint32_t,
                                   std::uint32_t, std::uint32_t) {
      done = w.sim.now();
    });
    client.connect(NodeId{2}, 1, [&](NodeId peer, std::uint32_t flow) {
      client.send_message(peer, flow, 1, 200, 1'000'000);
    });
    w.sim.run();
    return done;
  };
  const auto fast = run_with_latency(Duration::millis(1));
  const auto slow = run_with_latency(Duration::millis(4));
  // RTT x4 -> steady-state throughput /4; transfer time scales ~linearly
  // (slow start amortized over ~44 windows).
  const double ratio = static_cast<double>(slow.ns) / static_cast<double>(fast.ns);
  EXPECT_GT(ratio, 2.5);
  EXPECT_LT(ratio, 5.0);
}

TEST(TcpBehaviour, AckOnlyFlowsCarryNoData) {
  World w;
  World::Env ea(w, NodeId{1}), eb(w, NodeId{2});
  TcpEndpoint client(ea), server(eb);
  std::uint64_t client_bytes_on_wire = 0;
  w.to_a = [&](const net::Packet& p) { client.on_packet(p); };
  w.to_b = [&](const net::Packet& p) {
    if (p.kind == net::PacketKind::kAck) {
      client_bytes_on_wire += p.size_bytes;
      EXPECT_EQ(p.size_bytes, net::kHeaderBytes);
    }
    server.on_packet(p);
  };
  server.listen([&](NodeId peer, std::uint32_t flow, std::uint32_t id,
                    std::uint32_t, std::uint32_t tag) {
    server.send_message(peer, flow, id, tag, tag);
  });
  client.set_message_handler([](NodeId, std::uint32_t, std::uint32_t,
                                std::uint32_t, std::uint32_t) {});
  client.connect(NodeId{2}, 1, [&](NodeId peer, std::uint32_t flow) {
    client.send_message(peer, flow, 1, 200, 50'000);
  });
  w.sim.run();
  EXPECT_GT(client_bytes_on_wire, 0u);
}

}  // namespace
}  // namespace stopwatch::transport
