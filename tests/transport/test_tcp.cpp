#include "transport/tcp.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "sim/simulator.hpp"
#include "transport/udp.hpp"

namespace stopwatch::transport {
namespace {

/// Two endpoints joined by a symmetric lossy link over the simulator.
class Loopback {
 public:
  class Env final : public TransportEnv {
   public:
    Env(Loopback& lb, NodeId self) : lb_(&lb), self_(self) {}
    void send(net::Packet pkt) override {
      pkt.src = self_;
      lb_->transmit(pkt);
    }
    void set_timer(Duration delay, std::function<void()> cb) override {
      lb_->sim.schedule_after(delay, std::move(cb));
    }
    [[nodiscard]] std::int64_t now_ns() const override {
      return lb_->sim.now().ns;
    }
    [[nodiscard]] NodeId local_addr() const override { return self_; }

   private:
    Loopback* lb_;
    NodeId self_;
  };

  explicit Loopback(double loss = 0.0, Duration latency = Duration::millis(1))
      : loss_(loss), latency_(latency) {}

  void transmit(net::Packet pkt) {
    if (loss_ > 0.0 && rng_.chance(loss_)) return;
    sim.schedule_after(latency_, [this, pkt] {
      deliver_to(pkt.dst, pkt);
    });
  }

  void deliver_to(NodeId dst, const net::Packet& pkt) {
    if (dst.value == 1 && a_rx) a_rx(pkt);
    if (dst.value == 2 && b_rx) b_rx(pkt);
  }

  sim::Simulator sim;
  std::function<void(const net::Packet&)> a_rx, b_rx;

 private:
  double loss_;
  Duration latency_;
  Rng rng_{4242};
};

struct TcpPair {
  Loopback lb;
  Loopback::Env env_a{lb, NodeId{1}};
  Loopback::Env env_b{lb, NodeId{2}};
  TcpEndpoint a{env_a};
  TcpEndpoint b{env_b};

  explicit TcpPair(double loss = 0.0) : lb(loss) {
    lb.a_rx = [this](const net::Packet& p) { a.on_packet(p); };
    lb.b_rx = [this](const net::Packet& p) { b.on_packet(p); };
  }
};

TEST(Tcp, HandshakeConnects) {
  TcpPair pair;
  bool connected = false;
  pair.b.listen([](NodeId, std::uint32_t, std::uint32_t, std::uint32_t,
                   std::uint32_t) {});
  pair.a.connect(NodeId{2}, 1,
                 [&](NodeId peer, std::uint32_t flow) {
                   connected = true;
                   EXPECT_EQ(peer, (NodeId{2}));
                   EXPECT_EQ(flow, 1u);
                 });
  pair.lb.sim.run();
  EXPECT_TRUE(connected);
  // SYN + SYN-ACK + final ACK = 3 packets on the wire.
  EXPECT_EQ(pair.a.stats().control_packets_sent, 1u);
  EXPECT_EQ(pair.b.stats().control_packets_sent, 1u);
  EXPECT_EQ(pair.a.stats().ack_packets_sent, 1u);
}

TEST(Tcp, SmallMessageRoundTrip) {
  TcpPair pair;
  std::vector<std::uint32_t> server_got;
  bool reply_got = false;
  pair.b.listen([&](NodeId peer, std::uint32_t flow, std::uint32_t msg_id,
                    std::uint32_t len, std::uint32_t tag) {
    server_got.push_back(msg_id);
    EXPECT_EQ(len, 300u);
    EXPECT_EQ(tag, 77u);
    pair.b.send_message(peer, flow, msg_id, 1000, 0);
  });
  pair.a.set_message_handler([&](NodeId, std::uint32_t, std::uint32_t msg_id,
                                 std::uint32_t len, std::uint32_t) {
    reply_got = true;
    EXPECT_EQ(msg_id, 5u);
    EXPECT_EQ(len, 1000u);
  });
  pair.a.connect(NodeId{2}, 1, [&](NodeId peer, std::uint32_t flow) {
    pair.a.send_message(peer, flow, 5, 300, 77);
  });
  pair.lb.sim.run();
  EXPECT_EQ(server_got, (std::vector<std::uint32_t>{5}));
  EXPECT_TRUE(reply_got);
}

TEST(Tcp, LargeTransferSegmentsAndDelivers) {
  TcpPair pair;
  const std::uint32_t size = 1'000'000;
  bool done = false;
  pair.b.listen([&](NodeId peer, std::uint32_t flow, std::uint32_t msg_id,
                    std::uint32_t, std::uint32_t tag) {
    pair.b.send_message(peer, flow, msg_id, tag, tag);  // echo tag-sized file
  });
  pair.a.set_message_handler([&](NodeId, std::uint32_t, std::uint32_t,
                                 std::uint32_t len, std::uint32_t) {
    done = true;
    EXPECT_EQ(len, size);
  });
  pair.a.connect(NodeId{2}, 3, [&](NodeId peer, std::uint32_t flow) {
    pair.a.send_message(peer, flow, 1, 200, size);
  });
  pair.lb.sim.run();
  EXPECT_TRUE(done);
  // ~size/mss segments were needed.
  EXPECT_GE(pair.b.stats().data_packets_sent, size / net::kMss);
  // Delayed ACKs: roughly one ACK per two segments, not per segment.
  EXPECT_LT(pair.a.stats().ack_packets_sent,
            pair.b.stats().data_packets_sent);
}

TEST(Tcp, SurvivesHeavyLoss) {
  TcpPair pair(/*loss=*/0.2);
  const std::uint32_t size = 120'000;
  bool done = false;
  pair.b.listen([&](NodeId peer, std::uint32_t flow, std::uint32_t msg_id,
                    std::uint32_t, std::uint32_t tag) {
    pair.b.send_message(peer, flow, msg_id, tag, tag);
  });
  pair.a.set_message_handler([&](NodeId, std::uint32_t, std::uint32_t,
                                 std::uint32_t len, std::uint32_t) {
    done = true;
    EXPECT_EQ(len, size);
  });
  pair.a.connect(NodeId{2}, 1, [&](NodeId peer, std::uint32_t flow) {
    pair.a.send_message(peer, flow, 1, 200, size);
  });
  pair.lb.sim.run();
  EXPECT_TRUE(done);
  EXPECT_GT(pair.b.stats().retransmissions + pair.a.stats().retransmissions,
            0u);
}

TEST(Tcp, MultipleMessagesInOrder) {
  TcpPair pair;
  std::vector<std::uint32_t> order;
  pair.b.listen([&](NodeId, std::uint32_t, std::uint32_t msg_id, std::uint32_t,
                    std::uint32_t) { order.push_back(msg_id); });
  pair.a.connect(NodeId{2}, 1, [&](NodeId peer, std::uint32_t flow) {
    for (std::uint32_t i = 1; i <= 10; ++i) {
      pair.a.send_message(peer, flow, i, 5000, 0);
    }
  });
  pair.lb.sim.run();
  ASSERT_EQ(order.size(), 10u);
  for (std::uint32_t i = 0; i < 10; ++i) EXPECT_EQ(order[i], i + 1);
}

TEST(Tcp, ConcurrentFlowsAreIndependent) {
  TcpPair pair;
  std::vector<std::uint32_t> flows;
  pair.b.listen([&](NodeId, std::uint32_t flow, std::uint32_t, std::uint32_t,
                    std::uint32_t) { flows.push_back(flow); });
  for (std::uint32_t f = 1; f <= 3; ++f) {
    pair.a.connect(NodeId{2}, f, [&pair, f](NodeId peer, std::uint32_t) {
      pair.a.send_message(peer, f, 100 + f, 256, 0);
    });
  }
  pair.lb.sim.run();
  EXPECT_EQ(flows.size(), 3u);
}

TEST(Udp, MessageFragmentationAndReassembly) {
  Loopback lb;
  Loopback::Env env_a(lb, NodeId{1});
  Loopback::Env env_b(lb, NodeId{2});
  UdpEndpoint a(env_a);
  UdpEndpoint b(env_b);
  lb.a_rx = [&](const net::Packet& p) { a.on_packet(p); };
  lb.b_rx = [&](const net::Packet& p) { b.on_packet(p); };

  bool got = false;
  b.set_message_handler([&](NodeId, std::uint32_t, std::uint32_t msg_id,
                            std::uint32_t len, std::uint32_t) {
    got = true;
    EXPECT_EQ(msg_id, 9u);
    EXPECT_EQ(len, 100'000u);
  });
  a.send_message(NodeId{2}, 1, 9, 100'000, 0);
  lb.sim.run();
  EXPECT_TRUE(got);
  EXPECT_GE(a.stats().datagrams_sent, 100'000u / 1472u);
}

TEST(Udp, NoAcknowledgmentTraffic) {
  Loopback lb;
  Loopback::Env env_a(lb, NodeId{1});
  Loopback::Env env_b(lb, NodeId{2});
  UdpEndpoint a(env_a);
  UdpEndpoint b(env_b);
  int b_to_a = 0;
  lb.a_rx = [&](const net::Packet& p) {
    ++b_to_a;
    a.on_packet(p);
  };
  lb.b_rx = [&](const net::Packet& p) { b.on_packet(p); };
  b.set_message_handler([](NodeId, std::uint32_t, std::uint32_t, std::uint32_t,
                           std::uint32_t) {});
  a.send_message(NodeId{2}, 1, 1, 50'000, 0);
  lb.sim.run();
  EXPECT_EQ(b_to_a, 0);  // nothing flows back: that is the point of Fig. 5
}

TEST(Udp, NakReliabilityRecoversLoss) {
  Loopback lb(/*loss=*/0.25);
  Loopback::Env env_a(lb, NodeId{1});
  Loopback::Env env_b(lb, NodeId{2});
  UdpEndpoint a(env_a, /*nak_reliability=*/true);
  UdpEndpoint b(env_b, /*nak_reliability=*/true);
  lb.a_rx = [&](const net::Packet& p) { a.on_packet(p); };
  lb.b_rx = [&](const net::Packet& p) { b.on_packet(p); };

  bool got = false;
  b.set_message_handler([&](NodeId, std::uint32_t, std::uint32_t,
                            std::uint32_t len, std::uint32_t) {
    got = true;
    EXPECT_EQ(len, 200'000u);
  });
  a.send_message(NodeId{2}, 1, 4, 200'000, 0);
  lb.sim.run();
  EXPECT_TRUE(got);
  EXPECT_GT(b.stats().naks_sent, 0u);
}

}  // namespace
}  // namespace stopwatch::transport
