#include "net/multicast.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace stopwatch::net {
namespace {

/// Test fixture with three members wired like a replica VMM trio, routing
/// group frames through MulticastGroup::on_frame as the Cloud does.
struct TrioFixture {
  sim::Simulator sim;
  Network net{sim, Rng(7)};
  MulticastGroup group{net, 1};
  std::vector<NodeId> members;
  // received[member] = list of (sender, proposal seq).
  std::map<std::uint32_t, std::vector<std::pair<std::uint32_t, std::uint64_t>>>
      received;

  explicit TrioFixture(LinkModel link = {}) {
    for (int i = 0; i < 3; ++i) {
      const auto id = net.add_node("m" + std::to_string(i), [](const Frame&) {});
      members.push_back(id);
    }
    for (const NodeId m : members) {
      net.set_handler(m, [this, m](const Frame& f) {
        if (f.rm_group == 1) group.on_frame(m, f);
      });
      group.add_member(m, [this, m](NodeId sender, const FramePayload& p) {
        if (const auto* prop = std::get_if<Proposal>(&p)) {
          received[m.value].push_back({sender.value, prop->copy_seq});
        }
      });
      for (const NodeId other : members) {
        if (other != m) net.set_link(m, other, link);
      }
    }
  }

  void multicast(int member_idx, std::uint64_t copy_seq) {
    Proposal prop;
    prop.copy_seq = copy_seq;
    prop.proposer = MachineId{static_cast<std::uint32_t>(member_idx)};
    group.send(members[static_cast<std::size_t>(member_idx)], prop, 128);
  }
};

TEST(Multicast, AllMembersReceiveEveryMessage) {
  TrioFixture fx;
  fx.multicast(0, 100);
  fx.multicast(1, 100);
  fx.multicast(2, 100);
  fx.sim.run();
  for (const NodeId m : fx.members) {
    EXPECT_EQ(fx.received[m.value].size(), 3u) << "member " << m.value;
  }
}

TEST(Multicast, SelfDeliveryIsSynchronous) {
  TrioFixture fx;
  fx.multicast(0, 5);
  // Before running the simulator, member 0 already has its own message.
  ASSERT_EQ(fx.received[fx.members[0].value].size(), 1u);
  EXPECT_EQ(fx.received[fx.members[0].value][0].second, 5u);
}

TEST(Multicast, LossyLinksAreHealedByNaks) {
  LinkModel lossy;
  lossy.loss_probability = 0.3;
  lossy.base_latency = Duration::micros(200);
  TrioFixture fx(lossy);
  const int kMessages = 200;
  for (int i = 0; i < kMessages; ++i) {
    fx.multicast(0, static_cast<std::uint64_t>(i));
    fx.multicast(1, static_cast<std::uint64_t>(i));
  }
  fx.sim.run();
  // Every member must have all 2 * kMessages messages despite 30% loss.
  for (const NodeId m : fx.members) {
    EXPECT_EQ(fx.received[m.value].size(), 2u * kMessages)
        << "member " << m.value;
  }
  EXPECT_GT(fx.group.naks_sent(), 0u);
  EXPECT_GT(fx.group.retransmissions(), 0u);
}

TEST(Multicast, PerSenderOrderIsPreserved) {
  LinkModel lossy;
  lossy.loss_probability = 0.2;
  TrioFixture fx(lossy);
  for (int i = 0; i < 100; ++i) fx.multicast(1, static_cast<std::uint64_t>(i));
  fx.sim.run();
  // Receivers see sender 1's messages in sequence order.
  for (const NodeId m : fx.members) {
    const auto& msgs = fx.received[m.value];
    ASSERT_EQ(msgs.size(), 100u);
    for (std::size_t i = 0; i < msgs.size(); ++i) {
      EXPECT_EQ(msgs[i].second, i);
    }
  }
}

TEST(Multicast, DuplicateFramesIgnored) {
  TrioFixture fx;
  fx.multicast(0, 7);
  fx.sim.run();
  // Replay the same wire frame at member 1.
  Frame f;
  f.src = fx.members[0];
  f.dst = fx.members[1];
  f.rm_group = 1;
  f.rm_seq = 1;
  f.payload = Proposal{VmId{}, 7, VirtTime{}, MachineId{0}};
  fx.group.on_frame(fx.members[1], f);
  EXPECT_EQ(fx.received[fx.members[1].value].size(), 1u);
}

TEST(Multicast, RejectsUnknownMember) {
  TrioFixture fx;
  Frame f;
  f.rm_group = 1;
  EXPECT_THROW(fx.group.on_frame(NodeId{55}, f), ContractViolation);
}

}  // namespace
}  // namespace stopwatch::net
