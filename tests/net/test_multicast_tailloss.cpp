// Regression tests for the PGM-style tail-loss machinery: NAKs alone
// cannot detect the loss of a stream's *final* messages — the SPM
// advertisement path must recover them (paper Sec. VII-A relies on every
// proposal reaching every VMM).
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "net/multicast.hpp"

namespace stopwatch::net {
namespace {

struct Pair {
  sim::Simulator sim;
  Network net{sim, Rng(17)};
  MulticastGroup group{net, 2};
  NodeId sender{}, receiver{};
  std::vector<std::uint64_t> delivered;
  // Frames matching this predicate are dropped exactly once.
  std::function<bool(const Frame&)> drop_once;
  bool dropped{false};

  Pair() {
    sender = net.add_node("s", [](const Frame&) {});
    receiver = net.add_node("r", [](const Frame&) {});
    net.set_handler(sender, [this](const Frame& f) {
      if (f.rm_group == 2) group.on_frame(sender, f);
    });
    net.set_handler(receiver, [this](const Frame& f) {
      if (drop_once && !dropped && drop_once(f)) {
        dropped = true;
        return;  // swallowed by the network
      }
      if (f.rm_group == 2) group.on_frame(receiver, f);
    });
    group.add_member(sender, [](NodeId, const FramePayload&) {});
    group.add_member(receiver, [this](NodeId, const FramePayload& p) {
      if (const auto* prop = std::get_if<Proposal>(&p)) {
        delivered.push_back(prop->copy_seq);
      }
    });
  }

  void send(std::uint64_t seq) {
    Proposal prop;
    prop.copy_seq = seq;
    group.send(sender, prop, 96);
  }
};

TEST(MulticastTailLoss, LastMessageLossRecoveredViaSpm) {
  Pair p;
  // Drop the data frame carrying rm_seq 3 (the final message).
  p.drop_once = [](const Frame& f) {
    return f.rm_seq == 3 && std::holds_alternative<Proposal>(f.payload);
  };
  p.send(10);
  p.send(11);
  p.send(12);  // lost on the wire; no further data follows
  p.sim.run();
  ASSERT_EQ(p.delivered.size(), 3u);
  EXPECT_EQ(p.delivered[2], 12u);
  EXPECT_GT(p.group.naks_sent(), 0u);
  EXPECT_EQ(p.group.retransmissions(), 1u);
}

TEST(MulticastTailLoss, SoleMessageLossRecovered) {
  Pair p;
  p.drop_once = [](const Frame& f) {
    return std::holds_alternative<Proposal>(f.payload);
  };
  p.send(42);  // the only message, and it is lost
  p.sim.run();
  ASSERT_EQ(p.delivered.size(), 1u);
  EXPECT_EQ(p.delivered[0], 42u);
}

TEST(MulticastTailLoss, LostNakIsRetried) {
  Pair p;
  bool nak_dropped = false;
  p.drop_once = [&nak_dropped](const Frame& f) {
    if (std::holds_alternative<Proposal>(f.payload) && f.rm_seq == 2) {
      return true;  // lose the data...
    }
    return false;
  };
  // ...and additionally lose the first NAK on the reverse path.
  p.net.set_handler(p.sender, [&p, &nak_dropped](const Frame& f) {
    if (!nak_dropped && std::holds_alternative<McastNak>(f.payload)) {
      nak_dropped = true;
      return;
    }
    if (f.rm_group == 2) p.group.on_frame(p.sender, f);
  });
  p.send(1);
  p.send(2);
  p.sim.run();
  ASSERT_EQ(p.delivered.size(), 2u);
  EXPECT_GE(p.group.naks_sent(), 2u);  // first lost, second succeeded
}

TEST(MulticastTailLoss, NoSpuriousNaksOnCleanStream) {
  Pair p;
  for (std::uint64_t i = 0; i < 50; ++i) p.send(i);
  p.sim.run();
  EXPECT_EQ(p.delivered.size(), 50u);
  EXPECT_EQ(p.group.naks_sent(), 0u);
  EXPECT_EQ(p.group.retransmissions(), 0u);
}

}  // namespace
}  // namespace stopwatch::net
