#include "net/network.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace stopwatch::net {
namespace {

struct Fixture {
  sim::Simulator sim;
  Network net{sim, Rng(1234)};
};

Frame guest_frame(NodeId src, NodeId dst, std::uint32_t bytes) {
  Frame f;
  f.src = src;
  f.dst = dst;
  f.size_bytes = bytes;
  Packet p;
  p.src = src;
  p.dst = dst;
  p.size_bytes = bytes;
  f.payload = GuestPacketPayload{p};
  return f;
}

TEST(Network, DeliversFrameToHandler) {
  Fixture fx;
  int received = 0;
  const NodeId a = fx.net.add_node("a", [](const Frame&) {});
  const NodeId b = fx.net.add_node("b", [&](const Frame& f) {
    ++received;
    EXPECT_EQ(f.src, a);
  });
  fx.net.send(guest_frame(a, b, 100));
  fx.sim.run();
  EXPECT_EQ(received, 1);
}

TEST(Network, LatencyIsAtLeastBasePlusSerialization) {
  Fixture fx;
  RealTime arrival{};
  const NodeId a = fx.net.add_node("a", [](const Frame&) {});
  const NodeId b =
      fx.net.add_node("b", [&](const Frame&) { arrival = fx.sim.now(); });
  LinkModel lm;
  lm.base_latency = Duration::millis(5);
  lm.jitter_sigma = 0.0;
  lm.bytes_per_second = 1e6;  // 1 MB/s -> 1000 bytes = 1 ms
  fx.net.set_link(a, b, lm);
  fx.net.send(guest_frame(a, b, 1000));
  fx.sim.run();
  EXPECT_EQ(arrival.ns, Duration::millis(6).ns);
}

TEST(Network, SerializationQueuesBackToBack) {
  Fixture fx;
  std::vector<RealTime> arrivals;
  const NodeId a = fx.net.add_node("a", [](const Frame&) {});
  const NodeId b = fx.net.add_node(
      "b", [&](const Frame&) { arrivals.push_back(fx.sim.now()); });
  LinkModel lm;
  lm.base_latency = Duration::millis(1);
  lm.jitter_sigma = 0.0;
  lm.bytes_per_second = 1e6;
  fx.net.set_link(a, b, lm);
  // Two 1000-byte frames sent at t=0 serialize at 1 ms each.
  fx.net.send(guest_frame(a, b, 1000));
  fx.net.send(guest_frame(a, b, 1000));
  fx.sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0].ns, Duration::millis(2).ns);
  EXPECT_EQ(arrivals[1].ns, Duration::millis(3).ns);
}

TEST(Network, LossDropsFrames) {
  Fixture fx;
  int received = 0;
  const NodeId a = fx.net.add_node("a", [](const Frame&) {});
  const NodeId b = fx.net.add_node("b", [&](const Frame&) { ++received; });
  LinkModel lm;
  lm.loss_probability = 1.0;
  fx.net.set_link(a, b, lm);
  EXPECT_FALSE(fx.net.send(guest_frame(a, b, 100)));
  fx.sim.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(fx.net.frames_dropped(), 1u);
}

TEST(Network, StatsAreCounted) {
  Fixture fx;
  const NodeId a = fx.net.add_node("a", [](const Frame&) {});
  const NodeId b = fx.net.add_node("b", [](const Frame&) {});
  fx.net.send(guest_frame(a, b, 500));
  fx.sim.run();
  EXPECT_EQ(fx.net.stats(a).frames_sent, 1u);
  EXPECT_EQ(fx.net.stats(a).bytes_sent, 500u);
  EXPECT_EQ(fx.net.stats(b).frames_received, 1u);
  EXPECT_EQ(fx.net.stats(b).bytes_received, 500u);
}

TEST(Network, PerDirectionLinksAreIndependent) {
  Fixture fx;
  RealTime ab{}, ba{};
  NodeId a{}, b{};
  a = fx.net.add_node("a", [&](const Frame&) { ba = fx.sim.now(); });
  b = fx.net.add_node("b", [&](const Frame&) { ab = fx.sim.now(); });
  LinkModel fast;
  fast.base_latency = Duration::micros(10);
  fast.jitter_sigma = 0.0;
  fast.bytes_per_second = 1e12;
  LinkModel slow = fast;
  slow.base_latency = Duration::millis(10);
  fx.net.set_link(a, b, fast);
  fx.net.set_link(b, a, slow);
  fx.net.send(guest_frame(a, b, 10));
  fx.net.send(guest_frame(b, a, 10));
  fx.sim.run();
  EXPECT_LT(ab.ns, Duration::millis(1).ns);
  EXPECT_GE(ba.ns, Duration::millis(10).ns);
}

TEST(Network, PacketContentHashDiscriminates) {
  Packet p1, p2;
  p1.seq = 1;
  p2.seq = 2;
  EXPECT_NE(p1.content_hash(), p2.content_hash());
  p2.seq = 1;
  EXPECT_EQ(p1.content_hash(), p2.content_hash());
}

TEST(Network, UnknownNodeRejected) {
  Fixture fx;
  const NodeId a = fx.net.add_node("a", [](const Frame&) {});
  Frame f = guest_frame(a, NodeId{99}, 10);
  EXPECT_THROW(fx.net.send(f), ContractViolation);
}

TEST(Network, NodeLinkAppliesToAllTrafficOfANode) {
  // One set_node_link entry must model a slow client against every peer —
  // the O(1) alternative to per-pair links against each of Θ(n²) VMs.
  Fixture fx;
  RealTime to_client{}, to_peer{}, from_client{};
  const NodeId client = fx.net.add_node(
      "client", [&](const Frame&) { to_client = fx.sim.now(); });
  const NodeId a =
      fx.net.add_node("a", [&](const Frame&) { from_client = fx.sim.now(); });
  const NodeId b =
      fx.net.add_node("b", [&](const Frame&) { to_peer = fx.sim.now(); });
  LinkModel fast;
  fast.base_latency = Duration::micros(10);
  fast.jitter_sigma = 0.0;
  fast.bytes_per_second = 1e12;
  fx.net.set_default_link(fast);
  LinkModel slow = fast;
  slow.base_latency = Duration::millis(20);
  fx.net.set_node_link(client, slow);

  fx.net.send(guest_frame(a, client, 10));  // dst-node link applies
  fx.net.send(guest_frame(client, a, 10));  // src-node link applies
  fx.net.send(guest_frame(a, b, 10));       // untouched pair stays fast
  fx.sim.run();
  EXPECT_GE(to_client.ns, Duration::millis(20).ns);
  EXPECT_GE(from_client.ns, Duration::millis(20).ns);
  EXPECT_LT(to_peer.ns, Duration::millis(1).ns);
}

TEST(Network, PairLinkOverridesNodeLink) {
  Fixture fx;
  RealTime arrival{};
  const NodeId client =
      fx.net.add_node("client", [&](const Frame&) { arrival = fx.sim.now(); });
  const NodeId a = fx.net.add_node("a", [](const Frame&) {});
  LinkModel fast;
  fast.base_latency = Duration::micros(10);
  fast.jitter_sigma = 0.0;
  fast.bytes_per_second = 1e12;
  LinkModel slow = fast;
  slow.base_latency = Duration::millis(20);
  fx.net.set_node_link(client, slow);
  fx.net.set_link(a, client, fast);  // explicit pair wins
  fx.net.send(guest_frame(a, client, 10));
  fx.sim.run();
  EXPECT_LT(arrival.ns, Duration::millis(1).ns);
}

}  // namespace
}  // namespace stopwatch::net
