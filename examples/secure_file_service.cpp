// A complete service deployment: an Apache-like file server running as a
// StopWatch-replicated guest, downloaded from by an external client over
// both HTTP-like TCP and UDP, illustrating the paper's Fig. 5 guidance on
// adapting services (minimize inbound packets) for best performance.
//
//   ./build/examples/secure_file_service
#include <cstdio>
#include <memory>

#include "core/cloud.hpp"
#include "workload/file_service.hpp"

using namespace stopwatch;
using workload::FileDownloadClient;

namespace {

double download_ms(core::Cloud& cloud, FileDownloadClient& client,
                   std::uint32_t size) {
  bool done = false;
  Duration latency{};
  client.download(size, [&](Duration d) {
    done = true;
    latency = d;
  });
  while (!done) cloud.run_for(Duration::millis(50));
  return latency.to_seconds() * 1e3;
}

}  // namespace

int main() {
  core::CloudConfig cfg;
  cfg.seed = 5;
  cfg.policy = core::Policy::kStopWatch;
  cfg.machine_count = 3;
  core::Cloud cloud(cfg);

  const core::VmHandle server = cloud.add_vm(
      "apache",
      [] { return std::make_unique<workload::FileServerProgram>(); },
      {0, 1, 2});

  FileDownloadClient tcp_client(cloud, "laptop-tcp", cloud.vm_addr(server),
                                FileDownloadClient::Protocol::kHttpTcp);
  FileDownloadClient udp_client(cloud, "laptop-udp", cloud.vm_addr(server),
                                FileDownloadClient::Protocol::kUdp);
  cloud.start();

  std::printf("Downloading from the replicated server (StopWatch cloud):\n");
  std::printf("%10s %16s %16s\n", "size", "HTTP/TCP (ms)", "UDP (ms)");
  for (std::uint32_t size : {64u * 1024, 512u * 1024, 2u * 1024 * 1024}) {
    const double tcp_ms = download_ms(cloud, tcp_client, size);
    const double udp_ms = download_ms(cloud, udp_client, size);
    std::printf("%9uK %16.1f %16.1f\n", size / 1024, tcp_ms, udp_ms);
  }

  std::printf(
      "\nUDP (one inbound request, zero inbound ACKs) avoids paying the\n"
      "median-agreement delay per inbound packet — the paper's recipe for\n"
      "making file download over StopWatch competitive with plain Xen.\n");
  std::printf("divergences: %llu, egress hash mismatches: %llu\n",
              static_cast<unsigned long long>(cloud.total_divergences()),
              static_cast<unsigned long long>(
                  cloud.egress_stats(server).hash_mismatches));
  return 0;
}
