// Demonstration of the attack StopWatch defeats.
//
// An attacker VM times packet deliveries while a victim VM serves files on
// the same host. Under unmodified Xen the attacker distinguishes
// "victim present" from "victim absent" within a handful of observations;
// under StopWatch the same attacker needs orders of magnitude more.
//
//   ./build/examples/timing_channel_demo
#include <cstdio>

#include "../bench/bench_util.hpp"

using namespace stopwatch;
using namespace stopwatch::bench;

namespace {

void demo(bool stopwatch) {
  std::printf("--- %s ---\n", stopwatch ? "StopWatch" : "unmodified Xen");

  TimingScenarioConfig with_victim;
  with_victim.policy = stopwatch ? hypervisor::PolicyKind::kStopWatch
                                 : hypervisor::PolicyKind::kBaselineXen;
  with_victim.victim_present = true;
  with_victim.run_time = Duration::seconds(20);
  with_victim.seed = 7;
  TimingScenarioConfig without_victim = with_victim;
  without_victim.victim_present = false;

  const auto observed_with = run_timing_scenario(with_victim);
  const auto observed_without = run_timing_scenario(without_victim);

  const auto w = stats::summarize(observed_with.inter_arrival_ms);
  const auto wo = stats::summarize(observed_without.inter_arrival_ms);
  std::printf("attacker's inter-delivery times, victim present: "
              "p50=%.2fms p95=%.2fms\n", w.p50, w.p95);
  std::printf("attacker's inter-delivery times, victim absent:  "
              "p50=%.2fms p95=%.2fms\n", wo.p50, wo.p95);

  const auto detector = make_detector(observed_without.inter_arrival_ms,
                                      observed_with.inter_arrival_ms);
  std::printf("observations the attacker needs to detect the victim\n");
  for (double conf : {0.80, 0.95, 0.99}) {
    std::printf("  at %.0f%% confidence: %ld\n", conf * 100,
                detector.observations_needed(conf));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== Access-driven timing channel: attack vs defense ===\n\n");
  demo(/*stopwatch=*/false);
  demo(/*stopwatch=*/true);
  std::printf(
      "The attacker VM is identical in both runs; only the hypervisor\n"
      "changed. StopWatch's replication + median delivery buys the victim\n"
      "orders of magnitude more cover (paper Figs. 1 and 4).\n");
  return 0;
}
