// Plan replica placement for a StopWatch cloud (paper Sec. VIII).
//
// Given n machines with capacity c guest VMs each, print how many VMs the
// cloud can host under StopWatch's nonoverlapping-coresidency constraint
// and an explicit placement (which machines host which VM's replicas).
//
//   ./build/examples/placement_planner [n] [c]
#include <cstdio>
#include <cstdlib>

#include "placement/placement.hpp"

using namespace stopwatch::placement;

int main(int argc, char** argv) {
  int n = argc > 1 ? std::atoi(argv[1]) : 9;
  const bool constructive = (n >= 9 && n % 6 == 3);
  int c_max = (n - 1) / 2;
  int c = argc > 2 ? std::atoi(argv[2]) : c_max;
  if (n < 3) {
    std::printf("need at least 3 machines\n");
    return 1;
  }
  if (c < 1) c = 1;
  if (c > c_max) c = c_max;

  std::printf("cloud: n = %d machines, capacity c = %d guest VMs each\n", n, c);
  std::printf("isolation baseline (1 VM per machine): %d VMs\n\n", n);

  std::vector<Triangle> placement;
  if (constructive) {
    placement = theorem2_placement(n, c);
    std::printf("Theorem 2 constructive placement (n = 3 mod 6): %zu VMs\n",
                placement.size());
  } else {
    placement = greedy_packing(n, c);
    std::printf("greedy placement (general n): %zu VMs\n", placement.size());
  }
  std::printf("max possible ignoring capacity (Theorem 1): %ld VMs\n",
              max_triangle_packing(n));
  std::printf("placement valid (edge-disjoint, within capacity): %s\n\n",
              valid_placement(placement, n, c) ? "yes" : "NO");

  const int shown = placement.size() > 12 ? 12 : static_cast<int>(placement.size());
  for (int i = 0; i < shown; ++i) {
    const Triangle& t = placement[static_cast<std::size_t>(i)];
    std::printf("  VM %2d -> machines {%d, %d, %d}\n", i, t.a, t.b, t.c);
  }
  if (shown < static_cast<int>(placement.size())) {
    std::printf("  ... and %zu more\n", placement.size() - shown);
  }

  const auto occ = occupancy(placement, n);
  int max_occ = 0;
  for (int o : occ) max_occ = std::max(max_occ, o);
  std::printf("\nbusiest machine hosts %d replica(s) (capacity %d)\n", max_occ,
              c);
  std::printf("utilization vs isolation: %.2fx more guest VMs\n",
              static_cast<double>(placement.size()) / n);
  return 0;
}
