// Quickstart: a 3-replica StopWatch cloud in ~60 lines.
//
// Build a cloud, add one guest VM (replicated across three machines), send
// it a packet from an external client, and watch the reply come back
// through the egress node with median timing. Run:
//
//   ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "core/cloud.hpp"

using namespace stopwatch;

namespace {

/// A guest that echoes every request back to its sender.
class EchoProgram final : public vm::GuestProgram {
 public:
  void on_boot(vm::GuestApi&) override {}
  void on_timer_tick(vm::GuestApi&, std::uint64_t) override {}
  void on_packet(vm::GuestApi& api, const net::Packet& pkt) override {
    std::printf("  [guest] request %llu delivered at virtual %.3f ms\n",
                static_cast<unsigned long long>(pkt.seq),
                api.now().to_millis());
    net::Packet reply;
    reply.dst = pkt.src;
    reply.seq = pkt.seq;
    reply.size_bytes = 100;
    api.send_packet(reply);
  }
};

}  // namespace

int main() {
  // A cloud of three machines running the StopWatch hypervisor.
  core::CloudConfig cfg;
  cfg.seed = 2013;
  cfg.policy = core::Policy::kStopWatch;  // try kBaselineXen for comparison
  cfg.machine_count = 3;
  core::Cloud cloud(cfg);

  // One guest VM; StopWatch transparently runs three replicas. (Only one
  // replica's printout appears interleaved below — all three execute the
  // same deterministic program.)
  const core::VmHandle vm = cloud.add_vm(
      "echo", [] { return std::make_unique<EchoProgram>(); }, {0, 1, 2});

  // An external client.
  const NodeId client = cloud.add_external_node(
      "client", [&cloud](const net::Packet& pkt) {
        std::printf("[client] reply %llu received at real %.3f ms\n",
                    static_cast<unsigned long long>(pkt.seq),
                    cloud.simulator().now().to_millis());
      });

  cloud.start();
  for (int i = 0; i < 3; ++i) {
    cloud.simulator().schedule_at(RealTime::millis(10 + 30 * i), [&, i] {
      net::Packet req;
      req.dst = cloud.vm_addr(vm);
      req.kind = net::PacketKind::kRequest;
      req.seq = static_cast<std::uint64_t>(i);
      req.size_bytes = 80;
      std::printf("[client] sending request %d\n", i);
      cloud.send_external(client, req);
    });
  }
  cloud.run_for(Duration::seconds(1));

  std::printf("\nreplicas deterministic: %s, divergences: %llu\n",
              cloud.replicas_deterministic(vm) ? "yes" : "NO",
              static_cast<unsigned long long>(cloud.total_divergences()));
  std::printf("egress released %llu packets (each on its 2nd replica copy)\n",
              static_cast<unsigned long long>(
                  cloud.egress_stats(vm).packets_released));
  return 0;
}
