// stopwatch_bench — the unified experiment runner. All scenarios live in
// bench/scenarios/ and self-register with the ScenarioRegistry; this main
// only forwards to the CLI driver in the library.
#include "experiment/runner.hpp"

int main(int argc, char** argv) {
  return stopwatch::experiment::run_cli(argc, argv);
}
