// Shared scenario builders for the experiment harnesses (see DESIGN.md §4).
#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/contracts.hpp"
#include "core/cloud.hpp"
#include "experiment/scenario.hpp"
#include "hypervisor/guest_context.hpp"
#include "hypervisor/policy.hpp"
#include "leakage/estimators.hpp"
#include "stats/detection.hpp"
#include "stats/ecdf.hpp"
#include "stats/summary.hpp"
#include "workload/timing.hpp"

namespace stopwatch::bench {

/// Configuration of a Fig. 4-style timing-channel run: an attacker VM whose
/// deliveries are timed, optionally a file-serving victim VM with exactly
/// one replica coresident with one attacker replica, and Poisson background
/// broadcast traffic.
struct TimingScenarioConfig {
  /// Which mitigation backend runs the cloud. Replicated backends
  /// (StopWatch) get the 2r-1 machine overlap layout; unreplicated ones
  /// run attacker and victim coresident on one machine.
  hypervisor::PolicyKind policy{hypervisor::PolicyKind::kStopWatch};
  bool victim_present{true};
  int replica_count{3};
  double broadcast_rate_hz{80.0};
  Duration run_time{Duration::seconds(40)};
  std::uint64_t seed{1};
  /// Sec. IX collaborating attacker: extra host load injected on the first
  /// `marginalize_machines` attacker machines.
  double marginalize_load{0.0};
  int marginalize_machines{0};
  hypervisor::AggregationRule aggregation{
      hypervisor::AggregationRule::kMedian};
  /// For AggregationRule::kLeader: dictating machine (the victim-coresident
  /// machine is replica_count - 1 in this scenario's layout).
  std::uint32_t leader_machine{0};
  Duration delta_n{Duration::millis(10)};
  Duration delta_d{Duration::millis(30)};
  bool epoch_resync{false};
  std::uint64_t epoch_instr{200'000'000};
  double base_ips{1e9};
  double slope_min{0.90};
  double slope_max{1.10};
  /// Deterland virtual-time batch quantum (kDeterland only).
  Duration batch_quantum{Duration::millis(1)};
  /// TIFC egress pacing quantum (kTifcPacing only).
  Duration release_quantum{Duration::micros(500)};
};

struct TimingScenarioResult {
  /// The attacker's measurement series (guest-clock inter-delivery, ms).
  std::vector<double> inter_arrival_ms;
  std::uint64_t divergences{0};
  std::uint64_t deliveries{0};
  /// Per-packet proposal spread / median margin across the run (replica 0).
  std::vector<double> proposal_spread_ms;
  std::vector<double> median_margin_ms;
  std::vector<double> disk_margin_ms;
  /// |virt - real| of attacker replica 0 at the end (seconds).
  double clock_drift_s{0.0};
  bool deterministic{true};
};

inline TimingScenarioResult run_timing_scenario(
    const TimingScenarioConfig& tc) {
  core::CloudConfig cfg;
  cfg.seed = tc.seed;
  cfg.policy = hypervisor::PolicyConfig{tc.policy};
  const bool replicated = hypervisor::policy_replicated(tc.policy);
  cfg.replica_count = tc.replica_count;
  // Host-load model for the timing experiments: a bursting coresident
  // victim visibly perturbs the Dom0 packet path and the vCPU scheduler
  // (paper Sec. V-B testbed).
  cfg.machine_template.vmm_load_delay = Duration::millis(3);
  cfg.machine_template.contention_alpha = 0.8;
  cfg.machine_template.preempt_wait = Duration::millis(12);
  cfg.machine_template.preempt_interval_instr = 5'000'000;
  cfg.machine_template.base_ips = tc.base_ips;
  // StopWatch knobs only go under kind = kStopWatch: customizing them on a
  // non-replicated backend is a ContractViolation by design.
  if (replicated) {
    auto& sw = cfg.policy.stopwatch;
    sw.delta_n = tc.delta_n;
    sw.delta_d = tc.delta_d;
    sw.aggregation = tc.aggregation;
    sw.leader_machine = tc.leader_machine;
    sw.epoch_resync = tc.epoch_resync;
    sw.epoch_instr = tc.epoch_instr;
    sw.slope_min = tc.slope_min;
    sw.slope_max = tc.slope_max;
  }
  cfg.policy.deterland.batch_quantum = tc.batch_quantum;
  cfg.policy.deterland.delta_n = tc.delta_n;
  cfg.policy.deterland.delta_d = tc.delta_d;
  cfg.policy.tifc.release_quantum = tc.release_quantum;

  std::vector<int> attacker_machines;
  std::vector<int> victim_machines;
  if (replicated) {
    const int r = tc.replica_count;
    cfg.machine_count = 2 * r - 1;
    for (int i = 0; i < r; ++i) attacker_machines.push_back(i);
    // The victim's replica set overlaps the attacker's in exactly one
    // machine (vertex-sharing is allowed; edge-disjointness holds).
    for (int i = r - 1; i < 2 * r - 1; ++i) victim_machines.push_back(i);
  } else {
    cfg.machine_count = 1;
    attacker_machines = {0};
    victim_machines = {0};
  }

  core::Cloud cloud(cfg);
  const core::VmHandle attacker = cloud.add_vm(
      "attacker",
      [] { return std::make_unique<workload::AttackerProbeProgram>(); },
      attacker_machines);

  const NodeId sink =
      cloud.add_external_node("sink", [](const net::Packet&) {});
  core::VmHandle victim{};
  if (tc.victim_present) {
    workload::VictimServerProgram::Config vc;
    vc.sink = sink;
    vc.packets_per_unit = 3;
    vc.disk_probability = 0.12;
    vc.disk_bytes = 32 * 1024;
    victim = cloud.add_vm(
        "victim",
        [vc] { return std::make_unique<workload::VictimServerProgram>(vc); },
        victim_machines);
  }

  for (int m = 0; m < tc.marginalize_machines && m < cloud.machine_count();
       ++m) {
    cloud.machine(m).set_extra_load(tc.marginalize_load);
  }

  workload::BackgroundBroadcaster bcast(cloud, "bcast",
                                        cloud.vm_addr(attacker),
                                        tc.broadcast_rate_hz, tc.seed ^ 0x55);
  cloud.start();
  bcast.start();
  cloud.run_for(tc.run_time);
  cloud.halt_all();

  TimingScenarioResult result;
  auto& probe = static_cast<workload::AttackerProbeProgram&>(
      cloud.replica(attacker, 0).program());
  result.inter_arrival_ms = probe.inter_arrival_ms();
  result.divergences = cloud.total_divergences();
  const auto& s = cloud.replica(attacker, 0).stats();
  result.deliveries = s.net_deliveries;
  result.proposal_spread_ms = s.proposal_spread_ms;
  result.median_margin_ms = s.median_margin_ms;
  result.disk_margin_ms = tc.victim_present && replicated
                              ? cloud.replica(victim, 0).stats().disk_margin_ms
                              : s.disk_margin_ms;
  result.clock_drift_s =
      std::abs(cloud.replica(attacker, 0).virt_now().to_seconds() -
               cloud.simulator().now().to_seconds());
  result.deterministic = cloud.replicas_deterministic(attacker);
  return result;
}

/// The enum knob every detection-driven and leakage scenario exposes as
/// --param binning=...: "adaptive" (the default: equiprobable cells,
/// resolution concentrating where the mass is — the sub-millisecond burst
/// cluster, which is where host contention shows), "fixed" (equal-width
/// cells, the paper's layout), and "sturges" (equal-width with
/// ceil(log2 n) + 1 cells from the sample size). One declaration site so
/// the choice list cannot drift between scenarios.
inline experiment::ParamSpec binning_param() {
  return experiment::ParamSpec::enumeration(
      "binning", "observation cell layout", "adaptive",
      {"fixed", "adaptive", "sturges"});
}

/// The enum knob policy-sweepable scenarios expose as --param policy=...;
/// choices come from hypervisor::policy_choices() so the list cannot drift
/// from the backends that actually exist. The default is "stopwatch":
/// running without the param reproduces the golden outputs byte-for-byte.
inline experiment::ParamSpec policy_param() {
  return experiment::ParamSpec::enumeration(
      "policy", "mitigation policy backend", "stopwatch",
      hypervisor::policy_choices());
}

/// Observations needed to distinguish two measured series, per confidence.
/// `binning` is a binning_param() choice, dispatched through the leakage
/// subsystem's mapping (one source of truth for the knob): fixed ->
/// 40 equal-width cells, adaptive -> 40 equiprobable-under-null cells,
/// sturges -> ceil(log2 n) + 1 equal-width cells from the *null* sample
/// size (the detector's reference distribution).
inline stats::ChiSquaredDetector make_detector(
    const std::vector<double>& null_samples,
    const std::vector<double>& victim_samples,
    const std::string& binning = "adaptive") {
  const stats::Ecdf null_ecdf(null_samples);
  const stats::Ecdf victim_ecdf(victim_samples);
  switch (leakage::binning_mode_from_choice(binning)) {
    case leakage::BinningMode::kFixed:
      return stats::ChiSquaredDetector::from_samples(
          null_ecdf, victim_ecdf, 40, stats::Binning::kEqualWidth);
    case leakage::BinningMode::kSturges:
      return stats::ChiSquaredDetector::from_samples(
          null_ecdf, victim_ecdf,
          leakage::sturges_bin_count(null_ecdf.size()),
          stats::Binning::kEqualWidth);
    case leakage::BinningMode::kAdaptive:
      break;
  }
  return stats::ChiSquaredDetector::from_samples(null_ecdf, victim_ecdf, 40,
                                                 stats::Binning::kEquiprobable);
}

}  // namespace stopwatch::bench
