// stopwatch_bench_diff — compares a baseline stopwatch-bench/1 report
// against a candidate and exits non-zero when a ns-class metric regresses
// beyond the threshold. The logic lives in the library (experiment/diff.hpp)
// so tests exercise the exact gate CI uses.
#include "experiment/diff.hpp"

int main(int argc, char** argv) {
  return stopwatch::experiment::run_diff_cli(argc, argv);
}
