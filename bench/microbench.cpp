// Microbenchmarks (google-benchmark) of the core primitives: the simulator
// event loop, median agreement math, placement construction, and the
// statistical machinery — the building blocks whose costs bound simulation
// throughput.
#include <benchmark/benchmark.h>

#include <memory>

#include "common/rng.hpp"
#include "placement/placement.hpp"
#include "sim/simulator.hpp"
#include "stats/detection.hpp"
#include "stats/distribution.hpp"
#include "stats/order_statistics.hpp"
#include "stats/special_functions.hpp"

namespace {

using namespace stopwatch;

void BM_SimulatorScheduleAndRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    const auto n = state.range(0);
    for (std::int64_t i = 0; i < n; ++i) {
      sim.schedule_at(RealTime::nanos(i * 100), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorScheduleAndRun)->Arg(1000)->Arg(100000);

void BM_Median3(benchmark::State& state) {
  Rng rng(1);
  std::int64_t a = rng.uniform_int(0, 1 << 30);
  std::int64_t b = rng.uniform_int(0, 1 << 30);
  std::int64_t c = rng.uniform_int(0, 1 << 30);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::median3(a, b, c));
    ++a;
    b += 3;
    c -= 2;
  }
}
BENCHMARK(BM_Median3);

void BM_OrderStatisticCdf(benchmark::State& state) {
  const std::vector<double> f{0.2, 0.5, 0.7, 0.9, 0.95};
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::order_statistic_cdf(f, 3));
  }
}
BENCHMARK(BM_OrderStatisticCdf);

void BM_ChiSquaredInverse(benchmark::State& state) {
  double p = 0.90;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::chi_squared_inverse_cdf(p, 39.0));
    p = p >= 0.99 ? 0.70 : p + 0.001;
  }
}
BENCHMARK(BM_ChiSquaredInverse);

void BM_DetectorBuild(benchmark::State& state) {
  auto base = std::make_shared<stats::Exponential>(1.0);
  auto victim = std::make_shared<stats::Exponential>(0.5);
  for (auto _ : state) {
    const stats::ChiSquaredDetector det(
        [&](double x) { return base->cdf(x); },
        [&](double x) { return victim->cdf(x); }, 0.0, 30.0);
    benchmark::DoNotOptimize(det.noncentrality());
  }
}
BENCHMARK(BM_DetectorBuild);

void BM_Theorem2Placement(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int c = (n - 1) / 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(placement::theorem2_placement(n, c));
  }
}
BENCHMARK(BM_Theorem2Placement)->Arg(21)->Arg(99)->Arg(201);

void BM_GreedyPacking(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(placement::greedy_packing(n));
  }
}
BENCHMARK(BM_GreedyPacking)->Arg(16)->Arg(64);

void BM_RngExponential(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.exponential(1.0));
  }
}
BENCHMARK(BM_RngExponential);

}  // namespace

BENCHMARK_MAIN();
