// Experiment E4 — Paper Fig. 5: HTTP and UDP file-retrieval latency from a
// cloud-resident web server, baseline (unmodified Xen) vs StopWatch, for
// file sizes 1 KB .. 10 MB (cold start, averages over repeated runs).
//
// The paper's headline numbers: HTTP over StopWatch loses < 2.8x for files
// >= 100 KB (inbound ACKs pay Δn each); UDP over StopWatch — one inbound
// request packet total — is competitive with the baselines at >= 100 KB.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/cloud.hpp"
#include "stats/summary.hpp"
#include "workload/file_service.hpp"

using namespace stopwatch;
using workload::FileDownloadClient;

namespace {

struct Series {
  std::vector<double> avg_ms;  // one per file size
};

const std::vector<std::uint32_t> kSizes = {1 << 10, 10 << 10, 100 << 10,
                                           1 << 20, 10 << 20};
constexpr int kRunsPerSize = 5;

Series run_series(core::Policy policy, FileDownloadClient::Protocol proto,
                  std::uint64_t seed) {
  core::CloudConfig cfg;
  cfg.seed = seed;
  cfg.policy = policy;
  cfg.machine_count = 3;
  core::Cloud cloud(cfg);
  const core::VmHandle vm = cloud.add_vm(
      "webserver", [] { return std::make_unique<workload::FileServerProgram>(); },
      {0, 1, 2});
  FileDownloadClient client(cloud, "client", cloud.vm_addr(vm), proto);
  cloud.start();

  Series out;
  for (const std::uint32_t size : kSizes) {
    std::vector<double> latencies;
    for (int run = 0; run < kRunsPerSize; ++run) {
      bool done = false;
      Duration latency{};
      client.download(size, [&](Duration d) {
        done = true;
        latency = d;
      });
      while (!done) cloud.run_for(Duration::millis(100));
      latencies.push_back(latency.to_seconds() * 1e3);
    }
    out.avg_ms.push_back(stats::summarize(latencies).mean);
  }
  return out;
}

}  // namespace

int main() {
  std::printf("=== E4: Fig. 5 — HTTP and UDP file-retrieval latency ===\n\n");

  const Series http_base =
      run_series(core::Policy::kBaselineXen, FileDownloadClient::Protocol::kHttpTcp, 21);
  const Series http_sw =
      run_series(core::Policy::kStopWatch, FileDownloadClient::Protocol::kHttpTcp, 21);
  const Series udp_base =
      run_series(core::Policy::kBaselineXen, FileDownloadClient::Protocol::kUdp, 22);
  const Series udp_sw =
      run_series(core::Policy::kStopWatch, FileDownloadClient::Protocol::kUdp, 22);

  std::printf("%10s %14s %14s %8s %14s %14s %8s\n", "size", "HTTP base(ms)",
              "HTTP SW(ms)", "ratio", "UDP base(ms)", "UDP SW(ms)", "ratio");
  for (std::size_t i = 0; i < kSizes.size(); ++i) {
    std::printf("%9uK %14.1f %14.1f %8.2f %14.1f %14.1f %8.2f\n",
                kSizes[i] / 1024, http_base.avg_ms[i], http_sw.avg_ms[i],
                http_sw.avg_ms[i] / http_base.avg_ms[i], udp_base.avg_ms[i],
                udp_sw.avg_ms[i], udp_sw.avg_ms[i] / udp_base.avg_ms[i]);
  }

  std::printf(
      "\nPaper shape check: HTTP-over-StopWatch ratio settles below ~2.8x\n"
      "for sizes >= 100KB; UDP-over-StopWatch approaches the baselines as\n"
      "size grows (single inbound packet per retrieval).\n");
  return 0;
}
