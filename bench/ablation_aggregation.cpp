// Experiment E11 — Ablation: why the *median*?
//
// The paper argues (Secs. II, III) that prior replication systems let one
// replica dictate timing — which simply copies a coresident victim's signal
// to all replicas — and that the median of three is the right aggregate.
// This ablation replays the Fig. 4 experiment under four aggregation rules:
// median (StopWatch), min, max, and leader-dictates (with the leader chosen
// adversarially as the victim-coresident machine).
#include <cstdio>

#include "bench_util.hpp"

using namespace stopwatch;
using namespace stopwatch::bench;

namespace {

struct Outcome {
  long obs99{0};
  double mean_wait_ms{0};
};

Outcome evaluate(hypervisor::AggregationRule rule) {
  TimingScenarioConfig base;
  base.run_time = Duration::seconds(30);
  base.seed = 61;
  base.aggregation = rule;
  // Adversarial leader: the machine shared with the victim (index r-1).
  base.leader_machine = static_cast<std::uint32_t>(base.replica_count - 1);

  TimingScenarioConfig clean = base;
  clean.victim_present = false;
  TimingScenarioConfig vic = base;
  vic.victim_present = true;

  const auto r_clean = run_timing_scenario(clean);
  const auto r_vic = run_timing_scenario(vic);
  Outcome out;
  out.obs99 = make_detector(r_clean.inter_arrival_ms, r_vic.inter_arrival_ms)
                  .observations_needed(0.99);
  out.mean_wait_ms = r_clean.median_margin_ms.empty()
                         ? 0.0
                         : stats::summarize(r_clean.median_margin_ms).mean;
  return out;
}

}  // namespace

int main() {
  std::printf("=== E11: Ablation — delivery-time aggregation rule ===\n\n");
  std::printf("%10s %24s %24s\n", "rule", "obs needed @0.99", "mean slack (ms)");

  const auto median = evaluate(hypervisor::AggregationRule::kMedian);
  std::printf("%10s %24ld %24.2f\n", "median", median.obs99, median.mean_wait_ms);
  const auto mn = evaluate(hypervisor::AggregationRule::kMin);
  std::printf("%10s %24ld %24.2f\n", "min", mn.obs99, mn.mean_wait_ms);
  const auto mx = evaluate(hypervisor::AggregationRule::kMax);
  std::printf("%10s %24ld %24.2f\n", "max", mx.obs99, mx.mean_wait_ms);
  const auto leader = evaluate(hypervisor::AggregationRule::kLeader);
  std::printf("%10s %24ld %24.2f\n", "leader*", leader.obs99,
              leader.mean_wait_ms);
  std::printf("  (*leader = the victim-coresident machine, worst case)\n");

  std::printf(
      "\nDesign-choice check: the median needs the most attacker\n"
      "observations; min and an adversarial leader expose the victim's\n"
      "host directly; max pays more delivery slack without beating the\n"
      "median's protection.\n");
  return 0;
}
