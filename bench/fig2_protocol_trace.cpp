// Experiment E2 — Paper Figs. 2 & 3: the packet-delivery protocol in action.
// Prints, for the first few inbound packets of a replicated guest, each
// replica VMM's view: packet arrival (real time), the three proposed
// virtual delivery times, the adopted median, and the injection point
// (virtual and real) at the first guest-caused VM exit past the median.
#include <cstdio>
#include <memory>

#include "core/cloud.hpp"
#include "workload/timing.hpp"

using namespace stopwatch;

int main() {
  std::printf("=== E2: Figs. 2/3 — packet delivery protocol trace ===\n\n");

  core::CloudConfig cfg;
  cfg.seed = 11;
  cfg.machine_count = 3;
  cfg.guest_template.record_packet_traces = true;
  core::Cloud cloud(cfg);

  const core::VmHandle vm = cloud.add_vm(
      "guest", [] { return std::make_unique<workload::AttackerProbeProgram>(); },
      {0, 1, 2});
  workload::BackgroundBroadcaster bcast(cloud, "sender", cloud.vm_addr(vm),
                                        6.0, 3);
  cloud.start();
  bcast.start();
  cloud.run_for(Duration::seconds(2));
  cloud.halt_all();

  for (int r = 0; r < 3; ++r) {
    const auto& stats = cloud.replica(vm, r).stats();
    std::printf("Replica %c (machine %d):\n", 'A' + r, r);
    int shown = 0;
    for (const auto& tr : stats.packet_traces) {
      if (++shown > 3) break;
      std::printf("  packet #%llu\n",
                  static_cast<unsigned long long>(tr.copy_seq));
      std::printf("    arrival at VMM (real):        %10.3f ms\n",
                  tr.arrival_real_ms);
      for (const auto& [machine, virt_ms] : tr.proposals_ms) {
        std::printf("    proposal from machine %u:      %10.3f ms (virtual)\n",
                    machine, virt_ms);
      }
      std::printf("    median adopted:               %10.3f ms (virtual)\n",
                  tr.chosen_delivery_virt_ms);
      std::printf("    injected at guest exit:       %10.3f ms (virtual), "
                  "%10.3f ms (real)\n",
                  tr.inject_virt_ms, tr.inject_real_ms);
    }
    std::printf("\n");
  }

  std::printf(
      "Invariant checks: all replicas adopt the same median and inject at\n"
      "the same virtual time; injection happens at the first guest-caused\n"
      "VM exit whose virtual time passes the median (Sec. V).\n");
  std::printf("replica determinism: %s, divergences: %llu\n",
              cloud.replicas_deterministic(vm) ? "OK" : "VIOLATED",
              static_cast<unsigned long long>(cloud.total_divergences()));
  return 0;
}
