// Experiment E9 — Paper Sec. VII-A: calibration of the virtual-time offsets
// Δn (network-interrupt proposals) and Δd (disk/DMA delivery).
//
// Δn must dominate (i) the arrival spread of a packet's ingress copies,
// (ii) proposal propagation, and (iii) the allowed virtual-time gap between
// the two fastest replicas; otherwise the chosen median can already have
// passed (a synchrony violation, Sec. V footnote 4). The paper found
// 7-12 ms (real-time equivalent) sufficed on its testbed; Δd ~ 8-15 ms
// against maximum observed disk access times.
#include <cstdio>

#include "bench_util.hpp"

using namespace stopwatch;
using namespace stopwatch::bench;

int main() {
  std::printf("=== E9: Sec. VII-A — delta_n / delta_d calibration ===\n\n");

  std::printf("## delta_n sweep (victim-loaded attacker triple, 15 s)\n");
  std::printf("%10s %12s %14s %14s %14s %12s\n", "delta_n", "deliveries",
              "spread p50", "spread p99", "margin min", "divergences");
  long required_delta_n_ms = -1;
  for (int dn_ms : {2, 4, 6, 8, 10, 12}) {
    TimingScenarioConfig tc;
    tc.run_time = Duration::seconds(15);
    tc.delta_n = Duration::millis(dn_ms);
    tc.seed = 77;
    const auto r = run_timing_scenario(tc);
    const auto spread = stats::summarize(r.proposal_spread_ms);
    double margin_min = 1e18;
    for (double m : r.median_margin_ms) margin_min = std::min(margin_min, m);
    std::printf("%8dms %12llu %13.2fms %13.2fms %13.2fms %12llu\n", dn_ms,
                static_cast<unsigned long long>(r.deliveries), spread.p50,
                spread.p99, margin_min,
                static_cast<unsigned long long>(r.divergences));
    if (required_delta_n_ms < 0 && r.divergences == 0) {
      required_delta_n_ms = dn_ms;
    }
  }
  std::printf(
      "\n-> smallest swept delta_n with zero synchrony violations: %ld ms\n"
      "   (paper: a value translating to ~7-12 ms of real time)\n\n",
      required_delta_n_ms);

  std::printf("## delta_d sweep (file-serving victim's disk path, 15 s)\n");
  std::printf("%10s %16s %16s %14s\n", "delta_d", "disk margin min",
              "disk margin p50", "late deliveries");
  for (int dd_ms : {6, 8, 10, 12, 15, 20, 30}) {
    TimingScenarioConfig tc;
    tc.run_time = Duration::seconds(15);
    tc.delta_d = Duration::millis(dd_ms);
    tc.seed = 78;
    const auto r = run_timing_scenario(tc);
    double margin_min = 1e18;
    double late = 0;
    for (double m : r.disk_margin_ms) margin_min = std::min(margin_min, m);
    // Late deliveries are those the divergence counter caught.
    late = static_cast<double>(r.divergences);
    const auto s = r.disk_margin_ms.empty()
                       ? stats::Summary{}
                       : stats::summarize(r.disk_margin_ms);
    std::printf("%8dms %15.2fms %15.2fms %14.0f\n", dd_ms, margin_min, s.p50,
                late);
  }
  std::printf(
      "\nPaper shape check: margins grow linearly with the offsets; the\n"
      "smallest safe offsets sit in the high-single-digit millisecond range\n"
      "for this disk/network profile, matching Sec. VII-A's 7-12 ms (Δn)\n"
      "and 8-15 ms (Δd).\n");
  return 0;
}
