// Scenario E2 — Paper Figs. 2 & 3: the packet-delivery protocol in action.
// Replays a replicated guest receiving broadcast traffic and checks the
// protocol invariants across replicas: every replica adopts the same median
// proposal, and injection happens at a virtual time at or past the median.
#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "core/cloud.hpp"
#include "experiment/registry.hpp"
#include "workload/timing.hpp"

namespace stopwatch::bench {
namespace {

using experiment::ParamSpec;
using experiment::Result;
using experiment::ScenarioContext;

Result run(const ScenarioContext& ctx) {
  core::CloudConfig cfg;
  cfg.seed = ctx.seed() ^ 11;
  cfg.machine_count = 3;
  cfg.guest_template.record_packet_traces = true;
  core::Cloud cloud(cfg);

  const core::VmHandle vm = cloud.add_vm(
      "guest",
      [] { return std::make_unique<workload::AttackerProbeProgram>(); },
      {0, 1, 2});
  workload::BackgroundBroadcaster bcast(cloud, "sender", cloud.vm_addr(vm),
                                        ctx.param("broadcast_rate_hz"), 3);
  cloud.start();
  bcast.start();
  cloud.run_for(Duration::seconds(ctx.param("run_time_s")));
  cloud.halt_all();

  // Per packet copy_seq: the adopted median and injection point seen by each
  // replica. Agreement means every replica delivers every packet at one
  // common virtual time.
  std::map<std::uint64_t, std::vector<double>> adopted_by_seq;
  std::uint64_t traces = 0;
  std::uint64_t inject_before_median = 0;
  std::vector<double> proposal_spread_ms;
  for (int r = 0; r < 3; ++r) {
    for (const auto& tr : cloud.replica(vm, r).stats().packet_traces) {
      ++traces;
      adopted_by_seq[tr.copy_seq].push_back(tr.chosen_delivery_virt_ms);
      if (tr.inject_virt_ms < tr.chosen_delivery_virt_ms) {
        ++inject_before_median;
      }
      double lo = 1e300;
      double hi = -1e300;
      for (const auto& [machine, virt_ms] : tr.proposals_ms) {
        lo = std::min(lo, virt_ms);
        hi = std::max(hi, virt_ms);
      }
      if (!tr.proposals_ms.empty()) proposal_spread_ms.push_back(hi - lo);
    }
  }
  std::uint64_t median_disagreements = 0;
  for (const auto& [seq, medians] : adopted_by_seq) {
    for (const double m : medians) {
      if (m != medians.front()) ++median_disagreements;
    }
  }

  Result result("fig2_protocol_trace");
  result.add_metric("packet_traces", static_cast<double>(traces), "packets");
  result.add_metric("median_disagreements",
                    static_cast<double>(median_disagreements), "packets");
  result.add_metric("injections_before_median",
                    static_cast<double>(inject_before_median), "packets");
  result.add_summary_metrics("proposal_spread", "ms", proposal_spread_ms);
  result.add_metric("divergences",
                    static_cast<double>(cloud.total_divergences()), "events");
  result.add_metric("replicas_deterministic",
                    cloud.replicas_deterministic(vm) ? 1.0 : 0.0, "bool");
  result.set_note(
      "Invariant check (Sec. V): all replicas adopt the same median and "
      "inject at the first guest-caused VM exit past it, so "
      "median_disagreements and injections_before_median must be 0.");
  return result;
}

[[maybe_unused]] const experiment::ScenarioRegistrar kRegistrar{{
    .name = "fig2_protocol_trace",
    .description =
        "Figs. 2/3: packet-delivery protocol trace; checks median agreement "
        "and injection-past-median across replicas",
    .params = {ParamSpec{"run_time_s", "simulated seconds", 2.0, 0.5}
                   .with_range(0.01, 3600),
               ParamSpec{"broadcast_rate_hz", "background broadcast rate",
                         6.0}.with_range(0.1, 10000)},
    .deterministic = true,
    .run = run,
}};

}  // namespace
}  // namespace stopwatch::bench
