// Scenario E1 — Paper Fig. 1(a,b,c): analytic justification for the median.
//
// Baseline replicas observe timings ~ Exp(λ=1); a replica coresident with
// the victim observes ~ Exp(λ'). Reports the CDF grids of the four Fig. 1(a)
// curves (λ' = 1/2) and, for λ' ∈ {1/2, 10/11}, the observations needed to
// reject the "no victim" null at each confidence with and without StopWatch.
#include <memory>
#include <vector>

#include "experiment/registry.hpp"
#include "stats/detection.hpp"
#include "stats/distribution.hpp"
#include "stats/order_statistics.hpp"

namespace stopwatch::bench {
namespace {

using experiment::ParamSpec;
using experiment::Result;
using experiment::ScenarioContext;

struct Curves {
  std::shared_ptr<stats::Exponential> base;
  std::shared_ptr<stats::Exponential> victim;

  explicit Curves(double lambda_victim)
      : base(std::make_shared<stats::Exponential>(1.0)),
        victim(std::make_shared<stats::Exponential>(lambda_victim)) {}

  [[nodiscard]] double median_three_baselines(double x) const {
    const double f = base->cdf(x);
    return stats::median_of_three_cdf(f, f, f);
  }
  [[nodiscard]] double median_two_baselines_one_victim(double x) const {
    return stats::median_of_three_cdf(victim->cdf(x), base->cdf(x),
                                      base->cdf(x));
  }
};

/// Adds the w/ vs w/o StopWatch detection sweep for one victim λ'.
void add_detection_metrics(Result& result, const std::string& prefix,
                           double lambda_victim) {
  const Curves c(lambda_victim);
  const stats::ChiSquaredDetector with_sw(
      [&c](double x) { return c.median_three_baselines(x); },
      [&c](double x) { return c.median_two_baselines_one_victim(x); }, 0.0,
      30.0);
  const stats::ChiSquaredDetector without_sw(
      [&c](double x) { return c.base->cdf(x); },
      [&c](double x) { return c.victim->cdf(x); }, 0.0, 30.0);

  std::vector<double> confidences;
  std::vector<double> with_obs;
  std::vector<double> without_obs;
  for (const double conf : stats::paper_confidence_grid()) {
    confidences.push_back(conf);
    with_obs.push_back(
        static_cast<double>(with_sw.observations_needed(conf)));
    without_obs.push_back(
        static_cast<double>(without_sw.observations_needed(conf)));
  }
  result.add_series(prefix + "_confidence", "", confidences);
  result.add_series(prefix + "_obs_with_stopwatch", "observations", with_obs);
  result.add_series(prefix + "_obs_without_stopwatch", "observations",
                    without_obs);

  const long with99 = with_sw.observations_needed(0.99);
  const long without99 = without_sw.observations_needed(0.99);
  result.add_metric(prefix + "_obs99_with_stopwatch",
                    static_cast<double>(with99), "observations");
  result.add_metric(prefix + "_obs99_without_stopwatch",
                    static_cast<double>(without99), "observations");
  result.add_metric(prefix + "_strengthening_factor",
                    static_cast<double>(with99) / static_cast<double>(without99),
                    "x");
}

Result run(const ScenarioContext&) {
  Result result("fig1_median_analytic");

  // Fig. 1(a): the four CDF curves on x in [0, 6], λ' = 1/2.
  const Curves far(0.5);
  std::vector<double> xs;
  std::vector<double> cdf_base;
  std::vector<double> cdf_victim;
  std::vector<double> cdf_median3;
  std::vector<double> cdf_median2v;
  for (double x = 0.0; x <= 6.0001; x += 0.5) {
    xs.push_back(x);
    cdf_base.push_back(far.base->cdf(x));
    cdf_victim.push_back(far.victim->cdf(x));
    cdf_median3.push_back(far.median_three_baselines(x));
    cdf_median2v.push_back(far.median_two_baselines_one_victim(x));
  }
  result.add_series("fig1a_x", "", xs);
  result.add_series("fig1a_cdf_baseline", "", cdf_base);
  result.add_series("fig1a_cdf_victim", "", cdf_victim);
  result.add_series("fig1a_cdf_median_three_baselines", "", cdf_median3);
  result.add_series("fig1a_cdf_median_two_baselines_one_victim", "",
                    cdf_median2v);

  // Fig. 1(b): λ' = 1/2 (distinct victim); Fig. 1(c): λ' = 10/11 (close).
  add_detection_metrics(result, "fig1b", 0.5);
  add_detection_metrics(result, "fig1c", 10.0 / 11.0);

  result.set_note(
      "Paper shape check: without StopWatch the victim is detectable in ~1 "
      "observation; the median costs the attacker ~2 orders of magnitude "
      "more, and the gap widens as lambda' approaches 1.");
  return result;
}

[[maybe_unused]] const experiment::ScenarioRegistrar kRegistrar{{
    .name = "fig1_median_analytic",
    .description =
        "Fig. 1: analytic CDFs and detection cost of the median of three "
        "(baseline Exp(1) vs victim Exp(lambda'))",
    .params = {},
    .deterministic = true,
    .run = run,
}};

}  // namespace
}  // namespace stopwatch::bench
