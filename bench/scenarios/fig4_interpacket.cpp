// Scenario E3 — Paper Fig. 4(a,b): measured virtual inter-packet delivery
// times at an attacker VM, with one replica coresident with a file-serving
// victim versus no victim, plus the chi-squared observations-needed
// comparison against unmodified Xen.
#include <vector>

#include "bench_util.hpp"
#include "experiment/registry.hpp"

namespace stopwatch::bench {
namespace {

using experiment::ParamSpec;
using experiment::Result;
using experiment::ScenarioContext;

Result run(const ScenarioContext& ctx) {
  TimingScenarioConfig base;
  base.run_time = Duration::seconds(ctx.param("run_time_s"));
  base.broadcast_rate_hz = ctx.param("broadcast_rate_hz");
  base.seed = ctx.seed();

  // The mitigated arm is selectable (--param policy=...); the comparison
  // arm is always unmodified Xen. Metric names keep the historical
  // "stopwatch" labels for the mitigated arm regardless of the choice.
  TimingScenarioConfig sw_victim = base;
  sw_victim.policy =
      hypervisor::policy_kind_from_choice(ctx.param_choice("policy"));
  sw_victim.victim_present = true;
  TimingScenarioConfig sw_clean = sw_victim;
  sw_clean.victim_present = false;
  TimingScenarioConfig bx_victim = base;
  bx_victim.policy = hypervisor::PolicyKind::kBaselineXen;
  bx_victim.victim_present = true;
  TimingScenarioConfig bx_clean = bx_victim;
  bx_clean.victim_present = false;

  const auto r_sw_victim = run_timing_scenario(sw_victim);
  const auto r_sw_clean = run_timing_scenario(sw_clean);
  const auto r_bx_victim = run_timing_scenario(bx_victim);
  const auto r_bx_clean = run_timing_scenario(bx_clean);

  Result result("fig4_interpacket");
  result.add_metric("samples_stopwatch_victim",
                    static_cast<double>(r_sw_victim.inter_arrival_ms.size()),
                    "samples");
  result.add_metric("samples_stopwatch_clean",
                    static_cast<double>(r_sw_clean.inter_arrival_ms.size()),
                    "samples");
  result.add_metric("samples_xen_victim",
                    static_cast<double>(r_bx_victim.inter_arrival_ms.size()),
                    "samples");
  result.add_metric("samples_xen_clean",
                    static_cast<double>(r_bx_clean.inter_arrival_ms.size()),
                    "samples");
  result.add_metric("replicas_deterministic",
                    r_sw_victim.deterministic && r_sw_clean.deterministic
                        ? 1.0
                        : 0.0,
                    "bool");
  result.add_metric(
      "divergences",
      static_cast<double>(r_sw_victim.divergences + r_sw_clean.divergences),
      "events");
  result.add_summary_metrics("inter_arrival_stopwatch_victim", "ms",
                             r_sw_victim.inter_arrival_ms);
  result.add_summary_metrics("inter_arrival_stopwatch_clean", "ms",
                             r_sw_clean.inter_arrival_ms);

  // Fig. 4(a): the CDF quantile grid of virtual inter-delivery times.
  const stats::Ecdf sw_clean_ecdf(r_sw_clean.inter_arrival_ms);
  const stats::Ecdf sw_victim_ecdf(r_sw_victim.inter_arrival_ms);
  const std::vector<double> qs = {0.05, 0.1, 0.2, 0.3, 0.4,  0.5,
                                  0.6,  0.7, 0.8, 0.9, 0.95, 0.99};
  std::vector<double> q_clean;
  std::vector<double> q_victim;
  for (const double q : qs) {
    q_clean.push_back(sw_clean_ecdf.quantile(q));
    q_victim.push_back(sw_victim_ecdf.quantile(q));
  }
  result.add_series("fig4a_cdf_grid", "", qs);
  result.add_series("fig4a_inter_delivery_clean", "ms", q_clean);
  result.add_series("fig4a_inter_delivery_victim", "ms", q_victim);

  // Fig. 4(b): observations needed across the paper's confidence grid,
  // with and without StopWatch (same series layout as fig1b/fig1c).
  const std::string& binning = ctx.param_choice("binning");
  const auto det_sw = make_detector(r_sw_clean.inter_arrival_ms,
                                    r_sw_victim.inter_arrival_ms, binning);
  const auto det_bx = make_detector(r_bx_clean.inter_arrival_ms,
                                    r_bx_victim.inter_arrival_ms, binning);
  std::vector<double> confidences;
  std::vector<double> obs_sw;
  std::vector<double> obs_bx;
  for (const double conf : stats::paper_confidence_grid()) {
    confidences.push_back(conf);
    obs_sw.push_back(static_cast<double>(det_sw.observations_needed(conf)));
    obs_bx.push_back(static_cast<double>(det_bx.observations_needed(conf)));
  }
  result.add_series("fig4b_confidence", "", confidences);
  result.add_series("fig4b_obs_with_stopwatch", "observations", obs_sw);
  result.add_series("fig4b_obs_without_stopwatch", "observations", obs_bx);
  const long sw99 = det_sw.observations_needed(0.99);
  const long bx99 = det_bx.observations_needed(0.99);
  result.add_metric("obs99_with_stopwatch", static_cast<double>(sw99),
                    "observations");
  result.add_metric("obs99_without_stopwatch", static_cast<double>(bx99),
                    "observations");
  result.add_metric("strengthening_factor",
                    static_cast<double>(sw99) / static_cast<double>(bx99),
                    "x");
  result.set_note(
      "Paper shape check: StopWatch strengthens the defense by roughly an "
      "order of magnitude in observations needed at 0.99 confidence.");
  return result;
}

[[maybe_unused]] const experiment::ScenarioRegistrar kRegistrar{{
    .name = "fig4_interpacket",
    .description =
        "Fig. 4: inter-packet delivery timing channel, StopWatch vs "
        "unmodified Xen (attacker triple, coresident file-serving victim)",
    .params = {ParamSpec{"run_time_s", "simulated seconds per run", 40.0, 6.0}
                   .with_range(0.01, 3600),
               ParamSpec{"broadcast_rate_hz",
                         "background broadcast packet rate", 80.0}
                   .with_range(0.1, 10000),
               binning_param(), policy_param()},
    .deterministic = true,
    .run = run,
}};

}  // namespace
}  // namespace stopwatch::bench
