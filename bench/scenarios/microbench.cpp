// Scenario — microbenchmarks of the core primitives: the simulator event
// loop, median agreement math, placement construction, and the statistical
// machinery. These bound simulation throughput, so their ns/op trajectory
// is what future perf PRs move. Wall-clock measurements make this the one
// intentionally non-deterministic scenario.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "experiment/registry.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "placement/placement.hpp"
#include "sim/simulator.hpp"
#include "stats/detection.hpp"
#include "stats/distribution.hpp"
#include "stats/order_statistics.hpp"
#include "stats/special_functions.hpp"

namespace stopwatch::bench {
namespace {

using experiment::ParamSpec;
using experiment::Result;
using experiment::ScenarioContext;

/// Runs `body(i)` `iters` times and returns mean wall nanoseconds per call.
template <typename Body>
double time_ns_per_op(std::uint64_t iters, Body&& body) {
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    body(i);
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         static_cast<double>(iters);
}

/// Defeats dead-code elimination of a computed value.
volatile double g_sink;

Result run(const ScenarioContext& ctx) {
  const auto iters = static_cast<std::uint64_t>(ctx.param("iterations"));

  Result result("microbench");

  // Simulator: schedule + run a batch of timers per iteration.
  const std::uint64_t sim_events = 1000;
  result.add_metric(
      "simulator_schedule_run",
      time_ns_per_op(std::max<std::uint64_t>(1, iters / 1000), [&](auto) {
        sim::Simulator sim;
        for (std::uint64_t i = 0; i < sim_events; ++i) {
          sim.schedule_at(RealTime::nanos(i * 100), [] {});
        }
        sim.run();
        g_sink = static_cast<double>(sim.events_executed());
      }) / static_cast<double>(sim_events),
      "ns/event");

  // Simulator: schedule + O(1) cancel (wheel unlink / lazy heap kill) per
  // event, across the same spread of delays as the run benchmark.
  result.add_metric(
      "simulator_cancel",
      time_ns_per_op(std::max<std::uint64_t>(1, iters / 1000), [&](auto) {
        sim::Simulator sim;
        for (std::uint64_t i = 0; i < sim_events; ++i) {
          const auto id = sim.schedule_at(RealTime::nanos(i * 100), [] {});
          sim.cancel(id);
        }
        g_sink = static_cast<double>(sim.pending());
      }) / static_cast<double>(sim_events),
      "ns/event");

  // Simulator: a periodic timer re-arming its own arena slot — the vCPU
  // slice / sync beacon / stall recheck pattern.
  result.add_metric(
      "simulator_reschedule",
      time_ns_per_op(std::max<std::uint64_t>(1, iters / 1000), [&](auto) {
        sim::Simulator sim;
        std::uint64_t ticks = 0;
        sim::EventId id{};
        id = sim.schedule_after(Duration::nanos(200), [&] {
          if (++ticks < sim_events) {
            sim.reschedule_after(id, Duration::nanos(200));
          }
        });
        sim.run();
        g_sink = static_cast<double>(ticks);
      }) / static_cast<double>(sim_events),
      "ns/event");

  // Simulator: mixed near/far horizons — 70% inside the wheel's level 0
  // (sub-66 us), 20% across the higher levels (sub-275 ms), 10% beyond the
  // horizon in the overflow heap — so the wheel-vs-heap crossover shows in
  // the trajectory. Delays come from a fixed xorshift stream: identical
  // work every run.
  result.add_metric(
      "simulator_mixed_horizon",
      time_ns_per_op(std::max<std::uint64_t>(1, iters / 1000), [&](auto) {
        sim::Simulator sim;
        std::uint64_t x = 0x9e3779b97f4a7c15ULL;
        for (std::uint64_t i = 0; i < sim_events; ++i) {
          x ^= x << 13;
          x ^= x >> 7;
          x ^= x << 17;
          const std::uint64_t bucket = x % 10;
          std::int64_t delay_ns;
          if (bucket < 7) {
            delay_ns = static_cast<std::int64_t>(x % 60'000);
          } else if (bucket < 9) {
            delay_ns = static_cast<std::int64_t>(x % 250'000'000);
          } else {
            delay_ns = 300'000'000 +
                       static_cast<std::int64_t>(x % 3'000'000'000ULL);
          }
          sim.schedule_after(Duration::nanos(delay_ns), [] {});
        }
        sim.run();
        g_sink = static_cast<double>(sim.events_executed());
      }) / static_cast<double>(sim_events),
      "ns/event");

  // Tracing disabled must be free: the same schedule+run body with a
  // kernel trace sink attached to a *disarmed* recorder, against the plain
  // loop. Each round measures both arms back to back (order alternating,
  // so the two arms see the same machine state and frequency drift
  // cancels) and yields one paired ratio; the median over rounds shrugs
  // off outlier rounds on shared runners. Nightly gates the result at
  // <= 1.02. The unit is "x", never ns-class, so the ratio itself is
  // reported but not wall-clock-gated by the bench diff.
  {
    obs::TraceRecorder recorder;  // never armed
    obs::KernelCounterSink sink(
        recorder.track(900, 0, "sim-kernel", "bench", obs::Category::kParallel));
    const std::uint64_t reps = std::max<std::uint64_t>(1, iters / 2000);
    const auto loop = [&](sim::KernelTraceSink* trace_sink) {
      return time_ns_per_op(reps, [&](auto) {
        sim::Simulator sim;
        sim.set_trace_sink(trace_sink);
        for (std::uint64_t i = 0; i < sim_events; ++i) {
          sim.schedule_at(RealTime::nanos(i * 100), [] {});
        }
        sim.run();
        g_sink = static_cast<double>(sim.events_executed());
      });
    };
    // Each arm sample is itself a min of three (contention bursts only
    // ever inflate a timing, so the min is the cleanest observation).
    const auto best_of = [&](sim::KernelTraceSink* trace_sink) {
      double best = loop(trace_sink);
      for (int sub = 1; sub < 3; ++sub) best = std::min(best, loop(trace_sink));
      return best;
    };
    std::vector<double> ratios;
    for (int round = 0; round < 5; ++round) {
      double plain;
      double disarmed;
      if (round % 2 == 0) {
        plain = best_of(nullptr);
        disarmed = best_of(&sink);
      } else {
        disarmed = best_of(&sink);
        plain = best_of(nullptr);
      }
      ratios.push_back(disarmed / plain);
    }
    std::nth_element(ratios.begin(), ratios.begin() + ratios.size() / 2,
                     ratios.end());
    result.add_metric("tracing_disabled_overhead_ratio",
                      ratios[ratios.size() / 2], "x");
  }

  // Profiling disabled must be free the same way: the schedule+run body
  // with an OBS_PROF_SCOPE probe on the per-event path, measured with a
  // profiler installed-but-never-armed (the pointer load + armed-flag
  // check) against no profiler installed (the pointer load alone). Same
  // alternating paired-ratio scheme as above; nightly gates <= 1.02.
  {
    obs::Profiler idle;  // installed, never armed
    obs::Profiler* const previous = obs::active_profiler();
    const std::uint64_t reps = std::max<std::uint64_t>(1, iters / 2000);
    const auto loop = [&](obs::Profiler* installed) {
      obs::set_active_profiler(installed);
      return time_ns_per_op(reps, [&](auto) {
        sim::Simulator sim;
        for (std::uint64_t i = 0; i < sim_events; ++i) {
          OBS_PROF_SCOPE("bench.probe");
          sim.schedule_at(RealTime::nanos(i * 100), [] {});
        }
        sim.run();
        g_sink = static_cast<double>(sim.events_executed());
      });
    };
    const auto best_of = [&](obs::Profiler* installed) {
      double best = loop(installed);
      for (int sub = 1; sub < 3; ++sub) best = std::min(best, loop(installed));
      return best;
    };
    std::vector<double> ratios;
    for (int round = 0; round < 5; ++round) {
      double plain;
      double disarmed;
      if (round % 2 == 0) {
        plain = best_of(nullptr);
        disarmed = best_of(&idle);
      } else {
        disarmed = best_of(&idle);
        plain = best_of(nullptr);
      }
      ratios.push_back(disarmed / plain);
    }
    obs::set_active_profiler(previous);
    std::nth_element(ratios.begin(), ratios.begin() + ratios.size() / 2,
                     ratios.end());
    result.add_metric("profiling_disabled_overhead_ratio",
                      ratios[ratios.size() / 2], "x");
  }

  Rng rng(ctx.seed());
  std::int64_t a = rng.uniform_int(0, 1 << 30);
  std::int64_t b = rng.uniform_int(0, 1 << 30);
  std::int64_t c = rng.uniform_int(0, 1 << 30);
  result.add_metric("median3", time_ns_per_op(iters, [&](auto) {
                      g_sink = static_cast<double>(stats::median3(a, b, c));
                      ++a;
                      b += 3;
                      c -= 2;
                    }),
                    "ns/op");

  const std::vector<double> f{0.2, 0.5, 0.7, 0.9, 0.95};
  result.add_metric("order_statistic_cdf",
                    time_ns_per_op(std::max<std::uint64_t>(1, iters / 10),
                                   [&](auto) {
                                     g_sink = stats::order_statistic_cdf(f, 3);
                                   }),
                    "ns/op");

  double p = 0.90;
  result.add_metric("chi_squared_inverse_cdf",
                    time_ns_per_op(std::max<std::uint64_t>(1, iters / 100),
                                   [&](auto) {
                                     g_sink =
                                         stats::chi_squared_inverse_cdf(p, 39.0);
                                     p = p >= 0.99 ? 0.70 : p + 0.001;
                                   }),
                    "ns/op");

  // The memoized hit path — the case detection sweeps actually exercise
  // after their first confidence-grid pass (fixed (p, k) keys).
  result.add_metric("chi_squared_inverse_cdf_memo_hit",
                    time_ns_per_op(iters, [&](auto) {
                      g_sink = stats::chi_squared_inverse_cdf(0.99, 39.0);
                    }),
                    "ns/op");

  const auto base = std::make_shared<stats::Exponential>(1.0);
  const auto victim = std::make_shared<stats::Exponential>(0.5);
  result.add_metric(
      "chi_squared_detector_build",
      time_ns_per_op(std::max<std::uint64_t>(1, iters / 10000), [&](auto) {
        const stats::ChiSquaredDetector det(
            [&](double x) { return base->cdf(x); },
            [&](double x) { return victim->cdf(x); }, 0.0, 30.0);
        g_sink = det.noncentrality();
      }),
      "ns/op");

  for (const int n : {21, 99, 201}) {
    // Cold path: drop the shared Bose cache each iteration so the metric
    // keeps timing the full Steiner-system construction.
    result.add_metric(
        "theorem2_placement_n" + std::to_string(n),
        time_ns_per_op(std::max<std::uint64_t>(1, iters / 10000), [&](auto) {
          placement::bose_cache_clear();
          g_sink = static_cast<double>(
              placement::theorem2_placement(n, (n - 1) / 2).size());
        }),
        "ns/op");
  }

  // The memoized hit path — what every theorem2_placement call after the
  // first pays for a given n (group copies + capacity split, no
  // quasigroup rebuild).
  placement::bose_construction_cached(201);
  result.add_metric(
      "theorem2_placement_n201_memo_hit",
      time_ns_per_op(std::max<std::uint64_t>(1, iters / 10000), [&](auto) {
        g_sink = static_cast<double>(
            placement::theorem2_placement(201, 100).size());
      }),
      "ns/op");

  Rng exp_rng(ctx.seed() ^ 7);
  result.add_metric("rng_exponential", time_ns_per_op(iters, [&](auto) {
                      g_sink = exp_rng.exponential(1.0);
                    }),
                    "ns/op");

  result.set_note(
      "Wall-clock ns/op of the primitives bounding simulation throughput; "
      "values vary run to run — compare trends, not bytes.");
  return result;
}

[[maybe_unused]] const experiment::ScenarioRegistrar kRegistrar{{
    .name = "microbench",
    .description =
        "Microbenchmarks (ns/op) of the simulator loop, median math, "
        "placement construction, and chi-squared machinery",
    .params = {ParamSpec{"iterations", "base iteration count", 2'000'000.0,
                         100'000.0}.with_int_range(1, 1e9)},
    .deterministic = false,
    .run = run,
}};

}  // namespace
}  // namespace stopwatch::bench
