// Scenario L1 — Channel capacity of the replicated-median timing channel.
//
// The access-driven channel of Figs. 1/4, measured in bits instead of
// "observations needed": the victim's secret input class c scales the load
// its coresident replica inflicts, so the replica shared with the attacker
// observes timings ~ Exp(lambda_c) while the attacker's other r - 1
// replicas observe the clean Exp(1). StopWatch discloses only the median
// of the r replica timings, so the attacker's per-observation channel is
//
//   C -> median( Exp(lambda_C), Exp(1), ..., Exp(1) )
//
// Monte-Carlo samples of that channel flow through an ObservationLog into
// the plug-in / Miller-Madow mutual-information estimators and the
// Blahut-Arimoto capacity solver, and are checked against the *analytic*
// channel: the exact median CDF from the Appendix order-statistics formula
// (order_statistic_cdf), binned over the same cells. Replication must make
// measured capacity fall (r = 1 -> 3 -> 5), matching the analytic value.
//
// The second axis reproduces the log-scaling claim: an attacker who
// aggregates n observations (averages them) before deciding gains bits
// only logarithmically — measured I_n tracks the Gaussian-approximation
// bound min(log2 |C|, 1/2 log2(1 + n * SNR)) and saturates at H(C).
#include <algorithm>
#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "experiment/registry.hpp"
#include "leakage/capacity.hpp"
#include "leakage/estimators.hpp"
#include "leakage/observation_log.hpp"
#include "stats/order_statistics.hpp"

namespace stopwatch::bench {
namespace {

using experiment::ParamSpec;
using experiment::Result;
using experiment::ScenarioContext;
using leakage::ObservationLog;
using leakage::ObservationLogConfig;

/// Victim-coresident replica rate for secret class c: class 0 is an idle
/// victim (the clean Exp(1)); higher classes slow the shared host more.
double victim_lambda(int cls, double load_step) {
  return 1.0 / (1.0 + load_step * cls);
}

/// One attacker observation: the median of one victim-perturbed draw and
/// r - 1 clean draws (the only disclosed statistic, Sec. VI). Insertion
/// sort keeps the draw order (victim first) deterministic.
double sample_median_observation(Rng& rng, int replicas, double lambda_c) {
  SW_EXPECTS(replicas >= 1 && replicas <= 9);
  double draws[9] = {};
  draws[0] = rng.exponential(lambda_c);
  for (int i = 1; i < replicas; ++i) {
    const double v = rng.exponential(1.0);
    int j = i;
    while (j > 0 && draws[j - 1] > v) {
      draws[j] = draws[j - 1];
      --j;
    }
    draws[j] = v;
  }
  return draws[(replicas - 1) / 2];
}

/// Exact CDF of the median observation for class c (Appendix formula).
double analytic_median_cdf(double x, int replicas, double lambda_c) {
  if (x <= 0.0) return 0.0;
  std::vector<double> f(static_cast<std::size_t>(replicas),
                        1.0 - std::exp(-x));
  f[0] = 1.0 - std::exp(-lambda_c * x);
  return stats::order_statistic_cdf(f, (replicas + 1) / 2);
}

/// Bins an analytic CDF over `edges`, folding the tails into the outermost
/// cells so the row is a probability vector over the same alphabet the
/// empirical channel uses.
std::vector<double> analytic_channel_row(
    const std::vector<double>& edges,
    const std::function<double(double)>& cdf) {
  std::vector<double> row;
  row.reserve(edges.size() - 1);
  for (std::size_t j = 0; j + 1 < edges.size(); ++j) {
    row.push_back(std::max(0.0, cdf(edges[j + 1]) - cdf(edges[j])));
  }
  row.front() += cdf(edges.front());
  row.back() += std::max(0.0, 1.0 - cdf(edges.back()));
  double mass = 0.0;
  for (const double m : row) mass += m;
  for (double& m : row) m /= mass;
  return row;
}

/// E[X] and E[X^2] of a nonnegative variable from its CDF, by quadrature
/// of E[X^k] = integral k x^(k-1) (1 - F(x)) dx over [0, hi].
void analytic_moments(const std::function<double(double)>& cdf, double hi,
                      double& mean, double& variance) {
  const int steps = 4000;
  const double dx = hi / steps;
  double m1 = 0.0;
  double m2 = 0.0;
  for (int i = 0; i < steps; ++i) {
    const double x = (i + 0.5) * dx;
    const double tail = 1.0 - cdf(x);
    m1 += tail * dx;
    m2 += 2.0 * x * tail * dx;
  }
  mean = m1;
  variance = std::max(1e-12, m2 - m1 * m1);
}

Result run(const ScenarioContext& ctx) {
  const int trials = ctx.param_int("trials_per_class");
  const int classes = ctx.param_int("classes");
  const int bins = ctx.param_int("bins");
  const double load_step = ctx.param("load_step");
  const leakage::BinningMode mode =
      leakage::binning_mode_from_choice(ctx.param_choice("binning"));
  // Policy selection enters through capabilities only: a non-replicated
  // backend collapses every nominal replica count to 1 draw, and a
  // paced/batched backend quantizes each disclosed observation up to its
  // release quantum. One Exp(1) unit of the abstract channel corresponds
  // to 10 ms of real time (the Δn scale).
  const auto policy = hypervisor::make_policy(hypervisor::PolicyConfig{
      hypervisor::policy_kind_from_choice(ctx.param_choice("policy"))});
  const double quantum =
      static_cast<double>(policy->release_quantum().ns) / 1e7;
  const auto quantize = [quantum](double x) {
    return quantum > 0.0 ? quantum * std::ceil(x / quantum) : x;
  };
  // P(quantize(X) <= x) = F(floor(x/q)*q): the analytic channel sees the
  // same staircase the samples do.
  const auto cdf_arg = [quantum](double x) {
    return quantum > 0.0 ? quantum * std::floor(x / quantum) : x;
  };
  Rng rng(ctx.seed() ^ 0x1eaca9e5);

  Result result("leakage_capacity");
  std::vector<double> replica_axis;
  std::vector<double> measured_mi;
  std::vector<double> measured_capacity;
  std::vector<double> analytic_capacity;
  double prev_capacity = 0.0;
  bool decreasing = true;
  double max_rel_error = 0.0;

  for (const int nominal : {1, 3, 5}) {
    const int replicas = policy->effective_replicas(nominal);
    ObservationLog log(
        ObservationLogConfig{ctx.seed() ^ static_cast<std::uint64_t>(nominal),
                             /*reservoir_capacity=*/16384});
    for (int t = 0; t < trials; ++t) {
      for (int c = 0; c < classes; ++c) {
        log.record(c, quantize(sample_median_observation(
                          rng, replicas, victim_lambda(c, load_step))));
      }
    }
    const std::vector<double> edges =
        leakage::make_bin_edges(log.pooled_samples(), mode, bins);
    const leakage::JointDistribution joint =
        leakage::joint_from_log(log, edges);
    const double mi = leakage::mutual_information_miller_madow(joint);
    const leakage::CapacityResult measured =
        leakage::blahut_arimoto(leakage::channel_from_joint(joint));

    // Finite-sample noise floor: rebin the same pooled samples under
    // round-robin pseudo-labels (no true class signal) — the BA capacity
    // that survives is pure binning noise, subtracted below. A
    // deterministic permutation baseline.
    const std::vector<double> pooled = log.pooled_samples();
    ObservationLog null_log(ObservationLogConfig{
        ctx.seed() ^ (0xf100ULL + static_cast<std::uint64_t>(nominal)),
        /*reservoir_capacity=*/16384});
    for (std::size_t i = 0; i < pooled.size(); ++i) {
      null_log.record(static_cast<int>(i % static_cast<std::size_t>(classes)),
                      pooled[i]);
    }
    const double noise_floor =
        leakage::blahut_arimoto(leakage::channel_from_joint(
                                    leakage::joint_from_log(null_log, edges)))
            .capacity_bits;
    const double debiased =
        std::max(0.0, measured.capacity_bits - noise_floor);

    std::vector<std::vector<double>> analytic;
    for (int c = 0; c < classes; ++c) {
      const double lambda_c = victim_lambda(c, load_step);
      analytic.push_back(analytic_channel_row(edges, [&](double x) {
        return analytic_median_cdf(cdf_arg(x), replicas, lambda_c);
      }));
    }
    const leakage::CapacityResult bound = leakage::blahut_arimoto(analytic);

    const std::string suffix = "_r" + std::to_string(nominal);
    result.add_metric("mi_bits" + suffix, mi, "bits");
    result.add_metric("capacity_bits" + suffix, measured.capacity_bits,
                      "bits");
    result.add_metric("capacity_noise_floor" + suffix, noise_floor, "bits");
    result.add_metric("capacity_debiased" + suffix, debiased, "bits");
    result.add_metric("analytic_capacity_bits" + suffix, bound.capacity_bits,
                      "bits");
    // Error of the debiased estimate, relative with a small absolute
    // floor: tiny channels (r = 5) are noise-dominated in relative terms.
    const double error =
        std::abs(debiased - bound.capacity_bits) /
        std::max(0.02, bound.capacity_bits);
    result.add_metric("capacity_rel_error" + suffix, error, "frac");
    max_rel_error = std::max(max_rel_error, error);
    if (nominal > 1 && measured.capacity_bits >= prev_capacity) {
      decreasing = false;
    }
    prev_capacity = measured.capacity_bits;
    replica_axis.push_back(nominal);
    measured_mi.push_back(mi);
    measured_capacity.push_back(measured.capacity_bits);
    analytic_capacity.push_back(bound.capacity_bits);
  }
  result.add_series("replica_count", "replicas", replica_axis);
  result.add_series("measured_mi", "bits", measured_mi);
  result.add_series("measured_capacity", "bits", measured_capacity);
  result.add_series("analytic_capacity", "bits", analytic_capacity);
  result.add_metric("capacity_decreases_with_replicas", decreasing ? 1.0 : 0.0,
                    "bool");
  result.add_metric("max_capacity_rel_error", max_rel_error, "frac");

  // --- Log-scaling axis: bits vs observations aggregated (r = 3). ---
  const int obs_levels = ctx.param_int("obs_levels");
  const int obs_trials = ctx.param_int("obs_trials_per_class");
  const int max_obs = 1 << (obs_levels - 1);
  const int replicas = policy->effective_replicas(3);

  // Analytic Gaussian-approximation SNR of the averaged statistic: the
  // between-class variance of the median's mean over the within-class
  // variance (shrinking as 1/n under averaging).
  std::vector<double> class_mean(static_cast<std::size_t>(classes));
  double within = 0.0;
  for (int c = 0; c < classes; ++c) {
    const double lambda_c = victim_lambda(c, load_step);
    double mean = 0.0;
    double variance = 0.0;
    analytic_moments(
        [&](double x) {
          return analytic_median_cdf(cdf_arg(x), replicas, lambda_c);
        },
        /*hi=*/12.0 / lambda_c, mean, variance);
    class_mean[static_cast<std::size_t>(c)] = mean;
    within += variance / classes;
  }
  double mean_of_means = 0.0;
  for (const double m : class_mean) mean_of_means += m / classes;
  double between = 0.0;
  for (const double m : class_mean) {
    between += (m - mean_of_means) * (m - mean_of_means) / classes;
  }
  const double snr = between / within;

  // Each trial draws max_obs observations; every level n reads the prefix
  // mean of the first n — so levels share trials and stay comparable.
  std::vector<std::vector<std::vector<double>>> prefix_means(
      static_cast<std::size_t>(obs_levels));
  for (auto& level : prefix_means) {
    level.assign(static_cast<std::size_t>(classes), {});
  }
  for (int t = 0; t < obs_trials; ++t) {
    for (int c = 0; c < classes; ++c) {
      const double lambda_c = victim_lambda(c, load_step);
      double sum = 0.0;
      int level = 0;
      for (int n = 1; n <= max_obs; ++n) {
        sum += quantize(sample_median_observation(rng, replicas, lambda_c));
        if (n == (1 << level)) {
          prefix_means[static_cast<std::size_t>(level)]
                      [static_cast<std::size_t>(c)]
                          .push_back(sum / n);
          ++level;
        }
      }
    }
  }
  std::vector<double> obs_axis;
  std::vector<double> mi_vs_obs;
  std::vector<double> bound_vs_obs;
  const double h_secret = std::log2(static_cast<double>(classes));
  bool nondecreasing = true;
  double max_excess_over_bound = 0.0;
  for (int level = 0; level < obs_levels; ++level) {
    const int n = 1 << level;
    ObservationLog log(ObservationLogConfig{
        ctx.seed() ^ (0xc0ffeeULL + static_cast<std::uint64_t>(level)),
        /*reservoir_capacity=*/16384});
    for (int c = 0; c < classes; ++c) {
      for (const double v :
           prefix_means[static_cast<std::size_t>(level)]
                       [static_cast<std::size_t>(c)]) {
        log.record(c, v);
      }
    }
    const std::vector<double> edges =
        leakage::make_bin_edges(log.pooled_samples(), mode, bins);
    const double mi = leakage::mutual_information_miller_madow(
        leakage::joint_from_log(log, edges));
    const double bound =
        std::min(h_secret, 0.5 * std::log2(1.0 + n * snr));
    if (level > 0 && mi + 0.05 < mi_vs_obs.back()) nondecreasing = false;
    max_excess_over_bound = std::max(max_excess_over_bound, mi - bound);
    obs_axis.push_back(n);
    mi_vs_obs.push_back(mi);
    bound_vs_obs.push_back(bound);
  }
  result.add_series("observations_aggregated", "observations", obs_axis);
  result.add_series("mi_vs_observations", "bits", mi_vs_obs);
  result.add_series("gaussian_bound_vs_observations", "bits", bound_vs_obs);
  result.add_metric("mi_at_1_obs", mi_vs_obs.front(), "bits");
  result.add_metric("mi_at_max_obs", mi_vs_obs.back(), "bits");
  result.add_metric("secret_entropy", h_secret, "bits");
  result.add_metric("aggregation_snr", snr, "frac");
  result.add_metric("mi_vs_obs_nondecreasing", nondecreasing ? 1.0 : 0.0,
                    "bool");
  // Log-scaling: the measured curve must track (stay at or below, modulo
  // estimator bias) the bound's 1/2 log2(1 + n SNR) growth — the
  // "exponentially many observations per extra bit" shape.
  result.add_metric("max_excess_over_bound", max_excess_over_bound, "bits");

  result.set_note(
      "Paper shape check: replication shrinks the median channel (capacity "
      "falls 1 -> 3 -> 5 replicas, matching the analytic order-statistics "
      "channel), and aggregating n observations buys bits only "
      "logarithmically — measured I_n tracks the Gaussian-approximation "
      "bound min(H(C), 1/2 log2(1 + n SNR)).");
  return result;
}

[[maybe_unused]] const experiment::ScenarioRegistrar kRegistrar{{
    .name = "leakage_capacity",
    .description =
        "Leakage: measured vs analytic capacity of the replicated-median "
        "timing channel (replicas 1/3/5), and bits vs observations "
        "aggregated (log-scaling)",
    .params =
        {ParamSpec{"trials_per_class", "Monte-Carlo observations per secret "
                                       "class and replica count",
                   6000.0, 2000.0}
             .with_int_range(100, 100000),
         ParamSpec{"classes", "number of victim secret input classes", 4.0}
             .with_int_range(2, 8),
         ParamSpec{"bins", "observation cells for the estimators", 16.0}
             .with_int_range(4, 128),
         ParamSpec{"load_step", "per-class victim load increment", 1.0}
             .with_range(0.01, 10),
         ParamSpec{"obs_levels", "aggregation ladder size (n = 1..2^(L-1))",
                   6.0, 5.0}
             .with_int_range(2, 10),
         ParamSpec{"obs_trials_per_class",
                   "trials per class for the aggregation ladder", 1200.0,
                   500.0}
             .with_int_range(100, 100000),
         binning_param(), policy_param()},
    .deterministic = true,
    .run = run,
}};

}  // namespace
}  // namespace stopwatch::bench
