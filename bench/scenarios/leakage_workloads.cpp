// Scenario L2 — Per-workload leakage through attacker-visible egress
// timings, measured with the TimingTap across the paper's three guest
// workloads (Secs. VII-C, VII-D).
//
// Each workload defines a secret input class the victim acts on, and the
// tap records the attacker-visible egress timing of the serving VM labeled
// with that class:
//
//   * file    — which file size class a client retrieved (UDP retrieval;
//               observation = egress release span of the response);
//   * nfs     — which operation type the nhfsstone client is issuing
//               (getattr / read / write windows; observation = egress
//               inter-release gap during the window);
//   * parsec  — which application ran (ferret vs blackscholes, the two
//               closest runtimes of Fig. 7; observation = completion
//               release span).
//
// Mutual information (Miller-Madow) between class and observation is then
// compared per workload, baseline Xen vs StopWatch. Secret classes that
// shape the victim's *own output* remain visible by design — StopWatch
// bounds coresidency channels, not a server's intentional response pattern
// (the Deterland framing: determinism mitigates covert coresident timing,
// not content-dependent service time).
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/cloud.hpp"
#include "experiment/registry.hpp"
#include "leakage/estimators.hpp"
#include "leakage/observation_log.hpp"
#include "leakage/timing_tap.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "workload/file_service.hpp"
#include "workload/nfs.hpp"
#include "workload/parsec.hpp"

namespace stopwatch::bench {
namespace {

using experiment::ParamSpec;
using experiment::Result;
using experiment::ScenarioContext;
using leakage::ObservationLog;
using leakage::ObservationLogConfig;
using leakage::TimingTap;

constexpr std::size_t kReservoir = 8192;

core::CloudConfig workload_cloud_config(core::Policy policy,
                                        std::uint64_t seed, int shards) {
  core::CloudConfig cfg;
  cfg.seed = seed;
  cfg.policy = policy;
  cfg.machine_count = 3;
  // Lazy wiring + an explicit activation set: the single guest VM spreads
  // across the configured simulator cores exactly like placement_e2e, and
  // the report stays byte-identical across shard counts.
  cfg.wiring = core::WiringMode::kLazy;
  cfg.sim_shards = shards;
  return cfg;
}

/// File retrieval: secret = file size class {24, 72, 144} KiB.
ObservationLog run_file(core::Policy policy, std::uint64_t seed, int trials,
                        int shards, obs::TimeSeries* series) {
  core::Cloud cloud(workload_cloud_config(policy, seed, shards));
  const core::VmHandle vm = cloud.add_vm(
      "fileserver",
      [] { return std::make_unique<workload::FileServerProgram>(); },
      {0, 1, 2});
  workload::FileDownloadClient client(
      cloud, "leak-client", cloud.vm_addr(vm),
      workload::FileDownloadClient::Protocol::kUdp);

  ObservationLog log(ObservationLogConfig{seed, kReservoir});
  TimingTap tap(cloud, vm, TimingTap::Mode::kTrialDuration, log);
  tap.set_series(series);
  cloud.activate_sharded({vm});
  cloud.start();

  const std::uint32_t sizes[] = {24 << 10, 72 << 10, 144 << 10};
  for (int t = 0; t < trials; ++t) {
    for (int c = 0; c < 3; ++c) {
      tap.begin_trial(c);
      bool done = false;
      client.download(sizes[c], [&done](Duration) { done = true; });
      while (!done) cloud.run_for(Duration::millis(50));
      tap.end_trial();
    }
  }
  cloud.halt_all();
  return log;
}

/// NFS: secret = operation type the client is issuing {getattr, read,
/// write}, one single-op load window per class per round.
ObservationLog run_nfs(core::Policy policy, std::uint64_t seed,
                       double window_s, int rounds, int shards,
                       obs::TimeSeries* series) {
  core::CloudConfig cfg = workload_cloud_config(policy, seed, shards);
  if (hypervisor::policy_replicated(policy)) {
    cfg.policy.stopwatch.delta_n = Duration::millis(7);
    cfg.policy.stopwatch.delta_d = Duration::millis(10);
  }
  cfg.policy.deterland.delta_n = Duration::millis(7);
  cfg.policy.deterland.delta_d = Duration::millis(10);
  core::Cloud cloud(cfg);
  const core::VmHandle vm = cloud.add_vm(
      "nfs", [] { return std::make_unique<workload::NfsServerProgram>(); },
      {0, 1, 2});

  ObservationLog log(ObservationLogConfig{seed, kReservoir});
  TimingTap tap(cloud, vm, TimingTap::Mode::kInterRelease, log);
  tap.set_series(series);
  cloud.activate_sharded({vm});
  cloud.start();

  const workload::NfsOp ops[] = {workload::NfsOp::kGetattr,
                                 workload::NfsOp::kRead,
                                 workload::NfsOp::kWrite};
  // Generators stay alive until the cloud drains: late responses must not
  // reach a destroyed endpoint.
  std::vector<std::unique_ptr<workload::NfsLoadGenerator>> generators;
  int window = 0;
  for (int round = 0; round < rounds; ++round) {
    for (int c = 0; c < 3; ++c, ++window) {
      tap.set_secret_class(c);
      generators.push_back(std::make_unique<workload::NfsLoadGenerator>(
          cloud, "leak-gen-" + std::to_string(window), cloud.vm_addr(vm),
          /*processes=*/2, /*rate_per_second=*/120.0,
          std::vector<workload::NfsMixEntry>{{ops[c], 1.0}},
          seed ^ (0x9e37ULL + static_cast<std::uint64_t>(window))));
      generators.back()->start(Duration::millis(20));
      cloud.run_for(Duration::from_seconds_f(window_s));
      generators.back()->stop();
      // Drain in-flight operations so the next window starts labeled clean.
      cloud.run_for(Duration::millis(150));
    }
  }
  cloud.halt_all();
  return log;
}

/// PARSEC: secret = which application ran; ferret vs blackscholes are the
/// suite's two closest baseline runtimes, so the classes genuinely overlap.
ObservationLog run_parsec(core::Policy policy, std::uint64_t seed, int trials,
                          int shards, obs::TimeSeries* series) {
  const auto& suite = workload::parsec_suite();
  const workload::ParsecAppSpec apps[] = {suite[0], suite[1]};

  ObservationLog log(ObservationLogConfig{seed, kReservoir});
  for (int t = 0; t < trials; ++t) {
    for (int c = 0; c < 2; ++c) {
      core::Cloud cloud(workload_cloud_config(
          policy,
          seed ^ (static_cast<std::uint64_t>(t) * 8 +
                  static_cast<std::uint64_t>(c) + 1),
          shards));
      bool done = false;
      const NodeId collector = cloud.add_external_node(
          "collector", [&done](const net::Packet&) { done = true; });
      const workload::ParsecAppSpec spec = apps[c];
      const auto run_id = static_cast<std::uint32_t>(t);
      const core::VmHandle vm = cloud.add_vm(
          "parsec",
          [spec, collector, run_id] {
            return std::make_unique<workload::ParsecProgram>(spec, collector,
                                                             run_id);
          },
          {0, 1, 2});
      TimingTap tap(cloud, vm, TimingTap::Mode::kTrialDuration, log);
      tap.set_series(series);
      tap.begin_trial(c);
      cloud.activate_sharded({vm});
      cloud.start();
      while (!done) cloud.run_for(Duration::millis(50));
      tap.end_trial();
      cloud.halt_all();
    }
  }
  return log;
}

double estimate_mi(const ObservationLog& log, leakage::BinningMode mode,
                   int bins) {
  const std::vector<double> edges =
      leakage::make_bin_edges(log.pooled_samples(), mode, bins);
  return leakage::mutual_information_miller_madow(
      leakage::joint_from_log(log, edges));
}

Result run(const ScenarioContext& ctx) {
  const int trials = ctx.param_int("trials_per_class");
  const int parsec_trials = ctx.param_int("parsec_trials");
  const double window_s = ctx.param("nfs_window_s");
  const int nfs_rounds = ctx.param_int("nfs_rounds");
  const int bins = ctx.param_int("bins");
  const int shards = ctx.param_int("sim_shards");
  const leakage::BinningMode mode =
      leakage::binning_mode_from_choice(ctx.param_choice("binning"));

  struct Row {
    const char* workload;
    std::function<ObservationLog(core::Policy, std::uint64_t,
                                 obs::TimeSeries*)>
        runner;
  };
  const std::vector<Row> rows = {
      {"file",
       [&](core::Policy p, std::uint64_t s, obs::TimeSeries* ts) {
         return run_file(p, s, trials, shards, ts);
       }},
      {"nfs",
       [&](core::Policy p, std::uint64_t s, obs::TimeSeries* ts) {
         return run_nfs(p, s, window_s, nfs_rounds, shards, ts);
       }},
      {"parsec",
       [&](core::Policy p, std::uint64_t s, obs::TimeSeries* ts) {
         return run_parsec(p, s, parsec_trials, shards, ts);
       }},
  };

  // The mitigated arm is selectable (--param policy=...); metric names are
  // suffixed with the choice, so the default ("stopwatch") reproduces the
  // historical names — and the golden output — byte-for-byte.
  const std::string choice = ctx.param_choice("policy");
  const core::Policy mitigated = hypervisor::policy_kind_from_choice(choice);
  const std::string display =
      choice == "stopwatch" ? "StopWatch" : "policy '" + choice + "'";

  Result result("leakage_workloads");
  obs::Registry registry;
  double max_mitigated_mi = 0.0;
  std::string max_workload;
  for (const Row& row : rows) {
    const std::uint64_t seed = ctx.seed() ^ (row.workload[0] * 0x10001ULL);
    const ObservationLog base_log =
        row.runner(core::Policy::kBaselineXen, seed, nullptr);
    // The mitigated arm also feeds the per-epoch observation rollups:
    // bounded at 64 windows regardless of horizon (width doubles as the
    // run outgrows the budget), values in microseconds of sim time.
    obs::TimeSeries mi_series(100 * 1000 * 1000, 64);
    const ObservationLog mit_log = row.runner(mitigated, seed, &mi_series);
    const double base_mi = estimate_mi(base_log, mode, bins);
    const double mit_mi = estimate_mi(mit_log, mode, bins);
    const std::string w = row.workload;
    result.add_metric("mi_bits_" + w + "_baseline", base_mi, "bits");
    result.add_metric("mi_bits_" + w + "_" + choice, mit_mi, "bits");
    result.add_metric("observations_" + w + "_baseline",
                      static_cast<double>(base_log.total_count()), "samples");
    result.add_metric("observations_" + w + "_" + choice,
                      static_cast<double>(mit_log.total_count()), "samples");
    result.add_metric("mi_delta_" + w, base_mi - mit_mi, "bits");
    result.add_timeseries("mi_observations_us_" + w, mi_series.snapshot());
    registry.set_gauge("mem.reservoir_bytes_" + w + "_baseline",
                       base_log.reservoir_bytes());
    registry.set_gauge("mem.reservoir_bytes_" + w + "_" + choice,
                       mit_log.reservoir_bytes());
    if (mit_mi >= max_mitigated_mi) {
      max_mitigated_mi = mit_mi;
      max_workload = w;
    }
  }
  result.add_metric("max_" + choice + "_mi", max_mitigated_mi, "bits");
  result.set_observability(registry.snapshot());
  result.set_note(
      "Per-workload egress-timing leakage under " + display +
      ", most leaky: " + max_workload +
      ". Content-shaped response timing (file sizes, op types) stays "
      "visible by design; " + display +
      "'s target is the coresidency channel "
      "(see leakage_capacity).");
  return result;
}

[[maybe_unused]] const experiment::ScenarioRegistrar kRegistrar{{
    .name = "leakage_workloads",
    .description =
        "Leakage: TimingTap mutual information of egress timings vs secret "
        "input class across file/NFS/PARSEC guests, baseline vs StopWatch",
    .params =
        {ParamSpec{"trials_per_class",
                   "file retrievals per size class and policy", 24.0, 8.0}
             .with_int_range(2, 1000),
         ParamSpec{"parsec_trials", "application runs per class and policy",
                   30.0, 10.0}
             .with_int_range(2, 1000),
         ParamSpec{"nfs_window_s", "seconds per single-op NFS load window",
                   2.0, 0.7}
             .with_range(0.05, 600),
         ParamSpec{"nfs_rounds", "single-op window rounds per policy", 2.0,
                   1.0}
             .with_int_range(1, 100),
         ParamSpec{"bins", "observation cells for the estimators", 12.0}
             .with_int_range(4, 128),
         ParamSpec{"sim_shards", "simulator cores (output is byte-identical "
                                 "across values)",
                   1.0, 1.0}
             .with_int_range(1, 64),
         binning_param(), policy_param()},
    .deterministic = true,
    .run = run,
}};

}  // namespace
}  // namespace stopwatch::bench
